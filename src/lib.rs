//! # dlflow — off-line scheduling of divisible requests on an
//! # heterogeneous collection of databanks
//!
//! A complete Rust reproduction of Legrand, Su & Vivien (IPPS/HCW 2005;
//! INRIA RR-5386). This façade crate re-exports the workspace:
//!
//! | crate | role |
//! |-------|------|
//! | [`num`] | arbitrary-precision integers & exact rationals (from scratch) |
//! | [`lp`] | two-phase primal simplex, generic over `f64` / exact `Rat` |
//! | [`core`] | the paper: Systems (1)(2)(3)(5), milestones, Theorem 1 & 2, §4.4 |
//! | [`gripps`] | the GriPPS application model: databanks, motifs, scanner, costs, platform/workload families |
//! | [`sim`] | online-scheduling simulator (MCT, FIFO, SRPT/SWRPT, weighted-age, EDF, OLA) and the §6 campaign tournament engine |
//!
//! Two companion binaries live outside the façade: `dlflow`
//! (`dlflow-cli`: `makespan`/`maxflow`/`deadline`/`milestones`/`campaign`
//! over the text formats in `docs/FORMATS.md`) and the `dlflow-bench`
//! experiment drivers.
//!
//! See `README.md` for a guided tour, `DESIGN.md` for the system
//! inventory, and `EXPERIMENTS.md` for the paper-vs-measured record of
//! every figure.
//!
//! ## Quickstart
//!
//! ```
//! use dlflow::core::instance::InstanceBuilder;
//! use dlflow::core::maxflow::min_max_weighted_flow_divisible;
//! use dlflow::num::Rat;
//!
//! let mut b = InstanceBuilder::<Rat>::new();
//! b.job(Rat::zero(), Rat::one());
//! b.job(Rat::from_i64(1), Rat::from_i64(2));
//! b.machine(vec![Some(Rat::from_i64(4)), Some(Rat::from_i64(2))]);
//! b.machine(vec![Some(Rat::from_i64(8)), None]);
//! let inst = b.build().unwrap();
//! let out = min_max_weighted_flow_divisible(&inst);
//! assert_eq!(out.schedule.max_weighted_flow(&inst), out.optimum);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use dlflow_core as core;
pub use dlflow_gripps as gripps;
pub use dlflow_lp as lp;
pub use dlflow_num as num;
pub use dlflow_sim as sim;
