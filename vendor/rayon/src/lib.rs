//! Offline stand-in for the `rayon` crate.
//!
//! The dlflow build environment has no registry access, so this vendored
//! crate supplies the API slice the workspace uses — `par_iter()` on
//! slices and `Vec`s, followed by `enumerate()` / `map()` / `collect()`.
//!
//! Unlike the original sequential shim, iteration is now **genuinely
//! parallel**: `collect()` splits the input into contiguous chunks, one
//! per available core, and runs them under [`std::thread::scope`]. Each
//! result is written into its input's slot, so the collected order is
//! identical to sequential iteration (and to the real rayon's indexed
//! collect) — determinism is preserved.
//!
//! Divergences from the real rayon:
//!
//! * only the combinators the workspace needs exist (`par_iter` →
//!   optional `enumerate` → `map` → `collect`); there is no general
//!   `ParallelIterator` trait, no `reduce`/`fold`/`for_each`, no bridge
//!   to sequential iterators;
//! * no work-stealing: the input is split into equal contiguous chunks
//!   up front, so heavily skewed workloads balance worse than rayon;
//! * no global thread pool: threads are spawned per `collect()` call
//!   (scoped, so borrowing locals works exactly like rayon closures);
//!   for tiny inputs the work runs inline on the caller's thread.

#![warn(missing_docs)]

/// Minimum number of items before `collect()` bothers spawning threads:
/// below this, thread spawn/join overhead (tens of µs) dwarfs any win,
/// so the work runs inline on the caller's thread.
const PARALLEL_THRESHOLD: usize = 16;

/// Runs `f` over every item, in parallel chunks, preserving input order.
fn run_chunked<'data, T, R, F>(items: &'data [T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &'data T) -> R + Sync,
{
    let n = items.len();
    let threads = std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(1)
        .min(n.max(1));
    if n < PARALLEL_THRESHOLD || threads <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let chunk = n.div_ceil(threads);
    let mut out: Vec<Option<R>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    let f = &f;
    std::thread::scope(|s| {
        for (ci, slots) in out.chunks_mut(chunk).enumerate() {
            let base = ci * chunk;
            s.spawn(move || {
                for (k, slot) in slots.iter_mut().enumerate() {
                    *slot = Some(f(base + k, &items[base + k]));
                }
            });
        }
    });
    out.into_iter()
        .map(|o| o.expect("chunk worker filled every slot"))
        .collect()
}

/// Runs `f` over every item by `&mut`, in parallel chunks, preserving
/// input order. The mutable cousin of [`run_chunked`], backing
/// `par_iter_mut()`: disjoint `chunks_mut` windows make the shared-state
/// story trivially safe.
fn run_chunked_mut<T, R, F>(items: &mut [T], f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut T) -> R + Sync,
{
    let n = items.len();
    let threads = std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(1)
        .min(n.max(1));
    if n < PARALLEL_THRESHOLD || threads <= 1 {
        return items.iter_mut().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let chunk = n.div_ceil(threads);
    let mut out: Vec<Option<R>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    let f = &f;
    std::thread::scope(|s| {
        for ((ci, slots), work) in out
            .chunks_mut(chunk)
            .enumerate()
            .zip(items.chunks_mut(chunk))
        {
            let base = ci * chunk;
            s.spawn(move || {
                for ((k, slot), item) in slots.iter_mut().enumerate().zip(work.iter_mut()) {
                    *slot = Some(f(base + k, item));
                }
            });
        }
    });
    out.into_iter()
        .map(|o| o.expect("chunk worker filled every slot"))
        .collect()
}

/// Parallel iterator over `&[T]`, mirroring `rayon::slice::Iter`.
pub struct ParIter<'data, T> {
    items: &'data [T],
}

impl<'data, T: Sync> ParIter<'data, T> {
    /// Pairs every item with its index, preserving order.
    pub fn enumerate(self) -> ParEnumerate<'data, T> {
        ParEnumerate { items: self.items }
    }

    /// Applies `f` to every item.
    pub fn map<R, F>(self, f: F) -> ParMap<'data, T, F>
    where
        F: Fn(&'data T) -> R + Sync,
        R: Send,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// Index-paired parallel iterator (`par_iter().enumerate()`).
pub struct ParEnumerate<'data, T> {
    items: &'data [T],
}

impl<'data, T: Sync> ParEnumerate<'data, T> {
    /// Applies `f` to every `(index, item)` pair.
    pub fn map<R, F>(self, f: F) -> ParEnumerateMap<'data, T, F>
    where
        F: Fn((usize, &'data T)) -> R + Sync,
        R: Send,
    {
        ParEnumerateMap {
            items: self.items,
            f,
        }
    }
}

/// Mapped parallel iterator awaiting `collect()`.
pub struct ParMap<'data, T, F> {
    items: &'data [T],
    f: F,
}

impl<'data, T, R, F> ParMap<'data, T, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'data T) -> R + Sync,
{
    /// Runs the pipeline in parallel and collects results in input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        run_chunked(self.items, |_, t| (self.f)(t))
            .into_iter()
            .collect()
    }
}

/// Mapped + enumerated parallel iterator awaiting `collect()`.
pub struct ParEnumerateMap<'data, T, F> {
    items: &'data [T],
    f: F,
}

impl<'data, T, R, F> ParEnumerateMap<'data, T, F>
where
    T: Sync,
    R: Send,
    F: Fn((usize, &'data T)) -> R + Sync,
{
    /// Runs the pipeline in parallel and collects results in input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        run_chunked(self.items, |i, t| (self.f)((i, t)))
            .into_iter()
            .collect()
    }
}

/// Parallel iterator over `&mut [T]`, mirroring `rayon::slice::IterMut`.
pub struct ParIterMut<'data, T> {
    items: &'data mut [T],
}

impl<'data, T: Send> ParIterMut<'data, T> {
    /// Applies `f` to every item by `&mut`.
    pub fn map<R, F>(self, f: F) -> ParMapMut<'data, T, F>
    where
        F: Fn(&mut T) -> R + Sync,
        R: Send,
    {
        ParMapMut {
            items: self.items,
            f,
        }
    }
}

/// Mutably mapped parallel iterator awaiting `collect()`.
pub struct ParMapMut<'data, T, F> {
    items: &'data mut [T],
    f: F,
}

impl<'data, T, R, F> ParMapMut<'data, T, F>
where
    T: Send,
    R: Send,
    F: Fn(&mut T) -> R + Sync,
{
    /// Runs the pipeline in parallel and collects results in input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        run_chunked_mut(self.items, |_, t| (self.f)(t))
            .into_iter()
            .collect()
    }
}

/// Traits that make `.par_iter()` available, mirroring `rayon::prelude`.
pub mod prelude {
    pub use super::{ParEnumerate, ParEnumerateMap, ParIter, ParIterMut, ParMap, ParMapMut};

    /// Types that can be iterated in parallel by reference.
    pub trait IntoParallelRefIterator<'data> {
        /// The parallel-iterator type returned by [`par_iter`](Self::par_iter).
        type Iter;

        /// Returns a parallel iterator over `&self`'s elements.
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
        type Iter = ParIter<'data, T>;

        fn par_iter(&'data self) -> Self::Iter {
            ParIter { items: self }
        }
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
        type Iter = ParIter<'data, T>;

        fn par_iter(&'data self) -> Self::Iter {
            ParIter {
                items: self.as_slice(),
            }
        }
    }

    /// Types that can be iterated in parallel by mutable reference.
    pub trait IntoParallelRefMutIterator<'data> {
        /// The parallel-iterator type returned by
        /// [`par_iter_mut`](Self::par_iter_mut).
        type Iter;

        /// Returns a parallel iterator over `&mut self`'s elements.
        fn par_iter_mut(&'data mut self) -> Self::Iter;
    }

    impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for [T] {
        type Iter = ParIterMut<'data, T>;

        fn par_iter_mut(&'data mut self) -> Self::Iter {
            ParIterMut { items: self }
        }
    }

    impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for Vec<T> {
        type Iter = ParIterMut<'data, T>;

        fn par_iter_mut(&'data mut self) -> Self::Iter {
            ParIterMut {
                items: self.as_mut_slice(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_matches_iter() {
        let v = vec![1, 2, 3, 4];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
        let indexed: Vec<(usize, i32)> = v.par_iter().enumerate().map(|(i, &x)| (i, x)).collect();
        assert_eq!(indexed, vec![(0, 1), (1, 2), (2, 3), (3, 4)]);
    }

    #[test]
    fn collected_order_is_deterministic_at_scale() {
        // Large enough to fan out across every core; order must still be
        // exactly the sequential order.
        let v: Vec<u64> = (0..10_000).collect();
        let seq: Vec<u64> = v.iter().map(|x| x * x % 7919).collect();
        let par: Vec<u64> = v.par_iter().map(|x| x * x % 7919).collect();
        assert_eq!(seq, par);
    }

    #[test]
    fn borrows_locals_like_rayon() {
        let offsets = [10u64, 20, 30];
        let v = vec![1u64, 2, 3];
        let got: Vec<u64> = v
            .par_iter()
            .enumerate()
            .map(|(i, &x)| x + offsets[i])
            .collect();
        assert_eq!(got, vec![11, 22, 33]);
    }

    #[test]
    fn par_iter_mut_mutates_in_place_and_preserves_order() {
        let mut v: Vec<u64> = (0..5_000).collect();
        let doubled: Vec<u64> = v
            .par_iter_mut()
            .map(|x| {
                *x *= 2;
                *x
            })
            .collect();
        assert_eq!(doubled, (0..5_000).map(|x| x * 2).collect::<Vec<u64>>());
        assert_eq!(v[4_999], 9_998, "mutation lands in the source slice");
    }

    #[test]
    fn empty_and_single() {
        let v: Vec<i32> = Vec::new();
        let got: Vec<i32> = v.par_iter().map(|x| x + 1).collect();
        assert!(got.is_empty());
        let one = [7];
        let got: Vec<i32> = one.par_iter().map(|x| x + 1).collect();
        assert_eq!(got, vec![8]);
    }
}
