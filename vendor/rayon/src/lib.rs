//! Offline stand-in for the `rayon` crate.
//!
//! The dlflow build environment has no registry access, so this vendored
//! crate supplies the API slice the workspace uses — currently just
//! `par_iter()` on slices and `Vec`s. Iteration is **sequential**: the
//! adapter returns the standard slice iterator, so `.enumerate().map(...)
//! .collect()` chains compile and behave identically, minus the
//! parallelism. A later perf-focused PR can either swap in the real rayon
//! (point the workspace dependency at a registry version) or teach this
//! shim `std::thread::scope`-based chunking.

#![warn(missing_docs)]

/// Traits that make `.par_iter()` available, mirroring `rayon::prelude`.
pub mod prelude {
    /// Types that can be iterated "in parallel" by reference.
    pub trait IntoParallelRefIterator<'data> {
        /// The iterator type returned by [`par_iter`](Self::par_iter).
        type Iter: Iterator;

        /// Returns an iterator over `&self`'s elements. Sequential in this
        /// shim; parallel under the real rayon.
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, T: 'data> IntoParallelRefIterator<'data> for [T] {
        type Iter = std::slice::Iter<'data, T>;

        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }

    impl<'data, T: 'data> IntoParallelRefIterator<'data> for Vec<T> {
        type Iter = std::slice::Iter<'data, T>;

        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_matches_iter() {
        let v = vec![1, 2, 3, 4];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
        let indexed: Vec<(usize, i32)> = v.par_iter().enumerate().map(|(i, &x)| (i, x)).collect();
        assert_eq!(indexed.len(), 4);
    }
}
