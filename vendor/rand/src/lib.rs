//! Offline stand-in for the `rand` crate.
//!
//! The dlflow build environment has no access to a crates.io registry, so
//! this vendored crate supplies the (small) slice of the `rand` 0.8 API the
//! workspace actually consumes: `SmallRng`, `SeedableRng::seed_from_u64`,
//! `Rng::gen_range` over primitive integer/float ranges, and
//! `Rng::gen_bool`. The generator is SplitMix64 — statistically solid for
//! simulation workloads, deterministic per seed, and not cryptographic
//! (neither is the real `SmallRng`).
//!
//! To switch to the real crate, point the workspace `rand` dependency at a
//! registry version; no call sites need to change.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A random number generator producing 64-bit output.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators (the only constructor dlflow uses is
/// [`SeedableRng::seed_from_u64`]).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed; equal seeds give equal streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// Panics if `p` is outside `[0, 1]`, matching rand 0.8.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool: p={p} is outside range [0.0, 1.0]"
        );
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Maps 64 random bits to a float in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    // 53 high bits → uniform dyadic rational in [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let width = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % width) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let width = (end as i128 - start as i128) as u128 + 1;
                (start as i128 + (rng.next_u64() as u128 % width) as i128) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "gen_range: empty range");
        start + unit_f64(rng.next_u64()) * (end - start)
    }
}

/// Non-cryptographic generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng { state: seed }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use crate::Rng;

        #[test]
        fn deterministic_per_seed() {
            let mut a = SmallRng::seed_from_u64(42);
            let mut b = SmallRng::seed_from_u64(42);
            for _ in 0..100 {
                assert_eq!(a.next_u64(), b.next_u64());
            }
        }

        #[test]
        fn ranges_stay_in_bounds() {
            let mut r = SmallRng::seed_from_u64(7);
            for _ in 0..1000 {
                let x: usize = r.gen_range(0..5);
                assert!(x < 5);
                let y: f64 = r.gen_range(1.0..=3.0);
                assert!((1.0..=3.0).contains(&y));
                let z: i64 = r.gen_range(-4i64..=6);
                assert!((-4..=6).contains(&z));
            }
        }

        #[test]
        fn gen_bool_tracks_probability() {
            let mut r = SmallRng::seed_from_u64(1);
            let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
            assert!((2_700..3_300).contains(&hits), "hits = {hits}");
        }
    }
}
