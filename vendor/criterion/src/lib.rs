//! Offline stand-in for the `criterion` crate.
//!
//! The dlflow build environment has no registry access, so this vendored
//! crate supplies the benchmarking API surface the workspace's
//! `harness = false` bench targets use: `Criterion`, `benchmark_group`,
//! `bench_function` / `bench_with_input`, `BenchmarkId`, `Throughput`,
//! `sample_size`, `Bencher::iter`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement model: each benchmark is auto-calibrated to roughly
//! `sample_size` × 5 ms of wall time (bounded batches), then reports
//! mean ns/iteration and, when a throughput was declared, elements or
//! bytes per second. No warm-up discard, outlier analysis, or HTML
//! reports — swap the workspace `criterion` dependency to a registry
//! version for those.

#![warn(missing_docs)]

use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` keeps working.
pub use std::hint::black_box;

/// Declared work per iteration, used to report a rate.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Iterations process this many abstract elements each.
    Elements(u64),
    /// Iterations process this many bytes each.
    Bytes(u64),
}

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A `name/parameter` id.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Runs closures and accumulates elapsed time.
#[derive(Debug, Default)]
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, auto-scaling the iteration count to the target
    /// measurement budget recorded by the caller.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One calibration pass to size batches, then measured batches.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed();
        let per_batch =
            (Duration::from_millis(1).as_nanos() / once.as_nanos().max(1)).clamp(1, 10_000) as u64;
        let budget = self.target_budget();
        let start = Instant::now();
        while start.elapsed() < budget {
            for _ in 0..per_batch {
                black_box(routine());
            }
            self.iterations += per_batch;
        }
        self.elapsed += start.elapsed() + once;
        self.iterations += 1;
    }

    fn target_budget(&self) -> Duration {
        Duration::from_millis(5)
    }

    fn report(&self, label: &str, throughput: Option<Throughput>) {
        if self.iterations == 0 {
            return;
        }
        let ns_per_iter = self.elapsed.as_nanos() as f64 / self.iterations as f64;
        let mut line = format!("{label:<40} {ns_per_iter:>14.1} ns/iter");
        if let Some(tp) = throughput {
            let per_sec = |units: u64| units as f64 / (ns_per_iter * 1e-9);
            match tp {
                Throughput::Elements(n) => {
                    let _ = write!(line, "  ({:.3e} elem/s)", per_sec(n));
                }
                Throughput::Bytes(n) => {
                    let _ = write!(line, "  ({:.3e} B/s)", per_sec(n));
                }
            }
        }
        println!("{line}");
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; this shim's budget is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Declares per-iteration work for subsequent benchmarks in the group.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark identified by a plain name.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into());
        let mut b = Bencher::default();
        f(&mut b);
        b.report(&label, self.throughput);
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        let mut b = Bencher::default();
        f(&mut b, input);
        b.report(&label, self.throughput);
        self
    }

    /// Ends the group (no-op beyond API compatibility).
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion;

impl Criterion {
    /// Starts a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(&id.into(), None);
        self
    }
}

/// Bundles benchmark functions into one group runner, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
