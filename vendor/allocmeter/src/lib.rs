//! A counting [`GlobalAlloc`] wrapper for zero-allocation assertions.
//!
//! The simulation workspace promises that its hot paths —
//! `Engine::step`/`drain` in the steady state — perform **zero** heap
//! allocations per event. `dlflow-lint` enforces that claim statically
//! (no allocating calls reachable from the hot roots); this crate
//! closes the loop *dynamically*: install [`Meter`] as the
//! `#[global_allocator]` of a bench binary, and
//! [`alloc_count`]/[`dealloc_count`] read exact allocation tallies
//! around any window of work.
//!
//! ```ignore
//! use allocmeter::Meter;
//!
//! #[global_allocator]
//! static METER: Meter = Meter::new();
//!
//! let before = allocmeter::alloc_count();
//! hot_loop();
//! assert_eq!(allocmeter::alloc_count(), before, "hot loop allocated");
//! ```
//!
//! The counters are relaxed atomics: exact under single-threaded
//! measurement (how the bench uses them) and still a correct total —
//! just not a happens-before fence — under concurrency. Counting adds
//! two uncontended atomic increments per malloc/free, far below
//! allocator cost itself, so metered numbers remain representative.
//!
//! This crate is vendored (the build environment is offline) and is the
//! only place in the workspace allowed to contain `unsafe`: a
//! `GlobalAlloc` impl cannot be written without it, and `dlflow-sim`
//! itself stays `#![forbid(unsafe_code)]`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static DEALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

/// A pass-through [`System`] allocator that counts every allocation,
/// reallocation, and deallocation. Install with `#[global_allocator]`.
pub struct Meter;

impl Meter {
    /// The meter (stateless; counters are global).
    pub const fn new() -> Meter {
        Meter
    }
}

impl Default for Meter {
    fn default() -> Meter {
        Meter::new()
    }
}

// SAFETY: every method delegates verbatim to `System`, which upholds the
// GlobalAlloc contract; the added atomic counters do not observe or
// alter the returned pointers or layouts.
unsafe impl GlobalAlloc for Meter {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        DEALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A realloc is a fresh acquisition (it may move and grow), so it
        // counts as one allocation; the paired free is implicit.
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

/// Total allocations (including zeroed and reallocs) since process
/// start. Only meaningful when [`Meter`] is the global allocator.
pub fn alloc_count() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// Total deallocations since process start.
pub fn dealloc_count() -> u64 {
    DEALLOCS.load(Ordering::Relaxed)
}

/// Total bytes requested since process start.
pub fn bytes_allocated() -> u64 {
    BYTES.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    // The meter is NOT installed as this test binary's global allocator
    // (tests must not depend on install order), so only the pass-through
    // behavior and counter monotonicity are checkable here; the real
    // zero-allocation assertion lives in the bench that installs it.
    use super::*;

    #[test]
    fn counters_start_consistent_and_monotone() {
        let a0 = alloc_count();
        let d0 = dealloc_count();
        let b0 = bytes_allocated();
        assert!(alloc_count() >= a0);
        assert!(dealloc_count() >= d0);
        assert!(bytes_allocated() >= b0);
    }

    #[test]
    fn meter_delegates_to_system() {
        let m = Meter::new();
        let layout = Layout::from_size_align(64, 8).unwrap();
        let a0 = alloc_count();
        let b0 = bytes_allocated();
        // SAFETY: layout is non-zero-sized and the pointer is freed with
        // the same layout through the same allocator.
        unsafe {
            let p = m.alloc(layout);
            assert!(!p.is_null());
            p.write_bytes(0xAB, 64);
            m.dealloc(p, layout);
        }
        assert!(alloc_count() > a0);
        assert!(bytes_allocated() >= b0 + 64);
    }
}
