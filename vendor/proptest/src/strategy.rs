//! The [`Strategy`] trait and the primitive strategies: ranges, `any`,
//! tuples, `Just`, and the `prop_map` / `prop_flat_map` adapters.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree and no shrinking: `generate`
/// draws one value directly.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map {
            source: self,
            map: f,
        }
    }

    /// Builds a second strategy from each generated value and draws from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap {
            source: self,
            build: f,
        }
    }
}

/// Strategies live behind references too (needed because `generate` takes
/// `&self` and adapters store strategies by value).
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.map)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    source: S,
    build: F,
}

impl<S, F, T> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.build)(self.source.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy, mirroring
/// `proptest::arbitrary::Arbitrary` for the primitives dlflow tests use.
pub trait Arbitrary: Sized {
    /// Draws a uniformly distributed value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> i128 {
        u128::arbitrary(rng) as i128
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy for any value of `T` (primitives only in this shim).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy range is empty");
                let width = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % width) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "strategy range is empty");
                let width = (end as i128 - start as i128) as u128 + 1;
                (start as i128 + (rng.next_u64() as u128 % width) as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "strategy range is empty");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "strategy range is empty");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        start + unit * (end - start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}
