//! Numeric strategies beyond plain ranges.

/// `f64` strategies.
pub mod f64 {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Generates normal (finite, non-zero-exponent-class) `f64` values of
    /// either sign, mirroring `proptest::num::f64::NORMAL`.
    #[derive(Clone, Copy, Debug)]
    pub struct NormalF64;

    /// All normal `f64` values.
    pub const NORMAL: NormalF64 = NormalF64;

    impl Strategy for NormalF64 {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            let sign = rng.next_u64() & (1 << 63);
            // Biased exponent in [1, 2046] — excludes zero/subnormal (0)
            // and inf/NaN (2047), so the result is always normal.
            let exponent = 1 + rng.next_u64() % 2046;
            let mantissa = rng.next_u64() & ((1u64 << 52) - 1);
            f64::from_bits(sign | (exponent << 52) | mantissa)
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use crate::test_runner::TestRng;

        #[test]
        fn always_normal() {
            let mut rng = TestRng::from_name("always_normal");
            for _ in 0..10_000 {
                let v = NORMAL.generate(&mut rng);
                assert!(v.is_normal(), "{v} is not normal");
            }
        }
    }
}
