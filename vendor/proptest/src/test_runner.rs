//! Test-runner plumbing: configuration, case outcomes, and the RNG.

use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

/// How a single generated case ended, other than plain success.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case's inputs violated a `prop_assume!` precondition; the runner
    /// redraws without counting the case.
    Reject(String),
    /// An assertion failed; the runner panics with this message.
    Fail(String),
}

/// Runner configuration. Only `cases` is honoured by this shim; the struct
/// is non-exhaustive-by-convention so `with_cases` is the supported
/// constructor.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config that runs `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// The deterministic RNG driving strategy generation.
///
/// Seeded from the test function's name (FNV-1a), so every `cargo test` run
/// replays the same inputs — failures are reproducible without a
/// `proptest-regressions` persistence file.
#[derive(Clone, Debug)]
pub struct TestRng {
    inner: SmallRng,
}

impl TestRng {
    /// Builds the RNG for the named test function.
    pub fn from_name(name: &str) -> TestRng {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
        TestRng {
            inner: SmallRng::seed_from_u64(hash),
        }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}
