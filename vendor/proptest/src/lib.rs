//! Offline stand-in for the `proptest` crate.
//!
//! The dlflow build environment has no registry access, so this vendored
//! crate implements the slice of proptest the workspace's property tests
//! use: the `proptest!` macro with `#![proptest_config(...)]`, `prop_assert*`
//! / `prop_assume!`, `any::<T>()`, range and tuple strategies,
//! `prop_map` / `prop_flat_map`, `collection::vec`, `option::weighted`, and
//! `num::f64::NORMAL`.
//!
//! Semantics vs the real crate:
//!
//! - **Deterministic**: each test function derives its RNG seed from its own
//!   name, so runs are reproducible without a persistence file.
//! - **No shrinking**: a failing case reports the failure message (and the
//!   case number) but does not minimise the input. Re-run with the same
//!   binary to reproduce; add ad-hoc `eprintln!`s to inspect inputs.
//! - `prop_assume!` rejections retry without counting toward the case
//!   budget, capped at 65 536 rejections per test.

#![warn(missing_docs)]

pub mod collection;
pub mod num;
pub mod option;
pub mod strategy;
pub mod test_runner;

/// Everything a property test needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// The entry-point macro: a block of `#[test]` functions whose arguments are
/// drawn from strategies.
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     // Add #[test] above the fn when inside a test module; without it
///     // the macro still generates a plain runner function, which lets
///     // this doctest drive the 64 cases directly:
///     fn addition_commutes(a in 0i64..100, b in 0i64..100) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// addition_commutes();
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
                let mut accepted: u32 = 0;
                let mut rejected: u32 = 0;
                while accepted < config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match outcome {
                        ::std::result::Result::Ok(()) => accepted += 1,
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(why)) => {
                            rejected += 1;
                            assert!(
                                rejected < 65_536,
                                "proptest {}: too many prop_assume! rejections ({})",
                                stringify!($name), why
                            );
                        }
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest {} failed at case {}/{}: {}",
                                stringify!($name), accepted + 1, config.cases, msg
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`", __l, __r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`: {}",
                        __l, __r, format!($($fmt)+)),
            ));
        }
    }};
}

/// Fails the current case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: `left != right`\n  both: `{:?}`", __l),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: `left != right`\n  both: `{:?}`: {}", __l, format!($($fmt)+)),
            ));
        }
    }};
}

/// Rejects the current case (retried without counting) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}
