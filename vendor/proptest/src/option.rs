//! Strategies for `Option`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// The strategy returned by [`weighted`].
pub struct WeightedOption<S> {
    some_probability: f64,
    inner: S,
}

impl<S: Strategy> Strategy for WeightedOption<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        if unit < self.some_probability {
            Some(self.inner.generate(rng))
        } else {
            None
        }
    }
}

/// Yields `Some(inner)` with probability `some_probability`, else `None`.
pub fn weighted<S: Strategy>(some_probability: f64, inner: S) -> WeightedOption<S> {
    assert!(
        (0.0..=1.0).contains(&some_probability),
        "weighted: probability {some_probability} outside [0, 1]"
    );
    WeightedOption {
        some_probability,
        inner,
    }
}
