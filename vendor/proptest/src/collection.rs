//! Collection strategies: `vec` with a size range.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// An inclusive length range for collection strategies.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "vec strategy: empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "vec strategy: empty size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// The strategy returned by [`fn@vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max - self.size.min) as u64 + 1;
        let len = self.size.min + (rng.next_u64() % span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A strategy for `Vec`s whose length is drawn from `size` and whose
/// elements are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
