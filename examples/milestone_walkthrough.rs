//! Theorem 2 from the inside: watch the milestone machinery work.
//!
//! For a small instance this example prints every milestone (where the
//! relative order of releases and deadlines changes), probes feasibility
//! at each one, shows the isolated range, and solves the final
//! parametric LP — then cross-checks against the ε-bisection strawman
//! the paper dismisses in §4.3.1.
//!
//! Run with: `cargo run --release --example milestone_walkthrough`

use dlflow::core::instance::InstanceBuilder;
use dlflow::core::maxflow::{
    feasible_at, min_max_weighted_flow_bisection, min_max_weighted_flow_divisible,
};
use dlflow::core::milestones::{milestone_bound, milestones};
use dlflow::num::Rat;

fn ri(v: i64) -> Rat {
    Rat::from_i64(v)
}

fn main() {
    let mut b = InstanceBuilder::<Rat>::new();
    b.job(ri(0), Rat::one()); //      d̄_1(F) = F
    b.job(ri(2), ri(2)); //           d̄_2(F) = 2 + F/2
    b.job(ri(3), Rat::one()); //      d̄_3(F) = 3 + F
    b.machine(vec![Some(ri(4)), Some(ri(3)), Some(ri(2))]);
    b.machine(vec![Some(ri(8)), None, Some(ri(4))]);
    let inst = b.build().unwrap();

    println!("deadline functions:");
    for j in 0..inst.n_jobs() {
        let job = inst.job(j);
        println!(
            "  d̄_{}(F) = {} + F/{}   (release {}, weight {})",
            j + 1,
            job.release,
            job.weight,
            job.release,
            job.weight
        );
    }

    let ms = milestones(&inst);
    println!(
        "\nmilestones ({} distinct, bound n²−n = {}):",
        ms.len(),
        milestone_bound(inst.n_jobs())
    );
    for f in &ms {
        let feas = feasible_at(&inst, f, false);
        println!("  F = {:<6} feasible: {}", f.to_string(), feas);
        // Show what coincides at this milestone.
        for j in 0..inst.n_jobs() {
            for k in 0..inst.n_jobs() {
                if j != k && inst.deadline(j, f) == inst.job(k).release {
                    println!("          d̄_{}(F) meets r_{}", j + 1, k + 1);
                }
                if j < k && inst.deadline(j, f) == inst.deadline(k, f) {
                    println!("          d̄_{}(F) meets d̄_{}(F)", j + 1, k + 1);
                }
            }
        }
    }

    let out = min_max_weighted_flow_divisible(&inst);
    println!(
        "\nexact optimum: F* = {} (≈ {:.6}) found with {} feasibility probes",
        out.optimum,
        out.optimum.to_f64(),
        out.stats.n_probes
    );
    println!("achieving schedule:\n{}", out.schedule);

    // The strawman for contrast.
    let eps = Rat::from_ratio(1, 100_000);
    let bi = min_max_weighted_flow_bisection(&inst, &eps, false);
    println!(
        "ε-bisection (ε = 1e-5): {} iterations → F ≈ {:.6} (error {:.2e})",
        bi.iterations,
        bi.approx_optimum.to_f64(),
        (bi.approx_optimum.to_f64() - out.optimum.to_f64()).abs()
    );
    println!(
        "the milestone search needed {} probes and returned the exact rational.",
        out.stats.n_probes
    );
}
