//! A day in the life of a GriPPS deployment: synthesize a heterogeneous
//! databank platform and a batch of motif-comparison requests, build the
//! scheduling instance from the calibrated cost model, and compare the
//! exact offline optimum against classical baselines.
//!
//! Run with: `cargo run --release --example gripps_day`

use dlflow::core::baselines::{baseline_max_weighted_flow, ListOrder};
use dlflow::core::maxflow::min_max_weighted_flow_divisible;
use dlflow::core::validate::validate;
use dlflow::gripps::motif::Motif;
use dlflow::gripps::{random_requests, CostModel, Databank, DatabankSpec, PlatformSpec};

fn main() {
    // --- The application layer: a real scan, to show the payload. -------
    let bank = Databank::generate(&DatabankSpec {
        n_sequences: 300,
        mean_len: 300,
        min_len: 50,
        seed: 7,
    });
    let motifs = Motif::random_set(20, 6, 99);
    let report = dlflow::gripps::scan_databank(&bank, &motifs);
    println!("== GriPPS scan payload ==");
    println!(
        "scanned {} sequences ({} residues) x {} motifs: {} matches, {} residue visits",
        bank.n_sequences(),
        bank.total_residues(),
        motifs.len(),
        report.matches.len(),
        report.residues_scanned
    );

    // --- The platform layer: servers, replication, requests. ------------
    let platform = PlatformSpec::random(4, 6, 3.0, 2024);
    let requests = random_requests(&platform, 8, 120.0, 11);
    let model = CostModel::paper_scale();
    println!("\n== Platform ==");
    for (i, s) in platform.servers.iter().enumerate() {
        println!(
            "  server {}: cycle {:.2}, databanks {:?}",
            i + 1,
            s.cycle_time,
            s.databanks
        );
    }
    println!("== Requests ==");
    for (j, r) in requests.iter().enumerate() {
        println!(
            "  J{}: databank {}, {:.0} motifs, release {:.1}s, weight {}",
            j + 1,
            r.databank,
            r.n_motifs,
            r.release,
            r.weight
        );
    }

    let inst = platform
        .instance(&requests, &model)
        .expect("valid platform instance");

    // --- The scheduling layer: exact offline optimum vs baselines. ------
    let opt = min_max_weighted_flow_divisible(&inst);
    validate(&inst, &opt.schedule).expect("optimal schedule valid");
    println!("\n== Offline divisible optimum (Theorem 2, f64 arithmetic) ==");
    println!(
        "F* = {:.2} weighted-seconds  ({} milestones, {} probes)",
        opt.optimum, opt.stats.n_milestones, opt.stats.n_probes
    );

    println!("\n== Baselines (non-divisible list scheduling) ==");
    for (label, order) in [
        ("FIFO-MCT", ListOrder::ReleaseDate),
        ("SPT-MCT", ListOrder::ShortestFirst),
        ("Weight-MCT", ListOrder::WeightedFirst),
    ] {
        let f = baseline_max_weighted_flow(&inst, order);
        println!(
            "  {label:<11} max weighted flow = {:.2}  ({:.2}x optimal)",
            f,
            f / opt.optimum
        );
        assert!(
            f >= opt.optimum * (1.0 - 1e-6),
            "baseline cannot beat the optimum"
        );
    }
}
