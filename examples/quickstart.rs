//! Quickstart: model a small databank platform, compute the exact optimal
//! max weighted flow in both execution models, and print the schedules.
//!
//! Run with: `cargo run --release --example quickstart`

use dlflow::core::baselines::{baseline_max_weighted_flow, ListOrder};
use dlflow::core::instance::InstanceBuilder;
use dlflow::core::makespan::min_makespan;
use dlflow::core::maxflow::{min_max_weighted_flow_divisible, min_max_weighted_flow_preemptive};
use dlflow::core::validate::validate;
use dlflow::num::Rat;

fn main() {
    // Three comparison requests against two databank servers.
    // Server 1 is fast and holds both databanks; server 2 is slower and
    // holds only the first databank (c = ∞ for the second request there).
    let mut b = InstanceBuilder::<Rat>::new();
    let _j1 = b.job(Rat::from_i64(0), Rat::one()); //      r=0, w=1
    let _j2 = b.job(Rat::from_i64(1), Rat::from_i64(4)); // r=1, w=4 (urgent)
    let _j3 = b.job(Rat::from_i64(2), Rat::one()); //      r=2, w=1
    b.machine(vec![
        Some(Rat::from_i64(6)),
        Some(Rat::from_i64(2)),
        Some(Rat::from_i64(4)),
    ]);
    b.machine(vec![Some(Rat::from_i64(9)), None, Some(Rat::from_i64(8))]);
    let inst = b.build().expect("valid instance");

    println!("== Instance ==");
    println!(
        "{} jobs on {} machines (c[i][j] in seconds):",
        inst.n_jobs(),
        inst.n_machines()
    );
    for i in 0..inst.n_machines() {
        let row: Vec<String> = (0..inst.n_jobs())
            .map(|j| match inst.cost(i, j).finite() {
                Some(c) => c.to_string(),
                None => "inf".to_string(),
            })
            .collect();
        println!("  M{}: [{}]", i + 1, row.join(", "));
    }

    // Theorem 1: makespan.
    let mk = min_makespan(&inst);
    validate(&inst, &mk.schedule).expect("makespan schedule valid");
    println!("\n== Theorem 1: divisible makespan ==");
    println!(
        "optimal C_max = {} (= {:.4})",
        mk.makespan,
        mk.makespan.to_f64()
    );

    // Theorem 2: divisible max weighted flow.
    let div = min_max_weighted_flow_divisible(&inst);
    validate(&inst, &div.schedule).expect("divisible schedule valid");
    println!("\n== Theorem 2: divisible max weighted flow ==");
    println!(
        "optimal F* = {} (= {:.4}), {} milestones, {} probes",
        div.optimum,
        div.optimum.to_f64(),
        div.stats.n_milestones,
        div.stats.n_probes
    );
    println!("{}", div.schedule);
    println!("{}", dlflow::core::gantt::render_gantt(&div.schedule, 60));

    // §4.4: preemptive (non-divisible).
    let pre = min_max_weighted_flow_preemptive(&inst);
    validate(&inst, &pre.schedule).expect("preemptive schedule valid");
    println!("== §4.4: preemptive max weighted flow ==");
    println!(
        "optimal F* = {} (= {:.4}), {} preemptions",
        pre.optimum,
        pre.optimum.to_f64(),
        pre.schedule.n_preemptions(inst.n_jobs())
    );
    println!("{}", pre.schedule);

    // Baseline for contrast.
    let fifo = baseline_max_weighted_flow(&inst, ListOrder::ReleaseDate);
    println!("== Non-divisible FIFO-MCT baseline ==");
    println!("max weighted flow = {} (= {:.4})", fifo, fifo.to_f64());

    assert!(div.optimum <= pre.optimum && pre.optimum <= fifo);
    println!(
        "\nchain verified: divisible {} <= preemptive {} <= baseline {}",
        div.optimum.to_f64(),
        pre.optimum.to_f64(),
        fifo.to_f64()
    );
}
