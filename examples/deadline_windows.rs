//! Lemma 1 walkthrough: deadline scheduling as LP feasibility, in both
//! execution models, with Gantt charts — and the uniform-machines
//! max-flow fast path giving the same answers without any LP.
//!
//! Run with: `cargo run --release --example deadline_windows`

use dlflow::core::deadline::{deadline_feasible_divisible, deadline_feasible_preemptive};
use dlflow::core::gantt::render_gantt;
use dlflow::core::instance::InstanceBuilder;
use dlflow::core::uniform::{deadline_feasible_uniform, uniform_factors};
use dlflow::core::validate::validate;
use dlflow::num::Rat;

fn ri(v: i64) -> Rat {
    Rat::from_i64(v)
}

fn main() {
    // Uniform platform (W·s factorization): works [4, 2, 6], speeds [1, 2].
    let mut b = InstanceBuilder::<Rat>::new();
    b.job(ri(0), Rat::one());
    b.job(ri(1), Rat::one());
    b.job(ri(2), Rat::one());
    b.machine(vec![Some(ri(4)), Some(ri(2)), Some(ri(6))]);
    b.machine(vec![Some(ri(8)), Some(ri(4)), None]);
    let inst = b.build().unwrap();

    let f = uniform_factors(&inst).expect("platform factorizes");
    println!(
        "uniform factorization: speeds = {:?}, works = {:?}\n",
        f.speed, f.work
    );

    for (label, d1, d2, d3) in [
        ("generous", 12i64, 12i64, 12i64),
        ("tight", 8, 6, 8),
        ("impossible", 4, 3, 5),
    ] {
        let deadlines = vec![ri(d1), ri(d2), ri(d3)];
        println!("=== windows [r_j, d_j] with deadlines ({d1}, {d2}, {d3}) — {label} ===");

        let div = deadline_feasible_divisible(&inst, &deadlines);
        let pre = deadline_feasible_preemptive(&inst, &deadlines);
        let mf = deadline_feasible_uniform(&inst, &deadlines).expect("uniform path applies");
        assert_eq!(div.is_some(), mf.is_some(), "LP and max-flow must agree");

        match (&div, &pre) {
            (Some(ds), Some(ps)) => {
                validate(&inst, ds).unwrap();
                validate(&inst, ps).unwrap();
                println!("divisible: FEASIBLE (also via max-flow, no LP)");
                print!("{}", render_gantt(ds, 52));
                println!("preemptive: FEASIBLE");
                print!("{}", render_gantt(ps, 52));
            }
            (Some(ds), None) => {
                validate(&inst, ds).unwrap();
                println!("divisible: FEASIBLE — preemptive: INFEASIBLE");
                println!("(simultaneous execution on several servers is what divisibility buys)");
                print!("{}", render_gantt(ds, 52));
            }
            (None, _) => {
                println!("divisible: INFEASIBLE (hence preemptive too)");
            }
        }
        println!();
    }
}
