//! The paper's concluding experiment in miniature: replay a random
//! request stream through the online policies (MCT, FIFO, SRPT,
//! weighted-age, and the offline-adapted OLA) and compare their max
//! weighted flow against the exact offline divisible optimum.
//!
//! Run with: `cargo run --release --example online_vs_offline`

use dlflow::core::maxflow::min_max_weighted_flow_divisible;
use dlflow::sim::engine::{simulate, OnlineScheduler, RunMetrics};
use dlflow::sim::schedulers::{FifoFastest, Mct, OfflineAdapt, RoundRobin, Srpt, WeightedAge};
use dlflow::sim::workload::{generate, WorkloadSpec};

fn main() {
    let spec = WorkloadSpec {
        n_jobs: 8,
        n_machines: 3,
        mean_interarrival: 3.0,
        cost_range: (2.0, 15.0),
        heterogeneity: 3.0,
        availability: 0.7,
        weights: vec![1.0, 2.0, 5.0],
        seed: 42,
    };
    let inst = generate(&spec);
    println!(
        "instance: {} jobs on {} machines (seed {})",
        inst.n_jobs(),
        inst.n_machines(),
        spec.seed
    );

    // The offline clairvoyant bound (Theorem 2).
    let offline = min_max_weighted_flow_divisible(&inst);
    println!("\noffline divisible optimum F* = {:.3}\n", offline.optimum);

    println!(
        "{:<22} {:>12} {:>10} {:>10} {:>10}",
        "policy", "maxWF", "vs opt", "maxStretch", "meanFlow"
    );
    let mut policies: Vec<Box<dyn OnlineScheduler>> = vec![
        Box::new(Mct::new()),
        Box::new(FifoFastest::new()),
        Box::new(Srpt::new()),
        Box::new(RoundRobin::new()),
        Box::new(WeightedAge::new()),
        Box::new(OfflineAdapt::new()),
    ];
    let mut ola_wf = f64::INFINITY;
    let mut mct_wf = f64::INFINITY;
    for p in policies.iter_mut() {
        let res = simulate(&inst, p.as_mut()).expect("simulation completes");
        let m = RunMetrics::from_completions(&inst, &res.completions);
        println!(
            "{:<22} {:>12.3} {:>9.2}x {:>10.3} {:>10.3}",
            p.name(),
            m.max_weighted_flow,
            m.max_weighted_flow / offline.optimum,
            m.max_stretch,
            m.mean_flow
        );
        if p.name().starts_with("OLA") {
            ola_wf = m.max_weighted_flow;
        }
        if p.name() == "MCT" {
            mct_wf = m.max_weighted_flow;
        }
        assert!(
            m.max_weighted_flow >= offline.optimum * (1.0 - 1e-4),
            "no online policy can beat the offline optimum"
        );
    }

    println!(
        "\nOLA vs MCT: {:.3} vs {:.3} ({})",
        ola_wf,
        mct_wf,
        if ola_wf <= mct_wf {
            "OLA wins or ties, as the paper reports"
        } else {
            "MCT won on this seed"
        }
    );
}
