//! Why exact arithmetic matters: the same instance solved with `f64` and
//! with exact rationals, showing that the rational path returns the true
//! optimum as a closed-form fraction while floats only approximate it —
//! and that the milestone set (the heart of Theorem 2) is computed
//! symbolically.
//!
//! Run with: `cargo run --release --example exact_arithmetic`

use dlflow::core::instance::InstanceBuilder;
use dlflow::core::maxflow::min_max_weighted_flow_divisible;
use dlflow::core::milestones::{milestone_bound, milestones};
use dlflow::num::Rat;

fn main() {
    // Heterogeneous speeds (costs 2 vs 3) make the optimum a non-dyadic
    // rational, which no finite binary search over f64 could ever state
    // exactly — the milestone machinery of Theorem 2 can.
    let mut b = InstanceBuilder::<Rat>::new();
    b.job(Rat::zero(), Rat::one());
    b.job(Rat::one(), Rat::from_i64(2));
    b.machine(vec![Some(Rat::from_i64(2)), Some(Rat::from_i64(2))]);
    b.machine(vec![Some(Rat::from_i64(3)), Some(Rat::from_i64(3))]);
    let inst = b.build().unwrap();

    let ms = milestones(&inst);
    println!(
        "milestones ({} of at most {}):",
        ms.len(),
        milestone_bound(inst.n_jobs())
    );
    for m in &ms {
        println!("  F = {m}");
    }

    let exact = min_max_weighted_flow_divisible(&inst);
    println!(
        "\nexact optimum:  F* = {}   (numerator/denominator form)",
        exact.optimum
    );
    println!("as float:       F* ≈ {:.17}", exact.optimum.to_f64());

    let approx = min_max_weighted_flow_divisible(&inst.map_scalar(|v| v.to_f64()));
    println!("f64 pipeline:   F* ≈ {:.17}", approx.optimum);
    println!(
        "difference:     {:.3e}",
        (approx.optimum - exact.optimum.to_f64()).abs()
    );

    // The exact schedule achieves the exact optimum, verifiably.
    assert_eq!(exact.schedule.max_weighted_flow(&inst), exact.optimum);
    println!("\nexact schedule:\n{}", exact.schedule);
}
