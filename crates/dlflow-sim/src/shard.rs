//! Multi-cluster sharding: a front-end over independent sub-engines.
//!
//! The GriPPS deployment the paper studies is not one flat machine pool:
//! requests hit a *federation* of clusters, and a request served by one
//! cluster never migrates to another. [`ShardedEngine`] models exactly
//! that — it partitions the platform's machines into `n_shards`
//! **contiguous** ranges, runs one flattened [`Engine`] per range, and
//! pins every arriving job to a single shard at admission time:
//!
//! * **assignment policy**: a job goes to the shard holding its fastest
//!   (minimum finite-cost) machine; ties resolve to the lowest shard
//!   index. Deterministic, so serial and parallel drains see identical
//!   per-shard workloads;
//! * **independence**: once pinned, a job interacts only with its
//!   shard's machines, scheduler instance, and clock. Shards therefore
//!   drain with *no* synchronization — in parallel under the rayon
//!   `par_iter_mut` shim, or serially in shard order, with bit-identical
//!   results either way;
//! * **deterministic merge**: completion streams are merged by a stable
//!   k-way walk ordered on completion time, cross-shard ties broken by
//!   the lower shard index; metrics fold through
//!   [`MetricsAccumulator`]'s field-wise merge in fixed shard order;
//!   event/plan counters sum. Every reported number is a pure function
//!   of the trace and the shard count, never of thread scheduling.
//!
//! With `n_shards == 1` the front-end is a transparent wrapper: the
//! assignment policy has one choice, the merge is the identity, and the
//! run is bit-identical to driving the inner [`Engine`] directly (the
//! differential suite in `tests/prop_shard.rs` pins this down).
//!
//! Snapshot/resume is a single-engine feature: [`ShardedEngine::snapshot`]
//! returns [`SnapshotError::ShardedUnsupported`] for multi-shard
//! front-ends instead of inventing a second on-disk format.

use crate::engine::{
    utilization_of, CompletedJob, Engine, JobSpec, MetricsAccumulator, OnlineScheduler,
    PlatformEvent, RunMetrics, SimError, StepOutcome, EPS,
};
use crate::snapshot::SnapshotError;
use crate::workload::{ReplayStats, Trace};
use rayon::prelude::*;

/// A multi-cluster simulation front-end: contiguous machine shards, each
/// an independent [`Engine`], behind a deterministic job-assignment
/// policy. See the [module docs](self).
#[derive(Debug)]
pub struct ShardedEngine {
    n_machines: usize,
    /// Shard boundaries: shard `s` owns machines
    /// `starts[s]..starts[s + 1]`.
    starts: Vec<usize>,
    shards: Vec<Engine>,
    /// Per shard: local job id → global job id, in local-id order.
    global_of: Vec<Vec<usize>>,
    next_id: usize,
}

impl ShardedEngine {
    /// A fresh front-end over `n_machines` machines split into
    /// `n_shards` contiguous near-equal ranges (the first
    /// `n_machines % n_shards` shards hold one extra machine). A shard
    /// count above the machine count is clamped — every shard must own
    /// at least one machine.
    ///
    /// # Panics
    ///
    /// If `n_machines` or `n_shards` is zero.
    pub fn new(n_machines: usize, n_shards: usize) -> ShardedEngine {
        assert!(n_machines > 0, "sharded engine needs at least one machine");
        assert!(n_shards > 0, "sharded engine needs at least one shard");
        let k = n_shards.min(n_machines);
        let base = n_machines / k;
        let extra = n_machines % k;
        let mut starts = Vec::with_capacity(k + 1);
        let mut at = 0usize;
        starts.push(at);
        for s in 0..k {
            at += base + usize::from(s < extra);
            starts.push(at);
        }
        debug_assert_eq!(at, n_machines);
        let shards = (0..k)
            .map(|s| Engine::new(starts[s + 1] - starts[s]))
            .collect();
        ShardedEngine {
            n_machines,
            starts,
            shards,
            global_of: vec![Vec::new(); k],
            next_id: 0,
        }
    }

    /// Number of machines across all shards.
    pub fn n_machines(&self) -> usize {
        self.n_machines
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// The machine range `[start, end)` owned by shard `s`.
    pub fn shard_range(&self, s: usize) -> (usize, usize) {
        (self.starts[s], self.starts[s + 1])
    }

    /// Read access to one sub-engine (tests and reports).
    pub fn shard(&self, s: usize) -> &Engine {
        &self.shards[s]
    }

    /// Latest clock across shards (each shard clocks independently).
    pub fn now(&self) -> f64 {
        self.shards.iter().map(Engine::now).fold(0.0, f64::max)
    }

    /// Total events processed across shards. Summation is
    /// order-independent, so serial and parallel drains report the same
    /// count.
    pub fn n_events(&self) -> usize {
        self.shards.iter().map(Engine::n_events).sum()
    }

    /// Total `plan` invocations across shards.
    pub fn n_plans(&self) -> usize {
        self.shards.iter().map(Engine::n_plans).sum()
    }

    /// Total completions across shards.
    pub fn n_completed(&self) -> usize {
        self.shards.iter().map(Engine::n_completed).sum()
    }

    /// Sum of per-shard active-set high-water marks — an upper bound on
    /// the global in-flight peak (per-shard peaks need not coincide in
    /// time).
    pub fn peak_active(&self) -> usize {
        self.shards.iter().map(Engine::peak_active).sum()
    }

    /// Busy machine-seconds in global machine order (shards are
    /// contiguous, so concatenation in shard order is machine order).
    pub fn busy(&self) -> Vec<f64> {
        let mut busy = Vec::with_capacity(self.n_machines);
        for e in &self.shards {
            busy.extend_from_slice(e.busy());
        }
        busy
    }

    /// Whether completions are buffered for [`ShardedEngine::take_completed`]
    /// (toggles every shard; see [`Engine::record_completions`]).
    pub fn set_record_completions(&mut self, on: bool) {
        for e in &mut self.shards {
            e.record_completions = on;
        }
    }

    /// Metrics over everything completed so far, folded in fixed shard
    /// order via the accumulator's field-wise merge.
    pub fn metrics(&self) -> RunMetrics {
        self.accumulate().metrics()
    }

    /// Fleet utilization over `[first completed release, makespan]`,
    /// both taken across all shards.
    pub fn utilization(&self) -> f64 {
        let acc = self.accumulate();
        let busy = self.busy();
        utilization_of(
            &busy,
            acc.first_release().unwrap_or(f64::INFINITY),
            acc.metrics().makespan,
        )
    }

    fn accumulate(&self) -> MetricsAccumulator {
        let mut acc = MetricsAccumulator::new();
        for e in &self.shards {
            acc.merge(&e.metrics);
        }
        acc
    }

    /// Which shard owns global machine index `machine`.
    fn shard_of_machine(&self, machine: usize) -> usize {
        debug_assert!(machine < self.n_machines);
        // Shard counts are small; a linear scan beats binary search.
        let mut s = 0;
        while self.starts[s + 1] <= machine {
            s += 1;
        }
        s
    }

    /// Queues one arriving job: validated exactly like
    /// [`Engine::push_arrival`], assigned to the shard holding its
    /// fastest machine (ties to the lowest shard index), then pushed to
    /// that shard with its cost row sliced to the shard's machine range.
    /// Returns the job's *global* id — dense in push order, exactly as a
    /// flat engine would number the same stream.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidJob`] under the same validation (and messages)
    /// as [`Engine::push_arrival`]; a rejected spec consumes no id.
    pub fn push_arrival(&mut self, job: JobSpec) -> Result<usize, SimError> {
        self.push_arrival_ref(job.release, job.weight, &job.costs)
    }

    /// [`ShardedEngine::push_arrival`] without the owning [`JobSpec`] —
    /// the hot replay entry point: the row is sliced and copied straight
    /// into the owning shard's slab, no allocation.
    ///
    /// # Errors
    ///
    /// As [`ShardedEngine::push_arrival`].
    pub fn push_arrival_ref(
        &mut self,
        release: f64,
        weight: f64,
        costs: &[f64],
    ) -> Result<usize, SimError> {
        // Full-row validation happens here, not per shard: a sub-engine
        // only ever sees its slice, but a NaN in *any* machine's cost
        // must reject the job with the flat engine's exact error.
        let invalid = |reason| Err(SimError::InvalidJob { reason });
        if costs.len() != self.n_machines {
            return invalid("costs length does not match the machine count");
        }
        if !costs.iter().any(|c| c.is_finite()) {
            return invalid("job can run on no machine");
        }
        if !costs.iter().all(|c| *c >= 0.0) {
            return invalid("job has a negative or NaN cost");
        }
        if !(release.is_finite() && release >= 0.0) {
            return invalid("job release must be finite and non-negative");
        }
        if !(weight.is_finite() && weight >= 0.0) {
            return invalid("job weight must be finite and non-negative");
        }
        // Assignment: fastest machine wins; the strict `<` over an
        // ascending scan breaks ties toward the lowest shard index. A
        // shard where the job runs nowhere scores infinity and the
        // validation above guarantees some shard scores finite.
        let mut best = 0usize;
        let mut best_cost = f64::INFINITY;
        for s in 0..self.shards.len() {
            let local = &costs[self.starts[s]..self.starts[s + 1]];
            let fastest = local.iter().cloned().fold(f64::INFINITY, f64::min);
            if fastest < best_cost {
                best = s;
                best_cost = fastest;
            }
        }
        let id = self.next_id;
        self.next_id += 1;
        let local = self.shards[best].push_arrival_ref(
            release,
            weight,
            &costs[self.starts[best]..self.starts[best + 1]],
        )?;
        debug_assert_eq!(local, self.global_of[best].len());
        self.global_of[best].push(id);
        Ok(id)
    }

    /// Enqueues a failure/recovery for a *global* machine index, routed
    /// to the owning shard with the index remapped into the shard's
    /// local range.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidPlatformEvent`] under the same validation (and
    /// messages) as [`Engine::push_platform_event`].
    pub fn push_platform_event(&mut self, event: PlatformEvent) -> Result<(), SimError> {
        let invalid = |reason| Err(SimError::InvalidPlatformEvent { reason });
        if event.machine >= self.n_machines {
            return invalid("machine index out of range");
        }
        if !(event.time.is_finite() && event.time >= 0.0) {
            return invalid("event time must be finite and non-negative");
        }
        let s = self.shard_of_machine(event.machine);
        self.shards[s].push_platform_event(PlatformEvent {
            time: event.time,
            machine: event.machine - self.starts[s],
            change: event.change,
        })
    }

    /// Runs every shard to quiescence — the sharded counterpart of
    /// [`Engine::drain`]. Shards are independent, so they drain in
    /// parallel under the rayon shim (or inline on small counts /
    /// single-core hosts); either way each shard's event sequence, and
    /// therefore every merged number, is identical. The first error in
    /// shard-index order is returned.
    ///
    /// # Panics
    ///
    /// If `policies.len() != self.n_shards()` — each shard owns one
    /// scheduler instance for its whole run.
    ///
    /// # Errors
    ///
    /// Any [`SimError`] a shard's drain surfaces.
    pub fn drain(
        &mut self,
        policies: &mut [Box<dyn OnlineScheduler + Send>],
    ) -> Result<(), SimError> {
        assert_eq!(
            policies.len(),
            self.shards.len(),
            "sharded drain needs exactly one policy per shard"
        );
        let mut pairs: Vec<(&mut Engine, &mut (dyn OnlineScheduler + Send))> = self
            .shards
            .iter_mut()
            .zip(policies.iter_mut())
            .map(|(e, p)| (e, p.as_mut()))
            .collect(); // dlflint:allow(alloc-in-hot-loop, "one pair list per drain call, not per event; the per-event paths live in Engine::step")
        let results: Vec<Result<(), SimError>> = pairs
            .par_iter_mut()
            .map(|(eng, pol)| eng.drain(&mut **pol))
            .collect(); // dlflint:allow(alloc-in-hot-loop, "one result slot per shard per drain call, not per event")
        results.into_iter().collect()
    }

    /// Takes the buffered completion streams of every shard, remaps
    /// local ids back to global ids, and merges them into one stream:
    /// ordered by completion time, cross-shard ties broken by the lower
    /// shard index, within-shard order (the engine's admission-order
    /// sweep) preserved. Deterministic — and for a single shard, the
    /// identity.
    pub fn take_completed(&mut self) -> Vec<CompletedJob> {
        let mut streams: Vec<Vec<CompletedJob>> = Vec::with_capacity(self.shards.len());
        for (s, e) in self.shards.iter_mut().enumerate() {
            let mut stream = e.take_completed();
            for c in &mut stream {
                c.id = self.global_of[s][c.id];
            }
            streams.push(stream);
        }
        if streams.len() == 1 {
            return streams.pop().unwrap();
        }
        let total = streams.iter().map(Vec::len).sum();
        let mut out = Vec::with_capacity(total);
        let mut cursor = vec![0usize; streams.len()];
        loop {
            let mut best: Option<(usize, f64)> = None;
            for (s, stream) in streams.iter().enumerate() {
                if let Some(c) = stream.get(cursor[s]) {
                    // Strict `<` keeps the earliest (lowest-index) shard
                    // on completion-time ties.
                    if best.is_none_or(|(_, t)| c.completion < t) {
                        best = Some((s, c.completion));
                    }
                }
            }
            let Some((s, _)) = best else { break };
            out.push(streams[s][cursor[s]].clone());
            cursor[s] += 1;
        }
        out
    }

    /// Replays an open-arrival [`Trace`] through the shards. Platform
    /// events are routed up front; arrivals are assigned to shards in a
    /// validation pre-pass and then *streamed* into each shard one
    /// release batch ahead of its clock — exactly [`Trace::replay`]'s
    /// feeding discipline, applied per shard. Streaming keeps every
    /// shard's pending heap and job slab sized to its in-flight window
    /// rather than the whole trace, which is what makes the sharded
    /// replay faster than the flat one even on a single core; the event
    /// sequences are identical either way because a batch is always
    /// pushed before the step that could overrun its release. Shards
    /// replay independently (in parallel under the rayon shim); the
    /// merged counters come back as [`ReplayStats`]. Completions are
    /// *not* buffered; `max_active` is the cross-shard peak bound of
    /// [`ShardedEngine::peak_active`].
    ///
    /// # Errors
    ///
    /// Any [`SimError`] from validation or replay. Invalid arrivals are
    /// rejected in the pre-pass (same messages as
    /// [`ShardedEngine::push_arrival`]) before any shard state changes.
    pub fn replay_trace(
        &mut self,
        trace: &Trace,
        policies: &mut [Box<dyn OnlineScheduler + Send>],
    ) -> Result<ReplayStats, SimError> {
        assert_eq!(
            policies.len(),
            self.shards.len(),
            "sharded replay needs exactly one policy per shard"
        );
        for p in policies.iter_mut() {
            p.reset();
        }
        self.set_record_completions(false);
        for e in &trace.platform_events {
            self.push_platform_event(*e)?;
        }
        // Pre-pass: validate every arrival against the FULL cost row
        // (the flat engine's exact messages) and pin it to the shard of
        // its globally fastest machine — ties to the lowest machine
        // index, as in `push_arrival`. Global ids are dealt here, in
        // trace order, so the id map is identical to the push-all path
        // no matter how the per-shard replays interleave.
        let invalid = |reason| SimError::InvalidJob { reason };
        let mut routed: Vec<Vec<u32>> = vec![Vec::new(); self.shards.len()]; // dlflint:allow(alloc-in-hot-loop, "one route list per shard per replay, not per event")
                                                                             // Route probe: every cost is the monotone image `fl(size·ct)` of
                                                                             // its machine's cycle time, so with machines pre-sorted by
                                                                             // (cycle time, index) the global minimum cost sits at the first
                                                                             // *available* machine in that order, and the engine's
                                                                             // lowest-index tie-break is recovered by walking the (rare) run
                                                                             // of equal-cost machines behind it — O(1) expected per arrival
                                                                             // instead of O(m). Sound only when the cycle-time table and the
                                                                             // arrival itself are well-formed; anything else (and any probe
                                                                             // miss) falls back to the full engine-order scan below, which
                                                                             // also owns every error message.
        let cts = &trace.cycle_times;
        let cts_ok = cts.len() == self.n_machines && cts.iter().all(|c| c.is_finite() && *c >= 0.0);
        let mut ct_order: Vec<u32> = (0..cts.len() as u32).collect(); // dlflint:allow(alloc-in-hot-loop, "one probe order per replay, not per event")
        if cts_ok {
            ct_order.sort_unstable_by(|&x, &y| {
                cts[x as usize]
                    .partial_cmp(&cts[y as usize])
                    .unwrap() // dlflint:allow(hot-path-panic, "guarded by cts_ok: every cycle time is finite, so partial_cmp is total here")
                    .then(x.cmp(&y))
            });
        }
        for (k, a) in trace.arrivals.iter().enumerate() {
            if a.avail.len() != self.n_machines {
                return Err(invalid("costs length does not match the machine count"));
            }
            let fastest = 'route: {
                if cts_ok
                    && a.size.is_finite()
                    && a.size >= 0.0
                    && a.release.is_finite()
                    && a.release >= 0.0
                    && a.weight.is_finite()
                    && a.weight >= 0.0
                {
                    let mut it = ct_order.iter().copied();
                    if let Some(i0) = it.by_ref().find(|&i| a.avail[i as usize]) {
                        let cmin = a.size * cts[i0 as usize];
                        if cmin.is_finite() {
                            // Products are non-decreasing along the
                            // probe order, so the first strictly larger
                            // one ends the tie run.
                            let mut lo = i0 as usize;
                            for i in it {
                                if !a.avail[i as usize] {
                                    continue;
                                }
                                if a.size * cts[i as usize] > cmin {
                                    break;
                                }
                                lo = lo.min(i as usize);
                            }
                            break 'route lo;
                        }
                    }
                }
                let mut best: Option<(usize, f64)> = None;
                let mut negative = false;
                for (i, (ct, &ok)) in trace.cycle_times.iter().zip(&a.avail).enumerate() {
                    let c = if ok { a.size * ct } else { f64::INFINITY };
                    negative |= c.is_nan() || c < 0.0;
                    if c.is_finite() && best.is_none_or(|(_, b)| c < b) {
                        best = Some((i, c));
                    }
                }
                let Some((fastest, _)) = best else {
                    return Err(invalid("job can run on no machine"));
                };
                if negative {
                    return Err(invalid("job has a negative or NaN cost"));
                }
                if !(a.release.is_finite() && a.release >= 0.0) {
                    return Err(invalid("job release must be finite and non-negative"));
                }
                if !(a.weight.is_finite() && a.weight >= 0.0) {
                    return Err(invalid("job weight must be finite and non-negative"));
                }
                fastest
            };
            let s = self.shard_of_machine(fastest);
            routed[s].push(k as u32);
            self.global_of[s].push(self.next_id);
            self.next_id += 1;
        }
        // Streamed per-shard replay, one release batch ahead — the
        // moving parts of `Trace::replay_impl` with the arrival list
        // filtered to the shard's pinned jobs and cost rows sliced to
        // its machine range.
        let starts = &self.starts;
        let mut work: Vec<(
            &mut Engine,
            &mut (dyn OnlineScheduler + Send),
            &[u32],
            usize,
        )> = self
            .shards
            .iter_mut()
            .zip(policies.iter_mut())
            .enumerate()
            .map(|(s, (e, p))| (e, p.as_mut(), routed[s].as_slice(), starts[s]))
            .collect(); // dlflint:allow(alloc-in-hot-loop, "one work item per shard per replay, not per event")
        let results: Vec<Result<(), SimError>> = work
            .par_iter_mut()
            .map(|(eng, pol, mine, start)| {
                let m = eng.n_machines();
                let n = mine.len();
                let mut next = 0usize;
                let mut costs = vec![0.0f64; m]; // dlflint:allow(alloc-in-hot-loop, "one buffer per shard per replay, recycled across every arrival")
                let max_iters = 100_000 + 200 * n * (m + 2) + 2 * trace.platform_events.len();
                for _ in 0..max_iters {
                    if eng.pending_len() == 0 && next < n {
                        let t0 = trace.arrivals[mine[next] as usize].release;
                        while next < n {
                            let a = &trace.arrivals[mine[next] as usize];
                            if a.release > t0 + EPS {
                                break;
                            }
                            let (lo, hi) = (*start, *start + m);
                            for (c, (ct, &ok)) in costs
                                .iter_mut()
                                .zip(trace.cycle_times[lo..hi].iter().zip(&a.avail[lo..hi]))
                            {
                                *c = if ok { a.size * ct } else { f64::INFINITY };
                            }
                            eng.push_arrival_ref(a.release, a.weight, &costs)?;
                            next += 1;
                        }
                    }
                    let outcome = eng.step(&mut **pol)?;
                    if outcome == StepOutcome::Idle && next >= n {
                        return Ok(());
                    }
                }
                Err(SimError::Stalled { at: eng.now() })
            })
            .collect(); // dlflint:allow(alloc-in-hot-loop, "one result slot per shard per replay, not per event")
        results.into_iter().collect::<Result<(), SimError>>()?;
        Ok(ReplayStats {
            n_jobs: trace.len(),
            n_events: self.n_events(),
            n_plans: self.n_plans(),
            busy: self.busy(),
            metrics: self.metrics(),
            utilization: self.utilization(),
            max_active: self.peak_active(),
        })
    }

    /// Serializes the front-end to the single-engine `dlflow-snapshot
    /// v1` format. Only a 1-shard front-end is snapshotable: the format
    /// captures one engine, and inventing a multi-shard sibling format
    /// is out of scope by design.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::ShardedUnsupported`] when `n_shards > 1`.
    pub fn snapshot(&self, policy: &dyn OnlineScheduler) -> Result<String, SnapshotError> {
        if self.shards.len() > 1 {
            return Err(SnapshotError::ShardedUnsupported {
                n_shards: self.shards.len(),
            });
        }
        Ok(self.shards[0].snapshot(policy))
    }

    /// Restores a 1-shard front-end from a single-engine snapshot (the
    /// inverse of [`ShardedEngine::snapshot`] at shard count 1).
    ///
    /// # Errors
    ///
    /// As [`Engine::restore`].
    pub fn restore_single(
        text: &str,
        policy: &mut dyn OnlineScheduler,
    ) -> Result<ShardedEngine, SnapshotError> {
        let eng = Engine::restore(text, policy)?;
        let n_machines = eng.n_machines();
        let next_id = eng.next_id;
        Ok(ShardedEngine {
            n_machines,
            starts: vec![0, n_machines],
            global_of: vec![(0..next_id).collect()],
            shards: vec![eng],
            next_id,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::PlatformChange;
    use crate::schedulers::{Mct, Swrpt};
    use crate::workload::{generate_trace, ArrivalProcess, FaultProcess, TraceSpec};

    fn job(release: f64, weight: f64, costs: &[f64]) -> JobSpec {
        JobSpec {
            release,
            weight,
            costs: costs.to_vec(),
        }
    }

    fn boxed(policy: impl OnlineScheduler + Send + 'static) -> Box<dyn OnlineScheduler + Send> {
        Box::new(policy)
    }

    #[test]
    fn partition_is_contiguous_near_equal_and_clamped() {
        let se = ShardedEngine::new(10, 4);
        assert_eq!(se.n_shards(), 4);
        let ranges: Vec<(usize, usize)> = (0..4).map(|s| se.shard_range(s)).collect();
        assert_eq!(ranges, vec![(0, 3), (3, 6), (6, 8), (8, 10)]);
        // More shards than machines clamps to one machine per shard.
        let se = ShardedEngine::new(3, 8);
        assert_eq!(se.n_shards(), 3);
        assert_eq!(se.shard_range(2), (2, 3));
    }

    #[test]
    fn validation_matches_the_flat_engine() {
        let mut flat = Engine::new(2);
        let mut se = ShardedEngine::new(2, 2);
        for bad in [
            job(0.0, 1.0, &[1.0]),
            job(0.0, 1.0, &[f64::INFINITY, f64::INFINITY]),
            job(0.0, 1.0, &[1.0, -2.0]),
            job(0.0, 1.0, &[1.0, f64::NAN]),
            job(f64::NAN, 1.0, &[1.0, 2.0]),
            job(0.0, -1.0, &[1.0, 2.0]),
        ] {
            assert_eq!(
                flat.push_arrival(bad.clone()).unwrap_err(),
                se.push_arrival(bad).unwrap_err()
            );
        }
        assert_eq!(
            flat.push_platform_event(PlatformEvent {
                time: -1.0,
                machine: 0,
                change: PlatformChange::Down,
            })
            .unwrap_err(),
            se.push_platform_event(PlatformEvent {
                time: -1.0,
                machine: 0,
                change: PlatformChange::Down,
            })
            .unwrap_err()
        );
    }

    #[test]
    fn jobs_go_to_the_fastest_shard_ties_to_the_lowest() {
        let mut se = ShardedEngine::new(4, 2);
        // Fastest machine (cost 1) in shard 1's range.
        se.push_arrival(job(0.0, 1.0, &[5.0, 4.0, 1.0, 9.0]))
            .unwrap();
        // Equal fastest in both shards → shard 0.
        se.push_arrival(job(0.0, 1.0, &[3.0, 7.0, 3.0, 8.0]))
            .unwrap();
        // Runs only on shard 1's machines.
        se.push_arrival(job(
            0.0,
            1.0,
            &[f64::INFINITY, f64::INFINITY, f64::INFINITY, 2.0],
        ))
        .unwrap();
        assert_eq!(se.shard(0).pending_len(), 1);
        assert_eq!(se.shard(1).pending_len(), 2);
    }

    #[test]
    fn single_shard_run_is_bit_identical_to_the_flat_engine() {
        let mut flat = Engine::new(2);
        let mut fpol = Swrpt::new();
        let mut se = ShardedEngine::new(2, 1);
        let mut spols = vec![boxed(Swrpt::new())];
        for j in [
            job(0.0, 1.0, &[4.0, 6.0]),
            job(0.5, 2.0, &[3.0, f64::INFINITY]),
            job(0.5, 1.0, &[f64::INFINITY, 2.0]),
            job(2.0, 5.0, &[1.0, 1.5]),
        ] {
            flat.push_arrival(j.clone()).unwrap();
            se.push_arrival(j).unwrap();
        }
        flat.drain(&mut fpol).unwrap();
        se.drain(&mut spols).unwrap();
        assert_eq!(flat.take_completed(), se.take_completed());
        assert_eq!(flat.n_events(), se.n_events());
        assert_eq!(flat.n_plans(), se.n_plans());
        assert_eq!(flat.busy(), se.busy().as_slice());
        assert_eq!(
            flat.metrics().max_weighted_flow.to_bits(),
            se.metrics().max_weighted_flow.to_bits()
        );
    }

    #[test]
    fn cross_shard_simultaneous_completions_merge_by_shard_index() {
        // Two identical single-machine shards, one job each, identical
        // timing: both complete at t = 4. The merged stream must order
        // the shard-0 job (global id 0) first — the documented
        // tie-break — and keep doing so however many times it runs.
        let mut se = ShardedEngine::new(2, 2);
        se.push_arrival(job(0.0, 1.0, &[4.0, f64::INFINITY]))
            .unwrap();
        se.push_arrival(job(0.0, 1.0, &[f64::INFINITY, 4.0]))
            .unwrap();
        let mut pols = vec![boxed(Swrpt::new()), boxed(Swrpt::new())];
        se.drain(&mut pols).unwrap();
        let done = se.take_completed();
        assert_eq!(done.len(), 2);
        assert_eq!(done[0].completion.to_bits(), done[1].completion.to_bits());
        assert_eq!(done[0].id, 0, "tie goes to the lower shard");
        assert_eq!(done[1].id, 1);
    }

    #[test]
    fn two_shards_match_manually_partitioned_engines() {
        // The front-end must add nothing beyond routing: running each
        // half on its own flat engine reproduces the per-shard numbers.
        let trace = generate_trace(&TraceSpec {
            n_requests: 120,
            n_machines: 4,
            seed: 23,
            process: ArrivalProcess::Poisson { rate: 2.0 },
            ..Default::default()
        });
        let mut se = ShardedEngine::new(4, 2);
        let mut pols = vec![boxed(Swrpt::new()), boxed(Swrpt::new())];
        let stats = se.replay_trace(&trace, &mut pols).unwrap();
        assert_eq!(stats.n_jobs, 120);
        assert_eq!(
            stats.n_events,
            se.shard(0).n_events() + se.shard(1).n_events()
        );

        // Rebuild shard 0's stream by hand with the same assignment rule.
        let mut manual = Engine::new(2);
        let mut mpol = Swrpt::new();
        for a in &trace.arrivals {
            let costs: Vec<f64> = trace
                .cycle_times
                .iter()
                .zip(&a.avail)
                .map(|(ct, &ok)| if ok { a.size * ct } else { f64::INFINITY })
                .collect();
            let lo = costs[..2].iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = costs[2..].iter().cloned().fold(f64::INFINITY, f64::min);
            if lo <= hi {
                manual
                    .push_arrival_ref(a.release, a.weight, &costs[..2])
                    .unwrap();
            }
        }
        manual.drain(&mut mpol).unwrap();
        assert_eq!(manual.n_events(), se.shard(0).n_events());
        assert_eq!(manual.busy(), se.shard(0).busy());
        assert_eq!(
            manual.metrics().makespan.to_bits(),
            se.shard(0).metrics().makespan.to_bits()
        );
    }

    #[test]
    fn sharded_replay_handles_faulty_traces() {
        let trace = generate_trace(&TraceSpec {
            n_requests: 80,
            n_machines: 4,
            seed: 31,
            faults: Some(FaultProcess {
                mtbf: 10.0,
                mttr: 2.0,
                horizon: 30.0,
                seed: 7,
            }),
            ..Default::default()
        });
        assert!(!trace.platform_events.is_empty());
        let mut se = ShardedEngine::new(4, 2);
        let mut pols = vec![boxed(Mct::new()), boxed(Mct::new())];
        let stats = se.replay_trace(&trace, &mut pols).unwrap();
        assert_eq!(se.n_completed(), 80);
        assert!(stats.metrics.makespan.is_finite());
        assert!(stats.metrics.max_stretch.is_finite());
    }

    #[test]
    fn multi_shard_snapshot_is_a_typed_error() {
        let se = ShardedEngine::new(4, 2);
        let pol = Swrpt::new();
        match se.snapshot(&pol) {
            Err(SnapshotError::ShardedUnsupported { n_shards }) => assert_eq!(n_shards, 2),
            other => panic!("want ShardedUnsupported, got {other:?}"),
        }
        // One shard snapshots and restores fine.
        let mut se = ShardedEngine::new(2, 1);
        se.push_arrival(job(0.0, 1.0, &[2.0, 3.0])).unwrap();
        let mut pol = Swrpt::new();
        let text = se.snapshot(&pol).unwrap();
        let mut restored = ShardedEngine::restore_single(&text, &mut pol).unwrap();
        let mut pols = vec![boxed(Swrpt::new())];
        restored.drain(&mut pols).unwrap();
        assert_eq!(restored.n_completed(), 1);
    }
}
