//! Engine snapshot/restore: a versioned, byte-stable text format.
//!
//! A snapshot captures the *entire* observable state of a streaming
//! simulation — clock, event queues, active set, accumulated metrics,
//! platform availability, and the scheduler's private state — so a
//! long-running replay can be stopped and resumed with **bit-identical**
//! results: every f64 is serialized as the lowercase hex of its IEEE-754
//! bit pattern, and both heaps are written in their canonical pop order,
//! so `snapshot → restore → continue` takes exactly the float operations
//! the uninterrupted run takes.
//!
//! The format is line-oriented UTF-8 text with a `dlflow-snapshot v1`
//! header (see `docs/FORMATS.md` for the grammar). It is deliberately
//! *not* a general serialization: only the engine writes it and only the
//! engine reads it back, which is what keeps it byte-stable across
//! sessions without a serde dependency.
//!
//! Scheduler state rides along: [`Engine::snapshot`] embeds
//! [`OnlineScheduler::snapshot_state`] under the policy's `name()`, and
//! [`Engine::restore`] refuses to feed that state to a policy whose name
//! differs ([`SnapshotError::SchedulerMismatch`]) — restoring an MCT
//! queue into an EDF policy is a logic error, not a best-effort merge.

use crate::engine::{
    CompletedJob, Engine, MetricsAccumulator, OnlineScheduler, PlatformChange, PlatformEvent,
};
use std::fmt;

/// Errors surfaced when parsing or applying a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The header names a format version this build does not read.
    UnsupportedVersion {
        /// The header line as found.
        found: String,
    },
    /// A line failed to parse.
    Malformed {
        /// 1-based line number within the snapshot text.
        line: usize,
        /// What was wrong.
        reason: String,
    },
    /// The snapshot was taken under a different scheduler than the one
    /// offered for restore.
    SchedulerMismatch {
        /// Scheduler name recorded in the snapshot.
        expected: String,
        /// `name()` of the policy offered for restore.
        found: String,
    },
    /// The scheduler rejected its embedded state.
    SchedulerState {
        /// The policy's error message.
        reason: String,
    },
    /// Snapshotting was requested on a multi-shard front-end; the
    /// `dlflow-snapshot v1` format captures exactly one engine.
    ShardedUnsupported {
        /// Shard count of the front-end that refused to serialize.
        n_shards: usize,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::UnsupportedVersion { found } => {
                write!(f, "unsupported snapshot header: {found:?}")
            }
            SnapshotError::Malformed { line, reason } => {
                write!(f, "malformed snapshot at line {line}: {reason}")
            }
            SnapshotError::SchedulerMismatch { expected, found } => {
                write!(
                    f,
                    "snapshot was taken under scheduler {expected:?}, cannot restore into {found:?}"
                )
            }
            SnapshotError::SchedulerState { reason } => {
                write!(f, "scheduler state rejected: {reason}")
            }
            SnapshotError::ShardedUnsupported { n_shards } => {
                write!(
                    f,
                    "snapshots cover a single engine; this front-end has {n_shards} shards"
                )
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

const HEADER: &str = "dlflow-snapshot v1";

fn hex(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

fn push_hex(s: &mut String, v: f64) {
    use fmt::Write as _;
    let _ = write!(s, " {:016x}", v.to_bits());
}

/// Line-by-line reader with 1-based positions for error reporting.
struct Reader<'a> {
    lines: std::str::Lines<'a>,
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(text: &'a str) -> Self {
        Reader {
            lines: text.lines(),
            pos: 0,
        }
    }

    fn bad(&self, reason: impl Into<String>) -> SnapshotError {
        SnapshotError::Malformed {
            line: self.pos,
            reason: reason.into(),
        }
    }

    fn next(&mut self) -> Result<&'a str, SnapshotError> {
        self.pos += 1;
        self.lines.next().ok_or(SnapshotError::Malformed {
            line: self.pos,
            reason: "unexpected end of snapshot".into(),
        })
    }

    /// Next line, stripped of `key `; errors if the key does not match.
    fn field(&mut self, key: &str) -> Result<&'a str, SnapshotError> {
        let line = self.next()?;
        line.strip_prefix(key)
            .and_then(|rest| {
                rest.strip_prefix(' ')
                    .or(Some(rest).filter(|r| r.is_empty()))
            })
            .ok_or_else(|| self.bad(format!("expected `{key}` line, got {line:?}")))
    }

    fn usize_field(&mut self, key: &str) -> Result<usize, SnapshotError> {
        let v = self.field(key)?;
        v.parse()
            .map_err(|_| self.bad(format!("bad `{key}` value {v:?}")))
    }

    fn f64_field(&mut self, key: &str) -> Result<f64, SnapshotError> {
        let v = self.field(key)?;
        parse_hex(v).ok_or_else(|| self.bad(format!("bad `{key}` value {v:?}")))
    }

    fn bool_field(&mut self, key: &str) -> Result<bool, SnapshotError> {
        match self.field(key)? {
            "0" => Ok(false),
            "1" => Ok(true),
            v => Err(self.bad(format!("bad `{key}` value {v:?} (want 0 or 1)"))),
        }
    }
}

fn parse_hex(tok: &str) -> Option<f64> {
    (tok.len() == 16)
        .then(|| u64::from_str_radix(tok, 16).ok())
        .flatten()
        .map(f64::from_bits)
}

fn parse_hex_row(
    r: &Reader<'_>,
    toks: &mut dyn Iterator<Item = &str>,
    n: usize,
    what: &str,
) -> Result<Vec<f64>, SnapshotError> {
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let tok = toks
            .next()
            .ok_or_else(|| r.bad(format!("{what}: too few values")))?;
        out.push(parse_hex(tok).ok_or_else(|| r.bad(format!("{what}: bad value {tok:?}")))?);
    }
    if toks.next().is_some() {
        return Err(r.bad(format!("{what}: too many values")));
    }
    Ok(out)
}

impl Engine {
    /// Serializes the engine *and* the policy driving it to the
    /// byte-stable `dlflow-snapshot v1` text format. The engine is not
    /// consumed; snapshotting mid-run is the intended use.
    pub fn snapshot(&self, policy: &dyn OnlineScheduler) -> String {
        let mut s = String::new();
        s.push_str(HEADER);
        s.push('\n');
        s.push_str(&format!("n_machines {}\n", self.n_machines));
        s.push_str(&format!("now {}\n", hex(self.now)));
        s.push_str(&format!("next_id {}\n", self.next_id));
        s.push_str(&format!("n_events {}\n", self.n_events));
        s.push_str(&format!("n_plans {}\n", self.n_plans));
        s.push_str(&format!("n_completed {}\n", self.n_completed));
        s.push_str(&format!(
            "record_completions {}\n",
            self.record_completions as u8
        ));
        s.push_str(&format!("faulty {}\n", self.faulty as u8));
        s.push_str(&format!("n_platform_pushed {}\n", self.n_platform_pushed));
        s.push_str("busy");
        for b in &self.busy {
            push_hex(&mut s, *b);
        }
        s.push('\n');
        s.push_str("up");
        for u in &self.up {
            s.push_str(if *u { " 1" } else { " 0" });
        }
        s.push('\n');
        s.push_str("metrics");
        let m = &self.metrics;
        for v in [m.max_wf, m.max_f, m.max_s, m.sum_s, m.sum_f, m.mk] {
            push_hex(&mut s, v);
        }
        match m.first_release {
            Some(r) => push_hex(&mut s, r),
            None => s.push_str(" -"),
        }
        s.push_str(&format!(" {}\n", m.n));

        // Heaps are written in canonical order so the text is a pure
        // function of the simulation state, not of heap internals.
        let mut pending: Vec<(usize, f64, f64, &[f64])> = self.pending_entries().collect();
        pending.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        s.push_str(&format!("pending {}\n", pending.len()));
        for (id, release, weight, costs) in pending {
            s.push_str(&format!("arrival {id}"));
            push_hex(&mut s, release);
            push_hex(&mut s, weight);
            for c in costs {
                push_hex(&mut s, *c);
            }
            s.push('\n');
        }

        s.push_str(&format!("active {}\n", self.active().len()));
        for (id, remaining, release, weight, costs, volatile) in self.active_entries() {
            s.push_str(&format!("job {id}"));
            push_hex(&mut s, remaining);
            push_hex(&mut s, release);
            push_hex(&mut s, weight);
            for c in costs {
                push_hex(&mut s, *c);
            }
            s.push('\n');
            if let Some(row) = volatile {
                s.push_str("volatile");
                for v in row {
                    push_hex(&mut s, *v);
                }
                s.push('\n');
            }
        }

        let mut platform: Vec<(f64, usize, PlatformEvent)> = self.platform_entries().collect();
        platform.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        s.push_str(&format!("platform {}\n", platform.len()));
        for (time, seq, event) in platform {
            s.push_str(&format!("event {} {} {} ", hex(time), seq, event.machine));
            s.push_str(match event.change {
                PlatformChange::Down => "down",
                PlatformChange::Up => "up",
            });
            s.push('\n');
        }

        s.push_str(&format!("completed {}\n", self.completed.len()));
        for c in &self.completed {
            s.push_str(&format!("done {}", c.id));
            push_hex(&mut s, c.release);
            push_hex(&mut s, c.weight);
            push_hex(&mut s, c.fastest_cost);
            push_hex(&mut s, c.completion);
            s.push('\n');
        }

        s.push_str(&format!("scheduler {}\n", policy.name()));
        let state = policy.snapshot_state();
        let state_lines: Vec<&str> = state.lines().collect();
        s.push_str(&format!("state {}\n", state_lines.len()));
        for line in state_lines {
            s.push_str(line);
            s.push('\n');
        }
        s
    }

    /// Rebuilds an engine (and re-arms `policy`) from snapshot `text`.
    ///
    /// The policy must be the same *kind* (same `name()`, which encodes
    /// tuning knobs) as the one snapshotted; it is `reset`, re-notified
    /// of the platform mask, then handed its embedded state. Continuing
    /// the returned engine with that policy reproduces the uninterrupted
    /// run bit for bit.
    ///
    /// # Errors
    ///
    /// [`SnapshotError`] on an unreadable header, any malformed line
    /// (with its line number), a scheduler kind mismatch, or state the
    /// scheduler rejects.
    pub fn restore(text: &str, policy: &mut dyn OnlineScheduler) -> Result<Engine, SnapshotError> {
        let mut r = Reader::new(text);
        let header = r.next()?;
        if header != HEADER {
            return Err(SnapshotError::UnsupportedVersion {
                found: header.to_string(),
            });
        }
        let n_machines = r.usize_field("n_machines")?;
        if n_machines == 0 {
            return Err(r.bad("n_machines must be positive"));
        }
        let now = r.f64_field("now")?;
        let next_id = r.usize_field("next_id")?;
        let n_events = r.usize_field("n_events")?;
        let n_plans = r.usize_field("n_plans")?;
        let n_completed = r.usize_field("n_completed")?;
        let record_completions = r.bool_field("record_completions")?;
        let faulty = r.bool_field("faulty")?;
        let n_platform_pushed = r.usize_field("n_platform_pushed")?;

        let row = r.field("busy")?;
        let busy = parse_hex_row(&r, &mut row.split_whitespace(), n_machines, "busy")?;

        let row = r.field("up")?;
        let mut up = Vec::with_capacity(n_machines);
        let mut toks = row.split_whitespace();
        for _ in 0..n_machines {
            match toks.next() {
                Some("1") => up.push(true),
                Some("0") => up.push(false),
                _ => return Err(r.bad("up: want one 0/1 per machine")),
            }
        }
        if toks.next().is_some() {
            return Err(r.bad("up: too many values"));
        }

        let row = r.field("metrics")?;
        let mut toks = row.split_whitespace();
        let mut metrics = MetricsAccumulator::new();
        {
            let mut metric = |what: &str, r: &Reader<'_>| -> Result<f64, SnapshotError> {
                toks.next()
                    .and_then(parse_hex)
                    .ok_or_else(|| r.bad(format!("metrics: bad {what}")))
            };
            metrics.max_wf = metric("max_wf", &r)?;
            metrics.max_f = metric("max_f", &r)?;
            metrics.max_s = metric("max_s", &r)?;
            metrics.sum_s = metric("sum_s", &r)?;
            metrics.sum_f = metric("sum_f", &r)?;
            metrics.mk = metric("mk", &r)?;
        }
        metrics.first_release = match toks.next() {
            Some("-") => None,
            Some(tok) => Some(parse_hex(tok).ok_or_else(|| r.bad("metrics: bad first_release"))?),
            None => return Err(r.bad("metrics: missing first_release")),
        };
        metrics.n = toks
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| r.bad("metrics: bad n"))?;
        if toks.next().is_some() {
            return Err(r.bad("metrics: too many values"));
        }

        let mut engine = Engine::new(n_machines);
        engine.now = now;
        engine.next_id = next_id;
        engine.n_events = n_events;
        engine.n_plans = n_plans;
        engine.n_completed = n_completed;
        engine.record_completions = record_completions;
        if faulty {
            engine.enter_faulty_mode();
        }
        engine.n_platform_pushed = n_platform_pushed;
        engine.busy = busy;
        engine.up = up;
        engine.metrics = metrics;

        let n_pending = r.usize_field("pending")?;
        for _ in 0..n_pending {
            let row = r.field("arrival")?;
            let mut toks = row.split_whitespace();
            let id: usize = toks
                .next()
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| r.bad("arrival: bad id"))?;
            let vals = parse_hex_row(&r, &mut toks, 2 + n_machines, "arrival")?;
            engine.restore_pending(id, vals[0], vals[1], &vals[2..]);
        }

        let n_active = r.usize_field("active")?;
        for _ in 0..n_active {
            let row = r.field("job")?;
            let mut toks = row.split_whitespace();
            let id: usize = toks
                .next()
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| r.bad("job: bad id"))?;
            let vals = parse_hex_row(&r, &mut toks, 3 + n_machines, "job")?;
            let volatile = if faulty {
                let row = r.field("volatile")?;
                Some(parse_hex_row(
                    &r,
                    &mut row.split_whitespace(),
                    n_machines,
                    "volatile",
                )?)
            } else {
                None
            };
            engine.restore_active(
                id,
                vals[0],
                vals[1],
                vals[2],
                &vals[3..],
                volatile.as_deref(),
            );
        }

        let n_platform = r.usize_field("platform")?;
        for _ in 0..n_platform {
            let row = r.field("event")?;
            let mut toks = row.split_whitespace();
            let time = toks
                .next()
                .and_then(parse_hex)
                .ok_or_else(|| r.bad("event: bad time"))?;
            let seq: usize = toks
                .next()
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| r.bad("event: bad seq"))?;
            let machine: usize = toks
                .next()
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| r.bad("event: bad machine"))?;
            let change = match toks.next() {
                Some("down") => PlatformChange::Down,
                Some("up") => PlatformChange::Up,
                _ => return Err(r.bad("event: want down or up")),
            };
            if toks.next().is_some() {
                return Err(r.bad("event: too many values"));
            }
            engine.restore_platform(
                time,
                seq,
                PlatformEvent {
                    time,
                    machine,
                    change,
                },
            );
        }

        let n_done = r.usize_field("completed")?;
        for _ in 0..n_done {
            let row = r.field("done")?;
            let mut toks = row.split_whitespace();
            let id: usize = toks
                .next()
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| r.bad("done: bad id"))?;
            let vals = parse_hex_row(&r, &mut toks, 4, "done")?;
            engine.completed.push(CompletedJob {
                id,
                release: vals[0],
                weight: vals[1],
                fastest_cost: vals[2],
                completion: vals[3],
            });
        }

        let expected = r.field("scheduler")?;
        let found = policy.name();
        if expected != found {
            return Err(SnapshotError::SchedulerMismatch {
                expected: expected.to_string(),
                found,
            });
        }
        let n_state = r.usize_field("state")?;
        let mut state = String::new();
        for _ in 0..n_state {
            state.push_str(r.next()?);
            state.push('\n');
        }
        if r.lines.next().is_some() {
            return Err(SnapshotError::Malformed {
                line: r.pos + 1,
                reason: "trailing content after scheduler state".into(),
            });
        }

        // Re-arm the policy: clean slate, then the platform mask it would
        // have been notified of (before its state, so a policy whose
        // notification hook clears caches does not clear the restored
        // ones), then its embedded state.
        policy.reset();
        if faulty {
            let mask = engine.up.clone();
            policy.on_platform_change(engine.now, &mask);
        }
        policy
            .restore_state(&state)
            .map_err(|reason| SnapshotError::SchedulerState { reason })?;
        Ok(engine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{simulate, JobSpec};
    use crate::schedulers::edf::Edf;
    use crate::schedulers::mct::Mct;
    use dlflow_core::instance::InstanceBuilder;

    fn spec(release: f64, weight: f64, costs: &[f64]) -> JobSpec {
        JobSpec {
            release,
            weight,
            costs: costs.to_vec(),
        }
    }

    #[test]
    fn snapshot_is_byte_stable() {
        let mut eng = Engine::new(2);
        let mut pol = Mct::new();
        eng.push_arrival(spec(0.0, 1.0, &[2.0, 3.0])).unwrap();
        eng.push_arrival(spec(1.0, 2.0, &[4.0, f64::INFINITY]))
            .unwrap();
        eng.step(&mut pol).unwrap();
        let a = eng.snapshot(&pol);
        let b = eng.snapshot(&pol);
        assert_eq!(a, b);
        // Restore → snapshot reproduces the text exactly.
        let mut pol2 = Mct::new();
        let eng2 = Engine::restore(&a, &mut pol2).unwrap();
        assert_eq!(eng2.snapshot(&pol2), a);
    }

    #[test]
    fn restore_rejects_wrong_version_and_garbage() {
        let mut pol = Mct::new();
        match Engine::restore("dlflow-snapshot v99\n", &mut pol) {
            Err(SnapshotError::UnsupportedVersion { found }) => {
                assert!(found.contains("v99"));
            }
            other => panic!("want UnsupportedVersion, got {other:?}"),
        }
        let err = Engine::restore("dlflow-snapshot v1\nn_machines zero\n", &mut pol).unwrap_err();
        match err {
            SnapshotError::Malformed { line, .. } => assert_eq!(line, 2),
            other => panic!("want Malformed, got {other:?}"),
        }
    }

    #[test]
    fn restore_rejects_scheduler_kind_mismatch() {
        let mut eng = Engine::new(1);
        let mut pol = Mct::new();
        eng.push_arrival(spec(0.0, 1.0, &[2.0])).unwrap();
        eng.step(&mut pol).unwrap();
        let snap = eng.snapshot(&pol);
        let mut other = Edf::new();
        match Engine::restore(&snap, &mut other) {
            Err(SnapshotError::SchedulerMismatch { expected, found }) => {
                assert_eq!(expected, "MCT");
                assert_eq!(found, "EDF");
            }
            other => panic!("want SchedulerMismatch, got {other:?}"),
        }
    }

    #[test]
    fn empty_engine_round_trips() {
        let eng = Engine::new(3);
        let pol = Mct::new();
        let snap = eng.snapshot(&pol);
        let mut pol2 = Mct::new();
        let eng2 = Engine::restore(&snap, &mut pol2).unwrap();
        assert_eq!(eng2.n_machines(), 3);
        assert_eq!(eng2.n_events(), 0);
        assert!(eng2.active().is_empty());
        assert_eq!(eng2.snapshot(&pol2), snap);
    }

    #[test]
    fn restored_run_matches_uninterrupted_completions() {
        let mut b = InstanceBuilder::new();
        b.job(0.0, 1.0);
        b.job(0.5, 2.0);
        b.job(1.0, 1.0);
        b.machine(vec![Some(3.0), Some(2.0), Some(4.0)]);
        b.machine(vec![Some(5.0), None, Some(1.5)]);
        let inst = b.build().unwrap();
        let reference = simulate(&inst, &mut Mct::new()).unwrap();

        // Interrupted run: snapshot after the second event, restore into
        // a fresh policy, continue to completion.
        let mut eng = Engine::new(2);
        let mut pol = Mct::new();
        for j in 0..inst.n_jobs() {
            eng.push_arrival(JobSpec {
                release: inst.job(j).release,
                weight: inst.job(j).weight,
                costs: (0..2)
                    .map(|i| inst.cost(i, j).finite().copied().unwrap_or(f64::INFINITY))
                    .collect(),
            })
            .unwrap();
        }
        eng.step(&mut pol).unwrap();
        eng.step(&mut pol).unwrap();
        let snap = eng.snapshot(&pol);

        let mut pol2 = Mct::new();
        let mut eng2 = Engine::restore(&snap, &mut pol2).unwrap();
        eng2.drain(&mut pol2).unwrap();
        let mut completions = vec![f64::NAN; inst.n_jobs()];
        for c in eng2.take_completed() {
            completions[c.id] = c.completion;
        }
        assert_eq!(
            completions.iter().map(|c| c.to_bits()).collect::<Vec<_>>(),
            reference
                .completions
                .iter()
                .map(|c| c.to_bits())
                .collect::<Vec<_>>()
        );
    }
}
