//! The replayable `simulate` service: one entry point that runs any
//! scheduler over either a **closed instance** or an **open-arrival
//! trace** and renders a deterministic report — the library half of the
//! `dlflow simulate` CLI subcommand.
//!
//! Reports are plain data plus hand-rendered JSON (the offline
//! dependency set has no serde): the same input always produces
//! byte-identical output, so a `dlflow simulate` invocation is a
//! reproducible, replayable record of a run.
//!
//! ## Example
//!
//! ```
//! use dlflow_sim::campaign::SchedulerSpec;
//! use dlflow_sim::service::{run_simulation, SimInput};
//! use dlflow_sim::workload::{generate_trace, TraceSpec};
//!
//! let trace = generate_trace(&TraceSpec { n_requests: 30, ..Default::default() });
//! let spec = SchedulerSpec::parse_compact("swrpt").unwrap();
//! let report = run_simulation(&SimInput::Open(trace), &spec).unwrap();
//! assert_eq!(report.n_jobs, 30);
//! assert!(report.to_json().contains("\"scheduler\": \"SWRPT\""));
//! ```

use crate::campaign::SchedulerSpec;
use crate::engine::{
    simulate, Engine, OnlineScheduler, ResolveStats, RunMetrics, SimResult, StepOutcome,
};
use crate::shard::ShardedEngine;
use crate::workload::{FaultProcess, Trace};
use dlflow_core::instance::Instance;

/// What to simulate: a closed instance (all jobs known up front) or an
/// open-arrival trace (requests streamed through the incremental
/// engine).
pub enum SimInput {
    /// A closed instance — every job pushed at start, per-job
    /// completions reported.
    Closed(Instance<f64>),
    /// An open trace — replayed with memory proportional to the
    /// in-flight request count.
    Open(Trace),
}

/// Outcome of one service run: counters plus metrics, rendering to text
/// and deterministic JSON.
#[derive(Clone, Debug)]
pub struct ServiceReport {
    /// Scheduler label (the policy's self-reported name).
    pub scheduler: String,
    /// `"instance"` or `"trace"`.
    pub input_kind: &'static str,
    /// Jobs simulated.
    pub n_jobs: usize,
    /// Machines.
    pub n_machines: usize,
    /// Events processed.
    pub n_events: usize,
    /// `plan` invocations.
    pub n_plans: usize,
    /// Run metrics.
    pub metrics: RunMetrics,
    /// Fleet utilization over `[first release, makespan]`.
    pub utilization: f64,
    /// Largest number of simultaneously in-flight jobs (trace replays
    /// only; equals 0 for closed instances, where the engine does not
    /// track it).
    pub max_active: usize,
    /// Per-job completion times (closed instances only; empty for
    /// trace replays, which stream completions instead of storing them).
    pub completions: Vec<f64>,
    /// Re-solve cost telemetry, for policies that report it (OLA and
    /// its variants); `None` for policies that do no LP re-solving.
    /// Sharded runs aggregate across shards.
    pub resolve_stats: Option<ResolveStats>,
}

/// Fault injection requested on the command line: a seeded MTBF/MTTR
/// process layered on top of whatever platform events the input already
/// carries. `until` bounds the failure window; when `None` it defaults
/// to the input's own span (last release, plus the serial work for
/// closed instances).
#[derive(Clone, Debug)]
pub struct FaultInjection {
    /// Mean time between failures, seconds.
    pub mtbf: f64,
    /// Mean time to repair, seconds.
    pub mttr: f64,
    /// Seed of the fault schedule.
    pub seed: u64,
    /// Failure-window end (`None` = derive from the input).
    pub until: Option<f64>,
}

/// Optional service behaviors behind `dlflow simulate`'s fault and
/// snapshot flags. [`Default`] is the plain run.
#[derive(Clone, Debug, Default)]
pub struct SimOptions {
    /// Inject a seeded failure/recovery schedule.
    pub faults: Option<FaultInjection>,
    /// Take one snapshot when the engine's event counter first reaches
    /// this value (the run still continues to completion).
    pub snapshot_at: Option<usize>,
    /// Resume from this snapshot text instead of starting at `t = 0`
    /// (the snapshot carries the full engine + scheduler state, so the
    /// input's arrivals are **not** re-pushed).
    pub resume: Option<String>,
    /// Partition the platform into this many contiguous machine shards,
    /// each drained by its own engine + scheduler instance (`0` and `1`
    /// both mean the flat single-engine path). Sharding is incompatible
    /// with snapshot/resume — the snapshot format covers one engine.
    pub shards: usize,
}

impl SimOptions {
    fn is_plain(&self) -> bool {
        self.faults.is_none()
            && self.snapshot_at.is_none()
            && self.resume.is_none()
            && self.shards <= 1
    }
}

/// Default failure window of an input: everything after the last
/// release (plus, for closed instances, the serial work on the fastest
/// machines) counts as the drain phase and stays fault-free.
fn default_horizon(input: &SimInput) -> f64 {
    match input {
        SimInput::Closed(inst) => {
            let max_release = (0..inst.n_jobs())
                .map(|j| inst.job(j).release)
                .fold(0.0f64, f64::max);
            let serial: f64 = (0..inst.n_jobs()).map(|j| inst.fastest_cost(j)).sum();
            max_release + serial
        }
        SimInput::Open(trace) => (0..trace.len())
            .map(|k| trace.job_spec(k).release)
            .fold(0.0f64, f64::max),
    }
}

fn input_machines(input: &SimInput) -> usize {
    match input {
        SimInput::Closed(inst) => inst.n_machines(),
        SimInput::Open(trace) => trace.n_machines(),
    }
}

/// Runs `spec`'s scheduler over the input with fault-injection and
/// snapshot/resume options. Returns the report plus the snapshot text,
/// if one was requested and taken. The plain-options path is exactly
/// [`run_simulation`].
pub fn run_simulation_with(
    input: &SimInput,
    spec: &SchedulerSpec,
    opts: &SimOptions,
) -> Result<(ServiceReport, Option<String>), String> {
    if opts.is_plain() {
        return Ok((run_simulation(input, spec)?, None));
    }
    if opts.resume.is_some() && opts.faults.is_some() {
        return Err(
            "--resume and --faults cannot be combined: the snapshot already carries its \
             fault schedule"
                .into(),
        );
    }
    if opts.shards > 1 {
        if opts.resume.is_some() || opts.snapshot_at.is_some() {
            return Err(
                "--shards: snapshot and resume cover a single engine; rerun without sharding"
                    .into(),
            );
        }
        return run_sharded(input, spec, opts);
    }
    let mut policy = spec.build();
    let m = input_machines(input);
    let (kind, n_jobs_hint) = match input {
        SimInput::Closed(inst) => ("instance", inst.n_jobs()),
        SimInput::Open(trace) => ("trace", trace.len()),
    };

    let mut eng = if let Some(snap) = &opts.resume {
        let eng = Engine::restore(snap, policy.as_mut()).map_err(|e| format!("--resume: {e}"))?;
        if eng.n_machines() != m {
            return Err(format!(
                "--resume: snapshot has {} machines but the input has {m}",
                eng.n_machines()
            ));
        }
        eng
    } else {
        policy.reset();
        let mut eng = Engine::new(m);
        if let SimInput::Open(trace) = input {
            for e in &trace.platform_events {
                eng.push_platform_event(*e).map_err(|e| e.to_string())?;
            }
        }
        if let Some(f) = &opts.faults {
            let horizon = f.until.unwrap_or_else(|| default_horizon(input));
            let window_ok = horizon.is_finite() && horizon > 0.0;
            if !window_ok {
                return Err("--faults: the failure window is empty (set until=<t>)".into());
            }
            let process = FaultProcess {
                mtbf: f.mtbf,
                mttr: f.mttr,
                horizon,
                seed: f.seed,
            };
            for e in process.sample(m) {
                eng.push_platform_event(e).map_err(|e| e.to_string())?;
            }
        }
        match input {
            SimInput::Closed(inst) => {
                for j in 0..inst.n_jobs() {
                    eng.push_arrival(crate::engine::job_spec_of(inst, j))
                        .map_err(|e| e.to_string())?;
                }
            }
            SimInput::Open(trace) => {
                eng.record_completions = false;
                for k in 0..trace.len() {
                    eng.push_arrival(trace.job_spec(k))
                        .map_err(|e| e.to_string())?;
                }
            }
        }
        eng
    };

    let mut snapshot = None;
    let mut max_active = 0usize;
    let mut guard = 0usize;
    let budget =
        4 * (n_jobs_hint + eng.pending_len() + eng.active().len()) + 2 * eng.n_events() + 64;
    loop {
        guard += 1;
        if guard > budget.saturating_mul(8) {
            return Err("simulation exceeded its event budget (engine stuck?)".into());
        }
        max_active = max_active.max(eng.active().len());
        if snapshot.is_none() && opts.snapshot_at.is_some_and(|at| eng.n_events() >= at) {
            snapshot = Some(eng.snapshot(policy.as_ref()));
        }
        if eng.step(policy.as_mut()).map_err(|e| e.to_string())? == StepOutcome::Idle {
            break;
        }
    }
    // A snapshot point past the final event degenerates to the end state.
    if snapshot.is_none() && opts.snapshot_at.is_some() {
        snapshot = Some(eng.snapshot(policy.as_ref()));
    }

    let completions = if matches!(input, SimInput::Closed(_)) && opts.resume.is_none() {
        let mut done: Vec<(usize, f64)> = eng
            .take_completed()
            .into_iter()
            .map(|c| (c.id, c.completion))
            .collect();
        done.sort_unstable_by_key(|&(id, _)| id);
        done.into_iter().map(|(_, c)| c).collect()
    } else {
        Vec::new()
    };

    let report = ServiceReport {
        scheduler: spec.label(),
        input_kind: kind,
        n_jobs: eng.n_completed(),
        n_machines: m,
        n_events: eng.n_events(),
        n_plans: eng.n_plans(),
        utilization: eng.utilization(),
        metrics: eng.metrics(),
        max_active,
        completions,
        resolve_stats: policy.resolve_stats(),
    };
    Ok((report, snapshot))
}

/// The multi-cluster path behind `--shards N`: one [`ShardedEngine`]
/// over the input's machines, one scheduler instance per shard, faults
/// routed by global machine index. Closed instances report per-job
/// completions from the deterministic merged stream; open traces stream
/// them exactly like the flat path.
fn run_sharded(
    input: &SimInput,
    spec: &SchedulerSpec,
    opts: &SimOptions,
) -> Result<(ServiceReport, Option<String>), String> {
    let m = input_machines(input);
    let mut se = ShardedEngine::new(m, opts.shards);
    let mut policies: Vec<Box<dyn OnlineScheduler + Send>> =
        (0..se.n_shards()).map(|_| spec.build()).collect();
    if let SimInput::Open(trace) = input {
        for e in &trace.platform_events {
            se.push_platform_event(*e).map_err(|e| e.to_string())?;
        }
    }
    if let Some(f) = &opts.faults {
        let horizon = f.until.unwrap_or_else(|| default_horizon(input));
        if !(horizon.is_finite() && horizon > 0.0) {
            return Err("--faults: the failure window is empty (set until=<t>)".into());
        }
        let process = FaultProcess {
            mtbf: f.mtbf,
            mttr: f.mttr,
            horizon,
            seed: f.seed,
        };
        for e in process.sample(m) {
            se.push_platform_event(e).map_err(|e| e.to_string())?;
        }
    }
    let (kind, n_jobs) = match input {
        SimInput::Closed(inst) => {
            se.set_record_completions(true);
            for j in 0..inst.n_jobs() {
                se.push_arrival(crate::engine::job_spec_of(inst, j))
                    .map_err(|e| e.to_string())?;
            }
            ("instance", inst.n_jobs())
        }
        SimInput::Open(trace) => {
            se.set_record_completions(false);
            for k in 0..trace.len() {
                se.push_arrival(trace.job_spec(k))
                    .map_err(|e| e.to_string())?;
            }
            ("trace", trace.len())
        }
    };
    se.drain(&mut policies).map_err(|e| e.to_string())?;
    let completions = if matches!(input, SimInput::Closed(_)) {
        let mut done: Vec<(usize, f64)> = se
            .take_completed()
            .into_iter()
            .map(|c| (c.id, c.completion))
            .collect();
        done.sort_unstable_by_key(|&(id, _)| id);
        done.into_iter().map(|(_, c)| c).collect()
    } else {
        Vec::new()
    };
    let report = ServiceReport {
        scheduler: spec.label(),
        input_kind: kind,
        n_jobs,
        n_machines: m,
        n_events: se.n_events(),
        n_plans: se.n_plans(),
        utilization: se.utilization(),
        metrics: se.metrics(),
        max_active: se.peak_active(),
        completions,
        // Aggregate across shards; a single shard without telemetry
        // means the policy kind reports none at all.
        resolve_stats: policies
            .iter()
            .try_fold(ResolveStats::default(), |mut acc, p| {
                p.resolve_stats().map(|s| {
                    acc.merge(&s);
                    acc
                })
            }),
    };
    Ok((report, None))
}

/// Runs `spec`'s scheduler over the input. Closed instances go through
/// [`simulate`]; open traces through [`Trace::replay`].
pub fn run_simulation(input: &SimInput, spec: &SchedulerSpec) -> Result<ServiceReport, String> {
    let mut policy = spec.build();
    match input {
        SimInput::Closed(inst) => {
            let res: SimResult =
                simulate(inst, policy.as_mut()).map_err(|e| format!("{}: {e}", spec.label()))?;
            let metrics = RunMetrics::from_completions(inst, &res.completions);
            Ok(ServiceReport {
                scheduler: spec.label(),
                input_kind: "instance",
                n_jobs: inst.n_jobs(),
                n_machines: inst.n_machines(),
                n_events: res.n_events,
                n_plans: res.n_plans,
                utilization: res.utilization(inst),
                metrics,
                max_active: 0,
                completions: res.completions,
                resolve_stats: policy.resolve_stats(),
            })
        }
        SimInput::Open(trace) => {
            let stats = trace
                .replay(policy.as_mut())
                .map_err(|e| format!("{}: {e}", spec.label()))?;
            Ok(ServiceReport {
                scheduler: spec.label(),
                input_kind: "trace",
                n_jobs: stats.n_jobs,
                n_machines: trace.n_machines(),
                n_events: stats.n_events,
                n_plans: stats.n_plans,
                utilization: stats.utilization,
                metrics: stats.metrics,
                max_active: stats.max_active,
                completions: Vec::new(),
                resolve_stats: policy.resolve_stats(),
            })
        }
    }
}

/// Formats a float for report output: fixed 6 decimals, deterministic.
fn f6(v: f64) -> String {
    format!("{v:.6}")
}

impl ServiceReport {
    /// Human-readable summary.
    pub fn to_text(&self) -> String {
        let m = &self.metrics;
        let mut s = String::new();
        s.push_str(&format!(
            "{} over {} ({} jobs, {} machines)\n",
            self.scheduler, self.input_kind, self.n_jobs, self.n_machines
        ));
        s.push_str(&format!(
            "  events: {}   plans: {}   utilization: {:.3}",
            self.n_events, self.n_plans, self.utilization
        ));
        if self.max_active > 0 {
            s.push_str(&format!("   peak in-flight: {}", self.max_active));
        }
        s.push('\n');
        if let Some(rs) = &self.resolve_stats {
            s.push_str(&format!(
                "  re-solves: {} ({} warm-served + {} cold)   LP solves: {} warm + {} cold   mean LP/resolve: {:.2}\n",
                rs.n_resolves,
                rs.warm_resolves,
                rs.cold_resolves,
                rs.warm_lp_solves,
                rs.cold_lp_solves,
                rs.mean_lp_solves_per_resolve()
            ));
        }
        s.push_str(&format!(
            "  max stretch: {:.6}   sum stretch: {:.6}\n",
            m.max_stretch, m.sum_stretch
        ));
        s.push_str(&format!(
            "  max flow: {:.6}   mean flow: {:.6}   max weighted flow: {:.6}\n",
            m.max_flow, m.mean_flow, m.max_weighted_flow
        ));
        s.push_str(&format!("  makespan: {:.6}\n", m.makespan));
        s
    }

    /// Deterministic machine-readable JSON (same input → byte-identical
    /// bytes; no serde in the offline dependency set).
    pub fn to_json(&self) -> String {
        let m = &self.metrics;
        let mut s = String::from("{\n");
        s.push_str(&format!("  \"scheduler\": \"{}\",\n", self.scheduler));
        s.push_str(&format!("  \"input\": \"{}\",\n", self.input_kind));
        s.push_str(&format!("  \"n_jobs\": {},\n", self.n_jobs));
        s.push_str(&format!("  \"n_machines\": {},\n", self.n_machines));
        s.push_str(&format!("  \"n_events\": {},\n", self.n_events));
        s.push_str(&format!("  \"n_plans\": {},\n", self.n_plans));
        if let Some(rs) = &self.resolve_stats {
            s.push_str(&format!("  \"n_resolves\": {},\n", rs.n_resolves));
            s.push_str(&format!("  \"warm_resolves\": {},\n", rs.warm_resolves));
            s.push_str(&format!("  \"cold_resolves\": {},\n", rs.cold_resolves));
            s.push_str(&format!("  \"warm_lp_solves\": {},\n", rs.warm_lp_solves));
            s.push_str(&format!("  \"cold_lp_solves\": {},\n", rs.cold_lp_solves));
            s.push_str(&format!(
                "  \"mean_lp_solves_per_resolve\": {},\n",
                f6(rs.mean_lp_solves_per_resolve())
            ));
        }
        s.push_str(&format!("  \"max_active\": {},\n", self.max_active));
        s.push_str(&format!("  \"utilization\": {},\n", f6(self.utilization)));
        s.push_str(&format!("  \"max_stretch\": {},\n", f6(m.max_stretch)));
        s.push_str(&format!("  \"sum_stretch\": {},\n", f6(m.sum_stretch)));
        s.push_str(&format!("  \"max_flow\": {},\n", f6(m.max_flow)));
        s.push_str(&format!("  \"mean_flow\": {},\n", f6(m.mean_flow)));
        s.push_str(&format!(
            "  \"max_weighted_flow\": {},\n",
            f6(m.max_weighted_flow)
        ));
        s.push_str(&format!("  \"makespan\": {}", f6(m.makespan)));
        if self.completions.is_empty() {
            s.push('\n');
        } else {
            s.push_str(",\n  \"completions\": [");
            for (j, c) in self.completions.iter().enumerate() {
                let comma = if j + 1 == self.completions.len() {
                    ""
                } else {
                    ", "
                };
                s.push_str(&format!("{}{comma}", f6(*c)));
            }
            s.push_str("]\n");
        }
        s.push_str("}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{generate, generate_trace, TraceSpec, WorkloadSpec};

    #[test]
    fn closed_and_open_runs_report_consistently() {
        let trace = generate_trace(&TraceSpec {
            n_requests: 30,
            seed: 4,
            ..Default::default()
        });
        let spec = SchedulerSpec::parse_compact("srpt").unwrap();
        let open = run_simulation(&SimInput::Open(trace.clone()), &spec).unwrap();
        let closed =
            run_simulation(&SimInput::Closed(trace.to_instance().unwrap()), &spec).unwrap();
        assert_eq!(open.n_events, closed.n_events);
        assert_eq!(open.n_plans, closed.n_plans);
        assert!((open.metrics.max_stretch - closed.metrics.max_stretch).abs() < 1e-9);
        assert_eq!(open.completions.len(), 0);
        assert_eq!(closed.completions.len(), 30);
        assert!(open.max_active >= 1);
    }

    #[test]
    fn fault_injection_with_snapshot_resume_matches_the_straight_run() {
        let trace = generate_trace(&TraceSpec {
            n_requests: 25,
            seed: 11,
            ..Default::default()
        });
        let spec = SchedulerSpec::parse_compact("swrpt").unwrap();
        let opts = SimOptions {
            faults: Some(FaultInjection {
                mtbf: 6.0,
                mttr: 1.5,
                seed: 3,
                until: None,
            }),
            snapshot_at: Some(20),
            resume: None,
            shards: 0,
        };
        let input = SimInput::Open(trace);
        let (full, snap) = run_simulation_with(&input, &spec, &opts).unwrap();
        assert_eq!(full.n_jobs, 25);
        let snap = snap.expect("snapshot taken");

        // Resuming the snapshot finishes the same run: identical final
        // event count and bit-identical metrics.
        let resume = SimOptions {
            resume: Some(snap.clone()),
            ..Default::default()
        };
        let (resumed, none) = run_simulation_with(&input, &spec, &resume).unwrap();
        assert!(none.is_none());
        assert_eq!(resumed.n_jobs, 25);
        assert_eq!(resumed.n_events, full.n_events);
        assert_eq!(
            resumed.metrics.makespan.to_bits(),
            full.metrics.makespan.to_bits()
        );
        assert_eq!(
            resumed.metrics.max_stretch.to_bits(),
            full.metrics.max_stretch.to_bits()
        );

        // Resuming into a different scheduler kind is a typed refusal,
        // and --resume + --faults cannot be combined.
        let edf = SchedulerSpec::parse_compact("edf").unwrap();
        let err = run_simulation_with(&input, &edf, &resume).unwrap_err();
        assert!(err.contains("cannot restore into"), "{err}");
        let both = SimOptions {
            faults: opts.faults.clone(),
            resume: Some(snap),
            ..Default::default()
        };
        let err = run_simulation_with(&input, &spec, &both).unwrap_err();
        assert!(err.contains("cannot be combined"), "{err}");
    }

    #[test]
    fn plain_options_take_the_plain_path() {
        let trace = generate_trace(&TraceSpec {
            n_requests: 20,
            seed: 5,
            ..Default::default()
        });
        let spec = SchedulerSpec::parse_compact("mct").unwrap();
        let plain = run_simulation(&SimInput::Open(trace.clone()), &spec).unwrap();
        let (with, snap) =
            run_simulation_with(&SimInput::Open(trace), &spec, &SimOptions::default()).unwrap();
        assert!(snap.is_none());
        assert_eq!(plain.to_json(), with.to_json());
    }

    #[test]
    fn sharded_runs_report_deterministically_and_refuse_snapshots() {
        let trace = generate_trace(&TraceSpec {
            n_requests: 40,
            n_machines: 4,
            seed: 9,
            ..Default::default()
        });
        let spec = SchedulerSpec::parse_compact("swrpt").unwrap();
        let opts = SimOptions {
            shards: 2,
            ..Default::default()
        };
        let input = SimInput::Open(trace.clone());
        let (a, snap) = run_simulation_with(&input, &spec, &opts).unwrap();
        assert!(snap.is_none());
        assert_eq!(a.n_jobs, 40);
        let (b, _) = run_simulation_with(&input, &spec, &opts).unwrap();
        assert_eq!(a.to_json(), b.to_json());

        // Closed instances report the merged per-job completion times.
        let closed = SimInput::Closed(trace.to_instance().unwrap());
        let (c, _) = run_simulation_with(&closed, &spec, &opts).unwrap();
        assert_eq!(c.completions.len(), 40);
        assert!(c.completions.iter().all(|t| t.is_finite()));

        // Snapshots cover one engine; sharded runs refuse them.
        let bad = SimOptions {
            shards: 2,
            snapshot_at: Some(5),
            ..Default::default()
        };
        let err = run_simulation_with(&input, &spec, &bad).unwrap_err();
        assert!(err.contains("single engine"), "{err}");

        // Sharded fault injection drains to completion.
        let faulty = SimOptions {
            shards: 2,
            faults: Some(FaultInjection {
                mtbf: 8.0,
                mttr: 2.0,
                seed: 5,
                until: None,
            }),
            ..Default::default()
        };
        let (f, _) = run_simulation_with(&input, &spec, &faulty).unwrap();
        assert_eq!(f.n_jobs, 40);
        assert!(f.metrics.makespan.is_finite());
    }

    #[test]
    fn eager_warm_ola_reports_warm_dominated_resolve_costs() {
        // The tentpole regression: with warm incremental re-solves on
        // (the default), a 1k-arrival replay must engage the warm
        // machinery on nearly every re-plan — if the warm path silently
        // degrades to cold everywhere, this trips. The *event-level*
        // counters are the honest yardstick: every resolve deliberately
        // ends with cold solves (the bisection's tolerance-band tail
        // and the final rate solve are pinned to the legacy path by the
        // golden-compatibility guards), so per-LP counts can never show
        // warm ≫ cold, but per-resolve counts must.
        let trace = generate_trace(&TraceSpec {
            n_requests: 1000,
            seed: 7,
            ..Default::default()
        });
        let spec = SchedulerSpec::parse_compact("ola").unwrap();
        let report = run_simulation(&SimInput::Open(trace), &spec).unwrap();
        let rs = report.resolve_stats.expect("OLA reports resolve telemetry");
        assert!(rs.n_resolves > 0);
        assert_eq!(rs.warm_resolves + rs.cold_resolves, rs.n_resolves);
        assert!(
            rs.warm_resolves > 10 * rs.cold_resolves.max(1),
            "eager warm OLA must serve re-plans warm ≫ cold: {} warm vs {} cold",
            rs.warm_resolves,
            rs.cold_resolves
        );
        assert!(
            rs.warm_lp_solves > 0 && rs.cold_lp_solves > 0,
            "both LP paths must be exercised: {rs:?}"
        );
        assert!(rs.mean_lp_solves_per_resolve() > 1.0);

        // Telemetry renders in both formats…
        let json = report.to_json();
        assert!(json.contains("\"warm_resolves\""));
        assert!(json.contains("\"warm_lp_solves\""));
        assert!(json.contains("\"mean_lp_solves_per_resolve\""));
        assert!(report.to_text().contains("warm-served"));
        assert!(report.to_text().contains("mean LP/resolve"));

        // …and stays absent for policies that do no LP re-solving.
        let inert = SchedulerSpec::parse_compact("swrpt").unwrap();
        let trace = generate_trace(&TraceSpec {
            n_requests: 20,
            seed: 7,
            ..Default::default()
        });
        let plain = run_simulation(&SimInput::Open(trace), &inert).unwrap();
        assert!(plain.resolve_stats.is_none());
        assert!(!plain.to_json().contains("\"warm_lp_solves\""));
    }

    #[test]
    fn sharded_ola_aggregates_resolve_stats_across_shards() {
        let trace = generate_trace(&TraceSpec {
            n_requests: 30,
            n_machines: 4,
            seed: 9,
            ..Default::default()
        });
        let spec = SchedulerSpec::parse_compact("ola").unwrap();
        let opts = SimOptions {
            shards: 2,
            ..Default::default()
        };
        let (report, _) = run_simulation_with(&SimInput::Open(trace), &spec, &opts).unwrap();
        let rs = report.resolve_stats.expect("sharded OLA merges telemetry");
        assert!(rs.n_resolves > 0);
        assert!(rs.lp_solves() >= rs.n_resolves);
    }

    #[test]
    fn reports_are_byte_stable() {
        let inst = generate(&WorkloadSpec {
            n_jobs: 6,
            seed: 8,
            ..Default::default()
        });
        let spec = SchedulerSpec::parse_compact("mct").unwrap();
        let a = run_simulation(&SimInput::Closed(inst.clone()), &spec).unwrap();
        let b = run_simulation(&SimInput::Closed(inst), &spec).unwrap();
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.to_text(), b.to_text());
        assert!(a.to_json().contains("\"completions\": ["));
    }
}
