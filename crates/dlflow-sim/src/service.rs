//! The replayable `simulate` service: one entry point that runs any
//! scheduler over either a **closed instance** or an **open-arrival
//! trace** and renders a deterministic report — the library half of the
//! `dlflow simulate` CLI subcommand.
//!
//! Reports are plain data plus hand-rendered JSON (the offline
//! dependency set has no serde): the same input always produces
//! byte-identical output, so a `dlflow simulate` invocation is a
//! reproducible, replayable record of a run.
//!
//! ## Example
//!
//! ```
//! use dlflow_sim::campaign::SchedulerSpec;
//! use dlflow_sim::service::{run_simulation, SimInput};
//! use dlflow_sim::workload::{generate_trace, TraceSpec};
//!
//! let trace = generate_trace(&TraceSpec { n_requests: 30, ..Default::default() });
//! let spec = SchedulerSpec::parse_compact("swrpt").unwrap();
//! let report = run_simulation(&SimInput::Open(trace), &spec).unwrap();
//! assert_eq!(report.n_jobs, 30);
//! assert!(report.to_json().contains("\"scheduler\": \"SWRPT\""));
//! ```

use crate::campaign::SchedulerSpec;
use crate::engine::{simulate, RunMetrics, SimResult};
use crate::workload::Trace;
use dlflow_core::instance::Instance;

/// What to simulate: a closed instance (all jobs known up front) or an
/// open-arrival trace (requests streamed through the incremental
/// engine).
pub enum SimInput {
    /// A closed instance — every job pushed at start, per-job
    /// completions reported.
    Closed(Instance<f64>),
    /// An open trace — replayed with memory proportional to the
    /// in-flight request count.
    Open(Trace),
}

/// Outcome of one service run: counters plus metrics, rendering to text
/// and deterministic JSON.
#[derive(Clone, Debug)]
pub struct ServiceReport {
    /// Scheduler label (the policy's self-reported name).
    pub scheduler: String,
    /// `"instance"` or `"trace"`.
    pub input_kind: &'static str,
    /// Jobs simulated.
    pub n_jobs: usize,
    /// Machines.
    pub n_machines: usize,
    /// Events processed.
    pub n_events: usize,
    /// `plan` invocations.
    pub n_plans: usize,
    /// Run metrics.
    pub metrics: RunMetrics,
    /// Fleet utilization over `[first release, makespan]`.
    pub utilization: f64,
    /// Largest number of simultaneously in-flight jobs (trace replays
    /// only; equals 0 for closed instances, where the engine does not
    /// track it).
    pub max_active: usize,
    /// Per-job completion times (closed instances only; empty for
    /// trace replays, which stream completions instead of storing them).
    pub completions: Vec<f64>,
}

/// Runs `spec`'s scheduler over the input. Closed instances go through
/// [`simulate`]; open traces through [`Trace::replay`].
pub fn run_simulation(input: &SimInput, spec: &SchedulerSpec) -> Result<ServiceReport, String> {
    let mut policy = spec.build();
    match input {
        SimInput::Closed(inst) => {
            let res: SimResult =
                simulate(inst, policy.as_mut()).map_err(|e| format!("{}: {e}", spec.label()))?;
            let metrics = RunMetrics::from_completions(inst, &res.completions);
            Ok(ServiceReport {
                scheduler: spec.label(),
                input_kind: "instance",
                n_jobs: inst.n_jobs(),
                n_machines: inst.n_machines(),
                n_events: res.n_events,
                n_plans: res.n_plans,
                utilization: res.utilization(inst),
                metrics,
                max_active: 0,
                completions: res.completions,
            })
        }
        SimInput::Open(trace) => {
            let stats = trace
                .replay(policy.as_mut())
                .map_err(|e| format!("{}: {e}", spec.label()))?;
            Ok(ServiceReport {
                scheduler: spec.label(),
                input_kind: "trace",
                n_jobs: stats.n_jobs,
                n_machines: trace.n_machines(),
                n_events: stats.n_events,
                n_plans: stats.n_plans,
                utilization: stats.utilization,
                metrics: stats.metrics,
                max_active: stats.max_active,
                completions: Vec::new(),
            })
        }
    }
}

/// Formats a float for report output: fixed 6 decimals, deterministic.
fn f6(v: f64) -> String {
    format!("{v:.6}")
}

impl ServiceReport {
    /// Human-readable summary.
    pub fn to_text(&self) -> String {
        let m = &self.metrics;
        let mut s = String::new();
        s.push_str(&format!(
            "{} over {} ({} jobs, {} machines)\n",
            self.scheduler, self.input_kind, self.n_jobs, self.n_machines
        ));
        s.push_str(&format!(
            "  events: {}   plans: {}   utilization: {:.3}",
            self.n_events, self.n_plans, self.utilization
        ));
        if self.max_active > 0 {
            s.push_str(&format!("   peak in-flight: {}", self.max_active));
        }
        s.push('\n');
        s.push_str(&format!(
            "  max stretch: {:.6}   sum stretch: {:.6}\n",
            m.max_stretch, m.sum_stretch
        ));
        s.push_str(&format!(
            "  max flow: {:.6}   mean flow: {:.6}   max weighted flow: {:.6}\n",
            m.max_flow, m.mean_flow, m.max_weighted_flow
        ));
        s.push_str(&format!("  makespan: {:.6}\n", m.makespan));
        s
    }

    /// Deterministic machine-readable JSON (same input → byte-identical
    /// bytes; no serde in the offline dependency set).
    pub fn to_json(&self) -> String {
        let m = &self.metrics;
        let mut s = String::from("{\n");
        s.push_str(&format!("  \"scheduler\": \"{}\",\n", self.scheduler));
        s.push_str(&format!("  \"input\": \"{}\",\n", self.input_kind));
        s.push_str(&format!("  \"n_jobs\": {},\n", self.n_jobs));
        s.push_str(&format!("  \"n_machines\": {},\n", self.n_machines));
        s.push_str(&format!("  \"n_events\": {},\n", self.n_events));
        s.push_str(&format!("  \"n_plans\": {},\n", self.n_plans));
        s.push_str(&format!("  \"max_active\": {},\n", self.max_active));
        s.push_str(&format!("  \"utilization\": {},\n", f6(self.utilization)));
        s.push_str(&format!("  \"max_stretch\": {},\n", f6(m.max_stretch)));
        s.push_str(&format!("  \"sum_stretch\": {},\n", f6(m.sum_stretch)));
        s.push_str(&format!("  \"max_flow\": {},\n", f6(m.max_flow)));
        s.push_str(&format!("  \"mean_flow\": {},\n", f6(m.mean_flow)));
        s.push_str(&format!(
            "  \"max_weighted_flow\": {},\n",
            f6(m.max_weighted_flow)
        ));
        s.push_str(&format!("  \"makespan\": {}", f6(m.makespan)));
        if self.completions.is_empty() {
            s.push('\n');
        } else {
            s.push_str(",\n  \"completions\": [");
            for (j, c) in self.completions.iter().enumerate() {
                let comma = if j + 1 == self.completions.len() {
                    ""
                } else {
                    ", "
                };
                s.push_str(&format!("{}{comma}", f6(*c)));
            }
            s.push_str("]\n");
        }
        s.push_str("}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{generate, generate_trace, TraceSpec, WorkloadSpec};

    #[test]
    fn closed_and_open_runs_report_consistently() {
        let trace = generate_trace(&TraceSpec {
            n_requests: 30,
            seed: 4,
            ..Default::default()
        });
        let spec = SchedulerSpec::parse_compact("srpt").unwrap();
        let open = run_simulation(&SimInput::Open(trace.clone()), &spec).unwrap();
        let closed =
            run_simulation(&SimInput::Closed(trace.to_instance().unwrap()), &spec).unwrap();
        assert_eq!(open.n_events, closed.n_events);
        assert_eq!(open.n_plans, closed.n_plans);
        assert!((open.metrics.max_stretch - closed.metrics.max_stretch).abs() < 1e-9);
        assert_eq!(open.completions.len(), 0);
        assert_eq!(closed.completions.len(), 30);
        assert!(open.max_active >= 1);
    }

    #[test]
    fn reports_are_byte_stable() {
        let inst = generate(&WorkloadSpec {
            n_jobs: 6,
            seed: 8,
            ..Default::default()
        });
        let spec = SchedulerSpec::parse_compact("mct").unwrap();
        let a = run_simulation(&SimInput::Closed(inst.clone()), &spec).unwrap();
        let b = run_simulation(&SimInput::Closed(inst), &spec).unwrap();
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.to_text(), b.to_text());
        assert!(a.to_json().contains("\"completions\": ["));
    }
}
