//! Incremental fluid discrete-event simulation engine.
//!
//! The core is a resumable [`Engine`] state machine: arrivals are *pushed*
//! into an event queue ([`Engine::push_arrival`]), the engine advances one
//! event at a time ([`Engine::step`]) or until it runs out of work
//! ([`Engine::drain`]), and completions stream back out as they happen.
//! Between consecutive events the scheduler's allocation (a sparse rate
//! map) is integrated exactly; events are arrivals, completions, and
//! platform changes (machine failures and recoveries pushed through
//! [`Engine::push_platform_event`]). The engine enforces the model
//! invariants (machine capacity, availability, liveness) and replays any
//! online policy reproducibly — this is the testbed for the paper's
//! concluding claim that an online adaptation of the offline algorithm
//! beats MCT.
//!
//! ## Hot-path layout
//!
//! Internally the engine is *flat*: jobs live in a slab of parallel
//! structure-of-arrays columns (id / remaining / release / weight /
//! fastest, plus one contiguous `slab × machines` cost arena), addressed
//! by stable slot indices that are recycled through a free list. The two
//! event queues are index-based 4-ary min-heaps of small `Copy` keys
//! (`heap::DaryHeap`), and the admission-ordered active set is a plain
//! `Vec<u32>` of slots. Schedulers see this storage through the borrowed
//! [`ActiveSet`] / [`JobView`] façade and write their plan into a
//! caller-owned [`Allocation`] whose row storage the engine recycles
//! event over event. The result is **zero allocations per steady-state
//! event** on the `step`/`drain`/`admit_due` path (capacity warms up to
//! the high-water mark, then stays) — a property enforced by
//! `dlflow-lint`'s `alloc-in-hot-loop` analysis and measured by
//! `bench-report --allocs`.
//!
//! Per-event cost is `O(assigned entries + |active|)` and memory is
//! `O(|active| + |pending|)` slots (plus one `u32` per pushed id for the
//! id→slot map) — independent of how many requests the surrounding trace
//! contains, which is what lets `dlflow simulate` replay 100k-request
//! open-arrival traces (see `workload::Trace`). The closed-instance entry
//! point [`simulate`] survives as a thin wrapper that pushes every job of
//! an [`Instance`] up front; the seed's dense-allocation batch loop is
//! kept as [`simulate_dense`], a parity oracle for `tests/prop_engine.rs`
//! and the baseline of the throughput benchmarks, and the PR-5
//! `Vec<ActiveJob>` engine survives verbatim as
//! [`crate::reference::ReferenceEngine`], the differential oracle of
//! `tests/prop_shard.rs`.
//!
//! ## Streaming example
//!
//! ```
//! use dlflow_sim::engine::{Engine, JobSpec};
//! use dlflow_sim::schedulers::Swrpt;
//!
//! let mut eng = Engine::new(2); // two machines
//! let mut policy = Swrpt::new();
//! eng.push_arrival(JobSpec { release: 0.0, weight: 1.0, costs: vec![4.0, 8.0] }).unwrap();
//! eng.push_arrival(JobSpec { release: 1.0, weight: 1.0, costs: vec![2.0, f64::INFINITY] }).unwrap();
//! eng.drain(&mut policy).unwrap();
//! assert_eq!(eng.take_completed().len(), 2);
//! assert!(eng.metrics().makespan > 0.0);
//! ```

use crate::heap::{DaryHeap, HeapOrd};
use dlflow_core::instance::Instance;

/// Comparison slack shared by the engine's admission and completion
/// checks (and by the trace replayer's arrival batching).
pub(crate) const EPS: f64 = 1e-9;

/// Sentinel for "no slot" / "not active" in the engine's `u32` index
/// maps.
const NONE: u32 = u32::MAX;

/// A job as it enters the engine: release date, weight, and one
/// processing cost per machine (`f64::INFINITY` where the machine lacks
/// the job's databank). This is the open-arrival counterpart of an
/// [`Instance`] column — no closed instance is required.
#[derive(Clone, Debug)]
pub struct JobSpec {
    /// Release date `r_j ≥ 0`.
    pub release: f64,
    /// Weight `w_j ≥ 0` (zero-weight jobs are tolerated: they simply
    /// never bind the weighted-flow objective).
    pub weight: f64,
    /// Seconds each machine needs for the whole job; `f64::INFINITY`
    /// marks the machine as unavailable. At least one entry must be
    /// finite.
    pub costs: Vec<f64>,
}

/// A released, not-yet-finished job materialized as an owning struct.
/// The flattened [`Engine`] no longer stores these (jobs live in its
/// slab); the type survives as the working representation of the
/// [`simulate_dense`] parity oracle and the reference engine, and as the
/// unit the crate-internal `ScratchSet` adapter flattens into an
/// [`ActiveSet`].
#[derive(Clone, Debug)]
pub struct ActiveJob {
    /// Engine-assigned job id (assignment order of [`Engine::push_arrival`]).
    pub id: usize,
    /// Remaining fraction of the job, in `(0, 1]`.
    pub remaining: f64,
    /// Release date.
    pub release: f64,
    /// Weight.
    pub weight: f64,
    pub(crate) costs: Box<[f64]>,
    pub(crate) fastest: f64,
}

impl ActiveJob {
    pub(crate) fn new(id: usize, spec: JobSpec) -> ActiveJob {
        let fastest = spec.costs.iter().cloned().fold(f64::INFINITY, f64::min);
        ActiveJob {
            id,
            remaining: 1.0,
            release: spec.release,
            weight: spec.weight,
            costs: spec.costs.into_boxed_slice(),
            fastest,
        }
    }

    /// Processing cost of the whole job on `machine`, `None` when the
    /// machine lacks the job's databank.
    pub fn cost(&self, machine: usize) -> Option<f64> {
        let c = self.costs[machine];
        c.is_finite().then_some(c)
    }

    /// Raw per-machine cost (`f64::INFINITY` = unavailable).
    pub fn raw_cost(&self, machine: usize) -> f64 {
        self.costs[machine]
    }

    /// Smallest finite cost across machines (the job's fastest possible
    /// total processing time).
    pub fn fastest_cost(&self) -> f64 {
        self.fastest
    }

    /// Number of machines the job knows costs for.
    pub fn n_machines(&self) -> usize {
        self.costs.len()
    }
}

/// A borrowed, `Copy` view of one released, unfinished job — what a
/// scheduler sees. The data lives in the engine's structure-of-arrays
/// slab (or in a `ScratchSet` adapter); the view is a few words of
/// scalars plus a borrowed cost row, so policies pass it around by
/// value without touching the heap.
#[derive(Clone, Copy, Debug)]
pub struct JobView<'a> {
    /// Engine-assigned job id (assignment order of [`Engine::push_arrival`]).
    pub id: usize,
    /// Remaining fraction of the job, in `(0, 1]`.
    pub remaining: f64,
    /// Release date.
    pub release: f64,
    /// Weight.
    pub weight: f64,
    pub(crate) fastest: f64,
    pub(crate) costs: &'a [f64],
}

impl<'a> JobView<'a> {
    /// Processing cost of the whole job on `machine`, `None` when the
    /// machine lacks the job's databank.
    pub fn cost(&self, machine: usize) -> Option<f64> {
        let c = self.costs[machine];
        c.is_finite().then_some(c)
    }

    /// Raw per-machine cost (`f64::INFINITY` = unavailable).
    pub fn raw_cost(&self, machine: usize) -> f64 {
        self.costs[machine]
    }

    /// Smallest finite cost across machines (the job's fastest possible
    /// total processing time).
    pub fn fastest_cost(&self) -> f64 {
        self.fastest
    }

    /// Number of machines the job knows costs for.
    pub fn n_machines(&self) -> usize {
        self.costs.len()
    }

    /// The borrowed per-machine cost row.
    pub fn costs(&self) -> &'a [f64] {
        self.costs
    }
}

/// The set of released, unfinished jobs in admission order, as a `Copy`
/// bundle of borrowed structure-of-arrays columns. This is what
/// [`OnlineScheduler::plan`] receives instead of a `&[ActiveJob]` slice:
/// indexing yields [`JobView`]s without the engine ever materializing
/// per-job structs on the hot path.
#[derive(Clone, Copy, Debug)]
pub struct ActiveSet<'a> {
    order: &'a [u32],
    ids: &'a [usize],
    remaining: &'a [f64],
    release: &'a [f64],
    weight: &'a [f64],
    fastest: &'a [f64],
    costs: &'a [f64],
    n_machines: usize,
}

impl<'a> ActiveSet<'a> {
    /// Number of active jobs.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Is the active set empty?
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Number of machines each job carries costs for.
    pub fn n_machines(&self) -> usize {
        self.n_machines
    }

    /// The `k`-th active job in admission order.
    pub fn get(&self, k: usize) -> JobView<'a> {
        let s = self.order[k] as usize;
        JobView {
            id: self.ids[s],
            remaining: self.remaining[s],
            release: self.release[s],
            weight: self.weight[s],
            fastest: self.fastest[s],
            costs: &self.costs[s * self.n_machines..(s + 1) * self.n_machines],
        }
    }

    /// Iterates the active jobs in admission order.
    pub fn iter(&self) -> impl Iterator<Item = JobView<'a>> {
        let this = *self;
        (0..this.len()).map(move |k| this.get(k))
    }
}

/// Flattens a `&[ActiveJob]` slice into [`ActiveSet`] column storage, so
/// the dense parity oracle and the reference engine can drive policies
/// through the same `plan` signature as the flattened engine. Buffers
/// are recycled across calls.
#[derive(Debug, Default)]
pub(crate) struct ScratchSet {
    order: Vec<u32>,
    ids: Vec<usize>,
    remaining: Vec<f64>,
    release: Vec<f64>,
    weight: Vec<f64>,
    fastest: Vec<f64>,
    costs: Vec<f64>,
}

impl ScratchSet {
    /// Rebuilds the columns from `active` (each job must carry
    /// `n_machines` costs).
    pub(crate) fn fill(&mut self, active: &[ActiveJob], n_machines: usize) {
        self.order.clear();
        self.ids.clear();
        self.remaining.clear();
        self.release.clear();
        self.weight.clear();
        self.fastest.clear();
        self.costs.clear();
        for (k, a) in active.iter().enumerate() {
            debug_assert_eq!(a.costs.len(), n_machines);
            self.order.push(k as u32);
            self.ids.push(a.id);
            self.remaining.push(a.remaining);
            self.release.push(a.release);
            self.weight.push(a.weight);
            self.fastest.push(a.fastest);
            self.costs.extend_from_slice(&a.costs);
        }
    }

    /// The flattened view over the current fill.
    pub(crate) fn view(&self, n_machines: usize) -> ActiveSet<'_> {
        ActiveSet {
            order: &self.order,
            ids: &self.ids,
            remaining: &self.remaining,
            release: &self.release,
            weight: &self.weight,
            fastest: &self.fastest,
            costs: &self.costs,
            n_machines,
        }
    }
}

/// A [`JobView`] borrowing an owning [`ActiveJob`] (for the dense and
/// reference drivers' `on_arrival` notifications).
pub(crate) fn view_of(a: &ActiveJob) -> JobView<'_> {
    JobView {
        id: a.id,
        remaining: a.remaining,
        release: a.release,
        weight: a.weight,
        fastest: a.fastest,
        costs: &a.costs,
    }
}

/// A sparse rate allocation: for each machine, the share (0..=1) it
/// devotes to each job it serves. Machines' shares must sum to at most 1.
/// Memory is proportional to the number of *assigned* (machine, job)
/// pairs — independent of how many jobs the whole trace contains. The
/// engine hands policies a recycled instance every event
/// ([`Allocation::reset`] keeps row capacity), so steady-state planning
/// allocates nothing.
#[derive(Clone, Debug, Default)]
pub struct Allocation {
    /// Per machine: `(job id, share)` entries sorted by job id.
    rows: Vec<Vec<(usize, f64)>>,
}

impl Allocation {
    /// The all-idle allocation for `n_machines` machines.
    pub fn idle(n_machines: usize) -> Self {
        Allocation {
            rows: vec![Vec::new(); n_machines], // dlflint:allow(alloc-in-hot-loop, "the returned Allocation is the product of planning, not a reusable scratch buffer")
        }
    }

    /// Clears every row and resizes to `n_machines`, keeping row
    /// capacity: the engine's per-event recycling entry point.
    pub fn reset(&mut self, n_machines: usize) {
        self.rows.truncate(n_machines);
        for row in &mut self.rows {
            row.clear();
        }
        while self.rows.len() < n_machines {
            self.rows.push(Vec::new()); // dlflint:allow(alloc-in-hot-loop, "an empty Vec allocates nothing; rows grow to the machine count once and are recycled after")
        }
    }

    /// Overwrites `self` with a copy of `other`, reusing the machine
    /// vector and each row's capacity. Callers that keep one
    /// `Allocation` alive across re-solves (the OLA throttle cache)
    /// copy through here so the steady state stays allocation-free.
    pub(crate) fn copy_from(&mut self, other: &Allocation) {
        self.reset(other.rows.len());
        for (dst, src) in self.rows.iter_mut().zip(&other.rows) {
            dst.extend_from_slice(src);
        }
    }

    /// Number of machines the allocation addresses.
    pub fn n_machines(&self) -> usize {
        self.rows.len()
    }

    /// Sets machine `machine`'s share for `job` (replacing any previous
    /// value).
    pub fn set(&mut self, machine: usize, job: usize, share: f64) {
        let row = &mut self.rows[machine];
        match row.binary_search_by_key(&job, |e| e.0) {
            Ok(k) => row[k].1 = share,
            Err(k) => row.insert(k, (job, share)),
        }
    }

    /// Adds `share` to machine `machine`'s share for `job`.
    pub fn add(&mut self, machine: usize, job: usize, share: f64) {
        let row = &mut self.rows[machine];
        match row.binary_search_by_key(&job, |e| e.0) {
            Ok(k) => row[k].1 += share,
            Err(k) => row.insert(k, (job, share)),
        }
    }

    /// Machine `machine`'s share for `job` (0 when unassigned, or when
    /// the machine index is out of range).
    pub fn share(&self, machine: usize, job: usize) -> f64 {
        let Some(row) = self.rows.get(machine) else {
            return 0.0;
        };
        match row.binary_search_by_key(&job, |e| e.0) {
            Ok(k) => row[k].1,
            Err(_) => 0.0,
        }
    }

    /// The `(job, share)` entries of one machine, sorted by job id.
    pub fn entries(&self, machine: usize) -> &[(usize, f64)] {
        &self.rows[machine]
    }

    /// Total share machine `machine` hands out.
    pub fn machine_total(&self, machine: usize) -> f64 {
        self.rows[machine].iter().map(|e| e.1).sum()
    }

    /// Scales every share of `machine` by `factor` (used to normalize a
    /// marginally oversubscribed machine).
    pub fn scale_machine(&mut self, machine: usize, factor: f64) {
        for e in &mut self.rows[machine] {
            e.1 *= factor;
        }
    }
}

/// Re-solve cost telemetry reported by LP-backed policies (OLA and its
/// variants) through [`OnlineScheduler::resolve_stats`]. Counters are
/// *deterministic* proxies — LP solves, not wall time — so reports that
/// include them stay byte-stable across runs and machines.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ResolveStats {
    /// Full re-plans performed (bisection + final rate solve).
    pub n_resolves: usize,
    /// LP solves served by warm-basis reuse.
    pub warm_lp_solves: usize,
    /// LP solves performed from scratch (cold starts, tolerance-band
    /// probes pinned to the cold path, and the final rate solve).
    pub cold_lp_solves: usize,
    /// Re-plans during which at least one LP solve was served warm —
    /// the event-level "did the warm machinery engage" counter. A
    /// resolve always ends with cold solves (the tolerance-band tail of
    /// the bisection and the final rate extraction are pinned to the
    /// legacy path by design), so the honest event-level question is
    /// engagement, not purity.
    pub warm_resolves: usize,
    /// Re-plans served entirely by cold solves (the oracle mode, plus
    /// warm-mode events vetoed by the conditioning/coincidence guards).
    pub cold_resolves: usize,
}

impl ResolveStats {
    /// Total LP solves across warm and cold paths.
    pub fn lp_solves(&self) -> usize {
        self.warm_lp_solves + self.cold_lp_solves
    }

    /// Mean LP solves per full re-plan — the deterministic "mean resolve
    /// cost" figure surfaced in service reports.
    pub fn mean_lp_solves_per_resolve(&self) -> f64 {
        if self.n_resolves == 0 {
            0.0
        } else {
            self.lp_solves() as f64 / self.n_resolves as f64
        }
    }

    /// Component-wise sum (used to aggregate across shards).
    pub fn merge(&mut self, other: &ResolveStats) {
        self.n_resolves += other.n_resolves;
        self.warm_lp_solves += other.warm_lp_solves;
        self.cold_lp_solves += other.cold_lp_solves;
        self.warm_resolves += other.warm_resolves;
        self.cold_resolves += other.cold_resolves;
    }
}

/// An online scheduling policy, driven by event notifications. The
/// engine tells the policy about arrivals and completions so it can keep
/// incremental state; [`OnlineScheduler::plan`] is called at every event
/// and sees only the currently active jobs (the online model of §5 —
/// future jobs are unknown).
pub trait OnlineScheduler {
    /// Display name (used by experiment tables).
    fn name(&self) -> String;

    /// A job has entered the system (called once per job, before the
    /// next `plan`). Policies cache per-job decisions here. The view is
    /// `Copy`; policies wanting the cost row beyond the call must copy
    /// it out.
    fn on_arrival(&mut self, _now: f64, _job: JobView<'_>) {}

    /// A job has completed (called before the next `plan`). Policies
    /// drop per-job state here.
    fn on_completion(&mut self, _now: f64, _job_id: usize) {}

    /// Writes the sparse rate allocation to apply until the next event
    /// into `alloc`. `active` lists released unfinished jobs in
    /// admission order, with their remaining fractions and per-machine
    /// costs. `alloc` arrives reset to `active.n_machines()` empty rows
    /// (row capacity recycled from the previous event) — policies fill
    /// it and must not assume it retains prior contents.
    fn plan(&mut self, now: f64, active: &ActiveSet<'_>, alloc: &mut Allocation);

    /// The platform changed (machines failed or recovered) at `now`;
    /// `up[i]` tells whether machine `i` is in service. Policies holding
    /// machine-keyed cached state (queue assignments, LP plans) must
    /// drop or rebuild it here: the next `plan` runs against the new
    /// mask, and any share handed to a down machine is rejected with
    /// [`SimError::DeadMachineAllocation`].
    fn on_platform_change(&mut self, _now: f64, _up: &[bool]) {}

    /// Serializes policy-internal state for [`Engine::snapshot`] as
    /// newline-separated lines (empty for stateless policies, the
    /// default). Must round-trip bit-exactly through
    /// [`OnlineScheduler::restore_state`].
    ///
    /// [`Engine::snapshot`]: crate::snapshot
    fn snapshot_state(&self) -> String {
        String::new()
    }

    /// Restores state captured by [`OnlineScheduler::snapshot_state`];
    /// the engine calls this on a freshly `reset` policy during restore.
    /// The default accepts only the stateless empty form.
    fn restore_state(&mut self, state: &str) -> Result<(), String> {
        if state.is_empty() {
            Ok(())
        } else {
            Err("policy has no persistent state to restore".into())
        }
    }

    /// Reset internal state between runs.
    fn reset(&mut self) {}

    /// Re-solve cost telemetry since the last `reset`, for policies that
    /// pay an LP solve per plan (OLA and friends). `None` (the default)
    /// means the policy has no resolve machinery to report on; service
    /// reports omit the resolve block in that case.
    fn resolve_stats(&self) -> Option<ResolveStats> {
        None
    }
}

/// One finished job, streamed out of the engine as it completes.
#[derive(Clone, Debug, PartialEq)]
pub struct CompletedJob {
    /// Engine-assigned job id.
    pub id: usize,
    /// Release date.
    pub release: f64,
    /// Weight.
    pub weight: f64,
    /// Fastest possible total processing time (stretch denominator).
    pub fastest_cost: f64,
    /// Completion time.
    pub completion: f64,
}

/// Outcome of a simulation run (closed-instance entry points).
#[derive(Clone, Debug)]
pub struct SimResult {
    /// Completion time per job.
    pub completions: Vec<f64>,
    /// Number of events processed.
    pub n_events: usize,
    /// Number of `plan` invocations.
    pub n_plans: usize,
    /// Machine-seconds of occupied capacity per machine: the integral of
    /// the shares each machine devoted to then-active jobs. Feeds the
    /// utilization column of campaign reports.
    pub busy: Vec<f64>,
}

impl SimResult {
    /// Fleet utilization over the span `[first release, makespan]`:
    /// total busy machine-seconds divided by total offered capacity.
    /// Returns 0 for degenerate (zero-length) spans.
    pub fn utilization(&self, inst: &Instance<f64>) -> f64 {
        let first = (0..inst.n_jobs())
            .map(|j| inst.job(j).release)
            .fold(f64::INFINITY, f64::min);
        let makespan = self.completions.iter().cloned().fold(0.0f64, f64::max);
        utilization_of(&self.busy, first, makespan)
    }
}

pub(crate) fn utilization_of(busy: &[f64], first_release: f64, makespan: f64) -> f64 {
    let span = makespan - first_release;
    if !span.is_finite() || span <= 0.0 {
        return 0.0;
    }
    let total: f64 = busy.iter().sum();
    total / (span * busy.len().max(1) as f64)
}

/// Errors the engine can surface. [`SimError::InvalidJob`] and
/// [`SimError::InvalidPlatformEvent`] indicate malformed input handed to
/// the push entry points; every other variant indicates a faulty
/// scheduler.
#[derive(Clone, Debug, PartialEq)]
pub enum SimError {
    /// A malformed [`JobSpec`] was pushed (see [`Engine::push_arrival`]).
    InvalidJob {
        /// What was wrong with the spec.
        reason: &'static str,
    },
    /// A malformed [`PlatformEvent`] was pushed (see
    /// [`Engine::push_platform_event`]).
    InvalidPlatformEvent {
        /// What was wrong with the event.
        reason: &'static str,
    },
    /// A machine's shares summed to more than 1.
    MachineOversubscribed {
        /// Machine index.
        machine: usize,
        /// Offending total share.
        total: f64,
    },
    /// A rate was assigned to a job on a machine lacking its databank.
    ForbiddenAssignment {
        /// Machine index.
        machine: usize,
        /// Job index.
        job: usize,
    },
    /// A rate was assigned to a machine that is currently down — the
    /// policy ignored an [`OnlineScheduler::on_platform_change`]
    /// notification.
    DeadMachineAllocation {
        /// Machine index.
        machine: usize,
        /// Job index.
        job: usize,
    },
    /// Active jobs exist, no work is scheduled, and no future event
    /// (arrival *or* platform recovery) is pending.
    Stalled {
        /// Simulation time at the stall.
        at: f64,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::InvalidJob { reason } => write!(f, "invalid job spec: {reason}"),
            SimError::InvalidPlatformEvent { reason } => {
                write!(f, "invalid platform event: {reason}")
            }
            SimError::MachineOversubscribed { machine, total } => {
                write!(f, "machine {machine} oversubscribed: Σ shares = {total}")
            }
            SimError::ForbiddenAssignment { machine, job } => {
                write!(
                    f,
                    "job {job} assigned to machine {machine} without its databank"
                )
            }
            SimError::DeadMachineAllocation { machine, job } => {
                write!(
                    f,
                    "job {job} assigned to machine {machine} while it is down"
                )
            }
            SimError::Stalled { at } => write!(f, "simulation stalled at t = {at}"),
        }
    }
}

impl std::error::Error for SimError {}

/// What one [`Engine::step`] call did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepOutcome {
    /// The engine advanced to the next event (an arrival admission
    /// and/or a time integration step).
    Advanced,
    /// Nothing to do: no active jobs and no pending arrivals. Push more
    /// arrivals to resume.
    Idle,
}

/// A platform state transition: one machine leaving or rejoining
/// service.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlatformChange {
    /// The machine fails: the work it contributed to unfinished jobs is
    /// lost back to their remaining sizes, and it accepts no shares
    /// until it recovers.
    Down,
    /// The machine recovers and may be allocated again.
    Up,
}

/// A timed [`PlatformChange`] for one machine, applied when the engine
/// clock reaches `time` (see [`Engine::push_platform_event`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PlatformEvent {
    /// Simulation time at which the change takes effect.
    pub time: f64,
    /// Machine index.
    pub machine: usize,
    /// Direction of the transition.
    pub change: PlatformChange,
}

/// Pending-arrival heap key, ordered by `(release, id)` so simultaneous
/// arrivals are admitted in push order. The job's data already sits in
/// its slab slot; admission moves nothing.
#[derive(Clone, Copy, Debug)]
pub(crate) struct ArrivalKey {
    pub(crate) release: f64,
    pub(crate) id: usize,
    pub(crate) slot: u32,
}

impl HeapOrd for ArrivalKey {
    fn before(&self, other: &Self) -> bool {
        match self.release.total_cmp(&other.release) {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Greater => false,
            std::cmp::Ordering::Equal => self.id < other.id,
        }
    }
}

/// Platform-event heap key, ordered by `(time, push order)` so
/// simultaneous events apply deterministically.
#[derive(Clone, Copy, Debug)]
pub(crate) struct PlatformKey {
    pub(crate) time: f64,
    pub(crate) seq: usize,
    pub(crate) event: PlatformEvent,
}

impl HeapOrd for PlatformKey {
    fn before(&self, other: &Self) -> bool {
        match self.time.total_cmp(&other.time) {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Greater => false,
            std::cmp::Ordering::Equal => self.seq < other.seq,
        }
    }
}

/// Streaming metrics accumulator: folds [`CompletedJob`]s into
/// [`RunMetrics`] one at a time, so a replay never has to materialize
/// its full completion vector. All divisions are guarded — zero
/// completions, zero-size jobs, and zero-length spans yield zeros, not
/// NaN.
#[derive(Clone, Debug, Default)]
pub struct MetricsAccumulator {
    pub(crate) max_wf: f64,
    pub(crate) max_f: f64,
    pub(crate) max_s: f64,
    pub(crate) sum_s: f64,
    pub(crate) sum_f: f64,
    pub(crate) mk: f64,
    pub(crate) first_release: Option<f64>,
    pub(crate) n: usize,
}

impl MetricsAccumulator {
    /// Fresh, empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one completion in.
    pub fn push(&mut self, c: &CompletedJob) {
        let flow = c.completion - c.release;
        self.max_wf = self.max_wf.max(c.weight * flow);
        self.max_f = self.max_f.max(flow);
        if c.fastest_cost > 0.0 {
            let stretch = flow / c.fastest_cost;
            self.max_s = self.max_s.max(stretch);
            self.sum_s += stretch;
        }
        self.sum_f += flow;
        self.mk = self.mk.max(c.completion);
        self.first_release = Some(match self.first_release {
            None => c.release,
            Some(r) => r.min(c.release),
        });
        self.n += 1;
    }

    /// Folds another accumulator in, as if its completions had been
    /// pushed after this one's. Max-folds and sums are field-wise, so a
    /// shard merge in fixed shard order is deterministic (and the
    /// single-shard merge is the identity).
    pub(crate) fn merge(&mut self, other: &MetricsAccumulator) {
        self.max_wf = self.max_wf.max(other.max_wf);
        self.max_f = self.max_f.max(other.max_f);
        self.max_s = self.max_s.max(other.max_s);
        self.sum_s += other.sum_s;
        self.sum_f += other.sum_f;
        self.mk = self.mk.max(other.mk);
        self.first_release = match (self.first_release, other.first_release) {
            (None, r) => r,
            (r, None) => r,
            (Some(a), Some(b)) => Some(a.min(b)),
        };
        self.n += other.n;
    }

    /// Completions folded in so far.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Earliest release seen so far (`None` before the first completion).
    pub fn first_release(&self) -> Option<f64> {
        self.first_release
    }

    /// The metrics of everything folded in so far. With zero completions
    /// every field is 0 (the guard the degenerate-input tests pin down).
    pub fn metrics(&self) -> RunMetrics {
        RunMetrics {
            max_weighted_flow: self.max_wf,
            max_flow: self.max_f,
            max_stretch: self.max_s,
            sum_stretch: self.sum_s,
            mean_flow: if self.n == 0 {
                0.0
            } else {
                self.sum_f / self.n as f64
            },
            sum_flow: self.sum_f,
            makespan: self.mk,
        }
    }
}

/// The incremental simulation core: a resumable event-queue state
/// machine over flat slab storage. See the [module docs](self) for the
/// lifecycle and hot-path layout; the closed [`simulate`] wrapper, the
/// open-arrival `workload::Trace::replay`, and the multi-cluster
/// `shard::ShardedEngine` are all thin drivers over this type.
#[derive(Debug)]
pub struct Engine {
    pub(crate) n_machines: usize,
    pub(crate) now: f64,
    pub(crate) next_id: usize,
    pub(crate) n_events: usize,
    pub(crate) n_plans: usize,
    pub(crate) busy: Vec<f64>,
    pub(crate) completed: Vec<CompletedJob>,
    /// When `false`, completions feed the metrics accumulator but are
    /// not buffered for [`Engine::take_completed`] — the setting for
    /// unbounded streaming replays.
    pub record_completions: bool,
    pub(crate) metrics: MetricsAccumulator,
    pub(crate) n_completed: usize,
    // Platform dynamics. All of it stays inert (empty heap, `faulty`
    // false) until the first `push_platform_event`, so fault-free runs
    // take exactly the event paths they took before faults existed.
    pub(crate) up: Vec<bool>,
    pub(crate) n_platform_pushed: usize,
    pub(crate) faulty: bool,
    // --- Slab: structure-of-arrays job storage, slot-indexed. A slot is
    // allocated at push, carries the job through its pending and active
    // life, and returns to the free list at completion.
    slot_id: Vec<usize>,
    slot_remaining: Vec<f64>,
    slot_release: Vec<f64>,
    slot_weight: Vec<f64>,
    slot_fastest: Vec<f64>,
    /// Contiguous cost arena, `slab_len × n_machines`, one row per slot.
    slot_costs: Vec<f64>,
    free_slots: Vec<u32>,
    /// id → slot (`NONE` once the job completed). One `u32` per pushed
    /// id — the only per-trace-length storage the engine keeps.
    id_slot: Vec<u32>,
    /// slot → admission position in `order` (`NONE` while pending/free).
    slot_pos: Vec<u32>,
    /// Active slots in admission order.
    order: Vec<u32>,
    pending: DaryHeap<ArrivalKey>,
    platform: DaryHeap<PlatformKey>,
    /// Flat volatile-work arena (`slab_len × n_machines`) when `faulty`:
    /// per (job slot, machine), the work fraction contributed since the
    /// machine last (re)entered service — exactly the amount lost back
    /// to `remaining` if that machine dies. Rows are zeroed at
    /// admission.
    volatile: Vec<f64>,
    // Scratch buffers recycled across events.
    rate: Vec<f64>,
    machine_share: Vec<f64>,
    /// Recycled allocation handed to `plan` each event.
    plan_alloc: Allocation,
    /// Per-machine gather of `(admission pos, slot, share)` entries,
    /// insertion-sorted by pos so float accumulation order matches the
    /// legacy active-list scan bit for bit.
    row_scratch: Vec<(u32, u32, f64)>,
    peak_active: usize,
}

impl Engine {
    /// A fresh engine for `n_machines` machines, at time 0, with no jobs.
    pub fn new(n_machines: usize) -> Engine {
        assert!(n_machines > 0, "engine needs at least one machine");
        Engine {
            n_machines,
            now: 0.0,
            next_id: 0,
            n_events: 0,
            n_plans: 0,
            busy: vec![0.0; n_machines],
            completed: Vec::new(),
            record_completions: true,
            metrics: MetricsAccumulator::new(),
            n_completed: 0,
            up: vec![true; n_machines],
            n_platform_pushed: 0,
            faulty: false,
            slot_id: Vec::new(),
            slot_remaining: Vec::new(),
            slot_release: Vec::new(),
            slot_weight: Vec::new(),
            slot_fastest: Vec::new(),
            slot_costs: Vec::new(),
            free_slots: Vec::new(),
            id_slot: Vec::new(),
            slot_pos: Vec::new(),
            order: Vec::new(),
            pending: DaryHeap::new(),
            platform: DaryHeap::new(),
            volatile: Vec::new(),
            rate: Vec::new(),
            machine_share: vec![0.0; n_machines],
            plan_alloc: Allocation::default(),
            row_scratch: Vec::new(),
            peak_active: 0,
        }
    }

    /// Number of machines.
    pub fn n_machines(&self) -> usize {
        self.n_machines
    }

    /// Current simulation time.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Events processed so far (arrival admissions + integration steps).
    pub fn n_events(&self) -> usize {
        self.n_events
    }

    /// `plan` invocations so far.
    pub fn n_plans(&self) -> usize {
        self.n_plans
    }

    /// Busy machine-seconds per machine so far.
    pub fn busy(&self) -> &[f64] {
        &self.busy
    }

    /// Currently active (released, unfinished) jobs, admission order.
    pub fn active(&self) -> ActiveSet<'_> {
        ActiveSet {
            order: &self.order,
            ids: &self.slot_id,
            remaining: &self.slot_remaining,
            release: &self.slot_release,
            weight: &self.slot_weight,
            fastest: &self.slot_fastest,
            costs: &self.slot_costs,
            n_machines: self.n_machines,
        }
    }

    /// Pushed-but-not-yet-released arrivals.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Jobs pushed so far (also the next id to be assigned).
    pub fn n_pushed(&self) -> usize {
        self.next_id
    }

    /// Jobs completed so far.
    pub fn n_completed(&self) -> usize {
        self.n_completed
    }

    /// High-water mark of the active set (informational; not part of
    /// the snapshot format, resets on restore).
    pub fn peak_active(&self) -> usize {
        self.peak_active
    }

    /// Whether machine `machine` is currently in service (always `true`
    /// before the first platform event applies).
    pub fn machine_up(&self, machine: usize) -> bool {
        self.up[machine]
    }

    /// The per-machine availability mask.
    pub fn up_mask(&self) -> &[bool] {
        &self.up
    }

    /// Platform events pushed but not yet applied.
    pub fn platform_pending_len(&self) -> usize {
        self.platform.len()
    }

    /// Running metrics over everything completed so far.
    pub fn metrics(&self) -> RunMetrics {
        self.metrics.metrics()
    }

    /// Fleet utilization over `[first completed release, makespan]` so
    /// far (0 while nothing has completed).
    pub fn utilization(&self) -> f64 {
        let m = self.metrics.metrics();
        utilization_of(
            &self.busy,
            self.metrics.first_release().unwrap_or(f64::INFINITY),
            m.makespan,
        )
    }

    /// Allocates a slab slot, growing every parallel column (and the
    /// arenas) only when the free list is empty — i.e. when the all-time
    /// high-water mark of in-flight jobs grows.
    fn alloc_slot(&mut self) -> u32 {
        if let Some(s) = self.free_slots.pop() {
            return s;
        }
        let s = self.slot_id.len() as u32;
        self.slot_id.push(0);
        self.slot_remaining.push(0.0);
        self.slot_release.push(0.0);
        self.slot_weight.push(0.0);
        self.slot_fastest.push(0.0);
        self.slot_costs
            .resize(self.slot_costs.len() + self.n_machines, 0.0);
        self.slot_pos.push(NONE);
        self.rate.push(0.0);
        if self.faulty {
            self.volatile
                .resize(self.volatile.len() + self.n_machines, 0.0);
        }
        s
    }

    /// The view of one slab slot (used for `on_arrival` notifications).
    fn job_view(&self, slot: u32) -> JobView<'_> {
        let s = slot as usize;
        JobView {
            id: self.slot_id[s],
            remaining: self.slot_remaining[s],
            release: self.slot_release[s],
            weight: self.slot_weight[s],
            fastest: self.slot_fastest[s],
            costs: &self.slot_costs[s * self.n_machines..(s + 1) * self.n_machines],
        }
    }

    /// Enqueues a future arrival and returns its engine-assigned id (ids
    /// count up from 0 in push order). Arrivals may be pushed in any
    /// order; the event queue admits them by `(release, id)`. A release
    /// earlier than the current simulation time is admitted at the next
    /// event (its flow still counts from the stated release).
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidJob`] if the spec is malformed: wrong `costs`
    /// length, no finite cost, negative or non-finite
    /// release/weight/costs. A rejected spec leaves the engine untouched
    /// (no id is consumed).
    pub fn push_arrival(&mut self, job: JobSpec) -> Result<usize, SimError> {
        self.push_arrival_ref(job.release, job.weight, &job.costs)
    }

    /// [`Engine::push_arrival`] without the owning [`JobSpec`]: the cost
    /// row is copied straight into the slab, so drivers replaying a
    /// stored trace push arrivals without any per-job allocation.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidJob`] under exactly the same validation as
    /// [`Engine::push_arrival`].
    pub fn push_arrival_ref(
        &mut self,
        release: f64,
        weight: f64,
        costs: &[f64],
    ) -> Result<usize, SimError> {
        let invalid = |reason| Err(SimError::InvalidJob { reason });
        if costs.len() != self.n_machines {
            return invalid("costs length does not match the machine count");
        }
        if !costs.iter().any(|c| c.is_finite()) {
            return invalid("job can run on no machine");
        }
        if !costs.iter().all(|c| *c >= 0.0) {
            return invalid("job has a negative or NaN cost");
        }
        if !(release.is_finite() && release >= 0.0) {
            return invalid("job release must be finite and non-negative");
        }
        if !(weight.is_finite() && weight >= 0.0) {
            return invalid("job weight must be finite and non-negative");
        }
        let id = self.next_id;
        self.next_id += 1;
        let slot = self.insert_slot(id, 1.0, release, weight, costs);
        self.pending.push(ArrivalKey { release, id, slot });
        Ok(id)
    }

    /// Fills a fresh slot with one job's data and wires the id map.
    fn insert_slot(
        &mut self,
        id: usize,
        remaining: f64,
        release: f64,
        weight: f64,
        costs: &[f64],
    ) -> u32 {
        let slot = self.alloc_slot();
        let s = slot as usize;
        let m = self.n_machines;
        self.slot_id[s] = id;
        self.slot_remaining[s] = remaining;
        self.slot_release[s] = release;
        self.slot_weight[s] = weight;
        self.slot_fastest[s] = costs.iter().cloned().fold(f64::INFINITY, f64::min);
        self.slot_costs[s * m..(s + 1) * m].copy_from_slice(costs);
        self.slot_pos[s] = NONE;
        if self.id_slot.len() <= id {
            self.id_slot.resize(id + 1, NONE);
        }
        self.id_slot[id] = slot;
        slot
    }

    /// Enqueues a machine failure or recovery at `event.time`. Events
    /// apply in `(time, push order)`. Applying `Down` to a down machine
    /// (or `Up` to an up one) is a no-op, so whole availability masks
    /// can be pushed via [`Engine::push_platform_mask`]. The first push
    /// switches the engine into fault-tracking mode (per-machine
    /// volatile-work accounting); fault-free runs never pay for it.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidPlatformEvent`] for an out-of-range machine
    /// index or a non-finite/negative time. A rejected event leaves the
    /// engine untouched.
    pub fn push_platform_event(&mut self, event: PlatformEvent) -> Result<(), SimError> {
        let invalid = |reason| Err(SimError::InvalidPlatformEvent { reason });
        if event.machine >= self.n_machines {
            return invalid("machine index out of range");
        }
        if !(event.time.is_finite() && event.time >= 0.0) {
            return invalid("event time must be finite and non-negative");
        }
        self.enter_faulty_mode();
        let seq = self.n_platform_pushed;
        self.n_platform_pushed += 1;
        self.platform.push(PlatformKey {
            time: event.time,
            seq,
            event,
        });
        Ok(())
    }

    /// Pushes a whole availability mask taking effect at `time`: `Down`
    /// for every `false` machine, `Up` for every `true` one. Per-machine
    /// application is idempotent, so only actual transitions change
    /// state.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidPlatformEvent`] if the mask length does not
    /// match the machine count or the time is non-finite/negative.
    pub fn push_platform_mask(&mut self, time: f64, up: &[bool]) -> Result<(), SimError> {
        if up.len() != self.n_machines {
            return Err(SimError::InvalidPlatformEvent {
                reason: "mask length does not match the machine count",
            });
        }
        for (machine, &alive) in up.iter().enumerate() {
            self.push_platform_event(PlatformEvent {
                time,
                machine,
                change: if alive {
                    PlatformChange::Up
                } else {
                    PlatformChange::Down
                },
            })?;
        }
        Ok(())
    }

    /// One-time switch into fault-tracking mode: a zeroed volatile-work
    /// row for every slab slot (active rows start zero, matching the
    /// legacy backfill; pending/free rows are re-zeroed at admission).
    pub(crate) fn enter_faulty_mode(&mut self) {
        if !self.faulty {
            self.faulty = true;
            self.volatile = vec![0.0; self.slot_id.len() * self.n_machines]; // dlflint:allow(alloc-in-hot-loop, "one-time mode switch on the first pushed platform event, not per-event work")
        }
    }

    /// Applies every platform event due by `now + EPS`; each applied
    /// event is one engine event. `Down` loses the dying machine's
    /// volatile work back to each job's remaining size (the
    /// divisible-load model makes this exact). The policy is notified
    /// once per non-empty batch. Returns how many events were applied.
    fn apply_due_platform(&mut self, policy: &mut dyn OnlineScheduler) -> usize {
        let mut applied = 0;
        loop {
            match self.platform.peek() {
                Some(p) if p.time <= self.now + EPS => {}
                _ => break,
            }
            let Some(p) = self.platform.pop() else {
                break;
            };
            let i = p.event.machine;
            match p.event.change {
                PlatformChange::Down if self.up[i] => {
                    self.up[i] = false;
                    let m = self.n_machines;
                    // Refund in admission order (matches the legacy
                    // active-list walk bit for bit).
                    for &slot in &self.order {
                        let s = slot as usize;
                        let lost = self.volatile[s * m + i];
                        self.slot_remaining[s] = (self.slot_remaining[s] + lost).min(1.0);
                        self.volatile[s * m + i] = 0.0;
                    }
                }
                PlatformChange::Up if !self.up[i] => {
                    self.up[i] = true;
                }
                // Idempotent repeat (e.g. a mask push): no state change,
                // but still a consumed event.
                _ => {}
            }
            self.n_events += 1;
            applied += 1;
        }
        if applied > 0 {
            policy.on_platform_change(self.now, &self.up);
        }
        applied
    }

    /// Admits every pending arrival released by `now + EPS`; returns how
    /// many were admitted. Each admission is one event and one
    /// `on_arrival` notification. Admission moves no job data — it only
    /// appends the job's slot to the admission order.
    fn admit_due(&mut self, policy: &mut dyn OnlineScheduler) -> usize {
        let mut admitted = 0;
        loop {
            match self.pending.peek() {
                Some(p) if p.release <= self.now + EPS => {}
                _ => break,
            }
            let Some(p) = self.pending.pop() else {
                break;
            };
            let s = p.slot as usize;
            policy.on_arrival(self.now, self.job_view(p.slot));
            self.slot_pos[s] = self.order.len() as u32;
            self.order.push(p.slot);
            if self.faulty {
                let m = self.n_machines;
                self.volatile[s * m..(s + 1) * m].fill(0.0);
            }
            self.n_events += 1;
            admitted += 1;
        }
        if self.order.len() > self.peak_active {
            self.peak_active = self.order.len();
        }
        admitted
    }

    /// Advances the engine by one event: admit due arrivals, or plan and
    /// integrate up to the next completion/arrival. Returns
    /// [`StepOutcome::Idle`] when there is nothing to do (no active jobs,
    /// no pending arrivals) — push more arrivals to resume.
    ///
    /// Callers streaming an open trace must keep at least the next
    /// arrival pushed while the trace has more: the engine can only
    /// bound its integration horizon by arrivals it knows about.
    pub fn step(&mut self, policy: &mut dyn OnlineScheduler) -> Result<StepOutcome, SimError> {
        if self.order.is_empty() {
            let t_arrival = self.pending.peek().map(|p| p.release);
            let t_platform = self.platform.peek().map(|p| p.time);
            let t = match (t_arrival, t_platform) {
                (None, None) => return Ok(StepOutcome::Idle),
                (Some(a), None) => a,
                (None, Some(p)) => p,
                (Some(a), Some(p)) => a.min(p),
            };
            // Jump to the next event (never backwards).
            self.now = self.now.max(t);
            self.apply_due_platform(policy);
            self.admit_due(policy);
            return Ok(StepOutcome::Advanced);
        }

        // Platform events due now take effect before the policy plans —
        // it must never be asked to plan around a machine that is
        // already dead (e.g. after a resume with due events queued).
        self.apply_due_platform(policy);

        let m = self.n_machines;
        let mut alloc = std::mem::take(&mut self.plan_alloc);
        alloc.reset(m);
        policy.plan(self.now, &self.active(), &mut alloc);
        self.n_plans += 1;

        // Validate the allocation and compute per-job progress rates.
        // Instead of the legacy O(m · |active| · log) scan (every active
        // job probed against every machine's sparse row), each row's
        // entries are gathered once, filtered to active jobs, and
        // insertion-sorted by admission position — the same per-machine
        // job order and float accumulation order as the legacy scan, so
        // results are bit-identical, at O(assigned entries) cost.
        for &slot in &self.order {
            self.rate[slot as usize] = 0.0;
        }
        for i in 0..m {
            self.row_scratch.clear();
            for &(jid, share) in alloc.entries(i) {
                if share <= EPS {
                    continue;
                }
                let Some(&slot) = self.id_slot.get(jid) else {
                    continue; // unknown id: the legacy scan never saw it
                };
                if slot == NONE {
                    continue; // already completed
                }
                let pos = self.slot_pos[slot as usize];
                if pos == NONE {
                    continue; // pushed but not yet admitted
                }
                let mut k = self.row_scratch.len();
                self.row_scratch.push((pos, slot, share));
                while k > 0 && self.row_scratch[k - 1].0 > pos {
                    self.row_scratch.swap(k - 1, k);
                    k -= 1;
                }
            }
            let mut total = 0.0;
            for idx in 0..self.row_scratch.len() {
                let (_, slot, share) = self.row_scratch[idx];
                let s = slot as usize;
                if self.faulty && !self.up[i] {
                    return Err(SimError::DeadMachineAllocation {
                        machine: i,
                        job: self.slot_id[s],
                    });
                }
                let c = self.slot_costs[s * m + i];
                if !c.is_finite() {
                    return Err(SimError::ForbiddenAssignment {
                        machine: i,
                        job: self.slot_id[s],
                    });
                }
                total += share;
                if c <= EPS {
                    self.rate[s] = f64::INFINITY; // zero-cost job finishes instantly
                } else {
                    self.rate[s] += share / c;
                }
            }
            if total > 1.0 + 1e-6 {
                return Err(SimError::MachineOversubscribed { machine: i, total });
            }
            self.machine_share[i] = total;
        }

        // Horizon: next arrival, next platform event, earliest
        // completion.
        let t_arrival = self.pending.peek().map(|p| p.release);
        let t_platform = self.platform.peek().map(|p| p.time);
        let mut t_complete: Option<f64> = None;
        for &slot in &self.order {
            let s = slot as usize;
            if self.rate[s] > 0.0 {
                let t = if self.rate[s].is_infinite() {
                    self.now
                } else {
                    self.now + self.slot_remaining[s] / self.rate[s]
                };
                t_complete = Some(t_complete.map_or(t, |cur: f64| cur.min(t)));
            }
        }

        // Stalled only when *no* future event of any kind exists: an
        // all-machines-down window with a recovery queued is an idle
        // wait, not a stall.
        let t_next = [t_arrival, t_platform, t_complete]
            .into_iter()
            .flatten()
            .fold(f64::INFINITY, f64::min);
        if !t_next.is_finite() {
            return Err(SimError::Stalled { at: self.now });
        }
        let dt = (t_next - self.now).max(0.0);

        // Integrate progress.
        for i in 0..m {
            self.busy[i] += self.machine_share[i] * dt;
        }
        if self.faulty && dt > 0.0 {
            // Volatile-work accounting: what each live machine
            // contributed over this interval, charged per (job, machine)
            // so a later failure can refund exactly this much. Each
            // (slot, machine) cell is touched at most once per row, so
            // entry order is immaterial — no sort needed.
            for i in 0..m {
                if !self.up[i] {
                    continue;
                }
                for &(jid, share) in alloc.entries(i) {
                    if share <= EPS {
                        continue;
                    }
                    let Some(&slot) = self.id_slot.get(jid) else {
                        continue;
                    };
                    if slot == NONE {
                        continue;
                    }
                    let s = slot as usize;
                    if self.slot_pos[s] == NONE {
                        continue;
                    }
                    let c = self.slot_costs[s * m + i];
                    if c > EPS {
                        self.volatile[s * m + i] += share / c * dt;
                    }
                }
            }
        }
        self.plan_alloc = alloc;
        // Never backwards: a late-pushed arrival (release < now) may set
        // t_next in the past; it is admitted *at* the current time.
        self.now = self.now.max(t_next);
        self.n_events += 1;

        // Progress + completions in one admission-order pass (removal
        // shifts the next survivor into position `k`, so every job is
        // decremented exactly once and survivors keep their order).
        let mut k = 0;
        while k < self.order.len() {
            let slot = self.order[k];
            let s = slot as usize;
            if self.rate[s].is_infinite() {
                self.slot_remaining[s] = 0.0;
            } else {
                self.slot_remaining[s] -= self.rate[s] * dt;
            }
            if self.slot_remaining[s] <= EPS {
                self.order.remove(k);
                for pos in k..self.order.len() {
                    self.slot_pos[self.order[pos] as usize] = pos as u32;
                }
                let id = self.slot_id[s];
                self.slot_pos[s] = NONE;
                self.id_slot[id] = NONE;
                self.free_slots.push(slot);
                policy.on_completion(self.now, id);
                let done = CompletedJob {
                    id,
                    release: self.slot_release[s],
                    weight: self.slot_weight[s],
                    fastest_cost: self.slot_fastest[s],
                    completion: self.now,
                };
                self.metrics.push(&done);
                self.n_completed += 1;
                if self.record_completions {
                    self.completed.push(done);
                }
            } else {
                k += 1;
            }
        }

        // Events at t_next: completions above already happened, then
        // platform changes, then arrivals — a job completing exactly
        // when its machine dies keeps its work.
        self.apply_due_platform(policy);
        self.admit_due(policy);
        Ok(StepOutcome::Advanced)
    }

    /// Steps until the engine is idle (all pushed jobs completed).
    /// Bounded by the same stall guard as the legacy batch loop: a
    /// policy that spins on zero-length events errors out instead of
    /// hanging.
    pub fn drain(&mut self, policy: &mut dyn OnlineScheduler) -> Result<(), SimError> {
        let max_iters =
            100_000 + 200 * self.next_id * (self.n_machines + 2) + 2 * self.n_platform_pushed;
        for _ in 0..max_iters {
            if self.step(policy)? == StepOutcome::Idle {
                return Ok(());
            }
        }
        Err(SimError::Stalled { at: self.now })
    }

    /// Takes the buffered completions (empties the buffer). Streaming
    /// drivers call this every few steps to keep memory `O(|active|)`.
    pub fn take_completed(&mut self) -> Vec<CompletedJob> {
        std::mem::take(&mut self.completed)
    }

    // --- Snapshot plumbing (crate-internal). The `dlflow-snapshot v1`
    // byte format predates the slab layout and is frozen; these helpers
    // expose/rebuild the slab in the format's terms.

    /// Pending arrivals as `(id, release, weight, costs)`, unordered
    /// (heap layout order — serialization sorts what it needs).
    pub(crate) fn pending_entries(&self) -> impl Iterator<Item = (usize, f64, f64, &[f64])> + '_ {
        let m = self.n_machines;
        self.pending.as_slice().iter().map(move |p| {
            let s = p.slot as usize;
            (
                p.id,
                p.release,
                self.slot_weight[s],
                &self.slot_costs[s * m..(s + 1) * m],
            )
        })
    }

    /// Active jobs in admission order as
    /// `(id, remaining, release, weight, costs, volatile row)`.
    #[allow(clippy::type_complexity)]
    pub(crate) fn active_entries(
        &self,
    ) -> impl Iterator<Item = (usize, f64, f64, f64, &[f64], Option<&[f64]>)> + '_ {
        let m = self.n_machines;
        self.order.iter().map(move |&slot| {
            let s = slot as usize;
            (
                self.slot_id[s],
                self.slot_remaining[s],
                self.slot_release[s],
                self.slot_weight[s],
                &self.slot_costs[s * m..(s + 1) * m],
                self.faulty.then(|| &self.volatile[s * m..(s + 1) * m]),
            )
        })
    }

    /// Queued platform events as `(time, seq, event)`, unordered.
    pub(crate) fn platform_entries(
        &self,
    ) -> impl Iterator<Item = (f64, usize, PlatformEvent)> + '_ {
        self.platform
            .as_slice()
            .iter()
            .map(|p| (p.time, p.seq, p.event))
    }

    /// Re-inserts one pending arrival during restore (no validation —
    /// the snapshot loader owns format checking; ids need not be dense).
    pub(crate) fn restore_pending(&mut self, id: usize, release: f64, weight: f64, costs: &[f64]) {
        let slot = self.insert_slot(id, 1.0, release, weight, costs);
        self.pending.push(ArrivalKey { release, id, slot });
    }

    /// Re-inserts one active job during restore, appended to the
    /// admission order. A `Some` volatile row requires the engine to be
    /// in fault mode already.
    pub(crate) fn restore_active(
        &mut self,
        id: usize,
        remaining: f64,
        release: f64,
        weight: f64,
        costs: &[f64],
        volatile_row: Option<&[f64]>,
    ) {
        let slot = self.insert_slot(id, remaining, release, weight, costs);
        let s = slot as usize;
        self.slot_pos[s] = self.order.len() as u32;
        self.order.push(slot);
        if self.order.len() > self.peak_active {
            self.peak_active = self.order.len();
        }
        if self.faulty {
            let m = self.n_machines;
            self.volatile[s * m..(s + 1) * m].fill(0.0);
            if let Some(row) = volatile_row {
                self.volatile[s * m..(s + 1) * m].copy_from_slice(row);
            }
        }
    }

    /// Re-enqueues one platform event during restore with its original
    /// sequence number (the caller restores `n_platform_pushed`).
    pub(crate) fn restore_platform(&mut self, time: f64, seq: usize, event: PlatformEvent) {
        self.platform.push(PlatformKey { time, seq, event });
    }
}

/// One column of a closed instance as a [`JobSpec`].
pub(crate) fn job_spec_of(inst: &Instance<f64>, j: usize) -> JobSpec {
    JobSpec {
        release: inst.job(j).release,
        weight: inst.job(j).weight,
        costs: (0..inst.n_machines())
            .map(|i| inst.cost(i, j).finite().copied().unwrap_or(f64::INFINITY))
            .collect(),
    }
}

/// Runs a policy on a closed instance to completion — a thin wrapper
/// that pushes every job of the instance into an [`Engine`] and drains
/// it. Results (completions, event/plan counts, busy vectors) are
/// identical to the legacy batch loop [`simulate_dense`], a property
/// `tests/prop_engine.rs` enforces.
pub fn simulate(
    inst: &Instance<f64>,
    policy: &mut dyn OnlineScheduler,
) -> Result<SimResult, SimError> {
    simulate_with_events(inst, policy, &[])
}

/// [`simulate`] under a platform-event schedule: the given
/// failure/recovery events are pushed up front, then the instance runs
/// to completion. The chaos-campaign entry point. With an empty event
/// list this *is* `simulate` (the fault machinery stays inert).
pub fn simulate_with_events(
    inst: &Instance<f64>,
    policy: &mut dyn OnlineScheduler,
    events: &[PlatformEvent],
) -> Result<SimResult, SimError> {
    policy.reset();
    let mut eng = Engine::new(inst.n_machines());
    for &e in events {
        eng.push_platform_event(e)?;
    }
    for j in 0..inst.n_jobs() {
        eng.push_arrival(job_spec_of(inst, j))?; // id j by push order
    }
    eng.drain(policy)?;
    let mut completions = vec![f64::NAN; inst.n_jobs()];
    for c in eng.take_completed() {
        completions[c.id] = c.completion;
    }
    Ok(SimResult {
        completions,
        n_events: eng.n_events,
        n_plans: eng.n_plans,
        busy: eng.busy,
    })
}

/// The seed's batch simulation loop, kept verbatim as a parity oracle
/// and throughput baseline: allocations are materialized as **dense**
/// machine × total-job matrices every event, so per-event cost is
/// `O(m · n_total)` and memory `O(m · n_total)` — the scaling the
/// incremental [`Engine`] removes. `tests/prop_engine.rs` proves both
/// produce identical completions, event counts, and busy vectors;
/// `bench_sim` measures the gap.
pub fn simulate_dense(
    inst: &Instance<f64>,
    policy: &mut dyn OnlineScheduler,
) -> Result<SimResult, SimError> {
    policy.reset();
    let n = inst.n_jobs();
    let m = inst.n_machines();

    // Arrival order.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| inst.job(a).release.total_cmp(&inst.job(b).release));

    let mut next_arrival = 0usize;
    let mut now = if n > 0 {
        inst.job(order[0]).release
    } else {
        0.0
    };
    let mut active: Vec<ActiveJob> = Vec::new();
    let mut completions = vec![f64::NAN; n];
    let mut n_events = 0usize;
    let mut n_plans = 0usize;
    let mut busy = vec![0.0f64; m];
    let mut scratch = ScratchSet::default();
    let mut alloc_buf = Allocation::default();

    let admit = |now: f64,
                 next_arrival: &mut usize,
                 active: &mut Vec<ActiveJob>,
                 n_events: &mut usize,
                 policy: &mut dyn OnlineScheduler| {
        while *next_arrival < n && inst.job(order[*next_arrival]).release <= now + EPS {
            let job = ActiveJob::new(
                order[*next_arrival],
                job_spec_of(inst, order[*next_arrival]),
            );
            policy.on_arrival(now, view_of(&job));
            active.push(job);
            *next_arrival += 1;
            *n_events += 1;
        }
    };

    // Admit initial arrivals.
    admit(now, &mut next_arrival, &mut active, &mut n_events, policy);

    let max_iters = 100_000 + 200 * n * (m + 2);
    for _ in 0..max_iters {
        if active.is_empty() && next_arrival >= n {
            return Ok(SimResult {
                completions,
                n_events,
                n_plans,
                busy,
            });
        }
        if active.is_empty() {
            // Jump to the next arrival.
            now = inst.job(order[next_arrival]).release;
            admit(now, &mut next_arrival, &mut active, &mut n_events, policy);
            continue;
        }

        // The legacy dense materialization: every plan becomes an
        // m × n_total rate matrix, zeroed from scratch.
        scratch.fill(&active, m);
        alloc_buf.reset(m);
        policy.plan(now, &scratch.view(m), &mut alloc_buf);
        let sparse = &alloc_buf;
        n_plans += 1;
        let mut rates: Vec<Vec<f64>> = vec![vec![0.0; n]; m];
        for i in 0..m.min(sparse.n_machines()) {
            for &(j, share) in sparse.entries(i) {
                if j < n {
                    rates[i][j] = share;
                }
            }
        }

        // Validate the allocation and compute per-job progress rates.
        let mut rate: Vec<f64> = vec![0.0; active.len()];
        let mut machine_share = vec![0.0f64; m];
        for i in 0..m {
            let mut total = 0.0;
            for (aj, a) in active.iter().enumerate() {
                let share = rates[i][a.id];
                if share <= EPS {
                    continue;
                }
                let Some(&c) = inst.cost(i, a.id).finite() else {
                    return Err(SimError::ForbiddenAssignment {
                        machine: i,
                        job: a.id,
                    });
                };
                total += share;
                if c <= EPS {
                    rate[aj] = f64::INFINITY;
                } else {
                    rate[aj] += share / c;
                }
            }
            if total > 1.0 + 1e-6 {
                return Err(SimError::MachineOversubscribed { machine: i, total });
            }
            machine_share[i] = total;
        }

        // Horizon: next arrival and earliest completion.
        let t_arrival = (next_arrival < n).then(|| inst.job(order[next_arrival]).release);
        let mut t_complete: Option<f64> = None;
        for (aj, a) in active.iter().enumerate() {
            if rate[aj] > 0.0 {
                let t = if rate[aj].is_infinite() {
                    now
                } else {
                    now + a.remaining / rate[aj]
                };
                t_complete = Some(t_complete.map_or(t, |cur: f64| cur.min(t)));
            }
        }

        let t_next = match (t_arrival, t_complete) {
            (None, None) => return Err(SimError::Stalled { at: now }),
            (Some(a), None) => a,
            (None, Some(c)) => c,
            (Some(a), Some(c)) => a.min(c),
        };
        let dt = (t_next - now).max(0.0);

        // Integrate progress.
        for i in 0..m {
            busy[i] += machine_share[i] * dt;
        }
        for (aj, a) in active.iter_mut().enumerate() {
            if rate[aj].is_infinite() {
                a.remaining = 0.0;
            } else {
                a.remaining -= rate[aj] * dt;
            }
        }
        now = t_next;
        n_events += 1;

        // Completions.
        let mut still: Vec<ActiveJob> = Vec::with_capacity(active.len());
        for a in active.drain(..) {
            if a.remaining <= EPS {
                completions[a.id] = now;
                policy.on_completion(now, a.id);
            } else {
                still.push(a);
            }
        }
        active = still;

        // Arrivals at t_next.
        admit(now, &mut next_arrival, &mut active, &mut n_events, policy);
    }
    Err(SimError::Stalled { at: now })
}

/// Metrics of a completed run.
#[derive(Clone, Debug)]
pub struct RunMetrics {
    /// `max_j w_j (C_j − r_j)`.
    pub max_weighted_flow: f64,
    /// `max_j (C_j − r_j)`.
    pub max_flow: f64,
    /// `max_j (C_j − r_j) / min_i c_{i,j}` — max stretch.
    pub max_stretch: f64,
    /// `Σ_j (C_j − r_j) / min_i c_{i,j}` — sum stretch.
    pub sum_stretch: f64,
    /// Mean flow.
    pub mean_flow: f64,
    /// Total flow `Σ_j (C_j − r_j)`.
    pub sum_flow: f64,
    /// Latest completion.
    pub makespan: f64,
}

impl RunMetrics {
    /// Computes metrics from completions. Degenerate inputs are guarded:
    /// an empty completion list yields all-zero metrics (no NaN), and
    /// zero-size jobs are excluded from the stretch terms.
    pub fn from_completions(inst: &Instance<f64>, completions: &[f64]) -> RunMetrics {
        let mut acc = MetricsAccumulator::new();
        for (j, &c) in completions.iter().enumerate() {
            assert!(c.is_finite(), "job {j} never completed");
            acc.push(&CompletedJob {
                id: j,
                release: inst.job(j).release,
                weight: inst.job(j).weight,
                fastest_cost: inst.fastest_cost(j),
                completion: c,
            });
        }
        acc.metrics()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlflow_core::instance::InstanceBuilder;

    /// Trivial policy: every machine gives its full rate to the lowest-id
    /// active job it can run.
    struct GreedyFirst;
    impl OnlineScheduler for GreedyFirst {
        fn name(&self) -> String {
            "greedy-first".into()
        }
        fn plan(&mut self, _now: f64, active: &ActiveSet<'_>, alloc: &mut Allocation) {
            for i in 0..alloc.n_machines() {
                if let Some(a) = active.iter().find(|a| a.cost(i).is_some()) {
                    alloc.set(i, a.id, 1.0);
                }
            }
        }
    }

    fn inst2() -> Instance<f64> {
        let mut b = InstanceBuilder::new();
        b.job(0.0, 1.0);
        b.job(1.0, 1.0);
        b.machine(vec![Some(2.0), Some(2.0)]);
        b.machine(vec![Some(4.0), Some(4.0)]);
        b.build().unwrap()
    }

    #[test]
    fn greedy_completes_all_jobs() {
        let inst = inst2();
        let res = simulate(&inst, &mut GreedyFirst).unwrap();
        assert!(res.completions.iter().all(|c| c.is_finite()));
        // J0 gets both machines (divisible): rate 1/2 + 1/4 = 3/4 → done at 4/3.
        assert!((res.completions[0] - 4.0 / 3.0).abs() < 1e-6);
        let m = RunMetrics::from_completions(&inst, &res.completions);
        assert!(m.makespan >= m.max_flow);
    }

    #[test]
    fn oversubscription_detected() {
        struct Bad;
        impl OnlineScheduler for Bad {
            fn name(&self) -> String {
                "bad".into()
            }
            fn plan(&mut self, _: f64, active: &ActiveSet<'_>, alloc: &mut Allocation) {
                for x in active.iter() {
                    alloc.set(0, x.id, 1.0); // sums to 2 when both active
                }
            }
        }
        let inst = inst2();
        let err = simulate(&inst, &mut Bad).unwrap_err();
        assert!(matches!(
            err,
            SimError::MachineOversubscribed { machine: 0, .. }
        ));
    }

    #[test]
    fn forbidden_assignment_detected() {
        struct Bad;
        impl OnlineScheduler for Bad {
            fn name(&self) -> String {
                "bad".into()
            }
            fn plan(&mut self, _: f64, active: &ActiveSet<'_>, alloc: &mut Allocation) {
                alloc.set(1, active.get(0).id, 1.0);
            }
        }
        let mut b = InstanceBuilder::new();
        b.job(0.0, 1.0);
        b.machine(vec![Some(1.0)]);
        b.machine(vec![None]);
        let inst = b.build().unwrap();
        let err = simulate(&inst, &mut Bad).unwrap_err();
        assert_eq!(err, SimError::ForbiddenAssignment { machine: 1, job: 0 });
    }

    #[test]
    fn idle_policy_stalls() {
        struct Idle;
        impl OnlineScheduler for Idle {
            fn name(&self) -> String {
                "idle".into()
            }
            fn plan(&mut self, _: f64, _: &ActiveSet<'_>, _: &mut Allocation) {}
        }
        let inst = inst2();
        assert!(matches!(
            simulate(&inst, &mut Idle).unwrap_err(),
            SimError::Stalled { .. }
        ));
    }

    #[test]
    fn late_release_gap_is_skipped() {
        let mut b = InstanceBuilder::new();
        b.job(0.0, 1.0);
        b.job(100.0, 1.0);
        b.machine(vec![Some(1.0), Some(1.0)]);
        let inst = b.build().unwrap();
        let res = simulate(&inst, &mut GreedyFirst).unwrap();
        assert!((res.completions[0] - 1.0).abs() < 1e-9);
        assert!((res.completions[1] - 101.0).abs() < 1e-9);
    }

    #[test]
    fn metrics_computation() {
        let inst = inst2();
        let m = RunMetrics::from_completions(&inst, &[2.0, 5.0]);
        assert_eq!(m.max_flow, 4.0);
        assert_eq!(m.max_weighted_flow, 4.0);
        assert_eq!(m.mean_flow, 3.0);
        assert_eq!(m.sum_flow, 6.0);
        assert_eq!(m.makespan, 5.0);
        assert_eq!(m.max_stretch, 2.0); // (5−1)/2
        assert_eq!(m.sum_stretch, 3.0); // 2/2 + 4/2
    }

    #[test]
    fn busy_time_and_utilization_tracked() {
        let mut b = InstanceBuilder::new();
        b.job(0.0, 1.0);
        b.machine(vec![Some(2.0)]);
        let inst = b.build().unwrap();
        let res = simulate(&inst, &mut GreedyFirst).unwrap();
        // The only machine is fully busy from 0 to 2.
        assert!((res.busy[0] - 2.0).abs() < 1e-9);
        assert!((res.utilization(&inst) - 1.0).abs() < 1e-9);

        // Two machines, one job that only the first can run: the second
        // idles, so fleet utilization is at most 1/2.
        let mut b = InstanceBuilder::new();
        b.job(0.0, 1.0);
        b.machine(vec![Some(2.0)]);
        b.machine(vec![None]);
        let inst = b.build().unwrap();
        let res = simulate(&inst, &mut GreedyFirst).unwrap();
        assert!((res.busy[0] - 2.0).abs() < 1e-9);
        assert_eq!(res.busy[1], 0.0);
        assert!((res.utilization(&inst) - 0.5).abs() < 1e-9);
    }

    // --- Streaming-engine behavior. ---

    #[test]
    fn engine_is_resumable_between_arrival_pushes() {
        let mut eng = Engine::new(1);
        let mut p = GreedyFirst;
        eng.push_arrival(JobSpec {
            release: 0.0,
            weight: 1.0,
            costs: vec![2.0],
        })
        .unwrap();
        eng.drain(&mut p).unwrap();
        assert_eq!(eng.n_completed(), 1);
        assert_eq!(eng.step(&mut p).unwrap(), StepOutcome::Idle);

        // Resume: a second wave of arrivals after the engine went idle.
        eng.push_arrival(JobSpec {
            release: 10.0,
            weight: 1.0,
            costs: vec![4.0],
        })
        .unwrap();
        eng.drain(&mut p).unwrap();
        assert_eq!(eng.n_completed(), 2);
        let done = eng.take_completed();
        assert_eq!(done.len(), 2);
        assert!((done[1].completion - 14.0).abs() < 1e-9);
        assert!((eng.metrics().makespan - 14.0).abs() < 1e-9);
    }

    #[test]
    fn late_pushed_arrival_never_rewinds_the_clock() {
        // push_arrival documents that a release earlier than the current
        // simulation time is admitted at the next event. The clock must
        // not move backwards for it (regression: `now = t_next` once
        // rewound time, finishing in-flight jobs earlier than possible).
        let mut eng = Engine::new(1);
        let mut p = GreedyFirst;
        eng.push_arrival(JobSpec {
            release: 0.0,
            weight: 1.0,
            costs: vec![4.0],
        })
        .unwrap();
        // Admit at t=0, integrate one step partway through the job.
        assert_eq!(eng.step(&mut p).unwrap(), StepOutcome::Advanced);
        eng.push_arrival(JobSpec {
            release: 6.0,
            weight: 1.0,
            costs: vec![1.0],
        })
        .unwrap();
        assert_eq!(eng.step(&mut p).unwrap(), StepOutcome::Advanced); // J0 done at 4
        assert!((eng.now() - 4.0).abs() < 1e-9);
        // Now push an arrival stamped in the past.
        eng.push_arrival(JobSpec {
            release: 1.0,
            weight: 1.0,
            costs: vec![2.0],
        })
        .unwrap();
        eng.drain(&mut p).unwrap();
        let done = eng.take_completed();
        assert_eq!(done.len(), 3);
        // The late job is admitted at t=4, not at its stamped release:
        // completions stay physically consistent (monotone clock).
        let late = done.iter().find(|c| c.release == 1.0).unwrap();
        assert!((late.completion - 6.0).abs() < 1e-9, "{}", late.completion);
        // Completions stream out in a monotone clock order.
        for w in done.windows(2) {
            assert!(w[1].completion >= w[0].completion);
        }
        assert!((eng.metrics().makespan - 7.0).abs() < 1e-9);
    }

    #[test]
    fn arrivals_may_be_pushed_out_of_order() {
        let mut eng = Engine::new(1);
        let mut p = GreedyFirst;
        let late = eng
            .push_arrival(JobSpec {
                release: 5.0,
                weight: 1.0,
                costs: vec![1.0],
            })
            .unwrap();
        let early = eng
            .push_arrival(JobSpec {
                release: 0.0,
                weight: 1.0,
                costs: vec![1.0],
            })
            .unwrap();
        eng.drain(&mut p).unwrap();
        let done = eng.take_completed();
        assert_eq!(done[0].id, early);
        assert_eq!(done[1].id, late);
        assert!((done[0].completion - 1.0).abs() < 1e-9);
        assert!((done[1].completion - 6.0).abs() < 1e-9);
    }

    // --- Degenerate-input hardening (the seams the streaming API opens). ---

    #[test]
    fn zero_weight_job_is_tolerated() {
        // Instances forbid zero weights, but the open-arrival path has no
        // such gate: the engine and metrics must stay finite.
        let mut eng = Engine::new(1);
        let mut p = GreedyFirst;
        eng.push_arrival(JobSpec {
            release: 0.0,
            weight: 0.0,
            costs: vec![2.0],
        })
        .unwrap();
        eng.drain(&mut p).unwrap();
        let m = eng.metrics();
        assert_eq!(m.max_weighted_flow, 0.0);
        assert!((m.max_flow - 2.0).abs() < 1e-9);
        assert!(m.max_stretch.is_finite() && m.sum_stretch.is_finite());
    }

    #[test]
    fn all_equal_releases_admit_in_push_order() {
        // Simultaneous arrivals must be admitted deterministically (push
        // order), not heap-pop order.
        let mut eng = Engine::new(1);
        let mut p = GreedyFirst;
        for _ in 0..5 {
            eng.push_arrival(JobSpec {
                release: 1.0,
                weight: 1.0,
                costs: vec![1.0],
            })
            .unwrap();
        }
        assert_eq!(eng.step(&mut p).unwrap(), StepOutcome::Advanced);
        let ids: Vec<usize> = eng.active().iter().map(|a| a.id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
        eng.drain(&mut p).unwrap();
        // GreedyFirst serves lowest id first: completions in id order.
        let done = eng.take_completed();
        let order: Vec<usize> = done.iter().map(|c| c.id).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn empty_run_metrics_are_all_zero_not_nan() {
        // Zero completions: every division in the accumulator is guarded.
        let acc = MetricsAccumulator::new();
        let m = acc.metrics();
        assert_eq!(m.mean_flow, 0.0);
        assert_eq!(m.max_stretch, 0.0);
        assert_eq!(m.sum_flow, 0.0);
        assert_eq!(m.makespan, 0.0);
        let eng = Engine::new(2);
        assert_eq!(eng.utilization(), 0.0);
        assert_eq!(eng.metrics().mean_flow, 0.0);
    }

    #[test]
    fn zero_size_job_completes_instantly_and_skips_stretch() {
        let mut eng = Engine::new(1);
        let mut p = GreedyFirst;
        eng.push_arrival(JobSpec {
            release: 0.0,
            weight: 1.0,
            costs: vec![0.0],
        })
        .unwrap();
        eng.push_arrival(JobSpec {
            release: 0.0,
            weight: 1.0,
            costs: vec![2.0],
        })
        .unwrap();
        eng.drain(&mut p).unwrap();
        let m = eng.metrics();
        // The zero-size job contributes no stretch term (division guard).
        assert!((m.max_stretch - 1.0).abs() < 1e-9);
        assert!(m.sum_stretch.is_finite());
        assert_eq!(eng.n_completed(), 2);
    }

    #[test]
    fn malformed_job_specs_are_rejected_with_typed_errors() {
        let reject = |job: JobSpec| match Engine::new(2).push_arrival(job) {
            Err(SimError::InvalidJob { reason }) => reason,
            other => panic!("expected InvalidJob, got {other:?}"),
        };
        assert!(reject(JobSpec {
            release: 0.0,
            weight: 1.0,
            costs: vec![1.0], // wrong arity
        })
        .contains("machine count"));
        assert!(reject(JobSpec {
            release: 0.0,
            weight: 1.0,
            costs: vec![f64::INFINITY, f64::INFINITY], // nowhere to run
        })
        .contains("no machine"));
        assert!(reject(JobSpec {
            release: -1.0,
            weight: 1.0,
            costs: vec![1.0, 1.0],
        })
        .contains("release"));
        assert!(reject(JobSpec {
            release: 0.0,
            weight: f64::NAN,
            costs: vec![1.0, 1.0],
        })
        .contains("weight"));
        assert!(reject(JobSpec {
            release: 0.0,
            weight: 1.0,
            costs: vec![-1.0, 1.0], // negative cost
        })
        .contains("cost"));

        // A rejected push consumes no id and leaves the engine usable.
        let mut eng = Engine::new(1);
        assert!(eng
            .push_arrival(JobSpec {
                release: f64::NAN,
                weight: 1.0,
                costs: vec![1.0],
            })
            .is_err());
        assert_eq!(eng.n_pushed(), 0);
        let id = eng
            .push_arrival(JobSpec {
                release: 0.0,
                weight: 1.0,
                costs: vec![2.0],
            })
            .unwrap();
        assert_eq!(id, 0);
        eng.drain(&mut GreedyFirst).unwrap();
        assert_eq!(eng.n_completed(), 1);
    }

    #[test]
    fn record_completions_off_keeps_buffer_empty_but_metrics_live() {
        let mut eng = Engine::new(1);
        eng.record_completions = false;
        let mut p = GreedyFirst;
        for k in 0..10 {
            eng.push_arrival(JobSpec {
                release: k as f64,
                weight: 1.0,
                costs: vec![0.5],
            })
            .unwrap();
        }
        eng.drain(&mut p).unwrap();
        assert!(eng.take_completed().is_empty());
        assert_eq!(eng.n_completed(), 10);
        assert!((eng.metrics().makespan - 9.5).abs() < 1e-9);
        assert!(eng.utilization() > 0.0);
    }

    // --- Platform dynamics (failure/recovery). ---

    #[test]
    fn work_on_a_dying_machine_is_lost() {
        use crate::schedulers::Srpt;
        let mut eng = Engine::new(1);
        let mut p = Srpt::new();
        eng.push_arrival(JobSpec {
            release: 0.0,
            weight: 1.0,
            costs: vec![2.0],
        })
        .unwrap();
        eng.push_platform_event(PlatformEvent {
            time: 1.0,
            machine: 0,
            change: PlatformChange::Down,
        })
        .unwrap();
        eng.push_platform_event(PlatformEvent {
            time: 2.0,
            machine: 0,
            change: PlatformChange::Up,
        })
        .unwrap();
        eng.drain(&mut p).unwrap();
        let done = eng.take_completed();
        // Half the job ran in [0,1] and was lost with the failure; the
        // full job reruns from the recovery at t=2: done at exactly 4.
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].completion, 4.0);
    }

    #[test]
    fn completion_at_the_failure_instant_keeps_its_work() {
        use crate::schedulers::Srpt;
        let mut eng = Engine::new(1);
        let mut p = Srpt::new();
        eng.push_arrival(JobSpec {
            release: 0.0,
            weight: 1.0,
            costs: vec![1.0],
        })
        .unwrap();
        // The machine dies exactly when the job completes: completions
        // apply before platform events, so the job keeps its work.
        eng.push_platform_event(PlatformEvent {
            time: 1.0,
            machine: 0,
            change: PlatformChange::Down,
        })
        .unwrap();
        eng.push_platform_event(PlatformEvent {
            time: 1.5,
            machine: 0,
            change: PlatformChange::Up,
        })
        .unwrap();
        eng.drain(&mut p).unwrap();
        let done = eng.take_completed();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].completion, 1.0);
    }

    #[test]
    fn engine_idles_through_platform_events_without_jobs() {
        use crate::schedulers::Srpt;
        let mut eng = Engine::new(2);
        let mut p = Srpt::new();
        eng.push_platform_event(PlatformEvent {
            time: 1.0,
            machine: 0,
            change: PlatformChange::Down,
        })
        .unwrap();
        eng.push_platform_event(PlatformEvent {
            time: 3.0,
            machine: 0,
            change: PlatformChange::Up,
        })
        .unwrap();
        // No arrivals at all: the engine walks the platform schedule and
        // then reports Idle instead of stalling.
        eng.drain(&mut p).unwrap();
        assert_eq!(eng.step(&mut p).unwrap(), StepOutcome::Idle);
        assert!(eng.machine_up(0) && eng.machine_up(1));
        assert_eq!(eng.platform_pending_len(), 0);
        assert!((eng.now() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn stall_still_detected_when_no_recovery_is_coming() {
        use crate::schedulers::Srpt;
        let mut eng = Engine::new(1);
        let mut p = Srpt::new();
        eng.push_arrival(JobSpec {
            release: 0.0,
            weight: 1.0,
            costs: vec![2.0],
        })
        .unwrap();
        // Down forever: no future arrival or recovery exists, so the
        // engine must surface Stalled rather than spin.
        eng.push_platform_event(PlatformEvent {
            time: 0.5,
            machine: 0,
            change: PlatformChange::Down,
        })
        .unwrap();
        assert!(matches!(
            eng.drain(&mut p).unwrap_err(),
            SimError::Stalled { .. }
        ));
    }

    #[test]
    fn allocation_on_a_dead_machine_is_rejected() {
        // A policy that ignores the platform mask gets a typed error.
        struct DeafToFaults;
        impl OnlineScheduler for DeafToFaults {
            fn name(&self) -> String {
                "deaf".into()
            }
            fn plan(&mut self, _: f64, active: &ActiveSet<'_>, alloc: &mut Allocation) {
                if !active.is_empty() {
                    alloc.set(0, active.get(0).id, 1.0);
                }
            }
        }
        let mut eng = Engine::new(2);
        let mut p = DeafToFaults;
        eng.push_arrival(JobSpec {
            release: 0.0,
            weight: 1.0,
            costs: vec![4.0, 4.0],
        })
        .unwrap();
        eng.push_platform_event(PlatformEvent {
            time: 1.0,
            machine: 0,
            change: PlatformChange::Down,
        })
        .unwrap();
        assert_eq!(
            eng.drain(&mut p).unwrap_err(),
            SimError::DeadMachineAllocation { machine: 0, job: 0 }
        );
    }

    #[test]
    fn malformed_platform_events_are_rejected_with_typed_errors() {
        let mut eng = Engine::new(2);
        let reject = |eng: &mut Engine, ev: PlatformEvent| match eng.push_platform_event(ev) {
            Err(SimError::InvalidPlatformEvent { reason }) => reason,
            other => panic!("expected InvalidPlatformEvent, got {other:?}"),
        };
        assert!(reject(
            &mut eng,
            PlatformEvent {
                time: 1.0,
                machine: 5,
                change: PlatformChange::Down,
            }
        )
        .contains("out of range"));
        assert!(reject(
            &mut eng,
            PlatformEvent {
                time: f64::NAN,
                machine: 0,
                change: PlatformChange::Down,
            }
        )
        .contains("finite"));
        assert!(reject(
            &mut eng,
            PlatformEvent {
                time: -1.0,
                machine: 0,
                change: PlatformChange::Up,
            }
        )
        .contains("non-negative"));
        // Rejected events leave the engine fault-free.
        assert_eq!(eng.platform_pending_len(), 0);
    }

    #[test]
    fn platform_mask_push_expands_to_events() {
        use crate::schedulers::Srpt;
        let mut eng = Engine::new(2);
        let mut p = Srpt::new();
        assert!(matches!(
            eng.push_platform_mask(0.0, &[true]),
            Err(SimError::InvalidPlatformEvent { .. })
        ));
        eng.push_platform_mask(0.0, &[false, true]).unwrap();
        eng.push_arrival(JobSpec {
            release: 0.0,
            weight: 1.0,
            costs: vec![1.0, 1.0],
        })
        .unwrap();
        eng.push_platform_mask(2.0, &[true, true]).unwrap();
        eng.drain(&mut p).unwrap();
        // Machine 0 was down from the start: the job ran on machine 1.
        let done = eng.take_completed();
        assert_eq!(done[0].completion, 1.0);
        assert_eq!(eng.busy()[0], 0.0);
        assert!(eng.machine_up(0), "mask at t=2 recovered machine 0");
        assert_eq!(eng.up_mask(), &[true, true]);
    }

    #[test]
    fn redundant_platform_events_are_idempotent() {
        use crate::schedulers::Srpt;
        let mut eng = Engine::new(1);
        let mut p = Srpt::new();
        eng.push_arrival(JobSpec {
            release: 0.0,
            weight: 1.0,
            costs: vec![2.0],
        })
        .unwrap();
        for (t, change) in [
            (1.0, PlatformChange::Down),
            (1.2, PlatformChange::Down), // duplicate down: no extra loss
            (2.0, PlatformChange::Up),
            (2.5, PlatformChange::Up), // duplicate up: no-op
        ] {
            eng.push_platform_event(PlatformEvent {
                time: t,
                machine: 0,
                change,
            })
            .unwrap();
        }
        eng.drain(&mut p).unwrap();
        let done = eng.take_completed();
        // Same outcome as the single down/up pair at 1 and 2.
        assert_eq!(done[0].completion, 4.0);
    }

    #[test]
    fn sparse_allocation_accessors() {
        let mut a = Allocation::idle(2);
        a.set(0, 7, 0.5);
        a.add(0, 3, 0.25);
        a.add(0, 7, 0.25);
        assert_eq!(a.share(0, 7), 0.75);
        assert_eq!(a.share(0, 3), 0.25);
        assert_eq!(a.share(0, 99), 0.0);
        assert_eq!(a.share(5, 0), 0.0); // out-of-range machine tolerated
        assert_eq!(a.entries(0), &[(3, 0.25), (7, 0.75)]);
        assert!((a.machine_total(0) - 1.0).abs() < 1e-12);
        a.scale_machine(0, 0.5);
        assert!((a.machine_total(0) - 0.5).abs() < 1e-12);
        assert_eq!(a.n_machines(), 2);
    }

    // --- Flattened-layout specifics (new in the slab engine). ---

    #[test]
    fn allocation_reset_clears_rows_and_resizes() {
        let mut a = Allocation::idle(1);
        a.set(0, 3, 0.5);
        a.reset(3);
        assert_eq!(a.n_machines(), 3);
        for i in 0..3 {
            assert!(a.entries(i).is_empty());
        }
        a.set(2, 1, 1.0);
        a.reset(2);
        assert_eq!(a.n_machines(), 2);
        assert!(a.entries(0).is_empty() && a.entries(1).is_empty());
    }

    #[test]
    fn slots_are_recycled_without_confusing_ids() {
        // Sequential jobs reuse the same slab slot; ids, costs, and
        // completions must stay per-job correct across the reuse.
        let mut eng = Engine::new(2);
        let mut p = GreedyFirst;
        for k in 0..6 {
            eng.push_arrival(JobSpec {
                release: 10.0 * k as f64,
                weight: 1.0,
                costs: vec![1.0 + k as f64, f64::INFINITY],
            })
            .unwrap();
        }
        eng.drain(&mut p).unwrap();
        let done = eng.take_completed();
        assert_eq!(done.len(), 6);
        for (k, c) in done.iter().enumerate() {
            assert_eq!(c.id, k);
            assert!((c.release - 10.0 * k as f64).abs() < 1e-12);
            assert!((c.fastest_cost - (1.0 + k as f64)).abs() < 1e-12);
            assert!((c.completion - (10.0 * k as f64 + 1.0 + k as f64)).abs() < 1e-9);
        }
        // One in-flight job at a time → one slab slot ever allocated.
        assert_eq!(eng.peak_active(), 1);
    }

    #[test]
    fn push_arrival_ref_matches_push_arrival() {
        let mut a = Engine::new(2);
        let mut b = Engine::new(2);
        let mut pa = GreedyFirst;
        let mut pb = GreedyFirst;
        let costs = [2.0, 4.0];
        for k in 0..4 {
            let ida = a
                .push_arrival(JobSpec {
                    release: k as f64 * 0.5,
                    weight: 1.0,
                    costs: costs.to_vec(),
                })
                .unwrap();
            let idb = b.push_arrival_ref(k as f64 * 0.5, 1.0, &costs).unwrap();
            assert_eq!(ida, idb);
        }
        a.drain(&mut pa).unwrap();
        b.drain(&mut pb).unwrap();
        let da = a.take_completed();
        let db = b.take_completed();
        assert_eq!(da, db);
        assert_eq!(a.n_events(), b.n_events());
    }

    #[test]
    fn peak_active_tracks_high_water_mark() {
        let mut eng = Engine::new(1);
        let mut p = GreedyFirst;
        for _ in 0..3 {
            eng.push_arrival(JobSpec {
                release: 0.0,
                weight: 1.0,
                costs: vec![1.0],
            })
            .unwrap();
        }
        assert_eq!(eng.peak_active(), 0);
        eng.drain(&mut p).unwrap();
        assert_eq!(eng.peak_active(), 3);
    }
}
