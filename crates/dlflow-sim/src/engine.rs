//! Deterministic fluid discrete-event simulation engine.
//!
//! Jobs arrive at their release dates; between consecutive events the
//! scheduler's allocation (a rate matrix) is integrated exactly; events
//! are arrivals and completions. The engine enforces the model invariants
//! (machine capacity, availability) and replays any online policy
//! reproducibly — this is the testbed for the paper's concluding claim
//! that an online adaptation of the offline algorithm beats MCT.

use dlflow_core::instance::Instance;

/// A released, not-yet-finished job as seen by a scheduler.
#[derive(Clone, Debug)]
pub struct ActiveJob {
    /// Job index in the instance.
    pub id: usize,
    /// Remaining fraction of the job, in `(0, 1]`.
    pub remaining: f64,
}

/// A rate allocation: `rates[i][j]` is the share (0..=1) of machine `i`
/// devoted to job `j`. For each machine, shares must sum to at most 1.
#[derive(Clone, Debug)]
pub struct Allocation {
    /// Machine × job share matrix.
    pub rates: Vec<Vec<f64>>,
}

impl Allocation {
    /// The all-idle allocation.
    pub fn idle(n_machines: usize, n_jobs: usize) -> Self {
        Allocation {
            rates: vec![vec![0.0; n_jobs]; n_machines],
        }
    }
}

/// An online scheduling policy.
pub trait OnlineScheduler {
    /// Display name (used by experiment tables).
    fn name(&self) -> String;

    /// Called at every event (arrival or completion). Returns the rate
    /// matrix to apply until the next event. `active` lists released
    /// unfinished jobs; the policy sees only their ids and remaining
    /// fractions plus whatever it remembers — release dates and costs are
    /// readable from `inst`, sizes of *future* jobs are not known
    /// (the online model of §5).
    fn plan(&mut self, now: f64, active: &[ActiveJob], inst: &Instance<f64>) -> Allocation;

    /// Reset internal state between runs.
    fn reset(&mut self) {}
}

/// Outcome of a simulation run.
#[derive(Clone, Debug)]
pub struct SimResult {
    /// Completion time per job.
    pub completions: Vec<f64>,
    /// Number of events processed.
    pub n_events: usize,
    /// Number of `plan` invocations.
    pub n_plans: usize,
    /// Machine-seconds of occupied capacity per machine: the integral of
    /// the shares each machine devoted to then-active jobs. Feeds the
    /// utilization column of campaign reports.
    pub busy: Vec<f64>,
}

impl SimResult {
    /// Fleet utilization over the span `[first release, makespan]`:
    /// total busy machine-seconds divided by total offered capacity.
    /// Returns 0 for degenerate (zero-length) spans.
    pub fn utilization(&self, inst: &Instance<f64>) -> f64 {
        let first = (0..inst.n_jobs())
            .map(|j| inst.job(j).release)
            .fold(f64::INFINITY, f64::min);
        let makespan = self.completions.iter().cloned().fold(0.0f64, f64::max);
        let span = makespan - first;
        if !span.is_finite() || span <= 0.0 {
            return 0.0;
        }
        let total: f64 = self.busy.iter().sum();
        total / (span * self.busy.len().max(1) as f64)
    }
}

const EPS: f64 = 1e-9;

/// Errors the engine can surface (all indicate a faulty scheduler).
#[derive(Clone, Debug, PartialEq)]
pub enum SimError {
    /// A machine's shares summed to more than 1.
    MachineOversubscribed {
        /// Machine index.
        machine: usize,
        /// Offending total share.
        total: f64,
    },
    /// A rate was assigned to a job on a machine lacking its databank.
    ForbiddenAssignment {
        /// Machine index.
        machine: usize,
        /// Job index.
        job: usize,
    },
    /// Active jobs exist, no work is scheduled, and no arrival is pending.
    Stalled {
        /// Simulation time at the stall.
        at: f64,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::MachineOversubscribed { machine, total } => {
                write!(f, "machine {machine} oversubscribed: Σ shares = {total}")
            }
            SimError::ForbiddenAssignment { machine, job } => {
                write!(
                    f,
                    "job {job} assigned to machine {machine} without its databank"
                )
            }
            SimError::Stalled { at } => write!(f, "simulation stalled at t = {at}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Runs a policy on an instance to completion.
pub fn simulate(
    inst: &Instance<f64>,
    policy: &mut dyn OnlineScheduler,
) -> Result<SimResult, SimError> {
    policy.reset();
    let n = inst.n_jobs();
    let m = inst.n_machines();

    // Arrival order.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        inst.job(a)
            .release
            .partial_cmp(&inst.job(b).release)
            .unwrap()
    });

    let mut next_arrival = 0usize;
    let mut now = if n > 0 {
        inst.job(order[0]).release
    } else {
        0.0
    };
    let mut active: Vec<ActiveJob> = Vec::new();
    let mut completions = vec![f64::NAN; n];
    let mut n_events = 0usize;
    let mut n_plans = 0usize;
    let mut busy = vec![0.0f64; m];

    // Admit initial arrivals.
    while next_arrival < n && inst.job(order[next_arrival]).release <= now + EPS {
        active.push(ActiveJob {
            id: order[next_arrival],
            remaining: 1.0,
        });
        next_arrival += 1;
        n_events += 1;
    }

    let max_iters = 100_000 + 200 * n * (m + 2);
    for _ in 0..max_iters {
        if active.is_empty() && next_arrival >= n {
            return Ok(SimResult {
                completions,
                n_events,
                n_plans,
                busy,
            });
        }
        if active.is_empty() {
            // Jump to the next arrival.
            now = inst.job(order[next_arrival]).release;
            while next_arrival < n && inst.job(order[next_arrival]).release <= now + EPS {
                active.push(ActiveJob {
                    id: order[next_arrival],
                    remaining: 1.0,
                });
                next_arrival += 1;
                n_events += 1;
            }
            continue;
        }

        let alloc = policy.plan(now, &active, inst);
        n_plans += 1;

        // Validate the allocation and compute per-job progress rates.
        let mut rate: Vec<f64> = vec![0.0; active.len()];
        let mut machine_share = vec![0.0f64; m];
        for i in 0..m {
            let mut total = 0.0;
            for (aj, a) in active.iter().enumerate() {
                let share = alloc
                    .rates
                    .get(i)
                    .and_then(|r| r.get(a.id))
                    .copied()
                    .unwrap_or(0.0);
                if share <= EPS {
                    continue;
                }
                let Some(&c) = inst.cost(i, a.id).finite() else {
                    return Err(SimError::ForbiddenAssignment {
                        machine: i,
                        job: a.id,
                    });
                };
                total += share;
                if c <= EPS {
                    rate[aj] = f64::INFINITY; // zero-cost job finishes instantly
                } else {
                    rate[aj] += share / c;
                }
            }
            if total > 1.0 + 1e-6 {
                return Err(SimError::MachineOversubscribed { machine: i, total });
            }
            machine_share[i] = total;
        }

        // Horizon: next arrival and earliest completion.
        let t_arrival = (next_arrival < n).then(|| inst.job(order[next_arrival]).release);
        let mut t_complete: Option<f64> = None;
        for (aj, a) in active.iter().enumerate() {
            if rate[aj] > 0.0 {
                let t = if rate[aj].is_infinite() {
                    now
                } else {
                    now + a.remaining / rate[aj]
                };
                t_complete = Some(t_complete.map_or(t, |cur: f64| cur.min(t)));
            }
        }

        let t_next = match (t_arrival, t_complete) {
            (None, None) => return Err(SimError::Stalled { at: now }),
            (Some(a), None) => a,
            (None, Some(c)) => c,
            (Some(a), Some(c)) => a.min(c),
        };
        let dt = (t_next - now).max(0.0);

        // Integrate progress.
        for i in 0..m {
            busy[i] += machine_share[i] * dt;
        }
        for (aj, a) in active.iter_mut().enumerate() {
            if rate[aj].is_infinite() {
                a.remaining = 0.0;
            } else {
                a.remaining -= rate[aj] * dt;
            }
        }
        now = t_next;
        n_events += 1;

        // Completions.
        let mut still: Vec<ActiveJob> = Vec::with_capacity(active.len());
        for a in active.drain(..) {
            if a.remaining <= EPS {
                completions[a.id] = now;
            } else {
                still.push(a);
            }
        }
        active = still;

        // Arrivals at t_next.
        while next_arrival < n && inst.job(order[next_arrival]).release <= now + EPS {
            active.push(ActiveJob {
                id: order[next_arrival],
                remaining: 1.0,
            });
            next_arrival += 1;
            n_events += 1;
        }
    }
    Err(SimError::Stalled { at: now })
}

/// Metrics of a completed run.
#[derive(Clone, Debug)]
pub struct RunMetrics {
    /// `max_j w_j (C_j − r_j)`.
    pub max_weighted_flow: f64,
    /// `max_j (C_j − r_j)`.
    pub max_flow: f64,
    /// `max_j (C_j − r_j) / min_i c_{i,j}` — max stretch.
    pub max_stretch: f64,
    /// `Σ_j (C_j − r_j) / min_i c_{i,j}` — sum stretch.
    pub sum_stretch: f64,
    /// Mean flow.
    pub mean_flow: f64,
    /// Total flow `Σ_j (C_j − r_j)`.
    pub sum_flow: f64,
    /// Latest completion.
    pub makespan: f64,
}

impl RunMetrics {
    /// Computes metrics from completions.
    pub fn from_completions(inst: &Instance<f64>, completions: &[f64]) -> RunMetrics {
        let mut max_wf = 0.0f64;
        let mut max_f = 0.0f64;
        let mut max_s = 0.0f64;
        let mut sum_s = 0.0f64;
        let mut sum_f = 0.0f64;
        let mut mk = 0.0f64;
        for (j, &c) in completions.iter().enumerate() {
            assert!(c.is_finite(), "job {j} never completed");
            let flow = c - inst.job(j).release;
            max_wf = max_wf.max(inst.job(j).weight * flow);
            max_f = max_f.max(flow);
            let fast = inst.fastest_cost(j);
            if fast > 0.0 {
                max_s = max_s.max(flow / fast);
                sum_s += flow / fast;
            }
            sum_f += flow;
            mk = mk.max(c);
        }
        RunMetrics {
            max_weighted_flow: max_wf,
            max_flow: max_f,
            max_stretch: max_s,
            sum_stretch: sum_s,
            mean_flow: sum_f / completions.len().max(1) as f64,
            sum_flow: sum_f,
            makespan: mk,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlflow_core::instance::InstanceBuilder;

    /// Trivial policy: every machine gives its full rate to the lowest-id
    /// active job it can run.
    struct GreedyFirst;
    impl OnlineScheduler for GreedyFirst {
        fn name(&self) -> String {
            "greedy-first".into()
        }
        fn plan(&mut self, _now: f64, active: &[ActiveJob], inst: &Instance<f64>) -> Allocation {
            let mut alloc = Allocation::idle(inst.n_machines(), inst.n_jobs());
            for i in 0..inst.n_machines() {
                if let Some(a) = active.iter().find(|a| inst.cost(i, a.id).is_finite()) {
                    alloc.rates[i][a.id] = 1.0;
                }
            }
            alloc
        }
    }

    fn inst2() -> Instance<f64> {
        let mut b = InstanceBuilder::new();
        b.job(0.0, 1.0);
        b.job(1.0, 1.0);
        b.machine(vec![Some(2.0), Some(2.0)]);
        b.machine(vec![Some(4.0), Some(4.0)]);
        b.build().unwrap()
    }

    #[test]
    fn greedy_completes_all_jobs() {
        let inst = inst2();
        let res = simulate(&inst, &mut GreedyFirst).unwrap();
        assert!(res.completions.iter().all(|c| c.is_finite()));
        // J0 gets both machines (divisible): rate 1/2 + 1/4 = 3/4 → done at 4/3.
        assert!((res.completions[0] - 4.0 / 3.0).abs() < 1e-6);
        let m = RunMetrics::from_completions(&inst, &res.completions);
        assert!(m.makespan >= m.max_flow);
    }

    #[test]
    fn oversubscription_detected() {
        struct Bad;
        impl OnlineScheduler for Bad {
            fn name(&self) -> String {
                "bad".into()
            }
            fn plan(&mut self, _: f64, active: &[ActiveJob], inst: &Instance<f64>) -> Allocation {
                let mut a = Allocation::idle(inst.n_machines(), inst.n_jobs());
                for x in active {
                    a.rates[0][x.id] = 1.0; // sums to 2 when both active
                }
                a
            }
        }
        let inst = inst2();
        let err = simulate(&inst, &mut Bad).unwrap_err();
        assert!(matches!(
            err,
            SimError::MachineOversubscribed { machine: 0, .. }
        ));
    }

    #[test]
    fn forbidden_assignment_detected() {
        struct Bad;
        impl OnlineScheduler for Bad {
            fn name(&self) -> String {
                "bad".into()
            }
            fn plan(&mut self, _: f64, active: &[ActiveJob], inst: &Instance<f64>) -> Allocation {
                let mut a = Allocation::idle(inst.n_machines(), inst.n_jobs());
                a.rates[1][active[0].id] = 1.0;
                a
            }
        }
        let mut b = InstanceBuilder::new();
        b.job(0.0, 1.0);
        b.machine(vec![Some(1.0)]);
        b.machine(vec![None]);
        let inst = b.build().unwrap();
        let err = simulate(&inst, &mut Bad).unwrap_err();
        assert_eq!(err, SimError::ForbiddenAssignment { machine: 1, job: 0 });
    }

    #[test]
    fn idle_policy_stalls() {
        struct Idle;
        impl OnlineScheduler for Idle {
            fn name(&self) -> String {
                "idle".into()
            }
            fn plan(&mut self, _: f64, _: &[ActiveJob], inst: &Instance<f64>) -> Allocation {
                Allocation::idle(inst.n_machines(), inst.n_jobs())
            }
        }
        let inst = inst2();
        assert!(matches!(
            simulate(&inst, &mut Idle).unwrap_err(),
            SimError::Stalled { .. }
        ));
    }

    #[test]
    fn late_release_gap_is_skipped() {
        let mut b = InstanceBuilder::new();
        b.job(0.0, 1.0);
        b.job(100.0, 1.0);
        b.machine(vec![Some(1.0), Some(1.0)]);
        let inst = b.build().unwrap();
        let res = simulate(&inst, &mut GreedyFirst).unwrap();
        assert!((res.completions[0] - 1.0).abs() < 1e-9);
        assert!((res.completions[1] - 101.0).abs() < 1e-9);
    }

    #[test]
    fn metrics_computation() {
        let inst = inst2();
        let m = RunMetrics::from_completions(&inst, &[2.0, 5.0]);
        assert_eq!(m.max_flow, 4.0);
        assert_eq!(m.max_weighted_flow, 4.0);
        assert_eq!(m.mean_flow, 3.0);
        assert_eq!(m.sum_flow, 6.0);
        assert_eq!(m.makespan, 5.0);
        assert_eq!(m.max_stretch, 2.0); // (5−1)/2
        assert_eq!(m.sum_stretch, 3.0); // 2/2 + 4/2
    }

    #[test]
    fn busy_time_and_utilization_tracked() {
        let mut b = InstanceBuilder::new();
        b.job(0.0, 1.0);
        b.machine(vec![Some(2.0)]);
        let inst = b.build().unwrap();
        let res = simulate(&inst, &mut GreedyFirst).unwrap();
        // The only machine is fully busy from 0 to 2.
        assert!((res.busy[0] - 2.0).abs() < 1e-9);
        assert!((res.utilization(&inst) - 1.0).abs() < 1e-9);

        // Two machines, one job that only the first can run: the second
        // idles, so fleet utilization is at most 1/2.
        let mut b = InstanceBuilder::new();
        b.job(0.0, 1.0);
        b.machine(vec![Some(2.0)]);
        b.machine(vec![None]);
        let inst = b.build().unwrap();
        let res = simulate(&inst, &mut GreedyFirst).unwrap();
        assert!((res.busy[0] - 2.0).abs() < 1e-9);
        assert_eq!(res.busy[1], 0.0);
        assert!((res.utilization(&inst) - 0.5).abs() < 1e-9);
    }
}
