//! Classical preemptive list heuristics (non-divisible: a job runs on at
//! most one machine at a time, but may be migrated or interrupted at any
//! event).

use crate::engine::{ActiveSet, Allocation, JobView, OnlineScheduler};

/// Recycled ranking buffers for [`assign_by_priority`]: job order,
/// priorities, and the machine occupancy mask. Each list policy owns one
/// so the per-event path allocates nothing once capacities warm up.
#[derive(Debug, Default)]
pub(crate) struct RankScratch {
    order: Vec<u32>,
    keys: Vec<u128>,
    free: Vec<bool>,
}

/// One sortable word per job: high 64 bits order by *descending*
/// priority under IEEE 754 `totalOrder` (exactly [`f64::total_cmp`]),
/// low 64 bits break exact-bit priority ties by ascending job id. A
/// single integer compare per sort comparison replaces two
/// bounds-checked float loads plus `total_cmp` plus an id compare —
/// this is the hottest comparison in the simulator.
#[inline]
fn rank_key(priority: f64, id: usize) -> u128 {
    let b = priority.to_bits();
    // Ascending totalOrder key: flip all bits of negatives, just the
    // sign bit of non-negatives.
    let asc = b ^ ((((b as i64) >> 63) as u64) | (1 << 63));
    // Descending = complement.
    ((!asc as u128) << 64) | id as u128
}

/// Assigns jobs (in the order produced by `priority`, *descending*) to
/// their fastest still-free **live** machine, written into `alloc`.
/// `up` is the platform availability mask (empty = all machines in
/// service). Shared by every list heuristic in this module and by
/// [`crate::schedulers::edf::Edf`].
pub(crate) fn assign_by_priority(
    scratch: &mut RankScratch,
    active: &ActiveSet<'_>,
    up: &[bool],
    alloc: &mut Allocation,
    mut priority: impl FnMut(JobView<'_>) -> f64,
) {
    let n_machines = alloc.n_machines();
    let n = active.len();
    if n == 0 {
        return;
    }

    // Seed the occupancy mask with the platform mask: a dead machine is
    // just a machine that is never free. Every assignment then retires
    // one machine, so once `free_left` hits zero the remaining
    // (lower-priority) jobs cannot be served this plan — they are never
    // visited at all.
    scratch.free.clear();
    let mut free_left = if up.is_empty() {
        scratch.free.resize(n_machines, true);
        n_machines
    } else {
        scratch.free.extend_from_slice(up);
        up.iter().filter(|&&ok| ok).count()
    };

    // Tries to hand `job` its fastest still-free machine; returns
    // whether a machine was taken. Infinite and NaN costs lose every
    // `<` against the running best, so unavailable machines need no
    // separate check; strict `<` keeps the lowest index on cost ties.
    let mut try_assign = |k: usize, free: &mut [bool], free_left: &mut usize| -> bool {
        let job = active.get(k);
        let row = job.costs();
        let mut best = f64::INFINITY;
        let mut at = usize::MAX;
        for (i, (&f, &c)) in free.iter().zip(row).enumerate() {
            if f && c < best {
                best = c;
                at = i;
            }
        }
        if at != usize::MAX {
            free[at] = false;
            *free_left -= 1;
            alloc.set(at, job.id, 1.0);
            true
        } else {
            false
        }
    };

    if n == 1 {
        // One job: every priority ranks it first — skip ranking
        // entirely. This is the common case inside small shards.
        try_assign(0, &mut scratch.free, &mut free_left);
        return;
    }

    scratch.order.clear();
    scratch.keys.clear();
    for k in 0..n {
        let job = active.get(k);
        scratch.order.push(k as u32);
        scratch.keys.push(rank_key(priority(job), job.id));
    }
    let keys = &mut scratch.keys;
    let order = &mut scratch.order;

    // Keys are distinct (the low bits hold the unique job id), so the
    // descending-priority traversal is unique — how it is produced
    // cannot change the outcome, only its cost. Two regimes:
    //
    // * more jobs than machines: at most `free_left` jobs (plus any
    //   that fit nowhere) are ever visited, so *lazily* extract
    //   successive minima from an unsorted pool — O(visited · n) —
    //   instead of ordering all n. A saturated shard plans in O(n).
    // * otherwise: a branch-lean insertion sort of the whole set (n is
    //   small; the standard sort's dispatch overhead dominates it).
    if n > 2 * n_machines {
        while free_left > 0 && !order.is_empty() {
            let mut at = 0;
            let mut min_key = keys[order[0] as usize];
            for (j, &x) in order.iter().enumerate().skip(1) {
                let kx = keys[x as usize];
                if kx < min_key {
                    min_key = kx;
                    at = j;
                }
            }
            let k = order.swap_remove(at);
            try_assign(k as usize, &mut scratch.free, &mut free_left);
        }
    } else {
        for i in 1..n {
            let oi = order[i];
            let ki = keys[oi as usize];
            let mut j = i;
            while j > 0 && keys[order[j - 1] as usize] > ki {
                order[j] = order[j - 1];
                j -= 1;
            }
            order[j] = oi;
        }
        for &k in order.iter() {
            if free_left == 0 {
                break;
            }
            try_assign(k as usize, &mut scratch.free, &mut free_left);
        }
    }
}

/// Shortest Remaining Processing Time first (remaining work measured on
/// the job's fastest machine).
#[derive(Default)]
pub struct Srpt {
    /// Platform availability mask (empty = all machines in service).
    up: Vec<bool>,
    scratch: RankScratch,
}

impl Srpt {
    /// Fresh policy.
    pub fn new() -> Self {
        Srpt::default()
    }
}

impl OnlineScheduler for Srpt {
    fn name(&self) -> String {
        "SRPT".into()
    }
    fn reset(&mut self) {
        self.up.clear();
    }
    fn on_arrival(&mut self, _now: f64, _job: JobView<'_>) {
        // Stateless: every `plan` re-ranks the active set from scratch.
    }
    fn on_completion(&mut self, _now: f64, _job_id: usize) {
        // Stateless: no per-job bookkeeping to drop.
    }
    fn on_platform_change(&mut self, _now: f64, up: &[bool]) {
        self.up.clear();
        self.up.extend_from_slice(up);
    }
    fn plan(&mut self, _now: f64, active: &ActiveSet<'_>, alloc: &mut Allocation) {
        assign_by_priority(&mut self.scratch, active, &self.up, alloc, |a| {
            -(a.remaining * a.fastest_cost())
        })
    }
}

/// Largest *weighted age* first: prioritizes the job whose weighted flow
/// is currently largest (`w_j · (now − r_j)`), an online greedy proxy for
/// the max-weighted-flow objective.
#[derive(Default)]
pub struct WeightedAge {
    now: f64,
    /// Platform availability mask (empty = all machines in service).
    up: Vec<bool>,
    scratch: RankScratch,
}

impl WeightedAge {
    /// Fresh policy.
    pub fn new() -> Self {
        WeightedAge::default()
    }
}

impl OnlineScheduler for WeightedAge {
    fn name(&self) -> String {
        "WeightedAge".into()
    }
    fn reset(&mut self) {
        self.now = 0.0;
        self.up.clear();
    }
    fn on_arrival(&mut self, _now: f64, _job: JobView<'_>) {
        // Stateless: ages are recomputed from `now` and releases in `plan`.
    }
    fn on_completion(&mut self, _now: f64, _job_id: usize) {
        // Stateless: no per-job bookkeeping to drop.
    }
    fn on_platform_change(&mut self, _now: f64, up: &[bool]) {
        self.up.clear();
        self.up.extend_from_slice(up);
    }
    fn plan(&mut self, now: f64, active: &ActiveSet<'_>, alloc: &mut Allocation) {
        self.now = now;
        assign_by_priority(&mut self.scratch, active, &self.up, alloc, |a| {
            // Weighted flow the job would reach if it finished right now,
            // plus its remaining fastest time (a lookahead tie-breaker).
            a.weight * (now - a.release + a.remaining * a.fastest_cost())
        })
    }
}

/// Shortest *Weighted* Remaining Processing Time first (SWRPT): the
/// classical SRPT rule with the remaining time divided by the job's
/// weight, so urgent (heavy) jobs jump the queue proportionally to their
/// priority. On stretch-weighted instances (`w_j = 1/p_j`) this orders
/// jobs by `remaining · p_j²`-style urgency — the standard online
/// max-stretch heuristic the paper's comparison set includes.
#[derive(Default)]
pub struct Swrpt {
    /// Platform availability mask (empty = all machines in service).
    up: Vec<bool>,
    scratch: RankScratch,
}

impl Swrpt {
    /// Fresh policy.
    pub fn new() -> Self {
        Swrpt::default()
    }
}

impl OnlineScheduler for Swrpt {
    fn name(&self) -> String {
        "SWRPT".into()
    }
    fn reset(&mut self) {
        self.up.clear();
    }
    fn on_arrival(&mut self, _now: f64, _job: JobView<'_>) {
        // Stateless: every `plan` re-ranks the active set from scratch.
    }
    fn on_completion(&mut self, _now: f64, _job_id: usize) {
        // Stateless: no per-job bookkeeping to drop.
    }
    fn on_platform_change(&mut self, _now: f64, up: &[bool]) {
        self.up.clear();
        self.up.extend_from_slice(up);
    }
    fn plan(&mut self, _now: f64, active: &ActiveSet<'_>, alloc: &mut Allocation) {
        assign_by_priority(&mut self.scratch, active, &self.up, alloc, |a| {
            -(a.remaining * a.fastest_cost()) / a.weight.max(1e-12)
        })
    }
}

/// First-in-first-out: earliest release first, fastest free machine.
#[derive(Default)]
pub struct FifoFastest {
    /// Platform availability mask (empty = all machines in service).
    up: Vec<bool>,
    scratch: RankScratch,
}

impl FifoFastest {
    /// Fresh policy.
    pub fn new() -> Self {
        FifoFastest::default()
    }
}

impl OnlineScheduler for FifoFastest {
    fn name(&self) -> String {
        "FIFO".into()
    }
    fn reset(&mut self) {
        self.up.clear();
    }
    fn on_arrival(&mut self, _now: f64, _job: JobView<'_>) {
        // Stateless: release order is read off `active` in `plan`.
    }
    fn on_completion(&mut self, _now: f64, _job_id: usize) {
        // Stateless: no per-job bookkeeping to drop.
    }
    fn on_platform_change(&mut self, _now: f64, up: &[bool]) {
        self.up.clear();
        self.up.extend_from_slice(up);
    }
    fn plan(&mut self, _now: f64, active: &ActiveSet<'_>, alloc: &mut Allocation) {
        assign_by_priority(&mut self.scratch, active, &self.up, alloc, |a| -a.release)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::simulate;
    use dlflow_core::instance::{Instance, InstanceBuilder};

    fn two_jobs_one_machine() -> Instance<f64> {
        let mut b = InstanceBuilder::new();
        b.job(0.0, 1.0); // long: 10
        b.job(1.0, 1.0); // short: 2
        b.machine(vec![Some(10.0), Some(2.0)]);
        b.build().unwrap()
    }

    #[test]
    fn srpt_preempts_for_short_job() {
        let inst = two_jobs_one_machine();
        let res = simulate(&inst, &mut Srpt::new()).unwrap();
        // At t=1 the short job (2) preempts the long one (9 remaining).
        assert!((res.completions[1] - 3.0).abs() < 1e-6);
        assert!((res.completions[0] - 12.0).abs() < 1e-6);
    }

    #[test]
    fn fifo_does_not_preempt_for_later_arrival() {
        let inst = two_jobs_one_machine();
        let res = simulate(&inst, &mut FifoFastest::new()).unwrap();
        assert!((res.completions[0] - 10.0).abs() < 1e-6);
        assert!((res.completions[1] - 12.0).abs() < 1e-6);
    }

    #[test]
    fn weighted_age_favours_heavy_jobs() {
        let mut b = InstanceBuilder::new();
        b.job(0.0, 1.0); // light
        b.job(0.0, 100.0); // heavy
        b.machine(vec![Some(4.0), Some(4.0)]);
        let inst = b.build().unwrap();
        let res = simulate(&inst, &mut WeightedAge::new()).unwrap();
        // Heavy job must be served first.
        assert!(res.completions[1] < res.completions[0]);
    }

    #[test]
    fn swrpt_prefers_heavy_jobs_at_equal_remaining() {
        // Same size and release, different weights: the heavy job runs
        // first because its weighted remaining time is smaller.
        let mut b = InstanceBuilder::new();
        b.job(0.0, 1.0);
        b.job(0.0, 5.0);
        b.machine(vec![Some(4.0), Some(4.0)]);
        let inst = b.build().unwrap();
        let res = simulate(&inst, &mut Swrpt::new()).unwrap();
        assert!(res.completions[1] < res.completions[0]);
    }

    #[test]
    fn swrpt_matches_srpt_on_unit_weights() {
        let inst = two_jobs_one_machine();
        let a = simulate(&inst, &mut Swrpt::new()).unwrap();
        let b = simulate(&inst, &mut Srpt::new()).unwrap();
        assert_eq!(a.completions, b.completions);
    }

    #[test]
    fn jobs_never_run_on_two_machines() {
        // assign_by_priority gives each job at most one machine per plan;
        // verify via a two-machine instance where splitting would help.
        let mut b = InstanceBuilder::new();
        b.job(0.0, 1.0);
        b.machine(vec![Some(4.0)]);
        b.machine(vec![Some(4.0)]);
        let inst = b.build().unwrap();
        let res = simulate(&inst, &mut Srpt::new()).unwrap();
        // Non-divisible: 4, not the divisible 2.
        assert!((res.completions[0] - 4.0).abs() < 1e-6);
    }

    #[test]
    fn all_policies_complete_on_restricted_platform() {
        let mut b = InstanceBuilder::new();
        b.job(0.0, 1.0);
        b.job(0.5, 2.0);
        b.job(1.0, 1.0);
        b.machine(vec![Some(2.0), None, Some(3.0)]);
        b.machine(vec![None, Some(1.5), Some(6.0)]);
        let inst = b.build().unwrap();
        for policy in [
            &mut Srpt::new() as &mut dyn OnlineScheduler,
            &mut WeightedAge::new(),
            &mut FifoFastest::new(),
        ] {
            let res = simulate(&inst, policy).unwrap();
            assert!(res.completions.iter().all(|c| c.is_finite()));
        }
    }
}

/// Equal-share processor sharing ("round robin" in the fluid limit):
/// every machine divides its capacity equally among the active jobs it
/// can serve — the classical fairness baseline.
#[derive(Default)]
pub struct RoundRobin {
    /// Platform availability mask (empty = all machines in service).
    up: Vec<bool>,
}

impl RoundRobin {
    /// Fresh policy.
    pub fn new() -> Self {
        RoundRobin::default()
    }
}

impl OnlineScheduler for RoundRobin {
    fn name(&self) -> String {
        "RoundRobin".into()
    }
    fn reset(&mut self) {
        self.up.clear();
    }
    fn on_arrival(&mut self, _now: f64, _job: JobView<'_>) {
        // Stateless: eligibility is recomputed per machine in `plan`.
    }
    fn on_completion(&mut self, _now: f64, _job_id: usize) {
        // Stateless: no per-job bookkeeping to drop.
    }
    fn on_platform_change(&mut self, _now: f64, up: &[bool]) {
        self.up.clear();
        self.up.extend_from_slice(up);
    }
    fn plan(&mut self, _now: f64, active: &ActiveSet<'_>, alloc: &mut Allocation) {
        for i in 0..alloc.n_machines() {
            if !(self.up.is_empty() || self.up[i]) {
                continue; // down machine: no shares until it recovers
            }
            // Two passes (count, then set) keep the per-event path free of
            // per-machine buffer allocations.
            let n_eligible = active.iter().filter(|a| a.cost(i).is_some()).count();
            if n_eligible == 0 {
                continue;
            }
            let share = 1.0 / n_eligible as f64;
            for a in active.iter().filter(|a| a.cost(i).is_some()) {
                alloc.set(i, a.id, share);
            }
        }
    }
}

#[cfg(test)]
mod round_robin_tests {
    use super::*;
    use crate::engine::simulate;
    use dlflow_core::instance::InstanceBuilder;

    #[test]
    fn equal_shares_on_one_machine() {
        let mut b = InstanceBuilder::new();
        b.job(0.0, 1.0);
        b.job(0.0, 1.0);
        b.machine(vec![Some(2.0), Some(2.0)]);
        let inst = b.build().unwrap();
        let res = simulate(&inst, &mut RoundRobin::new()).unwrap();
        // Both progress at rate 1/4 until one finishes; identical jobs
        // finish together at t = 4 (processor sharing).
        assert!((res.completions[0] - 4.0).abs() < 1e-6);
        assert!((res.completions[1] - 4.0).abs() < 1e-6);
    }

    #[test]
    fn round_robin_completes_restricted_instances() {
        let mut b = InstanceBuilder::new();
        b.job(0.0, 1.0);
        b.job(1.0, 2.0);
        b.machine(vec![Some(2.0), None]);
        b.machine(vec![Some(3.0), Some(1.5)]);
        let inst = b.build().unwrap();
        let res = simulate(&inst, &mut RoundRobin::new()).unwrap();
        assert!(res.completions.iter().all(|c| c.is_finite()));
    }
}
