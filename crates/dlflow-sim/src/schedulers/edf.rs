//! Earliest Deadline First on *guessed* deadlines.
//!
//! The offline optimum turns the flow objective into deadline scheduling
//! (`d̄_j = r_j + F/w_j`, §4.3.1), but an online policy does not know the
//! optimal objective `F`. EDF-on-guesses substitutes a fixed per-job
//! guess: each job is given the deadline it would have if the final
//! objective were `target` times its own weighted fastest processing
//! time,
//!
//! ```text
//! d̂_j = r_j + target · p̄_j / w_j      (p̄_j = min_i c_{i,j})
//! ```
//!
//! and jobs are served earliest-guessed-deadline-first on their fastest
//! free machine. On stretch-weighted instances (`w_j = 1/p̄_j`) the guess
//! becomes `r_j + target · p̄_j²` — the classical "deadline = release +
//! stretch-bound × size" rule of online max-stretch algorithms (cf. the
//! Bender–Chakrabarti–Muthukrishnan O(1)-competitive scheme).
//!
//! The guess is fixed at arrival time, so the policy computes it once in
//! [`OnlineScheduler::on_arrival`] and keeps it in a map pruned on
//! completion — incremental state instead of per-plan recomputation.

use crate::engine::{ActiveSet, Allocation, JobView, OnlineScheduler};
use crate::schedulers::greedy::{assign_by_priority, RankScratch};
use std::collections::BTreeMap;

/// The guessed deadline of a job under a given target factor.
fn guess_of(target: f64, job: JobView<'_>) -> f64 {
    job.release + target * job.fastest_cost() / job.weight.max(1e-12)
}

/// EDF on guessed deadlines (see module docs).
pub struct Edf {
    /// Multiplier applied to `p̄_j / w_j` when guessing job deadlines:
    /// the stretch (resp. weighted-flow) bound the policy "bets" the
    /// optimum will reach. Default 2.
    pub target: f64,
    /// Deadline guesses of the jobs currently in the system. `BTreeMap`
    /// keeps the policy's state deterministic however it is inspected.
    guesses: BTreeMap<usize, f64>,
    /// Platform availability mask (empty = all machines in service).
    up: Vec<bool>,
    scratch: RankScratch,
}

impl Default for Edf {
    fn default() -> Self {
        Edf {
            target: 2.0,
            guesses: BTreeMap::new(),
            up: Vec::new(),
            scratch: RankScratch::default(),
        }
    }
}

impl Edf {
    /// Fresh policy with the default target factor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fresh policy with an explicit target factor.
    pub fn with_target(target: f64) -> Self {
        assert!(target > 0.0, "EDF target factor must be positive");
        Edf {
            target,
            ..Self::default()
        }
    }
}

impl OnlineScheduler for Edf {
    fn name(&self) -> String {
        if (self.target - 2.0).abs() < 1e-12 {
            "EDF".into()
        } else {
            format!("EDF(k={})", self.target)
        }
    }

    fn reset(&mut self) {
        self.guesses.clear();
        self.up.clear();
    }

    fn on_arrival(&mut self, _now: f64, job: JobView<'_>) {
        let d = guess_of(self.target, job);
        self.guesses.insert(job.id, d);
    }

    fn on_completion(&mut self, _now: f64, job_id: usize) {
        self.guesses.remove(&job_id);
    }

    fn on_platform_change(&mut self, _now: f64, up: &[bool]) {
        // Guessed deadlines are machine-independent; only the mask used
        // by the fastest-free-machine assignment needs updating.
        self.up.clear();
        self.up.extend_from_slice(up);
    }

    fn snapshot_state(&self) -> String {
        // Guesses are f64s serialized as bit patterns: restore must
        // reproduce the exact priorities, not a near-equal reparse.
        let mut s = String::new();
        for (id, d) in &self.guesses {
            s.push_str(&format!("guess {id} {:016x}\n", d.to_bits()));
        }
        s
    }

    fn restore_state(&mut self, state: &str) -> Result<(), String> {
        for line in state.lines() {
            let mut toks = line.split_whitespace();
            if toks.next() != Some("guess") {
                return Err("EDF state: bad guess line".into());
            }
            let id: usize = toks
                .next()
                .and_then(|v| v.parse().ok())
                .ok_or("EDF state: bad guess id")?;
            let bits = toks
                .next()
                .and_then(|v| u64::from_str_radix(v, 16).ok())
                .ok_or("EDF state: bad guess bits")?;
            self.guesses.insert(id, f64::from_bits(bits));
        }
        Ok(())
    }

    fn plan(&mut self, _now: f64, active: &ActiveSet<'_>, alloc: &mut Allocation) {
        let target = self.target;
        let guesses = &self.guesses;
        assign_by_priority(&mut self.scratch, active, &self.up, alloc, |a| {
            // Cached at arrival; recomputed only if a driver skipped the
            // arrival notification.
            -guesses
                .get(&a.id)
                .copied()
                .unwrap_or_else(|| guess_of(target, a))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::simulate;
    use dlflow_core::instance::InstanceBuilder;

    #[test]
    fn serves_tightest_guessed_deadline_first() {
        // J0: long, early. J1: short, slightly later — its guessed
        // deadline (1 + 2·2 = 5) beats J0's (0 + 2·10 = 20), so EDF
        // preempts the long job.
        let mut b = InstanceBuilder::new();
        b.job(0.0, 1.0);
        b.job(1.0, 1.0);
        b.machine(vec![Some(10.0), Some(2.0)]);
        let inst = b.build().unwrap();
        let res = simulate(&inst, &mut Edf::new()).unwrap();
        assert!((res.completions[1] - 3.0).abs() < 1e-6);
        assert!((res.completions[0] - 12.0).abs() < 1e-6);
    }

    #[test]
    fn weight_tightens_the_guess() {
        // Identical jobs except weight: the heavy job's guessed deadline
        // is earlier, so it is served first.
        let mut b = InstanceBuilder::new();
        b.job(0.0, 1.0);
        b.job(0.0, 10.0);
        b.machine(vec![Some(4.0), Some(4.0)]);
        let inst = b.build().unwrap();
        let res = simulate(&inst, &mut Edf::new()).unwrap();
        assert!(res.completions[1] < res.completions[0]);
    }

    #[test]
    fn completes_on_restricted_platforms() {
        let mut b = InstanceBuilder::new();
        b.job(0.0, 1.0);
        b.job(0.5, 2.0);
        b.machine(vec![Some(2.0), None]);
        b.machine(vec![Some(3.0), Some(1.5)]);
        let inst = b.build().unwrap();
        let mut edf = Edf::with_target(3.0);
        let res = simulate(&inst, &mut edf).unwrap();
        assert!(res.completions.iter().all(|c| c.is_finite()));
        // Guess cache is pruned on completion.
        assert!(edf.guesses.is_empty());
    }
}
