//! **OLA-lite**: the production-cheap member of the OLA family.
//!
//! [`super::OfflineAdapt`] pays ~40 LP feasibility probes per event to
//! bisect the smallest feasible objective `F` to full float precision.
//! That precision is what the paper's accuracy story (and this repo's
//! goldens) pin — but a deployment that merely wants *near*-optimal
//! max-stretch behaviour can spend far less, because the optimal `F`
//! moves slowly between consecutive events: a completion can only
//! shrink it, an arrival usually grows it by one job's worth of flow.
//!
//! `OlaLite` exploits that temporal coherence. It remembers the
//! objective `F` the previous event settled on and **geometrically
//! walks** it into place with factor `α > 1`:
//!
//! * if `F` is still feasible, shrink `F ← F/α` while feasibility
//!   holds (tracking the last feasible value);
//! * if it is not, grow `F ← F·α` until it is, capped by the serial
//!   upper bound `hi` of `bracket` (feasible by construction).
//!
//! In steady state the walk terminates after O(1) probes, and after a
//! burst that moves the optimum by a factor `R` it needs `O(log_α R)`
//! probes — versus the fixed 40 of the full bisection. The price is
//! resolution: the committed `F` overshoots the optimum by at most a
//! factor `α`, so first-interval rates are derived from a slightly
//! laxer deadline profile than OLA's.
//!
//! Probes run the warm path end to end: shape-stable probe LPs
//! ([`build_deadline_probe_lp`]) served by a persistent [`ProbeCache`]
//! (within an event every probe after the first is a pure RHS patch on
//! the retained tableau), chained across events through the shared
//! `WarmChain` carry. Warm feasible verdicts are accepted only with
//! a primal certificate ([`certifies`]) in hand, warm infeasible ones
//! only from the persistent path with a decisive margin — everything
//! else is recomputed from scratch. Unlike `OfflineAdapt`, no golden
//! pins this policy's output, so it needs none of the
//! bit-compatibility guard stack — the certificate and the margin gate
//! alone keep the walk sound. The final rate-extracting solve is a
//! cold filtered solve, falling back to the guaranteed-feasible `hi`
//! (and then to an idle plan) if the committed `F` turns out to sit on
//! a solver tolerance boundary.

use crate::engine::{ActiveSet, Allocation, JobView, OnlineScheduler, ResolveStats};
use dlflow_core::instance::Instance;
use dlflow_core::lp_build::{build_deadline_lp, build_deadline_probe_lp};
use dlflow_lp::{certifies, solve, solve_warm, LpStatus, ProbeCache, WarmBasis};
use std::mem;

use super::offline_adapt::{
    bracket, build_sub, fill_deadlines, first_interval_rates, JobCols, SubBuffers, WarmChain,
    INFEASIBLE_MARGIN_GUARD,
};

/// Safety cap on geometric walk steps per direction. With the default
/// `α = 2` this covers a 2⁶⁴ swing of the optimum between two events —
/// far beyond anything a trace can produce — while bounding the
/// per-event work even for `α` barely above 1.
const MAX_WALK_STEPS: usize = 64;

/// Cheap online adaptation: geometric objective walk instead of full
/// bisection. See the module docs for the algorithm.
pub struct OlaLite {
    /// Geometric walk factor (> 1). Larger values converge in fewer
    /// probes but commit a laxer objective: `F` overshoots the optimum
    /// by at most this factor.
    pub alpha: f64,
    /// Number of full re-solves performed since the last `reset`.
    pub n_resolves: usize,
    /// LP solves served by warm-basis reuse since the last `reset`.
    warm_lp_solves: usize,
    /// LP solves performed from scratch since the last `reset`.
    cold_lp_solves: usize,
    /// Re-plans in which ≥1 probe was served warm / none was.
    warm_resolves: usize,
    cold_resolves: usize,
    /// Objective the previous event committed (the walk's anchor).
    last_f: Option<f64>,
    /// Platform availability mask (empty = all machines in service).
    up: Vec<bool>,
    /// Scratch copy of the active set, refreshed per event.
    scratch: JobCols,
    /// Recycled job/cost-matrix buffers for the LP sub-instance.
    sub_recycle: SubBuffers,
    /// Recycled deadline vector (one slot per selected job).
    d_buf: Vec<f64>,
    /// Cross-event warm-basis carry (shared with `OfflineAdapt`).
    chain: WarmChain,
    /// Persistent probe factorization for the walk's shape-stable LPs.
    probe: ProbeCache<f64>,
}

impl Default for OlaLite {
    fn default() -> Self {
        OlaLite {
            alpha: 2.0,
            n_resolves: 0,
            warm_lp_solves: 0,
            cold_lp_solves: 0,
            warm_resolves: 0,
            cold_resolves: 0,
            last_f: None,
            up: Vec::new(),
            scratch: JobCols::default(),
            sub_recycle: (Vec::new(), Vec::new()),
            d_buf: Vec::new(),
            chain: WarmChain::default(),
            probe: ProbeCache::new(),
        }
    }
}

impl OlaLite {
    /// Fresh policy with the default walk factor `α = 2`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fresh policy with walk factor `alpha` (must be finite and > 1).
    pub fn with_alpha(alpha: f64) -> Self {
        assert!(
            alpha.is_finite() && alpha > 1.0,
            "OLA-lite walk factor must be finite and > 1"
        );
        OlaLite {
            alpha,
            ..Self::default()
        }
    }

    /// Whether machine `i` is in service under the current mask.
    fn live(&self, i: usize) -> bool {
        self.up.is_empty() || self.up[i]
    }

    /// Whether job column `k` can run on some live machine.
    fn placeable(&self, cols: &JobCols, k: usize, n_machines: usize) -> bool {
        (0..n_machines).any(|i| self.live(i) && cols.cost(i, k).is_some())
    }
}

/// One feasibility probe of the walk, served by the persistent
/// [`ProbeCache`]: a warm feasible verdict needs a primal certificate,
/// a warm infeasible one the persistent path plus a decisive margin
/// (`margin_gate`), and everything else is recomputed from scratch.
/// `pending` (the cross-event basis carry) is consumed by the first
/// probe of the event; `hint` keeps the remapped basis alive as the
/// cache's re-seed for the rest of it.
#[allow(clippy::too_many_arguments)] // a probe really does touch all of the walk's moving parts
fn walk_probe(
    sub: &Instance<f64>,
    d: &[f64],
    now: f64,
    margin_gate: f64,
    pending: &mut Option<(WarmBasis, Vec<Option<usize>>)>,
    hint: &mut Option<WarmBasis>,
    probe: &mut ProbeCache<f64>,
    cache_on_event_shape: &mut bool,
    warm_lp_solves: &mut usize,
    cold_lp_solves: &mut usize,
) -> bool {
    if d.iter().any(|&dj| dj <= now) {
        return false; // an empty window needs no LP to refute
    }
    let lp = build_deadline_probe_lp(sub, d, false);
    if let Some((basis, var_map)) = pending.take() {
        *hint = Some(basis.remap(&lp, &var_map));
    }
    let served = probe.solve(&lp, hint.as_ref());
    *cache_on_event_shape |= served.is_some();
    let verdict = served.and_then(|out| {
        if out.solution.is_optimal() {
            if certifies(&lp, &out.solution) {
                Some(true)
            } else {
                probe.clear();
                None
            }
        } else if out.persistent
            && out.solution.status == LpStatus::Infeasible
            && out.infeasible_margin.is_some_and(|m| m > margin_gate)
        {
            Some(false)
        } else {
            None
        }
    });
    match verdict {
        Some(v) => {
            *warm_lp_solves += 1;
            v
        }
        None => {
            // No trusted warm verdict. Unlike OfflineAdapt there is no
            // golden to match, so the recomputation can stay in the
            // cheaper shape-stable form — and its basis doubles as the
            // cache's seed on a fresh run.
            *cold_lp_solves += 1;
            let out = solve_warm(&lp, None);
            if hint.is_none() {
                *hint = out.basis;
            }
            out.solution.is_optimal()
        }
    }
}

impl OnlineScheduler for OlaLite {
    fn name(&self) -> String {
        if self.alpha.total_cmp(&2.0).is_eq() {
            "OLA-lite".into()
        } else {
            format!("OLA-lite(a={})", self.alpha)
        }
    }

    fn reset(&mut self) {
        self.n_resolves = 0;
        self.warm_lp_solves = 0;
        self.cold_lp_solves = 0;
        self.warm_resolves = 0;
        self.cold_resolves = 0;
        self.last_f = None;
        self.up.clear();
        self.chain.clear();
        self.probe.clear();
    }

    fn on_arrival(&mut self, _now: f64, _job: JobView<'_>) {
        // The walk re-anchors from `last_f` at the next `plan` call; an
        // arrival simply makes the grow direction more likely.
    }

    fn on_completion(&mut self, _now: f64, _job_id: usize) {
        // Nothing cached per job; the next walk shrinks `F` if the
        // departure loosened the optimum.
    }

    fn on_platform_change(&mut self, _now: f64, up: &[bool]) {
        self.up.clear();
        self.up.extend_from_slice(up);
        // The carried basis was captured on the old platform's cost
        // pattern; rebuild rather than remap (platform events are rare).
        // `last_f` survives: it is only a search anchor, and the grow
        // loop caps at the new platform's `hi` anyway.
        self.chain.clear();
        self.probe.clear();
    }

    fn snapshot_state(&self) -> String {
        // The warm chain is a pure pivot-order hint and is deliberately
        // dropped across snapshot/restore (same policy as OfflineAdapt).
        // `last_f` is a search anchor, not telemetry: restoring it keeps
        // the first post-restore walk as short as it would have been.
        let mut s = format!("n_resolves {}\n", self.n_resolves);
        if let Some(f) = self.last_f {
            s.push_str(&format!("last_f {:016x}\n", f.to_bits()));
        }
        s
    }

    fn restore_state(&mut self, state: &str) -> Result<(), String> {
        let mut lines = state.lines();
        let head = lines
            .next()
            .ok_or("OLA-lite state: missing n_resolves line")?;
        self.n_resolves = head
            .strip_prefix("n_resolves ")
            .and_then(|v| v.parse().ok())
            .ok_or("OLA-lite state: bad n_resolves line")?;
        self.last_f = match lines.next() {
            None => None,
            Some(line) => Some(
                line.strip_prefix("last_f ")
                    .and_then(|v| u64::from_str_radix(v, 16).ok())
                    .map(f64::from_bits)
                    .ok_or("OLA-lite state: bad last_f line")?,
            ),
        };
        self.chain.clear();
        self.probe.clear();
        Ok(())
    }

    fn plan(&mut self, now: f64, active: &ActiveSet<'_>, alloc: &mut Allocation) {
        let n_machines = alloc.n_machines();
        if active.is_empty() {
            return;
        }
        let mut cols = mem::take(&mut self.scratch);
        cols.fill(active);
        let result = self.plan_impl(now, &mut cols, n_machines);
        self.scratch = cols;
        for i in 0..n_machines {
            for (job, share) in result.entries(i) {
                alloc.set(i, *job, *share);
            }
        }
    }

    fn resolve_stats(&self) -> Option<ResolveStats> {
        Some(ResolveStats {
            n_resolves: self.n_resolves,
            warm_lp_solves: self.warm_lp_solves,
            cold_lp_solves: self.cold_lp_solves,
            warm_resolves: self.warm_resolves,
            cold_resolves: self.cold_resolves,
        })
    }
}

impl OlaLite {
    /// The solve proper, over the scratch columns (which it may filter
    /// down to the placeable subset on the degraded path).
    fn plan_impl(&mut self, now: f64, cols: &mut JobCols, n_machines: usize) -> Allocation {
        if cols.n() == 0 {
            return Allocation::idle(n_machines);
        }
        if (0..cols.n()).any(|k| !self.placeable(cols, k, n_machines)) {
            // Same degraded-platform handling as OfflineAdapt: plan the
            // placeable subset instead of stranding everyone.
            let up = mem::take(&mut self.up);
            cols.retain_by(|c, k| {
                (0..n_machines).any(|i| (up.is_empty() || up[i]) && c.cost(i, k).is_some())
            });
            self.up = up;
            if cols.n() == 0 {
                return Allocation::idle(n_machines);
            }
        }

        let Some(sub) = build_sub(now, cols, &self.up, n_machines, &mut self.sub_recycle) else {
            // Unreachable after the placeability filter; idle beats panicking.
            return Allocation::idle(n_machines);
        };

        let mut pending = self.chain.carry_in(&sub, cols, n_machines);
        let mut hint: Option<WarmBasis> = None;
        // Gate for the cross-event basis carry: only a basis the cache
        // retained on *this* event's LP shape may be paired with this
        // event's sub-instance (see the same gate in `OfflineAdapt`).
        let mut cache_on_event_shape = false;
        let (_lo, hi) = bracket(now, cols, &sub);
        let margin_gate = INFEASIBLE_MARGIN_GUARD * (1.0 + hi);
        let warm_before = self.warm_lp_solves;

        // Anchor the walk on the previous event's objective; a fresh
        // start (or a nonsensical carry) anchors on the serial bound.
        let mut f = match self.last_f {
            Some(prev) if prev.is_finite() && prev > 0.0 => prev.min(hi),
            _ => hi,
        };

        let mut d = mem::take(&mut self.d_buf);
        fill_deadlines(&mut d, now, f, cols);
        let anchored = walk_probe(
            &sub,
            &d,
            now,
            margin_gate,
            &mut pending,
            &mut hint,
            &mut self.probe,
            &mut cache_on_event_shape,
            &mut self.warm_lp_solves,
            &mut self.cold_lp_solves,
        );
        if anchored {
            // Shrink while feasibility holds; `f` tracks the last
            // feasible value. Terminates: a small enough `F` empties
            // some deadline window (or starves the remaining work).
            for _ in 0..MAX_WALK_STEPS {
                let g = f / self.alpha;
                fill_deadlines(&mut d, now, g, cols);
                if walk_probe(
                    &sub,
                    &d,
                    now,
                    margin_gate,
                    &mut pending,
                    &mut hint,
                    &mut self.probe,
                    &mut cache_on_event_shape,
                    &mut self.warm_lp_solves,
                    &mut self.cold_lp_solves,
                ) {
                    f = g;
                } else {
                    break;
                }
            }
        } else {
            // Grow until feasible, capped by the serial upper bound
            // (feasible by construction — and re-checked by the final
            // solve's fallback below in case float noise disagrees).
            let mut found = false;
            for _ in 0..MAX_WALK_STEPS {
                if f >= hi {
                    break;
                }
                f = (f * self.alpha).min(hi);
                fill_deadlines(&mut d, now, f, cols);
                if walk_probe(
                    &sub,
                    &d,
                    now,
                    margin_gate,
                    &mut pending,
                    &mut hint,
                    &mut self.probe,
                    &mut cache_on_event_shape,
                    &mut self.warm_lp_solves,
                    &mut self.cold_lp_solves,
                ) {
                    found = true;
                    break;
                }
            }
            if !found {
                f = hi;
            }
        }

        // Commit: cold filtered solve at the walked objective, falling
        // back to the guaranteed-feasible serial bound if the committed
        // `F` sits on a solver tolerance boundary.
        fill_deadlines(&mut d, now, f, cols);
        let mut built = build_deadline_lp(&sub, &d, false);
        let mut sol = solve(&built.lp);
        self.cold_lp_solves += 1;
        if !sol.is_optimal() && f < hi {
            f = hi;
            fill_deadlines(&mut d, now, f, cols);
            built = build_deadline_lp(&sub, &d, false);
            sol = solve(&built.lp);
            self.cold_lp_solves += 1;
        }
        self.n_resolves += 1;
        if self.warm_lp_solves > warm_before {
            self.warm_resolves += 1;
        } else {
            self.cold_resolves += 1;
        }
        self.d_buf = d;

        let committed = sol.is_optimal();
        let alloc = if committed {
            first_interval_rates(&built, &sol, &sub, cols, n_machines).0
        } else {
            Allocation::idle(n_machines)
        };

        let carried = if cache_on_event_shape {
            self.probe.basis()
        } else {
            None
        };
        if let Some(bufs) = self.chain.carry_out(carried, sub, cols) {
            self.sub_recycle = bufs;
        }
        self.last_f = committed.then_some(f);
        alloc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{simulate, RunMetrics};
    use crate::schedulers::offline_adapt::OfflineAdapt;
    use dlflow_core::instance::InstanceBuilder;

    fn two_machine_instance() -> Instance<f64> {
        let mut b = InstanceBuilder::new();
        b.job(0.0, 1.0);
        b.job(0.5, 2.0);
        b.job(1.0, 1.0);
        b.machine(vec![Some(1.0), Some(2.0), Some(1.5)]);
        b.machine(vec![Some(2.0), Some(1.0), Some(1.5)]);
        b.build().unwrap()
    }

    #[test]
    fn completes_all_jobs() {
        let inst = two_machine_instance();
        let res = simulate(&inst, &mut OlaLite::new()).unwrap();
        assert_eq!(res.completions.len(), 3);
        assert!(res.completions.iter().all(|c| c.is_finite()));
    }

    #[test]
    fn alpha_close_to_one_approaches_full_ola() {
        // A finer walk factor commits an objective closer to the
        // bisection's, so its objective can exceed the full OLA's by at
        // most a modest factor; a coarse walk stays a valid, completing
        // policy.
        let inst = two_machine_instance();
        let full = simulate(&inst, &mut OfflineAdapt::new()).unwrap();
        let fine = simulate(&inst, &mut OlaLite::with_alpha(1.05)).unwrap();
        let coarse = simulate(&inst, &mut OlaLite::with_alpha(4.0)).unwrap();
        let m_full = RunMetrics::from_completions(&inst, &full.completions);
        let m_fine = RunMetrics::from_completions(&inst, &fine.completions);
        let m_coarse = RunMetrics::from_completions(&inst, &coarse.completions);
        assert!(
            m_fine.max_weighted_flow <= m_full.max_weighted_flow * 1.25 + 1e-6,
            "fine walk {} vs full OLA {}",
            m_fine.max_weighted_flow,
            m_full.max_weighted_flow
        );
        assert!(m_coarse.max_weighted_flow.is_finite());
    }

    #[test]
    #[should_panic(expected = "walk factor")]
    fn rejects_alpha_of_one() {
        let _ = OlaLite::with_alpha(1.0);
    }

    #[test]
    fn name_reports_non_default_alpha() {
        assert_eq!(OlaLite::new().name(), "OLA-lite");
        assert_eq!(OlaLite::with_alpha(1.5).name(), "OLA-lite(a=1.5)");
    }

    #[test]
    fn resolve_stats_count_walk_probes() {
        let inst = two_machine_instance();
        let mut s = OlaLite::new();
        let _ = simulate(&inst, &mut s).unwrap();
        let stats = s.resolve_stats().unwrap();
        assert!(stats.n_resolves > 0);
        assert!(stats.lp_solves() >= stats.n_resolves);
        // The walk is the whole point: far fewer probes per event than
        // the full bisection's fixed 40 (+1 final solve).
        assert!(stats.mean_lp_solves_per_resolve() < 41.0);
    }

    #[test]
    fn walk_is_cheaper_than_full_bisection() {
        let inst = two_machine_instance();
        let mut lite = OlaLite::new();
        let mut full = OfflineAdapt::new();
        let _ = simulate(&inst, &mut lite).unwrap();
        let _ = simulate(&inst, &mut full).unwrap();
        let sl = lite.resolve_stats().unwrap();
        let sf = full.resolve_stats().unwrap();
        assert!(
            sl.mean_lp_solves_per_resolve() < sf.mean_lp_solves_per_resolve() / 2.0,
            "OLA-lite {} probes/event vs full OLA {}",
            sl.mean_lp_solves_per_resolve(),
            sf.mean_lp_solves_per_resolve()
        );
    }

    #[test]
    fn snapshot_roundtrip_preserves_anchor() {
        let mut s = OlaLite::new();
        s.n_resolves = 7;
        s.last_f = Some(13.5);
        let snap = s.snapshot_state();
        let mut t = OlaLite::new();
        t.restore_state(&snap).unwrap();
        assert_eq!(t.n_resolves, 7);
        assert_eq!(t.last_f, Some(13.5));

        s.last_f = None;
        let snap = s.snapshot_state();
        t.last_f = Some(1.0);
        t.restore_state(&snap).unwrap();
        assert_eq!(t.last_f, None);
    }

    #[test]
    fn restore_rejects_garbage() {
        let mut s = OlaLite::new();
        assert!(s.restore_state("").is_err());
        assert!(s.restore_state("n_resolves x").is_err());
        assert!(s.restore_state("n_resolves 3\nlast_f zz\n").is_err());
    }

    #[test]
    fn respects_restricted_availability() {
        let mut b = InstanceBuilder::new();
        b.job(0.0, 1.0);
        b.job(0.0, 1.0);
        b.machine(vec![Some(2.0), None]);
        b.machine(vec![None, Some(2.0)]);
        let inst = b.build().unwrap();
        let res = simulate(&inst, &mut OlaLite::new()).unwrap();
        assert!((res.completions[0] - 2.0).abs() < 1e-4);
        assert!((res.completions[1] - 2.0).abs() < 1e-4);
    }
}
