//! Online scheduling policies.
//!
//! * [`mct::Mct`] — Minimum Completion Time, the classical heuristic the
//!   paper's conclusion names as the baseline its online adaptation beats.
//! * [`greedy::Srpt`], [`greedy::WeightedAge`], [`greedy::FifoFastest`] —
//!   further classical list heuristics (preemptive, non-divisible).
//! * [`offline_adapt::OfflineAdapt`] — the paper's proposal: re-solve the
//!   offline divisible max-weighted-flow problem at every event and follow
//!   its first-interval rates (divisibility gives preemption for free).

pub mod greedy;
pub mod mct;
pub mod offline_adapt;

pub use greedy::{FifoFastest, RoundRobin, Srpt, WeightedAge};
pub use mct::Mct;
pub use offline_adapt::OfflineAdapt;
