//! Online scheduling policies.
//!
//! All eight speak the event-notification
//! [`OnlineScheduler`](crate::engine::OnlineScheduler) API: the engine
//! tells them about arrivals and completions (`on_arrival` /
//! `on_completion`), they keep incremental per-job state, and `plan`
//! sees only the active set — never a closed instance — so every policy
//! runs unchanged on open-arrival traces of any length.
//!
//! * [`mct::Mct`] — Minimum Completion Time, the classical heuristic the
//!   paper's conclusion names as the baseline its online adaptation beats
//!   (assignments pruned incrementally on completion).
//! * [`greedy::Srpt`], [`greedy::Swrpt`], [`greedy::WeightedAge`],
//!   [`greedy::FifoFastest`], [`greedy::RoundRobin`] — further classical
//!   list heuristics (preemptive, non-divisible).
//! * [`edf::Edf`] — Earliest Deadline First on guessed deadlines
//!   (`d̂_j = r_j + k·p̄_j/w_j`), the deadline-driven member of the
//!   comparison set (guesses cached at arrival).
//! * [`offline_adapt::OfflineAdapt`] — the paper's proposal: re-solve the
//!   offline divisible max-weighted-flow problem at every event and follow
//!   its first-interval rates (divisibility gives preemption for free).
//!   Its [`min_resolve_interval`](offline_adapt::OfflineAdapt::min_resolve_interval)
//!   throttles the re-solve cadence for cheap approximate variants.

pub mod edf;
pub mod greedy;
pub mod mct;
pub mod offline_adapt;

pub use edf::Edf;
pub use greedy::{FifoFastest, RoundRobin, Srpt, Swrpt, WeightedAge};
pub use mct::Mct;
pub use offline_adapt::OfflineAdapt;
