//! Online scheduling policies.
//!
//! All nine speak the event-notification
//! [`OnlineScheduler`](crate::engine::OnlineScheduler) API: the engine
//! tells them about arrivals and completions (`on_arrival` /
//! `on_completion`), they keep incremental per-job state, and `plan`
//! sees only the active set — never a closed instance — so every policy
//! runs unchanged on open-arrival traces of any length.
//!
//! * [`mct::Mct`] — Minimum Completion Time, the classical heuristic the
//!   paper's conclusion names as the baseline its online adaptation beats
//!   (assignments pruned incrementally on completion).
//! * [`greedy::Srpt`], [`greedy::Swrpt`], [`greedy::WeightedAge`],
//!   [`greedy::FifoFastest`], [`greedy::RoundRobin`] — further classical
//!   list heuristics (preemptive, non-divisible).
//! * [`edf::Edf`] — Earliest Deadline First on guessed deadlines
//!   (`d̂_j = r_j + k·p̄_j/w_j`), the deadline-driven member of the
//!   comparison set (guesses cached at arrival).
//! * [`offline_adapt::OfflineAdapt`] — the paper's proposal: re-solve the
//!   offline divisible max-weighted-flow problem at every event and follow
//!   its first-interval rates (divisibility gives preemption for free).
//!   Its [`min_resolve_interval`](offline_adapt::OfflineAdapt::min_resolve_interval)
//!   throttles the re-solve cadence for cheap approximate variants.
//! * [`ola_lite::OlaLite`] — the production-cheap member of the OLA
//!   family: instead of a full per-event bisection it geometrically
//!   walks the previous event's objective into place (factor `α`),
//!   spending O(1) warm LP probes per event in steady state at the cost
//!   of an α-factor objective overshoot.

pub mod edf;
pub mod greedy;
pub mod mct;
pub mod offline_adapt;
pub mod ola_lite;

pub use edf::Edf;
pub use greedy::{FifoFastest, RoundRobin, Srpt, Swrpt, WeightedAge};
pub use mct::Mct;
pub use offline_adapt::OfflineAdapt;
pub use ola_lite::OlaLite;
