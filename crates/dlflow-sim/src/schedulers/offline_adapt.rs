//! The paper's proposal (§5): an **online adaptation of the offline
//! algorithm**, "enhanced by a simple preemption scheme".
//!
//! At every event the policy re-solves the offline divisible
//! max-weighted-flow problem restricted to the jobs currently in the
//! system (their *remaining* work) while accounting for the time they
//! have already spent waiting:
//!
//! 1. binary-search the smallest feasible objective `F` such that the
//!    deadline windows `[now, r_j + F/w_j]` admit a divisible schedule of
//!    the remaining work (the probe is the paper's System (2), built by
//!    `dlflow-core`);
//! 2. take the first time interval of the feasible schedule and convert
//!    its fractions `α⁽⁰⁾ᵢⱼ` into machine shares;
//! 3. follow those rates until the next event (arrival/completion), then
//!    re-plan. Divisibility makes preemption and migration free.

use crate::engine::{ActiveJob, Allocation, OnlineScheduler};
use dlflow_core::instance::{Cost, Instance, Job};
use dlflow_core::lp_build::build_deadline_lp;
use dlflow_lp::solve;

/// Online adaptation of the offline divisible optimum.
pub struct OfflineAdapt {
    /// Bisection iterations (each one LP feasibility solve).
    pub bisection_iters: usize,
}

impl Default for OfflineAdapt {
    fn default() -> Self {
        OfflineAdapt {
            bisection_iters: 40,
        }
    }
}

impl OfflineAdapt {
    /// Fresh policy with default precision.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds the *remaining-work* sub-instance at time `now`: one job per
    /// active job with cost `remaining · c[i][j]` and release `now`.
    fn sub_instance(&self, now: f64, active: &[ActiveJob], inst: &Instance<f64>) -> Instance<f64> {
        let jobs: Vec<Job<f64>> = active
            .iter()
            .map(|a| Job {
                release: now,
                weight: inst.job(a.id).weight,
                name: inst.job(a.id).name.clone(),
            })
            .collect();
        let cost: Vec<Vec<Cost<f64>>> = (0..inst.n_machines())
            .map(|i| {
                active
                    .iter()
                    .map(|a| match inst.cost(i, a.id).finite() {
                        Some(&c) => Cost::Finite(a.remaining * c),
                        None => Cost::Infinite,
                    })
                    .collect()
            })
            .collect();
        Instance::new(jobs, cost).expect("sub-instance of a valid instance is valid")
    }

    /// Deadlines induced by objective `F`, measured from the **original**
    /// releases (so jobs that have waited longer get tighter windows),
    /// clamped to `now` (a deadline in the past means `F` is infeasible,
    /// expressed as an empty window).
    fn deadlines(&self, now: f64, f: f64, active: &[ActiveJob], inst: &Instance<f64>) -> Vec<f64> {
        active
            .iter()
            .map(|a| {
                let j = inst.job(a.id);
                (j.release + f / j.weight).max(now - 1.0) // < now ⇒ infeasible window
            })
            .collect()
    }
}

impl OnlineScheduler for OfflineAdapt {
    fn name(&self) -> String {
        "OLA (offline-adapted)".into()
    }

    fn plan(&mut self, now: f64, active: &[ActiveJob], inst: &Instance<f64>) -> Allocation {
        if active.is_empty() {
            return Allocation::idle(inst.n_machines(), inst.n_jobs());
        }
        let sub = self.sub_instance(now, active, inst);

        // Feasibility probe for a candidate objective value.
        let probe = |f: f64| -> bool {
            let d = self.deadlines(now, f, active, inst);
            if d.iter().any(|&dj| dj <= now) {
                return false;
            }
            let built = build_deadline_lp(&sub, &d, false);
            solve(&built.lp).is_optimal()
        };

        // Bracket the optimum. Lower bound: flow already incurred.
        let mut lo = active
            .iter()
            .map(|a| inst.job(a.id).weight * (now - inst.job(a.id).release))
            .fold(0.0f64, f64::max);
        // Upper bound: serialize everything on fastest machines.
        let total_serial: f64 = active
            .iter()
            .map(|a| a.remaining * sub_fastest(&sub, active, a))
            .sum();
        let mut hi = active
            .iter()
            .map(|a| inst.job(a.id).weight * (now + total_serial - inst.job(a.id).release))
            .fold(lo, f64::max)
            .max(lo + 1.0)
            * (1.0 + 1e-9)
            + 1e-6;
        debug_assert!(probe(hi), "upper bound must be feasible");

        for _ in 0..self.bisection_iters {
            let mid = 0.5 * (lo + hi);
            if probe(mid) {
                hi = mid;
            } else {
                lo = mid;
            }
        }

        // Final solve at the feasible end of the bracket.
        let d = self.deadlines(now, hi, active, inst);
        let built = build_deadline_lp(&sub, &d, false);
        let sol = solve(&built.lp);
        debug_assert!(sol.is_optimal());

        // First-interval rates: α⁽⁰⁾ᵢⱼ · c'ᵢⱼ is the time machine i spends
        // on job j within the interval; divided by the interval length it
        // is the machine share.
        let mut alloc = Allocation::idle(inst.n_machines(), inst.n_jobs());
        if built.intervals.n_intervals() == 0 {
            return alloc;
        }
        let len0 = built.intervals.len(0);
        if len0 <= 0.0 {
            return alloc;
        }
        for (t, i, k, v) in &built.alpha {
            if *t != 0 {
                continue;
            }
            let frac = sol.values[v.index()];
            if frac <= 1e-12 {
                continue;
            }
            let c_sub = sub.cost(*i, *k).finite().copied().unwrap();
            let share = (frac * c_sub / len0).min(1.0);
            alloc.rates[*i][active[*k].id] += share;
        }
        // Normalize any machine marginally over 1 from float noise.
        for i in 0..inst.n_machines() {
            let total: f64 = alloc.rates[i].iter().sum();
            if total > 1.0 {
                for r in alloc.rates[i].iter_mut() {
                    *r /= total;
                }
            }
        }
        alloc
    }
}

fn sub_fastest(sub: &Instance<f64>, active: &[ActiveJob], a: &ActiveJob) -> f64 {
    let k = active.iter().position(|x| x.id == a.id).unwrap();
    // fastest_cost of the sub-instance already includes `remaining`; undo it
    // to give the caller a per-unit figure times remaining consistently.
    let f = sub.fastest_cost(k);
    if a.remaining > 0.0 {
        f / a.remaining
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{simulate, RunMetrics};
    use crate::schedulers::mct::Mct;
    use dlflow_core::instance::InstanceBuilder;

    #[test]
    fn splits_divisible_job_across_machines() {
        let mut b = InstanceBuilder::new();
        b.job(0.0, 1.0);
        b.machine(vec![Some(4.0)]);
        b.machine(vec![Some(4.0)]);
        let inst = b.build().unwrap();
        let res = simulate(&inst, &mut OfflineAdapt::new()).unwrap();
        // Divisible optimum: both machines half each → done at 2.
        assert!(
            (res.completions[0] - 2.0).abs() < 1e-4,
            "got {}",
            res.completions[0]
        );
    }

    #[test]
    fn single_job_completes_at_processing_time() {
        let mut b = InstanceBuilder::new();
        b.job(1.0, 2.0);
        b.machine(vec![Some(3.0)]);
        let inst = b.build().unwrap();
        let res = simulate(&inst, &mut OfflineAdapt::new()).unwrap();
        assert!((res.completions[0] - 4.0).abs() < 1e-4);
    }

    #[test]
    fn beats_mct_on_weighted_instance() {
        // Heavy job arrives while a light long job monopolizes the only
        // fast machine under MCT; OLA preempts/splits.
        let mut b = InstanceBuilder::new();
        b.job(0.0, 1.0); // light, long (10 on M0)
        b.job(1.0, 10.0); // heavy, short (2 on M0), slow elsewhere
        b.machine(vec![Some(10.0), Some(2.0)]);
        b.machine(vec![Some(30.0), Some(20.0)]);
        let inst = b.build().unwrap();
        let mct = simulate(&inst, &mut Mct::new()).unwrap();
        let ola = simulate(&inst, &mut OfflineAdapt::new()).unwrap();
        let m_mct = RunMetrics::from_completions(&inst, &mct.completions);
        let m_ola = RunMetrics::from_completions(&inst, &ola.completions);
        assert!(
            m_ola.max_weighted_flow < m_mct.max_weighted_flow,
            "OLA {} should beat MCT {}",
            m_ola.max_weighted_flow,
            m_mct.max_weighted_flow
        );
    }

    #[test]
    fn respects_restricted_availability() {
        let mut b = InstanceBuilder::new();
        b.job(0.0, 1.0);
        b.job(0.0, 1.0);
        b.machine(vec![Some(2.0), None]);
        b.machine(vec![None, Some(2.0)]);
        let inst = b.build().unwrap();
        let res = simulate(&inst, &mut OfflineAdapt::new()).unwrap();
        assert!((res.completions[0] - 2.0).abs() < 1e-4);
        assert!((res.completions[1] - 2.0).abs() < 1e-4);
    }
}
