//! The paper's proposal (§5): an **online adaptation of the offline
//! algorithm**, "enhanced by a simple preemption scheme".
//!
//! At every event the policy re-solves the offline divisible
//! max-weighted-flow problem restricted to the jobs currently in the
//! system (their *remaining* work) while accounting for the time they
//! have already spent waiting:
//!
//! 1. binary-search the smallest feasible objective `F` such that the
//!    deadline windows `[now, r_j + F/w_j]` admit a divisible schedule of
//!    the remaining work (the probe is the paper's System (2), built by
//!    `dlflow-core`);
//! 2. take the first time interval of the feasible schedule and convert
//!    its fractions `α⁽⁰⁾ᵢⱼ` into machine shares;
//! 3. follow those rates until the next event (arrival/completion), then
//!    re-plan. Divisibility makes preemption and migration free.
//!
//! The policy never sees a closed instance: the sub-problem is built from
//! the active set the engine hands to `plan`, so it works unchanged on
//! open-arrival traces.

use crate::engine::{ActiveJob, ActiveSet, Allocation, JobView, OnlineScheduler};
use dlflow_core::instance::{Cost, Instance, Job};
use dlflow_core::lp_build::build_deadline_lp;
use dlflow_lp::solve;

/// Weight floor used when a zero-weight job reaches the deadline maths
/// (the streaming path does not forbid zero weights; treat them as
/// "almost irrelevant" rather than dividing by zero).
const MIN_WEIGHT: f64 = 1e-12;

/// Rates cached by the re-solve throttle (see
/// [`OfflineAdapt::min_resolve_interval`]).
struct PlanCache {
    /// Time of the last full re-solve.
    solved_at: f64,
    /// Job ids that were active at the last re-solve (sorted).
    known: Vec<usize>,
    /// The sparse rate allocation the re-solve produced.
    alloc: Allocation,
}

/// Online adaptation of the offline divisible optimum.
pub struct OfflineAdapt {
    /// Bisection iterations (each one LP feasibility solve).
    pub bisection_iters: usize,
    /// Re-solve throttle: minimum simulated time between two full
    /// bisection+LP re-solves. `0.0` (the default) re-solves at every
    /// event, as §5 describes. With a positive interval, events inside
    /// the window reuse the last solve's rates (masked to still-active
    /// jobs) — unless a *new* job has arrived since, or the cached rates
    /// would leave every active job idle, both of which force a re-solve.
    /// This trades optimality for plan cost: the knob the campaign's
    /// `ola throttle=τ` scheduler spec sweeps.
    pub min_resolve_interval: f64,
    /// Number of full re-solves performed since the last `reset`
    /// (readable after a run to observe the throttle's effect).
    pub n_resolves: usize,
    cache: Option<PlanCache>,
    /// Platform availability mask (empty = all machines in service).
    up: Vec<bool>,
    /// Recycled materialization buffer: the LP sub-problem builder works
    /// over owned [`ActiveJob`]s, so `plan` copies the borrowed
    /// [`ActiveSet`] columns here before solving.
    jobs_buf: Vec<ActiveJob>,
}

impl Default for OfflineAdapt {
    fn default() -> Self {
        OfflineAdapt {
            bisection_iters: 40,
            min_resolve_interval: 0.0,
            n_resolves: 0,
            cache: None,
            up: Vec::new(),
            jobs_buf: Vec::new(),
        }
    }
}

impl OfflineAdapt {
    /// Fresh policy with default precision.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fresh policy that re-solves at most once per `interval` of
    /// simulated time (see [`Self::min_resolve_interval`]).
    pub fn with_throttle(interval: f64) -> Self {
        assert!(interval >= 0.0, "throttle interval must be non-negative");
        OfflineAdapt {
            min_resolve_interval: interval,
            ..Self::default()
        }
    }

    /// Attempts to serve `plan` from the cache: permitted only when the
    /// throttle window is open, no unknown job is active, and the reused
    /// plan's next projected completion still lands inside the window.
    /// The last condition is load-bearing: the engine only calls `plan`
    /// at events, so a cached plan that trickles a job along at a tiny
    /// first-interval rate would otherwise stay in force until that
    /// job's (arbitrarily distant) completion — the re-solve budget must
    /// bound *simulated time between solves*, not just be checked when
    /// an event happens to occur.
    fn cached_plan(&self, now: f64, active: &[ActiveJob], n_machines: usize) -> Option<Allocation> {
        if self.min_resolve_interval <= 0.0 {
            return None;
        }
        let cache = self.cache.as_ref()?;
        if now - cache.solved_at >= self.min_resolve_interval {
            return None;
        }
        if active
            .iter()
            .any(|a| cache.known.binary_search(&a.id).is_err())
        {
            return None; // a new arrival always warrants a fresh solve
        }
        let mut alloc = Allocation::idle(n_machines);
        for i in 0..n_machines {
            for a in active {
                let r = cache.alloc.share(i, a.id);
                if r > 0.0 {
                    alloc.set(i, a.id, r);
                }
            }
        }
        // Project the next completion under the reused rates; reuse only
        // if it arrives before the throttle window closes.
        let mut next_completion = f64::INFINITY;
        for a in active {
            let mut rate = 0.0;
            for i in 0..n_machines {
                let share = alloc.share(i, a.id);
                if share > 0.0 {
                    // A cached rate on an illegal pair means the cache is
                    // corrupt; discard it and force a fresh solve.
                    let c = a.cost(i)?;
                    if c <= 1e-12 {
                        rate = f64::INFINITY;
                    } else {
                        rate += share / c;
                    }
                }
            }
            if rate > 0.0 {
                let t = if rate.is_infinite() {
                    now
                } else {
                    now + a.remaining / rate
                };
                next_completion = next_completion.min(t);
            }
        }
        (next_completion <= cache.solved_at + self.min_resolve_interval).then_some(alloc)
    }

    /// Whether machine `i` is in service under the current mask.
    fn live(&self, i: usize) -> bool {
        self.up.is_empty() || self.up[i]
    }

    /// Builds the *remaining-work* sub-instance at time `now`: one job per
    /// active job with cost `remaining · c[i][j]` and release `now`. Dead
    /// machines contribute an all-`Infinite` cost row, so the LP plans over
    /// live machines only. Returns `None` when some active job runs on no
    /// live machine — the caller falls back to planning the placeable
    /// subset (or idles until a recovery event).
    fn sub_instance(
        &self,
        now: f64,
        active: &[ActiveJob],
        n_machines: usize,
    ) -> Option<Instance<f64>> {
        let jobs: Vec<Job<f64>> = active
            .iter()
            .map(|a| Job {
                release: now,
                weight: a.weight.max(MIN_WEIGHT),
                name: format!("J{}", a.id + 1), // dlflint:allow(alloc-in-hot-loop, "sub-instance construction is the cost of a re-solve, already throttled by min_resolve_interval")
            })
            .collect(); // dlflint:allow(alloc-in-hot-loop, "sub-instance construction is the cost of a re-solve, already throttled by min_resolve_interval")
        let cost: Vec<Vec<Cost<f64>>> = (0..n_machines)
            .map(|i| {
                active
                    .iter()
                    .map(|a| match a.cost(i) {
                        Some(c) if self.live(i) => Cost::Finite(a.remaining * c),
                        _ => Cost::Infinite,
                    })
                    .collect() // dlflint:allow(alloc-in-hot-loop, "sub-instance construction is the cost of a re-solve, already throttled by min_resolve_interval")
            })
            .collect(); // dlflint:allow(alloc-in-hot-loop, "sub-instance construction is the cost of a re-solve, already throttled by min_resolve_interval")
        Instance::new(jobs, cost).ok()
    }

    /// Deadlines induced by objective `F`, measured from the **original**
    /// releases (so jobs that have waited longer get tighter windows),
    /// clamped to `now` (a deadline in the past means `F` is infeasible,
    /// expressed as an empty window).
    fn deadlines(&self, now: f64, f: f64, active: &[ActiveJob]) -> Vec<f64> {
        active
            .iter()
            .map(|a| {
                (a.release + f / a.weight.max(MIN_WEIGHT)).max(now - 1.0) // < now ⇒ infeasible window
            })
            .collect() // dlflint:allow(alloc-in-hot-loop, "one deadline row per bisection probe, bounded by bisection_iters")
    }
}

impl OnlineScheduler for OfflineAdapt {
    fn name(&self) -> String {
        // Every non-default knob appears in the name: campaign reports
        // derive their column labels (and duplicate detection) from it.
        let mut knobs = Vec::new();
        if self.min_resolve_interval > 0.0 {
            knobs.push(format!("t={}", self.min_resolve_interval));
        }
        if self.bisection_iters != OfflineAdapt::default().bisection_iters {
            knobs.push(format!("b={}", self.bisection_iters));
        }
        if knobs.is_empty() {
            "OLA".into()
        } else {
            format!("OLA({})", knobs.join(","))
        }
    }

    fn reset(&mut self) {
        self.cache = None;
        self.n_resolves = 0;
        self.up.clear();
    }

    fn on_arrival(&mut self, _now: f64, _job: JobView<'_>) {
        // Arrivals invalidate the cache implicitly: `plan` compares the
        // active-job id set against `cache.known` before reuse.
    }

    fn on_completion(&mut self, _now: f64, job_id: usize) {
        // Cached rates for a finished job must not leak into reuse
        // projections (they are masked anyway, but dropping the id keeps
        // the cache honest about what it knows).
        if let Some(cache) = &mut self.cache {
            if let Ok(k) = cache.known.binary_search(&job_id) {
                cache.known.remove(k);
            }
        }
    }

    fn on_platform_change(&mut self, _now: f64, up: &[bool]) {
        self.up.clear();
        self.up.extend_from_slice(up);
        // A cached plan may grant shares on a machine that just died (or
        // ignore one that just recovered): always rebuild the LP over the
        // current live set.
        self.cache = None;
    }

    fn snapshot_state(&self) -> String {
        let mut s = format!("n_resolves {}\n", self.n_resolves);
        if let Some(cache) = &self.cache {
            s.push_str(&format!("solved_at {:016x}\n", cache.solved_at.to_bits()));
            s.push_str("known");
            for id in &cache.known {
                s.push_str(&format!(" {id}"));
            }
            s.push('\n');
            s.push_str(&format!("alloc {}\n", cache.alloc.n_machines()));
            for i in 0..cache.alloc.n_machines() {
                s.push_str("row");
                for (job, share) in cache.alloc.entries(i) {
                    s.push_str(&format!(" {job}:{:016x}", share.to_bits()));
                }
                s.push('\n');
            }
        }
        s
    }

    fn restore_state(&mut self, state: &str) -> Result<(), String> {
        let mut lines = state.lines();
        let head = lines.next().ok_or("OLA state: missing n_resolves line")?;
        self.n_resolves = head
            .strip_prefix("n_resolves ")
            .and_then(|v| v.parse().ok())
            .ok_or("OLA state: bad n_resolves line")?;
        self.cache = None;
        let Some(line) = lines.next() else {
            return Ok(());
        };
        let solved_at = line
            .strip_prefix("solved_at ")
            .and_then(|v| u64::from_str_radix(v, 16).ok())
            .map(f64::from_bits)
            .ok_or("OLA state: bad solved_at line")?;
        let line = lines.next().ok_or("OLA state: missing known line")?;
        let mut toks = line.split_whitespace();
        if toks.next() != Some("known") {
            return Err("OLA state: bad known line".into());
        }
        let mut known = Vec::new();
        for tok in toks {
            known.push(tok.parse().map_err(|_| "OLA state: bad known id")?);
        }
        let line = lines.next().ok_or("OLA state: missing alloc line")?;
        let n: usize = line
            .strip_prefix("alloc ")
            .and_then(|v| v.parse().ok())
            .ok_or("OLA state: bad alloc line")?;
        let mut alloc = Allocation::idle(n);
        for i in 0..n {
            let line = lines.next().ok_or("OLA state: missing alloc row")?;
            let mut toks = line.split_whitespace();
            if toks.next() != Some("row") {
                return Err("OLA state: bad alloc row".into());
            }
            for tok in toks {
                let (job, bits) = tok.split_once(':').ok_or("OLA state: bad alloc pair")?;
                let job = job.parse().map_err(|_| "OLA state: bad alloc job")?;
                let bits =
                    u64::from_str_radix(bits, 16).map_err(|_| "OLA state: bad alloc share")?;
                alloc.set(i, job, f64::from_bits(bits));
            }
        }
        self.cache = Some(PlanCache {
            solved_at,
            known,
            alloc,
        });
        Ok(())
    }

    fn plan(&mut self, now: f64, active: &ActiveSet<'_>, alloc: &mut Allocation) {
        let n_machines = alloc.n_machines();
        if active.is_empty() {
            return;
        }
        // Materialize the borrowed columns into owned jobs for the LP
        // builder. OLA's cost per plan is an LP solve; the copy is noise
        // next to it, and the buffer is recycled across events.
        let mut jobs = std::mem::take(&mut self.jobs_buf);
        jobs.clear();
        for a in active.iter() {
            jobs.push(ActiveJob {
                id: a.id,
                remaining: a.remaining,
                release: a.release,
                weight: a.weight,
                costs: a.costs().to_vec().into_boxed_slice(), // dlflint:allow(alloc-in-hot-loop, "owned cost row feeds the LP sub-instance; a re-solve dwarfs the copy")
                fastest: a.fastest_cost(),
            });
        }
        let result = self.plan_impl(now, &jobs, n_machines);
        self.jobs_buf = jobs;
        for i in 0..n_machines {
            for (job, share) in result.entries(i) {
                alloc.set(i, *job, *share);
            }
        }
    }
}

impl OfflineAdapt {
    /// The solve proper, over owned jobs (also the degraded-path
    /// recursion target, which plans a filtered subset).
    fn plan_impl(&mut self, now: f64, active: &[ActiveJob], n_machines: usize) -> Allocation {
        if active.is_empty() {
            return Allocation::idle(n_machines);
        }
        if let Some(alloc) = self.cached_plan(now, active, n_machines) {
            return alloc;
        }
        let Some(sub) = self.sub_instance(now, active, n_machines) else {
            // Some active job runs on no *live* machine: plan the placeable
            // subset instead of stranding everyone. One level of recursion
            // suffices — every placeable job has a live finite-cost machine,
            // so the inner `sub_instance` cannot fail.
            let placeable: Vec<ActiveJob> = active
                .iter()
                .filter(|a| (0..n_machines).any(|i| self.live(i) && a.cost(i).is_some()))
                .cloned()
                .collect(); // dlflint:allow(alloc-in-hot-loop, "only on the degraded no-live-machine path, bounded by platform events")
            if placeable.is_empty() {
                return Allocation::idle(n_machines);
            }
            return self.plan_impl(now, &placeable, n_machines);
        };

        // Feasibility probe for a candidate objective value.
        let probe = |f: f64| -> bool {
            let d = self.deadlines(now, f, active);
            if d.iter().any(|&dj| dj <= now) {
                return false;
            }
            let built = build_deadline_lp(&sub, &d, false);
            solve(&built.lp).is_optimal()
        };

        // Bracket the optimum. Lower bound: flow already incurred.
        let mut lo = active
            .iter()
            .map(|a| a.weight * (now - a.release))
            .fold(0.0f64, f64::max);
        // Upper bound: serialize everything on fastest machines.
        let total_serial: f64 = (0..active.len()).map(|k| sub.fastest_cost(k)).sum();
        let mut hi = active
            .iter()
            .map(|a| a.weight.max(MIN_WEIGHT) * (now + total_serial - a.release))
            .fold(lo, f64::max)
            .max(lo + 1.0)
            * (1.0 + 1e-9)
            + 1e-6;
        debug_assert!(probe(hi), "upper bound must be feasible");

        for _ in 0..self.bisection_iters {
            let mid = 0.5 * (lo + hi);
            if probe(mid) {
                hi = mid;
            } else {
                lo = mid;
            }
        }

        // Final solve at the feasible end of the bracket.
        let d = self.deadlines(now, hi, active);
        let built = build_deadline_lp(&sub, &d, false);
        let sol = solve(&built.lp);
        debug_assert!(sol.is_optimal());
        self.n_resolves += 1;

        // First-interval rates: α⁽⁰⁾ᵢⱼ · c'ᵢⱼ is the time machine i spends
        // on job j within the interval; divided by the interval length it
        // is the machine share.
        let mut alloc = Allocation::idle(n_machines);
        if built.intervals.n_intervals() == 0 {
            return alloc;
        }
        let len0 = built.intervals.len(0);
        if len0 <= 0.0 {
            return alloc;
        }
        for (t, i, k, v) in &built.alpha {
            if *t != 0 {
                continue;
            }
            let frac = sol.values[v.index()];
            if frac <= 1e-12 {
                continue;
            }
            // The LP never grants share on an illegal pair; skip rather
            // than panic if a solver artefact ever does.
            let Some(&c_sub) = sub.cost(*i, *k).finite() else {
                continue;
            };
            let share = (frac * c_sub / len0).min(1.0);
            alloc.add(*i, active[*k].id, share);
        }
        // Normalize any machine marginally over 1 from float noise.
        for i in 0..n_machines {
            let total = alloc.machine_total(i);
            if total > 1.0 {
                alloc.scale_machine(i, 1.0 / total);
            }
        }
        if self.min_resolve_interval > 0.0 {
            let mut known: Vec<usize> = active.iter().map(|a| a.id).collect(); // dlflint:allow(alloc-in-hot-loop, "cache key built once per re-solve, not per event")
            known.sort_unstable();
            self.cache = Some(PlanCache {
                solved_at: now,
                known,
                alloc: alloc.clone(), // dlflint:allow(alloc-in-hot-loop, "cache retains the plan; cloning is the price of replaying it on throttled events")
            });
        }
        alloc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{simulate, Engine, JobSpec, RunMetrics};
    use crate::schedulers::mct::Mct;
    use dlflow_core::instance::InstanceBuilder;

    #[test]
    fn splits_divisible_job_across_machines() {
        let mut b = InstanceBuilder::new();
        b.job(0.0, 1.0);
        b.machine(vec![Some(4.0)]);
        b.machine(vec![Some(4.0)]);
        let inst = b.build().unwrap();
        let res = simulate(&inst, &mut OfflineAdapt::new()).unwrap();
        // Divisible optimum: both machines half each → done at 2.
        assert!(
            (res.completions[0] - 2.0).abs() < 1e-4,
            "got {}",
            res.completions[0]
        );
    }

    #[test]
    fn single_job_completes_at_processing_time() {
        let mut b = InstanceBuilder::new();
        b.job(1.0, 2.0);
        b.machine(vec![Some(3.0)]);
        let inst = b.build().unwrap();
        let res = simulate(&inst, &mut OfflineAdapt::new()).unwrap();
        assert!((res.completions[0] - 4.0).abs() < 1e-4);
    }

    #[test]
    fn beats_mct_on_weighted_instance() {
        // Heavy job arrives while a light long job monopolizes the only
        // fast machine under MCT; OLA preempts/splits.
        let mut b = InstanceBuilder::new();
        b.job(0.0, 1.0); // light, long (10 on M0)
        b.job(1.0, 10.0); // heavy, short (2 on M0), slow elsewhere
        b.machine(vec![Some(10.0), Some(2.0)]);
        b.machine(vec![Some(30.0), Some(20.0)]);
        let inst = b.build().unwrap();
        let mct = simulate(&inst, &mut Mct::new()).unwrap();
        let ola = simulate(&inst, &mut OfflineAdapt::new()).unwrap();
        let m_mct = RunMetrics::from_completions(&inst, &mct.completions);
        let m_ola = RunMetrics::from_completions(&inst, &ola.completions);
        assert!(
            m_ola.max_weighted_flow < m_mct.max_weighted_flow,
            "OLA {} should beat MCT {}",
            m_ola.max_weighted_flow,
            m_mct.max_weighted_flow
        );
    }

    #[test]
    fn throttled_ola_resolves_less_and_still_completes() {
        use crate::workload::{generate, WorkloadSpec};
        let inst = generate(&WorkloadSpec {
            n_jobs: 8,
            n_machines: 3,
            mean_interarrival: 1.0,
            seed: 11,
            ..Default::default()
        });

        let mut eager = OfflineAdapt::new();
        let res_eager = simulate(&inst, &mut eager).unwrap();
        assert!(res_eager.completions.iter().all(|c| c.is_finite()));

        let mut lazy = OfflineAdapt::with_throttle(1.0e6); // effectively "never re-solve on completions"
        let res_lazy = simulate(&inst, &mut lazy).unwrap();
        assert!(res_lazy.completions.iter().all(|c| c.is_finite()));

        assert!(
            lazy.n_resolves < eager.n_resolves,
            "throttle must cut re-solves: {} vs {}",
            lazy.n_resolves,
            eager.n_resolves
        );
        // Every arrival still forces a solve, so the floor is one per
        // distinct arrival burst.
        assert!(lazy.n_resolves >= 1);

        // The throttled policy pays an optimality price but remains a
        // valid, completing policy.
        let m_eager = RunMetrics::from_completions(&inst, &res_eager.completions);
        let m_lazy = RunMetrics::from_completions(&inst, &res_lazy.completions);
        assert!(m_lazy.max_weighted_flow >= m_eager.max_weighted_flow * 0.999);
    }

    #[test]
    fn zero_throttle_is_the_default_eager_policy() {
        let mut b = InstanceBuilder::new();
        b.job(0.0, 1.0);
        b.job(1.0, 1.0);
        b.machine(vec![Some(4.0), Some(4.0)]);
        let inst = b.build().unwrap();
        let mut a = OfflineAdapt::new();
        let mut b2 = OfflineAdapt::with_throttle(0.0);
        let ra = simulate(&inst, &mut a).unwrap();
        let rb = simulate(&inst, &mut b2).unwrap();
        assert_eq!(ra.completions, rb.completions);
        assert_eq!(a.n_resolves, b2.n_resolves);
    }

    #[test]
    fn respects_restricted_availability() {
        let mut b = InstanceBuilder::new();
        b.job(0.0, 1.0);
        b.job(0.0, 1.0);
        b.machine(vec![Some(2.0), None]);
        b.machine(vec![None, Some(2.0)]);
        let inst = b.build().unwrap();
        let res = simulate(&inst, &mut OfflineAdapt::new()).unwrap();
        assert!((res.completions[0] - 2.0).abs() < 1e-4);
        assert!((res.completions[1] - 2.0).abs() < 1e-4);
    }

    #[test]
    fn zero_weight_job_does_not_break_the_lp_path() {
        // The streaming engine allows weight 0; OLA clamps it to a floor
        // instead of building an invalid sub-instance or dividing by 0.
        let mut eng = Engine::new(2);
        let mut ola = OfflineAdapt::new();
        eng.push_arrival(JobSpec {
            release: 0.0,
            weight: 0.0,
            costs: vec![4.0, 4.0],
        })
        .unwrap();
        eng.push_arrival(JobSpec {
            release: 1.0,
            weight: 2.0,
            costs: vec![2.0, f64::INFINITY],
        })
        .unwrap();
        eng.drain(&mut ola).unwrap();
        assert_eq!(eng.n_completed(), 2);
        assert!(eng.metrics().makespan.is_finite());
    }
}
