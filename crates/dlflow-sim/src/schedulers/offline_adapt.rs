//! The paper's proposal (§5): an **online adaptation of the offline
//! algorithm**, "enhanced by a simple preemption scheme".
//!
//! At every event the policy re-solves the offline divisible
//! max-weighted-flow problem restricted to the jobs currently in the
//! system (their *remaining* work) while accounting for the time they
//! have already spent waiting:
//!
//! 1. binary-search the smallest feasible objective `F` such that the
//!    deadline windows `[now, r_j + F/w_j]` admit a divisible schedule of
//!    the remaining work (the probe is the paper's System (2), built by
//!    `dlflow-core`);
//! 2. take the first time interval of the feasible schedule and convert
//!    its fractions `α⁽⁰⁾ᵢⱼ` into machine shares;
//! 3. follow those rates until the next event (arrival/completion), then
//!    re-plan. Divisibility makes preemption and migration free.
//!
//! The policy never sees a closed instance: the sub-problem is built from
//! the active set the engine hands to `plan`, so it works unchanged on
//! open-arrival traces.
//!
//! # Incremental re-solves
//!
//! Re-solving at every event is the paper's accuracy story and this
//! module's cost story. The per-event work is dominated by the
//! bisection's LP feasibility probes, and two facts make most of them
//! cheap:
//!
//! * probes of one sub-problem share a **shape-stable** LP form
//!   ([`build_deadline_probe_lp`]); within a bracket segment they share
//!   every *coefficient* and differ only in RHS, so a [`ProbeCache`]
//!   retains the realized tableau between probes and re-solves by a
//!   pure RHS patch plus a handful of dual-simplex pivots — no basis
//!   re-realization at all on the common path;
//! * the sub-problem itself changes *incrementally* between events —
//!   a completion blanks a job column, an arrival appends one — so the
//!   last basis of the previous event carries across the active-set
//!   churn via [`WarmBasis::remap`] + [`probe_var_remap`], seeding the
//!   cache's first re-realization of the new shape.
//!
//! Warm starting must not change behaviour, only cost: the committed
//! campaign goldens pin this policy's output bit-for-bit, so every
//! probe verdict must equal what the legacy computation (filtered
//! builder + cold solve) would have said. A warm simplex solve follows
//! a different pivot path than a cold one, so the bisection runs the
//! warm path only behind a stack of guards and falls back to the exact
//! legacy computation everywhere else:
//!
//! * a warm *feasible* verdict is accepted only with a **primal
//!   certificate** in hand ([`certifies`]): a certified feasible point
//!   is true regardless of the pivot path, while an uncertified warm
//!   optimum is recomputed cold — an ill-conditioned basis
//!   re-realization can otherwise corrupt the tableau into claiming
//!   either verdict;
//! * a warm *infeasible* verdict is accepted only when it comes from
//!   the persistent RHS-patch path (exact algebra on a tableau that was
//!   realized once and never re-pivoted from scratch, so no
//!   re-realization corruption risk) **and** refutes feasibility by a
//!   decisive margin ([`dlflow_lp::ProbeSolve::infeasible_margin`] above
//!   `INFEASIBLE_MARGIN_GUARD` × the bracket scale); every other
//!   infeasibility claim — in particular any from a freshly
//!   re-realized basis — is recomputed by the exact legacy path;
//! * sub-problems whose LP entries span more than
//!   `COST_SPREAD_GUARD`⁻¹ in magnitude (a nearly-finished job's
//!   `remaining · c` next to full-size entries) sit the warm path out
//!   entirely: such LPs have been observed to make even the *cold*
//!   solver's verdict pivot-path dependent, and the goldens pin the
//!   cold behaviour, warts and all;
//! * probes whose deadlines nearly coincide with each other or with
//!   `now` (`tol_fragile`) go legacy: admissibility is decided by ±1e-9
//!   tolerance comparisons, and a probe on that boundary can differ
//!   macroscopically between the two LP formulations;
//! * once the bracket shrinks to `(hi − lo) ≤ ``WARM_SAFE_REL_WIDTH``
//!   · hi` the probe sits near the feasibility boundary, where the
//!   verdict is rounding noise — legacy decides.
//!
//! The final rate-extracting solve is always the legacy cold path.
//! Allocations are thus bit-identical to a full cold re-solve
//! ([`ResolveMode::ColdOracle`], the differential-test oracle), which
//! the differential suite and the goldens enforce empirically.

use crate::engine::{ActiveSet, Allocation, JobView, OnlineScheduler, ResolveStats};
use dlflow_core::instance::{Cost, Instance, Job};
use dlflow_core::lp_build::{build_deadline_lp, build_deadline_probe_lp, probe_var_remap};
use dlflow_lp::{certifies, solve, solve_warm, LpStatus, ProbeCache, WarmBasis};
use std::mem;

/// Weight floor used when a zero-weight job reaches the deadline maths
/// (the streaming path does not forbid zero weights; treat them as
/// "almost irrelevant" rather than dividing by zero).
pub(crate) const MIN_WEIGHT: f64 = 1e-12;

/// Relative bracket width below which bisection probes switch from
/// warm shape-stable solves to the exact legacy cold computation.
///
/// Near the feasibility boundary the probe LP's infeasibility margin is
/// smaller than the `f64` simplex tolerances, so the verdict depends on
/// the pivot path taken — a warm start would answer differently than
/// the cold solve the committed goldens pin. How wide that ambiguous
/// band is depends on the LP's geometry (on unit workloads flips appear
/// below ~5·10⁻⁹ relative width; on chaos workloads, where a binding
/// constraint can respond weakly to the deadlines being bisected, up to
/// ~1·10⁻⁶), so the cutoff carries a 100× margin over the widest flip
/// observed — and the campaign goldens plus the differential tests in
/// `ola_differential.rs` enforce the equivalence empirically across
/// seeds, fault intensities and interruption points.
const WARM_SAFE_REL_WIDTH: f64 = 1e-4;

/// Minimum ratio between the smallest and largest finite LP cost entry
/// of a sub-problem for warm probes to engage (see the conditioning
/// guard in `plan_impl`). Six orders of magnitude of column spread is
/// where the f64 simplex's verdicts were observed to stop being
/// pivot-path independent.
const COST_SPREAD_GUARD: f64 = 1e-6;

/// Minimum decisive infeasibility margin, relative to the bracket's
/// upper bound, for a persistent-path infeasible verdict to be served
/// warm (see the module docs). The margin is the most negative basic
/// value of the dual-terminal tableau — how far, in work units, the
/// probe overshoots some capacity row. The RHS-patch path accumulates
/// only one rounding error per patched row per probe, so a margin
/// orders of magnitude above f64 noise at the problem's scale cannot be
/// a pivot-path artefact; anything smaller is recomputed cold. Shared
/// with [`crate::schedulers::ola_lite::OlaLite`]'s walk probes.
pub(crate) const INFEASIBLE_MARGIN_GUARD: f64 = 1e-6;

/// How [`OfflineAdapt`] runs its per-event LP re-solves.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ResolveMode {
    /// Warm-started shape-stable probes outside the solver's tolerance
    /// band, the exact legacy computation inside it (the default).
    /// Bit-identical to [`ResolveMode::ColdOracle`] by construction.
    #[default]
    WarmIncremental,
    /// Every probe and the final solve run from scratch exactly as the
    /// pre-warm implementation did. This is the differential-test
    /// oracle and the bench baseline; it exists to *prove* the warm
    /// path is a pure perf change.
    ColdOracle,
}

/// Rates cached by the re-solve throttle (see
/// [`OfflineAdapt::min_resolve_interval`]).
struct PlanCache {
    /// Time of the last full re-solve.
    solved_at: f64,
    /// Job ids that were active at the last re-solve (sorted).
    known: Vec<usize>,
    /// The sparse rate allocation the re-solve produced.
    alloc: Allocation,
}

/// Column-major scratch copy of the active set: `plan` refreshes these
/// flat buffers from the borrowed [`ActiveSet`] instead of materializing
/// per-job structs (and per-job cost boxes) at every event.
#[derive(Debug, Default)]
pub(crate) struct JobCols {
    pub(crate) n_machines: usize,
    pub(crate) ids: Vec<usize>,
    pub(crate) remaining: Vec<f64>,
    pub(crate) release: Vec<f64>,
    pub(crate) weight: Vec<f64>,
    /// Job-major raw cost rows (`f64::INFINITY` = unavailable).
    pub(crate) costs: Vec<f64>,
}

impl JobCols {
    pub(crate) fn n(&self) -> usize {
        self.ids.len()
    }

    pub(crate) fn fill(&mut self, active: &ActiveSet<'_>) {
        self.n_machines = active.n_machines();
        self.ids.clear();
        self.remaining.clear();
        self.release.clear();
        self.weight.clear();
        self.costs.clear();
        for a in active.iter() {
            self.ids.push(a.id);
            self.remaining.push(a.remaining);
            self.release.push(a.release);
            self.weight.push(a.weight);
            self.costs.extend_from_slice(a.costs());
        }
    }

    /// Processing cost of job `k` on machine `i`, `None` when absent.
    pub(crate) fn cost(&self, i: usize, k: usize) -> Option<f64> {
        let c = self.costs[k * self.n_machines + i];
        c.is_finite().then_some(c)
    }

    /// Drops every job column for which `keep` is false, preserving order.
    pub(crate) fn retain_by<F: Fn(&Self, usize) -> bool>(&mut self, keep: F) {
        let m = self.n_machines;
        let mut w = 0;
        for k in 0..self.n() {
            if keep(self, k) {
                if w != k {
                    self.ids[w] = self.ids[k];
                    self.remaining[w] = self.remaining[k];
                    self.release[w] = self.release[k];
                    self.weight[w] = self.weight[k];
                    self.costs.copy_within(k * m..(k + 1) * m, w * m);
                }
                w += 1;
            }
        }
        self.ids.truncate(w);
        self.remaining.truncate(w);
        self.release.truncate(w);
        self.weight.truncate(w);
        self.costs.truncate(w * m);
    }

    /// Column of the job with engine id `id`, if present.
    pub(crate) fn position_of(&self, id: usize) -> Option<usize> {
        self.ids.iter().position(|&x| x == id)
    }
}

/// Retired sub-instance buffers (jobs, cost matrix) handed back for
/// recycling into the next event's sub-instance build.
pub(crate) type SubBuffers = (Vec<Job<f64>>, Vec<Vec<Cost<f64>>>);

/// Cross-event warm-basis carry: remembers the sub-instance shape and
/// probe basis an event ended with, and remaps that basis onto the next
/// event's (job-churned) LP shape. Shared by [`OfflineAdapt`] and
/// [`crate::schedulers::ola_lite::OlaLite`].
#[derive(Debug, Default)]
pub(crate) struct WarmChain {
    /// Last optimal probe basis, if any.
    basis: Option<WarmBasis>,
    /// Sub-instance the carried basis was captured on.
    prev_sub: Option<Instance<f64>>,
    /// Engine job ids of `prev_sub`'s columns, in column order.
    prev_ids: Vec<usize>,
    /// Recycled old-job → new-column map.
    map_buf: Vec<Option<usize>>,
}

impl WarmChain {
    /// Produces the `(basis, var_map)` pair to [`WarmBasis::remap`] onto
    /// the event's first probe LP, consuming the carried basis. Returns
    /// `None` (fresh start) when nothing was carried or the platform
    /// shape changed.
    pub(crate) fn carry_in(
        &mut self,
        sub: &Instance<f64>,
        cols: &JobCols,
        n_machines: usize,
    ) -> Option<(WarmBasis, Vec<Option<usize>>)> {
        let stale = self.basis.take();
        let mut job_map = mem::take(&mut self.map_buf);
        let mut pending = None;
        if let (Some(prev), Some(basis)) = (self.prev_sub.as_ref(), stale) {
            if prev.n_machines() == n_machines && self.prev_ids.len() == prev.n_jobs() {
                job_map.clear();
                for &pid in &self.prev_ids {
                    job_map.push(cols.position_of(pid));
                }
                let var_map = probe_var_remap(prev, sub, &job_map);
                pending = Some((basis, var_map));
            }
        }
        job_map.clear();
        self.map_buf = job_map;
        pending
    }

    /// Retires an event: stores its last probe basis and sub-instance
    /// shape for the next event, and hands back the previous shape's
    /// buffers for recycling.
    pub(crate) fn carry_out(
        &mut self,
        basis: Option<WarmBasis>,
        sub: Instance<f64>,
        cols: &JobCols,
    ) -> Option<SubBuffers> {
        self.basis = basis;
        self.prev_ids.clear();
        self.prev_ids.extend_from_slice(&cols.ids);
        self.prev_sub.replace(sub).map(Instance::into_parts)
    }

    /// Drops all carried state (reset, restore, platform change).
    pub(crate) fn clear(&mut self) {
        self.basis = None;
        self.prev_sub = None;
        self.prev_ids.clear();
    }
}

/// Online adaptation of the offline divisible optimum.
pub struct OfflineAdapt {
    /// Bisection iterations (each one LP feasibility solve).
    pub bisection_iters: usize,
    /// Re-solve throttle: minimum simulated time between two full
    /// bisection+LP re-solves. `0.0` (the default) re-solves at every
    /// event, as §5 describes — warm-started probes keep the eager mode
    /// affordable. With a positive interval, events inside the window
    /// reuse the last solve's rates (masked to still-active jobs) —
    /// unless a *new* job has arrived since, or the cached rates would
    /// leave every active job idle, both of which force a re-solve.
    /// This trades optimality for plan cost: the knob the campaign's
    /// `ola throttle=τ` scheduler spec sweeps.
    pub min_resolve_interval: f64,
    /// Probe execution strategy (warm hybrid vs the cold oracle).
    pub resolve_mode: ResolveMode,
    /// Number of full re-solves performed since the last `reset`
    /// (readable after a run to observe the throttle's effect).
    pub n_resolves: usize,
    /// LP solves served by warm-basis reuse since the last `reset`.
    warm_lp_solves: usize,
    /// LP solves performed from scratch since the last `reset`.
    cold_lp_solves: usize,
    /// Re-plans in which ≥1 probe was served warm / none was.
    warm_resolves: usize,
    cold_resolves: usize,
    cache: Option<PlanCache>,
    /// Platform availability mask (empty = all machines in service).
    up: Vec<bool>,
    /// Scratch copy of the active set, refreshed per event.
    scratch: JobCols,
    /// Recycled job/cost-matrix buffers for the LP sub-instance (the
    /// previous-but-one sub-instance's allocations, rotated back in).
    sub_recycle: SubBuffers,
    /// Recycled deadline vector (one slot per selected job).
    d_buf: Vec<f64>,
    /// Cross-event warm-basis carry.
    chain: WarmChain,
    /// Persistent probe factorization (retained tableau + RHS-patch
    /// re-solves) for the bisection's shape-stable probes.
    probe: ProbeCache<f64>,
}

impl Default for OfflineAdapt {
    fn default() -> Self {
        OfflineAdapt {
            bisection_iters: 40,
            min_resolve_interval: 0.0,
            resolve_mode: ResolveMode::default(),
            n_resolves: 0,
            warm_lp_solves: 0,
            cold_lp_solves: 0,
            warm_resolves: 0,
            cold_resolves: 0,
            cache: None,
            up: Vec::new(),
            scratch: JobCols::default(),
            sub_recycle: (Vec::new(), Vec::new()),
            d_buf: Vec::new(),
            chain: WarmChain::default(),
            probe: ProbeCache::new(),
        }
    }
}

impl OfflineAdapt {
    /// Fresh policy with default precision.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fresh policy that re-solves at most once per `interval` of
    /// simulated time (see [`Self::min_resolve_interval`]).
    pub fn with_throttle(interval: f64) -> Self {
        assert!(interval >= 0.0, "throttle interval must be non-negative");
        OfflineAdapt {
            min_resolve_interval: interval,
            ..Self::default()
        }
    }

    /// Fresh policy in [`ResolveMode::ColdOracle`]: every LP from
    /// scratch, exactly the pre-warm implementation. Used as the
    /// differential-test oracle and the bench baseline.
    pub fn cold_oracle() -> Self {
        OfflineAdapt {
            resolve_mode: ResolveMode::ColdOracle,
            ..Self::default()
        }
    }

    /// Attempts to serve `plan` from the cache: permitted only when the
    /// throttle window is open, no unknown job is active, and the reused
    /// plan's next projected completion still lands inside the window.
    /// The last condition is load-bearing: the engine only calls `plan`
    /// at events, so a cached plan that trickles a job along at a tiny
    /// first-interval rate would otherwise stay in force until that
    /// job's (arbitrarily distant) completion — the re-solve budget must
    /// bound *simulated time between solves*, not just be checked when
    /// an event happens to occur.
    fn cached_plan(&self, now: f64, cols: &JobCols, n_machines: usize) -> Option<Allocation> {
        if self.min_resolve_interval <= 0.0 {
            return None;
        }
        let cache = self.cache.as_ref()?;
        if now - cache.solved_at >= self.min_resolve_interval {
            return None;
        }
        if cols
            .ids
            .iter()
            .any(|id| cache.known.binary_search(id).is_err())
        {
            return None; // a new arrival always warrants a fresh solve
        }
        let mut alloc = Allocation::idle(n_machines);
        for i in 0..n_machines {
            for &id in &cols.ids {
                let r = cache.alloc.share(i, id);
                if r > 0.0 {
                    alloc.set(i, id, r);
                }
            }
        }
        // Project the next completion under the reused rates; reuse only
        // if it arrives before the throttle window closes.
        let mut next_completion = f64::INFINITY;
        for k in 0..cols.n() {
            let mut rate = 0.0;
            for i in 0..n_machines {
                let share = alloc.share(i, cols.ids[k]);
                if share > 0.0 {
                    // A cached rate on an illegal pair means the cache is
                    // corrupt; discard it and force a fresh solve.
                    let c = cols.cost(i, k)?;
                    if c <= 1e-12 {
                        rate = f64::INFINITY;
                    } else {
                        rate += share / c;
                    }
                }
            }
            if rate > 0.0 {
                let t = if rate.is_infinite() {
                    now
                } else {
                    now + cols.remaining[k] / rate
                };
                next_completion = next_completion.min(t);
            }
        }
        (next_completion <= cache.solved_at + self.min_resolve_interval).then_some(alloc)
    }

    /// Whether machine `i` is in service under the current mask.
    fn live(&self, i: usize) -> bool {
        self.up.is_empty() || self.up[i]
    }

    /// Whether job column `k` can run on some live machine.
    fn placeable(&self, cols: &JobCols, k: usize, n_machines: usize) -> bool {
        (0..n_machines).any(|i| self.live(i) && cols.cost(i, k).is_some())
    }
}

/// Coincidence guard for warm probes: `true` when some deadline lands
/// within `TOL_GUARD` of `now` (every sub-job's release) or of another
/// deadline.
///
/// The LP builders decide interval admissibility with tolerance
/// comparisons (±1e-9). When two time points nearly coincide, a probe
/// sits exactly on that decision boundary, the shape-stable and the
/// filtered formulation can disagree *macroscopically* (a whole
/// interval's worth of work admitted by one and not the other), and the
/// verdict becomes unreproducible pivot-path noise — and because a huge
/// weight makes `d = r + F/w` nearly constant in `F`, the coincidence
/// can persist across the entire bisection bracket, so no bracket-width
/// cutoff catches it. Such probes must take the legacy path. The guard
/// is 1000× the comparison tolerance: spurious hits only cost a warm
/// opportunity, misses would cost golden identity.
pub(crate) fn tol_fragile(d: &[f64], now: f64) -> bool {
    const TOL_GUARD: f64 = 1e-6;
    for (j, &dj) in d.iter().enumerate() {
        if (dj - now).abs() <= TOL_GUARD {
            return true;
        }
        if d[..j].iter().any(|&dk| (dj - dk).abs() <= TOL_GUARD) {
            return true;
        }
    }
    false
}

/// Builds the *remaining-work* sub-instance at `now` into recycled
/// buffers: one job per column with cost `remaining · c[i][j]` and
/// release `now`. Dead machines (per the `up` mask; empty = all live)
/// contribute all-`Infinite` rows, so the LP plans over live machines
/// only. `None` only if some column has no live finite machine — callers
/// pre-filter, so that is their bug, not an event.
pub(crate) fn build_sub(
    now: f64,
    cols: &JobCols,
    up: &[bool],
    n_machines: usize,
    recycle: &mut SubBuffers,
) -> Option<Instance<f64>> {
    let (mut jobs, mut cost) = mem::take(recycle);
    jobs.clear();
    for k in 0..cols.n() {
        jobs.push(Job {
            release: now,
            weight: cols.weight[k].max(MIN_WEIGHT),
            name: String::default(), // names are cosmetic; skip the per-job format
        });
    }
    cost.resize_with(n_machines, Default::default);
    cost.truncate(n_machines);
    for (i, row) in cost.iter_mut().enumerate() {
        row.clear();
        let live = up.is_empty() || up[i];
        for k in 0..cols.n() {
            row.push(match cols.cost(i, k) {
                Some(c) if live => Cost::Finite(cols.remaining[k] * c),
                _ => Cost::Infinite,
            });
        }
    }
    Instance::new(jobs, cost).ok()
}

/// Brackets the optimal objective: `lo` is the flow already incurred
/// (any feasible `F` is at least the largest `w·(now − r)`), `hi`
/// serializes all remaining work on each job's fastest machine, padded
/// so it stays feasible under float rounding.
pub(crate) fn bracket(now: f64, cols: &JobCols, sub: &Instance<f64>) -> (f64, f64) {
    let lo = cols
        .weight
        .iter()
        .zip(&cols.release)
        .map(|(&w, &r)| w * (now - r))
        .fold(0.0f64, f64::max);
    let total_serial: f64 = (0..cols.n()).map(|k| sub.fastest_cost(k)).sum();
    let hi = cols
        .weight
        .iter()
        .zip(&cols.release)
        .map(|(&w, &r)| w.max(MIN_WEIGHT) * (now + total_serial - r))
        .fold(lo, f64::max)
        .max(lo + 1.0)
        * (1.0 + 1e-9)
        + 1e-6;
    (lo, hi)
}

/// First-interval rates from a solved deadline LP: α⁽⁰⁾ᵢⱼ · c'ᵢⱼ is the
/// time machine i spends on job j within the interval; divided by the
/// interval length it is the machine share. Returns the allocation and
/// whether the solution produced any usable first interval.
pub(crate) fn first_interval_rates(
    built: &dlflow_core::lp_build::DeadlineLp<f64>,
    sol: &dlflow_lp::LpSolution<f64>,
    sub: &Instance<f64>,
    cols: &JobCols,
    n_machines: usize,
) -> (Allocation, bool) {
    let mut alloc = Allocation::idle(n_machines);
    if built.intervals.n_intervals() == 0 {
        return (alloc, false);
    }
    let len0 = built.intervals.len(0);
    if len0 <= 0.0 {
        return (alloc, false);
    }
    for (t, i, k, v) in &built.alpha {
        if *t != 0 {
            continue;
        }
        let frac = sol.values[v.index()];
        if frac <= 1e-12 {
            continue;
        }
        // The LP never grants share on an illegal pair; skip rather
        // than panic if a solver artefact ever does.
        let Some(&c_sub) = sub.cost(*i, *k).finite() else {
            continue;
        };
        let share = (frac * c_sub / len0).min(1.0);
        alloc.add(*i, cols.ids[*k], share);
    }
    // Normalize any machine marginally over 1 from float noise.
    for i in 0..n_machines {
        let total = alloc.machine_total(i);
        if total > 1.0 {
            alloc.scale_machine(i, 1.0 / total);
        }
    }
    (alloc, true)
}

/// Deadlines induced by objective `F`, measured from the **original**
/// releases (so jobs that have waited longer get tighter windows),
/// clamped to `now` (a deadline in the past means `F` is infeasible,
/// expressed as an empty window). Fills the recycled buffer in place.
pub(crate) fn fill_deadlines(d: &mut Vec<f64>, now: f64, f: f64, cols: &JobCols) {
    d.clear();
    d.extend(
        cols.release
            .iter()
            .zip(&cols.weight)
            .map(|(&r, &w)| (r + f / w.max(MIN_WEIGHT)).max(now - 1.0)), // < now ⇒ infeasible window
    );
}

impl OnlineScheduler for OfflineAdapt {
    fn name(&self) -> String {
        // Every non-default knob appears in the name: campaign reports
        // derive their column labels (and duplicate detection) from it.
        let mut knobs = Vec::new();
        if self.min_resolve_interval > 0.0 {
            knobs.push(format!("t={}", self.min_resolve_interval));
        }
        if self.bisection_iters != OfflineAdapt::default().bisection_iters {
            knobs.push(format!("b={}", self.bisection_iters));
        }
        if self.resolve_mode == ResolveMode::ColdOracle {
            knobs.push("cold".to_string());
        }
        if knobs.is_empty() {
            "OLA".into()
        } else {
            format!("OLA({})", knobs.join(","))
        }
    }

    fn reset(&mut self) {
        self.cache = None;
        self.n_resolves = 0;
        self.warm_lp_solves = 0;
        self.cold_lp_solves = 0;
        self.warm_resolves = 0;
        self.cold_resolves = 0;
        self.up.clear();
        self.chain.clear();
        self.probe.clear();
    }

    fn on_arrival(&mut self, _now: f64, _job: JobView<'_>) {
        // Arrivals invalidate the cache implicitly: `plan` compares the
        // active-job id set against `cache.known` before reuse.
    }

    fn on_completion(&mut self, _now: f64, job_id: usize) {
        // Cached rates for a finished job must not leak into reuse
        // projections (they are masked anyway, but dropping the id keeps
        // the cache honest about what it knows).
        if let Some(cache) = &mut self.cache {
            if let Ok(k) = cache.known.binary_search(&job_id) {
                cache.known.remove(k);
            }
        }
    }

    fn on_platform_change(&mut self, _now: f64, up: &[bool]) {
        self.up.clear();
        self.up.extend_from_slice(up);
        // A cached plan may grant shares on a machine that just died (or
        // ignore one that just recovered): always rebuild the LP over the
        // current live set.
        self.cache = None;
        // The carried basis was captured on the old platform's cost
        // pattern; `probe_var_remap` drops pairs that flipped between
        // finite and infinite, so carrying it across is still sound —
        // but the cheap, obviously-correct move is to rebuild. Platform
        // events are rare next to arrivals/completions.
        self.chain.clear();
        self.probe.clear();
    }

    fn snapshot_state(&self) -> String {
        // The warm basis and the probe cache's retained tableau are
        // deliberately *not* serialized: both are pure pivot-order
        // hints, and the hybrid bisection returns the same verdicts
        // with or without them, so dropping them on restore cannot
        // change allocations — only the warm/cold split of the first
        // post-restore events (telemetry, which restarts at zero).
        let mut s = format!("n_resolves {}\n", self.n_resolves);
        if let Some(cache) = &self.cache {
            s.push_str(&format!("solved_at {:016x}\n", cache.solved_at.to_bits()));
            s.push_str("known");
            for id in &cache.known {
                s.push_str(&format!(" {id}"));
            }
            s.push('\n');
            s.push_str(&format!("alloc {}\n", cache.alloc.n_machines()));
            for i in 0..cache.alloc.n_machines() {
                s.push_str("row");
                for (job, share) in cache.alloc.entries(i) {
                    s.push_str(&format!(" {job}:{:016x}", share.to_bits()));
                }
                s.push('\n');
            }
        }
        s
    }

    fn restore_state(&mut self, state: &str) -> Result<(), String> {
        let mut lines = state.lines();
        let head = lines.next().ok_or("OLA state: missing n_resolves line")?;
        self.n_resolves = head
            .strip_prefix("n_resolves ")
            .and_then(|v| v.parse().ok())
            .ok_or("OLA state: bad n_resolves line")?;
        self.cache = None;
        // Safe-to-drop warm state (see `snapshot_state`).
        self.chain.clear();
        self.probe.clear();
        let Some(line) = lines.next() else {
            return Ok(());
        };
        let solved_at = line
            .strip_prefix("solved_at ")
            .and_then(|v| u64::from_str_radix(v, 16).ok())
            .map(f64::from_bits)
            .ok_or("OLA state: bad solved_at line")?;
        let line = lines.next().ok_or("OLA state: missing known line")?;
        let mut toks = line.split_whitespace();
        if toks.next() != Some("known") {
            return Err("OLA state: bad known line".into());
        }
        let mut known = Vec::new();
        for tok in toks {
            known.push(tok.parse().map_err(|_| "OLA state: bad known id")?);
        }
        let line = lines.next().ok_or("OLA state: missing alloc line")?;
        let n: usize = line
            .strip_prefix("alloc ")
            .and_then(|v| v.parse().ok())
            .ok_or("OLA state: bad alloc line")?;
        let mut alloc = Allocation::idle(n);
        for i in 0..n {
            let line = lines.next().ok_or("OLA state: missing alloc row")?;
            let mut toks = line.split_whitespace();
            if toks.next() != Some("row") {
                return Err("OLA state: bad alloc row".into());
            }
            for tok in toks {
                let (job, bits) = tok.split_once(':').ok_or("OLA state: bad alloc pair")?;
                let job = job.parse().map_err(|_| "OLA state: bad alloc job")?;
                let bits =
                    u64::from_str_radix(bits, 16).map_err(|_| "OLA state: bad alloc share")?;
                alloc.set(i, job, f64::from_bits(bits));
            }
        }
        self.cache = Some(PlanCache {
            solved_at,
            known,
            alloc,
        });
        Ok(())
    }

    fn plan(&mut self, now: f64, active: &ActiveSet<'_>, alloc: &mut Allocation) {
        let n_machines = alloc.n_machines();
        if active.is_empty() {
            return;
        }
        // Refresh the flat scratch copy of the borrowed columns (the LP
        // path needs them beyond this call frame's borrows).
        let mut cols = mem::take(&mut self.scratch);
        cols.fill(active);
        let result = self.plan_impl(now, &mut cols, n_machines);
        self.scratch = cols;
        for i in 0..n_machines {
            for (job, share) in result.entries(i) {
                alloc.set(i, *job, *share);
            }
        }
    }

    fn resolve_stats(&self) -> Option<ResolveStats> {
        Some(ResolveStats {
            n_resolves: self.n_resolves,
            warm_lp_solves: self.warm_lp_solves,
            cold_lp_solves: self.cold_lp_solves,
            warm_resolves: self.warm_resolves,
            cold_resolves: self.cold_resolves,
        })
    }
}

impl OfflineAdapt {
    /// The solve proper, over the scratch columns (which it may filter
    /// down to the placeable subset on the degraded no-live-machine
    /// path).
    fn plan_impl(&mut self, now: f64, cols: &mut JobCols, n_machines: usize) -> Allocation {
        if cols.n() == 0 {
            return Allocation::idle(n_machines);
        }
        if let Some(alloc) = self.cached_plan(now, cols, n_machines) {
            return alloc;
        }
        if (0..cols.n()).any(|k| !self.placeable(cols, k, n_machines)) {
            // Some active job runs on no *live* machine: plan the
            // placeable subset instead of stranding everyone (each
            // survivor has a live finite-cost machine, so the
            // sub-instance below cannot fail).
            let up = mem::take(&mut self.up);
            cols.retain_by(|c, k| {
                (0..n_machines).any(|i| (up.is_empty() || up[i]) && c.cost(i, k).is_some())
            });
            self.up = up;
            if cols.n() == 0 {
                return Allocation::idle(n_machines);
            }
            // Mirror of the pre-filter check: the cache may cover the
            // placeable subset even when an unplaceable newcomer made
            // the full set a miss.
            if let Some(alloc) = self.cached_plan(now, cols, n_machines) {
                return alloc;
            }
        }

        let Some(sub) = build_sub(now, cols, &self.up, n_machines, &mut self.sub_recycle) else {
            // Unreachable: every column was pre-filtered to be placeable
            // and carries non-negative data. Idle beats panicking.
            return Allocation::idle(n_machines);
        };

        // Carry the previous event's probe basis onto this event's LP
        // shape: map surviving job columns by engine id, drop departed
        // ones (their basis columns fall out in `remap`), let arrivals
        // start non-basic.
        let mut pending: Option<(WarmBasis, Vec<Option<usize>>)> = None;
        if self.resolve_mode == ResolveMode::WarmIncremental {
            pending = self.chain.carry_in(&sub, cols, n_machines);
        }

        // Conditioning guard: a sub-problem whose finite LP entries span
        // many orders of magnitude (typically a nearly-finished job —
        // `remaining · c` of ~1e-7 next to entries of ~1e2) puts the f64
        // simplex outside the regime where its verdict is a function of
        // the problem rather than of the pivot path: the cold solver has
        // been observed to (reproducibly) declare such LPs infeasible
        // even when a certified feasible point exists. The goldens pin
        // the cold behaviour, so the warm path must sit those events
        // out entirely.
        let mut cmin = f64::INFINITY;
        let mut cmax = 0.0f64;
        for i in 0..n_machines {
            for k in 0..cols.n() {
                if let Some(&c) = sub.cost(i, k).finite() {
                    cmin = cmin.min(c);
                    cmax = cmax.max(c);
                }
            }
        }
        let well_conditioned = cmin > COST_SPREAD_GUARD * cmax;

        let (mut lo, mut hi) = bracket(now, cols, &sub);

        let mut d = mem::take(&mut self.d_buf);
        // Side-effect-free check (a stateless cold solve): the warm-basis
        // chain must look identical in debug and release builds, so the
        // assertion must not seed or consume the chained basis.
        debug_assert!(
            {
                fill_deadlines(&mut d, now, hi, cols);
                solve(&build_deadline_probe_lp(&sub, &d, false)).is_optimal()
            },
            "upper bound must be feasible"
        );

        // Hybrid bisection: warm shape-stable probes while the bracket
        // is wide, the exact legacy computation once it shrinks into the
        // solver's tolerance band (see WARM_SAFE_REL_WIDTH). The warm
        // probes run through the persistent [`ProbeCache`]: within a
        // bracket segment every probe after the first is a pure RHS
        // patch on the retained tableau.
        let warm_before = self.warm_lp_solves;
        let mut hint: Option<WarmBasis> = None;
        // Whether the cache ran on *this* event's LP shape: only then is
        // its retained basis safe to pair with this event's sub-instance
        // in the cross-event carry (an older event's basis has a
        // different variable count and would poison the next remap).
        let mut cache_on_event_shape = false;
        for _ in 0..self.bisection_iters {
            let mid = 0.5 * (lo + hi);
            fill_deadlines(&mut d, now, mid, cols);
            let feasible = if d.iter().any(|&dj| dj <= now) {
                false // an empty window needs no LP to refute
            } else if self.resolve_mode == ResolveMode::ColdOracle
                || !well_conditioned
                || (hi - lo) <= WARM_SAFE_REL_WIDTH * hi
                || tol_fragile(&d, now)
            {
                self.cold_lp_solves += 1;
                solve(&build_deadline_lp(&sub, &d, false).lp).is_optimal()
            } else {
                let lp = build_deadline_probe_lp(&sub, &d, false);
                if let Some((basis, var_map)) = pending.take() {
                    hint = Some(basis.remap(&lp, &var_map));
                }
                // A warm verdict is trusted on exactly two routes (see
                // the module docs): a primal-certified feasible point,
                // or a persistent-path infeasibility with a decisive
                // margin. Everything else — including any infeasibility
                // claimed by a freshly re-realized basis — is recomputed
                // by the exact legacy path.
                let served = self.probe.solve(&lp, hint.as_ref());
                cache_on_event_shape |= served.is_some();
                let verdict = served.and_then(|out| {
                    if out.solution.is_optimal() {
                        if certifies(&lp, &out.solution) {
                            Some(true)
                        } else {
                            // An uncertifiable "optimum" means the
                            // tableau cannot be trusted for anything.
                            self.probe.clear();
                            None
                        }
                    } else if out.persistent
                        && out.solution.status == LpStatus::Infeasible
                        && out
                            .infeasible_margin
                            .is_some_and(|m| m > INFEASIBLE_MARGIN_GUARD * (1.0 + hi))
                    {
                        Some(false)
                    } else {
                        None
                    }
                });
                match verdict {
                    Some(v) => {
                        self.warm_lp_solves += 1;
                        v
                    }
                    None => {
                        // No trusted warm verdict. With no basis to work
                        // from at all (a fresh run), seed the cache's
                        // next attempt from a cold probe-shape solve —
                        // exactly how the pre-cache implementation
                        // seeded its basis chain.
                        if hint.is_none() {
                            hint = solve_warm(&lp, None).basis;
                        }
                        self.cold_lp_solves += 1;
                        solve(&build_deadline_lp(&sub, &d, false).lp).is_optimal()
                    }
                }
            };
            if feasible {
                hi = mid;
            } else {
                lo = mid;
            }
        }

        // Final solve at the feasible end of the bracket — always the
        // legacy cold path, whose basic solution the goldens pin.
        fill_deadlines(&mut d, now, hi, cols);
        let built = build_deadline_lp(&sub, &d, false);
        let sol = solve(&built.lp);
        debug_assert!(sol.is_optimal());
        self.cold_lp_solves += 1;
        self.n_resolves += 1;
        if self.warm_lp_solves > warm_before {
            self.warm_resolves += 1;
        } else {
            self.cold_resolves += 1;
        }
        self.d_buf = d;

        let (alloc, produced) = first_interval_rates(&built, &sol, &sub, cols, n_machines);

        // Retire this event's sub-instance into the carry slot and rotate
        // the previous one's buffers back into the recycle pool. The
        // carried basis is the probe cache's last retained one — the
        // next event remaps it onto the churned job set to seed the
        // cache's first re-realization there.
        if self.resolve_mode == ResolveMode::WarmIncremental {
            let carried = if cache_on_event_shape {
                self.probe.basis()
            } else {
                None
            };
            if let Some(bufs) = self.chain.carry_out(carried, sub, cols) {
                self.sub_recycle = bufs;
            }
        } else {
            self.sub_recycle = sub.into_parts();
        }

        if !produced {
            return alloc;
        }
        if self.min_resolve_interval > 0.0 {
            // Recycle the previous cache generation's buffers: the
            // throttle cache is rebuilt once per re-solve, so in steady
            // state neither the id list nor the allocation rows allocate.
            let (mut known, mut kept) = match self.cache.take() {
                Some(prev) => (prev.known, prev.alloc),
                None => (Vec::default(), Allocation::idle(0)),
            };
            known.clear();
            known.extend_from_slice(&cols.ids);
            known.sort_unstable();
            kept.copy_from(&alloc);
            self.cache = Some(PlanCache {
                solved_at: now,
                known,
                alloc: kept,
            });
        }
        alloc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{simulate, Engine, JobSpec, RunMetrics};
    use crate::schedulers::mct::Mct;
    use dlflow_core::instance::InstanceBuilder;

    #[test]
    fn splits_divisible_job_across_machines() {
        let mut b = InstanceBuilder::new();
        b.job(0.0, 1.0);
        b.machine(vec![Some(4.0)]);
        b.machine(vec![Some(4.0)]);
        let inst = b.build().unwrap();
        let res = simulate(&inst, &mut OfflineAdapt::new()).unwrap();
        // Divisible optimum: both machines half each → done at 2.
        assert!(
            (res.completions[0] - 2.0).abs() < 1e-4,
            "got {}",
            res.completions[0]
        );
    }

    #[test]
    fn single_job_completes_at_processing_time() {
        let mut b = InstanceBuilder::new();
        b.job(1.0, 2.0);
        b.machine(vec![Some(3.0)]);
        let inst = b.build().unwrap();
        let res = simulate(&inst, &mut OfflineAdapt::new()).unwrap();
        assert!((res.completions[0] - 4.0).abs() < 1e-4);
    }

    #[test]
    fn beats_mct_on_weighted_instance() {
        // Heavy job arrives while a light long job monopolizes the only
        // fast machine under MCT; OLA preempts/splits.
        let mut b = InstanceBuilder::new();
        b.job(0.0, 1.0); // light, long (10 on M0)
        b.job(1.0, 10.0); // heavy, short (2 on M0), slow elsewhere
        b.machine(vec![Some(10.0), Some(2.0)]);
        b.machine(vec![Some(30.0), Some(20.0)]);
        let inst = b.build().unwrap();
        let mct = simulate(&inst, &mut Mct::new()).unwrap();
        let ola = simulate(&inst, &mut OfflineAdapt::new()).unwrap();
        let m_mct = RunMetrics::from_completions(&inst, &mct.completions);
        let m_ola = RunMetrics::from_completions(&inst, &ola.completions);
        assert!(
            m_ola.max_weighted_flow < m_mct.max_weighted_flow,
            "OLA {} should beat MCT {}",
            m_ola.max_weighted_flow,
            m_mct.max_weighted_flow
        );
    }

    #[test]
    fn throttled_ola_resolves_less_and_still_completes() {
        use crate::workload::{generate, WorkloadSpec};
        let inst = generate(&WorkloadSpec {
            n_jobs: 8,
            n_machines: 3,
            mean_interarrival: 1.0,
            seed: 11,
            ..Default::default()
        });

        let mut eager = OfflineAdapt::new();
        let res_eager = simulate(&inst, &mut eager).unwrap();
        assert!(res_eager.completions.iter().all(|c| c.is_finite()));

        let mut lazy = OfflineAdapt::with_throttle(1.0e6); // effectively "never re-solve on completions"
        let res_lazy = simulate(&inst, &mut lazy).unwrap();
        assert!(res_lazy.completions.iter().all(|c| c.is_finite()));

        assert!(
            lazy.n_resolves < eager.n_resolves,
            "throttle must cut re-solves: {} vs {}",
            lazy.n_resolves,
            eager.n_resolves
        );
        // Every arrival still forces a solve, so the floor is one per
        // distinct arrival burst.
        assert!(lazy.n_resolves >= 1);

        // The throttled policy pays an optimality price but remains a
        // valid, completing policy.
        let m_eager = RunMetrics::from_completions(&inst, &res_eager.completions);
        let m_lazy = RunMetrics::from_completions(&inst, &res_lazy.completions);
        assert!(m_lazy.max_weighted_flow >= m_eager.max_weighted_flow * 0.999);
    }

    #[test]
    fn zero_throttle_is_the_default_eager_policy() {
        let mut b = InstanceBuilder::new();
        b.job(0.0, 1.0);
        b.job(1.0, 1.0);
        b.machine(vec![Some(4.0), Some(4.0)]);
        let inst = b.build().unwrap();
        let mut a = OfflineAdapt::new();
        let mut b2 = OfflineAdapt::with_throttle(0.0);
        let ra = simulate(&inst, &mut a).unwrap();
        let rb = simulate(&inst, &mut b2).unwrap();
        assert_eq!(ra.completions, rb.completions);
        assert_eq!(a.n_resolves, b2.n_resolves);
    }

    #[test]
    fn respects_restricted_availability() {
        let mut b = InstanceBuilder::new();
        b.job(0.0, 1.0);
        b.job(0.0, 1.0);
        b.machine(vec![Some(2.0), None]);
        b.machine(vec![None, Some(2.0)]);
        let inst = b.build().unwrap();
        let res = simulate(&inst, &mut OfflineAdapt::new()).unwrap();
        assert!((res.completions[0] - 2.0).abs() < 1e-4);
        assert!((res.completions[1] - 2.0).abs() < 1e-4);
    }

    #[test]
    fn zero_weight_job_does_not_break_the_lp_path() {
        // The streaming engine allows weight 0; OLA clamps it to a floor
        // instead of building an invalid sub-instance or dividing by 0.
        let mut eng = Engine::new(2);
        let mut ola = OfflineAdapt::new();
        eng.push_arrival(JobSpec {
            release: 0.0,
            weight: 0.0,
            costs: vec![4.0, 4.0],
        })
        .unwrap();
        eng.push_arrival(JobSpec {
            release: 1.0,
            weight: 2.0,
            costs: vec![2.0, f64::INFINITY],
        })
        .unwrap();
        eng.drain(&mut ola).unwrap();
        assert_eq!(eng.n_completed(), 2);
        assert!(eng.metrics().makespan.is_finite());
    }

    #[test]
    fn warm_mode_is_bit_identical_to_cold_oracle() {
        // The tentpole invariant in miniature (the full property test
        // lives in tests/ola_differential.rs): eager warm-hybrid OLA and
        // the all-cold oracle produce the same completions to the bit.
        use crate::workload::{generate, WorkloadSpec};
        for seed in [3, 11, 29] {
            let inst = generate(&WorkloadSpec {
                n_jobs: 10,
                n_machines: 3,
                mean_interarrival: 0.8,
                seed,
                ..Default::default()
            });
            let warm = simulate(&inst, &mut OfflineAdapt::new()).unwrap();
            let cold = simulate(&inst, &mut OfflineAdapt::cold_oracle()).unwrap();
            assert_eq!(warm.completions, cold.completions, "seed {seed}");
        }
    }

    #[test]
    fn resolve_stats_report_warm_and_cold_solves() {
        use crate::workload::{generate, WorkloadSpec};
        let inst = generate(&WorkloadSpec {
            n_jobs: 10,
            n_machines: 3,
            mean_interarrival: 0.8,
            seed: 7,
            ..Default::default()
        });
        let mut warm = OfflineAdapt::new();
        simulate(&inst, &mut warm).unwrap();
        let stats = warm.resolve_stats().unwrap();
        assert_eq!(stats.n_resolves, warm.n_resolves);
        assert!(stats.warm_lp_solves > 0, "warm probes must fire: {stats:?}");
        assert!(
            stats.cold_lp_solves > 0,
            "tolerance-band probes and final solves stay cold: {stats:?}"
        );

        let mut cold = OfflineAdapt::cold_oracle();
        simulate(&inst, &mut cold).unwrap();
        let cstats = cold.resolve_stats().unwrap();
        assert_eq!(cstats.warm_lp_solves, 0, "the oracle never warm-starts");
        assert_eq!(cstats.lp_solves(), cstats.cold_lp_solves);
        // Verdict-identical runs do identical LP work in total.
        assert_eq!(stats.n_resolves, cstats.n_resolves);
        assert_eq!(stats.lp_solves(), cstats.lp_solves());
    }
}
