//! Minimum Completion Time (MCT).
//!
//! Each arriving job is immediately and irrevocably assigned, whole, to
//! the machine on which it would complete earliest given the work already
//! queued there. Machines serve their queues FIFO, one job at a time —
//! non-preemptive, non-divisible: exactly the "classical scheduling
//! heuristic" the paper's conclusion compares against.

use crate::engine::{ActiveJob, Allocation, OnlineScheduler};
use dlflow_core::instance::Instance;

/// MCT policy state.
#[derive(Default)]
pub struct Mct {
    /// Machine assigned to each seen job.
    assigned: Vec<Option<usize>>,
    /// FIFO queue per machine.
    queues: Vec<Vec<usize>>,
}

impl Mct {
    /// Fresh policy.
    pub fn new() -> Self {
        Mct::default()
    }

    fn ensure_sizes(&mut self, inst: &Instance<f64>) {
        if self.assigned.len() < inst.n_jobs() {
            self.assigned.resize(inst.n_jobs(), None);
        }
        if self.queues.len() < inst.n_machines() {
            self.queues.resize(inst.n_machines(), Vec::new());
        }
    }
}

impl OnlineScheduler for Mct {
    fn name(&self) -> String {
        "MCT".into()
    }

    fn reset(&mut self) {
        self.assigned.clear();
        self.queues.clear();
    }

    fn plan(&mut self, _now: f64, active: &[ActiveJob], inst: &Instance<f64>) -> Allocation {
        self.ensure_sizes(inst);
        let remaining_of = |id: usize, active: &[ActiveJob]| -> f64 {
            active
                .iter()
                .find(|a| a.id == id)
                .map_or(0.0, |a| a.remaining)
        };

        // Assign any newly seen jobs, in release order (ties by id).
        let mut newcomers: Vec<usize> = active
            .iter()
            .filter(|a| self.assigned[a.id].is_none())
            .map(|a| a.id)
            .collect();
        newcomers.sort_by(|&a, &b| {
            inst.job(a)
                .release
                .partial_cmp(&inst.job(b).release)
                .unwrap()
                .then(a.cmp(&b))
        });
        for j in newcomers {
            let mut best: Option<(usize, f64)> = None;
            for i in 0..inst.n_machines() {
                let Some(&c) = inst.cost(i, j).finite() else {
                    continue;
                };
                // Backlog of still-active queued jobs on machine i.
                let backlog: f64 = self.queues[i]
                    .iter()
                    .map(|&k| {
                        let rem = remaining_of(k, active);
                        rem * inst.cost(i, k).finite().copied().unwrap_or(0.0)
                    })
                    .sum();
                let completion = backlog + c; // relative to now
                if best.is_none() || completion < best.unwrap().1 {
                    best = Some((i, completion));
                }
            }
            let (i, _) = best.expect("validated instance: some machine runs the job");
            self.assigned[j] = Some(i);
            self.queues[i].push(j);
        }

        // Purge finished jobs from queue heads and serve the first active.
        let mut alloc = Allocation::idle(inst.n_machines(), inst.n_jobs());
        for i in 0..inst.n_machines() {
            self.queues[i].retain(|&k| active.iter().any(|a| a.id == k));
            if let Some(&head) = self.queues[i].first() {
                alloc.rates[i][head] = 1.0;
            }
        }
        alloc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::simulate;
    use dlflow_core::instance::InstanceBuilder;

    #[test]
    fn picks_machine_with_earliest_completion() {
        // M0 fast but will be busy; M1 slow but free.
        let mut b = InstanceBuilder::new();
        b.job(0.0, 1.0); // J0: 10 on M0, 100 on M1 → M0
        b.job(0.0, 1.0); // J1: 10 on M0 (behind J0 → 20), 15 on M1 → M1
        b.machine(vec![Some(10.0), Some(10.0)]);
        b.machine(vec![Some(100.0), Some(15.0)]);
        let inst = b.build().unwrap();
        let res = simulate(&inst, &mut Mct::new()).unwrap();
        assert!((res.completions[0] - 10.0).abs() < 1e-6);
        assert!((res.completions[1] - 15.0).abs() < 1e-6);
    }

    #[test]
    fn fifo_within_machine() {
        let mut b = InstanceBuilder::new();
        b.job(0.0, 1.0);
        b.job(0.0, 1.0);
        b.machine(vec![Some(4.0), Some(4.0)]);
        let inst = b.build().unwrap();
        let res = simulate(&inst, &mut Mct::new()).unwrap();
        let mut c = res.completions.clone();
        c.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((c[0] - 4.0).abs() < 1e-6);
        assert!((c[1] - 8.0).abs() < 1e-6);
    }

    #[test]
    fn respects_availability() {
        let mut b = InstanceBuilder::new();
        b.job(0.0, 1.0);
        b.machine(vec![None]);
        b.machine(vec![Some(3.0)]);
        let inst = b.build().unwrap();
        let res = simulate(&inst, &mut Mct::new()).unwrap();
        assert!((res.completions[0] - 3.0).abs() < 1e-6);
    }

    #[test]
    fn assignment_is_irrevocable() {
        // A later fast arrival does not displace an earlier slow job.
        let mut b = InstanceBuilder::new();
        b.job(0.0, 1.0); // long job on the only useful machine
        b.job(1.0, 10.0); // urgent short job, same machine
        b.machine(vec![Some(10.0), Some(1.0)]);
        let inst = b.build().unwrap();
        let res = simulate(&inst, &mut Mct::new()).unwrap();
        // J1 waits for J0: completes at 11.
        assert!((res.completions[1] - 11.0).abs() < 1e-6);
    }
}
