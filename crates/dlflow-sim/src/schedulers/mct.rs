//! Minimum Completion Time (MCT).
//!
//! Each arriving job is immediately and irrevocably assigned, whole, to
//! the machine on which it would complete earliest given the work already
//! queued there. Machines serve their queues FIFO, one job at a time —
//! non-preemptive, non-divisible: exactly the "classical scheduling
//! heuristic" the paper's conclusion compares against.
//!
//! The policy is fully incremental: assignments live in a small map that
//! grows with the number of jobs *in the system*, not the trace length —
//! completions prune it via [`OnlineScheduler::on_completion`].

use crate::engine::{ActiveSet, Allocation, JobView, OnlineScheduler};
use std::collections::BTreeMap;

/// MCT policy state.
#[derive(Default)]
pub struct Mct {
    /// Machine assigned to each job currently in the system. `BTreeMap`
    /// keeps the policy's state deterministic however it is inspected.
    assigned: BTreeMap<usize, usize>,
    /// FIFO queue per machine (active job ids only).
    queues: Vec<Vec<usize>>,
    /// Platform availability mask (empty = all machines in service).
    up: Vec<bool>,
    /// Recycled buffer of not-yet-assigned active-set indices.
    newcomers: Vec<u32>,
}

impl Mct {
    /// Fresh policy.
    pub fn new() -> Self {
        Mct::default()
    }

    /// Whether machine `i` is in service under the current mask.
    fn live(&self, i: usize) -> bool {
        self.up.is_empty() || self.up[i]
    }
}

impl OnlineScheduler for Mct {
    fn name(&self) -> String {
        "MCT".into()
    }

    fn reset(&mut self) {
        self.assigned.clear();
        self.queues.clear();
        self.up.clear();
        self.newcomers.clear();
    }

    fn on_arrival(&mut self, _now: f64, _job: JobView<'_>) {
        // Assignment happens lazily in `plan`, where the machine queue
        // lengths needed for the min-completion-time rule are known.
    }

    fn on_completion(&mut self, _now: f64, job_id: usize) {
        if let Some(i) = self.assigned.remove(&job_id) {
            self.queues[i].retain(|&k| k != job_id);
        }
    }

    fn on_platform_change(&mut self, _now: f64, up: &[bool]) {
        self.up.clear();
        self.up.extend_from_slice(up);
        // Evict dead machines' queues: their jobs become newcomers again
        // and the next `plan` re-runs the MCT rule over live machines —
        // "irrevocable" yields to survival when the machine is gone.
        for (i, q) in self.queues.iter_mut().enumerate() {
            if i < up.len() && !up[i] {
                for id in q.drain(..) {
                    self.assigned.remove(&id);
                }
            }
        }
    }

    fn snapshot_state(&self) -> String {
        let mut s = format!("nqueues {}\n", self.queues.len());
        for q in &self.queues {
            s.push_str("queue");
            for id in q {
                s.push_str(&format!(" {id}"));
            }
            s.push('\n');
        }
        s.push_str("assigned");
        for (job, machine) in &self.assigned {
            s.push_str(&format!(" {job}:{machine}"));
        }
        s.push('\n');
        s
    }

    fn restore_state(&mut self, state: &str) -> Result<(), String> {
        let mut lines = state.lines();
        let head = lines.next().ok_or("MCT state: missing nqueues line")?;
        let n: usize = head
            .strip_prefix("nqueues ")
            .and_then(|v| v.parse().ok())
            .ok_or("MCT state: bad nqueues line")?;
        self.queues = vec![Vec::new(); n];
        for q in &mut self.queues {
            let line = lines.next().ok_or("MCT state: missing queue line")?;
            let mut toks = line.split_whitespace();
            if toks.next() != Some("queue") {
                return Err("MCT state: bad queue line".into());
            }
            for tok in toks {
                q.push(tok.parse().map_err(|_| "MCT state: bad queue id")?);
            }
        }
        let line = lines.next().ok_or("MCT state: missing assigned line")?;
        let mut toks = line.split_whitespace();
        if toks.next() != Some("assigned") {
            return Err("MCT state: bad assigned line".into());
        }
        for tok in toks {
            let (job, machine) = tok.split_once(':').ok_or("MCT state: bad assigned pair")?;
            self.assigned.insert(
                job.parse().map_err(|_| "MCT state: bad assigned job")?,
                machine
                    .parse()
                    .map_err(|_| "MCT state: bad assigned machine")?,
            );
        }
        Ok(())
    }

    fn plan(&mut self, _now: f64, active: &ActiveSet<'_>, alloc: &mut Allocation) {
        let n_machines = alloc.n_machines();
        if self.queues.len() < n_machines {
            self.queues.resize(n_machines, Vec::new()); // dlflint:allow(alloc-in-hot-loop, "grows once to the machine count, then the guard keeps it allocation-free")
        }
        let job_of = |id: usize| active.iter().find(|a| a.id == id);

        // Assign any newly seen jobs, in release order (ties by id). The
        // unstable sort is safe: `(release, id)` is a total order with no
        // equal pairs, so the result matches a stable sort bit for bit.
        self.newcomers.clear();
        for k in 0..active.len() {
            if !self.assigned.contains_key(&active.get(k).id) {
                self.newcomers.push(k as u32);
            }
        }
        self.newcomers.sort_unstable_by(|&x, &y| {
            let a = active.get(x as usize);
            let b = active.get(y as usize);
            a.release.total_cmp(&b.release).then(a.id.cmp(&b.id))
        });
        for &k in &self.newcomers {
            let job = active.get(k as usize);
            let mut best: Option<(usize, f64)> = None;
            for i in 0..n_machines {
                if !(self.up.is_empty() || self.up[i]) {
                    continue;
                }
                let Some(c) = job.cost(i) else {
                    continue;
                };
                // Backlog of still-active queued jobs on machine i.
                let backlog: f64 = self.queues[i]
                    .iter()
                    .map(|&k| job_of(k).map_or(0.0, |a| a.remaining * a.cost(i).unwrap_or(0.0)))
                    .sum();
                let completion = backlog + c; // relative to now
                if best.is_none_or(|(_, b)| completion < b) {
                    best = Some((i, completion));
                }
            }
            // Validated jobs always run somewhere; if one doesn't, leave
            // it unassigned and let the engine surface `Stalled`.
            let Some((i, _)) = best else { continue };
            self.assigned.insert(job.id, i);
            self.queues[i].push(job.id);
        }

        // Serve each live queue head (completions already pruned the
        // queues, so heads are always active; dead machines' queues were
        // evicted by `on_platform_change`).
        for i in 0..n_machines {
            if !self.live(i) {
                continue;
            }
            if let Some(&head) = self.queues[i].first() {
                alloc.set(i, head, 1.0);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::simulate;
    use dlflow_core::instance::InstanceBuilder;

    #[test]
    fn picks_machine_with_earliest_completion() {
        // M0 fast but will be busy; M1 slow but free.
        let mut b = InstanceBuilder::new();
        b.job(0.0, 1.0); // J0: 10 on M0, 100 on M1 → M0
        b.job(0.0, 1.0); // J1: 10 on M0 (behind J0 → 20), 15 on M1 → M1
        b.machine(vec![Some(10.0), Some(10.0)]);
        b.machine(vec![Some(100.0), Some(15.0)]);
        let inst = b.build().unwrap();
        let res = simulate(&inst, &mut Mct::new()).unwrap();
        assert!((res.completions[0] - 10.0).abs() < 1e-6);
        assert!((res.completions[1] - 15.0).abs() < 1e-6);
    }

    #[test]
    fn fifo_within_machine() {
        let mut b = InstanceBuilder::new();
        b.job(0.0, 1.0);
        b.job(0.0, 1.0);
        b.machine(vec![Some(4.0), Some(4.0)]);
        let inst = b.build().unwrap();
        let res = simulate(&inst, &mut Mct::new()).unwrap();
        let mut c = res.completions.clone();
        c.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((c[0] - 4.0).abs() < 1e-6);
        assert!((c[1] - 8.0).abs() < 1e-6);
    }

    #[test]
    fn respects_availability() {
        let mut b = InstanceBuilder::new();
        b.job(0.0, 1.0);
        b.machine(vec![None]);
        b.machine(vec![Some(3.0)]);
        let inst = b.build().unwrap();
        let res = simulate(&inst, &mut Mct::new()).unwrap();
        assert!((res.completions[0] - 3.0).abs() < 1e-6);
    }

    #[test]
    fn assignment_is_irrevocable() {
        // A later fast arrival does not displace an earlier slow job.
        let mut b = InstanceBuilder::new();
        b.job(0.0, 1.0); // long job on the only useful machine
        b.job(1.0, 10.0); // urgent short job, same machine
        b.machine(vec![Some(10.0), Some(1.0)]);
        let inst = b.build().unwrap();
        let res = simulate(&inst, &mut Mct::new()).unwrap();
        // J1 waits for J0: completes at 11.
        assert!((res.completions[1] - 11.0).abs() < 1e-6);
    }

    #[test]
    fn state_is_pruned_on_completion() {
        // After a full run, no per-job state lingers (memory stays
        // O(|active|) on long traces).
        let mut b = InstanceBuilder::new();
        b.job(0.0, 1.0);
        b.job(1.0, 1.0);
        b.machine(vec![Some(2.0), Some(2.0)]);
        let inst = b.build().unwrap();
        let mut mct = Mct::new();
        simulate(&inst, &mut mct).unwrap();
        assert!(mct.assigned.is_empty());
        assert!(mct.queues.iter().all(|q| q.is_empty()));
    }
}
