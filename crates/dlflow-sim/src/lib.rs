//! # dlflow-sim — online scheduling testbed
//!
//! A deterministic fluid discrete-event simulator for divisible requests
//! on unrelated machines, plus the online policies the paper's conclusion
//! compares:
//!
//! * **MCT** (Minimum Completion Time) — the classical heuristic baseline,
//! * FIFO / SRPT / weighted-age greedy variants,
//! * **OLA** — the paper's proposal: re-solve the offline divisible
//!   max-weighted-flow problem at every event (with a simple preemption
//!   scheme for free, thanks to divisibility) and follow its rates.
//!
//! The `online_vs_mct` experiment binary in `dlflow-bench` uses this crate
//! to reproduce the conclusion's claim that OLA "produces better schedules
//! than classical scheduling heuristics like Minimum Completion Time".
//!
//! ## Example
//!
//! ```
//! use dlflow_sim::engine::{simulate, RunMetrics};
//! use dlflow_sim::schedulers::{Mct, OfflineAdapt};
//! use dlflow_sim::workload::{generate, WorkloadSpec};
//!
//! let inst = generate(&WorkloadSpec { n_jobs: 5, ..Default::default() });
//! let mct = simulate(&inst, &mut Mct::new()).unwrap();
//! let ola = simulate(&inst, &mut OfflineAdapt::new()).unwrap();
//! let m1 = RunMetrics::from_completions(&inst, &mct.completions);
//! let m2 = RunMetrics::from_completions(&inst, &ola.completions);
//! assert!(m2.max_weighted_flow <= m1.max_weighted_flow * 1.5 + 1.0); // sanity
//! ```

#![warn(missing_docs)]
#![allow(clippy::needless_range_loop)] // rate-matrix code indexes machines/jobs in lockstep

pub mod engine;
pub mod schedulers;
pub mod workload;

pub use engine::{
    simulate, ActiveJob, Allocation, OnlineScheduler, RunMetrics, SimError, SimResult,
};
pub use workload::{ensemble, generate, WorkloadSpec};
