//! # dlflow-sim — streaming simulation core & campaign engine
//!
//! A deterministic fluid discrete-event simulator for divisible requests
//! on unrelated machines, built around a resumable incremental
//! [`engine::Engine`] (`push_arrival` / `step` / `drain`): per-event cost
//! and memory scale with the number of *in-flight* requests, not the
//! trace length, so open-arrival traces of 100k+ requests replay in
//! seconds. On top of it:
//!
//! * the online policies the paper's conclusion compares — **MCT**
//!   (Minimum Completion Time, the classical baseline), FIFO / SRPT /
//!   SWRPT / weighted-age / round-robin greedy variants, **EDF** on
//!   guessed deadlines, and **OLA**, the paper's proposal: re-solve the
//!   offline divisible max-weighted-flow problem at every event and
//!   follow its rates (optionally throttled). All speak the
//!   event-notification [`engine::OnlineScheduler`] API and keep
//!   incremental state;
//! * an open-arrival [`workload`] layer: Poisson / bursty / diurnal
//!   arrival processes, the `.dlt` trace file format, and streaming
//!   replay ([`workload::Trace::replay`]);
//! * the [`campaign`] module — the paper's §6-style (platform × workload
//!   × seed × scheduler) tournament, run in parallel, every run scored
//!   against the **exact** Theorem-2 offline optimum;
//! * the [`service`] module — the replayable report API behind the
//!   `dlflow simulate` CLI subcommand, including fault injection and
//!   snapshot/resume;
//! * **fault tolerance**: machine failure/recovery as a third event
//!   stream ([`engine::PlatformEvent`], the seeded
//!   [`workload::FaultProcess`] generator, `.dlt` `fail`/`recover`
//!   directives) with work-loss semantics and scheduler degradation
//!   via `on_platform_change`; crash-consistent
//!   [`engine::Engine::snapshot`] / [`engine::Engine::restore`] in the
//!   byte-stable `dlflow-snapshot v1` format ([`snapshot`]); and the
//!   [`chaos`] module sweeping failure intensity × scheduler against
//!   the fault-free exact optimum.
//!
//! The closed-instance entry point [`engine::simulate`] remains a thin
//! wrapper over the engine; the seed's dense batch loop survives as
//! [`engine::simulate_dense`], the parity oracle of
//! `tests/prop_engine.rs`.
//!
//! ## Example
//!
//! ```
//! use dlflow_sim::engine::{simulate, RunMetrics};
//! use dlflow_sim::schedulers::{Mct, OfflineAdapt, Swrpt};
//! use dlflow_sim::workload::{generate, generate_trace, TraceSpec, WorkloadSpec};
//!
//! // Closed instance, two policies head to head.
//! let inst = generate(&WorkloadSpec { n_jobs: 5, ..Default::default() });
//! let mct = simulate(&inst, &mut Mct::new()).unwrap();
//! let ola = simulate(&inst, &mut OfflineAdapt::new()).unwrap();
//! let m1 = RunMetrics::from_completions(&inst, &mct.completions);
//! let m2 = RunMetrics::from_completions(&inst, &ola.completions);
//! assert!(m2.max_weighted_flow <= m1.max_weighted_flow * 1.5 + 1.0); // sanity
//!
//! // Open-arrival trace, streamed through the incremental engine.
//! let trace = generate_trace(&TraceSpec { n_requests: 50, ..Default::default() });
//! let stats = trace.replay(&mut Swrpt::new()).unwrap();
//! assert_eq!(stats.n_jobs, 50);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![allow(clippy::needless_range_loop)] // rate-map code indexes machines/jobs in lockstep

pub mod campaign;
pub mod chaos;
pub mod engine;
mod heap;
pub mod reference;
pub mod schedulers;
pub mod service;
pub mod shard;
pub mod snapshot;
pub mod workload;

pub use campaign::{
    parse_campaign, run_campaign, run_campaign_serial, CampaignConfig, CampaignReport, RunRecord,
    SchedulerSpec,
};
pub use chaos::{
    default_levels, run_fault_campaign, run_fault_campaign_serial, FaultAggregate,
    FaultCampaignConfig, FaultCampaignReport, FaultLevel, FaultRunRecord,
};
pub use engine::{
    simulate, simulate_dense, simulate_with_events, ActiveJob, ActiveSet, Allocation, CompletedJob,
    Engine, JobSpec, JobView, MetricsAccumulator, OnlineScheduler, PlatformChange, PlatformEvent,
    RunMetrics, SimError, SimResult, StepOutcome,
};
pub use reference::ReferenceEngine;
pub use service::{
    run_simulation, run_simulation_with, FaultInjection, ServiceReport, SimInput, SimOptions,
};
pub use shard::ShardedEngine;
pub use snapshot::SnapshotError;
pub use workload::{
    ensemble, generate, generate_trace, ArrivalProcess, FaultProcess, ReplayStats, Trace,
    TraceArrival, TraceSpec, WorkloadSpec,
};
