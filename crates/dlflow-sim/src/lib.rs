//! # dlflow-sim — online scheduling testbed & campaign engine
//!
//! A deterministic fluid discrete-event simulator for divisible requests
//! on unrelated machines, plus the online policies the paper's conclusion
//! compares:
//!
//! * **MCT** (Minimum Completion Time) — the classical heuristic baseline,
//! * FIFO / SRPT / SWRPT / weighted-age / round-robin greedy variants,
//! * **EDF** on guessed deadlines — the deadline-driven heuristic,
//! * **OLA** — the paper's proposal: re-solve the offline divisible
//!   max-weighted-flow problem at every event (with a simple preemption
//!   scheme for free, thanks to divisibility) and follow its rates;
//!   optionally throttled to re-solve at most once per interval.
//!
//! The [`campaign`] module batches all of this into the paper's §6-style
//! evaluation: a (platform × workload × seed × scheduler) tournament,
//! run in parallel, with every run scored against the **exact**
//! Theorem-2 offline optimum. The `campaign` and `online_vs_mct`
//! binaries in `dlflow-bench` use this crate to reproduce the
//! conclusion's claim that OLA "produces better schedules than classical
//! scheduling heuristics like Minimum Completion Time".
//!
//! ## Example
//!
//! ```
//! use dlflow_sim::engine::{simulate, RunMetrics};
//! use dlflow_sim::schedulers::{Mct, OfflineAdapt};
//! use dlflow_sim::workload::{generate, WorkloadSpec};
//!
//! let inst = generate(&WorkloadSpec { n_jobs: 5, ..Default::default() });
//! let mct = simulate(&inst, &mut Mct::new()).unwrap();
//! let ola = simulate(&inst, &mut OfflineAdapt::new()).unwrap();
//! let m1 = RunMetrics::from_completions(&inst, &mct.completions);
//! let m2 = RunMetrics::from_completions(&inst, &ola.completions);
//! assert!(m2.max_weighted_flow <= m1.max_weighted_flow * 1.5 + 1.0); // sanity
//! ```

#![warn(missing_docs)]
#![allow(clippy::needless_range_loop)] // rate-matrix code indexes machines/jobs in lockstep

pub mod campaign;
pub mod engine;
pub mod schedulers;
pub mod workload;

pub use campaign::{
    parse_campaign, run_campaign, run_campaign_serial, CampaignConfig, CampaignReport, RunRecord,
    SchedulerSpec,
};
pub use engine::{
    simulate, ActiveJob, Allocation, OnlineScheduler, RunMetrics, SimError, SimResult,
};
pub use workload::{ensemble, generate, WorkloadSpec};
