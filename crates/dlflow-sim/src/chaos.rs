//! Chaos campaign: the fault-injection counterpart of [`crate::campaign`].
//!
//! Sweeps **failure intensity × scheduler** over the same seeded
//! (platform × workload) scenarios the tournament engine uses, and
//! reports exact stretch-ratio *degradation curves*: every run is scored
//! against the **fault-free** exact Theorem-2 optimum of its scenario,
//! so a ratio of 1.0 means "as good as an offline clairvoyant scheduler
//! on a platform that never fails" and the growth of the ratio across
//! intensity levels is precisely the price of the injected faults.
//!
//! Fault schedules come from the seeded [`FaultProcess`] generator:
//! per-machine exponential on/off (MTBF/MTTR), scaled *per scenario* to
//! its serial horizon `H = max release + Σ fastest cost` so "one
//! expected failure per machine" means the same thing on a 2-second and
//! a 200-second scenario. Level `none` (no events) rides along as the
//! baseline — its rows double as a regression check that the
//! platform-aware engine reproduces fault-free behavior.
//!
//! The paper's restricted-availability discussion (§3) models machines
//! that can serve only a subset of requests; failure/recovery is the
//! time-varying version of the same phenomenon, which is why degradation
//! is measured on the paper's own max-stretch objective.

use crate::campaign::{f6, scenario_seed, splitmix64, CampaignConfig, RunRecord};
use crate::engine::{simulate_with_events, PlatformEvent, RunMetrics};
use crate::workload::FaultProcess;
use dlflow_core::instance::Instance;
use dlflow_core::maxflow::{min_max_weighted_flow_divisible_with, ProbeMethod};
use dlflow_gripps::CostModel;
use rayon::prelude::*;

/// One failure-intensity level of the sweep, expressed relative to each
/// scenario's serial horizon `H` (see the module docs).
#[derive(Clone, Debug)]
pub struct FaultLevel {
    /// Level name (stamped into reports; `none`-like levels use 0.0).
    pub name: String,
    /// Expected failures per machine over the horizon (`H / MTBF`).
    /// `0.0` injects no events at all.
    pub failures: f64,
    /// Mean repair time as a fraction of the horizon (`MTTR / H`).
    pub repair_frac: f64,
}

/// A chaos-campaign description: the tournament cross-product plus the
/// intensity levels to sweep and a seed for the fault schedules.
#[derive(Clone, Debug)]
pub struct FaultCampaignConfig {
    /// The (platform × workload × seed × scheduler) base, reused from
    /// the tournament engine.
    pub base: CampaignConfig,
    /// Intensity levels, reported in this order.
    pub levels: Vec<FaultLevel>,
    /// Base seed of the fault schedules (independent of scenario seeds,
    /// so the same scenario sees *nested* fault schedules as intensity
    /// grows only in expectation, not by construction).
    pub fault_seed: u64,
}

impl FaultCampaignConfig {
    /// The built-in quick chaos sweep: the tournament's quick scenarios
    /// (fewer seeds) × 4 intensity levels.
    pub fn quick() -> FaultCampaignConfig {
        let mut base = CampaignConfig::quick();
        base.name = "quick-chaos".into();
        base.n_seeds = 12;
        FaultCampaignConfig {
            base,
            levels: default_levels(),
            fault_seed: 0xC0FFEE,
        }
    }
}

/// The standard intensity ladder: none → light → moderate → heavy.
pub fn default_levels() -> Vec<FaultLevel> {
    vec![
        FaultLevel {
            name: "none".into(),
            failures: 0.0,
            repair_frac: 0.0,
        },
        FaultLevel {
            name: "light".into(),
            failures: 1.0,
            repair_frac: 0.05,
        },
        FaultLevel {
            name: "moderate".into(),
            failures: 2.5,
            repair_frac: 0.10,
        },
        FaultLevel {
            name: "heavy".into(),
            failures: 5.0,
            repair_frac: 0.20,
        },
    ]
}

/// One (scenario × level × scheduler) run of the sweep.
#[derive(Clone, Debug)]
pub struct FaultRunRecord {
    /// The base tournament record (fault-free `opt_stretch` yardstick,
    /// online metrics *under faults*).
    pub run: RunRecord,
    /// Intensity level name.
    pub level: String,
    /// Platform events injected into this run.
    pub n_fault_events: usize,
}

/// Aggregate of one (level × scheduler) cell across scenarios.
#[derive(Clone, Debug)]
pub struct FaultAggregate {
    /// Intensity level name.
    pub level: String,
    /// Scheduler label.
    pub scheduler: String,
    /// Mean stretch ratio across scenarios.
    pub mean_ratio: f64,
    /// Median stretch ratio.
    pub median_ratio: f64,
    /// 95th-percentile (nearest-rank) stretch ratio.
    pub p95_ratio: f64,
    /// Worst stretch ratio.
    pub worst_ratio: f64,
    /// Mean makespan (seconds).
    pub mean_makespan: f64,
    /// Mean injected events per run.
    pub mean_fault_events: f64,
}

/// Results of a chaos campaign.
#[derive(Clone, Debug)]
pub struct FaultCampaignReport {
    /// Campaign name.
    pub name: String,
    /// Level names, sweep order.
    pub levels: Vec<String>,
    /// Scheduler labels, config order.
    pub schedulers: Vec<String>,
    /// Scenarios per level (platforms × workloads × seeds).
    pub n_scenarios: usize,
    /// Every run, scenario-major, then level, then scheduler.
    pub runs: Vec<FaultRunRecord>,
    /// One aggregate per (level × scheduler), level-major.
    pub aggregates: Vec<FaultAggregate>,
}

/// Serial horizon of an instance: latest release plus everything run
/// back-to-back on its fastest machine — the time scale MTBF/MTTR are
/// expressed against.
fn serial_horizon(inst: &Instance<f64>) -> f64 {
    let max_release = (0..inst.n_jobs())
        .map(|j| inst.job(j).release)
        .fold(0.0f64, f64::max);
    let serial: f64 = (0..inst.n_jobs()).map(|j| inst.fastest_cost(j)).sum();
    max_release + serial.max(1e-9)
}

/// Runs every (level × scheduler) combination of one scenario.
fn run_scenario_chaos(
    cfg: &FaultCampaignConfig,
    pi: usize,
    wi: usize,
    k: u64,
) -> Result<Vec<FaultRunRecord>, String> {
    let base = &cfg.base;
    let seed = scenario_seed(base.seed_base, pi, wi, k);
    let model = CostModel::paper_scale();
    let platform = base.platforms[pi].realize(splitmix64(seed ^ 0xA5A5_A5A5));
    let requests = base.workloads[wi].realize(&platform, &model, splitmix64(seed ^ 0x5A5A_5A5A));
    let inst = platform
        .instance_dyadic(&requests, &model, base.sig_bits)
        .map_err(|e| format!("scenario ({pi},{wi},{k}): {e}"))?;

    // Fault-free exact yardstick, shared by every level of the sweep.
    let exact = inst.to_exact_dyadic().with_stretch_weights();
    let opt_stretch = min_max_weighted_flow_divisible_with(&exact, ProbeMethod::MaxFlowUniform)
        .optimum
        .to_f64();
    let sim_inst: Instance<f64> = if base.stretch_weights {
        inst.with_stretch_weights()
    } else {
        inst
    };
    let horizon = serial_horizon(&sim_inst);

    let mut records = Vec::with_capacity(cfg.levels.len() * base.schedulers.len());
    for (li, level) in cfg.levels.iter().enumerate() {
        let events: Vec<PlatformEvent> = if level.failures > 0.0 {
            FaultProcess {
                mtbf: horizon / level.failures,
                mttr: (horizon * level.repair_frac).max(1e-9),
                horizon,
                seed: splitmix64(cfg.fault_seed ^ seed.wrapping_add(li as u64)),
            }
            .sample(sim_inst.n_machines())
        } else {
            Vec::new()
        };
        for spec in &base.schedulers {
            let mut policy = spec.build();
            let res = simulate_with_events(&sim_inst, policy.as_mut(), &events).map_err(|e| {
                format!(
                    "scenario ({pi},{wi},{k}) / {} / {}: {e}",
                    level.name,
                    spec.label()
                )
            })?;
            let m = RunMetrics::from_completions(&sim_inst, &res.completions);
            records.push(FaultRunRecord {
                run: RunRecord {
                    platform: base.platforms[pi].name.clone(),
                    workload: base.workloads[wi].name.clone(),
                    seed: k,
                    scheduler: spec.label(),
                    max_stretch: m.max_stretch,
                    sum_stretch: m.sum_stretch,
                    makespan: m.makespan,
                    utilization: res.utilization(&sim_inst),
                    max_weighted_flow: m.max_weighted_flow,
                    opt_stretch,
                    stretch_ratio: m.max_stretch / opt_stretch,
                    n_events: res.n_events,
                    n_plans: res.n_plans,
                },
                level: level.name.clone(),
                n_fault_events: events.len(),
            });
        }
    }
    Ok(records)
}

fn aggregate(cfg: &FaultCampaignConfig, runs: &[FaultRunRecord]) -> FaultCampaignReport {
    let base = &cfg.base;
    let labels: Vec<String> = base.schedulers.iter().map(|s| s.label()).collect();
    let nl = cfg.levels.len();
    let ns = labels.len();
    let n_scenarios = runs.len() / (nl * ns).max(1);

    // runs is scenario-major: runs[(sc * nl + li) * ns + si].
    let rec = |sc: usize, li: usize, si: usize| &runs[(sc * nl + li) * ns + si];

    let mut aggregates = Vec::with_capacity(nl * ns);
    for (li, level) in cfg.levels.iter().enumerate() {
        for (si, label) in labels.iter().enumerate() {
            let mut ratios: Vec<f64> = (0..n_scenarios)
                .map(|sc| rec(sc, li, si).run.stretch_ratio)
                .collect();
            ratios.sort_by(|a, b| a.total_cmp(b));
            let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
            let median = ratios[ratios.len() / 2];
            let p95 = ratios[((ratios.len() as f64 * 0.95).ceil() as usize).max(1) - 1];
            let worst = *ratios.last().unwrap();
            let mean_makespan = (0..n_scenarios)
                .map(|sc| rec(sc, li, si).run.makespan)
                .sum::<f64>()
                / n_scenarios as f64;
            let mean_fault_events = (0..n_scenarios)
                .map(|sc| rec(sc, li, si).n_fault_events as f64)
                .sum::<f64>()
                / n_scenarios as f64;
            aggregates.push(FaultAggregate {
                level: level.name.clone(),
                scheduler: label.clone(),
                mean_ratio: mean,
                median_ratio: median,
                p95_ratio: p95,
                worst_ratio: worst,
                mean_makespan,
                mean_fault_events,
            });
        }
    }

    FaultCampaignReport {
        name: base.name.clone(),
        levels: cfg.levels.iter().map(|l| l.name.clone()).collect(),
        schedulers: labels,
        n_scenarios,
        runs: runs.to_vec(),
        aggregates,
    }
}

fn run_impl(cfg: &FaultCampaignConfig, parallel: bool) -> Result<FaultCampaignReport, String> {
    if cfg.levels.is_empty() {
        return Err("chaos campaign needs at least one fault level".into());
    }
    let base = &cfg.base;
    if base.platforms.is_empty() || base.workloads.is_empty() || base.schedulers.is_empty() {
        return Err("chaos campaign needs platforms, workloads, and schedulers".into());
    }
    let mut scenarios: Vec<(usize, usize, u64)> = Vec::new();
    for pi in 0..base.platforms.len() {
        for wi in 0..base.workloads.len() {
            for k in 0..base.n_seeds {
                scenarios.push((pi, wi, k));
            }
        }
    }
    let results: Vec<Result<Vec<FaultRunRecord>, String>> = if parallel {
        scenarios
            .par_iter()
            .map(|&(pi, wi, k)| run_scenario_chaos(cfg, pi, wi, k))
            .collect()
    } else {
        scenarios
            .iter()
            .map(|&(pi, wi, k)| run_scenario_chaos(cfg, pi, wi, k))
            .collect()
    };
    let mut runs = Vec::new();
    for r in results {
        runs.extend(r?);
    }
    Ok(aggregate(cfg, &runs))
}

/// Runs the chaos campaign, scenarios in parallel. The report is
/// bit-identical to [`run_fault_campaign_serial`]'s.
pub fn run_fault_campaign(cfg: &FaultCampaignConfig) -> Result<FaultCampaignReport, String> {
    run_impl(cfg, true)
}

/// Single-threaded reference runner (determinism oracle).
pub fn run_fault_campaign_serial(cfg: &FaultCampaignConfig) -> Result<FaultCampaignReport, String> {
    run_impl(cfg, false)
}

impl FaultCampaignReport {
    /// Deterministic machine-readable JSON (hand-rendered, like the
    /// tournament report's).
    pub fn to_json(&self) -> String {
        let quoted = |v: &[String]| -> String {
            v.iter()
                .map(|x| format!("\"{x}\""))
                .collect::<Vec<_>>()
                .join(", ")
        };
        let mut s = String::from("{\n");
        s.push_str(&format!("  \"campaign\": \"{}\",\n", self.name));
        s.push_str(&format!("  \"n_scenarios\": {},\n", self.n_scenarios));
        s.push_str(&format!("  \"n_runs\": {},\n", self.runs.len()));
        s.push_str(&format!("  \"levels\": [{}],\n", quoted(&self.levels)));
        s.push_str(&format!(
            "  \"schedulers\": [{}],\n",
            quoted(&self.schedulers)
        ));
        s.push_str("  \"aggregates\": [\n");
        for (i, a) in self.aggregates.iter().enumerate() {
            let comma = if i + 1 == self.aggregates.len() {
                ""
            } else {
                ","
            };
            s.push_str(&format!(
                "    {{\"level\": \"{}\", \"scheduler\": \"{}\", \"mean_ratio\": {}, \"median_ratio\": {}, \"p95_ratio\": {}, \"worst_ratio\": {}, \"mean_makespan\": {}, \"mean_fault_events\": {}}}{comma}\n",
                a.level,
                a.scheduler,
                f6(a.mean_ratio),
                f6(a.median_ratio),
                f6(a.p95_ratio),
                f6(a.worst_ratio),
                f6(a.mean_makespan),
                f6(a.mean_fault_events),
            ));
        }
        s.push_str("  ],\n");
        s.push_str("  \"runs\": [\n");
        for (i, r) in self.runs.iter().enumerate() {
            let comma = if i + 1 == self.runs.len() { "" } else { "," };
            s.push_str(&format!(
                "    {{\"platform\": \"{}\", \"workload\": \"{}\", \"seed\": {}, \"level\": \"{}\", \"scheduler\": \"{}\", \"n_fault_events\": {}, \"max_stretch\": {}, \"makespan\": {}, \"utilization\": {}, \"opt_stretch\": {}, \"stretch_ratio\": {}, \"n_events\": {}}}{comma}\n",
                r.run.platform,
                r.run.workload,
                r.run.seed,
                r.level,
                r.run.scheduler,
                r.n_fault_events,
                f6(r.run.max_stretch),
                f6(r.run.makespan),
                f6(r.run.utilization),
                f6(r.run.opt_stretch),
                f6(r.run.stretch_ratio),
                r.run.n_events,
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Human-readable markdown: the degradation table (stretch ratio vs
    /// fault intensity, one row per scheduler) plus per-level detail.
    pub fn to_markdown(&self) -> String {
        let mut s = format!("# Chaos campaign `{}`\n\n", self.name);
        s.push_str(&format!(
            "{} scenarios × {} fault levels × {} schedulers = {} runs. \
             Every run is scored against the **fault-free** exact Theorem-2 \
             optimum of its scenario (stretch ratio = online max-stretch ÷ \
             offline optimal max-stretch), so columns to the right show pure \
             fault-induced degradation.\n\n",
            self.n_scenarios,
            self.levels.len(),
            self.schedulers.len(),
            self.runs.len()
        ));

        s.push_str("## Mean stretch-ratio degradation\n\n");
        s.push_str("| scheduler |");
        for l in &self.levels {
            s.push_str(&format!(" {l} |"));
        }
        s.push_str("\n|---|");
        for _ in &self.levels {
            s.push_str("---:|");
        }
        s.push('\n');
        for sched in &self.schedulers {
            s.push_str(&format!("| {sched} |"));
            for level in &self.levels {
                let a = self
                    .aggregates
                    .iter()
                    .find(|a| &a.level == level && &a.scheduler == sched)
                    .expect("aggregate exists for every (level, scheduler)");
                s.push_str(&format!(" {} |", f6(a.mean_ratio)));
            }
            s.push('\n');
        }

        s.push_str("\n## Per-level detail (median / p95 / worst ratio)\n\n");
        s.push_str(
            "| level | scheduler | median | p95 | worst | mean makespan | mean fault events |\n",
        );
        s.push_str("|---|---|---:|---:|---:|---:|---:|\n");
        for a in &self.aggregates {
            s.push_str(&format!(
                "| {} | {} | {} | {} | {} | {} | {} |\n",
                a.level,
                a.scheduler,
                f6(a.median_ratio),
                f6(a.p95_ratio),
                f6(a.worst_ratio),
                f6(a.mean_makespan),
                f6(a.mean_fault_events),
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::parse_campaign;

    fn tiny() -> FaultCampaignConfig {
        let base = parse_campaign(
            "name tiny-chaos\nseeds 2\nsigbits 10\n\
             platform p servers=3 banks=3 heterogeneity=2\n\
             workload w jobs=4 load=1.2\n\
             scheduler swrpt\nscheduler mct\n",
        )
        .unwrap();
        FaultCampaignConfig {
            base,
            levels: default_levels(),
            fault_seed: 9,
        }
    }

    #[test]
    fn parallel_and_serial_chaos_reports_are_byte_identical() {
        let cfg = tiny();
        let par = run_fault_campaign(&cfg).unwrap();
        let ser = run_fault_campaign_serial(&cfg).unwrap();
        assert_eq!(par.to_json(), ser.to_json());
        assert_eq!(par.to_markdown(), ser.to_markdown());
    }

    #[test]
    fn ratios_never_beat_the_fault_free_optimum() {
        let report = run_fault_campaign(&tiny()).unwrap();
        assert_eq!(report.runs.len(), 2 * 4 * 2); // scenarios × levels × schedulers
        for r in &report.runs {
            assert!(
                r.run.stretch_ratio > 0.99,
                "{} at {}: ratio {}",
                r.run.scheduler,
                r.level,
                r.run.stretch_ratio
            );
            assert!(r.run.makespan.is_finite());
        }
        // The `none` level injects nothing; heavier levels do.
        for r in &report.runs {
            if r.level == "none" {
                assert_eq!(r.n_fault_events, 0);
            }
        }
        assert!(
            report
                .runs
                .iter()
                .any(|r| r.level == "heavy" && r.n_fault_events > 0),
            "heavy level should inject events"
        );
    }

    #[test]
    fn ola_lite_degrades_like_the_rest_of_the_table() {
        // PR 10: the production-cheap OLA variant rides the same chaos
        // sweep as the PR 8 schedulers — one row per intensity level,
        // scored against the fault-free exact optimum, never beating
        // it, and with the baseline level injecting nothing.
        let base = parse_campaign(
            "name olalite-chaos\nseeds 2\nsigbits 10\n\
             platform p servers=3 banks=3 heterogeneity=2\n\
             workload w jobs=4 load=1.2\n\
             scheduler olalite\nscheduler olalite alpha=1.5\nscheduler swrpt\n",
        )
        .unwrap();
        let report = run_fault_campaign(&FaultCampaignConfig {
            base,
            levels: default_levels(),
            fault_seed: 9,
        })
        .unwrap();
        assert_eq!(report.runs.len(), 2 * 4 * 3); // scenarios × levels × schedulers
        for level in ["none", "light", "moderate", "heavy"] {
            for sched in ["OLA-lite", "OLA-lite(a=1.5)"] {
                let agg = report
                    .aggregates
                    .iter()
                    .find(|a| a.level == level && a.scheduler == sched)
                    .unwrap_or_else(|| panic!("missing table cell {level}/{sched}"));
                assert!(
                    agg.mean_ratio.is_finite() && agg.mean_ratio > 0.99,
                    "{sched} at {level}: mean ratio {}",
                    agg.mean_ratio
                );
                assert!(agg.worst_ratio >= agg.mean_ratio - 1e-12);
            }
        }
        for r in &report.runs {
            if r.level == "none" {
                assert_eq!(r.n_fault_events, 0);
            }
            assert!(r.run.makespan.is_finite(), "{}", r.run.scheduler);
        }
    }

    #[test]
    fn none_level_matches_the_fault_free_tournament_engine() {
        // The chaos sweep's baseline level reproduces plain `simulate`
        // bit for bit — the platform-aware engine is a strict superset.
        use crate::campaign::{run_campaign, CampaignConfig};
        let cfg = tiny();
        let chaos = run_fault_campaign(&cfg).unwrap();
        let base: CampaignConfig = cfg.base.clone();
        let plain = run_campaign(&base).unwrap();
        let chaos_none: Vec<&FaultRunRecord> =
            chaos.runs.iter().filter(|r| r.level == "none").collect();
        assert_eq!(chaos_none.len(), plain.runs.len());
        for (c, p) in chaos_none.iter().zip(&plain.runs) {
            assert_eq!(c.run.scheduler, p.scheduler);
            assert_eq!(c.run.max_stretch.to_bits(), p.max_stretch.to_bits());
            assert_eq!(c.run.opt_stretch.to_bits(), p.opt_stretch.to_bits());
            assert_eq!(c.run.n_events, p.n_events);
        }
    }
}
