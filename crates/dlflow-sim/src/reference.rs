//! The PR-5 engine, preserved as a differential oracle.
//!
//! [`ReferenceEngine`] is the pre-flattening incremental engine kept
//! alive verbatim: owned [`ActiveJob`] structs in a `Vec`,
//! `BinaryHeap<Reverse<_>>` event queues, per-job `Vec<Vec<f64>>`
//! volatile-work rows, and the machine-major `O(m · |active| · log)`
//! allocation scan. It speaks the current [`OnlineScheduler`] API
//! through the same `ScratchSet` adapter as [`simulate_dense`], so every
//! policy runs unmodified against both implementations.
//!
//! `tests/prop_shard.rs` drives randomized traces (with and without
//! fault processes) through this engine and the flattened
//! [`Engine`](crate::engine::Engine) and asserts **bit-identical**
//! [`CompletedJob`] streams, event counts, and busy vectors. The two
//! implementations share no event-loop code — agreement is evidence,
//! not tautology. Nothing in the production paths depends on this
//! module; it exists to make hot-path rewrites falsifiable.
//!
//! [`simulate_dense`]: crate::engine::simulate_dense

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::engine::{
    view_of, ActiveJob, Allocation, CompletedJob, JobSpec, MetricsAccumulator, OnlineScheduler,
    PlatformChange, PlatformEvent, RunMetrics, ScratchSet, SimError, StepOutcome, EPS,
};

/// A pushed, not-yet-released job, ordered by `(release, id)` so
/// simultaneous arrivals admit in push order.
#[derive(Debug)]
struct Pending {
    release: f64,
    id: usize,
    job: JobSpec,
}

impl PartialEq for Pending {
    fn eq(&self, other: &Self) -> bool {
        self.release == other.release && self.id == other.id
    }
}
impl Eq for Pending {}
impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Pending {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.release
            .total_cmp(&other.release)
            .then(self.id.cmp(&other.id))
    }
}

/// A queued platform event, ordered by `(time, push order)`.
#[derive(Debug)]
struct PlatformPending {
    time: f64,
    seq: usize,
    event: PlatformEvent,
}

impl PartialEq for PlatformPending {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for PlatformPending {}
impl PartialOrd for PlatformPending {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PlatformPending {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time
            .total_cmp(&other.time)
            .then(self.seq.cmp(&other.seq))
    }
}

/// The pre-flattening incremental engine (owned job structs, binary
/// heaps, allocation lookups by binary search), preserved as a
/// differential oracle. Semantics — event ordering, EPS tolerances,
/// float accumulation order, error precedence — are exactly the
/// flattened engine's; only the data layout differs.
#[derive(Debug)]
pub struct ReferenceEngine {
    n_machines: usize,
    now: f64,
    pending: BinaryHeap<Reverse<Pending>>,
    active: Vec<ActiveJob>,
    next_id: usize,
    n_events: usize,
    n_plans: usize,
    busy: Vec<f64>,
    completed: Vec<CompletedJob>,
    /// When `false`, completions feed the metrics accumulator but are
    /// not buffered for [`ReferenceEngine::take_completed`].
    pub record_completions: bool,
    metrics: MetricsAccumulator,
    n_completed: usize,
    up: Vec<bool>,
    platform: BinaryHeap<Reverse<PlatformPending>>,
    n_platform_pushed: usize,
    faulty: bool,
    /// Parallel to `active` when `faulty`: per job, the work fraction
    /// each machine has contributed since it last (re)entered service.
    volatile: Vec<Vec<f64>>,
    // Scratch buffers recycled across events.
    rate: Vec<f64>,
    machine_share: Vec<f64>,
    scratch: ScratchSet,
    plan_alloc: Allocation,
}

impl ReferenceEngine {
    /// A fresh engine for `n_machines` machines, at time 0, with no jobs.
    pub fn new(n_machines: usize) -> ReferenceEngine {
        assert!(n_machines > 0, "engine needs at least one machine");
        ReferenceEngine {
            n_machines,
            now: 0.0,
            pending: BinaryHeap::new(),
            active: Vec::new(),
            next_id: 0,
            n_events: 0,
            n_plans: 0,
            busy: vec![0.0; n_machines],
            completed: Vec::new(),
            record_completions: true,
            metrics: MetricsAccumulator::new(),
            n_completed: 0,
            up: vec![true; n_machines],
            platform: BinaryHeap::new(),
            n_platform_pushed: 0,
            faulty: false,
            volatile: Vec::new(),
            rate: Vec::new(),
            machine_share: vec![0.0; n_machines],
            scratch: ScratchSet::default(),
            plan_alloc: Allocation::default(),
        }
    }

    /// Number of machines.
    pub fn n_machines(&self) -> usize {
        self.n_machines
    }

    /// Current simulation time.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Events processed so far.
    pub fn n_events(&self) -> usize {
        self.n_events
    }

    /// `plan` invocations so far.
    pub fn n_plans(&self) -> usize {
        self.n_plans
    }

    /// Busy machine-seconds per machine so far.
    pub fn busy(&self) -> &[f64] {
        &self.busy
    }

    /// Jobs completed so far.
    pub fn n_completed(&self) -> usize {
        self.n_completed
    }

    /// Running metrics over everything completed so far.
    pub fn metrics(&self) -> RunMetrics {
        self.metrics.metrics()
    }

    /// Enqueues a future arrival; same validation and id assignment as
    /// the flattened engine.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidJob`] for a malformed spec (no id consumed).
    pub fn push_arrival(&mut self, job: JobSpec) -> Result<usize, SimError> {
        let invalid = |reason| Err(SimError::InvalidJob { reason });
        if job.costs.len() != self.n_machines {
            return invalid("costs length does not match the machine count");
        }
        if !job.costs.iter().any(|c| c.is_finite()) {
            return invalid("job can run on no machine");
        }
        if !job.costs.iter().all(|c| *c >= 0.0) {
            return invalid("job has a negative or NaN cost");
        }
        if !(job.release.is_finite() && job.release >= 0.0) {
            return invalid("job release must be finite and non-negative");
        }
        if !(job.weight.is_finite() && job.weight >= 0.0) {
            return invalid("job weight must be finite and non-negative");
        }
        let id = self.next_id;
        self.next_id += 1;
        self.pending.push(Reverse(Pending {
            release: job.release,
            id,
            job,
        }));
        Ok(id)
    }

    /// Enqueues a machine failure or recovery at `event.time`.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidPlatformEvent`] for an out-of-range machine or
    /// non-finite/negative time.
    pub fn push_platform_event(&mut self, event: PlatformEvent) -> Result<(), SimError> {
        let invalid = |reason| Err(SimError::InvalidPlatformEvent { reason });
        if event.machine >= self.n_machines {
            return invalid("machine index out of range");
        }
        if !(event.time.is_finite() && event.time >= 0.0) {
            return invalid("event time must be finite and non-negative");
        }
        if !self.faulty {
            self.faulty = true;
            self.volatile = self
                .active
                .iter()
                .map(|_| vec![0.0; self.n_machines])
                .collect();
        }
        let seq = self.n_platform_pushed;
        self.n_platform_pushed += 1;
        self.platform.push(Reverse(PlatformPending {
            time: event.time,
            seq,
            event,
        }));
        Ok(())
    }

    /// Pushes a whole availability mask taking effect at `time`.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidPlatformEvent`] on a length mismatch or bad
    /// time.
    pub fn push_platform_mask(&mut self, time: f64, up: &[bool]) -> Result<(), SimError> {
        if up.len() != self.n_machines {
            return Err(SimError::InvalidPlatformEvent {
                reason: "mask length does not match the machine count",
            });
        }
        for (machine, &alive) in up.iter().enumerate() {
            self.push_platform_event(PlatformEvent {
                time,
                machine,
                change: if alive {
                    PlatformChange::Up
                } else {
                    PlatformChange::Down
                },
            })?;
        }
        Ok(())
    }

    fn apply_due_platform(&mut self, policy: &mut dyn OnlineScheduler) -> usize {
        let mut applied = 0;
        loop {
            match self.platform.peek() {
                Some(Reverse(p)) if p.time <= self.now + EPS => {}
                _ => break,
            }
            let Some(Reverse(p)) = self.platform.pop() else {
                break;
            };
            let i = p.event.machine;
            match p.event.change {
                PlatformChange::Down if self.up[i] => {
                    self.up[i] = false;
                    for (aj, a) in self.active.iter_mut().enumerate() {
                        a.remaining = (a.remaining + self.volatile[aj][i]).min(1.0);
                        self.volatile[aj][i] = 0.0;
                    }
                }
                PlatformChange::Up if !self.up[i] => {
                    self.up[i] = true;
                }
                _ => {}
            }
            self.n_events += 1;
            applied += 1;
        }
        if applied > 0 {
            policy.on_platform_change(self.now, &self.up);
        }
        applied
    }

    fn admit_due(&mut self, policy: &mut dyn OnlineScheduler) -> usize {
        let mut admitted = 0;
        loop {
            match self.pending.peek() {
                Some(Reverse(p)) if p.release <= self.now + EPS => {}
                _ => break,
            }
            let Some(Reverse(p)) = self.pending.pop() else {
                break;
            };
            let job = ActiveJob::new(p.id, p.job);
            policy.on_arrival(self.now, view_of(&job));
            self.active.push(job);
            if self.faulty {
                self.volatile.push(vec![0.0; self.n_machines]);
            }
            self.n_events += 1;
            admitted += 1;
        }
        admitted
    }

    /// Advances the engine by one event (exact PR-5 `step` semantics).
    ///
    /// # Errors
    ///
    /// The same [`SimError`] surface as the flattened engine's `step`.
    pub fn step(&mut self, policy: &mut dyn OnlineScheduler) -> Result<StepOutcome, SimError> {
        if self.active.is_empty() {
            let t_arrival = self.pending.peek().map(|Reverse(p)| p.release);
            let t_platform = self.platform.peek().map(|Reverse(p)| p.time);
            let t = match (t_arrival, t_platform) {
                (None, None) => return Ok(StepOutcome::Idle),
                (Some(a), None) => a,
                (None, Some(p)) => p,
                (Some(a), Some(p)) => a.min(p),
            };
            self.now = self.now.max(t);
            self.apply_due_platform(policy);
            self.admit_due(policy);
            return Ok(StepOutcome::Advanced);
        }

        // Platform events due now take effect before the policy plans.
        self.apply_due_platform(policy);

        let m = self.n_machines;
        self.scratch.fill(&self.active, m);
        let mut alloc = std::mem::take(&mut self.plan_alloc);
        alloc.reset(m);
        policy.plan(self.now, &self.scratch.view(m), &mut alloc);
        self.n_plans += 1;

        // Validate the allocation and compute per-job progress rates:
        // the legacy machine-major scan over the active list, each share
        // a binary search into the sparse row.
        self.rate.clear();
        self.rate.resize(self.active.len(), 0.0);
        for i in 0..m {
            let mut total = 0.0;
            for (aj, a) in self.active.iter().enumerate() {
                let share = alloc.share(i, a.id);
                if share <= EPS {
                    continue;
                }
                if self.faulty && !self.up[i] {
                    self.plan_alloc = alloc;
                    return Err(SimError::DeadMachineAllocation {
                        machine: i,
                        job: a.id,
                    });
                }
                let c = a.costs[i];
                if !c.is_finite() {
                    self.plan_alloc = alloc;
                    return Err(SimError::ForbiddenAssignment {
                        machine: i,
                        job: a.id,
                    });
                }
                total += share;
                if c <= EPS {
                    self.rate[aj] = f64::INFINITY;
                } else {
                    self.rate[aj] += share / c;
                }
            }
            if total > 1.0 + 1e-6 {
                self.plan_alloc = alloc;
                return Err(SimError::MachineOversubscribed { machine: i, total });
            }
            self.machine_share[i] = total;
        }

        // Horizon.
        let t_arrival = self.pending.peek().map(|Reverse(p)| p.release);
        let t_platform = self.platform.peek().map(|Reverse(p)| p.time);
        let mut t_complete: Option<f64> = None;
        for (aj, a) in self.active.iter().enumerate() {
            if self.rate[aj] > 0.0 {
                let t = if self.rate[aj].is_infinite() {
                    self.now
                } else {
                    self.now + a.remaining / self.rate[aj]
                };
                t_complete = Some(t_complete.map_or(t, |cur: f64| cur.min(t)));
            }
        }

        let t_next = [t_arrival, t_platform, t_complete]
            .into_iter()
            .flatten()
            .fold(f64::INFINITY, f64::min);
        if !t_next.is_finite() {
            self.plan_alloc = alloc;
            return Err(SimError::Stalled { at: self.now });
        }
        let dt = (t_next - self.now).max(0.0);

        // Integrate progress.
        for i in 0..m {
            self.busy[i] += self.machine_share[i] * dt;
        }
        if self.faulty && dt > 0.0 {
            for i in 0..m {
                if !self.up[i] {
                    continue;
                }
                for (aj, a) in self.active.iter().enumerate() {
                    let share = alloc.share(i, a.id);
                    if share > EPS && a.costs[i] > EPS {
                        self.volatile[aj][i] += share / a.costs[i] * dt;
                    }
                }
            }
        }
        self.plan_alloc = alloc;
        for (aj, a) in self.active.iter_mut().enumerate() {
            if self.rate[aj].is_infinite() {
                a.remaining = 0.0;
            } else {
                a.remaining -= self.rate[aj] * dt;
            }
        }
        self.now = self.now.max(t_next);
        self.n_events += 1;

        // Completions (preserving admission order of the survivors).
        let mut k = 0;
        while k < self.active.len() {
            if self.active[k].remaining <= EPS {
                let a = self.active.remove(k);
                if self.faulty {
                    self.volatile.remove(k);
                }
                policy.on_completion(self.now, a.id);
                let done = CompletedJob {
                    id: a.id,
                    release: a.release,
                    weight: a.weight,
                    fastest_cost: a.fastest,
                    completion: self.now,
                };
                self.metrics.push(&done);
                self.n_completed += 1;
                if self.record_completions {
                    self.completed.push(done);
                }
            } else {
                k += 1;
            }
        }

        // Completions → platform changes → arrivals at t_next.
        self.apply_due_platform(policy);
        self.admit_due(policy);
        Ok(StepOutcome::Advanced)
    }

    /// Steps until idle, with the same stall bound as the flattened
    /// engine.
    ///
    /// # Errors
    ///
    /// Propagates the first [`SimError`] a step surfaces.
    pub fn drain(&mut self, policy: &mut dyn OnlineScheduler) -> Result<(), SimError> {
        let max_iters =
            100_000 + 200 * self.next_id * (self.n_machines + 2) + 2 * self.n_platform_pushed;
        for _ in 0..max_iters {
            if self.step(policy)? == StepOutcome::Idle {
                return Ok(());
            }
        }
        Err(SimError::Stalled { at: self.now })
    }

    /// Takes the buffered completions (empties the buffer).
    pub fn take_completed(&mut self) -> Vec<CompletedJob> {
        std::mem::take(&mut self.completed)
    }
}

/// SWRPT exactly as PR 5 ranked it, frozen for benchmarking.
///
/// The live [`Swrpt`](crate::schedulers::Swrpt) has since moved to
/// recycled scratch buffers, a packed integer sort key, and an
/// insertion sort — so pairing [`ReferenceEngine`] with the *live*
/// policy would measure a hybrid that never shipped. This policy
/// re-creates the PR-5 plan verbatim: fresh `order`/`prios` vectors per
/// plan, a stable `sort_by` whose comparator re-reads the job views,
/// a fresh machine mask, and a fresh [`Allocation`] — one measurement
/// of the whole PR-5 stack on today's host, which is what the
/// throughput-floor ratios in `bench-report` divide by. The produced
/// allocations are identical to the live SWRPT's (same priority, same
/// tie-break), only slower to compute; it is fault-unaware, as PR 5
/// was, so drive it on fault-free workloads only.
#[derive(Default)]
pub struct Pr5Swrpt;

impl Pr5Swrpt {
    /// Fresh policy.
    pub fn new() -> Self {
        Pr5Swrpt
    }
}

impl OnlineScheduler for Pr5Swrpt {
    fn name(&self) -> String {
        "SWRPT@PR5".into()
    }

    fn on_arrival(&mut self, _now: f64, _job: crate::engine::JobView<'_>) {}

    fn on_completion(&mut self, _now: f64, _id: usize) {}

    fn on_platform_change(&mut self, _now: f64, _up: &[bool]) {}

    fn plan(&mut self, _now: f64, active: &crate::engine::ActiveSet<'_>, alloc: &mut Allocation) {
        let n_machines = active.n_machines();
        let mut order: Vec<usize> = (0..active.len()).collect(); // dlflint:allow(alloc-in-hot-loop, "frozen PR-5 baseline: the per-plan allocation is what it measures")
        let prios: Vec<f64> = (0..active.len())
            .map(|k| {
                let a = active.get(k);
                -(a.remaining * a.fastest_cost()) / a.weight.max(1e-12)
            })
            .collect(); // dlflint:allow(alloc-in-hot-loop, "frozen PR-5 baseline: the per-plan allocation is what it measures")
        order.sort_by(|&x, &y| {
            prios[y]
                .partial_cmp(&prios[x])
                .unwrap() // dlflint:allow(hot-path-panic, "frozen PR-5 comparator verbatim; priorities come from validated finite inputs, never NaN")
                .then(active.get(x).id.cmp(&active.get(y).id))
        });
        let mut free = vec![true; n_machines]; // dlflint:allow(alloc-in-hot-loop, "frozen PR-5 baseline: the per-plan allocation is what it measures")
        for k in order {
            let job = active.get(k);
            let mut best: Option<(usize, f64)> = None;
            for (i, slot) in free.iter_mut().enumerate() {
                if !*slot {
                    continue;
                }
                if let Some(c) = job.cost(i) {
                    // dlflint:allow(hot-path-panic, "frozen PR-5 scan verbatim; best is Some whenever the right operand is reached")
                    if best.is_none() || c < best.unwrap().1 {
                        best = Some((i, c));
                    }
                }
            }
            if let Some((i, _)) = best {
                free[i] = false;
                alloc.set(i, job.id, 1.0);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, JobSpec};
    use crate::schedulers::Swrpt;

    #[test]
    fn reference_matches_flattened_on_a_small_mixed_run() {
        let specs = [
            (0.0, 1.0, vec![2.0, 4.0]),
            (0.5, 2.0, vec![1.0, f64::INFINITY]),
            (0.5, 1.0, vec![f64::INFINITY, 3.0]),
            (4.0, 5.0, vec![0.5, 0.5]),
        ];
        let mut flat = Engine::new(2);
        let mut reference = ReferenceEngine::new(2);
        let mut p1 = Swrpt::new();
        let mut p2 = Swrpt::new();
        for (release, weight, costs) in &specs {
            flat.push_arrival(JobSpec {
                release: *release,
                weight: *weight,
                costs: costs.clone(),
            })
            .unwrap();
            reference
                .push_arrival(JobSpec {
                    release: *release,
                    weight: *weight,
                    costs: costs.clone(),
                })
                .unwrap();
        }
        flat.drain(&mut p1).unwrap();
        reference.drain(&mut p2).unwrap();
        assert_eq!(flat.take_completed(), reference.take_completed());
        assert_eq!(flat.n_events(), reference.n_events());
        assert_eq!(flat.n_plans(), reference.n_plans());
        let fb: Vec<u64> = flat.busy().iter().map(|b| b.to_bits()).collect();
        let rb: Vec<u64> = reference.busy().iter().map(|b| b.to_bits()).collect();
        assert_eq!(fb, rb);
    }

    #[test]
    fn reference_matches_flattened_under_faults() {
        let mut flat = Engine::new(2);
        let mut reference = ReferenceEngine::new(2);
        let mut p1 = Swrpt::new();
        let mut p2 = Swrpt::new();
        for (t, machine, change) in [
            (1.0, 0, PlatformChange::Down),
            (2.5, 0, PlatformChange::Up),
            (3.0, 1, PlatformChange::Down),
            (5.0, 1, PlatformChange::Up),
        ] {
            let ev = PlatformEvent {
                time: t,
                machine,
                change,
            };
            flat.push_platform_event(ev).unwrap();
            reference.push_platform_event(ev).unwrap();
        }
        for (release, weight, costs) in [
            (0.0, 1.0, vec![2.0, 2.0]),
            (0.5, 1.0, vec![4.0, 4.0]),
            (2.0, 3.0, vec![1.0, 2.0]),
        ] {
            flat.push_arrival(JobSpec {
                release,
                weight,
                costs: costs.clone(),
            })
            .unwrap();
            reference
                .push_arrival(JobSpec {
                    release,
                    weight,
                    costs,
                })
                .unwrap();
        }
        flat.drain(&mut p1).unwrap();
        reference.drain(&mut p2).unwrap();
        let a = flat.take_completed();
        let b = reference.take_completed();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.completion.to_bits(), y.completion.to_bits());
        }
        assert_eq!(flat.n_events(), reference.n_events());
    }
}
