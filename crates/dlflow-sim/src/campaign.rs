//! Scheduler-tournament campaign engine — the paper's §6 evaluation,
//! batched.
//!
//! A *campaign* runs the full cross-product of
//!
//! ```text
//! platform family × workload family × seed × scheduler
//! ```
//!
//! through the incremental event engine (each run is a
//! [`simulate`] drain of an [`Engine`](crate::engine::Engine)), in
//! parallel over scenarios (vendored-rayon chunks), and aggregates
//! per-run metrics into the statistics a
//! methodology comparison needs: mean/median/p95/worst of the
//! degradation ratio against the **exact** offline bound, head-to-head
//! win matrices, and raw max-stretch / sum-stretch / makespan /
//! utilization columns.
//!
//! The yardstick is Theorem 2 itself: every scenario instance is
//! rounded to a few significand bits ([`Instance::quantize_sig_bits`])
//! so the very same instance can be simulated in `f64` *and* solved
//! exactly in [`Rat`](dlflow_num::Rat) arithmetic
//! ([`Instance::to_exact_dyadic`]) without bignum blow-up; the reported
//! `stretch_ratio` is online-max-stretch ÷ exact-optimal max-stretch,
//! per run.
//!
//! Campaigns are described by a small line-based text config (documented
//! in `docs/FORMATS.md`, next to `.dlf`):
//!
//! ```text
//! name quick
//! seeds 20                 # seeds per (platform × workload) cell
//! platform small servers=3 banks=4 heterogeneity=3
//! workload steady jobs=8 load=1.2
//! scheduler mct
//! scheduler ola throttle=30
//! ```
//!
//! ## Example
//!
//! ```
//! use dlflow_sim::campaign::{parse_campaign, run_campaign};
//!
//! let cfg = parse_campaign("
//!     name demo
//!     seeds 2
//!     platform tiny servers=2 banks=2 heterogeneity=2
//!     workload light jobs=3 load=0.8
//!     scheduler mct
//!     scheduler srpt
//! ").unwrap();
//! let report = run_campaign(&cfg).unwrap();
//! assert_eq!(report.runs.len(), 2 * 2); // 2 seeds × 2 schedulers
//! // Online policies can never beat the exact offline optimum.
//! assert!(report.runs.iter().all(|r| r.stretch_ratio > 0.99));
//! ```

use crate::engine::{simulate, OnlineScheduler, RunMetrics};
use crate::schedulers::{
    Edf, FifoFastest, Mct, OfflineAdapt, OlaLite, RoundRobin, Srpt, Swrpt, WeightedAge,
};
use dlflow_core::instance::Instance;
use dlflow_core::maxflow::{min_max_weighted_flow_divisible_with, ProbeMethod};
use dlflow_gripps::{CostModel, PlatformFamily, RequestFamily};
use rayon::prelude::*;

/// One scheduler entry of a campaign, with its tunable knobs.
#[derive(Clone, Debug, PartialEq)]
pub enum SchedulerSpec {
    /// Minimum Completion Time (non-preemptive, irrevocable).
    Mct,
    /// First-in-first-out on fastest free machines.
    Fifo,
    /// Shortest Remaining Processing Time.
    Srpt,
    /// Shortest *Weighted* Remaining Processing Time.
    Swrpt,
    /// Fluid processor sharing.
    RoundRobin,
    /// Largest weighted age first.
    WeightedAge,
    /// Earliest Deadline First on guessed deadlines
    /// (`d̂_j = r_j + target·p̄_j/w_j`).
    Edf {
        /// Deadline-guess multiplier (see [`Edf`]).
        target: f64,
    },
    /// The paper's online adaptation of the offline algorithm.
    Ola {
        /// Minimum simulated time between LP re-solves (0 = every event).
        throttle: f64,
        /// Bisection iterations per re-solve.
        bisection: usize,
    },
    /// The production-cheap OLA variant: geometric objective walk
    /// instead of a full bisection (see [`OlaLite`]).
    OlaLite {
        /// Geometric walk factor (> 1); the committed objective
        /// overshoots the optimum by at most this factor.
        alpha: f64,
    },
}

impl SchedulerSpec {
    /// Stable display label, used as the scheduler column of reports.
    /// Single-sourced from the policy's own
    /// [`OnlineScheduler::name`], so campaign reports and the other
    /// experiment binaries always agree on scheduler names.
    pub fn label(&self) -> String {
        self.build().name()
    }

    /// Instantiates the policy. The box is `Send` so a sharded drain
    /// can hand each shard's policy to a worker thread.
    pub fn build(&self) -> Box<dyn OnlineScheduler + Send> {
        match self {
            SchedulerSpec::Mct => Box::new(Mct::new()),
            SchedulerSpec::Fifo => Box::new(FifoFastest::new()),
            SchedulerSpec::Srpt => Box::new(Srpt::new()),
            SchedulerSpec::Swrpt => Box::new(Swrpt::new()),
            SchedulerSpec::RoundRobin => Box::new(RoundRobin::new()),
            SchedulerSpec::WeightedAge => Box::new(WeightedAge::new()),
            SchedulerSpec::Edf { target } => Box::new(Edf::with_target(*target)),
            SchedulerSpec::Ola {
                throttle,
                bisection,
            } => {
                let mut ola = OfflineAdapt::with_throttle(*throttle);
                ola.bisection_iters = *bisection;
                Box::new(ola)
            }
            SchedulerSpec::OlaLite { alpha } => Box::new(OlaLite::with_alpha(*alpha)),
        }
    }

    /// Parses the compact one-token form used by `dlflow simulate
    /// --scheduler`: `kind[:key=val[,key=val…]]`, e.g. `swrpt` or
    /// `ola:throttle=30,bisect=20` — the same kinds and options as the
    /// campaign config's `scheduler` lines.
    pub fn parse_compact(spec: &str) -> Result<SchedulerSpec, String> {
        let (kind, opts) = match spec.split_once(':') {
            Some((k, o)) => (k, o),
            None => (spec, ""),
        };
        let mut args = Vec::new();
        for tok in opts.split(',').filter(|t| !t.is_empty()) {
            let (k, v) = tok
                .split_once('=')
                .ok_or_else(|| format!("scheduler option {tok:?}: expected key=value"))?;
            let v: f64 = v
                .parse()
                .map_err(|_| format!("scheduler option {tok:?}: bad number"))?;
            if !v.is_finite() {
                return Err(format!("scheduler option {tok:?}: number must be finite"));
            }
            args.push((k.to_string(), v));
        }
        SchedulerSpec::parse(kind, &args)
    }

    /// Parses `kind key=val…` tokens from a `scheduler` config line.
    pub fn parse(kind: &str, args: &[(String, f64)]) -> Result<SchedulerSpec, String> {
        let only = |allowed: &[&str]| -> Result<(), String> {
            for (k, _) in args {
                if !allowed.contains(&k.as_str()) {
                    return Err(format!("scheduler {kind}: unknown option {k:?}"));
                }
            }
            Ok(())
        };
        let get = |key: &str, default: f64| -> f64 {
            args.iter()
                .find(|(k, _)| k == key)
                .map_or(default, |(_, v)| *v)
        };
        match kind {
            "mct" => only(&[]).map(|_| SchedulerSpec::Mct),
            "fifo" => only(&[]).map(|_| SchedulerSpec::Fifo),
            "srpt" => only(&[]).map(|_| SchedulerSpec::Srpt),
            "swrpt" => only(&[]).map(|_| SchedulerSpec::Swrpt),
            "rr" => only(&[]).map(|_| SchedulerSpec::RoundRobin),
            "wage" => only(&[]).map(|_| SchedulerSpec::WeightedAge),
            "edf" => {
                only(&["target"])?;
                let target = get("target", 2.0);
                if target <= 0.0 {
                    return Err(format!(
                        "scheduler edf: target must be positive, got {target}"
                    ));
                }
                Ok(SchedulerSpec::Edf { target })
            }
            "ola" => {
                only(&["throttle", "bisect"])?;
                let throttle = get("throttle", 0.0);
                let bisection = get("bisect", 40.0);
                if throttle < 0.0 {
                    return Err(format!(
                        "scheduler ola: throttle must be non-negative, got {throttle}"
                    ));
                }
                // dlflint:allow(float-eq, "fract() == 0.0 is an exact integrality test")
                if !(1.0..=MAX_COUNT).contains(&bisection) || bisection.fract() != 0.0 {
                    return Err(format!(
                        "scheduler ola: bisect must be a whole number in 1..={MAX_COUNT}, got {bisection}"
                    ));
                }
                Ok(SchedulerSpec::Ola {
                    throttle,
                    bisection: bisection as usize,
                })
            }
            "olalite" => {
                only(&["alpha"])?;
                let alpha = get("alpha", 2.0);
                if !alpha.is_finite() || alpha <= 1.0 {
                    return Err(format!(
                        "scheduler olalite: alpha must be finite and > 1, got {alpha}"
                    ));
                }
                Ok(SchedulerSpec::OlaLite { alpha })
            }
            other => Err(format!(
                "unknown scheduler {other:?} (expected mct|fifo|srpt|swrpt|rr|wage|edf|ola|olalite)"
            )),
        }
    }
}

/// A parsed campaign description: the cross-product to run.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// Campaign name (stamped into reports).
    pub name: String,
    /// Platform families (rows of the cross-product).
    pub platforms: Vec<PlatformFamily>,
    /// Workload families.
    pub workloads: Vec<RequestFamily>,
    /// Tournament entrants.
    pub schedulers: Vec<SchedulerSpec>,
    /// Seeds per (platform × workload) cell.
    pub n_seeds: u64,
    /// Base seed all scenario seeds derive from.
    pub seed_base: u64,
    /// Significand bits kept by the dyadic quantization (see
    /// [`Instance::quantize_sig_bits`]).
    pub sig_bits: u32,
    /// Re-weight every instance with `w_j = 1/p̄_j` so max weighted flow
    /// *is* max stretch (the paper's §6 objective). When false, the
    /// GriPPS priority weights {1,2,5} are kept.
    pub stretch_weights: bool,
}

/// The built-in quick-mode tournament: 1 platform × 1 workload ×
/// 20 seeds × 6 schedulers. `cargo run --release -p dlflow-bench --bin
/// campaign` runs it as-is.
pub const QUICK_CONFIG: &str = "\
# dlflow campaign config — see docs/FORMATS.md
name quick
seeds 20
seed-base 1
sigbits 12
weights stretch
platform cluster servers=4 banks=5 heterogeneity=3
workload steady jobs=8 load=1.2
scheduler mct
scheduler fifo
scheduler srpt
scheduler swrpt
scheduler edf
scheduler ola
";

impl CampaignConfig {
    /// Parses [`QUICK_CONFIG`].
    pub fn quick() -> CampaignConfig {
        parse_campaign(QUICK_CONFIG).expect("built-in quick config parses")
    }
}

/// Names end up in JSON strings and markdown table cells, so restrict
/// them to a charset that needs no escaping in either.
fn check_name(name: &str, line: usize) -> Result<String, String> {
    let ok = !name.is_empty()
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '.' | '-'));
    if ok {
        Ok(name.to_string())
    } else {
        Err(format!(
            "line {line}: name {name:?} may only contain letters, digits, '_', '.', '-'"
        ))
    }
}

fn parse_kv_f64(tok: &str, line: usize) -> Result<(String, f64), String> {
    let (k, v) = tok
        .split_once('=')
        .ok_or_else(|| format!("line {line}: expected key=value, got {tok:?}"))?;
    let v: f64 = v
        .parse()
        .map_err(|_| format!("line {line}: bad number in {tok:?}"))?;
    // Rust's f64 parser accepts "nan"/"inf", which would sail through
    // every range check below (all written as negative comparisons).
    if !v.is_finite() {
        return Err(format!("line {line}: number in {tok:?} must be finite"));
    }
    Ok((k.to_string(), v))
}

/// Upper bound for count-valued config options — generous for any real
/// tournament, small enough that `Vec` allocations cannot explode.
const MAX_COUNT: f64 = 10_000.0;

/// Validates a count-valued option: a whole number in `1..=MAX_COUNT`
/// (an f64 `as usize` cast would otherwise saturate huge values and
/// silently truncate fractional ones).
fn as_count(v: f64, what: &str, line: usize) -> Result<usize, String> {
    // dlflint:allow(float-eq, "fract() == 0.0 is an exact integrality test")
    if !(1.0..=MAX_COUNT).contains(&v) || v.fract() != 0.0 {
        return Err(format!(
            "line {line}: {what} must be a whole number in 1..={MAX_COUNT}, got {v}"
        ));
    }
    Ok(v as usize)
}

/// Parses a campaign config document (format in `docs/FORMATS.md`).
pub fn parse_campaign(text: &str) -> Result<CampaignConfig, String> {
    let mut cfg = CampaignConfig {
        name: "campaign".into(),
        platforms: Vec::new(),
        workloads: Vec::new(),
        schedulers: Vec::new(),
        n_seeds: 10,
        seed_base: 1,
        sig_bits: 12,
        stretch_weights: true,
    };
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut toks = line.split_whitespace();
        let directive = toks.next().expect("non-empty line");
        let rest: Vec<&str> = toks.collect();
        let one = |what: &str| -> Result<&str, String> {
            match rest.as_slice() {
                [v] => Ok(v),
                _ => Err(format!("line {lineno}: {directive} expects one {what}")),
            }
        };
        match directive {
            "name" => cfg.name = check_name(one("word")?, lineno)?,
            "seeds" => {
                cfg.n_seeds = one("count")?
                    .parse()
                    .map_err(|_| format!("line {lineno}: bad seed count"))?;
                if cfg.n_seeds == 0 {
                    return Err(format!("line {lineno}: seeds must be >= 1"));
                }
            }
            "seed-base" => {
                cfg.seed_base = one("seed")?
                    .parse()
                    .map_err(|_| format!("line {lineno}: bad seed-base"))?;
            }
            "sigbits" => {
                cfg.sig_bits = one("bit count")?
                    .parse()
                    .map_err(|_| format!("line {lineno}: bad sigbits"))?;
                if !(1..=52).contains(&cfg.sig_bits) {
                    return Err(format!("line {lineno}: sigbits must be in 1..=52"));
                }
            }
            "weights" => {
                cfg.stretch_weights = match one("mode")? {
                    "stretch" => true,
                    "priority" => false,
                    other => {
                        return Err(format!(
                            "line {lineno}: weights must be stretch|priority, got {other:?}"
                        ))
                    }
                };
            }
            "platform" => {
                let Some((name, args)) = rest.split_first() else {
                    return Err(format!("line {lineno}: platform needs a name"));
                };
                let kv: Result<Vec<_>, _> = args.iter().map(|t| parse_kv_f64(t, lineno)).collect();
                let kv = kv?;
                let get = |key: &str, default: f64| {
                    kv.iter()
                        .find(|(k, _)| k == key)
                        .map_or(default, |(_, v)| *v)
                };
                for (k, _) in &kv {
                    if !["servers", "banks", "heterogeneity"].contains(&k.as_str()) {
                        return Err(format!("line {lineno}: platform: unknown option {k:?}"));
                    }
                }
                let n_servers = get("servers", 4.0);
                let n_databanks = get("banks", 5.0);
                let heterogeneity = get("heterogeneity", 3.0);
                if heterogeneity < 1.0 {
                    return Err(format!(
                        "line {lineno}: platform heterogeneity must be >= 1, got {heterogeneity}"
                    ));
                }
                cfg.platforms.push(PlatformFamily {
                    name: check_name(name, lineno)?,
                    n_servers: as_count(n_servers, "platform servers", lineno)?,
                    n_databanks: as_count(n_databanks, "platform banks", lineno)?,
                    heterogeneity,
                });
            }
            "workload" => {
                let Some((name, args)) = rest.split_first() else {
                    return Err(format!("line {lineno}: workload needs a name"));
                };
                let kv: Result<Vec<_>, _> = args.iter().map(|t| parse_kv_f64(t, lineno)).collect();
                let kv = kv?;
                let get = |key: &str, default: f64| {
                    kv.iter()
                        .find(|(k, _)| k == key)
                        .map_or(default, |(_, v)| *v)
                };
                for (k, _) in &kv {
                    if !["jobs", "load"].contains(&k.as_str()) {
                        return Err(format!("line {lineno}: workload: unknown option {k:?}"));
                    }
                }
                let load = get("load", 1.0);
                if load <= 0.0 {
                    return Err(format!("line {lineno}: workload load must be positive"));
                }
                let jobs = get("jobs", 8.0);
                cfg.workloads.push(RequestFamily {
                    name: check_name(name, lineno)?,
                    n_requests: as_count(jobs, "workload jobs", lineno)?,
                    load,
                });
            }
            "scheduler" => {
                let Some((kind, args)) = rest.split_first() else {
                    return Err(format!("line {lineno}: scheduler needs a kind"));
                };
                let kv: Result<Vec<_>, _> = args.iter().map(|t| parse_kv_f64(t, lineno)).collect();
                let spec =
                    SchedulerSpec::parse(kind, &kv?).map_err(|e| format!("line {lineno}: {e}"))?;
                if cfg.schedulers.iter().any(|s| s.label() == spec.label()) {
                    return Err(format!(
                        "line {lineno}: duplicate scheduler {:?}",
                        spec.label()
                    ));
                }
                cfg.schedulers.push(spec);
            }
            other => return Err(format!("line {lineno}: unknown directive {other:?}")),
        }
    }
    if cfg.platforms.is_empty() {
        return Err("config has no `platform` line".into());
    }
    if cfg.workloads.is_empty() {
        return Err("config has no `workload` line".into());
    }
    if cfg.schedulers.is_empty() {
        return Err("config has no `scheduler` line".into());
    }
    Ok(cfg)
}

/// One (scenario, scheduler) outcome.
#[derive(Clone, Debug)]
pub struct RunRecord {
    /// Platform family name.
    pub platform: String,
    /// Workload family name.
    pub workload: String,
    /// Seed index within the cell (`0..n_seeds`).
    pub seed: u64,
    /// Scheduler label.
    pub scheduler: String,
    /// Online max stretch.
    pub max_stretch: f64,
    /// Online sum stretch.
    pub sum_stretch: f64,
    /// Online makespan.
    pub makespan: f64,
    /// Fleet utilization over `[first release, makespan]`.
    pub utilization: f64,
    /// Online max weighted flow (equals `max_stretch` under stretch
    /// weights).
    pub max_weighted_flow: f64,
    /// Exact optimal offline divisible max stretch (Theorem 2 on the
    /// dyadic-exact instance).
    pub opt_stretch: f64,
    /// Degradation ratio `max_stretch / opt_stretch` (≥ 1 up to
    /// simulation float noise).
    pub stretch_ratio: f64,
    /// Events processed by the engine.
    pub n_events: usize,
    /// `plan` invocations.
    pub n_plans: usize,
}

/// Per-scheduler aggregate statistics over all scenarios.
#[derive(Clone, Debug)]
pub struct SchedulerAggregate {
    /// Scheduler label.
    pub scheduler: String,
    /// Mean degradation ratio.
    pub mean_ratio: f64,
    /// Median degradation ratio.
    pub median_ratio: f64,
    /// 95th-percentile (nearest-rank) degradation ratio.
    pub p95_ratio: f64,
    /// Worst degradation ratio.
    pub worst_ratio: f64,
    /// Mean online max stretch.
    pub mean_max_stretch: f64,
    /// Mean online sum stretch.
    pub mean_sum_stretch: f64,
    /// Mean online makespan.
    pub mean_makespan: f64,
    /// Mean fleet utilization.
    pub mean_utilization: f64,
}

/// A finished campaign: every run, plus the aggregate statistics.
#[derive(Clone, Debug)]
pub struct CampaignReport {
    /// Campaign name from the config.
    pub name: String,
    /// Significand bits used by the exact yardstick's quantization.
    pub sig_bits: u32,
    /// `true` when instances were stretch-weighted.
    pub stretch_weights: bool,
    /// Seeds per cell.
    pub n_seeds: u64,
    /// Number of scenarios (platforms × workloads × seeds).
    pub n_scenarios: usize,
    /// Scheduler labels, in config order.
    pub schedulers: Vec<String>,
    /// Platform family names.
    pub platforms: Vec<String>,
    /// Workload family names.
    pub workloads: Vec<String>,
    /// Every (scenario × scheduler) outcome, scenario-major, scheduler
    /// in config order within a scenario.
    pub runs: Vec<RunRecord>,
    /// Aggregates, in scheduler config order.
    pub aggregates: Vec<SchedulerAggregate>,
    /// `win_matrix[a][b]` = number of scenarios where scheduler `a`'s
    /// max stretch strictly beats scheduler `b`'s.
    pub win_matrix: Vec<Vec<usize>>,
}

pub(crate) fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub(crate) fn scenario_seed(base: u64, pi: usize, wi: usize, k: u64) -> u64 {
    splitmix64(
        splitmix64(splitmix64(base.wrapping_add(pi as u64)).wrapping_add(wi as u64))
            .wrapping_add(k),
    )
}

/// Runs every scheduler of the config on one scenario.
fn run_scenario(
    cfg: &CampaignConfig,
    pi: usize,
    wi: usize,
    k: u64,
) -> Result<Vec<RunRecord>, String> {
    let seed = scenario_seed(cfg.seed_base, pi, wi, k);
    let model = CostModel::paper_scale();
    let platform = cfg.platforms[pi].realize(splitmix64(seed ^ 0xA5A5_A5A5));
    let requests = cfg.workloads[wi].realize(&platform, &model, splitmix64(seed ^ 0x5A5A_5A5A));
    // Dyadic, factorization-preserving instance: lossless in f64 *and*
    // as exact rationals, and still uniform-with-restricted-
    // availabilities so the yardstick's probes run as max-flows.
    let base = platform
        .instance_dyadic(&requests, &model, cfg.sig_bits)
        .map_err(|e| format!("scenario ({pi},{wi},{k}): {e}"))?;

    // Exact yardstick: Theorem 2 on the very same (dyadic) instance.
    let exact = base.to_exact_dyadic().with_stretch_weights();
    let opt_stretch = min_max_weighted_flow_divisible_with(&exact, ProbeMethod::MaxFlowUniform)
        .optimum
        .to_f64();
    debug_assert!(opt_stretch > 0.0);

    let sim_inst: Instance<f64> = if cfg.stretch_weights {
        base.with_stretch_weights()
    } else {
        base
    };

    let mut records = Vec::with_capacity(cfg.schedulers.len());
    for spec in &cfg.schedulers {
        let mut policy = spec.build();
        let res = simulate(&sim_inst, policy.as_mut())
            .map_err(|e| format!("scenario ({pi},{wi},{k}) / {}: {e}", spec.label()))?;
        let m = RunMetrics::from_completions(&sim_inst, &res.completions);
        records.push(RunRecord {
            platform: cfg.platforms[pi].name.clone(),
            workload: cfg.workloads[wi].name.clone(),
            seed: k,
            scheduler: spec.label(),
            max_stretch: m.max_stretch,
            sum_stretch: m.sum_stretch,
            makespan: m.makespan,
            utilization: res.utilization(&sim_inst),
            max_weighted_flow: m.max_weighted_flow,
            opt_stretch,
            stretch_ratio: m.max_stretch / opt_stretch,
            n_events: res.n_events,
            n_plans: res.n_plans,
        });
    }
    Ok(records)
}

fn aggregate(cfg: &CampaignConfig, runs: &[RunRecord], n_scenarios: usize) -> CampaignReport {
    let labels: Vec<String> = cfg.schedulers.iter().map(|s| s.label()).collect();
    let ns = labels.len();

    // runs is scenario-major: runs[sc * ns + si] is scenario sc, scheduler si.
    let ratio_of = |sc: usize, si: usize| runs[sc * ns + si].stretch_ratio;
    let stretch_of = |sc: usize, si: usize| runs[sc * ns + si].max_stretch;

    let mut aggregates = Vec::with_capacity(ns);
    for (si, label) in labels.iter().enumerate() {
        let mut ratios: Vec<f64> = (0..n_scenarios).map(|sc| ratio_of(sc, si)).collect();
        ratios.sort_by(|a, b| a.total_cmp(b));
        let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
        let median = ratios[ratios.len() / 2];
        let p95 = ratios[((ratios.len() as f64 * 0.95).ceil() as usize).max(1) - 1];
        let worst = *ratios.last().unwrap();
        let mean_of = |f: &dyn Fn(&RunRecord) -> f64| {
            (0..n_scenarios)
                .map(|sc| f(&runs[sc * ns + si]))
                .sum::<f64>()
                / n_scenarios as f64
        };
        aggregates.push(SchedulerAggregate {
            scheduler: label.clone(),
            mean_ratio: mean,
            median_ratio: median,
            p95_ratio: p95,
            worst_ratio: worst,
            mean_max_stretch: mean_of(&|r| r.max_stretch),
            mean_sum_stretch: mean_of(&|r| r.sum_stretch),
            mean_makespan: mean_of(&|r| r.makespan),
            mean_utilization: mean_of(&|r| r.utilization),
        });
    }

    let mut win_matrix = vec![vec![0usize; ns]; ns];
    for sc in 0..n_scenarios {
        for a in 0..ns {
            for b in 0..ns {
                if a != b && stretch_of(sc, a) < stretch_of(sc, b) - 1e-9 {
                    win_matrix[a][b] += 1;
                }
            }
        }
    }

    CampaignReport {
        name: cfg.name.clone(),
        sig_bits: cfg.sig_bits,
        stretch_weights: cfg.stretch_weights,
        n_seeds: cfg.n_seeds,
        n_scenarios,
        schedulers: labels,
        platforms: cfg.platforms.iter().map(|p| p.name.clone()).collect(),
        workloads: cfg.workloads.iter().map(|w| w.name.clone()).collect(),
        runs: runs.to_vec(),
        aggregates,
        win_matrix,
    }
}

fn run_impl(cfg: &CampaignConfig, parallel: bool) -> Result<CampaignReport, String> {
    let mut scenarios: Vec<(usize, usize, u64)> = Vec::new();
    for pi in 0..cfg.platforms.len() {
        for wi in 0..cfg.workloads.len() {
            for k in 0..cfg.n_seeds {
                scenarios.push((pi, wi, k));
            }
        }
    }
    let results: Vec<Result<Vec<RunRecord>, String>> = if parallel {
        scenarios
            .par_iter()
            .map(|&(pi, wi, k)| run_scenario(cfg, pi, wi, k))
            .collect()
    } else {
        scenarios
            .iter()
            .map(|&(pi, wi, k)| run_scenario(cfg, pi, wi, k))
            .collect()
    };
    let mut runs = Vec::with_capacity(scenarios.len() * cfg.schedulers.len());
    for r in results {
        runs.extend(r?);
    }
    Ok(aggregate(cfg, &runs, scenarios.len()))
}

/// Runs the campaign, scenarios in parallel (vendored-rayon chunks).
/// The report is bit-identical to [`run_campaign_serial`]'s — worker
/// chunking never leaks into results (see `tests/prop_campaign.rs`).
pub fn run_campaign(cfg: &CampaignConfig) -> Result<CampaignReport, String> {
    run_impl(cfg, true)
}

/// Single-threaded reference runner (determinism oracle and small jobs).
pub fn run_campaign_serial(cfg: &CampaignConfig) -> Result<CampaignReport, String> {
    run_impl(cfg, false)
}

/// Formats a float for report output: fixed 6 decimals, deterministic.
pub(crate) fn f6(v: f64) -> String {
    format!("{v:.6}")
}

impl CampaignReport {
    /// Deterministic machine-readable JSON (no serde in the offline
    /// dependency set; hand-rendered like `BENCH_PR3.json`).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!("  \"campaign\": \"{}\",\n", self.name));
        s.push_str(&format!("  \"sig_bits\": {},\n", self.sig_bits));
        s.push_str(&format!(
            "  \"weights\": \"{}\",\n",
            if self.stretch_weights {
                "stretch"
            } else {
                "priority"
            }
        ));
        s.push_str(&format!("  \"seeds_per_cell\": {},\n", self.n_seeds));
        s.push_str(&format!("  \"n_scenarios\": {},\n", self.n_scenarios));
        s.push_str(&format!("  \"n_runs\": {},\n", self.runs.len()));
        let quoted = |v: &[String]| -> String {
            v.iter()
                .map(|x| format!("\"{x}\""))
                .collect::<Vec<_>>()
                .join(", ")
        };
        s.push_str(&format!(
            "  \"platforms\": [{}],\n",
            quoted(&self.platforms)
        ));
        s.push_str(&format!(
            "  \"workloads\": [{}],\n",
            quoted(&self.workloads)
        ));
        s.push_str(&format!(
            "  \"schedulers\": [{}],\n",
            quoted(&self.schedulers)
        ));
        s.push_str("  \"aggregates\": [\n");
        for (i, a) in self.aggregates.iter().enumerate() {
            let comma = if i + 1 == self.aggregates.len() {
                ""
            } else {
                ","
            };
            s.push_str(&format!(
                "    {{\"scheduler\": \"{}\", \"mean_ratio\": {}, \"median_ratio\": {}, \"p95_ratio\": {}, \"worst_ratio\": {}, \"mean_max_stretch\": {}, \"mean_sum_stretch\": {}, \"mean_makespan\": {}, \"mean_utilization\": {}}}{comma}\n",
                a.scheduler,
                f6(a.mean_ratio),
                f6(a.median_ratio),
                f6(a.p95_ratio),
                f6(a.worst_ratio),
                f6(a.mean_max_stretch),
                f6(a.mean_sum_stretch),
                f6(a.mean_makespan),
                f6(a.mean_utilization),
            ));
        }
        s.push_str("  ],\n");
        s.push_str("  \"win_matrix\": [\n");
        for (i, row) in self.win_matrix.iter().enumerate() {
            let comma = if i + 1 == self.win_matrix.len() {
                ""
            } else {
                ","
            };
            let cells: Vec<String> = row.iter().map(|c| c.to_string()).collect();
            s.push_str(&format!("    [{}]{comma}\n", cells.join(", ")));
        }
        s.push_str("  ],\n");
        s.push_str("  \"runs\": [\n");
        for (i, r) in self.runs.iter().enumerate() {
            let comma = if i + 1 == self.runs.len() { "" } else { "," };
            s.push_str(&format!(
                "    {{\"platform\": \"{}\", \"workload\": \"{}\", \"seed\": {}, \"scheduler\": \"{}\", \"max_stretch\": {}, \"sum_stretch\": {}, \"makespan\": {}, \"utilization\": {}, \"max_weighted_flow\": {}, \"opt_stretch\": {}, \"stretch_ratio\": {}, \"n_events\": {}, \"n_plans\": {}}}{comma}\n",
                r.platform,
                r.workload,
                r.seed,
                r.scheduler,
                f6(r.max_stretch),
                f6(r.sum_stretch),
                f6(r.makespan),
                f6(r.utilization),
                f6(r.max_weighted_flow),
                f6(r.opt_stretch),
                f6(r.stretch_ratio),
                r.n_events,
                r.n_plans,
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Markdown summary: the aggregate table and the head-to-head win
    /// matrix.
    pub fn to_markdown(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "# Campaign `{}` — {} scenarios × {} schedulers\n\n",
            self.name,
            self.n_scenarios,
            self.schedulers.len()
        ));
        s.push_str(&format!(
            "Platforms: {} · workloads: {} · {} seeds/cell · weights: {} · exact yardstick: Theorem 2 max-stretch at {} significand bits.\n\n",
            self.platforms.join(", "),
            self.workloads.join(", "),
            self.n_seeds,
            if self.stretch_weights { "stretch" } else { "priority" },
            self.sig_bits
        ));
        s.push_str("## Degradation vs the exact offline bound (max-stretch ratio)\n\n");
        s.push_str("| scheduler | mean | median | p95 | worst | mean maxS | mean sumS | mean makespan | mean util |\n");
        s.push_str("|---|---|---|---|---|---|---|---|---|\n");
        for a in &self.aggregates {
            s.push_str(&format!(
                "| {} | {:.3} | {:.3} | {:.3} | {:.3} | {:.3} | {:.3} | {:.1} | {:.2} |\n",
                a.scheduler,
                a.mean_ratio,
                a.median_ratio,
                a.p95_ratio,
                a.worst_ratio,
                a.mean_max_stretch,
                a.mean_sum_stretch,
                a.mean_makespan,
                a.mean_utilization,
            ));
        }
        s.push_str("\n## Head-to-head wins (row strictly beats column on max stretch)\n\n");
        s.push_str(&format!(
            "| ↓ beats → | {} |\n",
            self.schedulers.join(" | ")
        ));
        s.push_str(&format!("|---|{}\n", "---|".repeat(self.schedulers.len())));
        for (a, row) in self.win_matrix.iter().enumerate() {
            let cells: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(b, c)| if a == b { "·".into() } else { c.to_string() })
                .collect();
            s.push_str(&format!(
                "| {} | {} |\n",
                self.schedulers[a],
                cells.join(" | ")
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TINY: &str = "
        name tiny
        seeds 2
        sigbits 10
        platform p servers=2 banks=3 heterogeneity=2
        workload w jobs=4 load=1.0
        scheduler mct
        scheduler srpt
        scheduler edf target=3
    ";

    #[test]
    fn parses_quick_config() {
        let cfg = CampaignConfig::quick();
        assert_eq!(cfg.name, "quick");
        assert_eq!(cfg.n_seeds, 20);
        assert!(cfg.schedulers.len() >= 3);
        assert!(cfg.stretch_weights);
    }

    #[test]
    fn parse_errors_are_specific() {
        assert!(parse_campaign("frob 1").unwrap_err().contains("frob"));
        assert!(parse_campaign("scheduler zorp\nplatform p\nworkload w")
            .unwrap_err()
            .contains("zorp"));
        assert!(parse_campaign("platform p servers=x")
            .unwrap_err()
            .contains("bad number"));
        assert!(parse_campaign("seeds 0").unwrap_err().contains(">= 1"));
        let noplat = "workload w jobs=2\nscheduler mct";
        assert!(parse_campaign(noplat).unwrap_err().contains("platform"));
        let dup = "platform p\nworkload w\nscheduler mct\nscheduler mct";
        assert!(parse_campaign(dup).unwrap_err().contains("duplicate"));
        // scheduler options are validated
        assert!(parse_campaign("scheduler mct target=2")
            .unwrap_err()
            .contains("unknown option"));
    }

    #[test]
    fn parse_rejects_bad_values_and_names_up_front() {
        // Values that would panic deep inside run_scenario fail at parse
        // time with a line number instead.
        for (bad, needle) in [
            ("platform p heterogeneity=0.5", "heterogeneity"),
            ("platform p servers=0", "whole number"),
            ("platform p banks=0", "whole number"),
            ("platform p servers=1e30", "whole number"),
            ("platform p heterogeneity=nan", "finite"),
            ("workload w jobs=0", "whole number"),
            ("workload w jobs=2.9", "whole number"),
            ("workload w load=0", "load must be positive"),
            ("scheduler edf target=0", "target must be positive"),
            ("scheduler ola throttle=-1", "non-negative"),
            ("scheduler ola bisect=0", "whole number"),
            ("scheduler ola throttle=inf", "finite"),
            // Names reach JSON strings and markdown cells unescaped, so
            // the charset is restricted at parse time.
            ("name he\"llo", "may only contain"),
            ("platform a|b servers=2", "may only contain"),
        ] {
            let err = parse_campaign(bad).unwrap_err();
            assert!(err.contains(needle), "{bad:?} → {err}");
            assert!(
                err.contains("line 1") || !needle.contains("only contain"),
                "{bad:?} error lacks a line number: {err}"
            );
        }
    }

    #[test]
    fn compact_specs_parse_like_config_lines() {
        assert_eq!(
            SchedulerSpec::parse_compact("swrpt").unwrap(),
            SchedulerSpec::Swrpt
        );
        assert_eq!(
            SchedulerSpec::parse_compact("ola:throttle=30,bisect=20").unwrap(),
            SchedulerSpec::Ola {
                throttle: 30.0,
                bisection: 20
            }
        );
        assert_eq!(
            SchedulerSpec::parse_compact("edf:target=3").unwrap(),
            SchedulerSpec::Edf { target: 3.0 }
        );
        assert_eq!(
            SchedulerSpec::parse_compact("olalite").unwrap(),
            SchedulerSpec::OlaLite { alpha: 2.0 }
        );
        assert_eq!(
            SchedulerSpec::parse_compact("olalite:alpha=1.5").unwrap(),
            SchedulerSpec::OlaLite { alpha: 1.5 }
        );
        assert!(SchedulerSpec::parse_compact("zorp").is_err());
        assert!(SchedulerSpec::parse_compact("ola:throttle").is_err());
        assert!(SchedulerSpec::parse_compact("ola:throttle=x").is_err());
        assert!(SchedulerSpec::parse_compact("ola:throttle=inf").is_err());
        assert!(SchedulerSpec::parse_compact("mct:target=2").is_err());
        assert!(SchedulerSpec::parse_compact("olalite:alpha=1").is_err());
        assert!(SchedulerSpec::parse_compact("olalite:alpha=0.5").is_err());
        assert!(SchedulerSpec::parse_compact("olalite:beta=2").is_err());
    }

    #[test]
    fn labels_match_policy_names() {
        // Single source of truth: the campaign column label IS the
        // policy's self-reported name.
        for spec in [
            SchedulerSpec::Mct,
            SchedulerSpec::RoundRobin,
            SchedulerSpec::Edf { target: 3.0 },
            SchedulerSpec::Ola {
                throttle: 30.0,
                bisection: 40,
            },
            SchedulerSpec::OlaLite { alpha: 1.5 },
        ] {
            assert_eq!(spec.label(), spec.build().name());
        }
        assert_eq!(
            SchedulerSpec::Ola {
                throttle: 30.0,
                bisection: 40
            }
            .label(),
            "OLA(t=30)"
        );
        // Every knob is label-visible, so a single-knob sweep is two
        // distinct entrants rather than a duplicate error.
        let sweep = "platform p\nworkload w\nscheduler ola bisect=10\nscheduler ola\n";
        let cfg = parse_campaign(sweep).unwrap();
        assert_eq!(cfg.schedulers[0].label(), "OLA(b=10)");
        assert_eq!(cfg.schedulers[1].label(), "OLA");
    }

    #[test]
    fn tiny_campaign_runs_and_ratios_dominate_the_exact_bound() {
        let cfg = parse_campaign(TINY).unwrap();
        let report = run_campaign(&cfg).unwrap();
        assert_eq!(report.n_scenarios, 2);
        assert_eq!(report.runs.len(), 2 * 3);
        for r in &report.runs {
            assert!(r.opt_stretch > 0.0);
            assert!(
                r.stretch_ratio > 0.99,
                "{}: online stretch {} below exact optimum {}",
                r.scheduler,
                r.max_stretch,
                r.opt_stretch
            );
            assert!(r.utilization > 0.0 && r.utilization <= 1.0 + 1e-9);
        }
        // Aggregates cover each scheduler once, in config order.
        let names: Vec<&str> = report
            .aggregates
            .iter()
            .map(|a| a.scheduler.as_str())
            .collect();
        assert_eq!(names, ["MCT", "SRPT", "EDF(k=3)"]);
    }

    #[test]
    fn win_matrix_is_consistent() {
        let cfg = parse_campaign(TINY).unwrap();
        let report = run_campaign(&cfg).unwrap();
        let ns = report.schedulers.len();
        for a in 0..ns {
            assert_eq!(report.win_matrix[a][a], 0);
            for b in 0..ns {
                assert!(report.win_matrix[a][b] + report.win_matrix[b][a] <= report.n_scenarios);
            }
        }
    }

    #[test]
    fn report_renders_json_and_markdown() {
        let cfg = parse_campaign(TINY).unwrap();
        let report = run_campaign_serial(&cfg).unwrap();
        let json = report.to_json();
        assert!(json.contains("\"campaign\": \"tiny\""));
        assert!(json.contains("\"stretch_ratio\""));
        assert!(json.contains("\"win_matrix\""));
        let md = report.to_markdown();
        assert!(md.contains("| scheduler |"));
        assert!(md.contains("Head-to-head"));
    }

    #[test]
    fn throttled_ola_never_outlives_its_window() {
        // Regression: a cached plan that trickles the last job along at a
        // sliver rate used to stay in force until that job's arbitrarily
        // distant completion (observed stretch ratios in the 10^5 range),
        // because engine events are the only re-solve opportunities. The
        // cache-reuse guard now bounds the projected next completion by
        // the throttle window.
        let cfg = parse_campaign(
            "name reg\nseeds 3\nsigbits 11\n\
             platform small servers=3 banks=4 heterogeneity=2.5\n\
             workload mix jobs=6 load=1.5\n\
             scheduler ola throttle=20 bisect=25\n",
        )
        .unwrap();
        let report = run_campaign(&cfg).unwrap();
        for r in &report.runs {
            assert!(
                r.stretch_ratio < 50.0,
                "throttled OLA ratio exploded: {}",
                r.stretch_ratio
            );
        }
    }

    #[test]
    fn ola_participates_and_reports_per_run_ratio() {
        let cfg = parse_campaign(
            "name olatest\nseeds 1\nsigbits 10\nplatform p servers=2 banks=2 heterogeneity=2\nworkload w jobs=3 load=1.0\nscheduler ola bisect=20\n",
        )
        .unwrap();
        let report = run_campaign(&cfg).unwrap();
        assert_eq!(report.runs.len(), 1);
        let r = &report.runs[0];
        assert_eq!(r.scheduler, "OLA(b=20)"); // non-default bisect shows in the label
                                              // OLA tracks the offline optimum closely on tiny instances.
        assert!(r.stretch_ratio < 3.0, "ratio {}", r.stretch_ratio);
    }
}
