//! Index-based d-ary min-heaps for the engine's event queues.
//!
//! The flattened engine keeps its two event queues — pending arrivals
//! and pending platform changes — in 4-ary min-heaps over small `Copy`
//! key records (a slab slot index plus the ordering key), instead of
//! `BinaryHeap<Reverse<T>>` over owning structs. A 4-ary layout halves
//! the tree depth of a binary heap and keeps each sift touching a
//! single cache line of keys; entries never own heap storage, so
//! `push`/`pop` in the steady state (capacity reached) allocate
//! nothing.
//!
//! Determinism: [`DaryHeap::pop`] always returns the *least* entry
//! under the total order [`HeapOrd::before`]. Every key type used by
//! the engine breaks float ties with a unique sequence number, so the
//! pop sequence is a total order — identical to the `BinaryHeap` the
//! engine used before, regardless of arity or internal layout.

/// Total strict-weak order for heap entries. `a.before(b)` means `a`
/// pops first. Implementations must be total (no incomparable pairs) so
/// the pop order is deterministic.
pub(crate) trait HeapOrd: Copy {
    /// Does `self` order strictly before `other`?
    fn before(&self, other: &Self) -> bool;
}

/// Branching factor: each node has up to 4 children at
/// `4k+1 .. 4k+4`.
const ARITY: usize = 4;

/// A flat-array 4-ary min-heap of `Copy` key records.
#[derive(Debug, Clone)]
pub(crate) struct DaryHeap<T: HeapOrd> {
    items: Vec<T>,
}

impl<T: HeapOrd> Default for DaryHeap<T> {
    fn default() -> Self {
        DaryHeap { items: Vec::new() }
    }
}

impl<T: HeapOrd> DaryHeap<T> {
    /// An empty heap.
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Number of queued entries.
    pub(crate) fn len(&self) -> usize {
        self.items.len()
    }

    /// Is the heap empty?
    #[allow(dead_code)] // completes the len/is_empty pair clippy expects
    pub(crate) fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The least entry, if any, without removing it.
    pub(crate) fn peek(&self) -> Option<&T> {
        self.items.first()
    }

    /// Unordered view of every queued entry (snapshot serialization
    /// sorts what it needs; the engine never relies on this order).
    pub(crate) fn as_slice(&self) -> &[T] {
        &self.items
    }

    /// Inserts an entry. Amortized O(1) allocation-wise: storage only
    /// grows when the all-time high-water mark does.
    pub(crate) fn push(&mut self, item: T) {
        self.items.push(item);
        self.sift_up(self.items.len() - 1);
    }

    /// Removes and returns the least entry.
    pub(crate) fn pop(&mut self) -> Option<T> {
        let n = self.items.len();
        if n == 0 {
            return None;
        }
        self.items.swap(0, n - 1);
        let top = self.items.pop();
        if !self.items.is_empty() {
            self.sift_down(0);
        }
        top
    }

    fn sift_up(&mut self, mut k: usize) {
        while k > 0 {
            let parent = (k - 1) / ARITY;
            if self.items[k].before(&self.items[parent]) {
                self.items.swap(k, parent);
                k = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut k: usize) {
        let n = self.items.len();
        loop {
            let first_child = ARITY * k + 1;
            if first_child >= n {
                break;
            }
            let mut best = first_child;
            let last_child = (first_child + ARITY - 1).min(n - 1);
            for c in first_child + 1..=last_child {
                if self.items[c].before(&self.items[best]) {
                    best = c;
                }
            }
            if self.items[best].before(&self.items[k]) {
                self.items.swap(k, best);
                k = best;
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Mirrors the engine's `(time.total_cmp, seq)` keys.
    #[derive(Clone, Copy, Debug)]
    struct K2(f64, usize);
    impl HeapOrd for K2 {
        fn before(&self, other: &Self) -> bool {
            match self.0.total_cmp(&other.0) {
                std::cmp::Ordering::Less => true,
                std::cmp::Ordering::Greater => false,
                std::cmp::Ordering::Equal => self.1 < other.1,
            }
        }
    }

    #[test]
    fn pops_in_total_order_matching_binary_heap() {
        // Deterministic pseudo-random insertions, including duplicates
        // of the float key (tie-broken by the sequence number).
        let mut heap = DaryHeap::new();
        let mut reference: Vec<K2> = Vec::new();
        let mut x = 0x9e3779b97f4a7c15u64;
        for seq in 0..500 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let t = ((x % 64) as f64) * 0.25;
            heap.push(K2(t, seq));
            reference.push(K2(t, seq));
        }
        reference.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut popped = Vec::new();
        while let Some(k) = heap.pop() {
            popped.push(k);
        }
        assert_eq!(popped.len(), reference.len());
        for (p, r) in popped.iter().zip(&reference) {
            assert_eq!((p.0.to_bits(), p.1), (r.0.to_bits(), r.1));
        }
    }

    #[test]
    fn interleaved_push_pop_keeps_min_at_root() {
        let mut heap = DaryHeap::new();
        for i in (0..40usize).rev() {
            heap.push(K2(i as f64, i));
        }
        assert_eq!(heap.peek().map(|k| k.1), Some(0));
        assert_eq!(heap.pop().map(|k| k.1), Some(0));
        heap.push(K2(-1.0, 99));
        assert_eq!(heap.pop().map(|k| k.1), Some(99));
        assert_eq!(heap.pop().map(|k| k.1), Some(1));
        // 40 pushed, 3 popped, 1 pushed back in.
        assert_eq!(heap.len(), 38);
    }

    #[test]
    fn empty_heap_behaves() {
        let mut heap: DaryHeap<K2> = DaryHeap::new();
        assert!(heap.is_empty());
        assert_eq!(heap.pop().map(|k| k.1), None);
        assert!(heap.peek().is_none());
        assert!(heap.as_slice().is_empty());
    }
}
