//! Workload generation: closed random instances for the offline
//! experiments, and **open-arrival traces** for the streaming engine.
//!
//! The closed half ([`WorkloadSpec`] / [`generate`]) materializes a full
//! [`Instance`] up front — what the exact offline yardsticks need. The
//! open half ([`TraceSpec`] / [`generate_trace`] / [`Trace`]) models the
//! paper's real regime: requests stream into the GriPPS platform from an
//! arrival *process* (Poisson, bursty, or diurnal), and the simulator
//! never needs the whole future. Traces round-trip through the `.dlt`
//! text format (documented in `docs/FORMATS.md`, next to `.dlf`) and
//! replay through the incremental [`Engine`] with memory proportional
//! to the number of *in-flight* requests.

use crate::engine::{
    CompletedJob, Engine, JobSpec, OnlineScheduler, PlatformChange, PlatformEvent, RunMetrics,
    SimError, EPS,
};
use dlflow_core::instance::{Cost, Instance, Job};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Knobs for random instance generation.
#[derive(Clone, Debug)]
pub struct WorkloadSpec {
    /// Number of jobs.
    pub n_jobs: usize,
    /// Number of machines.
    pub n_machines: usize,
    /// Mean inter-arrival time (exponential arrivals).
    pub mean_interarrival: f64,
    /// Job base cost range (on a speed-1 machine), log-uniform.
    pub cost_range: (f64, f64),
    /// Machine cycle-time heterogeneity: cycle ∈ `[1, heterogeneity]`.
    pub heterogeneity: f64,
    /// Probability a machine holds a given job's databank (≥ one forced).
    pub availability: f64,
    /// Job weights drawn uniformly from this palette.
    pub weights: Vec<f64>,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            n_jobs: 10,
            n_machines: 3,
            mean_interarrival: 2.0,
            cost_range: (1.0, 20.0),
            heterogeneity: 3.0,
            availability: 0.6,
            weights: vec![1.0, 2.0, 5.0],
            seed: 0,
        }
    }
}

/// Generates a random unrelated-machines instance with the *uniform
/// machines + restricted availabilities* structure of the GriPPS platform
/// (§3): `c[i][j] = size_j · cycle_i` where available.
pub fn generate(spec: &WorkloadSpec) -> Instance<f64> {
    let mut rng = SmallRng::seed_from_u64(spec.seed);
    let n = spec.n_jobs;
    let m = spec.n_machines;
    assert!(n > 0 && m > 0);

    // Poisson arrivals.
    let mut releases = Vec::with_capacity(n);
    let mut t = 0.0f64;
    for _ in 0..n {
        releases.push(t);
        let u: f64 = rng.gen_range(1e-12..1.0);
        t += -u.ln() * spec.mean_interarrival;
    }

    // Log-uniform sizes.
    let (lo, hi) = spec.cost_range;
    assert!(lo > 0.0 && hi >= lo);
    let sizes: Vec<f64> = (0..n)
        .map(|_| {
            let u: f64 = rng.gen_range(0.0..1.0);
            lo * (hi / lo).powf(u)
        })
        .collect();

    let weights: Vec<f64> = (0..n)
        .map(|_| spec.weights[rng.gen_range(0..spec.weights.len())])
        .collect();
    let cycles: Vec<f64> = (0..m)
        .map(|_| rng.gen_range(1.0..=spec.heterogeneity.max(1.0)))
        .collect();

    let mut avail: Vec<Vec<bool>> = (0..m)
        .map(|_| {
            (0..n)
                .map(|_| rng.gen_bool(spec.availability.clamp(0.0, 1.0)))
                .collect()
        })
        .collect();
    // Force at least one machine per job.
    for j in 0..n {
        if !(0..m).any(|i| avail[i][j]) {
            let i = rng.gen_range(0..m);
            avail[i][j] = true;
        }
    }

    Instance::uniform_restricted(&sizes, &releases, &weights, &cycles, &avail)
        .expect("generator produces valid instances")
}

/// An ensemble of instances differing only by seed.
pub fn ensemble(spec: &WorkloadSpec, count: usize) -> Vec<Instance<f64>> {
    (0..count)
        .map(|k| {
            let mut s = spec.clone();
            s.seed = spec.seed.wrapping_add(k as u64 * 0x9E3779B9);
            generate(&s)
        })
        .collect()
}

// --------------------------------------------------------------------------
// Open-arrival traces.
// --------------------------------------------------------------------------

/// The arrival process of an open trace: how request release dates are
/// spaced.
#[derive(Clone, Debug, PartialEq)]
pub enum ArrivalProcess {
    /// Homogeneous Poisson arrivals at `rate` requests per second.
    Poisson {
        /// Mean arrivals per second.
        rate: f64,
    },
    /// Markov-modulated on/off bursts: inside a burst, Poisson at
    /// `rate`; bursts last `Exp(mean_burst)` seconds and are separated
    /// by silent gaps of `Exp(mean_gap)` seconds.
    Bursty {
        /// Mean arrivals per second *inside* a burst.
        rate: f64,
        /// Mean burst duration (seconds).
        mean_burst: f64,
        /// Mean silent gap between bursts (seconds).
        mean_gap: f64,
    },
    /// Sinusoidal daily cycle: the instantaneous rate oscillates between
    /// `trough_rate` and `peak_rate` with the given period (sampled by
    /// thinning a Poisson process at `peak_rate`).
    Diurnal {
        /// Rate at the daily peak (arrivals per second).
        peak_rate: f64,
        /// Rate at the nightly trough.
        trough_rate: f64,
        /// Cycle length in seconds.
        period: f64,
    },
}

impl ArrivalProcess {
    /// Samples the next `n` arrival times starting at 0.
    fn sample(&self, n: usize, rng: &mut SmallRng) -> Vec<f64> {
        let exp = |rng: &mut SmallRng, mean: f64| -> f64 {
            let u: f64 = rng.gen_range(1e-12..1.0);
            -u.ln() * mean
        };
        let mut out = Vec::with_capacity(n);
        match *self {
            ArrivalProcess::Poisson { rate } => {
                assert!(rate > 0.0, "Poisson rate must be positive");
                let mut t = 0.0;
                for _ in 0..n {
                    t += exp(rng, 1.0 / rate);
                    out.push(t);
                }
            }
            ArrivalProcess::Bursty {
                rate,
                mean_burst,
                mean_gap,
            } => {
                assert!(
                    rate > 0.0 && mean_burst > 0.0 && mean_gap >= 0.0,
                    "bursty process parameters must be positive"
                );
                let mut t = 0.0;
                let mut burst_end = exp(rng, mean_burst);
                while out.len() < n {
                    let dt = exp(rng, 1.0 / rate);
                    if t + dt <= burst_end {
                        t += dt;
                        out.push(t);
                    } else {
                        // The burst ends before the next arrival: skip
                        // the silent gap and open a fresh burst.
                        t = burst_end + exp(rng, mean_gap);
                        burst_end = t + exp(rng, mean_burst);
                    }
                }
            }
            ArrivalProcess::Diurnal {
                peak_rate,
                trough_rate,
                period,
            } => {
                assert!(
                    peak_rate >= trough_rate && trough_rate >= 0.0 && peak_rate > 0.0,
                    "diurnal rates must satisfy peak >= trough >= 0, peak > 0"
                );
                assert!(period > 0.0, "diurnal period must be positive");
                // Thinning: candidates at peak_rate, accepted with
                // probability rate(t)/peak_rate.
                let mut t = 0.0;
                while out.len() < n {
                    t += exp(rng, 1.0 / peak_rate);
                    let phase = (std::f64::consts::TAU * t / period).sin();
                    let rate = trough_rate + (peak_rate - trough_rate) * (1.0 + phase) / 2.0;
                    if rng.gen_range(0.0..1.0) < rate / peak_rate {
                        out.push(t);
                    }
                }
            }
        }
        out
    }
}

/// One arriving request of an open trace.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceArrival {
    /// Release date (seconds).
    pub release: f64,
    /// Request size in work units (cost on machine `i` is
    /// `size · cycle_times[i]`).
    pub size: f64,
    /// Priority weight (≥ 0).
    pub weight: f64,
    /// Which machines hold the request's databank.
    pub avail: Vec<bool>,
}

/// An open-arrival trace: a machine fleet (cycle times) plus a stream of
/// requests sorted by release date, optionally interleaved with platform
/// failure/recovery events. Serializes to the `.dlt` text format and
/// replays through the incremental engine.
#[derive(Clone, Debug, PartialEq)]
pub struct Trace {
    /// Seconds per work unit, one entry per machine.
    pub cycle_times: Vec<f64>,
    /// Requests, sorted by release (ties keep file/generation order).
    pub arrivals: Vec<TraceArrival>,
    /// Machine failure/recovery events, sorted by time. Empty for a
    /// fault-free trace (the replay then takes exactly the fault-free
    /// engine paths).
    pub platform_events: Vec<PlatformEvent>,
}

/// A seeded MTBF/MTTR fault generator: each machine alternates between
/// in-service spells of mean [`FaultProcess::mtbf`] and repair spells of
/// mean [`FaultProcess::mttr`], both exponential, independently per
/// machine. Failures are only injected before [`FaultProcess::horizon`],
/// but every failure's matching recovery is always emitted (possibly past
/// the horizon) — a sampled fault schedule never strands a machine down
/// forever, so every trace eventually completes.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultProcess {
    /// Mean time between failures (seconds in service before a failure).
    pub mtbf: f64,
    /// Mean time to repair (seconds down before recovery).
    pub mttr: f64,
    /// No failure is injected at or after this time.
    pub horizon: f64,
    /// RNG seed (independent of the trace seed).
    pub seed: u64,
}

impl FaultProcess {
    /// Samples the fault schedule for `n_machines` machines,
    /// deterministically from the seed, sorted by `(time, machine)`.
    pub fn sample(&self, n_machines: usize) -> Vec<PlatformEvent> {
        assert!(
            self.mtbf > 0.0 && self.mttr > 0.0 && self.horizon > 0.0,
            "fault process parameters must be positive"
        );
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let mut exp = |mean: f64| -> f64 {
            let u: f64 = rng.gen_range(1e-12..1.0);
            -u.ln() * mean
        };
        let mut events = Vec::new();
        for machine in 0..n_machines {
            let mut t = 0.0f64;
            loop {
                t += exp(self.mtbf);
                if t >= self.horizon {
                    break;
                }
                events.push(PlatformEvent {
                    time: t,
                    machine,
                    change: PlatformChange::Down,
                });
                t += exp(self.mttr);
                events.push(PlatformEvent {
                    time: t,
                    machine,
                    change: PlatformChange::Up,
                });
            }
        }
        events.sort_by(|a, b| a.time.total_cmp(&b.time).then(a.machine.cmp(&b.machine)));
        events
    }
}

/// Knobs for synthetic trace generation.
#[derive(Clone, Debug)]
pub struct TraceSpec {
    /// Number of requests.
    pub n_requests: usize,
    /// Number of machines.
    pub n_machines: usize,
    /// Machine cycle-time heterogeneity: cycle ∈ `[1, heterogeneity]`.
    pub heterogeneity: f64,
    /// Probability a machine holds a given request's databank (≥ one
    /// forced).
    pub availability: f64,
    /// Request size range in work units, log-uniform.
    pub size_range: (f64, f64),
    /// Request weights drawn uniformly from this palette.
    pub weights: Vec<f64>,
    /// The arrival process.
    pub process: ArrivalProcess,
    /// RNG seed.
    pub seed: u64,
    /// Optional machine fault process; `None` (the default) generates a
    /// fault-free trace.
    pub faults: Option<FaultProcess>,
}

impl Default for TraceSpec {
    fn default() -> Self {
        TraceSpec {
            n_requests: 1000,
            n_machines: 3,
            heterogeneity: 3.0,
            availability: 0.6,
            size_range: (0.05, 1.0),
            weights: vec![1.0, 2.0, 5.0],
            process: ArrivalProcess::Poisson { rate: 2.0 },
            seed: 0,
            faults: None,
        }
    }
}

/// Generates a synthetic open-arrival trace.
pub fn generate_trace(spec: &TraceSpec) -> Trace {
    assert!(spec.n_requests > 0 && spec.n_machines > 0);
    let (lo, hi) = spec.size_range;
    assert!(lo > 0.0 && hi >= lo, "size range must be positive");
    assert!(!spec.weights.is_empty(), "weight palette must be non-empty");
    let mut rng = SmallRng::seed_from_u64(spec.seed);
    let m = spec.n_machines;

    let cycle_times: Vec<f64> = (0..m)
        .map(|_| rng.gen_range(1.0..=spec.heterogeneity.max(1.0)))
        .collect();
    let releases = spec.process.sample(spec.n_requests, &mut rng);

    let arrivals = releases
        .into_iter()
        .map(|release| {
            let u: f64 = rng.gen_range(0.0..1.0);
            let size = lo * (hi / lo).powf(u);
            let weight = spec.weights[rng.gen_range(0..spec.weights.len())];
            let mut avail: Vec<bool> = (0..m)
                .map(|_| rng.gen_bool(spec.availability.clamp(0.0, 1.0)))
                .collect();
            if !avail.iter().any(|&a| a) {
                let i = rng.gen_range(0..m);
                avail[i] = true;
            }
            TraceArrival {
                release,
                size,
                weight,
                avail,
            }
        })
        .collect();

    let platform_events = spec
        .faults
        .as_ref()
        .map(|f| f.sample(m))
        .unwrap_or_default();

    Trace {
        cycle_times,
        arrivals,
        platform_events,
    }
}

/// Counters and metrics of one streaming trace replay — the streaming
/// counterpart of [`SimResult`](crate::engine::SimResult) (per-job
/// completion vectors are deliberately absent: memory stays
/// `O(|active|)`).
#[derive(Clone, Debug)]
pub struct ReplayStats {
    /// Requests replayed.
    pub n_jobs: usize,
    /// Events processed.
    pub n_events: usize,
    /// `plan` invocations.
    pub n_plans: usize,
    /// Busy machine-seconds per machine.
    pub busy: Vec<f64>,
    /// Run metrics folded online.
    pub metrics: RunMetrics,
    /// Fleet utilization over `[first release, makespan]`.
    pub utilization: f64,
    /// Largest number of simultaneously in-flight requests.
    pub max_active: usize,
}

impl Trace {
    /// Number of machines.
    pub fn n_machines(&self) -> usize {
        self.cycle_times.len()
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// `true` when the trace has no requests.
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }

    /// The `k`-th request as an engine [`JobSpec`].
    pub fn job_spec(&self, k: usize) -> JobSpec {
        let a = &self.arrivals[k];
        JobSpec {
            release: a.release,
            weight: a.weight,
            costs: self
                .cycle_times
                .iter()
                .zip(&a.avail)
                .map(|(ct, &ok)| if ok { a.size * ct } else { f64::INFINITY })
                .collect(), // dlflint:allow(alloc-in-hot-loop, "one cost row per admitted job; the JobSpec owns it from here on")
        }
    }

    /// Materializes the whole trace as a closed [`Instance`] (job `j` =
    /// arrival `j`). Only sensible for small traces — the offline
    /// yardsticks and parity tests use it; streaming replay does not.
    /// Platform events are not representable in a closed instance and
    /// are ignored (the offline yardstick scores the fault-free
    /// platform). Fails when a request is unplaceable or a weight is
    /// zero (closed instances are stricter than the engine).
    pub fn to_instance(&self) -> Result<Instance<f64>, String> {
        let jobs: Vec<Job<f64>> = self
            .arrivals
            .iter()
            .enumerate()
            .map(|(j, a)| Job {
                release: a.release,
                weight: a.weight,
                name: format!("J{}", j + 1),
            })
            .collect();
        let cost: Vec<Vec<Cost<f64>>> = (0..self.n_machines())
            .map(|i| {
                self.arrivals
                    .iter()
                    .map(|a| {
                        if a.avail[i] {
                            Cost::Finite(a.size * self.cycle_times[i])
                        } else {
                            Cost::Infinite
                        }
                    })
                    .collect()
            })
            .collect();
        Instance::new(jobs, cost).map_err(|e| e.to_string())
    }

    /// Replays the trace through a fresh [`Engine`] under `policy`,
    /// streaming arrivals in so engine memory stays proportional to the
    /// number of in-flight requests: at any moment the engine knows only
    /// the active set plus the next release-batch of future arrivals.
    pub fn replay(&self, policy: &mut dyn OnlineScheduler) -> Result<ReplayStats, SimError> {
        self.replay_impl(policy, None)
    }

    /// The shared streaming driver behind [`Trace::replay`] and
    /// [`replay_with_sink`]. With a sink, completions are buffered per
    /// step and handed over; without one, buffering is off entirely.
    fn replay_impl(
        &self,
        policy: &mut dyn OnlineScheduler,
        mut sink: Option<&mut dyn FnMut(&CompletedJob)>,
    ) -> Result<ReplayStats, SimError> {
        policy.reset();
        let mut eng = Engine::new(self.n_machines());
        eng.record_completions = sink.is_some();
        for e in &self.platform_events {
            eng.push_platform_event(*e)?;
        }
        let n = self.arrivals.len();
        let mut next = 0usize;
        let mut max_active = 0usize;
        // Reused cost row: arrivals enter the engine through
        // `push_arrival_ref`, which copies the row straight into the
        // slab, so the steady-state replay loop performs no allocation.
        let mut costs = vec![0.0f64; self.n_machines()]; // dlflint:allow(alloc-in-hot-loop, "one buffer per replay, recycled across every arrival")
                                                         // Stall guard equivalent to `Engine::drain`'s, over the whole trace.
        let max_iters =
            100_000 + 200 * n * (self.n_machines() + 2) + 2 * self.platform_events.len();
        for _ in 0..max_iters {
            // Keep at least one *release batch* pushed ahead: the engine
            // can only bound its horizon by arrivals it knows about, and
            // simultaneous releases must be admitted within one event.
            if eng.pending_len() == 0 && next < n {
                let t0 = self.arrivals[next].release;
                while next < n && self.arrivals[next].release <= t0 + EPS {
                    let a = &self.arrivals[next];
                    for (c, (ct, &ok)) in
                        costs.iter_mut().zip(self.cycle_times.iter().zip(&a.avail))
                    {
                        *c = if ok { a.size * ct } else { f64::INFINITY };
                    }
                    eng.push_arrival_ref(a.release, a.weight, &costs)?;
                    next += 1;
                }
            }
            max_active = max_active.max(eng.active().len());
            let outcome = eng.step(policy)?;
            if let Some(sink) = sink.as_mut() {
                for c in eng.take_completed() {
                    sink(&c);
                }
            }
            // Idle with trace remaining loops back to push the next batch.
            if outcome == crate::engine::StepOutcome::Idle && next >= n {
                return Ok(ReplayStats {
                    n_jobs: n,
                    n_events: eng.n_events(),
                    n_plans: eng.n_plans(),
                    busy: eng.busy().to_vec(), // dlflint:allow(alloc-in-hot-loop, "runs once on the terminal return path, not per iteration")
                    metrics: eng.metrics(),
                    utilization: eng.utilization(),
                    max_active,
                });
            }
        }
        Err(SimError::Stalled { at: eng.now() })
    }

    /// Renders the trace in the `.dlt` text format (see
    /// `docs/FORMATS.md`). Round-trips through [`Trace::parse_dlt`].
    pub fn to_dlt(&self) -> String {
        let mut s = String::from("# dlflow open-arrival trace (.dlt) — see docs/FORMATS.md\n");
        s.push_str("machines");
        for ct in &self.cycle_times {
            s.push_str(&format!(" {ct}"));
        }
        s.push('\n');
        for a in &self.arrivals {
            let mask: String = if a.avail.iter().all(|&x| x) {
                "*".into()
            } else {
                a.avail.iter().map(|&x| if x { '1' } else { '0' }).collect()
            };
            s.push_str(&format!(
                "arrival {} {} {} {mask}\n",
                a.release, a.size, a.weight
            ));
        }
        for e in &self.platform_events {
            let directive = match e.change {
                PlatformChange::Down => "fail",
                PlatformChange::Up => "recover",
            };
            s.push_str(&format!("{directive} {} {}\n", e.time, e.machine));
        }
        s
    }

    /// Parses the `.dlt` text format. Arrivals need not be sorted in the
    /// file; the parsed trace is (stably) sorted by release. Platform
    /// events (`fail`/`recover` lines) **must** appear in non-decreasing
    /// time order and alternate down/up per machine — the stricter rule
    /// keeps a hand-edited fault schedule honest. Errors carry 1-based
    /// line numbers.
    pub fn parse_dlt(text: &str) -> Result<Trace, String> {
        let mut cycle_times: Option<Vec<f64>> = None;
        let mut arrivals: Vec<TraceArrival> = Vec::new();
        let mut platform_events: Vec<PlatformEvent> = Vec::new();
        let mut down: Vec<bool> = Vec::new();
        let parse_num = |tok: &str, what: &str, lineno: usize| -> Result<f64, String> {
            let v: f64 = tok
                .parse()
                .map_err(|_| format!("line {lineno}: bad {what} {tok:?}"))?;
            if !v.is_finite() || v < 0.0 {
                return Err(format!(
                    "line {lineno}: {what} must be finite and non-negative, got {tok}"
                ));
            }
            Ok(v)
        };
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut toks = line.split_whitespace();
            let directive = toks.next().expect("non-empty line");
            let rest: Vec<&str> = toks.collect();
            match directive {
                "machines" => {
                    if cycle_times.is_some() {
                        return Err(format!("line {lineno}: duplicate machines line"));
                    }
                    if rest.is_empty() {
                        return Err(format!(
                            "line {lineno}: machines needs at least one cycle time"
                        ));
                    }
                    let cts: Result<Vec<f64>, String> = rest
                        .iter()
                        .map(|t| {
                            let v = parse_num(t, "cycle time", lineno)?;
                            if v <= 0.0 {
                                return Err(format!(
                                    "line {lineno}: cycle time must be positive, got {t}"
                                ));
                            }
                            Ok(v)
                        })
                        .collect();
                    cycle_times = Some(cts?);
                }
                "arrival" => {
                    let Some(cts) = &cycle_times else {
                        return Err(format!("line {lineno}: arrival before the machines line"));
                    };
                    let [release, size, weight, mask] = rest.as_slice() else {
                        return Err(format!(
                            "line {lineno}: arrival expects <release> <size> <weight> <mask>"
                        ));
                    };
                    let release = parse_num(release, "release", lineno)?;
                    let size = parse_num(size, "size", lineno)?;
                    let weight = parse_num(weight, "weight", lineno)?;
                    let avail: Vec<bool> = if *mask == "*" {
                        vec![true; cts.len()]
                    } else {
                        if mask.len() != cts.len() || !mask.chars().all(|c| c == '0' || c == '1') {
                            return Err(format!(
                                "line {lineno}: mask must be '*' or {} chars of 0/1, got {mask:?}",
                                cts.len()
                            ));
                        }
                        mask.chars().map(|c| c == '1').collect()
                    };
                    if !avail.iter().any(|&a| a) {
                        return Err(format!(
                            "line {lineno}: arrival can run on no machine (mask all 0)"
                        ));
                    }
                    arrivals.push(TraceArrival {
                        release,
                        size,
                        weight,
                        avail,
                    });
                }
                d @ ("fail" | "recover") => {
                    let Some(cts) = &cycle_times else {
                        return Err(format!("line {lineno}: {d} before the machines line"));
                    };
                    let [time, machine] = rest.as_slice() else {
                        return Err(format!("line {lineno}: {d} expects <time> <machine>"));
                    };
                    let time = parse_num(time, "event time", lineno)?;
                    let machine: usize = machine
                        .parse()
                        .map_err(|_| format!("line {lineno}: bad machine id {machine:?}"))?;
                    if machine >= cts.len() {
                        return Err(format!(
                            "line {lineno}: machine id {machine} out of range (trace has {} machines)",
                            cts.len()
                        ));
                    }
                    if let Some(prev) = platform_events.last() {
                        if time < prev.time {
                            return Err(format!(
                                "line {lineno}: non-monotone event time {time} (previous event at {})",
                                prev.time
                            ));
                        }
                    }
                    down.resize(cts.len(), false);
                    let change = if d == "fail" {
                        if down[machine] {
                            return Err(format!(
                                "line {lineno}: machine {machine} fails while already down"
                            ));
                        }
                        down[machine] = true;
                        PlatformChange::Down
                    } else {
                        if !down[machine] {
                            return Err(format!(
                                "line {lineno}: machine {machine} recovers without a preceding fail"
                            ));
                        }
                        down[machine] = false;
                        PlatformChange::Up
                    };
                    platform_events.push(PlatformEvent {
                        time,
                        machine,
                        change,
                    });
                }
                other => {
                    return Err(format!(
                        "line {lineno}: unknown directive {other:?} (expected machines|arrival|fail|recover)"
                    ))
                }
            }
        }
        let Some(cycle_times) = cycle_times else {
            return Err("trace has no machines line".into());
        };
        arrivals.sort_by(|a, b| a.release.partial_cmp(&b.release).unwrap());
        Ok(Trace {
            cycle_times,
            arrivals,
            platform_events,
        })
    }
}

/// Replays a trace, folding each completion through a caller-provided
/// sink as it streams out of the engine — per-request results without
/// ever buffering the whole run. A thin wrapper over the same driver as
/// [`Trace::replay`].
pub fn replay_with_sink(
    trace: &Trace,
    policy: &mut dyn OnlineScheduler,
    mut sink: impl FnMut(&CompletedJob),
) -> Result<ReplayStats, SimError> {
    trace.replay_impl(policy, Some(&mut |c: &CompletedJob| sink(c)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_valid() {
        let spec = WorkloadSpec::default();
        let a = generate(&spec);
        let b = generate(&spec);
        assert_eq!(a.n_jobs(), 10);
        assert_eq!(a.n_machines(), 3);
        for j in 0..a.n_jobs() {
            assert_eq!(a.job(j).release, b.job(j).release);
            assert!(a.job(j).release >= 0.0);
            assert!(a.job(j).weight > 0.0);
        }
    }

    #[test]
    fn releases_are_sorted() {
        let inst = generate(&WorkloadSpec {
            n_jobs: 50,
            ..Default::default()
        });
        for j in 1..inst.n_jobs() {
            assert!(inst.job(j).release >= inst.job(j - 1).release);
        }
    }

    #[test]
    fn every_job_placeable_even_with_low_availability() {
        for seed in 0..10 {
            let spec = WorkloadSpec {
                availability: 0.05,
                seed,
                ..Default::default()
            };
            let inst = generate(&spec); // would panic if unplaceable
            assert_eq!(inst.n_jobs(), 10);
        }
    }

    #[test]
    fn uniform_structure_holds() {
        // c[i][j] / c[i'][j] must be constant across jobs available on both.
        let inst = generate(&WorkloadSpec {
            availability: 1.0,
            ..Default::default()
        });
        let r0 = inst.cost(0, 0).finite().unwrap() / inst.cost(1, 0).finite().unwrap();
        for j in 1..inst.n_jobs() {
            let r = inst.cost(0, j).finite().unwrap() / inst.cost(1, j).finite().unwrap();
            assert!((r - r0).abs() < 1e-9);
        }
    }

    #[test]
    fn ensemble_varies() {
        let e = ensemble(&WorkloadSpec::default(), 3);
        assert_eq!(e.len(), 3);
        // Different seeds ⇒ different job sizes (fastest cost always exists).
        assert_ne!(e[0].fastest_cost(0), e[1].fastest_cost(0));
    }

    // --- Trace layer. ---

    #[test]
    fn trace_generation_is_deterministic_sorted_and_placeable() {
        let spec = TraceSpec {
            n_requests: 200,
            availability: 0.1,
            seed: 3,
            ..Default::default()
        };
        let a = generate_trace(&spec);
        let b = generate_trace(&spec);
        assert_eq!(a, b);
        assert_eq!(a.len(), 200);
        for w in a.arrivals.windows(2) {
            assert!(w[0].release <= w[1].release);
        }
        for arr in &a.arrivals {
            assert!(arr.avail.iter().any(|&x| x));
            assert!(arr.size > 0.0);
        }
    }

    #[test]
    fn arrival_processes_have_the_expected_shape() {
        let mut rng = SmallRng::seed_from_u64(7);
        let poisson = ArrivalProcess::Poisson { rate: 2.0 }.sample(4000, &mut rng);
        let mean_gap = poisson.last().unwrap() / 4000.0;
        assert!((mean_gap - 0.5).abs() < 0.05, "Poisson mean gap {mean_gap}");

        // Bursty: same in-burst rate, but long gaps stretch the span.
        let mut rng = SmallRng::seed_from_u64(7);
        let bursty = ArrivalProcess::Bursty {
            rate: 2.0,
            mean_burst: 5.0,
            mean_gap: 50.0,
        }
        .sample(4000, &mut rng);
        assert!(*bursty.last().unwrap() > poisson.last().unwrap() * 2.0);
        for w in bursty.windows(2) {
            assert!(w[1] >= w[0]);
        }

        // Diurnal: arrivals cluster around the sinusoid's peaks — the
        // busiest half-period holds clearly more than half the arrivals.
        let mut rng = SmallRng::seed_from_u64(7);
        let period = 100.0;
        let diurnal = ArrivalProcess::Diurnal {
            peak_rate: 4.0,
            trough_rate: 0.2,
            period,
        }
        .sample(4000, &mut rng);
        let in_peak_half = diurnal
            .iter()
            .filter(|&&t| (std::f64::consts::TAU * t / period).sin() > 0.0)
            .count();
        assert!(
            in_peak_half as f64 > 0.6 * diurnal.len() as f64,
            "only {in_peak_half}/{} arrivals in the peak half",
            diurnal.len()
        );
    }

    #[test]
    fn dlt_round_trips() {
        let trace = generate_trace(&TraceSpec {
            n_requests: 25,
            seed: 11,
            process: ArrivalProcess::Bursty {
                rate: 3.0,
                mean_burst: 2.0,
                mean_gap: 4.0,
            },
            ..Default::default()
        });
        let text = trace.to_dlt();
        let back = Trace::parse_dlt(&text).unwrap();
        assert_eq!(trace, back);
    }

    #[test]
    fn dlt_parse_errors_carry_line_numbers() {
        for (bad, needle) in [
            ("arrival 0 1 1 *", "before the machines"),
            ("machines\n", "at least one"),
            ("machines 1 2\nmachines 1", "duplicate"),
            ("machines 0", "positive"),
            ("machines 1 2\narrival 0 1 1 10x", "mask"),
            ("machines 1 2\narrival 0 1 1 00", "no machine"),
            ("machines 1 2\narrival -1 1 1 *", "non-negative"),
            ("machines 1 2\narrival 0 1 1", "expects"),
            ("machines 1 2\nfrob", "unknown directive"),
            ("# empty\n", "no machines line"),
            ("fail 1 0", "before the machines"),
            ("machines 1 2\nfail 1", "expects"),
            ("machines 1 2\nfail 1 7", "out of range"),
            ("machines 1 2\nfail 1 x", "bad machine id"),
            ("machines 1 2\nfail -1 0", "non-negative"),
            ("machines 1 2\nfail 2 0\nrecover 1 0", "non-monotone"),
            ("machines 1 2\nfail 1 0\nfail 2 0", "already down"),
            ("machines 1 2\nrecover 1 0", "without a preceding fail"),
            (
                "machines 1 2\nfail 1 0\nrecover 2 0\nrecover 3 0",
                "without a preceding fail",
            ),
        ] {
            let err = Trace::parse_dlt(bad).unwrap_err();
            assert!(err.contains(needle), "{bad:?} → {err}");
        }
    }

    #[test]
    fn dlt_round_trips_with_platform_events() {
        // Generator-produced fault schedules survive parse→render→parse.
        let trace = generate_trace(&TraceSpec {
            n_requests: 30,
            n_machines: 4,
            seed: 21,
            faults: Some(FaultProcess {
                mtbf: 10.0,
                mttr: 2.0,
                horizon: 40.0,
                seed: 77,
            }),
            ..Default::default()
        });
        assert!(
            !trace.platform_events.is_empty(),
            "fault process should fire within the horizon"
        );
        let text = trace.to_dlt();
        let back = Trace::parse_dlt(&text).unwrap();
        assert_eq!(trace, back);
        // And a second render is byte-identical (stable format).
        assert_eq!(back.to_dlt(), text);
    }

    #[test]
    fn fault_process_is_seeded_alternating_and_always_recovers() {
        let fp = FaultProcess {
            mtbf: 5.0,
            mttr: 1.0,
            horizon: 50.0,
            seed: 3,
        };
        let a = fp.sample(3);
        let b = fp.sample(3);
        assert_eq!(a, b, "sampling is deterministic");
        for w in a.windows(2) {
            assert!(w[0].time <= w[1].time, "events sorted by time");
        }
        // Per machine: strictly alternating down/up, starting down,
        // ending up (every failure has a matching recovery).
        for m in 0..3 {
            let seq: Vec<PlatformChange> = a
                .iter()
                .filter(|e| e.machine == m)
                .map(|e| e.change)
                .collect();
            assert!(!seq.is_empty(), "mtbf 5 over horizon 50 should fire");
            assert_eq!(seq.len() % 2, 0);
            for (k, c) in seq.iter().enumerate() {
                let want = if k % 2 == 0 {
                    PlatformChange::Down
                } else {
                    PlatformChange::Up
                };
                assert_eq!(*c, want);
            }
        }
    }

    #[test]
    fn replay_completes_through_total_blackout() {
        // Satellite regression: ALL machines fail mid-trace and recover
        // later; the engine must idle through the blackout (no progress
        // possible, but a future recovery exists) instead of stalling.
        let text = "machines 1 1\n\
                    arrival 0 1 1 *\n\
                    arrival 0.2 1 1 *\n\
                    arrival 5 0.5 2 *\n\
                    fail 0.1 0\n\
                    fail 0.1 1\n\
                    recover 3 0\n\
                    recover 4 1\n";
        let trace = Trace::parse_dlt(text).unwrap();
        for spec in ["swrpt", "mct", "edf", "ola"] {
            let spec = crate::campaign::SchedulerSpec::parse_compact(spec).unwrap();
            let mut policy = spec.build();
            let stats = trace.replay(policy.as_mut()).unwrap();
            assert_eq!(stats.n_jobs, 3, "{}", policy.name());
            // Nothing completes before the first recovery at t=3.
            assert!(
                stats.metrics.makespan >= 3.0,
                "{}: makespan {}",
                policy.name(),
                stats.metrics.makespan
            );
        }
    }

    #[test]
    fn faulty_replay_degrades_but_completes() {
        let base = TraceSpec {
            n_requests: 120,
            n_machines: 3,
            seed: 13,
            ..Default::default()
        };
        let clean = generate_trace(&base);
        let faulty = generate_trace(&TraceSpec {
            faults: Some(FaultProcess {
                mtbf: 15.0,
                mttr: 5.0,
                horizon: 60.0,
                seed: 5,
            }),
            ..base
        });
        // Arrivals identical: the fault process draws from its own RNG.
        assert_eq!(clean.arrivals, faulty.arrivals);
        use crate::schedulers::Swrpt;
        let s_clean = clean.replay(&mut Swrpt::new()).unwrap();
        let s_faulty = faulty.replay(&mut Swrpt::new()).unwrap();
        assert_eq!(s_faulty.n_jobs, 120);
        // Every request still completes, with well-defined (finite)
        // metrics; lost work shows up as extra busy time relative to the
        // clean run's identical arrival stream.
        assert!(s_faulty.metrics.max_stretch.is_finite());
        assert!(s_faulty.metrics.makespan >= s_clean.metrics.makespan - 1e-9);
    }

    #[test]
    fn unsorted_dlt_arrivals_are_sorted_on_parse() {
        let t = Trace::parse_dlt("machines 1\narrival 5 1 1 *\narrival 0 2 1 *\narrival 2 3 1 *\n")
            .unwrap();
        let rel: Vec<f64> = t.arrivals.iter().map(|a| a.release).collect();
        assert_eq!(rel, vec![0.0, 2.0, 5.0]);
    }

    #[test]
    fn replay_matches_closed_simulation() {
        use crate::engine::{simulate, RunMetrics};
        use crate::schedulers::Swrpt;
        let trace = generate_trace(&TraceSpec {
            n_requests: 60,
            seed: 5,
            ..Default::default()
        });
        let stats = trace.replay(&mut Swrpt::new()).unwrap();
        assert_eq!(stats.n_jobs, 60);

        let inst = trace.to_instance().unwrap();
        let res = simulate(&inst, &mut Swrpt::new()).unwrap();
        let m = RunMetrics::from_completions(&inst, &res.completions);
        assert_eq!(stats.n_events, res.n_events);
        assert_eq!(stats.n_plans, res.n_plans);
        assert_eq!(stats.busy, res.busy);
        assert!((stats.metrics.max_stretch - m.max_stretch).abs() < 1e-9);
        assert!((stats.metrics.makespan - m.makespan).abs() < 1e-9);
        assert!(stats.max_active >= 1);
        assert!(stats.utilization > 0.0 && stats.utilization <= 1.0 + 1e-9);
    }

    #[test]
    fn replay_with_sink_streams_every_completion() {
        use crate::schedulers::Srpt;
        let trace = generate_trace(&TraceSpec {
            n_requests: 40,
            seed: 9,
            ..Default::default()
        });
        let mut seen = Vec::new();
        let stats = replay_with_sink(&trace, &mut Srpt::new(), |c| seen.push(c.id)).unwrap();
        assert_eq!(seen.len(), 40);
        assert_eq!(stats.n_jobs, 40);
        let mut sorted = seen.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 40, "each request completes exactly once");
    }
}
