//! Random workload generation for the online-scheduling experiments.

use dlflow_core::instance::Instance;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Knobs for random instance generation.
#[derive(Clone, Debug)]
pub struct WorkloadSpec {
    /// Number of jobs.
    pub n_jobs: usize,
    /// Number of machines.
    pub n_machines: usize,
    /// Mean inter-arrival time (exponential arrivals).
    pub mean_interarrival: f64,
    /// Job base cost range (on a speed-1 machine), log-uniform.
    pub cost_range: (f64, f64),
    /// Machine cycle-time heterogeneity: cycle ∈ `[1, heterogeneity]`.
    pub heterogeneity: f64,
    /// Probability a machine holds a given job's databank (≥ one forced).
    pub availability: f64,
    /// Job weights drawn uniformly from this palette.
    pub weights: Vec<f64>,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            n_jobs: 10,
            n_machines: 3,
            mean_interarrival: 2.0,
            cost_range: (1.0, 20.0),
            heterogeneity: 3.0,
            availability: 0.6,
            weights: vec![1.0, 2.0, 5.0],
            seed: 0,
        }
    }
}

/// Generates a random unrelated-machines instance with the *uniform
/// machines + restricted availabilities* structure of the GriPPS platform
/// (§3): `c[i][j] = size_j · cycle_i` where available.
pub fn generate(spec: &WorkloadSpec) -> Instance<f64> {
    let mut rng = SmallRng::seed_from_u64(spec.seed);
    let n = spec.n_jobs;
    let m = spec.n_machines;
    assert!(n > 0 && m > 0);

    // Poisson arrivals.
    let mut releases = Vec::with_capacity(n);
    let mut t = 0.0f64;
    for _ in 0..n {
        releases.push(t);
        let u: f64 = rng.gen_range(1e-12..1.0);
        t += -u.ln() * spec.mean_interarrival;
    }

    // Log-uniform sizes.
    let (lo, hi) = spec.cost_range;
    assert!(lo > 0.0 && hi >= lo);
    let sizes: Vec<f64> = (0..n)
        .map(|_| {
            let u: f64 = rng.gen_range(0.0..1.0);
            lo * (hi / lo).powf(u)
        })
        .collect();

    let weights: Vec<f64> = (0..n)
        .map(|_| spec.weights[rng.gen_range(0..spec.weights.len())])
        .collect();
    let cycles: Vec<f64> = (0..m)
        .map(|_| rng.gen_range(1.0..=spec.heterogeneity.max(1.0)))
        .collect();

    let mut avail: Vec<Vec<bool>> = (0..m)
        .map(|_| {
            (0..n)
                .map(|_| rng.gen_bool(spec.availability.clamp(0.0, 1.0)))
                .collect()
        })
        .collect();
    // Force at least one machine per job.
    for j in 0..n {
        if !(0..m).any(|i| avail[i][j]) {
            let i = rng.gen_range(0..m);
            avail[i][j] = true;
        }
    }

    Instance::uniform_restricted(&sizes, &releases, &weights, &cycles, &avail)
        .expect("generator produces valid instances")
}

/// An ensemble of instances differing only by seed.
pub fn ensemble(spec: &WorkloadSpec, count: usize) -> Vec<Instance<f64>> {
    (0..count)
        .map(|k| {
            let mut s = spec.clone();
            s.seed = spec.seed.wrapping_add(k as u64 * 0x9E3779B9);
            generate(&s)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_valid() {
        let spec = WorkloadSpec::default();
        let a = generate(&spec);
        let b = generate(&spec);
        assert_eq!(a.n_jobs(), 10);
        assert_eq!(a.n_machines(), 3);
        for j in 0..a.n_jobs() {
            assert_eq!(a.job(j).release, b.job(j).release);
            assert!(a.job(j).release >= 0.0);
            assert!(a.job(j).weight > 0.0);
        }
    }

    #[test]
    fn releases_are_sorted() {
        let inst = generate(&WorkloadSpec {
            n_jobs: 50,
            ..Default::default()
        });
        for j in 1..inst.n_jobs() {
            assert!(inst.job(j).release >= inst.job(j - 1).release);
        }
    }

    #[test]
    fn every_job_placeable_even_with_low_availability() {
        for seed in 0..10 {
            let spec = WorkloadSpec {
                availability: 0.05,
                seed,
                ..Default::default()
            };
            let inst = generate(&spec); // would panic if unplaceable
            assert_eq!(inst.n_jobs(), 10);
        }
    }

    #[test]
    fn uniform_structure_holds() {
        // c[i][j] / c[i'][j] must be constant across jobs available on both.
        let inst = generate(&WorkloadSpec {
            availability: 1.0,
            ..Default::default()
        });
        let r0 = inst.cost(0, 0).finite().unwrap() / inst.cost(1, 0).finite().unwrap();
        for j in 1..inst.n_jobs() {
            let r = inst.cost(0, j).finite().unwrap() / inst.cost(1, j).finite().unwrap();
            assert!((r - r0).abs() < 1e-9);
        }
    }

    #[test]
    fn ensemble_varies() {
        let e = ensemble(&WorkloadSpec::default(), 3);
        assert_eq!(e.len(), 3);
        // Different seeds ⇒ different job sizes (fastest cost always exists).
        assert_ne!(e[0].fastest_cost(0), e[1].fastest_cost(0));
    }
}
