//! Fault-tolerance property tests: crash consistency of
//! snapshot/restore, and engine robustness under machine
//! failure/recovery schedules — for **every** scheduler.
//!
//! The crash-consistency property is the strong one: interrupting a run
//! at *every k-th event* (snapshot → fresh policy → restore → continue)
//! must produce completions **bit-identical** to the uninterrupted run.
//! Anything the snapshot format forgets — a heap entry, a scheduler
//! cache, a volatile work ledger — shows up here as a diverging float.

use dlflow_sim::engine::{Engine, OnlineScheduler, StepOutcome};
use dlflow_sim::schedulers::{
    Edf, FifoFastest, Mct, OfflineAdapt, RoundRobin, Srpt, Swrpt, WeightedAge,
};
use dlflow_sim::workload::{generate_trace, FaultProcess, Trace, TraceSpec};
use proptest::prelude::*;

type Factory = fn() -> Box<dyn OnlineScheduler>;

/// Factories for all 8 policies (crash consistency needs *fresh*
/// instances of the same kind on each restore, like a real process
/// restart).
fn factories() -> Vec<Factory> {
    vec![
        || Box::new(Mct::new()),
        || Box::new(FifoFastest::new()),
        || Box::new(Srpt::new()),
        || Box::new(Swrpt::new()),
        || Box::new(RoundRobin::new()),
        || Box::new(WeightedAge::new()),
        || Box::new(Edf::new()),
        || Box::new(OfflineAdapt::new()),
    ]
}

/// The LP-free subset (usable at larger sizes).
fn cheap_factories() -> Vec<Factory> {
    let mut f = factories();
    f.pop(); // drop OLA
    f
}

/// A small trace, optionally with a fault schedule.
fn small_trace(seed: u64, n: usize, faulty: bool) -> Trace {
    generate_trace(&TraceSpec {
        n_requests: n,
        n_machines: 3,
        seed,
        faults: faulty.then_some(FaultProcess {
            mtbf: 8.0,
            mttr: 2.0,
            horizon: 30.0,
            seed: seed ^ 0xFA417,
        }),
        ..Default::default()
    })
}

/// Pushes the whole trace (arrivals + platform events) into a fresh
/// engine. Snapshot mid-run therefore always exercises a non-empty
/// pending heap until the last arrival is admitted.
fn load(trace: &Trace) -> Engine {
    let mut eng = Engine::new(trace.n_machines());
    for e in &trace.platform_events {
        eng.push_platform_event(*e).unwrap();
    }
    for k in 0..trace.len() {
        eng.push_arrival(trace.job_spec(k)).unwrap();
    }
    eng
}

/// Completions as `(id, completion-bits)`, sorted by id.
fn completions_of(eng: &mut Engine) -> Vec<(usize, u64)> {
    let mut out: Vec<(usize, u64)> = eng
        .take_completed()
        .into_iter()
        .map(|c| (c.id, c.completion.to_bits()))
        .collect();
    out.sort_unstable();
    out
}

/// Uninterrupted reference run.
fn run_straight(trace: &Trace, policy: &mut dyn OnlineScheduler) -> Vec<(usize, u64)> {
    policy.reset();
    let mut eng = load(trace);
    eng.drain(policy).unwrap();
    completions_of(&mut eng)
}

/// Run interrupted by snapshot/restore every `every` events; each
/// restore targets a brand-new policy from `fresh`.
fn run_interrupted(trace: &Trace, fresh: Factory, every: usize) -> Vec<(usize, u64)> {
    let mut policy = fresh();
    policy.reset();
    let mut eng = load(trace);
    let mut guard = 0usize;
    loop {
        guard += 1;
        assert!(guard < 1_000_000, "interrupted run does not terminate");
        if eng.step(policy.as_mut()).unwrap() == StepOutcome::Idle {
            break;
        }
        if eng.n_events().is_multiple_of(every) {
            let snap = eng.snapshot(policy.as_ref());
            let mut revived = fresh();
            let restored = Engine::restore(&snap, revived.as_mut()).unwrap();
            // The snapshot of the restored pair reproduces the text
            // byte for byte: the format captures a fixed point.
            assert_eq!(restored.snapshot(revived.as_ref()), snap);
            eng = restored;
            policy = revived;
        }
    }
    completions_of(&mut eng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Crash consistency, fault-free and faulty, all 8 schedulers.
    #[test]
    fn snapshot_restore_is_crash_consistent(
        seed in 0u64..5_000,
        n in 4usize..10,
        every in 1usize..5,
        faulty in 0u8..2,
    ) {
        let trace = small_trace(seed, n, faulty == 1);
        for fresh in factories() {
            let reference = run_straight(&trace, fresh().as_mut());
            prop_assert_eq!(reference.len(), n);
            let interrupted = run_interrupted(&trace, fresh, every);
            prop_assert_eq!(&interrupted, &reference);
        }
    }

    /// Larger faulty traces: every scheduler survives arbitrary seeded
    /// failure/recovery schedules and completes every request.
    #[test]
    fn faulty_replays_complete_for_every_cheap_policy(
        seed in 0u64..5_000,
        n in 20usize..60,
    ) {
        let trace = small_trace(seed, n, true);
        for fresh in cheap_factories() {
            let mut policy = fresh();
            let stats = trace.replay(policy.as_mut()).unwrap();
            prop_assert_eq!(stats.n_jobs, n, "{}", policy.name());
            prop_assert!(stats.metrics.makespan.is_finite(), "{}", policy.name());
        }
    }

    /// A fault-free trace replayed through `push_platform_event`-free
    /// and platform-aware code paths is the same run: pushing an empty
    /// fault schedule is a no-op by construction.
    #[test]
    fn empty_fault_schedule_is_identity(seed in 0u64..5_000, n in 5usize..25) {
        let clean = small_trace(seed, n, false);
        prop_assert!(clean.platform_events.is_empty());
        for fresh in cheap_factories() {
            let mut a = fresh();
            let mut b = fresh();
            let s1 = clean.replay(a.as_mut()).unwrap();
            let s2 = clean.replay(b.as_mut()).unwrap();
            prop_assert_eq!(s1.n_events, s2.n_events);
            prop_assert_eq!(&s1.busy, &s2.busy);
        }
    }
}

/// Satellite edge case: snapshot taken mid-burst, with arrivals still
/// queued in the pending heap, restores with the queue intact.
#[test]
fn snapshot_mid_burst_keeps_pending_arrivals() {
    let trace = small_trace(42, 12, true);
    let mut policy = Mct::new();
    let mut eng = load(&trace);
    eng.step(&mut policy).unwrap();
    assert!(eng.pending_len() > 0, "test needs queued arrivals");
    assert!(eng.platform_pending_len() > 0, "test needs queued events");
    let snap = eng.snapshot(&policy);
    let mut revived = Mct::new();
    let restored = Engine::restore(&snap, &mut revived).unwrap();
    assert_eq!(restored.pending_len(), eng.pending_len());
    assert_eq!(restored.platform_pending_len(), eng.platform_pending_len());
    assert_eq!(restored.n_pushed(), eng.n_pushed());
    assert_eq!(restored.now(), eng.now());
    assert_eq!(restored.up_mask(), eng.up_mask());
    for i in 0..trace.n_machines() {
        assert_eq!(restored.machine_up(i), eng.machine_up(i));
    }
}
