//! Property-based tests of the simulator and online policies: every
//! policy terminates, completes all jobs, respects release dates, and
//! never beats the clairvoyant offline optimum.

use dlflow_core::maxflow::min_max_weighted_flow_divisible;
use dlflow_sim::engine::{simulate, OnlineScheduler, RunMetrics};
use dlflow_sim::schedulers::{FifoFastest, Mct, OfflineAdapt, RoundRobin, Srpt, WeightedAge};
use dlflow_sim::workload::{generate, WorkloadSpec};
use proptest::prelude::*;

fn policies() -> Vec<Box<dyn OnlineScheduler>> {
    vec![
        Box::new(Mct::new()),
        Box::new(FifoFastest::new()),
        Box::new(Srpt::new()),
        Box::new(RoundRobin::new()),
        Box::new(WeightedAge::new()),
        Box::new(OfflineAdapt::new()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn every_policy_completes_and_respects_bounds(
        seed in 0u64..10_000,
        n_jobs in 2usize..7,
        n_machines in 1usize..4,
        availability in 0.3f64..1.0,
    ) {
        let spec = WorkloadSpec {
            n_jobs,
            n_machines,
            availability,
            seed,
            ..Default::default()
        };
        let inst = generate(&spec);
        let offline = min_max_weighted_flow_divisible(&inst).optimum;
        for mut p in policies() {
            let res = simulate(&inst, p.as_mut());
            let res = res.expect("policy must complete");
            // All jobs complete, none before its release + fastest time / m.
            for (j, &c) in res.completions.iter().enumerate() {
                prop_assert!(c.is_finite(), "{}: job {j} unfinished", p.name());
                prop_assert!(
                    c >= inst.job(j).release - 1e-9,
                    "{}: job {j} completed before release",
                    p.name()
                );
            }
            let m = RunMetrics::from_completions(&inst, &res.completions);
            // No online policy may beat the clairvoyant offline optimum.
            prop_assert!(
                m.max_weighted_flow >= offline * (1.0 - 1e-4) - 1e-9,
                "{}: {} < offline {}",
                p.name(),
                m.max_weighted_flow,
                offline
            );
            prop_assert!(m.makespan >= 0.0);
        }
    }

    #[test]
    fn deterministic_replay(seed in 0u64..1000) {
        let spec = WorkloadSpec { n_jobs: 5, n_machines: 2, seed, ..Default::default() };
        let inst = generate(&spec);
        let a = simulate(&inst, &mut Srpt::new()).unwrap();
        let b = simulate(&inst, &mut Srpt::new()).unwrap();
        prop_assert_eq!(a.completions, b.completions);
        let c = simulate(&inst, &mut OfflineAdapt::new()).unwrap();
        let d = simulate(&inst, &mut OfflineAdapt::new()).unwrap();
        prop_assert_eq!(c.completions, d.completions);
    }

    #[test]
    fn single_machine_non_preemptive_flows_match_queueing(seed in 0u64..500) {
        // On one machine with full availability, MCT degenerates to FIFO
        // queueing: completions are the prefix sums of costs after releases.
        let spec = WorkloadSpec {
            n_jobs: 4,
            n_machines: 1,
            availability: 1.0,
            seed,
            ..Default::default()
        };
        let inst = generate(&spec);
        let res = simulate(&inst, &mut Mct::new()).unwrap();
        let mut t = 0.0f64;
        for j in 0..inst.n_jobs() {
            // Jobs are generated in release order.
            let c = inst.cost(0, j).finite().copied().unwrap();
            t = t.max(inst.job(j).release) + c;
            prop_assert!((res.completions[j] - t).abs() < 1e-6,
                "job {j}: sim {} vs queueing {t}", res.completions[j]);
        }
    }
}
