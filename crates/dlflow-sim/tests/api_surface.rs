//! Integration coverage for the engine/trace accessors an embedding
//! service uses: progress counters, allocation inspection, policy
//! constructors with explicit tuning knobs, and trace round-tripping.

use dlflow_core::instance::InstanceBuilder;
use dlflow_sim::engine::{simulate, Allocation, Engine, JobSpec};
use dlflow_sim::schedulers::{Edf, OfflineAdapt};
use dlflow_sim::workload::Trace;

#[test]
fn engine_counters_track_pushed_and_pending() {
    let mut eng = Engine::new(2);
    assert_eq!(eng.n_pushed(), 0);
    assert_eq!(eng.pending_len(), 0);
    let id = eng
        .push_arrival(JobSpec {
            release: 5.0,
            weight: 1.0,
            costs: vec![2.0, 4.0],
        })
        .unwrap();
    assert_eq!(id, 0);
    assert_eq!(eng.n_pushed(), 1);
    // Not yet released: sits in the pending queue, not in `active`.
    assert_eq!(eng.pending_len(), 1);
    assert!(eng.active().is_empty());
}

#[test]
fn active_job_exposes_raw_costs() {
    let mut eng = Engine::new(2);
    eng.push_arrival(JobSpec {
        release: 0.0,
        weight: 1.0,
        costs: vec![2.0, f64::INFINITY],
    })
    .unwrap();
    // One step admits the release-0 arrival.
    eng.step(&mut Edf::new()).unwrap();
    let job = eng.active().get(0);
    assert_eq!(job.raw_cost(0), 2.0);
    assert!(job.raw_cost(1).is_infinite()); // cost() hides this as None
    assert_eq!(job.cost(1), None);
}

#[test]
fn allocation_share_scaling() {
    let mut alloc = Allocation::idle(1);
    alloc.set(0, 0, 0.8);
    alloc.set(0, 1, 0.4); // oversubscribed: total 1.2
    let total = alloc.machine_total(0);
    assert!((total - 1.2).abs() < 1e-12);
    alloc.scale_machine(0, 1.0 / total);
    assert!((alloc.machine_total(0) - 1.0).abs() < 1e-12);
}

#[test]
fn tuned_policies_run_clean() {
    let mut b = InstanceBuilder::new();
    b.job(0.0, 1.0);
    b.job(1.0, 2.0);
    b.machine(vec![Some(2.0), Some(2.0)]);
    let inst = b.build().unwrap();
    // Explicit tuning constructors (vs the Default-based `new`).
    let res = simulate(&inst, &mut Edf::with_target(2.0)).unwrap();
    assert_eq!(res.completions.len(), 2);
    let res = simulate(&inst, &mut OfflineAdapt::with_throttle(0.5)).unwrap();
    assert_eq!(res.completions.len(), 2);
}

#[test]
fn trace_dlt_round_trip_preserves_job_specs() {
    let text = "machines 1 2\narrival 0 3 1 *\narrival 1.5 2 2 10\n";
    let trace = Trace::parse_dlt(text).unwrap();
    let again = Trace::parse_dlt(&trace.to_dlt()).unwrap();
    assert_eq!(again.len(), trace.len());
    for k in 0..trace.len() {
        let (a, b) = (trace.job_spec(k), again.job_spec(k));
        assert_eq!(a.release, b.release);
        assert_eq!(a.weight, b.weight);
        assert_eq!(a.costs, b.costs);
    }
    // Size × cycle-time, with the mask knocking out machine 2.
    let spec = trace.job_spec(1);
    assert_eq!(spec.costs[0], 2.0);
    assert!(spec.costs[1].is_infinite());
}
