//! Oracle property tests for the incremental engine: on random
//! instances, the new [`Engine`]-backed `simulate` and the legacy
//! dense-allocation batch loop (`simulate_dense`) must produce
//! **identical** completions, event counts, plan counts, and busy
//! vectors — bit for bit, for every scheduler. Trace replays must agree
//! with the closed simulation of the materialized instance, and campaign
//! reports must not depend on worker chunking.

use dlflow_sim::engine::{simulate, simulate_dense, OnlineScheduler, RunMetrics};
use dlflow_sim::schedulers::{
    Edf, FifoFastest, Mct, OfflineAdapt, RoundRobin, Srpt, Swrpt, WeightedAge,
};
use dlflow_sim::workload::{generate, generate_trace, ArrivalProcess, TraceSpec, WorkloadSpec};
use proptest::prelude::*;

/// All 8 ported policies.
fn policies() -> Vec<Box<dyn OnlineScheduler>> {
    vec![
        Box::new(Mct::new()),
        Box::new(FifoFastest::new()),
        Box::new(Srpt::new()),
        Box::new(Swrpt::new()),
        Box::new(RoundRobin::new()),
        Box::new(WeightedAge::new()),
        Box::new(Edf::new()),
        Box::new(OfflineAdapt::new()),
    ]
}

/// The cheap (LP-free) subset, usable at larger sizes.
fn cheap_policies() -> Vec<Box<dyn OnlineScheduler>> {
    vec![
        Box::new(Mct::new()),
        Box::new(FifoFastest::new()),
        Box::new(Srpt::new()),
        Box::new(Swrpt::new()),
        Box::new(RoundRobin::new()),
        Box::new(WeightedAge::new()),
        Box::new(Edf::new()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The tentpole's core guarantee: the incremental engine is an exact
    /// drop-in for the legacy batch loop, for every scheduler.
    #[test]
    fn engine_matches_legacy_dense_loop(
        seed in 0u64..10_000,
        n_jobs in 2usize..7,
        n_machines in 1usize..4,
        availability in 0.3f64..1.0,
    ) {
        let inst = generate(&WorkloadSpec {
            n_jobs,
            n_machines,
            availability,
            seed,
            ..Default::default()
        });
        for mut p in policies() {
            let new = simulate(&inst, p.as_mut()).expect("engine completes");
            let old = simulate_dense(&inst, p.as_mut()).expect("legacy loop completes");
            prop_assert_eq!(&new.completions, &old.completions, "{}: completions", p.name());
            prop_assert_eq!(new.n_events, old.n_events, "{}: n_events", p.name());
            prop_assert_eq!(new.n_plans, old.n_plans, "{}: n_plans", p.name());
            prop_assert_eq!(&new.busy, &old.busy, "{}: busy", p.name());
        }
    }

    /// Same oracle at larger sizes for the LP-free policies (where the
    /// dense loop's O(m·n_total) cost is still tolerable in a test).
    #[test]
    fn engine_matches_legacy_dense_loop_larger(seed in 0u64..1_000) {
        let inst = generate(&WorkloadSpec {
            n_jobs: 40,
            n_machines: 4,
            availability: 0.5,
            mean_interarrival: 1.0,
            seed,
            ..Default::default()
        });
        for mut p in cheap_policies() {
            let new = simulate(&inst, p.as_mut()).expect("engine completes");
            let old = simulate_dense(&inst, p.as_mut()).expect("legacy loop completes");
            prop_assert_eq!(&new.completions, &old.completions, "{}: completions", p.name());
            prop_assert_eq!(new.n_events, old.n_events, "{}: n_events", p.name());
            prop_assert_eq!(&new.busy, &old.busy, "{}: busy", p.name());
        }
    }

    /// Streaming replay of an open trace agrees with the closed
    /// simulation of the same requests materialized as an instance:
    /// identical event/plan counts and busy vectors, metrics equal up to
    /// float-summation order.
    #[test]
    fn trace_replay_matches_materialized_instance(
        seed in 0u64..10_000,
        n in 5usize..40,
        burst in 0u8..2,
    ) {
        let process = if burst == 1 {
            ArrivalProcess::Bursty { rate: 4.0, mean_burst: 2.0, mean_gap: 5.0 }
        } else {
            ArrivalProcess::Poisson { rate: 2.0 }
        };
        let trace = generate_trace(&TraceSpec {
            n_requests: n,
            process,
            seed,
            ..Default::default()
        });
        let inst = trace.to_instance().expect("generated traces materialize");
        for mut p in cheap_policies() {
            let stats = trace.replay(p.as_mut()).expect("replay completes");
            let closed = simulate(&inst, p.as_mut()).expect("closed run completes");
            let m = RunMetrics::from_completions(&inst, &closed.completions);
            prop_assert_eq!(stats.n_events, closed.n_events, "{}: n_events", p.name());
            prop_assert_eq!(stats.n_plans, closed.n_plans, "{}: n_plans", p.name());
            prop_assert_eq!(&stats.busy, &closed.busy, "{}: busy", p.name());
            prop_assert!((stats.metrics.max_stretch - m.max_stretch).abs() <= 1e-9 * (1.0 + m.max_stretch.abs()));
            prop_assert!((stats.metrics.makespan - m.makespan).abs() <= 1e-9);
            prop_assert!((stats.metrics.sum_flow - m.sum_flow).abs() <= 1e-6 * (1.0 + m.sum_flow.abs()));
        }
    }
}

/// Campaign determinism rides along with the engine refactor: parallel
/// and serial tournaments must stay byte-identical (the deeper test
/// lives in `tests/prop_campaign.rs`; this is the engine-level recheck
/// with OLA included).
#[test]
fn campaign_json_parallel_vs_serial_byte_identical() {
    use dlflow_sim::campaign::{parse_campaign, run_campaign, run_campaign_serial};
    let cfg = parse_campaign(
        "name oracle\nseeds 3\nsigbits 10\n\
         platform p servers=3 banks=3 heterogeneity=2\n\
         workload w jobs=5 load=1.2\n\
         scheduler swrpt\nscheduler mct\nscheduler ola bisect=15\n",
    )
    .unwrap();
    let par = run_campaign(&cfg).unwrap().to_json();
    let ser = run_campaign_serial(&cfg).unwrap().to_json();
    assert_eq!(par, ser);
}
