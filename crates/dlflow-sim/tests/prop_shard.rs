//! Differential wall around the PR-9 hot-path rework: the flattened
//! slab engine, the sharded front-end, the pre-rework reference engine,
//! and the dense batch oracle must all tell the same story.
//!
//! Four independent implementations of the same semantics exist in this
//! workspace, written years^H^H^H^H^HPRs apart:
//!
//! 1. [`Engine`] — the flattened slab/SoA engine (this PR);
//! 2. [`ShardedEngine`] — the multi-cluster front-end over it (this PR);
//! 3. [`ReferenceEngine`] — the pre-flattening engine, ported verbatim;
//! 4. [`simulate_dense`] — the seed's dense batch loop.
//!
//! Randomized traces (fault schedules included) are pushed through all
//! of them, with the strongest cheap assertion at every boundary:
//! **bit-identical** completion streams, not approximate metrics. A
//! single reordered float comparison anywhere in the rework shows up
//! here as a diverging bit pattern.

use dlflow_sim::engine::{simulate_dense, CompletedJob, Engine, OnlineScheduler, StepOutcome};
use dlflow_sim::reference::ReferenceEngine;
use dlflow_sim::schedulers::{
    Edf, FifoFastest, Mct, OfflineAdapt, RoundRobin, Srpt, Swrpt, WeightedAge,
};
use dlflow_sim::shard::ShardedEngine;
use dlflow_sim::workload::{generate_trace, FaultProcess, Trace, TraceSpec};
use proptest::prelude::*;

type Factory = fn() -> Box<dyn OnlineScheduler + Send>;

/// Fresh-instance factories for all 8 policies.
fn factories() -> Vec<Factory> {
    vec![
        || Box::new(Mct::new()),
        || Box::new(FifoFastest::new()),
        || Box::new(Srpt::new()),
        || Box::new(Swrpt::new()),
        || Box::new(RoundRobin::new()),
        || Box::new(WeightedAge::new()),
        || Box::new(Edf::new()),
        || Box::new(OfflineAdapt::new()),
    ]
}

/// The LP-free subset (usable at larger sizes).
fn cheap_factories() -> Vec<Factory> {
    let mut f = factories();
    f.pop(); // drop OLA
    f
}

/// A randomized trace over `m` machines, optionally with faults.
fn trace_of(seed: u64, n: usize, m: usize, faulty: bool) -> Trace {
    generate_trace(&TraceSpec {
        n_requests: n,
        n_machines: m,
        seed,
        faults: faulty.then_some(FaultProcess {
            mtbf: 8.0,
            mttr: 2.0,
            horizon: 30.0,
            seed: seed ^ 0xFA417,
        }),
        ..Default::default()
    })
}

/// A completion stream reduced to comparable bits, order preserved.
fn bits(stream: &[CompletedJob]) -> Vec<(usize, u64, u64)> {
    stream
        .iter()
        .map(|c| (c.id, c.release.to_bits(), c.completion.to_bits()))
        .collect()
}

/// The flat engine's buffered completion stream for a trace.
fn flat_stream(trace: &Trace, policy: &mut dyn OnlineScheduler) -> Vec<CompletedJob> {
    policy.reset();
    let mut eng = Engine::new(trace.n_machines());
    for e in &trace.platform_events {
        eng.push_platform_event(*e).unwrap();
    }
    for k in 0..trace.len() {
        eng.push_arrival(trace.job_spec(k)).unwrap();
    }
    eng.drain(policy).unwrap();
    eng.take_completed()
}

/// The sharded front-end's merged completion stream for a trace.
fn sharded_stream(
    trace: &Trace,
    fresh: Factory,
    shards: usize,
) -> (ShardedEngine, Vec<CompletedJob>) {
    let mut se = ShardedEngine::new(trace.n_machines(), shards);
    let mut policies: Vec<Box<dyn OnlineScheduler + Send>> =
        (0..se.n_shards()).map(|_| fresh()).collect();
    for p in policies.iter_mut() {
        p.reset();
    }
    for e in &trace.platform_events {
        se.push_platform_event(*e).unwrap();
    }
    for k in 0..trace.len() {
        se.push_arrival(trace.job_spec(k)).unwrap();
    }
    se.drain(&mut policies).unwrap();
    let stream = se.take_completed();
    (se, stream)
}

/// The pre-rework reference engine's stream for the same trace.
fn reference_stream(trace: &Trace, policy: &mut dyn OnlineScheduler) -> Vec<CompletedJob> {
    policy.reset();
    let mut eng = ReferenceEngine::new(trace.n_machines());
    for e in &trace.platform_events {
        eng.push_platform_event(*e).unwrap();
    }
    for k in 0..trace.len() {
        eng.push_arrival(trace.job_spec(k)).unwrap();
    }
    eng.drain(policy).unwrap();
    eng.take_completed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The three online implementations produce bit-identical streams —
    /// flat vs sharded@1 vs the PR-5 reference — for every scheduler,
    /// fault-free and faulty.
    #[test]
    fn flat_sharded_and_reference_streams_are_bit_identical(
        seed in 0u64..5_000,
        n in 4usize..12,
        faulty in 0u8..2,
    ) {
        let trace = trace_of(seed, n, 3, faulty == 1);
        for fresh in factories() {
            let flat = flat_stream(&trace, fresh().as_mut());
            prop_assert_eq!(flat.len(), n);
            let (_, sharded) = sharded_stream(&trace, fresh, 1);
            prop_assert_eq!(bits(&flat), bits(&sharded));
            let reference = reference_stream(&trace, fresh().as_mut());
            prop_assert_eq!(bits(&flat), bits(&reference));
        }
    }

    /// Fault-free traces also agree with the seed's dense batch oracle
    /// (faults are outside the closed-instance model, so this leg runs
    /// clean traces only).
    #[test]
    fn flat_engine_matches_the_dense_oracle(
        seed in 0u64..5_000,
        n in 4usize..20,
    ) {
        let trace = trace_of(seed, n, 3, false);
        let inst = trace.to_instance().unwrap();
        for fresh in cheap_factories() {
            let flat = flat_stream(&trace, fresh().as_mut());
            let dense = simulate_dense(&inst, fresh().as_mut()).unwrap();
            for c in &flat {
                prop_assert_eq!(
                    c.completion.to_bits(),
                    dense.completions[c.id].to_bits()
                );
            }
        }
    }

    /// Multi-shard runs: the merged stream is deterministic (two runs →
    /// identical bytes), time-ordered with ties resolved to the lower
    /// shard, and each cluster independently reproduces a standalone
    /// engine fed the same sub-workload.
    #[test]
    fn multi_shard_merge_is_deterministic_and_clusters_are_independent(
        seed in 0u64..5_000,
        n in 8usize..24,
        shards in 2usize..4,
        faulty in 0u8..2,
    ) {
        let m = 4;
        let trace = trace_of(seed, n, m, faulty == 1);
        for fresh in cheap_factories() {
            let (se1, s1) = sharded_stream(&trace, fresh, shards);
            let (se2, s2) = sharded_stream(&trace, fresh, shards);
            prop_assert_eq!(bits(&s1), bits(&s2));
            prop_assert_eq!(se1.n_events(), se2.n_events());
            prop_assert_eq!(s1.len(), n);

            // Merge order invariant: non-decreasing completion times.
            for w in s1.windows(2) {
                prop_assert!(w[0].completion <= w[1].completion);
            }

            // Per-cluster parity: rebuild each shard's workload by hand
            // with the documented assignment rule (fastest machine, ties
            // to the lower shard) and drain it in a standalone engine.
            for s in 0..se1.n_shards() {
                let (lo, hi) = se1.shard_range(s);
                let mut solo = Engine::new(hi - lo);
                let mut policy = fresh();
                for e in &trace.platform_events {
                    if (lo..hi).contains(&e.machine) {
                        let mut local = *e;
                        local.machine -= lo;
                        solo.push_platform_event(local).unwrap();
                    }
                }
                for k in 0..trace.len() {
                    let spec = trace.job_spec(k);
                    let best = (0..se1.n_shards())
                        .map(|q| {
                            let (a, b) = se1.shard_range(q);
                            spec.costs[a..b]
                                .iter()
                                .cloned()
                                .fold(f64::INFINITY, f64::min)
                        })
                        .enumerate()
                        .min_by(|(_, a), (_, b)| a.total_cmp(b))
                        .map(|(q, _)| q)
                        .unwrap();
                    if best == s {
                        solo.push_arrival_ref(spec.release, spec.weight, &spec.costs[lo..hi])
                            .unwrap();
                    }
                }
                solo.drain(policy.as_mut()).unwrap();
                prop_assert_eq!(solo.n_events(), se1.shard(s).n_events());
                prop_assert_eq!(solo.busy(), se1.shard(s).busy());
                prop_assert_eq!(
                    solo.metrics().makespan.to_bits(),
                    se1.shard(s).metrics().makespan.to_bits()
                );
            }
        }
    }

    /// Mid-run interrupts: stepping the flat engine with a snapshot
    /// round-trip through [`ShardedEngine::restore_single`] at every
    /// k-th event — fresh policy each time, like a process restart —
    /// leaves the final stream bit-identical to the straight run, and
    /// the snapshot text is a fixed point of the front-end round-trip.
    #[test]
    fn sharded_restore_round_trip_is_crash_consistent(
        seed in 0u64..5_000,
        n in 4usize..10,
        every in 1usize..5,
        faulty in 0u8..2,
    ) {
        let trace = trace_of(seed, n, 3, faulty == 1);
        for fresh in factories() {
            let straight = flat_stream(&trace, fresh().as_mut());

            let mut policy = fresh();
            policy.reset();
            let mut eng = Engine::new(trace.n_machines());
            for e in &trace.platform_events {
                eng.push_platform_event(*e).unwrap();
            }
            for k in 0..trace.len() {
                eng.push_arrival(trace.job_spec(k)).unwrap();
            }
            let mut guard = 0usize;
            loop {
                guard += 1;
                prop_assert!(guard < 1_000_000, "interrupted run does not terminate");
                if eng.step(policy.as_mut()).unwrap() == StepOutcome::Idle {
                    break;
                }
                if eng.n_events().is_multiple_of(every) {
                    let snap = eng.snapshot(policy.as_ref());
                    let mut revived = fresh();
                    let se = ShardedEngine::restore_single(&snap, revived.as_mut()).unwrap();
                    prop_assert_eq!(se.n_shards(), 1);
                    prop_assert_eq!(se.snapshot(revived.as_ref()).unwrap(), snap.clone());
                    let mut again = fresh();
                    eng = Engine::restore(&snap, again.as_mut()).unwrap();
                    policy = again;
                }
            }
            let interrupted = eng.take_completed();
            prop_assert_eq!(bits(&straight), bits(&interrupted));
        }
    }
}

/// Pinned regression: two shards finishing jobs at the *same* instant
/// must merge shard 0's job first — the documented cross-shard
/// tie-break — so campaign-style reports cannot flap between runs.
#[test]
fn cross_shard_simultaneous_completion_tie_is_pinned() {
    let mut se = ShardedEngine::new(4, 2);
    // One job per shard, mirrored costs, both complete at t = 6.
    for costs in [
        [3.0, 6.0, f64::INFINITY, f64::INFINITY],
        [f64::INFINITY, f64::INFINITY, 3.0, 6.0],
    ] {
        se.push_arrival(dlflow_sim::engine::JobSpec {
            release: 0.0,
            weight: 1.0,
            costs: costs.to_vec(),
        })
        .unwrap();
    }
    let mut policies: Vec<Box<dyn OnlineScheduler + Send>> =
        vec![Box::new(Swrpt::new()), Box::new(Swrpt::new())];
    se.drain(&mut policies).unwrap();
    let done = se.take_completed();
    assert_eq!(done.len(), 2);
    assert_eq!(
        done[0].completion.to_bits(),
        done[1].completion.to_bits(),
        "fixture must actually tie"
    );
    assert_eq!(done[0].id, 0);
    assert_eq!(done[1].id, 1);
}

/// The sharded replay front door and the manual push-everything path
/// agree: `replay_trace` is pure plumbing.
#[test]
fn replay_trace_matches_the_manual_sharded_run() {
    let trace = trace_of(77, 50, 4, true);
    let fresh: Factory = || Box::new(Swrpt::new());
    let (manual, _) = sharded_stream(&trace, fresh, 2);

    let mut se = ShardedEngine::new(trace.n_machines(), 2);
    let mut policies: Vec<Box<dyn OnlineScheduler + Send>> = vec![fresh(), fresh()];
    let stats = se.replay_trace(&trace, &mut policies).unwrap();
    assert_eq!(stats.n_jobs, 50);
    assert_eq!(stats.n_events, manual.n_events());
    assert_eq!(stats.busy, manual.busy());
    assert_eq!(
        stats.metrics.max_stretch.to_bits(),
        manual.metrics().max_stretch.to_bits()
    );
    assert_eq!(stats.max_active, manual.peak_active());
}
