//! PR 10 differential harness: warm-basis OLA against the cold-resolve
//! oracle.
//!
//! The warm machinery (persistent `ProbeCache` re-solves, chained basis
//! carry, margin-gated infeasibility verdicts) is a *pure perf change*:
//! every feasibility verdict it serves must agree with a from-scratch
//! solve, so allocations and completions are required to be
//! **bit-identical** to [`OfflineAdapt::cold_oracle`] — across seeded
//! traces, every fault intensity, and snapshot/restore interruption at
//! every k-th event.
//!
//! Snapshot semantics under test: the warm basis and probe cache are
//! deliberately **not** serialized by `dlflow-snapshot v1` — they are
//! pure pivot-order hints, safe to drop and rebuild after a restore.
//! The interrupted runs here restore into *fresh* policy instances
//! (empty caches) and must still reproduce the uninterrupted cold
//! oracle bit for bit; any verdict leaking out of a stale basis would
//! surface as a diverging completion float.

use dlflow_sim::engine::{Engine, OnlineScheduler, ResolveStats, StepOutcome};
use dlflow_sim::schedulers::{OfflineAdapt, OlaLite};
use dlflow_sim::workload::{generate_trace, FaultProcess, Trace, TraceSpec};
use proptest::prelude::*;

/// A small trace at one of three fault intensities: 0 = fault-free,
/// 1 = moderate (occasional outage), 2 = harsh (machines spend a
/// comparable share of the horizon down as up).
fn traced(seed: u64, n: usize, intensity: u8) -> Trace {
    let (mtbf, mttr) = match intensity {
        1 => (8.0, 2.0),
        2 => (3.0, 3.0),
        _ => (0.0, 0.0),
    };
    generate_trace(&TraceSpec {
        n_requests: n,
        n_machines: 3,
        seed,
        faults: (intensity > 0).then_some(FaultProcess {
            mtbf,
            mttr,
            horizon: 30.0,
            seed: seed ^ 0x01A0,
        }),
        ..Default::default()
    })
}

/// Pushes the whole trace (arrivals + platform events) into a fresh
/// engine.
fn load(trace: &Trace) -> Engine {
    let mut eng = Engine::new(trace.n_machines());
    for e in &trace.platform_events {
        eng.push_platform_event(*e).unwrap();
    }
    for k in 0..trace.len() {
        eng.push_arrival(trace.job_spec(k)).unwrap();
    }
    eng
}

/// Completions as `(id, completion-bits)`, sorted by id.
fn completions_of(eng: &mut Engine) -> Vec<(usize, u64)> {
    let mut out: Vec<(usize, u64)> = eng
        .take_completed()
        .into_iter()
        .map(|c| (c.id, c.completion.to_bits()))
        .collect();
    out.sort_unstable();
    out
}

/// Uninterrupted run, returning completions and resolve telemetry.
fn run_straight(trace: &Trace, policy: &mut OfflineAdapt) -> (Vec<(usize, u64)>, ResolveStats) {
    policy.reset();
    let mut eng = load(trace);
    eng.drain(policy).unwrap();
    let stats = OnlineScheduler::resolve_stats(policy).unwrap();
    (completions_of(&mut eng), stats)
}

/// Warm-mode run interrupted by snapshot/restore every `every` events;
/// each restore targets a brand-new eager-warm policy whose probe cache
/// and carried basis start empty (the safe-to-drop contract).
fn run_interrupted_warm(trace: &Trace, every: usize) -> Vec<(usize, u64)> {
    let mut policy = OfflineAdapt::new();
    policy.reset();
    let mut eng = load(trace);
    let mut guard = 0usize;
    loop {
        guard += 1;
        assert!(guard < 1_000_000, "interrupted run does not terminate");
        if eng.step(&mut policy).unwrap() == StepOutcome::Idle {
            break;
        }
        if eng.n_events().is_multiple_of(every) {
            let snap = eng.snapshot(&policy);
            let mut revived = OfflineAdapt::new();
            eng = Engine::restore(&snap, &mut revived).unwrap();
            policy = revived;
        }
    }
    completions_of(&mut eng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Warm-path OLA is bit-identical to the cold-resolve oracle across
    /// seeds and fault intensities — and pays for exactly as many LP
    /// solves in total (the warm path changes *who* answers a probe,
    /// never *how many* probes the bisection asks).
    #[test]
    fn warm_ola_is_bit_identical_to_cold_oracle(
        seed in 0u64..20_000,
        n in 4usize..12,
        intensity in 0u8..3,
    ) {
        let trace = traced(seed, n, intensity);
        let (cold_done, cold_stats) =
            run_straight(&trace, &mut OfflineAdapt::cold_oracle());
        let (warm_done, warm_stats) =
            run_straight(&trace, &mut OfflineAdapt::new());
        prop_assert_eq!(cold_done.len(), n);
        prop_assert_eq!(&warm_done, &cold_done);
        prop_assert_eq!(warm_stats.lp_solves(), cold_stats.lp_solves());
        prop_assert_eq!(warm_stats.n_resolves, cold_stats.n_resolves);
        // The oracle never serves a probe warm, by construction.
        prop_assert_eq!(cold_stats.warm_lp_solves, 0);
        prop_assert_eq!(cold_stats.warm_resolves, 0);
    }

    /// Dropping the warm basis mid-run is safe: interrupting the warm
    /// policy at every k-th event (snapshot → fresh instance → restore)
    /// still reproduces the uninterrupted **cold oracle** bit for bit.
    #[test]
    fn interrupted_warm_run_matches_uninterrupted_cold_oracle(
        seed in 0u64..20_000,
        n in 4usize..10,
        every in 1usize..5,
        intensity in 0u8..3,
    ) {
        let trace = traced(seed, n, intensity);
        let (reference, _) =
            run_straight(&trace, &mut OfflineAdapt::cold_oracle());
        let interrupted = run_interrupted_warm(&trace, every);
        prop_assert_eq!(&interrupted, &reference);
    }

    /// OLA-lite is deterministic (same trace → bit-identical replay)
    /// and survives every fault intensity, for walk factors besides the
    /// default.
    #[test]
    fn ola_lite_is_deterministic_across_intensities(
        seed in 0u64..20_000,
        n in 4usize..12,
        intensity in 0u8..3,
        tight in 0u8..2,
    ) {
        let alpha = if tight == 1 { 1.5 } else { 3.0 };
        let trace = traced(seed, n, intensity);
        let mut a = OlaLite::with_alpha(alpha);
        let mut b = OlaLite::with_alpha(alpha);
        let sa = trace.replay(&mut a).unwrap();
        let sb = trace.replay(&mut b).unwrap();
        prop_assert_eq!(sa.n_jobs, n);
        prop_assert_eq!(sa.n_events, sb.n_events);
        prop_assert_eq!(
            sa.metrics.max_stretch.to_bits(),
            sb.metrics.max_stretch.to_bits()
        );
        prop_assert!(sa.metrics.makespan.is_finite());
    }
}

/// The differential above must not pass vacuously: on a dense trace the
/// eager-warm policy actually engages its warm machinery, and the mean
/// resolve cost it reports is a real bisection (≫ 1 LP per re-plan).
#[test]
fn warm_engagement_is_not_vacuous() {
    let trace = traced(7, 60, 0);
    let (_, warm) = run_straight(&trace, &mut OfflineAdapt::new());
    assert!(
        warm.warm_lp_solves > 0,
        "eager-warm OLA never served a probe warm: {warm:?}"
    );
    assert!(
        warm.warm_resolves > warm.cold_resolves,
        "warm engagement should dominate events on a fault-free trace: {warm:?}"
    );
    assert!(
        warm.mean_lp_solves_per_resolve() > 1.0,
        "resolve cost collapsed: {warm:?}"
    );
}
