//! Property: campaign runs are deterministic — the same config and seed
//! base produce **byte-identical** aggregate JSON whether scenarios run
//! in parallel (vendored-rayon chunks, one chunk per core) or strictly
//! serially, and across repeated runs. Worker chunking must never leak
//! into results.

use dlflow_sim::campaign::{parse_campaign, run_campaign, run_campaign_serial};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]
    #[test]
    fn campaign_json_is_chunking_invariant(
        seeds in 1u64..4,
        seed_base in 0u64..1000,
        jobs in 3usize..6,
        servers in 2usize..4,
        load_tenths in 5u32..21,
        sched_mask in 1u32..8,
    ) {
        let mut scheds = String::new();
        if sched_mask & 1 != 0 {
            scheds.push_str("scheduler mct\n");
        }
        if sched_mask & 2 != 0 {
            scheds.push_str("scheduler srpt\n");
        }
        if sched_mask & 4 != 0 {
            scheds.push_str("scheduler edf\n");
        }
        let text = format!(
            "name prop\nseeds {seeds}\nseed-base {seed_base}\nsigbits 10\n\
             platform p servers={servers} banks=3 heterogeneity=2\n\
             workload w jobs={jobs} load={}\n{scheds}",
            load_tenths as f64 / 10.0,
        );
        let cfg = parse_campaign(&text).unwrap();

        let parallel = run_campaign(&cfg).unwrap().to_json();
        let serial = run_campaign_serial(&cfg).unwrap().to_json();
        prop_assert_eq!(&parallel, &serial, "parallel vs serial diverged");

        let again = run_campaign(&cfg).unwrap().to_json();
        prop_assert_eq!(&parallel, &again, "repeated run diverged");
    }
}

/// The shipped quick-mode tournament itself is chunking-invariant (the
/// config the `campaign` bin and CI artifacts are built from) — checked
/// on a scaled-down seed count to stay fast in debug builds.
#[test]
fn quick_config_scaled_down_is_deterministic() {
    let text = dlflow_sim::campaign::QUICK_CONFIG.replace("seeds 20", "seeds 2");
    let cfg = parse_campaign(&text).unwrap();
    let a = run_campaign(&cfg).unwrap().to_json();
    let b = run_campaign_serial(&cfg).unwrap().to_json();
    assert_eq!(a, b);
}
