//! Integration coverage for the LP modelling helpers callers use around
//! the solver proper: dense views, naming, expression evaluation, and
//! warm-basis compatibility checks.

use dlflow_lp::{solve_warm, LinExpr, LpProblem, LpStatus, Rel, Sense};
use dlflow_num::Rat;

fn ri(v: i64) -> Rat {
    Rat::from_i64(v)
}

/// minimize x + y  s.t.  x + 2y ≥ 4, x ≥ 0, y ≥ 0.
fn tiny_lp() -> LpProblem<Rat> {
    let mut p: LpProblem<Rat> = LpProblem::new(Sense::Minimize);
    let x = p.add_var("x");
    let y = p.add_var("y");
    p.objective_term(x, ri(1));
    p.objective_term(y, ri(1));
    let mut row = LinExpr::new();
    row.push(x, ri(1));
    row.push(y, ri(2));
    p.add_constraint(row, Rel::Ge, ri(4));
    p
}

#[test]
fn expr_dense_view_and_eval_agree() {
    let mut p: LpProblem<Rat> = LpProblem::new(Sense::Minimize);
    let x = p.add_var("x");
    let y = p.add_var("y");
    assert_eq!(p.var_name(x), "x");
    assert_eq!(p.var_name(y), "y");

    let mut e = LinExpr::new();
    e.push(x, ri(3));
    e.push(y, ri(-1));
    e.push(x, ri(2)); // duplicate variable: summed in the dense view
    assert_eq!(e.to_dense(2), vec![ri(5), ri(-1)]);

    let point = vec![ri(1), ri(4)];
    assert_eq!(LpProblem::eval_expr(&e, &point), ri(1));
}

#[test]
fn warm_basis_compatibility_gates_reuse() {
    let p = tiny_lp();
    let first = solve_warm(&p, None);
    assert_eq!(first.solution.status, LpStatus::Optimal);
    let basis = first.basis.expect("optimal solve snapshots a basis");
    assert!(basis.compatible_with(&p));

    // A structurally different program (extra constraint) must be rejected.
    let mut q = tiny_lp();
    let z = q.add_var("z");
    q.bound_le(z, ri(1));
    assert!(!basis.compatible_with(&q));

    // Re-solving the identical program accepts and uses the hint.
    let again = solve_warm(&p, Some(&basis));
    assert_eq!(again.solution.status, LpStatus::Optimal);
    assert!(again.warm_used);
    assert_eq!(again.solution.objective, first.solution.objective);
}
