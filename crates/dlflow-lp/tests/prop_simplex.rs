//! Property-based tests for the simplex solver.
//!
//! Strategy: generate small random LPs with integer data, solve them with
//! both the exact-rational and the f64 instantiations, and check
//! (a) agreement of statuses and objective values,
//! (b) primal feasibility of the returned point,
//! (c) optimality against brute-force vertex enumeration in 2 variables.

use dlflow_lp::{solve, LinExpr, LpProblem, LpStatus, Rel, Sense};
use dlflow_num::Rat;
use proptest::prelude::*;

/// Random small LP over integer coefficients:
/// max cᵀx s.t. Ax ≤ b with b ≥ 0 — always feasible (x = 0) and bounded
/// when we also add Σx ≤ B.
fn build_pair(
    n: usize,
    c: &[i64],
    rows: &[Vec<i64>],
    b: &[i64],
    cap: i64,
) -> (LpProblem<f64>, LpProblem<Rat>) {
    let mut lp_f: LpProblem<f64> = LpProblem::new(Sense::Maximize);
    let mut lp_r: LpProblem<Rat> = LpProblem::new(Sense::Maximize);
    let vf: Vec<_> = (0..n).map(|i| lp_f.add_var(format!("x{i}"))).collect();
    let vr: Vec<_> = (0..n).map(|i| lp_r.add_var(format!("x{i}"))).collect();
    lp_f.set_objective(LinExpr::from_iter(
        vf.iter().zip(c).map(|(&v, &ci)| (v, ci as f64)),
    ));
    lp_r.set_objective(LinExpr::from_iter(
        vr.iter().zip(c).map(|(&v, &ci)| (v, Rat::from_i64(ci))),
    ));
    for (row, &bi) in rows.iter().zip(b) {
        lp_f.add_constraint(
            LinExpr::from_iter(vf.iter().zip(row).map(|(&v, &a)| (v, a as f64))),
            Rel::Le,
            bi as f64,
        );
        lp_r.add_constraint(
            LinExpr::from_iter(vr.iter().zip(row).map(|(&v, &a)| (v, Rat::from_i64(a)))),
            Rel::Le,
            Rat::from_i64(bi),
        );
    }
    // Bounding box keeps everything bounded.
    lp_f.add_constraint(
        LinExpr::from_iter(vf.iter().map(|&v| (v, 1.0))),
        Rel::Le,
        cap as f64,
    );
    lp_r.add_constraint(
        LinExpr::from_iter(vr.iter().map(|&v| (v, Rat::one()))),
        Rel::Le,
        Rat::from_i64(cap),
    );
    (lp_f, lp_r)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn f64_and_exact_agree(
        n in 1usize..4,
        m in 1usize..4,
        seed_c in proptest::collection::vec(-5i64..=5, 3),
        seed_a in proptest::collection::vec(-4i64..=6, 9),
        seed_b in proptest::collection::vec(0i64..=10, 3),
        cap in 1i64..=20,
    ) {
        let c: Vec<i64> = seed_c[..n].to_vec();
        let rows: Vec<Vec<i64>> = (0..m).map(|i| (0..n).map(|j| seed_a[(i * 3 + j) % 9]).collect()).collect();
        let b: Vec<i64> = seed_b[..m].to_vec();
        let (lp_f, lp_r) = build_pair(n, &c, &rows, &b, cap);
        let sf = solve(&lp_f);
        let sr = solve(&lp_r);
        // Feasible (x = 0) and bounded by construction.
        prop_assert_eq!(sf.status, LpStatus::Optimal);
        prop_assert_eq!(sr.status, LpStatus::Optimal);
        let of = sf.objective.unwrap();
        let or = sr.objective.unwrap().to_f64();
        prop_assert!((of - or).abs() < 1e-6, "objectives disagree: f64={of}, exact={or}");
        // Returned points must be primal feasible.
        prop_assert!(lp_f.check_feasible(&sf.values).is_ok());
        prop_assert!(lp_r.check_feasible(&sr.values).is_ok());
    }

    #[test]
    fn two_var_matches_vertex_enumeration(
        c0 in -5i64..=5, c1 in -5i64..=5,
        a in proptest::collection::vec((-4i64..=6, -4i64..=6, 0i64..=12), 1..4),
    ) {
        // max c·x over {x ≥ 0, a_i·x ≤ b_i, x0 + x1 ≤ 15}
        let mut rows: Vec<Vec<i64>> = a.iter().map(|&(p, q, _)| vec![p, q]).collect();
        let mut b: Vec<i64> = a.iter().map(|&(_, _, r)| r).collect();
        rows.push(vec![1, 1]);
        b.push(15);
        let (lp_f, _) = build_pair(2, &[c0, c1], &rows[..rows.len() - 1], &b[..b.len() - 1], 15);
        let sol = solve(&lp_f);
        prop_assert_eq!(sol.status, LpStatus::Optimal);
        let got = sol.objective.unwrap();

        // Brute force: enumerate pairwise constraint intersections
        // (including axes) and keep feasible ones.
        let mut lines: Vec<(f64, f64, f64)> = rows
            .iter()
            .zip(&b)
            .map(|(r, &bi)| (r[0] as f64, r[1] as f64, bi as f64))
            .collect();
        lines.push((1.0, 0.0, 0.0)); // x0 = 0  (as ≥, handled via equality here)
        lines.push((0.0, 1.0, 0.0)); // x1 = 0
        let feasible = |x: f64, y: f64| -> bool {
            x >= -1e-7 && y >= -1e-7
                && rows.iter().zip(&b).all(|(r, &bi)| r[0] as f64 * x + r[1] as f64 * y <= bi as f64 + 1e-7)
        };
        let mut best = f64::NEG_INFINITY;
        if feasible(0.0, 0.0) {
            best = 0.0;
        }
        for i in 0..lines.len() {
            for j in (i + 1)..lines.len() {
                let (a1, b1, c1l) = lines[i];
                let (a2, b2, c2l) = lines[j];
                let det = a1 * b2 - a2 * b1;
                if det.abs() < 1e-12 {
                    continue;
                }
                let x = (c1l * b2 - c2l * b1) / det;
                let y = (a1 * c2l - a2 * c1l) / det;
                if feasible(x, y) {
                    best = best.max(c0 as f64 * x + c1 as f64 * y);
                }
            }
        }
        prop_assert!((got - best).abs() < 1e-5, "simplex={got} brute={best}");
    }

    #[test]
    fn exact_solution_is_truly_optimal_vs_perturbation(
        c in proptest::collection::vec(1i64..=5, 2),
        b in proptest::collection::vec(1i64..=10, 2),
    ) {
        // max c·x s.t. x_i ≤ b_i: optimum is c·b, trivially checkable.
        let mut lp: LpProblem<Rat> = LpProblem::new(Sense::Maximize);
        let xs: Vec<_> = (0..2).map(|i| lp.add_var(format!("x{i}"))).collect();
        lp.set_objective(LinExpr::from_iter(xs.iter().zip(&c).map(|(&v, &ci)| (v, Rat::from_i64(ci)))));
        for (&v, &bi) in xs.iter().zip(&b) {
            lp.add_constraint(LinExpr::term(v, Rat::one()), Rel::Le, Rat::from_i64(bi));
        }
        let sol = solve(&lp);
        prop_assert_eq!(sol.status, LpStatus::Optimal);
        let expect = Rat::from_i64(c[0] * b[0] + c[1] * b[1]);
        prop_assert_eq!(sol.objective.unwrap(), expect);
    }
}
