//! Two-phase primal simplex on the dense tableau — the seed solver, kept
//! as the slow-but-simple **reference oracle** for the default sparse
//! solver in [`crate::revised`] (exported as [`crate::solve_dense`]).
//!
//! * Entering/leaving variables follow **Bland's rule**, which guarantees
//!   termination (no cycling) — essential for the exact-rational instantiation
//!   where a cycling pivot rule would loop forever rather than drift out of
//!   degeneracy by rounding.
//! * Phase 1 minimizes the sum of artificial variables; a strictly positive
//!   phase-1 optimum certifies infeasibility. Artificial variables left in
//!   the basis at level zero are pivoted out (or their redundant rows
//!   dropped) before phase 2.
//! * Generic over [`Scalar`]: `f64` (tolerance 1e-9) or `Rat` (exact).

use crate::problem::{LpProblem, Rel, Sense};
use crate::solution::LpSolution;
use dlflow_num::Scalar;

/// Hard cap on simplex pivots, as a defence against implementation bugs:
/// Bland's rule terminates, so hitting the cap is a panic, not a result.
const MAX_PIVOTS_FACTOR: usize = 2000;

/// Solves the problem, returning status, optimal value and a primal point.
pub fn solve<S: Scalar>(problem: &LpProblem<S>) -> LpSolution<S> {
    Tableau::build(problem).solve(problem)
}

struct Tableau<S> {
    /// `rows × cols` constraint matrix (current basis representation).
    a: Vec<Vec<S>>,
    /// Right-hand side, kept non-negative.
    b: Vec<S>,
    /// Basic variable of each row.
    basis: Vec<usize>,
    /// Number of structural (original) variables.
    n_struct: usize,
    /// Total columns (structural + slack/surplus + artificial).
    n_total: usize,
    /// Column index where artificial variables start (== n_total when none).
    art_start: usize,
}

impl<S: Scalar> Tableau<S> {
    /// Converts the problem to standard form `Ax = b, x ≥ 0, b ≥ 0` with
    /// slack/surplus and artificial columns, and an identity starting basis.
    fn build(p: &LpProblem<S>) -> Tableau<S> {
        let m = p.n_constraints();
        let n = p.n_vars();

        // Count extra columns.
        let mut n_slack = 0;
        for c in p.constraints() {
            if c.rel != Rel::Eq {
                n_slack += 1;
            }
        }

        // Rows needing an artificial: Eq rows, and Le/Ge rows whose slack
        // coefficient ends up -1 after sign normalization.
        let mut rows: Vec<(Vec<S>, S, Option<usize>)> = Vec::with_capacity(m); // (dense row, rhs, slack col)
        let mut slack_idx = 0usize;
        let mut needs_art = Vec::with_capacity(m);
        for c in p.constraints() {
            let mut dense = c.expr.to_dense(n);
            let mut rhs = c.rhs.clone();
            let mut rel = c.rel;
            // Normalize rhs ≥ 0.
            if rhs.is_negative_tol() {
                for d in dense.iter_mut() {
                    *d = d.neg();
                }
                rhs = rhs.neg();
                rel = match rel {
                    Rel::Le => Rel::Ge,
                    Rel::Ge => Rel::Le,
                    Rel::Eq => Rel::Eq,
                };
            }
            let (slack, art) = match rel {
                Rel::Le => (Some((slack_idx, S::one())), false),
                Rel::Ge => (Some((slack_idx, S::one().neg())), true),
                Rel::Eq => (None, true),
            };
            if slack.is_some() {
                slack_idx += 1;
            }
            needs_art.push(art);
            // Record: we stash the slack column index + sign in place of Option<usize>
            // by extending later; temporarily keep dense/rhs.
            rows.push((
                dense,
                rhs,
                slack.map(|(i, s)| {
                    // encode sign in the coefficient during assembly below
                    // (positive => basic slack candidate)
                    debug_assert!(s == S::one() || s == S::one().neg());
                    if s == S::one() {
                        i << 1
                    } else {
                        (i << 1) | 1
                    }
                }),
            ));
        }
        debug_assert_eq!(n_slack, slack_idx);

        let n_art: usize = needs_art.iter().filter(|&&x| x).count();
        let art_start = n + n_slack;
        let n_total = art_start + n_art;

        let mut a = vec![vec![S::zero(); n_total]; m];
        let mut b = vec![S::zero(); m];
        let mut basis = vec![usize::MAX; m];
        let mut art_idx = art_start;

        for (i, (dense, rhs, slack_code)) in rows.into_iter().enumerate() {
            for (j, v) in dense.into_iter().enumerate() {
                a[i][j] = v;
            }
            b[i] = rhs;
            if let Some(code) = slack_code {
                let col = n + (code >> 1);
                let positive = code & 1 == 0;
                a[i][col] = if positive { S::one() } else { S::one().neg() };
                if positive {
                    basis[i] = col; // slack starts basic
                }
            }
            if needs_art[i] {
                a[i][art_idx] = S::one();
                basis[i] = art_idx; // artificial starts basic
                art_idx += 1;
            }
            debug_assert_ne!(basis[i], usize::MAX);
        }

        Tableau {
            a,
            b,
            basis,
            n_struct: n,
            n_total,
            art_start,
        }
    }

    fn solve(mut self, p: &LpProblem<S>) -> LpSolution<S> {
        // --- Phase 1: minimize the sum of artificials. ---
        if self.art_start < self.n_total {
            let mut cost = vec![S::zero(); self.n_total];
            for c in cost.iter_mut().skip(self.art_start) {
                *c = S::one();
            }
            let (r, mut z) = self.reduced_costs(&cost);
            let mut r = r;
            if !self.run_simplex(&mut r, &mut z) {
                // Phase-1 objective is bounded below by 0; unbounded is a bug.
                unreachable!("phase-1 simplex reported unbounded");
            }
            // z now holds -(phase-1 optimum); optimum = -z.
            let phase1_opt = z.neg();
            if phase1_opt.is_positive_tol() {
                return LpSolution::infeasible(p.n_vars());
            }
            self.purge_artificials();
        }

        // --- Phase 2: original objective. ---
        let mut cost = vec![S::zero(); self.n_total];
        let dense_obj = p.objective().to_dense(self.n_struct);
        let negate = p.sense() == Sense::Maximize;
        for (j, v) in dense_obj.into_iter().enumerate() {
            cost[j] = if negate { v.neg() } else { v };
        }
        let (mut r, mut z) = self.reduced_costs(&cost);
        if !self.run_simplex(&mut r, &mut z) {
            return LpSolution::unbounded(p.n_vars());
        }

        // Extract the primal point.
        let mut values = vec![S::zero(); p.n_vars()];
        for (i, &bv) in self.basis.iter().enumerate() {
            if bv < self.n_struct {
                values[bv] = self.b[i].clone();
            }
        }
        // z holds -(min cᵀx); objective value in the user's sense:
        let min_val = z.neg();
        let objective = if negate { min_val.neg() } else { min_val };
        LpSolution::optimal(objective, values)
    }

    /// Computes reduced costs `r_j = c_j − c_B · B⁻¹A_j` for the current
    /// basis and the negative of the current objective value.
    fn reduced_costs(&self, cost: &[S]) -> (Vec<S>, S) {
        let mut r = cost.to_vec();
        let mut z = S::zero();
        for (i, &bv) in self.basis.iter().enumerate() {
            let cb = &cost[bv];
            if cb.is_negligible() {
                continue;
            }
            for j in 0..self.n_total {
                r[j] = r[j].sub(&cb.mul(&self.a[i][j]));
            }
            z = z.sub(&cb.mul(&self.b[i]));
        }
        (r, z)
    }

    /// Runs simplex iterations with Bland's rule until optimal (`true`) or
    /// unbounded (`false`). `r` is the reduced-cost row, `z` the negated
    /// objective value; both are updated in place.
    fn run_simplex(&mut self, r: &mut [S], z: &mut S) -> bool {
        let m = self.a.len();
        let max_pivots = MAX_PIVOTS_FACTOR * (m + self.n_total + 1);
        for _ in 0..max_pivots {
            // Bland: entering = smallest-index column with r_j < 0.
            let Some(enter) = (0..self.n_total).find(|&j| r[j].is_negative_tol()) else {
                return true; // optimal
            };
            // Ratio test; Bland tie-break on smallest basis variable index.
            let mut best: Option<(S, usize)> = None;
            for i in 0..m {
                if self.a[i][enter].is_positive_tol() {
                    let ratio = self.b[i].div(&self.a[i][enter]);
                    let better = match &best {
                        None => true,
                        Some((cur, l)) => {
                            ratio.lt_tol(cur)
                                || (!ratio.gt_tol(cur) && self.basis[i] < self.basis[*l])
                        }
                    };
                    if better {
                        best = Some((ratio, i));
                    }
                }
            }
            let Some((_, leave)) = best else {
                return false; // unbounded
            };
            self.pivot(leave, enter, r, z);
        }
        // dlflint:allow(hot-path-panic, "pivot-cap backstop: Bland's rule cannot cycle, so this is unreachable outside a solver bug")
        panic!("simplex exceeded pivot cap — this indicates a bug (Bland's rule cannot cycle)");
    }

    /// Pivots on `(row, col)`: `col` enters the basis, the current basic
    /// variable of `row` leaves.
    fn pivot(&mut self, row: usize, col: usize, r: &mut [S], z: &mut S) {
        let piv = self.a[row][col].clone();
        debug_assert!(piv.is_positive_tol());
        // Normalize pivot row.
        for j in 0..self.n_total {
            self.a[row][j] = self.a[row][j].div(&piv);
        }
        self.b[row] = self.b[row].div(&piv);
        self.a[row][col] = S::one(); // exact

        // Eliminate the column from all other rows.
        for i in 0..self.a.len() {
            if i == row {
                continue;
            }
            let f = self.a[i][col].clone();
            if f.is_negligible() {
                self.a[i][col] = S::zero();
                continue;
            }
            for j in 0..self.n_total {
                self.a[i][j] = self.a[i][j].sub(&f.mul(&self.a[row][j]));
            }
            self.b[i] = self.b[i].sub(&f.mul(&self.b[row]));
            self.a[i][col] = S::zero(); // exact
            if self.b[i].is_negligible() {
                self.b[i] = S::zero();
            }
        }
        // Eliminate from the reduced-cost row.
        let f = r[col].clone();
        if !f.is_negligible() {
            for j in 0..self.n_total {
                r[j] = r[j].sub(&f.mul(&self.a[row][j]));
            }
            *z = z.sub(&f.mul(&self.b[row]));
            r[col] = S::zero();
        }
        self.basis[row] = col;
    }

    /// After phase 1: pivot zero-level artificials out of the basis, drop
    /// rows that prove redundant, and delete artificial columns.
    fn purge_artificials(&mut self) {
        let mut row = 0;
        while row < self.a.len() {
            if self.basis[row] >= self.art_start {
                // With exact arithmetic a basic artificial is exactly 0 here
                // (phase-1 optimum is 0). With floats its value is bounded by
                // the accepted phase-1 residual, i.e. noise on the order of
                // the tolerance; the degenerate pivot below keeps it bounded.
                // Find any non-artificial column with a nonzero entry.
                let col = (0..self.art_start).find(|&j| !self.a[row][j].is_negligible());
                match col {
                    Some(col) => {
                        // Degenerate pivot (b[row] == 0): keeps b ≥ 0 regardless
                        // of the entry's sign, so no ratio test is needed.
                        let piv = self.a[row][col].clone();
                        for j in 0..self.n_total {
                            self.a[row][j] = self.a[row][j].div(&piv);
                        }
                        self.b[row] = self.b[row].div(&piv);
                        for i in 0..self.a.len() {
                            if i == row {
                                continue;
                            }
                            let f = self.a[i][col].clone();
                            if f.is_negligible() {
                                continue;
                            }
                            for j in 0..self.n_total {
                                self.a[i][j] = self.a[i][j].sub(&f.mul(&self.a[row][j]));
                            }
                            self.b[i] = self.b[i].sub(&f.mul(&self.b[row]));
                        }
                        self.basis[row] = col;
                        row += 1;
                    }
                    None => {
                        // Entire row is zero on structural+slack columns: redundant.
                        self.a.swap_remove(row);
                        self.b.swap_remove(row);
                        self.basis.swap_remove(row);
                    }
                }
            } else {
                row += 1;
            }
        }
        // Remove artificial columns.
        for r in self.a.iter_mut() {
            r.truncate(self.art_start);
        }
        self.n_total = self.art_start;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::LinExpr;
    use crate::solution::LpStatus;
    use dlflow_num::Rat;

    fn lp_f64(sense: Sense) -> LpProblem<f64> {
        LpProblem::new(sense)
    }

    #[test]
    fn textbook_max() {
        // max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 → opt 36 at (2, 6).
        let mut lp = lp_f64(Sense::Maximize);
        let x = lp.add_var("x");
        let y = lp.add_var("y");
        lp.set_objective(LinExpr::from_iter([(x, 3.0), (y, 5.0)]));
        lp.add_constraint(LinExpr::term(x, 1.0), Rel::Le, 4.0);
        lp.add_constraint(LinExpr::term(y, 2.0), Rel::Le, 12.0);
        lp.add_constraint(LinExpr::from_iter([(x, 3.0), (y, 2.0)]), Rel::Le, 18.0);
        let sol = solve(&lp);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.objective.unwrap() - 36.0).abs() < 1e-9);
        assert!((sol.values[0] - 2.0).abs() < 1e-9);
        assert!((sol.values[1] - 6.0).abs() < 1e-9);
    }

    #[test]
    fn textbook_min_with_ge() {
        // min 2x + 3y s.t. x + y ≥ 10, x ≥ 2 → opt 20 at (10, 0).
        let mut lp = lp_f64(Sense::Minimize);
        let x = lp.add_var("x");
        let y = lp.add_var("y");
        lp.set_objective(LinExpr::from_iter([(x, 2.0), (y, 3.0)]));
        lp.add_constraint(LinExpr::from_iter([(x, 1.0), (y, 1.0)]), Rel::Ge, 10.0);
        lp.add_constraint(LinExpr::term(x, 1.0), Rel::Ge, 2.0);
        let sol = solve(&lp);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.objective.unwrap() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn equality_constraints() {
        // min x + y s.t. x + 2y = 4, x − y = 1 → x = 2, y = 1, opt 3.
        let mut lp = lp_f64(Sense::Minimize);
        let x = lp.add_var("x");
        let y = lp.add_var("y");
        lp.set_objective(LinExpr::from_iter([(x, 1.0), (y, 1.0)]));
        lp.add_constraint(LinExpr::from_iter([(x, 1.0), (y, 2.0)]), Rel::Eq, 4.0);
        lp.add_constraint(LinExpr::from_iter([(x, 1.0), (y, -1.0)]), Rel::Eq, 1.0);
        let sol = solve(&lp);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.values[0] - 2.0).abs() < 1e-9);
        assert!((sol.values[1] - 1.0).abs() < 1e-9);
        assert!((sol.objective.unwrap() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn infeasible_detected() {
        let mut lp = lp_f64(Sense::Minimize);
        let x = lp.add_var("x");
        lp.set_objective(LinExpr::term(x, 1.0));
        lp.add_constraint(LinExpr::term(x, 1.0), Rel::Le, 1.0);
        lp.add_constraint(LinExpr::term(x, 1.0), Rel::Ge, 2.0);
        assert_eq!(solve(&lp).status, LpStatus::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut lp = lp_f64(Sense::Maximize);
        let x = lp.add_var("x");
        lp.set_objective(LinExpr::term(x, 1.0));
        lp.add_constraint(LinExpr::term(x, 1.0), Rel::Ge, 1.0);
        assert_eq!(solve(&lp).status, LpStatus::Unbounded);
    }

    #[test]
    fn negative_rhs_normalized() {
        // x − y ≤ −2 with min x: needs rhs flip; opt x = 0 (y ≥ 2 free to grow).
        let mut lp = lp_f64(Sense::Minimize);
        let x = lp.add_var("x");
        let y = lp.add_var("y");
        lp.set_objective(LinExpr::term(x, 1.0));
        lp.add_constraint(LinExpr::from_iter([(x, 1.0), (y, -1.0)]), Rel::Le, -2.0);
        let sol = solve(&lp);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.objective.unwrap() - 0.0).abs() < 1e-9);
    }

    #[test]
    fn beale_cycling_instance_terminates() {
        // Beale's classic cycling example; Bland's rule must terminate.
        // min -0.75x4 + 150x5 - 0.02x6 + 6x7
        // s.t. 0.25x4 - 60x5 - 0.04x6 + 9x7 ≤ 0
        //      0.5x4 - 90x5 - 0.02x6 + 3x7 ≤ 0
        //      x6 ≤ 1
        let mut lp = lp_f64(Sense::Minimize);
        let x4 = lp.add_var("x4");
        let x5 = lp.add_var("x5");
        let x6 = lp.add_var("x6");
        let x7 = lp.add_var("x7");
        lp.set_objective(LinExpr::from_iter([
            (x4, -0.75),
            (x5, 150.0),
            (x6, -0.02),
            (x7, 6.0),
        ]));
        lp.add_constraint(
            LinExpr::from_iter([(x4, 0.25), (x5, -60.0), (x6, -0.04), (x7, 9.0)]),
            Rel::Le,
            0.0,
        );
        lp.add_constraint(
            LinExpr::from_iter([(x4, 0.5), (x5, -90.0), (x6, -0.02), (x7, 3.0)]),
            Rel::Le,
            0.0,
        );
        lp.add_constraint(LinExpr::term(x6, 1.0), Rel::Le, 1.0);
        let sol = solve(&lp);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.objective.unwrap() - (-0.05)).abs() < 1e-9);
    }

    #[test]
    fn exact_rational_solution() {
        // max x + y s.t. 3x + y ≤ 1, x + 3y ≤ 1 → x = y = 1/4, opt 1/2.
        let mut lp: LpProblem<Rat> = LpProblem::new(Sense::Maximize);
        let x = lp.add_var("x");
        let y = lp.add_var("y");
        lp.set_objective(LinExpr::from_iter([(x, Rat::one()), (y, Rat::one())]));
        lp.add_constraint(
            LinExpr::from_iter([(x, Rat::from_i64(3)), (y, Rat::one())]),
            Rel::Le,
            Rat::one(),
        );
        lp.add_constraint(
            LinExpr::from_iter([(x, Rat::one()), (y, Rat::from_i64(3))]),
            Rel::Le,
            Rat::one(),
        );
        let sol = solve(&lp);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_eq!(sol.objective.unwrap(), Rat::from_ratio(1, 2));
        assert_eq!(sol.values[0], Rat::from_ratio(1, 4));
        assert_eq!(sol.values[1], Rat::from_ratio(1, 4));
    }

    #[test]
    fn degenerate_equality_with_redundant_row() {
        // Redundant equalities exercise the purge path that drops rows.
        let mut lp = lp_f64(Sense::Minimize);
        let x = lp.add_var("x");
        let y = lp.add_var("y");
        lp.set_objective(LinExpr::from_iter([(x, 1.0), (y, 1.0)]));
        lp.add_constraint(LinExpr::from_iter([(x, 1.0), (y, 1.0)]), Rel::Eq, 2.0);
        lp.add_constraint(LinExpr::from_iter([(x, 2.0), (y, 2.0)]), Rel::Eq, 4.0); // 2× the first
        let sol = solve(&lp);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.objective.unwrap() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn zero_objective_feasibility_check() {
        // Pure feasibility: empty objective, consistent constraints.
        let mut lp = lp_f64(Sense::Minimize);
        let x = lp.add_var("x");
        lp.add_constraint(LinExpr::term(x, 1.0), Rel::Eq, 5.0);
        let sol = solve(&lp);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.values[0] - 5.0).abs() < 1e-9);
    }
}
