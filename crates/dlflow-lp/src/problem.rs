//! Linear-program model: variables, linear expressions, constraints.
//!
//! All variables are implicitly non-negative (`x ≥ 0`), which is exactly
//! what the paper's Systems (1), (2), (3) and (5) need: job fractions
//! `α⁽ᵗ⁾ᵢⱼ ≥ 0` and the flow objective `F ≥ 0`.

use dlflow_num::Scalar;
use std::fmt;

/// Handle to a decision variable of an [`LpProblem`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct VarId(pub(crate) usize);

impl VarId {
    /// The variable's index in the problem's variable list.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

/// Optimization direction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Sense {
    /// Minimize the objective.
    Minimize,
    /// Maximize the objective.
    Maximize,
}

/// Constraint relation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Rel {
    /// `expr ≤ rhs`
    Le,
    /// `expr = rhs`
    Eq,
    /// `expr ≥ rhs`
    Ge,
}

impl fmt::Display for Rel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rel::Le => write!(f, "<="),
            Rel::Eq => write!(f, "=="),
            Rel::Ge => write!(f, ">="),
        }
    }
}

/// A sparse linear expression `Σ coeff · var`.
#[derive(Clone, Debug)]
pub struct LinExpr<S> {
    /// `(variable, coefficient)` pairs; duplicates are summed on use.
    pub terms: Vec<(VarId, S)>,
}

impl<S: Scalar> LinExpr<S> {
    /// The empty expression (value 0).
    pub fn new() -> Self {
        LinExpr { terms: Vec::new() }
    }

    /// Single-term expression `coeff · var`.
    pub fn term(var: VarId, coeff: S) -> Self {
        LinExpr {
            terms: vec![(var, coeff)],
        }
    }

    /// Adds `coeff · var` to the expression.
    pub fn push(&mut self, var: VarId, coeff: S) -> &mut Self {
        self.terms.push((var, coeff));
        self
    }

    /// `true` when the expression has no terms.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Collapses duplicate variables by summing their coefficients and
    /// drops exact zeros. Returns a dense coefficient vector of length
    /// `n_vars`.
    pub fn to_dense(&self, n_vars: usize) -> Vec<S> {
        let mut dense = vec![S::zero(); n_vars];
        for (v, c) in &self.terms {
            dense[v.0] = dense[v.0].add(c);
        }
        dense
    }
}

impl<S: Scalar> Default for LinExpr<S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S: Scalar> FromIterator<(VarId, S)> for LinExpr<S> {
    fn from_iter<T: IntoIterator<Item = (VarId, S)>>(iter: T) -> Self {
        LinExpr {
            terms: iter.into_iter().collect(),
        }
    }
}

/// One linear constraint `expr rel rhs`.
#[derive(Clone, Debug)]
pub struct Constraint<S> {
    /// Left-hand side.
    pub expr: LinExpr<S>,
    /// Relation.
    pub rel: Rel,
    /// Right-hand side constant.
    pub rhs: S,
    /// Optional human-readable label (used in error/debug output).
    pub label: Option<String>,
}

/// A linear program with non-negative variables.
#[derive(Clone, Debug)]
pub struct LpProblem<S> {
    var_names: Vec<String>,
    objective: LinExpr<S>,
    sense: Sense,
    constraints: Vec<Constraint<S>>,
}

impl<S: Scalar> LpProblem<S> {
    /// New empty problem with the given optimization direction.
    pub fn new(sense: Sense) -> Self {
        LpProblem {
            var_names: Vec::new(),
            objective: LinExpr::new(),
            sense,
            constraints: Vec::new(),
        }
    }

    /// Adds a non-negative variable and returns its handle.
    pub fn add_var(&mut self, name: impl Into<String>) -> VarId {
        self.var_names.push(name.into());
        VarId(self.var_names.len() - 1)
    }

    /// Number of variables.
    pub fn n_vars(&self) -> usize {
        self.var_names.len()
    }

    /// Number of constraints.
    pub fn n_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Name of a variable.
    pub fn var_name(&self, v: VarId) -> &str {
        &self.var_names[v.0]
    }

    /// Sets the objective expression.
    pub fn set_objective(&mut self, expr: LinExpr<S>) {
        self.objective = expr;
    }

    /// Adds `coeff · var` to the objective.
    pub fn objective_term(&mut self, var: VarId, coeff: S) {
        self.objective.push(var, coeff);
    }

    /// The optimization direction.
    pub fn sense(&self) -> Sense {
        self.sense
    }

    /// The objective expression.
    pub fn objective(&self) -> &LinExpr<S> {
        &self.objective
    }

    /// The constraint list.
    pub fn constraints(&self) -> &[Constraint<S>] {
        &self.constraints
    }

    /// Adds a constraint `expr rel rhs`.
    pub fn add_constraint(&mut self, expr: LinExpr<S>, rel: Rel, rhs: S) {
        self.constraints.push(Constraint {
            expr,
            rel,
            rhs,
            label: None,
        });
    }

    /// Adds a labelled constraint (label shows up in pretty-printing).
    pub fn add_constraint_labelled(
        &mut self,
        label: impl Into<String>,
        expr: LinExpr<S>,
        rel: Rel,
        rhs: S,
    ) {
        self.constraints.push(Constraint {
            expr,
            rel,
            rhs,
            label: Some(label.into()),
        });
    }

    /// Upper bound `var ≤ ub` as a constraint row.
    pub fn bound_le(&mut self, var: VarId, ub: S) {
        self.add_constraint(LinExpr::term(var, S::one()), Rel::Le, ub);
    }

    /// Lower bound `var ≥ lb` as a constraint row.
    pub fn bound_ge(&mut self, var: VarId, lb: S) {
        self.add_constraint(LinExpr::term(var, S::one()), Rel::Ge, lb);
    }

    /// Evaluates an expression at a point (dense value vector).
    pub fn eval_expr(expr: &LinExpr<S>, values: &[S]) -> S {
        let mut acc = S::zero();
        for (v, c) in &expr.terms {
            acc = acc.add(&c.mul(&values[v.0]));
        }
        acc
    }

    /// Checks whether `values` satisfies every constraint within tolerance.
    /// Returns the label/index of the first violated constraint.
    pub fn check_feasible(&self, values: &[S]) -> Result<(), String> {
        if values.len() != self.n_vars() {
            return Err(format!(
                "value vector has length {}, expected {}",
                values.len(),
                self.n_vars()
            ));
        }
        for (i, v) in values.iter().enumerate() {
            if v.is_negative_tol() {
                return Err(format!(
                    "variable {} = {} is negative",
                    self.var_names[i], v
                ));
            }
        }
        for (i, c) in self.constraints.iter().enumerate() {
            let lhs = Self::eval_expr(&c.expr, values);
            let ok = match c.rel {
                Rel::Le => lhs.le_tol(&c.rhs),
                Rel::Ge => lhs.ge_tol(&c.rhs),
                Rel::Eq => lhs.sub(&c.rhs).is_negligible(),
            };
            if !ok {
                let label = c.label.clone().unwrap_or_else(|| format!("#{i}"));
                return Err(format!(
                    "constraint {label} violated: {lhs} {} {}",
                    c.rel, c.rhs
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_eval() {
        let mut lp: LpProblem<f64> = LpProblem::new(Sense::Maximize);
        let x = lp.add_var("x");
        let y = lp.add_var("y");
        lp.set_objective(LinExpr::from_iter([(x, 3.0), (y, 2.0)]));
        lp.add_constraint(LinExpr::from_iter([(x, 1.0), (y, 1.0)]), Rel::Le, 4.0);
        assert_eq!(lp.n_vars(), 2);
        assert_eq!(lp.n_constraints(), 1);
        assert_eq!(lp.var_name(x), "x");
        let vals = vec![1.0, 2.0];
        assert_eq!(LpProblem::eval_expr(lp.objective(), &vals), 7.0);
        assert!(lp.check_feasible(&vals).is_ok());
        assert!(lp.check_feasible(&[3.0, 2.0]).is_err());
        assert!(lp.check_feasible(&[-1.0, 0.0]).is_err());
    }

    #[test]
    fn dense_collapses_duplicates() {
        let mut e: LinExpr<f64> = LinExpr::new();
        let v = VarId(0);
        e.push(v, 1.5).push(v, 2.5);
        assert_eq!(e.to_dense(2), vec![4.0, 0.0]);
    }

    #[test]
    fn labelled_violation_message() {
        let mut lp: LpProblem<f64> = LpProblem::new(Sense::Minimize);
        let x = lp.add_var("x");
        lp.add_constraint_labelled("cap", LinExpr::term(x, 1.0), Rel::Le, 1.0);
        let err = lp.check_feasible(&[2.0]).unwrap_err();
        assert!(err.contains("cap"), "{err}");
    }
}
