//! # dlflow-lp — linear-programming substrate
//!
//! A self-contained simplex solver, generic over the
//! [`dlflow_num::Scalar`] field. The paper reduces every scheduling
//! question to a linear program (Systems (1), (2), (3) and (5)); no LP
//! crate is available in the offline dependency set, so this one is built
//! from scratch.
//!
//! The default [`solve`] is a **sparse-column revised simplex** (Dantzig
//! pricing, Bland anti-cycling fallback, warm-startable via
//! [`solve_warm`]); the seed's dense two-phase tableau survives as
//! [`solve_dense`] and serves as the reference oracle in property tests.
//!
//! Two instantiations matter:
//!
//! * **`LpProblem<Rat>`** — exact rational arithmetic with Bland's rule:
//!   terminates, never cycles, returns *the* optimum. Used by the
//!   Theorem 2 milestone search, where "optimal max weighted flow" is an
//!   exact rational number.
//! * **`LpProblem<f64>`** — fast approximate mode for large parameter
//!   sweeps in the benchmark harness.
//!
//! ## Example
//!
//! ```
//! use dlflow_lp::{LpProblem, LinExpr, Rel, Sense, solve, LpStatus};
//!
//! // max 3x + 5y  s.t.  x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18
//! let mut lp: LpProblem<f64> = LpProblem::new(Sense::Maximize);
//! let x = lp.add_var("x");
//! let y = lp.add_var("y");
//! lp.set_objective(LinExpr::from_iter([(x, 3.0), (y, 5.0)]));
//! lp.add_constraint(LinExpr::term(x, 1.0), Rel::Le, 4.0);
//! lp.add_constraint(LinExpr::term(y, 2.0), Rel::Le, 12.0);
//! lp.add_constraint(LinExpr::from_iter([(x, 3.0), (y, 2.0)]), Rel::Le, 18.0);
//! let sol = solve(&lp);
//! assert_eq!(sol.status, LpStatus::Optimal);
//! assert!((sol.objective.unwrap() - 36.0).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![allow(clippy::needless_range_loop)] // dense tableau code indexes several arrays in lockstep

pub mod problem;
pub mod revised;
pub mod simplex;
pub mod solution;

pub use problem::{Constraint, LinExpr, LpProblem, Rel, Sense, VarId};
pub use revised::{certifies, solve, solve_warm, ProbeCache, ProbeSolve, WarmBasis, WarmSolve};
pub use simplex::solve as solve_dense;
pub use solution::{LpSolution, LpStatus};
