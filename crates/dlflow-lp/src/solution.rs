//! Solver results.

use dlflow_num::Scalar;

/// Outcome category of an LP solve.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LpStatus {
    /// An optimal solution was found.
    Optimal,
    /// No feasible point exists.
    Infeasible,
    /// The objective is unbounded in the optimization direction.
    Unbounded,
}

/// Result of [`crate::solve`].
#[derive(Clone, Debug)]
pub struct LpSolution<S> {
    /// Outcome category.
    pub status: LpStatus,
    /// Optimal objective value (present iff `status == Optimal`).
    pub objective: Option<S>,
    /// Primal values, indexed by [`crate::VarId::index`]. All zeros unless
    /// `status == Optimal`.
    pub values: Vec<S>,
}

impl<S: Scalar> LpSolution<S> {
    pub(crate) fn optimal(objective: S, values: Vec<S>) -> Self {
        LpSolution {
            status: LpStatus::Optimal,
            objective: Some(objective),
            values,
        }
    }

    pub(crate) fn infeasible(n_vars: usize) -> Self {
        LpSolution {
            status: LpStatus::Infeasible,
            objective: None,
            values: vec![S::zero(); n_vars],
        }
    }

    pub(crate) fn unbounded(n_vars: usize) -> Self {
        LpSolution {
            status: LpStatus::Unbounded,
            objective: None,
            values: vec![S::zero(); n_vars],
        }
    }

    /// `true` iff an optimum was found.
    pub fn is_optimal(&self) -> bool {
        self.status == LpStatus::Optimal
    }

    /// Value of a variable; panics when the solve was not optimal.
    pub fn value(&self, var: crate::VarId) -> &S {
        assert!(
            self.is_optimal(),
            "LpSolution::value on non-optimal solution"
        );
        &self.values[var.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let s: LpSolution<f64> = LpSolution::optimal(3.0, vec![1.0, 2.0]);
        assert!(s.is_optimal());
        assert_eq!(*s.value(crate::VarId(1)), 2.0);
        let i: LpSolution<f64> = LpSolution::infeasible(2);
        assert!(!i.is_optimal());
        assert_eq!(i.values, vec![0.0, 0.0]);
    }
}
