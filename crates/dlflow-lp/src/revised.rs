//! Sparse-column revised simplex — the default solver.
//!
//! The paper's LPs (Systems (1), (2), (3), (5)) are extremely sparse:
//! every `α⁽ᵗ⁾ᵢⱼ` variable appears in at most three constraints. The seed
//! solver kept a dense `rows × cols` tableau and touched every cell on
//! every pivot; this module stores the tableau **column-wise** as sorted
//! `(row, value)` pairs and skips structural zeros in pivoting, pricing
//! and the ratio test.
//!
//! * **Pricing**: Dantzig (most negative reduced cost) by default — fast
//!   in practice but can cycle on degenerate bases. After
//!   `DEGENERACY_STREAK` consecutive pivots without objective progress
//!   the solver switches to **Bland's rule** until progress resumes,
//!   which restores the termination guarantee (exactness over `Rat` makes
//!   "no progress" detectable without tolerances).
//! * **Warm starts**: [`solve_warm`] accepts the optimal basis of a
//!   structurally identical LP (same variables, same constraint
//!   relations). The basis is re-realized by Gaussian pivoting — skipping
//!   phase 1 outright — and primal feasibility is reinstated by a bounded
//!   **dual simplex** repair (valid whenever the warm basis is dual
//!   feasible, which always holds for pure feasibility probes with a zero
//!   objective). On any mismatch or failure it falls back to a cold solve.
//!
//! The seed's dense two-phase solver survives as `solve_dense`
//! ([`crate::simplex::solve`]) and is the reference oracle in the
//! property tests.

use crate::problem::{LpProblem, Rel, Sense};
use crate::solution::LpSolution;
use dlflow_num::Scalar;

/// Hard cap on simplex pivots, as a defence against implementation bugs.
const MAX_PIVOTS_FACTOR: usize = 2000;

/// Consecutive degenerate (no-progress) pivots tolerated under Dantzig
/// pricing before switching to Bland's anti-cycling rule.
const DEGENERACY_STREAK: usize = 1;

/// A reusable snapshot of an optimal basis, for warm-starting the solve
/// of a *structurally identical* problem (same variable count, same
/// constraint relations in the same order) whose coefficients or
/// right-hand sides changed.
#[derive(Clone, Debug)]
pub struct WarmBasis {
    n_vars: usize,
    rels: Vec<Rel>,
    /// Basic column per row, in the structural+slack column space.
    basis: Vec<usize>,
}

impl WarmBasis {
    /// `true` when this basis can seed a solve of `p`.
    pub fn compatible_with<S: Scalar>(&self, p: &LpProblem<S>) -> bool {
        self.n_vars == p.n_vars()
            && self.rels.len() == p.n_constraints()
            && p.constraints()
                .iter()
                .zip(&self.rels)
                .all(|(c, r)| c.rel == *r)
    }

    /// Carries this basis across a *structural* change of the problem —
    /// columns added, dropped, or renumbered — producing a hint shaped
    /// for `target`. `var_map[old]` is the new index of old structural
    /// column `old` (`None` = column dropped). Slack assignments and
    /// dropped columns are discarded; [`solve_warm`] re-completes the
    /// missing rows with slacks and runs the usual bounded dual-simplex
    /// repair, falling back to a cold solve whenever the carried set
    /// cannot be re-realized. Added columns simply start non-basic.
    ///
    /// # Panics
    /// When `var_map` does not cover every old structural column.
    pub fn remap<S: Scalar>(&self, target: &LpProblem<S>, var_map: &[Option<usize>]) -> WarmBasis {
        assert_eq!(
            var_map.len(),
            self.n_vars,
            "var_map must cover every old structural column"
        );
        let n_vars = target.n_vars();
        let mut basis: Vec<usize> = self
            .basis
            .iter()
            .filter(|&&b| b < self.n_vars)
            .filter_map(|&b| var_map[b])
            .filter(|&b| b < n_vars)
            .collect();
        basis.sort_unstable();
        basis.dedup();
        WarmBasis {
            n_vars,
            rels: target.constraints().iter().map(|c| c.rel).collect(),
            basis,
        }
    }
}

/// Result of [`solve_warm`]: the solution, a basis snapshot for the next
/// warm start (present iff the solve ended optimal), and whether the
/// provided hint was actually used.
#[derive(Clone, Debug)]
pub struct WarmSolve<S> {
    /// The LP solution.
    pub solution: LpSolution<S>,
    /// Basis snapshot to seed the next structurally identical solve.
    pub basis: Option<WarmBasis>,
    /// `true` iff the hint was compatible and the warm path succeeded.
    pub warm_used: bool,
}

/// Solves the problem with the sparse revised simplex (cold start).
pub fn solve<S: Scalar>(problem: &LpProblem<S>) -> LpSolution<S> {
    solve_warm(problem, None).solution
}

/// Solves the problem, optionally warm-starting from a previous basis.
pub fn solve_warm<S: Scalar>(p: &LpProblem<S>, hint: Option<&WarmBasis>) -> WarmSolve<S> {
    if let Some(h) = hint {
        if h.compatible_with(p) {
            if let Some(out) = try_warm(p, h) {
                return out;
            }
        }
    }
    let (solution, basis) = Tab::build_cold(p).solve_cold(p);
    WarmSolve {
        solution,
        basis,
        warm_used: false,
    }
}

/// Verifies that an optimal-claiming solution actually satisfies `p`:
/// every variable non-negative and every constraint met, all within the
/// scalar tolerance.
///
/// A warm start re-realizes a hinted basis by Gaussian pivoting, and an
/// ill-conditioned realization can corrupt the tableau badly enough that
/// the terminal verdict is wrong (e.g. claiming a feasible point on an
/// infeasible problem). This check is the caller's cheap — `O(nnz)` —
/// primal certificate: a solution that passes is a genuine feasibility
/// witness regardless of the pivot path that produced it, so "optimal
/// and certified" can be trusted even from a repaired basis, while
/// anything else should be recomputed cold. Returns `false` for
/// non-optimal solutions.
pub fn certifies<S: Scalar>(p: &LpProblem<S>, sol: &LpSolution<S>) -> bool {
    if !sol.is_optimal() || sol.values.len() != p.n_vars() {
        return false;
    }
    if sol.values.iter().any(|v| v.is_negative_tol()) {
        return false;
    }
    p.constraints().iter().all(|c| {
        let mut lhs = S::zero();
        for (v, coeff) in &c.expr.terms {
            lhs = lhs.add(&coeff.mul(&sol.values[v.index()]));
        }
        match c.rel {
            Rel::Le => lhs.le_tol(&c.rhs),
            Rel::Ge => lhs.ge_tol(&c.rhs),
            Rel::Eq => lhs.sub(&c.rhs).is_negligible(),
        }
    })
}

/// Sparse column-major tableau.
struct Tab<S> {
    /// Per column: sorted `(row, value)` pairs, structural zeros omitted.
    cols: Vec<Vec<(u32, S)>>,
    /// Right-hand side (basic variable values).
    b: Vec<S>,
    /// Basic column of each row (`usize::MAX` while unassigned).
    basis: Vec<usize>,
    /// Number of structural (original) variables.
    n_struct: usize,
    /// Total columns (structural + slack [+ artificial]).
    n_total: usize,
    /// Column index where artificial variables start (== n_total when none).
    art_start: usize,
    /// Recycled merge buffer (see [`Tab::pivot`]).
    scratch: Vec<(u32, S)>,
}

impl<S: Scalar> Tab<S> {
    /// Shared column assembly: structural columns from the constraint
    /// expressions (duplicates summed, zeros dropped) and slack/surplus
    /// columns. `flip[i]` negates row `i` on the fly.
    fn structural_cols(p: &LpProblem<S>, flip: &[bool]) -> Vec<Vec<(u32, S)>> {
        let n = p.n_vars();
        let mut cols: Vec<Vec<(u32, S)>> = vec![Vec::new(); n];
        for (i, c) in p.constraints().iter().enumerate() {
            for (v, coeff) in &c.expr.terms {
                let val = if flip[i] { coeff.neg() } else { coeff.clone() };
                cols[v.index()].push((i as u32, val));
            }
        }
        for col in cols.iter_mut() {
            col.sort_by_key(|(r, _)| *r);
            // Sum duplicate rows, drop exact/negligible zeros.
            let mut out: Vec<(u32, S)> = Vec::with_capacity(col.len());
            for (r, v) in col.drain(..) {
                match out.last_mut() {
                    Some((lr, lv)) if *lr == r => *lv = lv.add(&v),
                    _ => out.push((r, v)),
                }
            }
            out.retain(|(_, v)| !v.is_negligible());
            *col = out;
        }
        cols
    }

    /// Standard form with artificials and `b ≥ 0` (cold start, phase 1).
    fn build_cold(p: &LpProblem<S>) -> Tab<S> {
        let m = p.n_constraints();
        let n = p.n_vars();
        let flip: Vec<bool> = p
            .constraints()
            .iter()
            .map(|c| c.rhs.is_negative_tol())
            .collect();
        let mut cols = Self::structural_cols(p, &flip);

        let mut b = Vec::with_capacity(m);
        let mut basis = vec![usize::MAX; m];
        let mut needs_art = Vec::with_capacity(m);
        // Slack/surplus columns, in constraint order.
        for (i, c) in p.constraints().iter().enumerate() {
            b.push(if flip[i] { c.rhs.neg() } else { c.rhs.clone() });
            let rel = match (c.rel, flip[i]) {
                (Rel::Le, true) => Rel::Ge,
                (Rel::Ge, true) => Rel::Le,
                (r, _) => r,
            };
            match rel {
                Rel::Le => {
                    basis[i] = cols.len();
                    cols.push(vec![(i as u32, S::one())]);
                    needs_art.push(false);
                }
                Rel::Ge => {
                    cols.push(vec![(i as u32, S::one().neg())]);
                    needs_art.push(true);
                }
                Rel::Eq => needs_art.push(true),
            }
        }
        let art_start = cols.len();
        for (i, &need) in needs_art.iter().enumerate() {
            if need {
                basis[i] = cols.len();
                cols.push(vec![(i as u32, S::one())]);
            }
        }
        let n_total = cols.len();
        debug_assert!(basis.iter().all(|&bv| bv != usize::MAX));
        Tab {
            cols,
            b,
            basis,
            n_struct: n,
            n_total,
            art_start,
            scratch: Vec::new(),
        }
    }

    /// Standard form without artificials and without sign normalization
    /// (warm start; negative `b` entries are repaired by dual simplex).
    fn build_warm(p: &LpProblem<S>) -> Tab<S> {
        let m = p.n_constraints();
        let n = p.n_vars();
        let flip = vec![false; m];
        let mut cols = Self::structural_cols(p, &flip);
        let mut b = Vec::with_capacity(m);
        for (i, c) in p.constraints().iter().enumerate() {
            b.push(c.rhs.clone());
            match c.rel {
                Rel::Le => cols.push(vec![(i as u32, S::one())]),
                Rel::Ge => cols.push(vec![(i as u32, S::one().neg())]),
                Rel::Eq => {}
            }
        }
        let n_total = cols.len();
        Tab {
            cols,
            b,
            basis: vec![usize::MAX; m],
            n_struct: n,
            n_total,
            art_start: n_total,
            scratch: Vec::new(),
        }
    }

    /// Value at `(row, col)`, `None` when structurally zero.
    #[inline]
    fn at(&self, row: usize, col: usize) -> Option<&S> {
        let c = &self.cols[col];
        c.binary_search_by_key(&(row as u32), |(r, _)| *r)
            .ok()
            .map(|k| &c[k].1)
    }

    /// The pivot row as sparse `(col, value)` pairs.
    fn extract_row(&self, row: usize) -> Vec<(usize, S)> {
        let mut out = Vec::new();
        for j in 0..self.n_total {
            if let Some(v) = self.at(row, j) {
                out.push((j, v.clone()));
            }
        }
        out
    }

    /// Pivots on `(row, col)`: `col` enters the basis, the basic variable
    /// of `row` leaves. `rc` is the maintained reduced-cost row and
    /// negated objective, updated sparsely when present. `raw_prow` lets a
    /// caller that already extracted the pivot row (dual ratio test) hand
    /// it over instead of paying the scan again.
    fn pivot(
        &mut self,
        row: usize,
        col: usize,
        rc: Option<(&mut [S], &mut S)>,
        raw_prow: Option<Vec<(usize, S)>>,
    ) {
        let pcol = self.cols[col].clone();
        // dlflint:allow(hot-path-panic, "ratio test only selects structurally nonzero pivots; a miss is a solver bug worth halting on")
        let piv = self.at(row, col).expect("pivot on structural zero").clone();
        debug_assert!(!piv.is_negligible());
        // Pivot row with the elimination factor `a_rj / piv` cached, so
        // the column update and the reduced-cost update share one division.
        let prow: Vec<(usize, S)> = raw_prow
            .unwrap_or_else(|| self.extract_row(row))
            .into_iter()
            .map(|(j, arj)| (j, arj.div(&piv)))
            .collect();

        let b_row_new = self.b[row].div(&piv);
        // RHS update, touching only the pivot column's nonzero rows.
        for (i, e) in &pcol {
            let i = *i as usize;
            if i == row {
                continue;
            }
            let v = self.b[i].sub(&b_row_new.mul(e));
            self.b[i] = if v.is_negligible() { S::zero() } else { v };
        }
        self.b[row] = b_row_new.clone();

        // Column updates, touching only columns with a nonzero pivot-row
        // entry (and in them only the pivot column's nonzero rows). The
        // merge moves entries out of the old column and recycles its
        // buffer as the next column's scratch — no steady-state allocation.
        let mut scratch = std::mem::take(&mut self.scratch);
        for (j, f) in &prow {
            if *j == col {
                continue;
            }
            let mut old = std::mem::replace(&mut self.cols[*j], scratch);
            let merged = &mut self.cols[*j];
            merged.clear();
            merged.reserve(old.len() + pcol.len());
            {
                let mut a = old.drain(..).peekable();
                let mut c = pcol.iter().peekable();
                loop {
                    match (a.peek(), c.peek()) {
                        (Some((ra, _)), Some((rc2, _))) if ra == rc2 => {
                            let (r, va) = a.next().unwrap(); // dlflint:allow(hot-path-panic, "peek returned Some on this branch")
                            let (_, ve) = c.next().unwrap(); // dlflint:allow(hot-path-panic, "peek returned Some on this branch")
                            if r as usize == row {
                                merged.push((r, f.clone()));
                            } else {
                                let v = va.sub(&f.mul(ve));
                                if !v.is_negligible() {
                                    merged.push((r, v));
                                }
                            }
                        }
                        (Some((ra, _)), Some((rc2, _))) if ra < rc2 => {
                            merged.push(a.next().unwrap()); // dlflint:allow(hot-path-panic, "peek returned Some on this branch")
                        }
                        (Some(_), Some(_)) | (None, Some(_)) => {
                            let (r, ve) = c.next().unwrap(); // dlflint:allow(hot-path-panic, "peek returned Some on this branch")
                            if *r as usize == row {
                                merged.push((*r, f.clone()));
                            } else {
                                let v = f.mul(ve).neg();
                                if !v.is_negligible() {
                                    merged.push((*r, v));
                                }
                            }
                        }
                        (Some(_), None) => {
                            merged.push(a.next().unwrap()); // dlflint:allow(hot-path-panic, "peek returned Some on this branch")
                        }
                        (None, None) => break,
                    }
                }
            }
            scratch = old;
        }
        self.scratch = scratch;
        // The entering column becomes a unit vector.
        self.cols[col] = vec![(row as u32, S::one())];

        if let Some((r, z)) = rc {
            let re = r[col].clone();
            if !re.is_negligible() {
                for (j, f) in &prow {
                    if *j == col {
                        continue;
                    }
                    let v = r[*j].sub(&re.mul(f));
                    r[*j] = if v.is_negligible() { S::zero() } else { v };
                }
                *z = z.sub(&re.mul(&self.b[row]));
                r[col] = S::zero();
            }
        }
        self.basis[row] = col;
    }

    /// Reduced costs `r_j = c_j − c_B · B⁻¹A_j` and the negated objective
    /// value, computed sparsely per column.
    fn reduced_costs(&self, cost: &[S]) -> (Vec<S>, S) {
        let cb: Vec<S> = self.basis.iter().map(|&bv| cost[bv].clone()).collect();
        let mut r = cost.to_vec();
        for j in 0..self.n_total {
            let mut acc = S::zero();
            for (i, v) in &self.cols[j] {
                let c = &cb[*i as usize];
                if !c.is_negligible() {
                    acc = acc.add(&c.mul(v));
                }
            }
            if !acc.is_negligible() {
                r[j] = r[j].sub(&acc);
            }
        }
        let mut z = S::zero();
        for (i, c) in cb.iter().enumerate() {
            if !c.is_negligible() {
                z = z.sub(&c.mul(&self.b[i]));
            }
        }
        (r, z)
    }

    /// Primal simplex until optimal (`true`) or unbounded (`false`).
    /// Dantzig pricing with a Bland fallback after a degeneracy streak.
    fn run_primal(&mut self, r: &mut [S], z: &mut S) -> bool {
        let m = self.b.len();
        let max_pivots = MAX_PIVOTS_FACTOR * (m + self.n_total + 1);
        let mut streak = 0usize;
        for _ in 0..max_pivots {
            let bland = streak >= DEGENERACY_STREAK;
            let enter = if bland {
                (0..self.n_total).find(|&j| r[j].is_negative_tol())
            } else {
                let mut best: Option<usize> = None;
                for j in 0..self.n_total {
                    if r[j].is_negative_tol()
                        && best.is_none_or(|bj| r[j].cmp_total(&r[bj]) == std::cmp::Ordering::Less)
                    {
                        best = Some(j);
                    }
                }
                best
            };
            let Some(enter) = enter else {
                return true; // optimal
            };
            // Ratio test over the entering column's nonzeros only;
            // smallest-basis-index tie-break (required in Bland mode).
            let mut best: Option<(S, usize)> = None;
            for (i, v) in &self.cols[enter] {
                let i = *i as usize;
                if v.is_positive_tol() {
                    let ratio = self.b[i].div(v);
                    let better = match &best {
                        None => true,
                        Some((cur, l)) => {
                            ratio.lt_tol(cur)
                                || (!ratio.gt_tol(cur) && self.basis[i] < self.basis[*l])
                        }
                    };
                    if better {
                        best = Some((ratio, i));
                    }
                }
            }
            let Some((_, leave)) = best else {
                return false; // unbounded
            };
            // enter was selected with r[enter] strictly negative, so the
            // pivot is degenerate iff the leaving basic variable sits at 0.
            let degenerate = !self.b[leave].is_positive_tol();
            self.pivot(leave, enter, Some((r, z)), None);
            streak = if degenerate { streak + 1 } else { 0 };
        }
        // dlflint:allow(hot-path-panic, "pivot-cap backstop: Bland's rule cannot cycle, so this is unreachable outside a solver bug")
        panic!("sparse simplex exceeded pivot cap — this indicates a bug");
    }

    /// Dual simplex repair: assumes `r ≥ 0` (dual feasible) and drives
    /// `b ≥ 0`. Returns `Some(true)` when primal feasibility was reached,
    /// `Some(false)` on a primal-infeasibility certificate, `None` when
    /// the pivot budget ran out (caller should fall back to a cold solve).
    fn run_dual(&mut self, r: &mut [S], z: &mut S) -> Option<bool> {
        let m = self.b.len();
        let max_pivots = MAX_PIVOTS_FACTOR * (m + self.n_total + 1);
        for _ in 0..max_pivots {
            // Leaving row: most negative b, tie-break smallest basis index.
            let mut leave: Option<usize> = None;
            for i in 0..m {
                if !self.b[i].is_negative_tol() {
                    continue;
                }
                let better = match leave {
                    None => true,
                    Some(l) => match self.b[i].cmp_total(&self.b[l]) {
                        std::cmp::Ordering::Less => true,
                        std::cmp::Ordering::Equal => self.basis[i] < self.basis[l],
                        std::cmp::Ordering::Greater => false,
                    },
                };
                if better {
                    leave = Some(i);
                }
            }
            let Some(leave) = leave else {
                return Some(true); // primal feasible
            };
            // Entering column: dual ratio test over the leaving row's
            // negative entries; smallest-index tie-break.
            let prow = self.extract_row(leave);
            let mut best: Option<(S, usize)> = None;
            for (j, arj) in &prow {
                if *j == self.basis[leave] || !arj.is_negative_tol() {
                    continue;
                }
                let ratio = r[*j].div(&arj.neg());
                let better = match &best {
                    None => true,
                    Some((cur, e)) => ratio.lt_tol(cur) || (!ratio.gt_tol(cur) && *j < *e),
                };
                if better {
                    best = Some((ratio, *j));
                }
            }
            let Some((_, enter)) = best else {
                return Some(false); // row ≥ 0 with b < 0: infeasible
            };
            self.pivot(leave, enter, Some((r, z)), Some(prow));
        }
        None
    }

    /// Removes row `row` (swap-remove semantics across `b`, `basis` and
    /// every column's row indices).
    fn remove_row(&mut self, row: usize) {
        let last = self.b.len() - 1;
        for col in self.cols.iter_mut() {
            col.retain(|(r, _)| *r as usize != row);
            if row != last {
                for (r, _) in col.iter_mut() {
                    if *r as usize == last {
                        *r = row as u32;
                    }
                }
                col.sort_by_key(|(r, _)| *r);
            }
        }
        self.b.swap_remove(row);
        self.basis.swap_remove(row);
    }

    /// After phase 1: pivot zero-level artificials out of the basis, drop
    /// rows that prove redundant, and delete artificial columns.
    fn purge_artificials(&mut self) {
        let mut row = 0;
        while row < self.b.len() {
            if self.basis[row] >= self.art_start {
                let col = (0..self.art_start)
                    .find(|&j| self.at(row, j).is_some_and(|v| !v.is_negligible()));
                match col {
                    Some(col) => {
                        // Degenerate pivot (b[row] == 0): keeps b ≥ 0.
                        self.pivot(row, col, None, None);
                        row += 1;
                    }
                    None => self.remove_row(row),
                }
            } else {
                row += 1;
            }
        }
        self.cols.truncate(self.art_start);
        self.n_total = self.art_start;
    }

    /// Phase-2 cost vector in the minimization convention.
    fn phase2_cost(&self, p: &LpProblem<S>) -> (Vec<S>, bool) {
        let mut cost = vec![S::zero(); self.n_total];
        let negate = p.sense() == Sense::Maximize;
        for (v, c) in &p.objective().terms {
            let cur = cost[v.index()].clone();
            cost[v.index()] = if negate { cur.sub(c) } else { cur.add(c) };
        }
        (cost, negate)
    }

    /// Extracts the solution after an optimal phase 2.
    fn extract(&self, p: &LpProblem<S>, z: S, negate: bool) -> LpSolution<S> {
        let mut values = vec![S::zero(); p.n_vars()];
        for (i, &bv) in self.basis.iter().enumerate() {
            if bv < self.n_struct {
                values[bv] = self.b[i].clone();
            }
        }
        let min_val = z.neg();
        let objective = if negate { min_val.neg() } else { min_val };
        LpSolution::optimal(objective, values)
    }

    fn snapshot_basis(&self, p: &LpProblem<S>) -> WarmBasis {
        WarmBasis {
            n_vars: p.n_vars(),
            rels: p.constraints().iter().map(|c| c.rel).collect(),
            basis: self.basis.clone(),
        }
    }

    /// Two-phase cold solve.
    fn solve_cold(mut self, p: &LpProblem<S>) -> (LpSolution<S>, Option<WarmBasis>) {
        if self.art_start < self.n_total {
            let mut cost = vec![S::zero(); self.n_total];
            for c in cost.iter_mut().skip(self.art_start) {
                *c = S::one();
            }
            let (mut r, mut z) = self.reduced_costs(&cost);
            if !self.run_primal(&mut r, &mut z) {
                unreachable!("phase-1 simplex reported unbounded");
            }
            if z.neg().is_positive_tol() {
                return (LpSolution::infeasible(p.n_vars()), None);
            }
            self.purge_artificials();
        }
        let (cost, negate) = self.phase2_cost(p);
        let (mut r, mut z) = self.reduced_costs(&cost);
        if !self.run_primal(&mut r, &mut z) {
            return (LpSolution::unbounded(p.n_vars()), None);
        }
        let basis = self.snapshot_basis(p);
        (self.extract(p, z, negate), Some(basis))
    }
}

/// A completed warm-path run: the terminal tableau alongside the
/// solution, so callers that keep solving the same matrix can retain the
/// realized factorization ([`ProbeCache`]) instead of re-pivoting it
/// from scratch on the next call.
struct WarmRun<S> {
    tab: Tab<S>,
    solution: LpSolution<S>,
    /// For an infeasible verdict: how decisively the terminal tableau
    /// refutes feasibility (the absolute value of the most negative
    /// basic value). `None` otherwise.
    margin: Option<S>,
}

/// Attempts the warm-start path; `None` means "fall back to cold".
fn try_warm<S: Scalar>(p: &LpProblem<S>, hint: &WarmBasis) -> Option<WarmSolve<S>> {
    let run = run_warm(p, hint)?;
    let basis = run.solution.is_optimal().then(|| run.tab.snapshot_basis(p));
    Some(WarmSolve {
        solution: run.solution,
        basis,
        warm_used: true,
    })
}

/// The warm-start engine behind [`try_warm`] and [`ProbeCache`]:
/// re-realizes the hinted basis and repairs it to a verdict, returning
/// the terminal tableau. `None` means the basis could not be realized or
/// the pivot budget ran out — fall back to a cold solve.
fn run_warm<S: Scalar>(p: &LpProblem<S>, hint: &WarmBasis) -> Option<WarmRun<S>> {
    let mut tab = Tab::build_warm(p);
    let m = tab.b.len();

    // Re-realize the hinted basis by Gaussian pivoting: for each hinted
    // column pick the not-yet-assigned row with the largest pivot.
    let mut assigned = vec![false; m];
    for &c in &hint.basis {
        if c >= tab.n_total || tab.basis.contains(&c) {
            continue;
        }
        let mut pick: Option<(usize, S)> = None;
        for (i, v) in &tab.cols[c] {
            let i = *i as usize;
            if assigned[i] || v.is_negligible() {
                continue;
            }
            let mag = v.abs();
            if pick.as_ref().is_none_or(|(_, pm)| mag.gt_tol(pm)) {
                pick = Some((i, mag));
            }
        }
        if let Some((row, _)) = pick {
            tab.pivot(row, c, None, None);
            assigned[row] = true;
        }
    }
    // Cover leftover rows (hint shorter than m, or singular realization)
    // with any usable non-basic column, preferring the row's own slack.
    for row in 0..m {
        if assigned[row] {
            continue;
        }
        let cand = (tab.n_struct..tab.n_total)
            .chain(0..tab.n_struct)
            .find(|&j| {
                !tab.basis.contains(&j) && tab.at(row, j).is_some_and(|v| !v.is_negligible())
            });
        let Some(col) = cand else {
            return None; // cannot complete a basis — cold solve
        };
        tab.pivot(row, col, None, None);
        assigned[row] = true;
    }

    let (cost, negate) = tab.phase2_cost(p);
    let (mut r, mut z) = tab.reduced_costs(&cost);
    let dual_feasible = r.iter().all(|v| !v.is_negative_tol());
    let primal_feasible = tab.b.iter().all(|v| !v.is_negative_tol());
    if dual_feasible {
        match tab.run_dual(&mut r, &mut z) {
            Some(true) => {}
            Some(false) => {
                let margin = infeasibility_margin(&tab);
                return Some(WarmRun {
                    tab,
                    solution: LpSolution::infeasible(p.n_vars()),
                    margin: Some(margin),
                });
            }
            None => return None, // budget exhausted — cold solve
        }
    } else if !primal_feasible {
        return None; // neither primal nor dual feasible — cold solve
    }
    if !tab.run_primal(&mut r, &mut z) {
        return Some(WarmRun {
            tab,
            solution: LpSolution::unbounded(p.n_vars()),
            margin: None,
        });
    }
    let solution = tab.extract(p, z, negate);
    Some(WarmRun {
        tab,
        solution,
        margin: None,
    })
}

/// How decisively a dual-terminal tableau refutes feasibility: the
/// absolute value of its most negative basic value. A verdict backed by
/// a large margin cannot be an artefact of accumulated pivot roundoff;
/// one backed by a sliver should be recomputed from scratch.
fn infeasibility_margin<S: Scalar>(tab: &Tab<S>) -> S {
    let mut worst = S::zero();
    for v in &tab.b {
        if v.is_negative_tol() {
            let mag = v.abs();
            if mag.gt_tol(&worst) {
                worst = mag;
            }
        }
    }
    worst
}

/// Persistent solving context for a *run of zero-objective feasibility
/// probes on one constraint matrix* — the shape the Theorem-2 bisection
/// produces: within a bracket segment, consecutive probe LPs
/// (`build_deadline_probe_lp`-style) share every coefficient and
/// differ only in their right-hand sides (the interval lengths tracking
/// the bisected objective).
///
/// A plain [`solve_warm`] re-realizes the hinted basis by Gaussian
/// pivoting on every call — `O(m)` pivots that dominate the solve at
/// production sub-problem sizes. This cache instead *retains the
/// realized tableau* between calls. When the next probe's matrix is
/// bit-identical (checked in `O(nnz)`), the update is a pure RHS patch:
///
/// ```text
/// B⁻¹b_new = B⁻¹b_old + Σᵢ Δᵢ · B⁻¹eᵢ
/// ```
///
/// where every `B⁻¹eᵢ` is already present in the tableau as row `i`'s
/// slack column. Dual feasibility is untouched by an RHS change (and is
/// trivial anyway for a zero-objective probe), so a bounded dual-simplex
/// repair — typically zero or a handful of pivots — reaches the new
/// verdict. On any mismatch (matrix changed, an equality row's RHS
/// moved, pivot budget exhausted) the cache falls back to the
/// re-realization path, seeded from its own latest basis or the caller's
/// hint, and `None` from [`ProbeCache::solve`] means "no warm route at
/// all — solve cold".
///
/// The cache is a pivot-order accelerator, not an oracle: callers that
/// need verdicts they can *trust* should certify optimal outcomes with
/// [`certifies`] and gate infeasible ones on
/// [`ProbeSolve::infeasible_margin`].
pub struct ProbeCache<S> {
    /// Realized tableau of the last retained solve (rows correspond 1:1
    /// to `matrix`'s constraints — the warm builder never drops rows).
    tab: Option<Tab<S>>,
    /// The problem the tableau was realized on. Its RHS is *stale*:
    /// `rhs` below tracks the values the tableau currently reflects.
    matrix: Option<LpProblem<S>>,
    /// RHS the tableau currently reflects, in row order.
    rhs: Vec<S>,
    /// Per row: its slack column and sign (`true` = slack `+eᵢ`,
    /// `false` = surplus `−eᵢ`); `None` for equality rows.
    slack: Vec<Option<(usize, bool)>>,
}

impl<S> std::fmt::Debug for ProbeCache<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProbeCache")
            .field("retained", &self.tab.is_some())
            .field("rows", &self.rhs.len())
            .finish()
    }
}

impl<S> Default for ProbeCache<S> {
    fn default() -> Self {
        ProbeCache {
            tab: None,
            matrix: None,
            rhs: Vec::new(),
            slack: Vec::new(),
        }
    }
}

/// Result of a [`ProbeCache::solve`] call that was served warm.
#[derive(Clone, Debug)]
pub struct ProbeSolve<S> {
    /// The LP solution.
    pub solution: LpSolution<S>,
    /// `true` when served by the retained-factorization RHS-patch fast
    /// path; `false` when the basis had to be re-realized.
    pub persistent: bool,
    /// For an infeasible verdict: the absolute value of the most
    /// negative basic value at termination — how decisively the tableau
    /// refutes feasibility. Callers should treat a verdict with a tiny
    /// margin as noise and recompute it from scratch.
    pub infeasible_margin: Option<S>,
}

impl<S: Scalar> ProbeCache<S> {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drops all retained state.
    pub fn clear(&mut self) {
        self.tab = None;
        self.matrix = None;
        self.rhs.clear();
        self.slack.clear();
    }

    /// Snapshot of the retained basis, for carrying across a structural
    /// change (via [`WarmBasis::remap`]) or into a fresh cache.
    pub fn basis(&self) -> Option<WarmBasis> {
        match (&self.tab, &self.matrix) {
            (Some(tab), Some(p)) => Some(tab.snapshot_basis(p)),
            _ => None,
        }
    }

    /// Solves `p` warm: by RHS patch when the retained matrix is
    /// bit-identical, otherwise by re-realizing the freshest available
    /// basis (the cache's own, else `hint`). Returns `None` when no warm
    /// route exists — the caller should solve cold (and may seed the
    /// cache again later via `hint`).
    pub fn solve(&mut self, p: &LpProblem<S>, hint: Option<&WarmBasis>) -> Option<ProbeSolve<S>> {
        if let Some(out) = self.try_persistent(p) {
            return Some(out);
        }
        let own = self.basis().filter(|b| b.compatible_with(p));
        let run = own
            .as_ref()
            .or_else(|| hint.filter(|h| h.compatible_with(p)))
            .and_then(|h| run_warm(p, h));
        let Some(run) = run else {
            // Neither path worked; drop the stale tableau so the next
            // call goes straight to the caller's hint.
            self.clear();
            return None;
        };
        let out = ProbeSolve {
            solution: run.solution.clone(),
            persistent: false,
            infeasible_margin: run.margin,
        };
        if run.solution.is_optimal() || run.solution.status == crate::solution::LpStatus::Infeasible
        {
            self.retain(run.tab, p);
        } else {
            self.clear();
        }
        Some(out)
    }

    /// The RHS-patch fast path; `None` when the retained matrix does not
    /// apply (caller falls through to re-realization).
    fn try_persistent(&mut self, p: &LpProblem<S>) -> Option<ProbeSolve<S>> {
        if !self
            .matrix
            .as_ref()
            .is_some_and(|retained| same_matrix(retained, p))
        {
            return None;
        }
        // Validate before touching the tableau: an equality row whose
        // RHS moved has no slack column to patch through.
        for (i, c) in p.constraints().iter().enumerate() {
            if self.slack[i].is_none() && c.rhs.cmp_total(&self.rhs[i]) != std::cmp::Ordering::Equal
            {
                return None;
            }
        }
        let tab = self.tab.as_mut()?;
        for (i, c) in p.constraints().iter().enumerate() {
            if c.rhs.cmp_total(&self.rhs[i]) == std::cmp::Ordering::Equal {
                continue;
            }
            let (col, positive) = self.slack[i].expect("validated above"); // dlflint:allow(hot-path-panic, "rows with a changed RHS were checked to carry a slack column in the loop above")
            let delta = c.rhs.sub(&self.rhs[i]);
            let delta = if positive { delta } else { delta.neg() };
            for (r, v) in &tab.cols[col] {
                let r = *r as usize;
                tab.b[r] = tab.b[r].add(&delta.mul(v));
            }
            self.rhs[i] = c.rhs.clone();
        }
        // Zero objective ⇒ reduced costs are identically zero ⇒ the
        // basis stays dual feasible through any RHS change; the dual
        // simplex (smallest-index tie-breaks = Bland, so it terminates)
        // drives the patched b back to feasibility or refutes it.
        let mut r = vec![S::zero(); tab.n_total];
        let mut z = S::zero();
        match tab.run_dual(&mut r, &mut z) {
            Some(true) => Some(ProbeSolve {
                solution: tab.extract(p, S::zero(), false),
                persistent: true,
                infeasible_margin: None,
            }),
            Some(false) => Some(ProbeSolve {
                solution: LpSolution::infeasible(p.n_vars()),
                persistent: true,
                infeasible_margin: Some(infeasibility_margin(tab)),
            }),
            None => {
                // Pivot budget exhausted: the tableau may be mid-repair;
                // drop it and let the caller's path rebuild.
                self.clear();
                None
            }
        }
    }

    /// Retains a terminal tableau for `p` (matrix clone, RHS snapshot,
    /// row → slack-column map).
    fn retain(&mut self, tab: Tab<S>, p: &LpProblem<S>) {
        self.rhs.clear();
        self.rhs
            .extend(p.constraints().iter().map(|c| c.rhs.clone()));
        self.slack.clear();
        let mut next = p.n_vars();
        for c in p.constraints() {
            self.slack.push(match c.rel {
                Rel::Le => {
                    let s = Some((next, true));
                    next += 1;
                    s
                }
                Rel::Ge => {
                    let s = Some((next, false));
                    next += 1;
                    s
                }
                Rel::Eq => None,
            });
        }
        self.matrix = Some(p.clone());
        self.tab = Some(tab);
    }
}

/// `true` when the two problems share every coefficient — variable
/// count, sense, constraint relations and expressions — and both have a
/// zero objective, i.e. they may differ *only* in constraint RHS values.
fn same_matrix<S: Scalar>(a: &LpProblem<S>, b: &LpProblem<S>) -> bool {
    use std::cmp::Ordering;
    a.n_vars() == b.n_vars()
        && a.sense() == b.sense()
        && a.objective().terms.is_empty()
        && b.objective().terms.is_empty()
        && a.n_constraints() == b.n_constraints()
        && a.constraints().iter().zip(b.constraints()).all(|(ca, cb)| {
            ca.rel == cb.rel
                && ca.expr.terms.len() == cb.expr.terms.len()
                && ca
                    .expr
                    .terms
                    .iter()
                    .zip(&cb.expr.terms)
                    .all(|((va, xa), (vb, xb))| va == vb && xa.cmp_total(xb) == Ordering::Equal)
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::LinExpr;
    use crate::solution::LpStatus;
    use dlflow_num::Rat;

    #[test]
    fn textbook_max() {
        // max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 → opt 36 at (2, 6).
        let mut lp: LpProblem<f64> = LpProblem::new(Sense::Maximize);
        let x = lp.add_var("x");
        let y = lp.add_var("y");
        lp.set_objective(LinExpr::from_iter([(x, 3.0), (y, 5.0)]));
        lp.add_constraint(LinExpr::term(x, 1.0), Rel::Le, 4.0);
        lp.add_constraint(LinExpr::term(y, 2.0), Rel::Le, 12.0);
        lp.add_constraint(LinExpr::from_iter([(x, 3.0), (y, 2.0)]), Rel::Le, 18.0);
        let sol = solve(&lp);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.objective.unwrap() - 36.0).abs() < 1e-9);
        assert!((sol.values[0] - 2.0).abs() < 1e-9);
        assert!((sol.values[1] - 6.0).abs() < 1e-9);
    }

    #[test]
    fn infeasible_and_unbounded() {
        let mut lp: LpProblem<f64> = LpProblem::new(Sense::Minimize);
        let x = lp.add_var("x");
        lp.set_objective(LinExpr::term(x, 1.0));
        lp.add_constraint(LinExpr::term(x, 1.0), Rel::Le, 1.0);
        lp.add_constraint(LinExpr::term(x, 1.0), Rel::Ge, 2.0);
        assert_eq!(solve(&lp).status, LpStatus::Infeasible);

        let mut lp: LpProblem<f64> = LpProblem::new(Sense::Maximize);
        let x = lp.add_var("x");
        lp.set_objective(LinExpr::term(x, 1.0));
        lp.add_constraint(LinExpr::term(x, 1.0), Rel::Ge, 1.0);
        assert_eq!(solve(&lp).status, LpStatus::Unbounded);
    }

    #[test]
    fn exact_rational_solution() {
        // max x + y s.t. 3x + y ≤ 1, x + 3y ≤ 1 → x = y = 1/4, opt 1/2.
        let mut lp: LpProblem<Rat> = LpProblem::new(Sense::Maximize);
        let x = lp.add_var("x");
        let y = lp.add_var("y");
        lp.set_objective(LinExpr::from_iter([(x, Rat::one()), (y, Rat::one())]));
        lp.add_constraint(
            LinExpr::from_iter([(x, Rat::from_i64(3)), (y, Rat::one())]),
            Rel::Le,
            Rat::one(),
        );
        lp.add_constraint(
            LinExpr::from_iter([(x, Rat::one()), (y, Rat::from_i64(3))]),
            Rel::Le,
            Rat::one(),
        );
        let sol = solve(&lp);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_eq!(sol.objective.unwrap(), Rat::from_ratio(1, 2));
        assert_eq!(sol.values[0], Rat::from_ratio(1, 4));
        assert_eq!(sol.values[1], Rat::from_ratio(1, 4));
    }

    #[test]
    fn beale_cycling_instance_terminates() {
        // Beale's cycling example: Dantzig pricing alone cycles; the
        // degeneracy-streak fallback to Bland must terminate it.
        let mut lp: LpProblem<f64> = LpProblem::new(Sense::Minimize);
        let x4 = lp.add_var("x4");
        let x5 = lp.add_var("x5");
        let x6 = lp.add_var("x6");
        let x7 = lp.add_var("x7");
        lp.set_objective(LinExpr::from_iter([
            (x4, -0.75),
            (x5, 150.0),
            (x6, -0.02),
            (x7, 6.0),
        ]));
        lp.add_constraint(
            LinExpr::from_iter([(x4, 0.25), (x5, -60.0), (x6, -0.04), (x7, 9.0)]),
            Rel::Le,
            0.0,
        );
        lp.add_constraint(
            LinExpr::from_iter([(x4, 0.5), (x5, -90.0), (x6, -0.02), (x7, 3.0)]),
            Rel::Le,
            0.0,
        );
        lp.add_constraint(LinExpr::term(x6, 1.0), Rel::Le, 1.0);
        let sol = solve(&lp);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.objective.unwrap() - (-0.05)).abs() < 1e-9);
    }

    #[test]
    fn degenerate_equality_with_redundant_row() {
        let mut lp: LpProblem<f64> = LpProblem::new(Sense::Minimize);
        let x = lp.add_var("x");
        let y = lp.add_var("y");
        lp.set_objective(LinExpr::from_iter([(x, 1.0), (y, 1.0)]));
        lp.add_constraint(LinExpr::from_iter([(x, 1.0), (y, 1.0)]), Rel::Eq, 2.0);
        lp.add_constraint(LinExpr::from_iter([(x, 2.0), (y, 2.0)]), Rel::Eq, 4.0);
        let sol = solve(&lp);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.objective.unwrap() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn warm_start_rhs_change_reuses_basis() {
        // Feasibility-style LP (zero objective); tighten the RHS and
        // re-solve warm: the dual repair must succeed.
        fn probe(rhs: f64) -> LpProblem<f64> {
            let mut lp: LpProblem<f64> = LpProblem::new(Sense::Minimize);
            let x = lp.add_var("x");
            let y = lp.add_var("y");
            lp.add_constraint(LinExpr::from_iter([(x, 1.0), (y, 1.0)]), Rel::Eq, 2.0);
            lp.add_constraint(LinExpr::from_iter([(x, 2.0), (y, 1.0)]), Rel::Le, rhs);
            lp.add_constraint(LinExpr::term(y, 1.0), Rel::Le, rhs);
            lp
        }
        let first = solve_warm(&probe(4.0), None);
        assert_eq!(first.solution.status, LpStatus::Optimal);
        assert!(!first.warm_used);
        let basis = first.basis.expect("optimal solve must yield a basis");
        let second = solve_warm(&probe(2.0), Some(&basis));
        assert!(
            second.warm_used,
            "structurally identical LP must warm-start"
        );
        assert_eq!(second.solution.status, LpStatus::Optimal);
        // And an infeasible tightening is detected on the warm path too.
        let third = solve_warm(&probe(1.5), Some(&basis));
        assert!(third.warm_used);
        assert_eq!(third.solution.status, LpStatus::Infeasible);
    }

    #[test]
    fn warm_start_incompatible_hint_falls_back() {
        let mut a: LpProblem<f64> = LpProblem::new(Sense::Minimize);
        let x = a.add_var("x");
        a.add_constraint(LinExpr::term(x, 1.0), Rel::Eq, 5.0);
        let wa = solve_warm(&a, None);
        let mut b: LpProblem<f64> = LpProblem::new(Sense::Minimize);
        let x = b.add_var("x");
        let y = b.add_var("y");
        b.set_objective(LinExpr::term(y, 1.0));
        b.add_constraint(LinExpr::from_iter([(x, 1.0), (y, 1.0)]), Rel::Ge, 3.0);
        let wb = solve_warm(&b, wa.basis.as_ref());
        assert!(!wb.warm_used);
        assert_eq!(wb.solution.status, LpStatus::Optimal);
    }

    #[test]
    fn remap_carries_basis_across_column_add_and_drop() {
        // A feasibility-style LP over a variable set that churns the way
        // OLA's active set does: solve over {x, y}, then remap the basis
        // onto {y, z} (x dropped, z appended, y renumbered 1 → 0).
        fn share_lp(vars: usize, budget: f64) -> LpProblem<f64> {
            let mut lp: LpProblem<f64> = LpProblem::new(Sense::Minimize);
            let ids: Vec<_> = (0..vars).map(|k| lp.add_var(format!("v{k}"))).collect();
            lp.add_constraint(
                LinExpr::from_iter(ids.iter().map(|&v| (v, 1.0))),
                Rel::Eq,
                1.0,
            );
            lp.add_constraint(
                LinExpr::from_iter(ids.iter().enumerate().map(|(k, &v)| (v, 1.0 + k as f64))),
                Rel::Le,
                budget,
            );
            lp
        }
        let first = solve_warm(&share_lp(2, 4.0), None);
        assert_eq!(first.solution.status, LpStatus::Optimal);
        let basis = first.basis.expect("optimal solve must yield a basis");

        let next = share_lp(2, 3.0);
        let hint = basis.remap(&next, &[None, Some(0)]);
        let out = solve_warm(&next, Some(&hint));
        assert!(out.warm_used, "remapped basis must stay usable");
        assert_eq!(out.solution.status, LpStatus::Optimal);

        // Growing the problem (column append) keeps the carried columns.
        let grown = share_lp(3, 3.0);
        let hint = basis.remap(&grown, &[Some(0), Some(1)]);
        let out = solve_warm(&grown, Some(&hint));
        assert!(out.warm_used);
        assert_eq!(out.solution.status, LpStatus::Optimal);
    }

    #[test]
    fn remap_to_degenerate_target_still_solves() {
        // Dropping every carried column leaves an all-slack hint; the
        // warm path must still complete it (or fall back) and agree with
        // the cold verdict.
        let mut a: LpProblem<f64> = LpProblem::new(Sense::Minimize);
        let x = a.add_var("x");
        a.add_constraint(LinExpr::term(x, 1.0), Rel::Eq, 5.0);
        let wa = solve_warm(&a, None);
        let basis = wa.basis.expect("optimal solve must yield a basis");

        let mut b: LpProblem<f64> = LpProblem::new(Sense::Minimize);
        let y = b.add_var("y");
        b.add_constraint(LinExpr::term(y, 1.0), Rel::Eq, 2.0);
        let hint = basis.remap(&b, &[None]);
        let out = solve_warm(&b, Some(&hint));
        assert_eq!(out.solution.status, LpStatus::Optimal);
        assert!((out.solution.values[0] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn warm_exact_rational_probe_chain() {
        // A Rat chain mimicking the Theorem-2 binary search: same shape,
        // shrinking deadline-like RHS.
        fn probe(rhs: i64) -> LpProblem<Rat> {
            let mut lp: LpProblem<Rat> = LpProblem::new(Sense::Minimize);
            let a = lp.add_var("a");
            let b = lp.add_var("b");
            lp.add_constraint(
                LinExpr::from_iter([(a, Rat::one()), (b, Rat::one())]),
                Rel::Eq,
                Rat::one(),
            );
            lp.add_constraint(
                LinExpr::from_iter([(a, Rat::from_i64(4)), (b, Rat::from_i64(2))]),
                Rel::Le,
                Rat::from_i64(rhs),
            );
            lp
        }
        let mut basis = None;
        for rhs in [8, 5, 3, 2] {
            let out = solve_warm(&probe(rhs), basis.as_ref());
            assert_eq!(out.solution.status, LpStatus::Optimal, "rhs={rhs}");
            assert_eq!(out.warm_used, basis.is_some());
            basis = out.basis;
        }
        let out = solve_warm(&probe(1), basis.as_ref());
        assert!(out.warm_used);
        assert_eq!(out.solution.status, LpStatus::Infeasible);
    }

    /// Zero-objective probe with tunable inequality RHS, the
    /// [`ProbeCache`] target shape: `x + y = 2`, `2x + y ≤ r`, `y ≤ r`.
    fn cache_probe(rhs: f64) -> LpProblem<f64> {
        let mut lp: LpProblem<f64> = LpProblem::new(Sense::Minimize);
        let x = lp.add_var("x");
        let y = lp.add_var("y");
        lp.add_constraint(LinExpr::from_iter([(x, 1.0), (y, 1.0)]), Rel::Eq, 2.0);
        lp.add_constraint(LinExpr::from_iter([(x, 2.0), (y, 1.0)]), Rel::Le, rhs);
        lp.add_constraint(LinExpr::term(y, 1.0), Rel::Le, rhs);
        lp
    }

    #[test]
    fn probe_cache_rhs_patch_matches_cold_verdicts() {
        let mut cache: ProbeCache<f64> = ProbeCache::new();
        assert!(
            cache.solve(&cache_probe(4.0), None).is_none(),
            "empty cache with no hint has no warm route"
        );
        // Seed it through a cold solve's basis, then sweep the RHS both
        // ways: every verdict must match the cold solver's, and every
        // call after the seeding one must take the persistent path.
        let seed = solve_warm(&cache_probe(4.0), None);
        let basis = seed.basis.expect("seed basis");
        let mut seeded = false;
        for rhs in [4.0, 3.0, 2.5, 2.0, 1.9, 1.5, 3.5, 8.0, 1.0, 2.1] {
            let p = cache_probe(rhs);
            let out = cache
                .solve(&p, Some(&basis))
                .expect("seeded cache must serve warm");
            assert_eq!(
                out.solution.status,
                solve(&p).status,
                "cache and cold verdicts must agree at rhs={rhs}"
            );
            if out.solution.is_optimal() {
                assert!(certifies(&p, &out.solution), "optimal must certify");
            }
            if seeded {
                assert!(out.persistent, "same matrix must take the RHS patch path");
            }
            seeded = true;
        }
    }

    #[test]
    fn probe_cache_margin_is_decisive_for_gross_infeasibility() {
        let mut cache: ProbeCache<f64> = ProbeCache::new();
        let seed = solve_warm(&cache_probe(4.0), None);
        cache.solve(&cache_probe(4.0), seed.basis.as_ref()).unwrap();
        // x + y = 2 with 2x + y ≤ 0.5 is violated by ≥ 1.5 units.
        let out = cache.solve(&cache_probe(0.5), None).unwrap();
        assert_eq!(out.solution.status, LpStatus::Infeasible);
        let margin = out.infeasible_margin.expect("infeasible carries a margin");
        assert!(margin > 0.5, "gross violation must be decisive: {margin}");
    }

    #[test]
    fn probe_cache_matrix_change_rerealizes_own_basis() {
        let mut cache: ProbeCache<f64> = ProbeCache::new();
        let seed = solve_warm(&cache_probe(4.0), None);
        cache.solve(&cache_probe(4.0), seed.basis.as_ref()).unwrap();
        // Same shape, different coefficient: the RHS patch must NOT
        // engage, but the cache's own basis re-realizes.
        let mut p: LpProblem<f64> = LpProblem::new(Sense::Minimize);
        let x = p.add_var("x");
        let y = p.add_var("y");
        p.add_constraint(LinExpr::from_iter([(x, 1.0), (y, 1.0)]), Rel::Eq, 2.0);
        p.add_constraint(LinExpr::from_iter([(x, 3.0), (y, 1.0)]), Rel::Le, 4.0);
        p.add_constraint(LinExpr::term(y, 1.0), Rel::Le, 4.0);
        let out = cache.solve(&p, None).expect("own basis re-realizes");
        assert!(!out.persistent);
        assert_eq!(out.solution.status, solve(&p).status);
        // And the re-realized tableau is retained: an RHS-only change on
        // the *new* matrix is persistent again.
        let mut q: LpProblem<f64> = LpProblem::new(Sense::Minimize);
        let x = q.add_var("x");
        let y = q.add_var("y");
        q.add_constraint(LinExpr::from_iter([(x, 1.0), (y, 1.0)]), Rel::Eq, 2.0);
        q.add_constraint(LinExpr::from_iter([(x, 3.0), (y, 1.0)]), Rel::Le, 5.0);
        q.add_constraint(LinExpr::term(y, 1.0), Rel::Le, 5.0);
        let out = cache.solve(&q, None).unwrap();
        assert!(out.persistent);
        assert_eq!(out.solution.status, solve(&q).status);
    }

    #[test]
    fn probe_cache_eq_rhs_change_falls_back_to_realization() {
        let mut cache: ProbeCache<f64> = ProbeCache::new();
        let seed = solve_warm(&cache_probe(4.0), None);
        cache.solve(&cache_probe(4.0), seed.basis.as_ref()).unwrap();
        // Moving the equality row's RHS has no slack column to patch
        // through: must fall back to re-realization, still correct.
        let mut p: LpProblem<f64> = LpProblem::new(Sense::Minimize);
        let x = p.add_var("x");
        let y = p.add_var("y");
        p.add_constraint(LinExpr::from_iter([(x, 1.0), (y, 1.0)]), Rel::Eq, 1.0);
        p.add_constraint(LinExpr::from_iter([(x, 2.0), (y, 1.0)]), Rel::Le, 4.0);
        p.add_constraint(LinExpr::term(y, 1.0), Rel::Le, 4.0);
        let out = cache.solve(&p, None).unwrap();
        assert!(!out.persistent);
        assert_eq!(out.solution.status, LpStatus::Optimal);
        assert!(certifies(&p, &out.solution));
    }

    #[test]
    fn probe_cache_exact_rational_patch_is_bit_identical() {
        // Over Rat the RHS patch is exact algebra: the persistent path's
        // solution must equal the cold solution outright, not just agree
        // on the verdict.
        fn probe(rhs: i64) -> LpProblem<Rat> {
            let mut lp: LpProblem<Rat> = LpProblem::new(Sense::Minimize);
            let a = lp.add_var("a");
            let b = lp.add_var("b");
            lp.add_constraint(
                LinExpr::from_iter([(a, Rat::one()), (b, Rat::one())]),
                Rel::Eq,
                Rat::one(),
            );
            lp.add_constraint(
                LinExpr::from_iter([(a, Rat::from_i64(4)), (b, Rat::from_i64(2))]),
                Rel::Le,
                Rat::from_i64(rhs),
            );
            lp
        }
        let mut cache: ProbeCache<Rat> = ProbeCache::new();
        let seed = solve_warm(&probe(8), None);
        cache.solve(&probe(8), seed.basis.as_ref()).unwrap();
        for rhs in [5, 3, 2, 4, 1] {
            let p = probe(rhs);
            let out = cache.solve(&p, None).unwrap();
            let cold = solve(&p);
            assert_eq!(out.solution.status, cold.status, "rhs={rhs}");
            if cold.status == LpStatus::Optimal {
                assert!(certifies(&p, &out.solution), "rhs={rhs}");
            }
        }
    }
}
