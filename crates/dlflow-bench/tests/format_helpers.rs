//! The report formatters are part of the bench crate's public surface
//! (bin targets and external tooling render tables with them); pin the
//! rounding behavior.

use dlflow_bench::{f1, f3};

#[test]
fn fixed_width_float_rendering() {
    assert_eq!(f1(1.25), "1.2"); // ties-to-even, like format!
    assert_eq!(f1(2.0), "2.0");
    assert_eq!(f3(0.12349), "0.123");
    assert_eq!(f3(7.0), "7.000");
}
