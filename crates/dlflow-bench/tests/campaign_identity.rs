//! The committed quick-campaign artifact is a byte-level regression
//! oracle: any change that perturbs scheduler decisions, float
//! accumulation order, RNG draws, or report rendering shows up as a
//! diff against `CAMPAIGN_PR4.json`. In particular this pins the
//! `HashMap` → `BTreeMap` migration inside `Mct`/`Edf` as
//! behavior-neutral, and guards every future "surely equivalent"
//! refactor of the campaign path.

use dlflow_sim::campaign::{run_campaign, CampaignConfig};
use std::path::Path;

#[test]
fn quick_campaign_json_is_byte_identical_to_committed_artifact() {
    let artifact = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .join("CAMPAIGN_PR4.json");
    let committed = std::fs::read_to_string(&artifact)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", artifact.display()));
    let fresh = run_campaign(&CampaignConfig::quick())
        .expect("quick campaign must run")
        .to_json();
    // On mismatch, print a focused first-difference instead of two 100k
    // blobs.
    if fresh != committed {
        let byte = fresh
            .bytes()
            .zip(committed.bytes())
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| fresh.len().min(committed.len()));
        let lo = byte.saturating_sub(80);
        panic!(
            "quick campaign diverged from CAMPAIGN_PR4.json at byte {byte}:\n\
             fresh:     …{}…\n\
             committed: …{}…",
            &fresh[lo..(byte + 80).min(fresh.len())],
            &committed[lo..(byte + 80).min(committed.len())],
        );
    }
}
