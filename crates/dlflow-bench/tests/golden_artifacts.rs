//! Golden-byte regression wall for the PR-9 engine rework.
//!
//! Three artifacts produced by the *previous* engine generation are
//! committed at the repo root; the reworked slab/SoA engine must
//! reproduce every byte. Together with `campaign_identity.rs` (the
//! fault-free quick campaign) these pin the full observable surface:
//! scheduler decisions, float accumulation order, RNG draws, fault
//! schedules, and report rendering.

use dlflow_sim::chaos::{
    default_levels, run_fault_campaign, run_fault_campaign_serial, FaultCampaignConfig,
};
use dlflow_sim::schedulers::Swrpt;
use dlflow_sim::workload::{generate_trace, ArrivalProcess, TraceSpec};
use std::path::Path;

/// Panics with a focused first-difference instead of two 100k blobs.
fn assert_same_bytes(fresh: &str, committed: &str, what: &str) {
    if fresh != committed {
        let byte = fresh
            .bytes()
            .zip(committed.bytes())
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| fresh.len().min(committed.len()));
        let lo = byte.saturating_sub(80);
        panic!(
            "{what} diverged at byte {byte}:\n\
             fresh:     …{}…\n\
             committed: …{}…",
            &fresh[lo..(byte + 80).min(fresh.len())],
            &committed[lo..(byte + 80).min(committed.len())],
        );
    }
}

fn committed(name: &str) -> String {
    let artifact = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .join(name);
    std::fs::read_to_string(&artifact)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", artifact.display()))
}

/// The chaos sweep (4 fault levels × 6 schedulers × 12 seeds) renders
/// byte-identically to the artifact the pre-rework engine wrote — and
/// the parallel and serial drivers agree, so the rayon fan-out adds no
/// nondeterminism.
#[test]
fn fault_campaign_json_is_byte_identical_to_committed_artifact() {
    let cfg = FaultCampaignConfig {
        levels: default_levels(),
        ..FaultCampaignConfig::quick()
    };
    let parallel = run_fault_campaign(&cfg)
        .expect("chaos campaign must run")
        .to_json();
    assert_same_bytes(
        &parallel,
        &committed("CAMPAIGN_PR8.json"),
        "CAMPAIGN_PR8.json",
    );
    let serial = run_fault_campaign_serial(&cfg)
        .expect("serial chaos campaign must run")
        .to_json();
    assert_same_bytes(&serial, &parallel, "serial vs parallel chaos report");
}

/// The 10k-request smoke trace (Poisson seed 17, SWRPT) crosses exactly
/// the event count the pre-rework engine did — the cheapest possible
/// whole-run fingerprint of event semantics.
#[test]
fn trace_smoke_event_count_is_pinned() {
    let trace = generate_trace(&TraceSpec {
        n_requests: 10_000,
        n_machines: 3,
        process: ArrivalProcess::Poisson { rate: 2.0 },
        seed: 17,
        ..Default::default()
    });
    let stats = trace.replay(&mut Swrpt::new()).expect("replay completes");
    assert_eq!(stats.n_jobs, 10_000);
    assert_eq!(
        stats.n_events, 27_038,
        "event count drifted — the engine's event semantics changed"
    );
}
