//! **Ablation** — the design choices behind Theorem 2's search:
//!
//! 1. *Milestone binary search + LP probes* (the paper's algorithm):
//!    exact optimum in O(log n²) probes.
//! 2. *Milestone binary search + max-flow probes* (our uniform-machine
//!    fast path): same exact optimum; each probe a combinatorial
//!    max-flow instead of an LP — applicable because the GriPPS platform
//!    is "uniform machines with restricted availabilities" (§3).
//! 3. *Plain ε-bisection* (the strawman §4.3.1 warns about): approximate
//!    only, and needs Θ(log(range/ε)) probes instead of Θ(log n²).
//!
//! Reported per instance size: probe counts, wall-clock, and the accuracy
//! gap of the bisection.

use dlflow_bench::{f3, render_table};
use dlflow_core::maxflow::{
    min_max_weighted_flow_bisection, min_max_weighted_flow_divisible_with, ProbeMethod,
};
use dlflow_core::uniform::uniform_factors;
use dlflow_sim::workload::{generate, WorkloadSpec};
use std::time::Instant;

fn main() {
    println!("=== Ablation: milestone search vs ε-bisection; LP vs max-flow probes ===\n");

    let mut rows = Vec::new();
    for &n in &[4usize, 6, 8, 12, 16] {
        // The workload generator produces uniform-with-restricted-
        // availabilities instances, so the max-flow probe applies.
        let inst = generate(&WorkloadSpec {
            n_jobs: n,
            n_machines: 3,
            seed: 99,
            ..Default::default()
        });
        assert!(uniform_factors(&inst).is_some(), "workload must be uniform");

        let t0 = Instant::now();
        let lp = min_max_weighted_flow_divisible_with(&inst, ProbeMethod::Lp);
        let t_lp = t0.elapsed().as_secs_f64();

        let t0 = Instant::now();
        let mf = min_max_weighted_flow_divisible_with(&inst, ProbeMethod::MaxFlowUniform);
        let t_mf = t0.elapsed().as_secs_f64();
        assert!((lp.optimum - mf.optimum).abs() <= 1e-6 * lp.optimum.max(1.0));

        let eps = 1e-3;
        let t0 = Instant::now();
        let bi = min_max_weighted_flow_bisection(&inst, &eps, false);
        let t_bi = t0.elapsed().as_secs_f64();
        let err = (bi.approx_optimum - lp.optimum) / lp.optimum.max(1e-12);

        rows.push(vec![
            n.to_string(),
            lp.stats.n_milestones.to_string(),
            lp.stats.n_probes.to_string(),
            f3(t_lp * 1e3),
            f3(t_mf * 1e3),
            bi.iterations.to_string(),
            f3(t_bi * 1e3),
            format!("{:.2e}", err),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "n",
                "milestones",
                "probes",
                "LP-probe (ms)",
                "flow-probe (ms)",
                "bisect iters",
                "bisect (ms)",
                "bisect rel.err",
            ],
            &rows
        )
    );
    println!("\nfindings:");
    println!("  - milestone search needs only O(log n²) probes; bisection needs ~log(range/eps)");
    println!("    and still returns an APPROXIMATION (the paper's §4.3.1 argument, quantified);");
    println!("  - on uniform platforms each probe can be a max-flow instead of an LP, with");
    println!("    identical results (exactness preserved: the final range LP is unchanged).");
}
