//! **Conclusion experiment** — "a simple on-line adaptation of our
//! off-line algorithm, enhanced by a simple preemption scheme, produces
//! better schedules than classical scheduling heuristics like Minimum
//! Completion Time, with respect to our objectives."
//!
//! Protocol: an ensemble of random platform/workload instances; each
//! policy replayed on each instance; metrics normalized by the exact
//! offline divisible optimum of that instance (the bound Theorem 2 makes
//! computable). Reported: mean and worst-case ratio per policy for max
//! weighted flow and max stretch.

use dlflow_bench::{f3, render_table};
use dlflow_core::maxflow::min_max_weighted_flow_divisible;
use dlflow_sim::engine::{simulate, OnlineScheduler, RunMetrics};
use dlflow_sim::schedulers::{FifoFastest, Mct, OfflineAdapt, RoundRobin, Srpt, WeightedAge};
use dlflow_sim::workload::{ensemble, WorkloadSpec};

fn main() {
    println!("=== Conclusion: online policies vs offline divisible optimum ===\n");

    let spec = WorkloadSpec {
        n_jobs: 10,
        n_machines: 3,
        mean_interarrival: 3.0,
        cost_range: (2.0, 20.0),
        heterogeneity: 3.0,
        availability: 0.7,
        weights: vec![1.0, 2.0, 5.0],
        seed: 7,
    };
    let n_instances = 20;
    let instances = ensemble(&spec, n_instances);
    println!(
        "{} instances: {} jobs, {} machines, Poisson arrivals (mean gap {}), availability {}\n",
        n_instances, spec.n_jobs, spec.n_machines, spec.mean_interarrival, spec.availability
    );

    let offline: Vec<f64> = instances
        .iter()
        .map(|inst| min_max_weighted_flow_divisible(inst).optimum)
        .collect();

    let mk_policies = || -> Vec<Box<dyn OnlineScheduler>> {
        vec![
            Box::new(Mct::new()),
            Box::new(FifoFastest::new()),
            Box::new(Srpt::new()),
            Box::new(RoundRobin::new()),
            Box::new(WeightedAge::new()),
            Box::new(OfflineAdapt::new()),
        ]
    };

    let mut rows = Vec::new();
    let mut summary: Vec<(String, f64)> = Vec::new();
    for mut policy in mk_policies() {
        let mut wf_ratios = Vec::new();
        let mut stretch = Vec::new();
        for (inst, &opt) in instances.iter().zip(&offline) {
            let res = simulate(inst, policy.as_mut()).expect("simulation completes");
            let m = RunMetrics::from_completions(inst, &res.completions);
            wf_ratios.push(m.max_weighted_flow / opt);
            stretch.push(m.max_stretch);
        }
        let mean = wf_ratios.iter().sum::<f64>() / wf_ratios.len() as f64;
        let worst = wf_ratios.iter().cloned().fold(0.0, f64::max);
        let wins = wf_ratios.iter().filter(|&&r| r < 1.02).count();
        let mean_stretch = stretch.iter().sum::<f64>() / stretch.len() as f64;
        rows.push(vec![
            policy.name(),
            f3(mean),
            f3(worst),
            format!("{wins}/{n_instances}"),
            f3(mean_stretch),
        ]);
        summary.push((policy.name(), mean));
    }

    println!(
        "{}",
        render_table(
            &[
                "policy",
                "mean maxWF/opt",
                "worst maxWF/opt",
                "within 2% of opt",
                "mean maxStretch"
            ],
            &rows
        )
    );

    let ola = summary
        .iter()
        .find(|(n, _)| n.starts_with("OLA"))
        .unwrap()
        .1;
    let mct = summary.iter().find(|(n, _)| n == "MCT").unwrap().1;
    println!(
        "OLA mean ratio {:.3} vs MCT {:.3}: OLA is {:.1}% closer to the offline optimum.",
        ola,
        mct,
        (mct - ola) / mct * 100.0
    );
    assert!(
        ola < mct,
        "the paper's claim must reproduce: OLA beats MCT on mean max weighted flow"
    );
    println!("\npaper's qualitative claim REPRODUCED: the online adaptation of the offline");
    println!("algorithm dominates Minimum Completion Time on the max weighted flow objective.");
}
