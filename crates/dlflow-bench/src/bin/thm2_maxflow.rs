//! **Theorem 2 validation** — minimizing the max weighted flow is
//! polynomial (§4.3).
//!
//! (a) Milestone census: observed distinct milestones vs the paper's
//!     n²−n bound; binary-search probe count vs ⌈log₂ n_q⌉ + 2.
//! (b) Optimality: exact optimum achieved by the schedule, infeasible
//!     just below, and the execution-model chain
//!     divisible ≤ preemptive ≤ FIFO baseline.
//! (c) Scaling of the full exact pipeline and the f64 pipeline.

use dlflow_bench::{f3, render_table};
use dlflow_core::baselines::{baseline_max_weighted_flow, ListOrder};
use dlflow_core::maxflow::{
    feasible_at, min_max_weighted_flow_divisible, min_max_weighted_flow_preemptive,
};
use dlflow_core::milestones::{milestone_bound, milestones};
use dlflow_core::validate::validate;
use dlflow_num::Rat;
use dlflow_sim::workload::{generate, WorkloadSpec};
use std::time::Instant;

fn exact_instance(seed: u64, n: usize, m: usize) -> dlflow_core::instance::Instance<Rat> {
    generate(&WorkloadSpec {
        n_jobs: n,
        n_machines: m,
        seed,
        ..Default::default()
    })
    .map_scalar(|v| Rat::from_ratio((v * 16.0).round() as i64, 16))
}

fn main() {
    println!("=== Theorem 2: max weighted flow minimization ===\n");

    // ---------- (a) milestone census ----------
    println!("milestone census (exact arithmetic):");
    let mut rows = Vec::new();
    for n in [2usize, 3, 4, 6, 8, 10] {
        let inst = exact_instance(n as u64, n, 3);
        let ms = milestones(&inst);
        let out = min_max_weighted_flow_divisible(&inst);
        let log_bound = (ms.len().max(1) as f64).log2().ceil() as usize + 2;
        assert!(ms.len() <= milestone_bound(n));
        assert!(out.stats.n_probes <= log_bound.max(2));
        rows.push(vec![
            n.to_string(),
            ms.len().to_string(),
            milestone_bound(n).to_string(),
            format!(
                "{} ({}w/{}c)",
                out.stats.n_probes, out.stats.n_warm_probes, out.stats.n_cold_probes
            ),
            log_bound.to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "n jobs",
                "milestones",
                "bound n²−n",
                "probes (warm/cold)",
                "probe bound"
            ],
            &rows
        )
    );

    // ---------- (b) optimality & model chain ----------
    println!("optimality checks (exact arithmetic, 6 random instances):");
    let mut rows = Vec::new();
    for seed in 0..6u64 {
        let inst = exact_instance(100 + seed, 4, 2);
        let div = min_max_weighted_flow_divisible(&inst);
        validate(&inst, &div.schedule).unwrap();
        assert_eq!(div.schedule.max_weighted_flow(&inst), div.optimum);
        let below = div.optimum.mul_ref(&Rat::from_ratio(999, 1000));
        let tight = !below.is_positive() || !feasible_at(&inst, &below, false);
        assert!(tight, "seed {seed}: optimum not tight");

        let pre = min_max_weighted_flow_preemptive(&inst);
        validate(&inst, &pre.schedule).unwrap();
        let fifo = baseline_max_weighted_flow(&inst, ListOrder::ReleaseDate);
        assert!(div.optimum <= pre.optimum && pre.optimum <= fifo);
        rows.push(vec![
            seed.to_string(),
            format!("{:.4}", div.optimum.to_f64()),
            format!("{:.4}", pre.optimum.to_f64()),
            format!("{:.4}", fifo.to_f64()),
            "tight+valid".into(),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "seed",
                "F* divisible",
                "F* preemptive",
                "FIFO baseline",
                "verdict"
            ],
            &rows
        )
    );
    println!("chain divisible ≤ preemptive ≤ baseline holds on every instance.\n");

    // ---------- (c) scaling ----------
    println!("scaling of the full Theorem-2 pipeline:");
    let mut rows = Vec::new();
    for &(n, m) in &[(3usize, 2usize), (5, 2), (8, 3), (12, 3), (16, 4)] {
        let inst_f = generate(&WorkloadSpec {
            n_jobs: n,
            n_machines: m,
            seed: 5,
            ..Default::default()
        });
        let t0 = Instant::now();
        let f = min_max_weighted_flow_divisible(&inst_f);
        let t_f64 = t0.elapsed().as_secs_f64();
        std::hint::black_box(f.optimum);

        let t_exact = if n <= 8 {
            let inst_r = exact_instance(5, n, m);
            let t0 = Instant::now();
            let e = min_max_weighted_flow_divisible(&inst_r);
            std::hint::black_box(e.optimum.to_f64());
            format!("{:.1}", t0.elapsed().as_secs_f64() * 1e3)
        } else {
            "-".into()
        };
        rows.push(vec![n.to_string(), m.to_string(), f3(t_f64 * 1e3), t_exact]);
    }
    println!(
        "{}",
        render_table(&["n", "m", "f64 (ms)", "exact (ms)"], &rows)
    );
    println!("polynomial growth in both arithmetic modes, as Theorem 2 promises.");
}
