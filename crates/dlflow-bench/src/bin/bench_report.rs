//! `bench-report` — quick-mode perf probe emitting machine-readable JSON.
//!
//! Runs a fixed, representative subset of the criterion suites
//! (`bench_num`, `bench_simplex`, `bench_core`, `bench_gripps`,
//! `bench_sim`) with a small measurement budget and writes per-bench
//! **median** ns/iter to `BENCH_PR5.json` (override with `--out <path>`),
//! establishing the perf trajectory across PRs. The Theorem-2 entry also
//! records the `FlowStats` warm/cold probe split (the PR-3 headline);
//! the sim section records the incremental engine's large-trace scaling
//! curve (1k/10k/100k arrivals) and its speedup over the legacy
//! dense-allocation batch loop at n = 5k (the PR-5 headline).
//!
//! Usage: `cargo run --release -p dlflow-bench --bin bench-report`

use dlflow_core::lp_build::{build_deadline_lp, build_makespan_lp};
use dlflow_core::maxflow::min_max_weighted_flow_divisible;
use dlflow_core::milestones::milestones;
use dlflow_gripps::databank::{Databank, DatabankSpec};
use dlflow_gripps::motif::Motif;
use dlflow_gripps::scan::scan_databank;
use dlflow_num::Rat;
use dlflow_sim::engine::simulate_dense;
use dlflow_sim::schedulers::Swrpt;
use dlflow_sim::workload::{generate, generate_trace, ArrivalProcess, TraceSpec, WorkloadSpec};
use std::time::Instant;

/// Samples per benchmark; the median is reported.
const SAMPLES: usize = 7;
/// Target wall-clock per sample.
const SAMPLE_BUDGET_NS: u128 = 10_000_000; // 10 ms

/// Times `routine` with `samples` samples and returns the median ns per
/// iteration.
fn median_ns_with<O>(samples: usize, mut routine: impl FnMut() -> O) -> f64 {
    // Calibrate the per-sample iteration count on one warm-up run.
    let t0 = Instant::now();
    std::hint::black_box(routine());
    let once = t0.elapsed().as_nanos().max(1);
    let iters = (SAMPLE_BUDGET_NS / once).clamp(1, 100_000) as usize;
    let mut out = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(routine());
        }
        out.push(t.elapsed().as_nanos() as f64 / iters as f64);
    }
    out.sort_by(|a, b| a.total_cmp(b));
    out[samples / 2]
}

/// Times `routine` and returns the median ns per iteration.
fn median_ns<O>(routine: impl FnMut() -> O) -> f64 {
    median_ns_with(SAMPLES, routine)
}

fn main() {
    let out_path = {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == "--out")
            .and_then(|i| args.get(i + 1).cloned())
            .unwrap_or_else(|| "BENCH_PR5.json".to_string())
    };

    let mut entries: Vec<(String, f64)> = Vec::new();
    let mut push = |name: &str, ns: f64| {
        println!("{name:<44} {ns:>14.1} ns/iter (median)");
        entries.push((name.to_string(), ns));
    };

    // --- bench_num: the Rat fast path. ---
    let a = Rat::from_ratio(123456789, 987654321);
    let b = Rat::from_ratio(555555557, 333333331);
    push("num/rat_add", median_ns(|| a.add_ref(&b)));
    push("num/rat_mul", median_ns(|| a.mul_ref(&b)));
    push("num/rat_cmp", median_ns(|| a < b));
    let big = Rat::from_i64(i64::MAX).powi(2); // bignum-path operand
    push("num/rat_add_bignum", median_ns(|| big.add_ref(&b)));

    // --- bench_simplex: the exact-Rat suite (the PR's 5× target). ---
    for n in [4usize, 8] {
        let inst = generate(&WorkloadSpec {
            n_jobs: n,
            n_machines: 3,
            seed: 1,
            ..Default::default()
        })
        .map_scalar(|v| Rat::from_ratio((v * 16.0).round() as i64, 16));
        push(
            &format!("simplex/system1_exact_{n}"),
            median_ns(|| {
                let built = build_makespan_lp(&inst);
                dlflow_lp::solve(&built.lp).status
            }),
        );
    }
    let inst16 = generate(&WorkloadSpec {
        n_jobs: 16,
        n_machines: 3,
        seed: 2,
        ..Default::default()
    });
    let deadlines: Vec<f64> = (0..16).map(|j| inst16.job(j).release + 100.0).collect();
    push(
        "simplex/system2_preemptive_f64_16",
        median_ns(|| {
            let built = build_deadline_lp(&inst16, &deadlines, true);
            dlflow_lp::solve(&built.lp).status
        }),
    );

    // --- bench_core: milestones + the warm-started Theorem-2 path. ---
    let inst64 = generate(&WorkloadSpec {
        n_jobs: 64,
        n_machines: 3,
        seed: 3,
        ..Default::default()
    });
    push(
        "core/milestones_64",
        median_ns(|| milestones(&inst64).len()),
    );
    let exact4 = generate(&WorkloadSpec {
        n_jobs: 4,
        n_machines: 2,
        seed: 6,
        ..Default::default()
    })
    .map_scalar(|v| Rat::from_ratio((v * 16.0).round() as i64, 16));
    push(
        "core/theorem2_divisible_exact_4",
        median_ns(|| min_max_weighted_flow_divisible(&exact4).optimum.to_f64()),
    );
    // A deeper search so the warm-start split is visible in the stats.
    let exact8 = generate(&WorkloadSpec {
        n_jobs: 8,
        n_machines: 3,
        seed: 5,
        ..Default::default()
    })
    .map_scalar(|v| Rat::from_ratio((v * 8.0).round() as i64, 8));
    let stats = min_max_weighted_flow_divisible(&exact8).stats;
    push(
        "core/theorem2_divisible_exact_8",
        median_ns(|| min_max_weighted_flow_divisible(&exact8).optimum.to_f64()),
    );
    println!(
        "  theorem2 n=8 probes: {} total = {} warm + {} cold ({} milestones)",
        stats.n_probes, stats.n_warm_probes, stats.n_cold_probes, stats.n_milestones
    );

    // --- bench_gripps: the (now genuinely parallel) scanner. ---
    let bank = Databank::generate(&DatabankSpec {
        n_sequences: 64,
        mean_len: 120,
        min_len: 30,
        seed: 7,
    });
    let motifs = Motif::random_set(6, 5, 11);
    push(
        "gripps/scan_databank_64x6",
        median_ns(|| scan_databank(&bank, &motifs).matches.len()),
    );

    // --- bench_sim: the incremental engine's large-trace scaling curve
    // (PR 5), plus the head-to-head against the legacy dense loop. ---
    let make_trace = |n: usize| {
        generate_trace(&TraceSpec {
            n_requests: n,
            n_machines: 3,
            process: ArrivalProcess::Poisson { rate: 2.0 },
            seed: 17,
            ..Default::default()
        })
    };
    let mut sim_scaling: Vec<(usize, f64, usize)> = Vec::new();
    for (n, samples) in [(1_000usize, SAMPLES), (10_000, 3), (100_000, 3)] {
        let t = make_trace(n);
        let n_events = t.replay(&mut Swrpt::new()).unwrap().n_events;
        let ns = median_ns_with(samples, || t.replay(&mut Swrpt::new()).unwrap().n_events);
        push(&format!("sim/engine_trace_swrpt_{n}"), ns);
        sim_scaling.push((n, ns, n_events));
    }
    // Speedup over the legacy dense-allocation batch loop at n = 5k.
    let t5k = make_trace(5_000);
    let inst5k = t5k.to_instance().expect("generated trace materializes");
    let engine_ns = median_ns_with(3, || t5k.replay(&mut Swrpt::new()).unwrap().n_events);
    let dense_ns = median_ns_with(3, || {
        simulate_dense(&inst5k, &mut Swrpt::new()).unwrap().n_events
    });
    push("sim/engine_trace_swrpt_5k", engine_ns);
    push("sim/legacy_dense_swrpt_5k", dense_ns);
    let sim_speedup_5k = dense_ns / engine_ns;
    println!("  engine vs legacy dense @5k: {sim_speedup_5k:.1}x");

    // --- JSON emission (no serde in the offline dependency set). ---
    let mut json = String::from("{\n  \"pr\": 5,\n  \"mode\": \"quick\",\n");
    json.push_str(&format!(
        "  \"samples_per_bench\": {SAMPLES},\n  \"theorem2_probe_stats\": {{\n    \"n_milestones\": {},\n    \"n_probes\": {},\n    \"n_warm_probes\": {},\n    \"n_cold_probes\": {}\n  }},\n",
        stats.n_milestones, stats.n_probes, stats.n_warm_probes, stats.n_cold_probes
    ));
    json.push_str("  \"sim_engine_scaling\": [\n");
    for (i, (n, ns, n_events)) in sim_scaling.iter().enumerate() {
        let comma = if i + 1 == sim_scaling.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{\"n_arrivals\": {n}, \"median_ns\": {ns:.1}, \"n_events\": {n_events}, \"events_per_sec\": {:.0}}}{comma}\n",
            *n_events as f64 / (ns / 1e9)
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"sim_speedup_dense_to_engine_5k\": {sim_speedup_5k:.2},\n"
    ));
    json.push_str("  \"median_ns\": {\n");
    for (i, (name, ns)) in entries.iter().enumerate() {
        let comma = if i + 1 == entries.len() { "" } else { "," };
        json.push_str(&format!("    \"{name}\": {ns:.1}{comma}\n"));
    }
    json.push_str("  }\n}\n");
    std::fs::write(&out_path, &json).expect("write bench report");
    println!("\nwrote {out_path}");

    // Sanity: the warm-start machinery must actually fire on the deep search.
    assert!(
        stats.n_probes == stats.n_warm_probes + stats.n_cold_probes,
        "probe accounting is inconsistent: {stats:?}"
    );
    if stats.n_probes >= 3 {
        assert!(
            stats.n_warm_probes > 0,
            "expected warm-started probes on the Theorem-2 path: {stats:?}"
        );
    }

    // Sanity: the incremental engine must clearly beat the legacy dense
    // loop at 5k arrivals (the local headline is well above this CI-safe
    // floor; the recorded number is the real measurement).
    assert!(
        sim_speedup_5k >= 4.0,
        "engine speedup over the dense loop collapsed: {sim_speedup_5k:.2}x"
    );
}
