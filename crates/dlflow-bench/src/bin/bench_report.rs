//! `bench-report` — quick-mode perf probe emitting machine-readable JSON.
//!
//! Runs a fixed, representative subset of the criterion suites
//! (`bench_num`, `bench_simplex`, `bench_core`, `bench_gripps`,
//! `bench_sim`) with a small measurement budget and writes per-bench
//! **median** ns/iter to `BENCH_PR10.json` (override with `--out <path>`),
//! establishing the perf trajectory across PRs. The Theorem-2 entry also
//! records the `FlowStats` warm/cold probe split (the PR-3 headline);
//! the sim section records the incremental engine's large-trace scaling
//! curve and its speedup over the legacy dense-allocation batch loop
//! (the PR-5 headline).
//!
//! The PR-9 section measures the flattened + sharded replay stack:
//!
//! * **Throughput floors.** Host speed drifts between sessions (the
//!   recorded absolute `BENCH_PR5` number is not reproducible on a
//!   different box), so the floors are *same-process ratios*: the PR-5
//!   stack ([`ReferenceEngine`] driving the frozen [`Pr5Swrpt`] policy)
//!   is re-timed in the same run, interleaved round-for-round with the
//!   new engine, and the gate is the best same-round ratio. Expected
//!   locally: flat ≥ 2× on the 3-machine trace, sharded ≥ 4× on the
//!   32-machine federation; the asserted floors are set lower (1.5× /
//!   3×) so a noisy CI runner flags collapse, not jitter.
//! * **Shard scaling.** Events/s of `ShardedEngine::replay_trace` on the
//!   32-machine federation at 1/2/4/8/16/32 shards.
//! * **Allocation counting.** [`allocmeter::Meter`] is this binary's
//!   global allocator; the report asserts that a second wave of jobs
//!   through a *warm* engine allocates only the id-table doublings
//!   (amortized zero per event) and records whole-replay allocation
//!   totals, which bound capacity growth — not per-event traffic.
//!
//! The PR-10 `ola-resolve` group measures the persistent warm-basis LP
//! machinery:
//!
//! * **Per-probe resolve cost.** A representative deadline-probe LP is
//!   re-solved cold vs through [`ProbeCache`] (alternating two RHS
//!   variants so every warm iteration is a genuine patch + dual
//!   repair). The asserted floor is a ≥ 3× warm-over-cold speedup; the
//!   local headline is ~10×.
//! * **End-to-end replay.** Eager-warm OLA (`throttle = 0`) vs the
//!   cold-resolve oracle vs `OLA-lite` on a 1k-arrival trace, with the
//!   event-level resolve telemetry ([`ResolveStats`]) recorded. The
//!   end-to-end gate is conservative (warm must not *pessimize* the
//!   replay) because the guard stack pins the tolerance-band tail of
//!   every bisection to the cold path by design — the per-event ratio
//!   is structurally capped well below the per-probe one.
//!
//! Usage: `cargo run --release -p dlflow-bench --bin bench-report`

use allocmeter::Meter;
use dlflow_core::instance::{Cost, Instance, Job};
use dlflow_core::lp_build::{build_deadline_lp, build_deadline_probe_lp, build_makespan_lp};
use dlflow_core::maxflow::min_max_weighted_flow_divisible;
use dlflow_core::milestones::milestones;
use dlflow_gripps::databank::{Databank, DatabankSpec};
use dlflow_gripps::motif::Motif;
use dlflow_gripps::scan::scan_databank;
use dlflow_lp::ProbeCache;
use dlflow_num::Rat;
use dlflow_sim::engine::{simulate_dense, JobSpec, OnlineScheduler, ResolveStats};
use dlflow_sim::reference::{Pr5Swrpt, ReferenceEngine};
use dlflow_sim::schedulers::{OfflineAdapt, OlaLite, Swrpt};
use dlflow_sim::shard::ShardedEngine;
use dlflow_sim::workload::{
    generate, generate_trace, ArrivalProcess, Trace, TraceSpec, WorkloadSpec,
};
use std::time::Instant;

#[global_allocator]
static METER: Meter = Meter::new();

/// Samples per benchmark; the median is reported.
const SAMPLES: usize = 7;
/// Target wall-clock per sample.
const SAMPLE_BUDGET_NS: u128 = 10_000_000; // 10 ms

/// Times `routine` with `samples` samples and returns the median ns per
/// iteration.
fn median_ns_with<O>(samples: usize, mut routine: impl FnMut() -> O) -> f64 {
    // Calibrate the per-sample iteration count on one warm-up run.
    let t0 = Instant::now();
    std::hint::black_box(routine());
    let once = t0.elapsed().as_nanos().max(1);
    let iters = (SAMPLE_BUDGET_NS / once).clamp(1, 100_000) as usize;
    let mut out = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(routine());
        }
        out.push(t.elapsed().as_nanos() as f64 / iters as f64);
    }
    out.sort_by(|a, b| a.total_cmp(b));
    out[samples / 2]
}

/// Times `routine` and returns the median ns per iteration.
fn median_ns<O>(routine: impl FnMut() -> O) -> f64 {
    median_ns_with(SAMPLES, routine)
}

fn main() {
    let out_path = {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == "--out")
            .and_then(|i| args.get(i + 1).cloned())
            .unwrap_or_else(|| "BENCH_PR10.json".to_string())
    };

    let mut entries: Vec<(String, f64)> = Vec::new();
    let mut push = |name: &str, ns: f64| {
        println!("{name:<44} {ns:>14.1} ns/iter (median)");
        entries.push((name.to_string(), ns));
    };

    // --- bench_num: the Rat fast path. ---
    let a = Rat::from_ratio(123456789, 987654321);
    let b = Rat::from_ratio(555555557, 333333331);
    push("num/rat_add", median_ns(|| a.add_ref(&b)));
    push("num/rat_mul", median_ns(|| a.mul_ref(&b)));
    push("num/rat_cmp", median_ns(|| a < b));
    let big = Rat::from_i64(i64::MAX).powi(2); // bignum-path operand
    push("num/rat_add_bignum", median_ns(|| big.add_ref(&b)));

    // --- bench_simplex: the exact-Rat suite (the PR's 5× target). ---
    for n in [4usize, 8] {
        let inst = generate(&WorkloadSpec {
            n_jobs: n,
            n_machines: 3,
            seed: 1,
            ..Default::default()
        })
        .map_scalar(|v| Rat::from_ratio((v * 16.0).round() as i64, 16));
        push(
            &format!("simplex/system1_exact_{n}"),
            median_ns(|| {
                let built = build_makespan_lp(&inst);
                dlflow_lp::solve(&built.lp).status
            }),
        );
    }
    let inst16 = generate(&WorkloadSpec {
        n_jobs: 16,
        n_machines: 3,
        seed: 2,
        ..Default::default()
    });
    let deadlines: Vec<f64> = (0..16).map(|j| inst16.job(j).release + 100.0).collect();
    push(
        "simplex/system2_preemptive_f64_16",
        median_ns(|| {
            let built = build_deadline_lp(&inst16, &deadlines, true);
            dlflow_lp::solve(&built.lp).status
        }),
    );

    // --- bench_core: milestones + the warm-started Theorem-2 path. ---
    let inst64 = generate(&WorkloadSpec {
        n_jobs: 64,
        n_machines: 3,
        seed: 3,
        ..Default::default()
    });
    push(
        "core/milestones_64",
        median_ns(|| milestones(&inst64).len()),
    );
    let exact4 = generate(&WorkloadSpec {
        n_jobs: 4,
        n_machines: 2,
        seed: 6,
        ..Default::default()
    })
    .map_scalar(|v| Rat::from_ratio((v * 16.0).round() as i64, 16));
    push(
        "core/theorem2_divisible_exact_4",
        median_ns(|| min_max_weighted_flow_divisible(&exact4).optimum.to_f64()),
    );
    // A deeper search so the warm-start split is visible in the stats.
    let exact8 = generate(&WorkloadSpec {
        n_jobs: 8,
        n_machines: 3,
        seed: 5,
        ..Default::default()
    })
    .map_scalar(|v| Rat::from_ratio((v * 8.0).round() as i64, 8));
    let stats = min_max_weighted_flow_divisible(&exact8).stats;
    push(
        "core/theorem2_divisible_exact_8",
        median_ns(|| min_max_weighted_flow_divisible(&exact8).optimum.to_f64()),
    );
    println!(
        "  theorem2 n=8 probes: {} total = {} warm + {} cold ({} milestones)",
        stats.n_probes, stats.n_warm_probes, stats.n_cold_probes, stats.n_milestones
    );

    // --- bench_gripps: the (now genuinely parallel) scanner. ---
    let bank = Databank::generate(&DatabankSpec {
        n_sequences: 64,
        mean_len: 120,
        min_len: 30,
        seed: 7,
    });
    let motifs = Motif::random_set(6, 5, 11);
    push(
        "gripps/scan_databank_64x6",
        median_ns(|| scan_databank(&bank, &motifs).matches.len()),
    );

    // --- bench_sim: the incremental engine's large-trace scaling curve
    // (PR 5), plus the head-to-head against the legacy dense loop. ---
    let make_trace = |n: usize| {
        generate_trace(&TraceSpec {
            n_requests: n,
            n_machines: 3,
            process: ArrivalProcess::Poisson { rate: 2.0 },
            seed: 17,
            ..Default::default()
        })
    };
    let mut sim_scaling: Vec<(usize, f64, usize)> = Vec::new();
    for (n, samples) in [(1_000usize, SAMPLES), (10_000, 3), (100_000, 3)] {
        let t = make_trace(n);
        let n_events = t.replay(&mut Swrpt::new()).unwrap().n_events;
        let ns = median_ns_with(samples, || t.replay(&mut Swrpt::new()).unwrap().n_events);
        push(&format!("sim/engine_trace_swrpt_{n}"), ns);
        sim_scaling.push((n, ns, n_events));
    }
    // Speedup over the legacy dense-allocation batch loop at n = 5k.
    let t5k = make_trace(5_000);
    let inst5k = t5k.to_instance().expect("generated trace materializes");
    let engine_ns = median_ns_with(3, || t5k.replay(&mut Swrpt::new()).unwrap().n_events);
    let dense_ns = median_ns_with(3, || {
        simulate_dense(&inst5k, &mut Swrpt::new()).unwrap().n_events
    });
    push("sim/engine_trace_swrpt_5k", engine_ns);
    push("sim/legacy_dense_swrpt_5k", dense_ns);
    let sim_speedup_5k = dense_ns / engine_ns;
    println!("  engine vs legacy dense @5k: {sim_speedup_5k:.1}x");

    // --- PR 9: flattened + sharded replay vs the frozen PR-5 stack. ---

    /// ns/event of the PR-5 stack (ReferenceEngine + frozen Pr5Swrpt)
    /// replaying `t` — push-all then drain, PR 5's own driving idiom.
    fn pr5_stack_ns(t: &Trace, m: usize) -> f64 {
        let mut re = ReferenceEngine::new(m);
        let mut pol = Pr5Swrpt::new();
        let t0 = Instant::now();
        for k in 0..t.len() {
            re.push_arrival(t.job_spec(k)).expect("valid trace arrival");
        }
        re.drain(&mut pol).expect("reference replay");
        t0.elapsed().as_nanos() as f64 / re.n_events() as f64
    }

    /// ns/event of the flattened engine's streaming replay of `t`.
    fn flat_ns(t: &Trace) -> f64 {
        let t0 = Instant::now();
        let s = t.replay(&mut Swrpt::new()).expect("flat replay");
        t0.elapsed().as_nanos() as f64 / s.n_events as f64
    }

    /// (ns/event, total events) of a sharded replay of `t` at `k` shards.
    fn sharded_ns(t: &Trace, m: usize, k: usize) -> (f64, usize) {
        let mut se = ShardedEngine::new(m, k);
        // Counters only — makes the buffering switch explicit (and it is
        // part of what is being measured: no completion stream is built).
        se.set_record_completions(false);
        let mut pols: Vec<Box<dyn OnlineScheduler + Send>> = (0..k)
            .map(|_| Box::new(Swrpt::new()) as Box<dyn OnlineScheduler + Send>)
            .collect();
        let t0 = Instant::now();
        let s = se.replay_trace(t, &mut pols).expect("sharded replay");
        (
            t0.elapsed().as_nanos() as f64 / s.n_events as f64,
            s.n_events,
        )
    }

    // Throughput floor 1: the flattened single-engine path on the exact
    // BENCH_PR5 trace shape (3 machines, 100k Poisson arrivals).
    // Interleaved rounds; the gate is the best same-round ratio, which
    // cancels host-speed drift between rounds.
    let t100k = make_trace(100_000);
    let (mut ref3_best, mut flat_best, mut flat_ratio) = (f64::INFINITY, f64::INFINITY, 0.0f64);
    for _ in 0..4 {
        let r = pr5_stack_ns(&t100k, 3);
        let f = flat_ns(&t100k);
        ref3_best = ref3_best.min(r);
        flat_best = flat_best.min(f);
        flat_ratio = flat_ratio.max(r / f);
    }
    push("sim/pr5_stack_100k_m3", ref3_best);
    push("sim/flat_replay_100k_m3", flat_best);
    println!("  flat vs PR-5 stack @100k m=3: {flat_ratio:.2}x");

    // Throughput floor 2 + shard scaling: a 32-machine federation.
    let t32 = generate_trace(&TraceSpec {
        n_requests: 100_000,
        n_machines: 32,
        process: ArrivalProcess::Poisson { rate: 2.0 },
        seed: 17,
        ..Default::default()
    });
    let (mut ref32_best, mut shard32_best, mut shard_ratio) =
        (f64::INFINITY, f64::INFINITY, 0.0f64);
    for _ in 0..3 {
        let r = pr5_stack_ns(&t32, 32);
        let (s, _) = sharded_ns(&t32, 32, 32);
        ref32_best = ref32_best.min(r);
        shard32_best = shard32_best.min(s);
        shard_ratio = shard_ratio.max(r / s);
    }
    push("sim/pr5_stack_100k_m32", ref32_best);
    push("sim/sharded_replay_100k_m32_k32", shard32_best);
    println!("  sharded k=32 vs PR-5 stack @100k m=32: {shard_ratio:.2}x");

    let mut shard_scaling: Vec<(usize, f64, usize)> = Vec::new();
    for k in [1usize, 2, 4, 8, 16, 32] {
        let mut best = f64::INFINITY;
        let mut events = 0usize;
        for _ in 0..2 {
            let (ns, ev) = sharded_ns(&t32, 32, k);
            best = best.min(ns);
            events = ev;
        }
        println!(
            "  sharded m=32 k={k}: {best:.1} ns/event, {:.2}M events/s",
            1e3 / best
        );
        shard_scaling.push((k, best, events));
    }

    // Allocation counting: whole-replay totals (bounded by capacity
    // growth, independent of event count)...
    let a0 = allocmeter::alloc_count();
    let flat_events = t100k
        .replay(&mut Swrpt::new())
        .expect("flat replay")
        .n_events;
    let flat_allocs = allocmeter::alloc_count() - a0;
    let a0 = allocmeter::alloc_count();
    let (_, shard_events) = sharded_ns(&t32, 32, 32);
    let shard_allocs = allocmeter::alloc_count() - a0;
    println!(
        "  allocations: flat {flat_allocs} over {flat_events} events, \
         sharded {shard_allocs} over {shard_events} events"
    );
    // ...and the strict steady-state claim: drive a warm engine (slab,
    // heaps, and policy scratch all at capacity after a first wave)
    // through a second wave of jobs. Only the engine's id table still
    // grows — a few amortized doublings, zero allocations per event.
    let mut eng = dlflow_sim::engine::Engine::new(3);
    eng.record_completions = false; // counters only, like the replays above
    let mut pol = Swrpt::new();
    let wave = |eng: &mut dlflow_sim::engine::Engine, pol: &mut Swrpt, lo: usize| {
        for j in 0..1_000usize {
            eng.push_arrival(JobSpec {
                release: (lo + j) as f64 * 0.5,
                weight: 1.0 + (j % 7) as f64,
                costs: vec![2.0 + (j % 5) as f64, 3.5, 4.0 + (j % 3) as f64],
            })
            .expect("valid job");
        }
        eng.drain(pol).expect("drain");
    };
    wave(&mut eng, &mut pol, 0);
    let a0 = allocmeter::alloc_count();
    wave(&mut eng, &mut pol, 1_000);
    // The wave closure itself allocates one costs Vec per job (1000
    // allocations), so the engine's own budget is the delta beyond them.
    let warm_wave_allocs = (allocmeter::alloc_count() - a0).saturating_sub(1_000);
    println!("  warm-engine second wave (1k jobs): {warm_wave_allocs} engine allocations");

    // --- ola-resolve: the PR-10 persistent warm-basis machinery. ---

    // Per-probe resolve cost on a representative deadline-probe LP
    // (6 jobs × 4 machines). The warm routine alternates two RHS
    // variants so every iteration is a real persistent patch + dual
    // repair, never a cache no-op.
    let probe_sub = {
        let jobs: Vec<Job<f64>> = (0..6)
            .map(|k| Job {
                release: 10.0,
                weight: 1.0 + k as f64,
                name: String::new(),
            })
            .collect();
        let cost: Vec<Vec<Cost<f64>>> = (0..4)
            .map(|i| {
                (0..6)
                    .map(|k| Cost::Finite(1.0 + ((i * 7 + k * 3) % 5) as f64))
                    .collect()
            })
            .collect();
        Instance::new(jobs, cost).expect("probe instance")
    };
    let d0 = [14.0, 13.0, 12.5, 12.2, 15.0, 16.0];
    let d1 = [14.1, 13.1, 12.6, 12.3, 15.1, 16.1];
    let probe_lp0 = build_deadline_probe_lp(&probe_sub, &d0, false);
    let probe_lp1 = build_deadline_probe_lp(&probe_sub, &d1, false);
    let cold_probe_ns = median_ns(|| dlflow_lp::solve(&probe_lp0));
    let mut probe_cache: ProbeCache<f64> = ProbeCache::new();
    let probe_seed = dlflow_lp::solve_warm(&probe_lp0, None);
    probe_cache
        .solve(&probe_lp0, probe_seed.basis.as_ref())
        .expect("seeded probe cache serves");
    let mut flip = false;
    let warm_probe_ns = median_ns(|| {
        flip = !flip;
        let p = if flip { &probe_lp1 } else { &probe_lp0 };
        probe_cache.solve(p, None)
    });
    let warm_probe_speedup = cold_probe_ns / warm_probe_ns;
    push("ola/cold_probe_solve", cold_probe_ns);
    push("ola/warm_probe_resolve", warm_probe_ns);
    println!("  warm vs cold per-probe resolve: {warm_probe_speedup:.2}x");

    // End-to-end replay: eager-warm OLA vs the cold oracle vs OLA-lite
    // on a 1k-arrival trace, interleaved rounds, best ns/event each.
    let ola_trace = generate_trace(&TraceSpec {
        n_requests: 1_000,
        seed: 7,
        ..Default::default()
    });
    fn ola_round(trace: &Trace, policy: &mut dyn OnlineScheduler) -> (f64, ResolveStats) {
        policy.reset();
        let t0 = Instant::now();
        let s = trace.replay(policy).expect("OLA replay");
        let ns = t0.elapsed().as_nanos() as f64 / s.n_events as f64;
        (ns, policy.resolve_stats().unwrap_or_default())
    }
    let mut eager = OfflineAdapt::new();
    let mut oracle = OfflineAdapt::cold_oracle();
    let mut lite = OlaLite::new();
    let (mut eager_ns, mut oracle_ns, mut lite_ns) = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
    let mut eager_stats = ResolveStats::default();
    for _ in 0..2 {
        let (ns, rs) = ola_round(&ola_trace, &mut eager);
        if ns < eager_ns {
            eager_ns = ns;
            eager_stats = rs;
        }
        oracle_ns = oracle_ns.min(ola_round(&ola_trace, &mut oracle).0);
        lite_ns = lite_ns.min(ola_round(&ola_trace, &mut lite).0);
    }
    let ola_end_to_end_ratio = oracle_ns / eager_ns;
    let lite_ratio = oracle_ns / lite_ns;
    push("sim/ola_eager_replay_1k", eager_ns);
    push("sim/ola_cold_oracle_replay_1k", oracle_ns);
    push("sim/olalite_replay_1k", lite_ns);
    println!(
        "  OLA eager vs cold oracle end-to-end: {ola_end_to_end_ratio:.2}x \
         ({:.2}M events/s eager); OLA-lite vs cold OLA: {lite_ratio:.2}x",
        1e3 / eager_ns
    );
    println!(
        "  OLA eager telemetry: {} re-solves ({} warm-served + {} cold), \
         {} warm + {} cold LP solves, {:.2} mean LP/resolve",
        eager_stats.n_resolves,
        eager_stats.warm_resolves,
        eager_stats.cold_resolves,
        eager_stats.warm_lp_solves,
        eager_stats.cold_lp_solves,
        eager_stats.mean_lp_solves_per_resolve()
    );

    // --- JSON emission (no serde in the offline dependency set). ---
    let mut json = String::from("{\n  \"pr\": 10,\n  \"mode\": \"quick\",\n");
    json.push_str(&format!(
        "  \"samples_per_bench\": {SAMPLES},\n  \"theorem2_probe_stats\": {{\n    \"n_milestones\": {},\n    \"n_probes\": {},\n    \"n_warm_probes\": {},\n    \"n_cold_probes\": {}\n  }},\n",
        stats.n_milestones, stats.n_probes, stats.n_warm_probes, stats.n_cold_probes
    ));
    json.push_str("  \"sim_engine_scaling\": [\n");
    for (i, (n, ns, n_events)) in sim_scaling.iter().enumerate() {
        let comma = if i + 1 == sim_scaling.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{\"n_arrivals\": {n}, \"median_ns\": {ns:.1}, \"n_events\": {n_events}, \"events_per_sec\": {:.0}}}{comma}\n",
            *n_events as f64 / (ns / 1e9)
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"sim_speedup_dense_to_engine_5k\": {sim_speedup_5k:.2},\n"
    ));
    json.push_str("  \"sim_shard_scaling_m32\": [\n");
    for (i, (k, ns, n_events)) in shard_scaling.iter().enumerate() {
        let comma = if i + 1 == shard_scaling.len() {
            ""
        } else {
            ","
        };
        json.push_str(&format!(
            "    {{\"shards\": {k}, \"best_ns_per_event\": {ns:.1}, \"n_events\": {n_events}, \"events_per_sec\": {:.0}}}{comma}\n",
            1e9 / ns
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"throughput_floor\": {{\n    \
         \"flat_m3_ratio_vs_pr5_stack\": {flat_ratio:.2},\n    \
         \"sharded_m32_k32_ratio_vs_pr5_stack\": {shard_ratio:.2},\n    \
         \"pr5_stack_best_ns_per_event_m3\": {ref3_best:.1},\n    \
         \"flat_best_ns_per_event_m3\": {flat_best:.1},\n    \
         \"pr5_stack_best_ns_per_event_m32\": {ref32_best:.1},\n    \
         \"sharded_k32_best_ns_per_event_m32\": {shard32_best:.1},\n    \
         \"recorded_pr5_events_per_sec_100k\": 6710259\n  }},\n"
    ));
    json.push_str(&format!(
        "  \"replay_allocations\": {{\n    \
         \"flat_100k_total\": {flat_allocs},\n    \
         \"flat_100k_events\": {flat_events},\n    \
         \"sharded_m32_k32_100k_total\": {shard_allocs},\n    \
         \"sharded_m32_k32_100k_events\": {shard_events},\n    \
         \"warm_engine_second_wave_1k_jobs\": {warm_wave_allocs}\n  }},\n"
    ));
    json.push_str(&format!(
        "  \"ola_resolve\": {{\n    \
         \"cold_probe_ns\": {cold_probe_ns:.1},\n    \
         \"warm_probe_ns\": {warm_probe_ns:.1},\n    \
         \"warm_probe_speedup\": {warm_probe_speedup:.2},\n    \
         \"ola_eager_best_ns_per_event\": {eager_ns:.1},\n    \
         \"ola_cold_oracle_best_ns_per_event\": {oracle_ns:.1},\n    \
         \"ola_end_to_end_ratio\": {ola_end_to_end_ratio:.2},\n    \
         \"ola_eager_events_per_sec\": {:.0},\n    \
         \"olalite_best_ns_per_event\": {lite_ns:.1},\n    \
         \"olalite_ratio_vs_cold_ola\": {lite_ratio:.2},\n    \
         \"eager_resolve_stats\": {{\n      \
         \"n_resolves\": {},\n      \
         \"warm_resolves\": {},\n      \
         \"cold_resolves\": {},\n      \
         \"warm_lp_solves\": {},\n      \
         \"cold_lp_solves\": {},\n      \
         \"mean_lp_solves_per_resolve\": {:.2}\n    }}\n  }},\n",
        1e9 / eager_ns,
        eager_stats.n_resolves,
        eager_stats.warm_resolves,
        eager_stats.cold_resolves,
        eager_stats.warm_lp_solves,
        eager_stats.cold_lp_solves,
        eager_stats.mean_lp_solves_per_resolve()
    ));
    json.push_str("  \"median_ns\": {\n");
    for (i, (name, ns)) in entries.iter().enumerate() {
        let comma = if i + 1 == entries.len() { "" } else { "," };
        json.push_str(&format!("    \"{name}\": {ns:.1}{comma}\n"));
    }
    json.push_str("  }\n}\n");
    std::fs::write(&out_path, &json).expect("write bench report");
    println!("\nwrote {out_path}");

    // Sanity: the warm-start machinery must actually fire on the deep search.
    assert!(
        stats.n_probes == stats.n_warm_probes + stats.n_cold_probes,
        "probe accounting is inconsistent: {stats:?}"
    );
    if stats.n_probes >= 3 {
        assert!(
            stats.n_warm_probes > 0,
            "expected warm-started probes on the Theorem-2 path: {stats:?}"
        );
    }

    // Sanity: the incremental engine must clearly beat the legacy dense
    // loop at 5k arrivals (the local headline is well above this CI-safe
    // floor; the recorded number is the real measurement).
    assert!(
        sim_speedup_5k >= 4.0,
        "engine speedup over the dense loop collapsed: {sim_speedup_5k:.2}x"
    );

    // Throughput floors vs the frozen PR-5 stack, same process, best
    // same-round ratio. Local headlines are ~2x (flat) and >4x
    // (sharded); the asserted floors leave noise headroom so a slow or
    // shared runner flags a real collapse, not jitter.
    assert!(
        flat_ratio >= 1.5,
        "flattened replay no longer clearly beats the PR-5 stack: {flat_ratio:.2}x"
    );
    assert!(
        shard_ratio >= 3.0,
        "sharded replay no longer clearly beats the PR-5 stack: {shard_ratio:.2}x"
    );

    // Allocation flatness: replay totals are capacity growth, orders of
    // magnitude below event counts; a warm engine's second wave costs at
    // most a few id-table doublings.
    assert!(
        (flat_allocs as usize) < flat_events / 100,
        "flat replay allocations scale with events: {flat_allocs} over {flat_events}"
    );
    assert!(
        (shard_allocs as usize) < shard_events,
        "sharded replay allocates per event: {shard_allocs} over {shard_events}"
    );
    assert!(
        warm_wave_allocs <= 8,
        "warm engine steady state is no longer allocation-free: {warm_wave_allocs}"
    );

    // PR-10 floors. The per-probe persistent resolve must clearly beat
    // a from-scratch solve (local headline ~10×, floor 3× for noisy
    // runners). End-to-end, warm OLA must at minimum not pessimize the
    // replay (the guard stack pins every bisection's tolerance-band
    // tail cold, so the per-event ratio is structurally modest), its
    // warm machinery must dominate events, and OLA-lite must deliver a
    // clear race win over the full cold bisection.
    assert!(
        warm_probe_speedup >= 3.0,
        "persistent warm probe resolve no longer clearly beats cold: {warm_probe_speedup:.2}x"
    );
    assert!(
        ola_end_to_end_ratio >= 0.9,
        "warm-basis OLA pessimizes end-to-end replay: {ola_end_to_end_ratio:.2}x"
    );
    assert!(
        eager_stats.warm_resolves > eager_stats.cold_resolves,
        "eager-warm OLA no longer serves most events warm: {eager_stats:?}"
    );
    assert!(
        lite_ratio >= 2.0,
        "OLA-lite race win over cold OLA collapsed: {lite_ratio:.2}x"
    );
}
