//! **Figure 1(b)** — Motif set divisibility.
//!
//! Paper setup: the full databank is fixed; the ≈300-motif set is
//! partitioned into subsets of varying size; each subset is compared
//! against the whole databank. Expected shape: linear in the motif-subset
//! size but with a *large* fixed overhead (the paper's regression:
//! ≈10.5 s vs 1.1 s for sequence partitioning) — splitting along motifs
//! pays a per-invocation cost because every sub-invocation must process
//! the entire databank once.
//!
//! Here the overhead is reproduced mechanically: each invocation
//! re-parses the full databank from FASTA before scanning (measured
//! series), and the calibrated model reproduces the paper-scale numbers.

use dlflow_bench::{f3, render_csv, render_table};
use dlflow_gripps::cost_model::{linear_regression, CostModel};
use dlflow_gripps::databank::{Databank, DatabankSpec};
use dlflow_gripps::motif::Motif;
use dlflow_gripps::scan::invoke;
use std::time::Instant;

fn main() {
    println!("=== Figure 1(b): motif set divisibility ===\n");

    // ---------- Measured series (scaled-down, real invocations) ----------
    let spec = DatabankSpec {
        n_sequences: 1500,
        mean_len: 350,
        min_len: 40,
        seed: 2005,
    };
    let bank = Databank::generate(&spec);
    let fasta = bank.to_fasta(); // the "databank on disk"
    let motifs = Motif::random_set(40, 6, 1987);
    let sources: Vec<String> = motifs.iter().map(|m| m.source.clone()).collect();
    let iters = 3;

    let mut rows = Vec::new();
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for k in 1..=10 {
        let size = motifs.len() * k / 10;
        let subset: Vec<&str> = sources[..size].iter().map(String::as_str).collect();
        let mut total = 0.0;
        for _ in 0..iters {
            let t0 = Instant::now();
            let rep = invoke(&fasta, &subset).expect("invocation succeeds");
            total += t0.elapsed().as_secs_f64();
            std::hint::black_box(rep.matches.len());
        }
        let mean = total / iters as f64;
        xs.push(size as f64);
        ys.push(mean);
        rows.push(vec![size.to_string(), f3(mean * 1e3)]);
    }
    let (slope, intercept, r2) = linear_regression(&xs, &ys);
    println!(
        "measured (scaled: {} seqs re-parsed per invocation, up to {} motifs, {} iters/point):",
        bank.n_sequences(),
        motifs.len(),
        iters
    );
    println!(
        "{}",
        render_table(&["motif subset", "mean time (ms)"], &rows)
    );
    println!(
        "linear fit: time = {:.3}ms/motif · n + {:.3}ms overhead (r² = {:.4})",
        slope * 1e3,
        intercept * 1e3,
        r2
    );
    let full_scan = ys.last().unwrap();
    println!(
        "overhead is {:.0}% of a full-subset invocation — the motif axis is NOT freely divisible.\n",
        intercept / full_scan * 100.0
    );

    // ---------- Model series (paper scale) ----------
    let model = CostModel::paper_scale();
    let bank_residues = 38_000.0 * 350.0;
    let mut mrows = Vec::new();
    let mut mxs = Vec::new();
    let mut mys = Vec::new();
    for k in 1..=20 {
        let subset = 300.0 * k as f64 / 20.0;
        let t = model.motif_partition_time(subset, bank_residues);
        mxs.push(subset);
        mys.push(t);
        mrows.push(vec![format!("{:.0}", subset), f3(t)]);
    }
    let (ms, mi, mr2) = linear_regression(&mxs, &mys);
    println!("model at paper scale (full bank re-parsed per invocation):");
    println!("{}", render_table(&["motifs", "time (s)"], &mrows));
    println!(
        "linear fit: slope {:.4} s/motif, intercept {:.2} s, r² = {:.6}",
        ms, mi, mr2
    );
    println!("paper reports: linear, intercept ≈ 10.5 s (vs 1.1 s along the sequence axis).");

    println!(
        "\nCSV (model series):\n{}",
        render_csv(&["motifs", "seconds"], &mrows)
    );
}
