//! `trace-smoke` — the engine-throughput CI smoke test.
//!
//! Replays a fixed 10k-request open-arrival trace (Poisson, seed 17)
//! under SWRPT through the incremental engine, asserts the **exact**
//! deterministic event count, and enforces a generous wall-clock budget
//! (default 30 s, override with `--budget-s <secs>` for slow runners) —
//! a few hundred times the local cost, so a regression back to
//! O(m·n_total)-per-event behavior fails loudly while CI noise cannot.
//!
//! Usage: `cargo run --release -p dlflow-bench --bin trace-smoke`

use dlflow_sim::schedulers::Swrpt;
use dlflow_sim::workload::{generate_trace, ArrivalProcess, TraceSpec};
use std::time::Instant;

/// Requests in the smoke trace.
const N: usize = 10_000;
/// The deterministic event count of (trace seed 17, SWRPT): one
/// admission per request plus one integration step per
/// completion/arrival horizon the engine crossed.
const EXPECTED_EVENTS: usize = 27_038;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let budget_s: f64 = args
        .iter()
        .position(|a| a == "--budget-s")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(30.0);

    let trace = generate_trace(&TraceSpec {
        n_requests: N,
        n_machines: 3,
        process: ArrivalProcess::Poisson { rate: 2.0 },
        seed: 17,
        ..Default::default()
    });

    let t0 = Instant::now();
    let stats = trace.replay(&mut Swrpt::new()).expect("replay completes");
    let wall = t0.elapsed().as_secs_f64();

    println!(
        "replayed {} requests in {:.3}s: {} events ({:.0} events/s), {} plans, peak in-flight {}, max stretch {:.3}, utilization {:.3}",
        stats.n_jobs,
        wall,
        stats.n_events,
        stats.n_events as f64 / wall,
        stats.n_plans,
        stats.max_active,
        stats.metrics.max_stretch,
        stats.utilization,
    );

    assert_eq!(stats.n_jobs, N, "every request must complete");
    assert_eq!(
        stats.n_events, EXPECTED_EVENTS,
        "event count drifted — the engine's event semantics changed"
    );
    assert!(
        wall < budget_s,
        "10k-request replay took {wall:.2}s, budget {budget_s}s"
    );
    assert!(stats.metrics.makespan.is_finite() && stats.metrics.makespan > 0.0);
}
