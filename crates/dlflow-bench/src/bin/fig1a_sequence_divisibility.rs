//! **Figure 1(a)** — Sequence databank divisibility.
//!
//! Paper setup: a fixed set of ≈300 motifs; a databank of ≈38 000 protein
//! sequences; block sizes from 1/20 of the databank to the full set; ten
//! iterations per size with randomly drawn subsets; plot block execution
//! time vs block size. Expected shape: near-perfectly linear, with a
//! small intercept (the paper's regression: ≈1.1 s).
//!
//! Here: (1) *measured* series — wall-clock of the real scanner on a
//! scaled-down synthetic databank (full size would take hours on one
//! laptop core; scaling down preserves linearity, which is the claim);
//! (2) *model* series — the calibrated cost model at the paper's full
//! scale, reproducing the 1.1 s intercept and ~100 s full-scan time.

use dlflow_bench::{f3, render_csv, render_table};
use dlflow_gripps::cost_model::{linear_regression, CostModel};
use dlflow_gripps::databank::{Databank, DatabankSpec};
use dlflow_gripps::motif::Motif;
use dlflow_gripps::scan::scan_databank;
use std::time::Instant;

fn main() {
    println!("=== Figure 1(a): sequence databank divisibility ===\n");

    // ---------- Measured series (scaled-down, real scanning) ----------
    let spec = DatabankSpec {
        n_sequences: 1900,
        mean_len: 350,
        min_len: 40,
        seed: 2005,
    };
    let bank = Databank::generate(&spec);
    let motifs = Motif::random_set(30, 6, 1987);
    let iters = 3;

    let mut rows = Vec::new();
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for k in 1..=10 {
        let size = bank.n_sequences() * k / 10;
        let mut total = 0.0f64;
        let mut residues = 0usize;
        for it in 0..iters {
            let subset = bank.random_subset(size, (k * 100 + it) as u64);
            residues = subset.total_residues();
            let t0 = Instant::now();
            let rep = scan_databank(&subset, &motifs);
            total += t0.elapsed().as_secs_f64();
            std::hint::black_box(rep.matches.len());
        }
        let mean = total / iters as f64;
        xs.push(residues as f64);
        ys.push(mean);
        rows.push(vec![size.to_string(), residues.to_string(), f3(mean * 1e3)]);
    }
    let (slope, intercept, r2) = linear_regression(&xs, &ys);
    println!(
        "measured (scaled: {} seqs, {} motifs, {} iters/point):",
        bank.n_sequences(),
        motifs.len(),
        iters
    );
    println!(
        "{}",
        render_table(&["block (seqs)", "residues", "mean time (ms)"], &rows)
    );
    println!(
        "linear fit: time = {:.3e}·residues + {:.4}s   (r² = {:.6})",
        slope, intercept, r2
    );
    println!("→ divisibility confirmed: r² ≈ 1 and intercept ≈ 0 relative to full-scan time.\n");

    // ---------- Model series (paper scale) ----------
    let model = CostModel::paper_scale();
    let full_residues = 38_000.0 * 350.0;
    let n_motifs = 300.0;
    let mut mrows = Vec::new();
    let mut mxs = Vec::new();
    let mut mys = Vec::new();
    for k in 1..=20 {
        let blk = full_residues * k as f64 / 20.0;
        let t = model.sequence_partition_time(blk, n_motifs);
        mxs.push(blk);
        mys.push(t);
        mrows.push(vec![format!("{}/20", k), format!("{:.0}", blk), f3(t)]);
    }
    let (ms, mi, mr2) = linear_regression(&mxs, &mys);
    println!("model at paper scale (38 000 seqs × 350 aa, 300 motifs):");
    println!(
        "{}",
        render_table(&["block", "residues", "time (s)"], &mrows)
    );
    println!(
        "linear fit: slope {:.3e} s/residue, intercept {:.2} s, r² = {:.6}",
        ms, mi, mr2
    );
    println!("paper reports: linear, intercept ≈ 1.1 s, full scan ≈ 100–120 s.");

    println!(
        "\nCSV (model series):\n{}",
        render_csv(
            &["residues", "seconds"],
            &mrows
                .iter()
                .map(|r| vec![r[1].clone(), r[2].clone()])
                .collect::<Vec<_>>()
        )
    );
}
