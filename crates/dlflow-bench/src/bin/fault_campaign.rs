//! `fault-campaign` — the chaos counterpart of the `campaign` bin.
//!
//! Sweeps failure intensity (none → light → moderate → heavy, seeded
//! per-machine MTBF/MTTR fault schedules) × scheduler over the quick
//! tournament scenarios and writes `CAMPAIGN_PR8.json` (every run) plus
//! `CAMPAIGN_PR8.md` (the stretch-ratio degradation table). Every run
//! is scored against the **fault-free** exact Theorem-2 optimum of its
//! scenario, so the table reads directly as the price of the faults.
//!
//! ```text
//! cargo run --release -p dlflow-bench --bin fault-campaign
//! cargo run --release -p dlflow-bench --bin fault-campaign -- --out MYPREFIX
//! ```

use dlflow_sim::chaos::{default_levels, run_fault_campaign, FaultCampaignConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let prefix = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "CAMPAIGN_PR8".to_string());

    let cfg = FaultCampaignConfig {
        levels: default_levels(),
        ..FaultCampaignConfig::quick()
    };
    eprintln!(
        "chaos campaign `{}`: {} platform(s) × {} workload(s) × {} seed(s) × {} level(s) × {} scheduler(s)…",
        cfg.base.name,
        cfg.base.platforms.len(),
        cfg.base.workloads.len(),
        cfg.base.n_seeds,
        cfg.levels.len(),
        cfg.base.schedulers.len()
    );
    let t0 = std::time::Instant::now();
    let report = run_fault_campaign(&cfg).expect("chaos campaign completes");
    eprintln!(
        "{} runs in {:.2}s",
        report.runs.len(),
        t0.elapsed().as_secs_f64()
    );

    print!("{}", report.to_markdown());

    let json_path = format!("{prefix}.json");
    let md_path = format!("{prefix}.md");
    std::fs::write(&json_path, report.to_json()).expect("write chaos JSON");
    std::fs::write(&md_path, report.to_markdown()).expect("write chaos markdown");
    eprintln!("wrote {json_path} and {md_path}");

    // Acceptance invariants of the fault model (PR 8).
    assert!(
        report.levels.len() >= 4,
        "sweep needs >= 4 intensity levels"
    );
    assert_eq!(report.levels[0], "none", "the baseline level leads");
    for r in &report.runs {
        assert!(
            r.run.opt_stretch > 0.0 && r.run.stretch_ratio.is_finite(),
            "every run reports its ratio to the exact fault-free bound"
        );
        assert!(
            r.run.stretch_ratio > 0.99,
            "{} at {}: online max-stretch {} cannot beat the fault-free offline optimum {}",
            r.run.scheduler,
            r.level,
            r.run.max_stretch,
            r.run.opt_stretch
        );
        if r.level == "none" {
            assert_eq!(r.n_fault_events, 0, "baseline level must inject nothing");
        }
    }
    assert!(
        report
            .runs
            .iter()
            .any(|r| r.level == "heavy" && r.n_fault_events > 0),
        "the heavy level must actually inject faults"
    );
}
