//! `chaos-smoke` — the fault-tolerance CI smoke test.
//!
//! Replays the engine-throughput smoke trace (10k Poisson arrivals,
//! seed 17) with a seeded per-machine failure/recovery schedule layered
//! on top, twice:
//!
//! 1. **straight** — one uninterrupted drain;
//! 2. **interrupted** — snapshotting every few thousand events,
//!    restoring each snapshot into a *fresh* scheduler (a simulated
//!    process restart), and continuing from the restored pair.
//!
//! Both runs must complete every request and produce **bit-identical**
//! completion times, and each snapshot must be a fixed point
//! (`restore → snapshot` reproduces the text byte for byte). A generous
//! wall-clock budget (default 30 s, `--budget-s <secs>` to override)
//! keeps the engine's fault path honest about asymptotics.
//!
//! Usage: `cargo run --release -p dlflow-bench --bin chaos-smoke`

use dlflow_sim::engine::{Engine, StepOutcome};
use dlflow_sim::schedulers::Swrpt;
use dlflow_sim::workload::{generate_trace, ArrivalProcess, FaultProcess, Trace, TraceSpec};
use std::time::Instant;

/// Requests in the smoke trace (same base trace as `trace-smoke`).
const N: usize = 10_000;
/// Snapshot cadence of the interrupted run, in engine events.
const SNAPSHOT_EVERY: usize = 4_000;

fn smoke_trace() -> Trace {
    generate_trace(&TraceSpec {
        n_requests: N,
        n_machines: 3,
        process: ArrivalProcess::Poisson { rate: 2.0 },
        seed: 17,
        faults: Some(FaultProcess {
            mtbf: 600.0,
            mttr: 30.0,
            horizon: 5_000.0,
            seed: 1717,
        }),
        ..Default::default()
    })
}

fn load(trace: &Trace) -> Engine {
    let mut eng = Engine::new(trace.n_machines());
    for e in &trace.platform_events {
        eng.push_platform_event(*e).expect("valid platform event");
    }
    for k in 0..trace.len() {
        eng.push_arrival(trace.job_spec(k)).expect("valid arrival");
    }
    eng
}

fn completions_of(eng: &mut Engine) -> Vec<(usize, u64)> {
    let mut out: Vec<(usize, u64)> = eng
        .take_completed()
        .into_iter()
        .map(|c| (c.id, c.completion.to_bits()))
        .collect();
    out.sort_unstable();
    out
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let budget_s: f64 = args
        .iter()
        .position(|a| a == "--budget-s")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(30.0);

    let trace = smoke_trace();
    let n_faults = trace.platform_events.len();
    assert!(n_faults > 0, "the smoke schedule must inject faults");

    let t0 = Instant::now();

    // Straight run.
    let mut policy = Swrpt::new();
    let mut eng = load(&trace);
    eng.drain(&mut policy).expect("straight run completes");
    let straight_events = eng.n_events();
    let reference = completions_of(&mut eng);

    // Interrupted run: snapshot → fresh policy → restore → continue.
    let mut policy = Swrpt::new();
    let mut eng = load(&trace);
    let mut n_restores = 0usize;
    let mut last_snapshot_at = usize::MAX;
    loop {
        if eng.step(&mut policy).expect("interrupted run steps") == StepOutcome::Idle {
            break;
        }
        let at = eng.n_events();
        if at.is_multiple_of(SNAPSHOT_EVERY) && at != last_snapshot_at {
            last_snapshot_at = at;
            let snap = eng.snapshot(&policy);
            let mut revived = Swrpt::new();
            let restored = Engine::restore(&snap, &mut revived).expect("snapshot restores");
            assert_eq!(
                restored.snapshot(&revived),
                snap,
                "restore → snapshot must be a fixed point"
            );
            eng = restored;
            policy = revived;
            n_restores += 1;
        }
    }
    let interrupted = completions_of(&mut eng);
    let wall = t0.elapsed().as_secs_f64();

    println!(
        "chaos-smoke: {} requests, {} platform events, {} engine events, {} restores, {:.3}s",
        N, n_faults, straight_events, n_restores, wall
    );

    assert_eq!(
        reference.len(),
        N,
        "straight run must complete every request"
    );
    assert!(n_restores > 0, "the interrupted run must actually restore");
    assert_eq!(
        interrupted, reference,
        "interrupted completions must be bit-identical to the straight run"
    );
    assert!(
        wall < budget_s,
        "chaos smoke took {wall:.2}s, budget {budget_s}s"
    );
}
