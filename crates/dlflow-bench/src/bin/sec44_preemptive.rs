//! **§4.4 validation** — preemptive (non-divisible) max weighted flow via
//! System (5) + the Lawler–Labetoulle reconstruction.
//!
//! Reports, per instance: the divisible vs preemptive optimum gap, the
//! number of preemptions and migrations in the rebuilt schedule, the
//! phase count of the Gonzalez–Sahni decomposition vs its (m+n)² bound,
//! and full validation (a job never on two machines at once).

use dlflow_bench::{f3, render_table};
use dlflow_core::decompose::{decompose_interval, verify_phases};
use dlflow_core::maxflow::{min_max_weighted_flow_divisible, min_max_weighted_flow_preemptive};
use dlflow_core::validate::validate;
use dlflow_num::Rat;
use dlflow_sim::workload::{generate, WorkloadSpec};
use std::time::Instant;

fn main() {
    println!("=== §4.4: preemption without divisibility ===\n");

    // ---------- per-instance comparison ----------
    println!("divisible vs preemptive optima (exact arithmetic):");
    let mut rows = Vec::new();
    for seed in 0..8u64 {
        let inst = generate(&WorkloadSpec {
            n_jobs: 4,
            n_machines: 2,
            seed: 200 + seed,
            ..Default::default()
        })
        .map_scalar(|v| Rat::from_ratio((v * 16.0).round() as i64, 16));
        let div = min_max_weighted_flow_divisible(&inst);
        let pre = min_max_weighted_flow_preemptive(&inst);
        validate(&inst, &div.schedule).unwrap();
        validate(&inst, &pre.schedule).unwrap(); // includes the single-machine rule
        assert!(div.optimum <= pre.optimum);
        let gap = if div.optimum.is_positive() {
            pre.optimum.div_ref(&div.optimum).to_f64()
        } else {
            1.0
        };
        rows.push(vec![
            seed.to_string(),
            format!("{:.4}", div.optimum.to_f64()),
            format!("{:.4}", pre.optimum.to_f64()),
            f3(gap),
            pre.schedule.n_preemptions(inst.n_jobs()).to_string(),
            pre.schedule.n_slices().to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "seed",
                "F* divisible",
                "F* preemptive",
                "pre/div",
                "preemptions",
                "slices"
            ],
            &rows
        )
    );
    println!("gap ≥ 1 always; = 1 when no job would benefit from simultaneous execution.\n");

    // ---------- decomposition micro-study ----------
    println!("Gonzalez–Sahni decomposition phase counts vs (m+n)² bound:");
    let mut rows = Vec::new();
    for &(m, n) in &[(2usize, 2usize), (2, 4), (3, 3), (3, 6), (4, 8)] {
        // Dense balanced-ish work matrix with row/col sums ≤ len.
        let len = Rat::from_i64((n * m) as i64);
        let work: Vec<Vec<Rat>> = (0..m)
            .map(|i| {
                (0..n)
                    .map(|j| Rat::from_ratio(((i * 7 + j * 3) % 5) as i64 + 1, 2))
                    .collect()
            })
            .collect();
        let t0 = Instant::now();
        let phases = decompose_interval(&work, &len);
        let dt = t0.elapsed().as_secs_f64();
        verify_phases(&work, &len, &phases).unwrap();
        let bound = (m + n) * (m + n);
        assert!(phases.len() <= bound);
        rows.push(vec![
            format!("{m}×{n}"),
            phases.len().to_string(),
            bound.to_string(),
            f3(dt * 1e3),
        ]);
    }
    println!(
        "{}",
        render_table(&["matrix", "phases", "(m+n)² bound", "time (ms)"], &rows)
    );
    println!("\nall preemptive schedules validated: no job ever on two machines at once,");
    println!("work conservation per (machine, job) pair exact to the rational.");
}
