//! **Theorem 1 validation** — divisible makespan minimization is
//! polynomial (§4.1).
//!
//! (a) Structured families with hand-computable optima: the LP must match
//!     the analytic value exactly (exact rational arithmetic).
//! (b) Random instances: LP optimum ≥ analytic lower bound, schedules
//!     validate.
//! (c) Scaling table: wall-clock vs n and m for the f64 pipeline —
//!     polynomial growth, empirically.

use dlflow_bench::{f3, render_table};
use dlflow_core::instance::InstanceBuilder;
use dlflow_core::makespan::{makespan_lower_bound, min_makespan};
use dlflow_core::validate::validate;
use dlflow_num::Rat;
use dlflow_sim::workload::{generate, WorkloadSpec};
use std::time::Instant;

fn main() {
    println!("=== Theorem 1: divisible makespan minimization ===\n");

    // ---------- (a) structured families, exact arithmetic ----------
    println!("structured instances (exact arithmetic):");
    let mut rows = Vec::new();

    // Family 1: single job, k identical machines of cost c → C = c/k.
    for k in 1..=4usize {
        let mut b = InstanceBuilder::<Rat>::new();
        b.job(Rat::zero(), Rat::one());
        for _ in 0..k {
            b.machine(vec![Some(Rat::from_i64(12))]);
        }
        let inst = b.build().unwrap();
        let out = min_makespan(&inst);
        validate(&inst, &out.schedule).unwrap();
        let expect = Rat::from_ratio(12, k as i64);
        assert_eq!(out.makespan, expect);
        rows.push(vec![
            format!("1 job / {k} machines (c=12)"),
            out.makespan.to_string(),
            expect.to_string(),
            "exact match".into(),
        ]);
    }

    // Family 2: n identical jobs, single machine, releases 0 → n·c.
    for n in [2i64, 4, 8] {
        let mut b = InstanceBuilder::<Rat>::new();
        for _ in 0..n {
            b.job(Rat::zero(), Rat::one());
        }
        b.machine((0..n).map(|_| Some(Rat::from_i64(3))).collect());
        let inst = b.build().unwrap();
        let out = min_makespan(&inst);
        validate(&inst, &out.schedule).unwrap();
        let expect = Rat::from_i64(3 * n);
        assert_eq!(out.makespan, expect);
        rows.push(vec![
            format!("{n} jobs / 1 machine (c=3)"),
            out.makespan.to_string(),
            expect.to_string(),
            "exact match".into(),
        ]);
    }

    // Family 3: harmonic split — 1 job, machines 2 and 6 → 3/2.
    {
        let mut b = InstanceBuilder::<Rat>::new();
        b.job(Rat::zero(), Rat::one());
        b.machine(vec![Some(Rat::from_i64(2))]);
        b.machine(vec![Some(Rat::from_i64(6))]);
        let inst = b.build().unwrap();
        let out = min_makespan(&inst);
        assert_eq!(out.makespan, Rat::from_ratio(3, 2));
        rows.push(vec![
            "1 job / machines c=2,6".into(),
            out.makespan.to_string(),
            "3/2".into(),
            "exact match".into(),
        ]);
    }
    println!(
        "{}",
        render_table(&["family", "LP optimum", "analytic", "verdict"], &rows)
    );

    // ---------- (b) random instances, bound check ----------
    println!("random instances (f64): LP optimum vs analytic lower bound");
    let mut rows = Vec::new();
    for seed in 0..8u64 {
        let inst = generate(&WorkloadSpec {
            n_jobs: 8,
            n_machines: 3,
            seed,
            ..Default::default()
        });
        let out = min_makespan(&inst);
        validate(&inst, &out.schedule).unwrap();
        let lb = makespan_lower_bound(&inst);
        assert!(lb <= out.makespan + 1e-7);
        rows.push(vec![
            seed.to_string(),
            f3(out.makespan),
            f3(lb),
            f3(out.makespan / lb.max(1e-12)),
        ]);
    }
    println!(
        "{}",
        render_table(&["seed", "C_max*", "lower bound", "ratio"], &rows)
    );

    // ---------- (c) scaling ----------
    println!("scaling (f64 pipeline; time per solve):");
    let mut rows = Vec::new();
    for &(n, m) in &[(4usize, 2usize), (8, 2), (12, 3), (16, 3), (24, 4), (32, 4)] {
        let inst = generate(&WorkloadSpec {
            n_jobs: n,
            n_machines: m,
            seed: 1,
            ..Default::default()
        });
        let t0 = Instant::now();
        let out = min_makespan(&inst);
        let dt = t0.elapsed().as_secs_f64();
        std::hint::black_box(out.makespan);
        rows.push(vec![n.to_string(), m.to_string(), f3(dt * 1e3)]);
    }
    println!(
        "{}",
        render_table(&["n jobs", "m machines", "solve (ms)"], &rows)
    );
    println!("growth is polynomial (LP size O(n²m)); no combinatorial blow-up.");
}
