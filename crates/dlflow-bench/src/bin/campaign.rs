//! `campaign` — the paper's §6-style scheduler tournament, batched.
//!
//! Runs the built-in quick-mode campaign (1 platform family × 1 workload
//! family × 20 seeds × 6 schedulers, exact Theorem-2 yardstick per run)
//! and writes `CAMPAIGN_PR4.json` (machine-readable, every run) plus
//! `CAMPAIGN_PR4.md` (aggregate table + head-to-head win matrix).
//!
//! ```text
//! cargo run --release -p dlflow-bench --bin campaign            # quick mode
//! cargo run --release -p dlflow-bench --bin campaign -- --full  # bigger sweep
//! cargo run --release -p dlflow-bench --bin campaign -- --config my.campaign
//! ```
//!
//! `--out <prefix>` overrides the `CAMPAIGN_PR4` output prefix. Custom
//! configs use the format documented in `docs/FORMATS.md`.

use dlflow_sim::campaign::{parse_campaign, run_campaign, CampaignConfig};

/// The `--full` sweep: two platform families × two workload families.
const FULL_CONFIG: &str = "\
name full
seeds 20
seed-base 1
sigbits 12
weights stretch
platform cluster servers=4 banks=5 heterogeneity=3
platform wide    servers=8 banks=10 heterogeneity=5
workload steady  jobs=8 load=1.2
workload surge   jobs=14 load=2.0
scheduler mct
scheduler fifo
scheduler srpt
scheduler swrpt
scheduler rr
scheduler wage
scheduler edf
scheduler ola
scheduler ola throttle=30
scheduler olalite
scheduler olalite alpha=1.2
";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let get = |flag: &str| -> Option<String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let prefix = get("--out").unwrap_or_else(|| "CAMPAIGN_PR4".to_string());

    let custom = get("--config");
    let cfg = if let Some(path) = &custom {
        let text =
            std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
        parse_campaign(&text).unwrap_or_else(|e| panic!("{path}: {e}"))
    } else if args.iter().any(|a| a == "--full") {
        parse_campaign(FULL_CONFIG).expect("built-in full config parses")
    } else {
        CampaignConfig::quick()
    };

    eprintln!(
        "campaign `{}`: {} platform(s) × {} workload(s) × {} seed(s) × {} scheduler(s)…",
        cfg.name,
        cfg.platforms.len(),
        cfg.workloads.len(),
        cfg.n_seeds,
        cfg.schedulers.len()
    );
    let t0 = std::time::Instant::now();
    let report = run_campaign(&cfg).expect("campaign completes");
    eprintln!(
        "{} runs in {:.2}s",
        report.runs.len(),
        t0.elapsed().as_secs_f64()
    );

    print!("{}", report.to_markdown());

    let json_path = format!("{prefix}.json");
    let md_path = format!("{prefix}.md");
    std::fs::write(&json_path, report.to_json()).expect("write campaign JSON");
    std::fs::write(&md_path, report.to_markdown()).expect("write campaign markdown");
    eprintln!("wrote {json_path} and {md_path}");

    // Acceptance invariants of the campaign engine (PR 4). The shape
    // checks only apply to the built-in configs — a custom --config may
    // legitimately be smaller.
    if custom.is_none() {
        assert!(
            report.schedulers.len() >= 3,
            "tournament needs >= 3 schedulers"
        );
        assert!(report.n_seeds >= 20, "tournament needs >= 20 seeds");
        assert!(
            report.schedulers.iter().any(|s| s.starts_with("OLA")),
            "OfflineAdapt must be an entrant"
        );
    }
    for r in &report.runs {
        assert!(
            r.opt_stretch > 0.0 && r.stretch_ratio.is_finite(),
            "every run reports its ratio to the exact Theorem-2 bound"
        );
        assert!(
            r.stretch_ratio > 0.99,
            "{}: online max-stretch {} cannot beat the exact offline optimum {}",
            r.scheduler,
            r.max_stretch,
            r.opt_stretch
        );
    }
}
