//! **§3 objective discussion, quantified** — why the paper optimizes
//! *max weighted flow*:
//!
//! * "Optimizing the average (or total) flow time suffers from the
//!   limitation that **starvation** is possible, i.e., some jobs may be
//!   delayed to an unbounded extent" — we reproduce this with SRPT (the
//!   canonical average-flow optimizer) on a stream of short jobs that
//!   starves one long job: its max flow grows with the stream length
//!   while its mean flow stays flat.
//! * "minimization of the maximum flow time does not exhibit this
//!   drawback, but it **tends to favor long jobs** to the detriment of
//!   short ones" — visible as the short jobs' stretch under a max-flow
//!   oriented policy.
//! * "We therefore focus on the maximum **weighted** flow time, using
//!   job weights to offset the bias" — with stretch weights
//!   (`w_j = 1/W_j`), the exact Theorem-2 optimum keeps *every* job's
//!   stretch bounded.

use dlflow_bench::{f3, render_table};
use dlflow_core::instance::{Instance, InstanceBuilder};
use dlflow_core::maxflow::min_max_weighted_flow_divisible;
use dlflow_sim::engine::{simulate, RunMetrics};
use dlflow_sim::schedulers::Srpt;

/// One long job released at 0, then a stream of `k` short jobs arriving
/// just fast enough that SRPT always prefers them.
fn starvation_instance(k: usize) -> Instance<f64> {
    let mut b = InstanceBuilder::new();
    b.job(0.0, 1.0); // the long job: cost 10
    for i in 0..k {
        b.job(0.5 + i as f64, 1.0); // short jobs: cost 1, arriving every 1s
    }
    let mut costs = vec![Some(10.0)];
    costs.extend(std::iter::repeat_n(Some(1.0), k));
    b.machine(costs);
    b.build().unwrap()
}

fn main() {
    println!("=== §3: the choice of objective function, reproduced ===\n");

    // ---------- starvation of the long job under SRPT ----------
    println!("SRPT (≈ average-flow optimal) on 1 long job + k short jobs, one machine:");
    let mut rows = Vec::new();
    let mut prev_long_flow = 0.0;
    for k in [2usize, 4, 8, 16, 32] {
        let inst = starvation_instance(k);
        let res = simulate(&inst, &mut Srpt::new()).unwrap();
        let m = RunMetrics::from_completions(&inst, &res.completions);
        let long_flow = res.completions[0] - 0.0;
        rows.push(vec![
            k.to_string(),
            f3(long_flow),
            f3(m.mean_flow),
            f3(m.max_stretch),
        ]);
        assert!(
            long_flow >= prev_long_flow,
            "long job's flow must not shrink as the stream grows"
        );
        prev_long_flow = long_flow;
    }
    println!(
        "{}",
        render_table(
            &[
                "short jobs k",
                "long job's flow",
                "mean flow",
                "max stretch"
            ],
            &rows
        )
    );
    println!("the long job's flow grows LINEARLY in k (starvation) while the mean stays small —");
    println!("exactly the §3 argument against optimizing average flow.\n");

    // ---------- the weighted-flow cure ----------
    println!("Theorem 2 with stretch weights (w_j = 1/W_j) on the same instances:");
    let mut rows = Vec::new();
    for k in [2usize, 4, 8] {
        let inst = starvation_instance(k).with_stretch_weights();
        let out = min_max_weighted_flow_divisible(&inst);
        // The optimum IS the max stretch; compute per-job stretches too.
        let c = out.schedule.completion_times(inst.n_jobs());
        let long_stretch = (c[0].unwrap() - inst.job(0).release) / 10.0;
        let worst_short = (1..inst.n_jobs())
            .map(|j| c[j].unwrap() - inst.job(j).release)
            .fold(0.0f64, f64::max);
        rows.push(vec![
            k.to_string(),
            f3(out.optimum),
            f3(long_stretch),
            f3(worst_short),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "short jobs k",
                "optimal max stretch",
                "long job stretch",
                "worst short flow"
            ],
            &rows
        )
    );
    println!("with stretch weights the optimum balances both populations: the long job is no");
    println!("longer starved, and no short job pays more than the shared optimal stretch.");
}
