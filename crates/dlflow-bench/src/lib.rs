//! # dlflow-bench — experiment harness
//!
//! One binary per artefact of the paper's evaluation (see the experiment
//! index in `EXPERIMENTS.md`), plus Criterion microbenches:
//!
//! | binary | reproduces |
//! |--------|-----------|
//! | `fig1a_sequence_divisibility` | Figure 1(a): block time vs sequence block size |
//! | `fig1b_motif_divisibility` | Figure 1(b): block time vs motif subset size |
//! | `online_vs_mct` | the conclusion's online simulation claim |
//! | `thm1_makespan` | Theorem 1 validation + polynomial scaling |
//! | `thm2_maxflow` | Theorem 2 validation, milestones, optimality chain |
//! | `sec44_preemptive` | §4.4 reconstruction statistics |
//! | `campaign` | the §6 tournament → `CAMPAIGN_PR4.json` / `.md` |
//! | `bench-report` | quick-mode perf medians → `BENCH_PR10.json` |
//!
//! This library holds the small table/CSV rendering helpers they share.
//!
//! ## Example
//!
//! ```
//! use dlflow_bench::{f3, render_table};
//!
//! let table = render_table(
//!     &["policy", "mean ratio"],
//!     &[
//!         vec!["MCT".into(), f3(5.646)],
//!         vec!["OLA".into(), f3(1.003)],
//!     ],
//! );
//! assert!(table.lines().count() == 4 && table.contains("OLA"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Renders an aligned text table: a header row then data rows.
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let ncol = header.len();
    let mut width: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (k, cell) in row.iter().enumerate().take(ncol) {
            width[k] = width[k].max(cell.len());
        }
    }
    let mut out = String::new();
    let line = |cells: &[String], width: &[usize], out: &mut String| {
        for (k, c) in cells.iter().enumerate() {
            if k > 0 {
                out.push_str("  ");
            }
            out.push_str(&format!("{:>w$}", c, w = width[k]));
        }
        out.push('\n');
    };
    line(
        &header.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
        &width,
        &mut out,
    );
    let total: usize = width.iter().sum::<usize>() + 2 * (ncol - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        line(row, &width, &mut out);
    }
    out
}

/// Renders rows as CSV (for plotting).
pub fn render_csv(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = header.join(",");
    out.push('\n');
    for row in rows {
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

/// Formats a float with 3 decimals.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a float with 1 decimal.
pub fn f1(v: f64) -> String {
    format!("{v:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = render_table(
            &["a", "bb"],
            &[
                vec!["1".into(), "2".into()],
                vec!["10".into(), "200".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains('a') && lines[0].contains("bb"));
        assert!(lines[1].starts_with('-'));
    }

    #[test]
    fn csv_rendering() {
        let c = render_csv(&["x", "y"], &[vec!["1".into(), "2".into()]]);
        assert_eq!(c, "x,y\n1,2\n");
    }
}
