//! End-to-end benchmarks of the paper's algorithms (Theorem 1, Theorem 2,
//! §4.4 decomposition, milestone enumeration, bipartite matching).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dlflow_core::decompose::decompose_interval;
use dlflow_core::makespan::min_makespan;
use dlflow_core::matching::hopcroft_karp;
use dlflow_core::maxflow::{min_max_weighted_flow_divisible, min_max_weighted_flow_preemptive};
use dlflow_core::milestones::milestones;
use dlflow_num::Rat;
use dlflow_sim::workload::{generate, WorkloadSpec};

fn bench_milestones(c: &mut Criterion) {
    let mut g = c.benchmark_group("milestones");
    for n in [8usize, 16, 32, 64] {
        let inst = generate(&WorkloadSpec {
            n_jobs: n,
            n_machines: 3,
            seed: 3,
            ..Default::default()
        });
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| std::hint::black_box(milestones(&inst).len()));
        });
    }
    g.finish();
}

fn bench_theorem1(c: &mut Criterion) {
    let mut g = c.benchmark_group("theorem1_min_makespan");
    g.sample_size(20);
    for n in [4usize, 8, 16] {
        let inst = generate(&WorkloadSpec {
            n_jobs: n,
            n_machines: 3,
            seed: 4,
            ..Default::default()
        });
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| std::hint::black_box(min_makespan(&inst).makespan));
        });
    }
    g.finish();
}

fn bench_theorem2(c: &mut Criterion) {
    let mut g = c.benchmark_group("theorem2_min_maxflow");
    g.sample_size(10);
    for n in [4usize, 8, 12] {
        let inst = generate(&WorkloadSpec {
            n_jobs: n,
            n_machines: 3,
            seed: 5,
            ..Default::default()
        });
        g.bench_with_input(BenchmarkId::new("divisible_f64", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(min_max_weighted_flow_divisible(&inst).optimum));
        });
    }
    // The exact pipeline on a small instance: the headline cost of exactness.
    let inst4 = generate(&WorkloadSpec {
        n_jobs: 4,
        n_machines: 2,
        seed: 6,
        ..Default::default()
    })
    .map_scalar(|v| Rat::from_ratio((v * 16.0).round() as i64, 16));
    g.bench_function("divisible_exact_n4", |b| {
        b.iter(|| std::hint::black_box(min_max_weighted_flow_divisible(&inst4).optimum.to_f64()));
    });
    g.bench_function("preemptive_exact_n4", |b| {
        b.iter(|| std::hint::black_box(min_max_weighted_flow_preemptive(&inst4).optimum.to_f64()));
    });
    g.finish();
}

fn bench_decompose(c: &mut Criterion) {
    let mut g = c.benchmark_group("gonzalez_sahni_decompose");
    for &(m, n) in &[(2usize, 4usize), (4, 8), (6, 12)] {
        let len = (n * m) as f64;
        let work: Vec<Vec<f64>> = (0..m)
            .map(|i| {
                (0..n)
                    .map(|j| (((i * 7 + j * 3) % 5) + 1) as f64 / 2.0)
                    .collect()
            })
            .collect();
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{m}x{n}")),
            &(m, n),
            |b, _| {
                b.iter(|| std::hint::black_box(decompose_interval(&work, &len).len()));
            },
        );
    }
    g.finish();
}

fn bench_matching(c: &mut Criterion) {
    let mut g = c.benchmark_group("hopcroft_karp");
    for n in [16usize, 64, 256] {
        // Ring + chords graph: perfect matching exists.
        let adj: Vec<Vec<usize>> = (0..n).map(|u| vec![u, (u + 1) % n, (u + 7) % n]).collect();
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| std::hint::black_box(hopcroft_karp(n, n, &adj).0));
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_milestones,
    bench_theorem1,
    bench_theorem2,
    bench_decompose,
    bench_matching
);
criterion_main!(benches);
