//! Simplex solver benchmarks: f64 vs exact rational arithmetic on the
//! paper's LP shapes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dlflow_core::lp_build::{build_deadline_lp, build_makespan_lp};
use dlflow_lp::solve;
use dlflow_num::Rat;
use dlflow_sim::workload::{generate, WorkloadSpec};

fn bench_system1(c: &mut Criterion) {
    let mut g = c.benchmark_group("system1_makespan_lp");
    for n in [4usize, 8, 16] {
        let inst = generate(&WorkloadSpec {
            n_jobs: n,
            n_machines: 3,
            seed: 1,
            ..Default::default()
        });
        g.bench_with_input(BenchmarkId::new("f64", n), &n, |b, _| {
            b.iter(|| {
                let built = build_makespan_lp(&inst);
                std::hint::black_box(solve(&built.lp).status)
            });
        });
        if n <= 8 {
            let exact = inst.map_scalar(|v| Rat::from_ratio((v * 16.0).round() as i64, 16));
            g.bench_with_input(BenchmarkId::new("exact", n), &n, |b, _| {
                b.iter(|| {
                    let built = build_makespan_lp(&exact);
                    std::hint::black_box(solve(&built.lp).status)
                });
            });
        }
    }
    g.finish();
}

fn bench_system2(c: &mut Criterion) {
    let mut g = c.benchmark_group("system2_deadline_lp");
    for n in [4usize, 8, 16] {
        let inst = generate(&WorkloadSpec {
            n_jobs: n,
            n_machines: 3,
            seed: 2,
            ..Default::default()
        });
        let deadlines: Vec<f64> = (0..n).map(|j| inst.job(j).release + 100.0).collect();
        g.bench_with_input(BenchmarkId::new("divisible", n), &n, |b, _| {
            b.iter(|| {
                let built = build_deadline_lp(&inst, &deadlines, false);
                std::hint::black_box(solve(&built.lp).status)
            });
        });
        g.bench_with_input(BenchmarkId::new("preemptive_5b", n), &n, |b, _| {
            b.iter(|| {
                let built = build_deadline_lp(&inst, &deadlines, true);
                std::hint::black_box(solve(&built.lp).status)
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_system1, bench_system2);
criterion_main!(benches);
