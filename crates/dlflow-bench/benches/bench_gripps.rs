//! GriPPS engine benchmarks: scanner throughput, FASTA parsing (the
//! Figure 1(b) overhead), motif compilation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dlflow_gripps::databank::{Databank, DatabankSpec};
use dlflow_gripps::motif::Motif;
use dlflow_gripps::scan::scan_databank;
use dlflow_gripps::sequence::parse_fasta;

fn bench_scan(c: &mut Criterion) {
    let mut g = c.benchmark_group("scan_throughput");
    g.sample_size(10);
    let bank = Databank::generate(&DatabankSpec {
        n_sequences: 400,
        mean_len: 300,
        min_len: 40,
        seed: 9,
    });
    let residues = bank.total_residues() as u64;
    for n_motifs in [5usize, 20] {
        let motifs = Motif::random_set(n_motifs, 6, 77);
        g.throughput(Throughput::Elements(residues * n_motifs as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n_motifs), &n_motifs, |b, _| {
            b.iter(|| std::hint::black_box(scan_databank(&bank, &motifs).matches.len()));
        });
    }
    g.finish();
}

fn bench_fasta(c: &mut Criterion) {
    let mut g = c.benchmark_group("fasta_parse");
    g.sample_size(20);
    let bank = Databank::generate(&DatabankSpec {
        n_sequences: 2000,
        mean_len: 300,
        min_len: 40,
        seed: 10,
    });
    let text = bank.to_fasta();
    g.throughput(Throughput::Bytes(text.len() as u64));
    g.bench_function("parse_2000_seqs", |b| {
        b.iter(|| std::hint::black_box(parse_fasta(&text).unwrap().len()));
    });
    g.finish();
}

fn bench_motif_parse(c: &mut Criterion) {
    let sources: Vec<String> = Motif::random_set(100, 8, 5)
        .iter()
        .map(|m| m.source.clone())
        .collect();
    c.bench_function("motif_parse_100", |b| {
        b.iter(|| {
            let n: usize = sources
                .iter()
                .map(|s| Motif::parse(s).unwrap().elements.len())
                .sum();
            std::hint::black_box(n)
        });
    });
}

criterion_group!(benches, bench_scan, bench_fasta, bench_motif_parse);
criterion_main!(benches);
