//! Microbenchmarks of the bignum substrate: the cost of exactness.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dlflow_num::{Rat, UBig};

fn mk_ubig(limbs: usize, seed: u64) -> UBig {
    let mut state = seed | 1;
    let v: Vec<u64> = (0..limbs)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state
        })
        .collect();
    UBig::from_limbs(v)
}

fn bench_ubig(c: &mut Criterion) {
    let mut g = c.benchmark_group("ubig");
    for limbs in [4usize, 16, 64] {
        let a = mk_ubig(limbs, 1);
        let b = mk_ubig(limbs, 2);
        g.bench_with_input(BenchmarkId::new("mul", limbs), &limbs, |bch, _| {
            bch.iter(|| std::hint::black_box(a.mul(&b)));
        });
        let big = a.mul(&b);
        g.bench_with_input(BenchmarkId::new("div_rem", limbs), &limbs, |bch, _| {
            bch.iter(|| std::hint::black_box(big.div_rem(&b)));
        });
        g.bench_with_input(BenchmarkId::new("gcd", limbs), &limbs, |bch, _| {
            bch.iter(|| std::hint::black_box(a.gcd(&b)));
        });
    }
    g.finish();
}

fn bench_rat(c: &mut Criterion) {
    let mut g = c.benchmark_group("rat");
    let a = Rat::from_ratio(123456789, 987654321);
    let b = Rat::from_ratio(555555557, 333333331);
    g.bench_function("add", |bch| {
        bch.iter(|| std::hint::black_box(a.add_ref(&b)))
    });
    g.bench_function("mul", |bch| {
        bch.iter(|| std::hint::black_box(a.mul_ref(&b)))
    });
    g.bench_function("cmp", |bch| bch.iter(|| std::hint::black_box(a < b)));
    g.bench_function("to_f64", |bch| {
        bch.iter(|| std::hint::black_box(a.to_f64()))
    });
    g.finish();
}

criterion_group!(benches, bench_ubig, bench_rat);
criterion_main!(benches);
