//! Simulator benchmarks: full online runs per policy (the cost of the
//! conclusion experiment's inner loop), plus the large-trace engine
//! throughput suite — the scaling curve of the incremental engine vs the
//! legacy dense-allocation batch loop.

use criterion::{criterion_group, criterion_main, Criterion};
use dlflow_sim::engine::{simulate, simulate_dense};
use dlflow_sim::schedulers::{Mct, OfflineAdapt, Srpt, Swrpt};
use dlflow_sim::workload::{generate, generate_trace, ArrivalProcess, TraceSpec, WorkloadSpec};

fn bench_policies(c: &mut Criterion) {
    let mut g = c.benchmark_group("online_run");
    g.sample_size(10);
    let inst = generate(&WorkloadSpec {
        n_jobs: 10,
        n_machines: 3,
        seed: 13,
        ..Default::default()
    });
    g.bench_function("mct", |b| {
        b.iter(|| std::hint::black_box(simulate(&inst, &mut Mct::new()).unwrap().n_events));
    });
    g.bench_function("srpt", |b| {
        b.iter(|| std::hint::black_box(simulate(&inst, &mut Srpt::new()).unwrap().n_events));
    });
    g.bench_function("ola", |b| {
        b.iter(|| {
            std::hint::black_box(simulate(&inst, &mut OfflineAdapt::new()).unwrap().n_events)
        });
    });
    g.finish();
}

/// A stable-load synthetic trace: Poisson arrivals below fleet capacity,
/// so the active set stays small no matter how long the trace runs —
/// throughput then measures the per-event core, not queue blow-up.
fn trace(n: usize) -> dlflow_sim::workload::Trace {
    generate_trace(&TraceSpec {
        n_requests: n,
        n_machines: 3,
        process: ArrivalProcess::Poisson { rate: 2.0 },
        seed: 17,
        ..Default::default()
    })
}

fn bench_engine_trace(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_trace");
    g.sample_size(10);
    for n in [1_000usize, 10_000, 100_000] {
        let t = trace(n);
        g.bench_function(format!("swrpt_{n}"), |b| {
            b.iter(|| std::hint::black_box(t.replay(&mut Swrpt::new()).unwrap().n_events));
        });
    }
    g.finish();
}

fn bench_dense_vs_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("dense_vs_engine");
    g.sample_size(10);
    // The head-to-head at n = 5k: same requests, closed instance for the
    // legacy loop, streamed trace for the engine.
    let t = trace(5_000);
    let inst = t.to_instance().expect("generated trace materializes");
    g.bench_function("engine_5k", |b| {
        b.iter(|| std::hint::black_box(t.replay(&mut Swrpt::new()).unwrap().n_events));
    });
    g.bench_function("legacy_dense_5k", |b| {
        b.iter(|| std::hint::black_box(simulate_dense(&inst, &mut Swrpt::new()).unwrap().n_events));
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_policies,
    bench_engine_trace,
    bench_dense_vs_engine
);
criterion_main!(benches);
