//! Simulator benchmarks: full online runs per policy (the cost of the
//! conclusion experiment's inner loop).

use criterion::{criterion_group, criterion_main, Criterion};
use dlflow_sim::engine::simulate;
use dlflow_sim::schedulers::{Mct, OfflineAdapt, Srpt};
use dlflow_sim::workload::{generate, WorkloadSpec};

fn bench_policies(c: &mut Criterion) {
    let mut g = c.benchmark_group("online_run");
    g.sample_size(10);
    let inst = generate(&WorkloadSpec {
        n_jobs: 10,
        n_machines: 3,
        seed: 13,
        ..Default::default()
    });
    g.bench_function("mct", |b| {
        b.iter(|| std::hint::black_box(simulate(&inst, &mut Mct::new()).unwrap().n_events));
    });
    g.bench_function("srpt", |b| {
        b.iter(|| std::hint::black_box(simulate(&inst, &mut Srpt::new()).unwrap().n_events));
    });
    g.bench_function("ola", |b| {
        b.iter(|| {
            std::hint::black_box(simulate(&inst, &mut OfflineAdapt::new()).unwrap().n_events)
        });
    });
    g.finish();
}

criterion_group!(benches, bench_policies);
criterion_main!(benches);
