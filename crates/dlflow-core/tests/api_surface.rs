//! Integration coverage for the exact-solver support surface: the pieces
//! callers compose when building their own feasibility probes or packing
//! LP solutions into schedules, exercised here from outside the crate.

use dlflow_core::flownet::FlowNetwork;
use dlflow_core::instance::{Instance, InstanceBuilder};
use dlflow_core::intervals::{AffineF, ConcreteIntervals, SymbolicIntervals};
use dlflow_core::lp_build::{
    build_deadline_probe_lp, build_range_lp, pack_alpha_schedule, RangeLp,
};
use dlflow_core::matching::has_perfect_matching;
use dlflow_core::schedule::{Schedule, ScheduleKind, Slice};
use dlflow_core::uniform::{feasible_at_uniform, uniform_factors};
use dlflow_lp::{solve, LpStatus};
use dlflow_num::Rat;

fn ri(v: i64) -> Rat {
    Rat::from_i64(v)
}

/// 2 jobs released at 0 and 1, one uniform machine twice as fast as the
/// other (cost rows are proportional — the GriPPS structure of §3).
fn uniform_instance() -> Instance<Rat> {
    let mut b = InstanceBuilder::new();
    b.job(ri(0), ri(1));
    b.job(ri(1), ri(1));
    b.machine(vec![Some(ri(2)), Some(ri(2))]);
    b.machine(vec![Some(ri(4)), Some(ri(4))]);
    b.build().unwrap()
}

#[test]
fn flow_network_tracks_per_edge_flow() {
    // source 0 → 1 → sink 2, bottleneck 3 on the second edge.
    let mut net: FlowNetwork<Rat> = FlowNetwork::new(3);
    let wide = net.add_edge(0, 1, ri(5));
    let narrow = net.add_edge(1, 2, ri(3));
    assert_eq!(net.n_nodes(), 3);
    assert_eq!(net.max_flow(0, 2), ri(3));
    assert_eq!(net.flow_on(wide), &ri(3));
    assert_eq!(net.flow_on(narrow), &ri(3));
}

#[test]
fn naive_flow_upper_bound_dominates_the_optimum() {
    let inst = uniform_instance();
    let ub = inst.naive_flow_upper_bound();
    // Serial processing on the fastest machine: J1 done at 2, J2 waits
    // until 2 and finishes at 4 → flow 3; both have weight 1.
    assert_eq!(ub, ri(3));
    // The bound must be feasible for the probe machinery it seeds.
    let factors = uniform_factors(&inst).expect("proportional rows are uniform");
    assert!(feasible_at_uniform(&inst, &ub, &factors));
    assert!(!feasible_at_uniform(&inst, &ri(0), &factors));
}

#[test]
fn interval_breakpoint_helpers() {
    let conc = ConcreteIntervals::from_points(vec![ri(0), ri(2), ri(5)]);
    assert_eq!(conc.n_intervals(), 2);
    assert_eq!(conc.last_point(), &ri(5));

    let f = AffineF { a: ri(1), b: ri(2) };
    assert!(f.same_function(&f.clone()));
    assert!(!f.same_function(&AffineF::constant(ri(1))));
}

#[test]
fn symbolic_intervals_merge_coincident_breakpoints() {
    // Two identical affine breakpoints and one constant: 2 distinct
    // points → 1 finite interval at the reference.
    let dl = AffineF { a: ri(0), b: ri(1) };
    let sym = SymbolicIntervals::from_points(vec![AffineF::constant(ri(0)), dl.clone(), dl], ri(3));
    assert_eq!(sym.n_intervals(), 1);
}

#[test]
fn probe_lp_and_range_lp_agree_on_feasibility() {
    let inst = uniform_instance();
    let deadlines: Vec<Rat> = (0..2).map(|j| inst.deadline(j, &ri(3))).collect();
    let probe = build_deadline_probe_lp(&inst, &deadlines, false);
    assert_eq!(solve(&probe).status, LpStatus::Optimal);

    let RangeLp {
        lp,
        alpha,
        f_var,
        intervals,
    } = build_range_lp(&inst, &ri(1), Some(&ri(4)), &ri(3), false);
    let sol = solve(&lp);
    assert_eq!(sol.status, LpStatus::Optimal);
    assert!(!alpha.is_empty());
    assert!(sol.values[f_var.index()] <= ri(4));
    assert!(intervals.n_intervals() > 0);
}

#[test]
fn pack_alpha_schedule_of_an_empty_assignment_is_empty() {
    let inst = uniform_instance();
    let sched = pack_alpha_schedule(&inst, &[], &[], &[]);
    assert_eq!(sched.n_slices(), 0);
}

#[test]
fn perfect_matching_detects_halls_condition() {
    assert!(has_perfect_matching(2, 2, &[vec![0, 1], vec![0]]));
    // Both left vertices compete for the single right vertex 0.
    assert!(!has_perfect_matching(2, 2, &[vec![0], vec![0]]));
}

#[test]
fn schedule_fraction_and_flow_accounting() {
    let inst = uniform_instance();
    let mut sched: Schedule<Rat> = Schedule::empty(2, ScheduleKind::Divisible);
    // J1 whole on M1 (cost 2) over [0,2); J2 whole on M2 (cost 4) over [1,5).
    sched.push(
        0,
        Slice {
            job: 0,
            start: ri(0),
            end: ri(2),
        },
    );
    sched.push(
        1,
        Slice {
            job: 1,
            start: ri(1),
            end: ri(5),
        },
    );
    let frac = sched.processed_fractions(&inst);
    assert_eq!(frac, vec![ri(1), ri(1)]);
    // Flows: J1 = 2 − 0, J2 = 5 − 1 → total 6.
    assert_eq!(sched.total_flow(&inst), ri(6));
}
