//! Property-based tests of the core algorithms' invariants.

use dlflow_core::deadline::deadline_feasible_divisible;
use dlflow_core::decompose::{decompose_interval, verify_phases};
use dlflow_core::instance::{Cost, Instance, Job};
use dlflow_core::matching::hopcroft_karp;
use dlflow_core::maxflow::{feasible_at, min_max_weighted_flow_preemptive};
use dlflow_core::uniform::{deadline_feasible_with_factors, uniform_factors};
use dlflow_core::validate::validate;
use dlflow_num::Rat;
use proptest::prelude::*;

fn ri(v: i64) -> Rat {
    Rat::from_i64(v)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Gonzalez–Sahni decomposition: for any non-negative work matrix with
    /// row/col sums ≤ len, the phases exactly reconstruct the matrix and
    /// never double-book a machine or a job.
    #[test]
    fn decompose_reconstructs_any_feasible_matrix(
        m in 1usize..4,
        n in 1usize..5,
        cells in proptest::collection::vec(0i64..4, 20),
    ) {
        let raw: Vec<Vec<i64>> = (0..m).map(|i| (0..n).map(|j| cells[(i * 5 + j) % 20]).collect()).collect();
        // len = max(row sums, col sums) guarantees feasibility.
        let row_max = raw.iter().map(|r| r.iter().sum::<i64>()).max().unwrap_or(0);
        let col_max = (0..n).map(|j| raw.iter().map(|r| r[j]).sum::<i64>()).max().unwrap_or(0);
        let len = ri(row_max.max(col_max).max(1));
        let work: Vec<Vec<Rat>> = raw.iter().map(|r| r.iter().map(|&v| ri(v)).collect()).collect();
        let phases = decompose_interval(&work, &len);
        prop_assert!(verify_phases(&work, &len, &phases).is_ok());
        prop_assert!(phases.len() <= (m + n) * (m + n));
    }

    /// Hopcroft–Karp matchings are consistent and maximal wrt simple
    /// augmenting checks (no free-left-vertex adjacent to free-right).
    #[test]
    fn matching_is_maximal_and_consistent(
        n in 1usize..8,
        edges in proptest::collection::vec((0usize..8, 0usize..8), 0..24),
    ) {
        let mut adj = vec![Vec::new(); n];
        for (u, v) in edges {
            if u < n && v < n && !adj[u].contains(&v) {
                adj[u].push(v);
            }
        }
        let (size, ml, mr) = hopcroft_karp(n, n, &adj);
        // Consistency.
        let mut count = 0;
        for (u, &v) in ml.iter().enumerate() {
            if v != usize::MAX {
                prop_assert_eq!(mr[v], u);
                prop_assert!(adj[u].contains(&v));
                count += 1;
            }
        }
        prop_assert_eq!(count, size);
        // No trivially augmentable pair remains.
        for u in 0..n {
            if ml[u] == usize::MAX {
                for &v in &adj[u] {
                    prop_assert!(mr[v] != usize::MAX, "edge ({u},{v}) left unmatched both sides");
                }
            }
        }
    }

    /// On uniform instances, the LP (Lemma 1) and the max-flow fast path
    /// must agree on deadline feasibility for arbitrary deadlines.
    #[test]
    fn uniform_maxflow_agrees_with_lp(
        works in proptest::collection::vec(1i64..6, 1..4),
        speeds in proptest::collection::vec(1i64..4, 1..3),
        rels in proptest::collection::vec(0i64..4, 4),
        dls in proptest::collection::vec(1i64..16, 4),
        holes in proptest::collection::vec(any::<bool>(), 12),
    ) {
        let n = works.len();
        let m = speeds.len();
        let jobs: Vec<Job<Rat>> = (0..n)
            .map(|j| Job { release: ri(rels[j % 4]), weight: Rat::one(), name: format!("J{j}") })
            .collect();
        let mut cost: Vec<Vec<Cost<Rat>>> = (0..m)
            .map(|i| {
                (0..n)
                    .map(|j| {
                        if holes[(i * 4 + j) % 12] && m > 1 {
                            Cost::Infinite
                        } else {
                            Cost::Finite(ri(works[j] * speeds[i]))
                        }
                    })
                    .collect()
            })
            .collect();
        for j in 0..n {
            if !(0..m).any(|i| cost[i][j].is_finite()) {
                cost[0][j] = Cost::Finite(ri(works[j] * speeds[0]));
            }
        }
        let inst = Instance::new(jobs, cost).unwrap();
        let factors = uniform_factors(&inst).expect("constructed uniform");
        let deadlines: Vec<Rat> = (0..n).map(|j| ri(dls[j % 4])).collect();
        let lp = deadline_feasible_divisible(&inst, &deadlines);
        let mf = deadline_feasible_with_factors(&inst, &deadlines, &factors);
        prop_assert_eq!(lp.is_some(), mf.is_some());
        if let Some(s) = mf {
            prop_assert!(validate(&inst, &s).is_ok());
            // Deadlines actually met.
            for (j, c) in s.completion_times(n).into_iter().enumerate() {
                if let Some(c) = c {
                    prop_assert!(c <= deadlines[j]);
                }
            }
        }
    }

    /// The preemptive optimum is feasible for the preemptive probe and
    /// infeasible slightly below — and its schedule is legal.
    #[test]
    fn preemptive_optimum_is_tight(
        costs in proptest::collection::vec(1i64..6, 2..4),
        rels in proptest::collection::vec(0i64..3, 2..4),
    ) {
        let n = costs.len().min(rels.len());
        let jobs: Vec<Job<Rat>> = (0..n)
            .map(|j| Job { release: ri(rels[j]), weight: ri(1 + (j as i64 % 2)), name: format!("J{j}") })
            .collect();
        let cost: Vec<Vec<Cost<Rat>>> = (0..2)
            .map(|i| (0..n).map(|j| Cost::Finite(ri(costs[j] * (i as i64 + 1)))).collect())
            .collect();
        let inst = Instance::new(jobs, cost).unwrap();
        let out = min_max_weighted_flow_preemptive(&inst);
        prop_assert!(validate(&inst, &out.schedule).is_ok());
        prop_assert_eq!(out.schedule.max_weighted_flow(&inst), out.optimum.clone());
        let below = out.optimum.mul_ref(&Rat::from_ratio(99, 100));
        if below.is_positive() {
            prop_assert!(!feasible_at(&inst, &below, true));
        }
    }
}
