//! Constraint generators for the paper's linear systems.
//!
//! | System | Paper | Purpose |
//! |--------|-------|---------|
//! | (1) | §4.1 | divisible makespan minimization |
//! | (2) | §4.2 | deadline-window feasibility (fixed deadlines) |
//! | (3) | §4.3.2 | min max weighted flow on a milestone range (divisible) |
//! | (5) | §4.4 | same, with the per-job-per-interval bound (preemptive) |
//!
//! Equations (a)–(e) that force `α⁽ᵗ⁾ᵢⱼ = 0` (release / deadline /
//! availability) are realised by **not creating the variable at all**,
//! which keeps the LPs as small as the instance allows.

use crate::instance::Instance;
use crate::intervals::{AffineF, ConcreteIntervals, SymbolicIntervals};
use dlflow_lp::{LinExpr, LpProblem, Rel, Sense, VarId};
use dlflow_num::Scalar;

/// A created `α⁽ᵗ⁾ᵢⱼ` variable: `(interval, machine, job, lp-var)`.
pub type AlphaVar = (usize, usize, usize, VarId);

/// System (1): the makespan LP.
pub struct MakespanLp<S> {
    /// The assembled linear program (minimize `Δ_n`).
    pub lp: LpProblem<S>,
    /// All `α` variables. Interval index `t == intervals.n_intervals()`
    /// denotes the final unbounded interval `[r_max, r_max + Δ_n)`.
    pub alpha: Vec<AlphaVar>,
    /// The `Δ_n` variable (length of the final interval).
    pub delta: VarId,
    /// Finite intervals between consecutive distinct release dates.
    pub intervals: ConcreteIntervals<S>,
}

/// Builds System (1) for the instance.
pub fn build_makespan_lp<S: Scalar>(inst: &Instance<S>) -> MakespanLp<S> {
    let intervals = ConcreteIntervals::from_points(inst.distinct_releases());
    let n_fin = intervals.n_intervals();
    let mut lp: LpProblem<S> = LpProblem::new(Sense::Minimize);
    let delta = lp.add_var("delta");
    lp.objective_term(delta, S::one());

    let mut alpha: Vec<AlphaVar> = Vec::new();
    // t in 0..n_fin → finite; t == n_fin → final interval.
    for t in 0..=n_fin {
        for i in 0..inst.n_machines() {
            for j in 0..inst.n_jobs() {
                if !inst.cost(i, j).is_finite() {
                    continue; // (availability)
                }
                // (1a): the job must be released at or before the interval start.
                let start_ok = if t < n_fin {
                    inst.job(j).release.le_tol(intervals.inf(t))
                } else {
                    true // final interval starts at r_max ≥ every release
                };
                if !start_ok {
                    continue;
                }
                let v = lp.add_var(format!("a[{t}][{i}][{j}]"));
                alpha.push((t, i, j, v));
            }
        }
    }

    // (1b)/(1c): machine capacity per interval.
    for t in 0..=n_fin {
        for i in 0..inst.n_machines() {
            let mut expr = LinExpr::new();
            for (tt, ii, j, v) in &alpha {
                if *tt == t && *ii == i {
                    expr.push(*v, inst.cost(i, *j).finite().unwrap().clone()); // dlflint:allow(hot-path-panic, "alpha variables exist only for finite (i, j) cost pairs")
                }
            }
            if t < n_fin {
                if !expr.is_empty() {
                    lp.add_constraint_labelled(
                        format!("cap[t{t}][m{i}]"),
                        expr,
                        Rel::Le,
                        intervals.len(t),
                    );
                }
            } else {
                // Σ α·c − Δ ≤ 0
                expr.push(delta, S::one().neg());
                lp.add_constraint_labelled(format!("cap[final][m{i}]"), expr, Rel::Le, S::zero());
            }
        }
    }

    // (1d): completion.
    for j in 0..inst.n_jobs() {
        let mut expr = LinExpr::new();
        for (_, _, jj, v) in &alpha {
            if *jj == j {
                expr.push(*v, S::one());
            }
        }
        lp.add_constraint_labelled(format!("done[j{j}]"), expr, Rel::Eq, S::one());
    }

    MakespanLp {
        lp,
        alpha,
        delta,
        intervals,
    }
}

/// System (2): deadline feasibility with concrete per-job deadlines.
pub struct DeadlineLp<S> {
    /// The assembled feasibility program (zero objective).
    pub lp: LpProblem<S>,
    /// All `α` variables.
    pub alpha: Vec<AlphaVar>,
    /// Intervals between consecutive epochal times (releases ∪ deadlines).
    pub intervals: ConcreteIntervals<S>,
}

/// Builds System (2). `deadlines[j]` is `d̄_j`.
///
/// When `per_job_interval_bound` is set, constraint (5b) is added on top —
/// this is the concrete-`F` version of System (5) used as the feasibility
/// probe for the *preemptive* (non-divisible) variant of the problem.
///
/// This builder sits on OLA's per-event hot path (one call per guarded
/// bisection probe plus the final rate solve), so variables and
/// constraints are anonymous — names and labels are display-only and the
/// `format!` calls used to dominate the build at production sub-problem
/// sizes — and row expressions are bucketed in the variable-creation pass
/// instead of rescanning the `α` list per row. Both changes are
/// numerically invisible: the emitted LP has the same terms in the same
/// order, so every simplex pivot (and thus every verdict the campaign
/// goldens pin) is unchanged.
pub fn build_deadline_lp<S: Scalar>(
    inst: &Instance<S>,
    deadlines: &[S],
    per_job_interval_bound: bool,
) -> DeadlineLp<S> {
    assert_eq!(deadlines.len(), inst.n_jobs());
    let mut points: Vec<S> = inst.jobs().iter().map(|j| j.release.clone()).collect();
    points.extend(deadlines.iter().cloned());
    let intervals = ConcreteIntervals::from_points(points);
    let n_int = intervals.n_intervals();
    let (m, n) = (inst.n_machines(), inst.n_jobs());

    let mut lp: LpProblem<S> = LpProblem::new(Sense::Minimize);
    let mut alpha: Vec<AlphaVar> = Vec::new();
    let mut cap_expr: Vec<LinExpr<S>> = vec![LinExpr::new(); n_int * m];
    let mut jobcap_expr: Vec<LinExpr<S>> = if per_job_interval_bound {
        vec![LinExpr::new(); n_int * n]
    } else {
        Vec::new()
    };
    let mut done_expr: Vec<LinExpr<S>> = vec![LinExpr::new(); n];
    for t in 0..n_int {
        for i in 0..m {
            for j in 0..n {
                if !inst.cost(i, j).is_finite() {
                    continue;
                }
                // (2a): released before the interval; (2b): due after it.
                if !inst.job(j).release.le_tol(intervals.inf(t)) {
                    continue;
                }
                if !deadlines[j].ge_tol(intervals.sup(t)) {
                    continue;
                }
                let v = lp.add_var("");
                alpha.push((t, i, j, v));
                let c = inst.cost(i, j).finite().unwrap(); // dlflint:allow(hot-path-panic, "guarded by the is_finite check at the top of this loop body")
                cap_expr[t * m + i].push(v, c.clone());
                if per_job_interval_bound {
                    jobcap_expr[t * n + j].push(v, c.clone());
                }
                done_expr[j].push(v, S::one());
            }
        }
    }

    // (2c) machine capacity.
    let mut cap_expr = cap_expr.into_iter();
    for t in 0..n_int {
        for _ in 0..m {
            let expr = cap_expr.next().unwrap(); // dlflint:allow(hot-path-panic, "iterator was built with exactly n_int * m expressions")
            if !expr.is_empty() {
                lp.add_constraint(expr, Rel::Le, intervals.len(t));
            }
        }
    }

    // (5b) optional: a job cannot occupy more wall-clock than the interval.
    if per_job_interval_bound {
        let mut jobcap_expr = jobcap_expr.into_iter();
        for t in 0..n_int {
            for _ in 0..n {
                let expr = jobcap_expr.next().unwrap(); // dlflint:allow(hot-path-panic, "iterator was built with exactly n_int * n expressions")
                if !expr.is_empty() {
                    lp.add_constraint(expr, Rel::Le, intervals.len(t));
                }
            }
        }
    }

    // (2d) completion. An empty expression (no interval can host the job)
    // yields `0 = 1`, i.e. infeasibility — exactly right.
    for expr in done_expr {
        lp.add_constraint(expr, Rel::Eq, S::one());
    }

    DeadlineLp {
        lp,
        alpha,
        intervals,
    }
}

/// System (2) in **probe form**: a deadline-feasibility LP whose *shape*
/// — variable count, variable order and constraint-relation pattern — is
/// independent of the deadline vector.
///
/// The filtered builder ([`build_deadline_lp`]) keeps LPs minimal by not
/// creating variables that equations (a)–(e) force to zero, but that makes
/// LPs at different objective values structurally different, so the
/// Theorem-2 binary search cannot carry a simplex basis from one probe to
/// the next. This builder instead fixes the frame:
///
/// * intervals are the `2n − 1` gaps between the sorted (NOT deduplicated)
///   epochal times — coincident times yield zero-length intervals whose
///   capacity rows force their `α` to 0;
/// * every `(t, i, j)` with finite cost gets a variable in a fixed order;
///   inadmissible combinations simply appear in **no** constraint (an
///   empty column can only sit at 0 in a basic solution, so feasibility
///   is unchanged);
/// * every capacity/completion row is emitted even when its expression is
///   empty.
///
/// Feasibility status is identical to [`build_deadline_lp`]'s; the payoff
/// is that any two probes of the same instance are
/// [`dlflow_lp::WarmBasis`]-compatible, enabling warm-started probes.
pub fn build_deadline_probe_lp<S: Scalar>(
    inst: &Instance<S>,
    deadlines: &[S],
    per_job_interval_bound: bool,
) -> LpProblem<S> {
    assert_eq!(deadlines.len(), inst.n_jobs());
    let mut pts: Vec<S> = inst.jobs().iter().map(|j| j.release.clone()).collect();
    pts.extend(deadlines.iter().cloned());
    pts.sort_by(|a, b| a.cmp_total(b));
    let n_int = pts.len() - 1;

    let (m, n) = (inst.n_machines(), inst.n_jobs());
    let mut lp: LpProblem<S> = LpProblem::new(Sense::Minimize);
    // This builder runs once per probe of the binary search, so constraint
    // expressions are bucketed during variable creation (one pass) instead
    // of rescanning the α list per row.
    let mut cap_expr: Vec<LinExpr<S>> = vec![LinExpr::new(); n_int * m];
    let mut jobcap_expr: Vec<LinExpr<S>> = vec![LinExpr::new(); n_int * n];
    let mut done_expr: Vec<LinExpr<S>> = vec![LinExpr::new(); n];
    for t in 0..n_int {
        let (inf, sup) = (&pts[t], &pts[t + 1]);
        let degenerate = !sup.sub(inf).is_positive_tol();
        for i in 0..m {
            for j in 0..n {
                if !inst.cost(i, j).is_finite() {
                    continue; // availability is deadline-independent
                }
                let v = lp.add_var("");
                let admissible =
                    !degenerate && inst.job(j).release.le_tol(inf) && deadlines[j].ge_tol(sup);
                if admissible {
                    let c = inst.cost(i, j).finite().unwrap(); // dlflint:allow(hot-path-panic, "guarded by the is_finite check at the top of this loop body")
                    cap_expr[t * m + i].push(v, c.clone());
                    jobcap_expr[t * n + j].push(v, c.clone());
                    done_expr[j].push(v, S::one());
                }
            }
        }
    }

    // (2c) machine capacity — one row per (t, i), even when empty.
    let mut cap_expr = cap_expr.into_iter();
    for t in 0..n_int {
        let len = pts[t + 1].sub(&pts[t]);
        for _ in 0..m {
            let expr = cap_expr.next().unwrap(); // dlflint:allow(hot-path-panic, "iterator was built with exactly n_int * m expressions")
            lp.add_constraint(expr, Rel::Le, len.clone());
        }
    }

    // (5b) per-job wall-clock bound — one row per (t, j) when requested.
    if per_job_interval_bound {
        let mut jobcap_expr = jobcap_expr.into_iter();
        for t in 0..n_int {
            let len = pts[t + 1].sub(&pts[t]);
            for _ in 0..n {
                let expr = jobcap_expr.next().unwrap(); // dlflint:allow(hot-path-panic, "iterator was built with exactly n_int * n expressions")
                lp.add_constraint(expr, Rel::Le, len.clone());
            }
        }
    }

    // (2d) completion — an empty expression yields `0 = 1`: infeasible.
    for expr in done_expr {
        lp.add_constraint(expr, Rel::Eq, S::one());
    }

    lp
}

/// Maps the variable indices of one probe-form LP onto another, so a
/// [`dlflow_lp::WarmBasis`] captured on `build_deadline_probe_lp(old, …)`
/// can be carried (via [`dlflow_lp::WarmBasis::remap`]) onto
/// `build_deadline_probe_lp(new, …)` after the job set churned.
///
/// `job_map[j_old]` gives the new column of old job `j_old` (`None` =
/// departed). Machines must correspond 1:1 by index; a pair whose cost
/// flipped between finite and infinite (platform change) simply drops
/// out. The `t`-th interval frame of the old LP is identified with the
/// `t`-th of the new one — with a different job set those frames cover
/// different wall-clock windows, but a warm hint is only a pivot-order
/// suggestion: the dual-simplex repair (or cold fallback) in
/// `solve_warm` owns correctness, so an imperfect identification costs
/// at most pivots, never accuracy.
pub fn probe_var_remap<S: Scalar>(
    old: &Instance<S>,
    new: &Instance<S>,
    job_map: &[Option<usize>],
) -> Vec<Option<usize>> {
    assert_eq!(job_map.len(), old.n_jobs());
    assert_eq!(old.n_machines(), new.n_machines());
    let m = old.n_machines();
    let (n_old, n_new) = (old.n_jobs(), new.n_jobs());

    // Rank of each finite (i, j) pair in the new LP's i-major order.
    let mut new_rank = vec![usize::MAX; m * n_new];
    let mut f_new = 0usize;
    for i in 0..m {
        for j in 0..n_new {
            if new.cost(i, j).is_finite() {
                new_rank[i * n_new + j] = f_new;
                f_new += 1;
            }
        }
    }

    // Old finite pairs, mapped through the job map where they survive.
    let mut pair_map: Vec<Option<usize>> = Vec::new();
    for i in 0..m {
        for j_old in 0..n_old {
            if !old.cost(i, j_old).is_finite() {
                continue;
            }
            pair_map.push(job_map[j_old].and_then(|j_new| {
                let r = new_rank[i * n_new + j_new];
                (r != usize::MAX).then_some(r)
            }));
        }
    }
    let f_old = pair_map.len();

    // Probe-form interval count is shape-determined: 2n − 1.
    let t_old = 2 * n_old - 1;
    let t_new = 2 * n_new - 1;
    let mut out = Vec::with_capacity(t_old * f_old);
    for t in 0..t_old {
        for fo in pair_map.iter().take(f_old) {
            if t < t_new {
                out.push(fo.map(|fn_| t * f_new + fn_));
            } else {
                out.push(None);
            }
        }
    }
    out
}

/// Systems (3)/(5): minimize `F` over a milestone range.
pub struct RangeLp<S> {
    /// The assembled program (minimize `F`).
    pub lp: LpProblem<S>,
    /// All `α` variables.
    pub alpha: Vec<AlphaVar>,
    /// The objective-value variable `F`.
    pub f_var: VarId,
    /// Symbolic intervals whose bounds are affine in `F`.
    pub intervals: SymbolicIntervals<S>,
}

/// Builds System (3) (divisible) or System (5) (`preemptive = true`) on
/// the objective range `[f_lo, f_hi]` (`f_hi = None` → unbounded above).
///
/// `reference` must be a point interior to the milestone range so that
/// the relative order of releases and deadlines is the one valid across
/// the whole range.
pub fn build_range_lp<S: Scalar>(
    inst: &Instance<S>,
    f_lo: &S,
    f_hi: Option<&S>,
    reference: &S,
    preemptive: bool,
) -> RangeLp<S> {
    // Breakpoints: releases (constants) and deadlines r_j + F/w_j.
    let mut points: Vec<AffineF<S>> = Vec::with_capacity(2 * inst.n_jobs());
    for job in inst.jobs() {
        points.push(AffineF::constant(job.release.clone()));
        points.push(AffineF {
            a: job.release.clone(),
            b: job.weight.recip(),
        });
    }
    let intervals = SymbolicIntervals::from_points(points, reference.clone());
    let n_int = intervals.n_intervals();

    let mut lp: LpProblem<S> = LpProblem::new(Sense::Minimize);
    let f_var = lp.add_var("F");
    lp.objective_term(f_var, S::one());

    // (3a): F within the milestone range.
    if f_lo.is_positive_tol() {
        lp.bound_ge(f_var, f_lo.clone());
    }
    if let Some(hi) = f_hi {
        lp.bound_le(f_var, hi.clone());
    }

    // Variable creation: (3b) release / (3c) deadline / availability.
    // Order is constant on the range, so comparisons at the reference
    // point decide them for the whole range.
    let mut alpha: Vec<AlphaVar> = Vec::new();
    for t in 0..n_int {
        let inf_ref = intervals.inf(t).eval(reference);
        let sup_ref = intervals.sup(t).eval(reference);
        for i in 0..inst.n_machines() {
            for j in 0..inst.n_jobs() {
                if !inst.cost(i, j).is_finite() {
                    continue;
                }
                if !inst.job(j).release.le_tol(&inf_ref) {
                    continue; // (3b)
                }
                let dl_ref = inst.deadline(j, reference);
                if !dl_ref.ge_tol(&sup_ref) {
                    continue; // (3c)
                }
                let v = lp.add_var(format!("a[{t}][{i}][{j}]"));
                alpha.push((t, i, j, v));
            }
        }
    }

    // (3d): machine capacity — Σ α·c − len_b·F ≤ len_a.
    for t in 0..n_int {
        let len = intervals.len(t);
        for i in 0..inst.n_machines() {
            let mut expr = LinExpr::new();
            for (tt, ii, j, v) in &alpha {
                if *tt == t && *ii == i {
                    expr.push(*v, inst.cost(i, *j).finite().unwrap().clone()); // dlflint:allow(hot-path-panic, "alpha variables exist only for finite (i, j) cost pairs")
                }
            }
            if !expr.is_empty() {
                expr.push(f_var, len.b.neg());
                lp.add_constraint_labelled(
                    format!("cap[t{t}][m{i}]"),
                    expr,
                    Rel::Le,
                    len.a.clone(),
                );
            }
        }
    }

    // (5b): per-job wall-clock bound per interval.
    if preemptive {
        for t in 0..n_int {
            let len = intervals.len(t);
            for j in 0..inst.n_jobs() {
                let mut expr = LinExpr::new();
                for (tt, i, jj, v) in &alpha {
                    if *tt == t && *jj == j {
                        // dlflint:allow(hot-path-panic, "alpha variables exist only for finite (i, j) cost pairs")
                        expr.push(*v, inst.cost(*i, j).finite().unwrap().clone());
                    }
                }
                if !expr.is_empty() {
                    expr.push(f_var, len.b.neg());
                    lp.add_constraint_labelled(
                        format!("jobcap[t{t}][j{j}]"),
                        expr,
                        Rel::Le,
                        len.a.clone(),
                    );
                }
            }
        }
    }

    // (3e): completion.
    for j in 0..inst.n_jobs() {
        let mut expr = LinExpr::new();
        for (_, _, jj, v) in &alpha {
            if *jj == j {
                expr.push(*v, S::one());
            }
        }
        lp.add_constraint_labelled(format!("done[j{j}]"), expr, Rel::Eq, S::one());
    }

    RangeLp {
        lp,
        alpha,
        f_var,
        intervals,
    }
}

/// Turns an LP solution's `α` values into an explicit schedule by packing,
/// within every interval and machine, the non-zero fractions back to back
/// from the interval start (the paper: "during any time interval It we can
/// schedule in any order (and without idle times) the non-null fractions").
///
/// `bounds[t] = (inf, sup)` are the concrete interval bounds. Only valid
/// for the **divisible** model — preemptive schedules need the
/// Lawler–Labetoulle decomposition instead (see [`crate::decompose`]).
pub fn pack_alpha_schedule<S: Scalar>(
    inst: &Instance<S>,
    bounds: &[(S, S)],
    alpha: &[AlphaVar],
    values: &[S],
) -> crate::schedule::Schedule<S> {
    use crate::schedule::{Schedule, ScheduleKind, Slice};
    let mut sched = Schedule::empty(inst.n_machines(), ScheduleKind::Divisible);
    // Cursor per (interval, machine).
    let mut cursor: Vec<Vec<S>> = bounds
        .iter()
        .map(|(inf, _)| vec![inf.clone(); inst.n_machines()])
        .collect();
    for (t, i, j, v) in alpha {
        let frac = &values[v.index()];
        if !frac.is_positive_tol() {
            continue;
        }
        let dur = frac.mul(
            inst.cost(*i, *j)
                .finite()
                .expect("alpha var implies finite cost"),
        );
        let start = cursor[*t][*i].clone();
        let end = start.add(&dur);
        debug_assert!(
            end.le_tol(&bounds[*t].1),
            "interval capacity exceeded while packing: end={end} sup={}",
            bounds[*t].1
        );
        sched.push(
            *i,
            Slice {
                job: *j,
                start,
                end: end.clone(),
            },
        );
        cursor[*t][*i] = end;
    }
    sched.normalize();
    sched
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceBuilder;
    use dlflow_lp::{solve, LpStatus};
    use dlflow_num::Rat;

    fn simple() -> Instance<f64> {
        let mut b = InstanceBuilder::new();
        b.job(0.0, 1.0);
        b.job(2.0, 1.0);
        b.machine(vec![Some(4.0), Some(4.0)]);
        b.build().unwrap()
    }

    #[test]
    fn makespan_lp_shape() {
        let inst = simple();
        let m = build_makespan_lp(&inst);
        // Intervals: [0,2) finite + final. J1 everywhere, J2 only in final.
        assert_eq!(m.intervals.n_intervals(), 1);
        // α vars: (t0, m0, j0), (final, m0, j0), (final, m0, j1) = 3.
        assert_eq!(m.alpha.len(), 3);
        let sol = solve(&m.lp);
        assert_eq!(sol.status, LpStatus::Optimal);
        // One machine, 8 units of work, J2 released at 2; both fully
        // processable: lower bound max(total work, r2 + c2) = 8 ≥ 2+4.
        // Optimal Cmax = 8 → Δ = 8 − 2 = 6.
        assert!((sol.objective.unwrap() - 6.0).abs() < 1e-7);
    }

    #[test]
    fn deadline_lp_feasible_and_not() {
        let inst = simple();
        // Deadlines generous: feasible.
        let d = vec![10.0, 10.0];
        let lp = build_deadline_lp(&inst, &d, false);
        assert_eq!(solve(&lp.lp).status, LpStatus::Optimal);
        // Impossible: both jobs due by 4 but 8 units of single-machine work.
        let d = vec![4.0, 4.0];
        let lp = build_deadline_lp(&inst, &d, false);
        assert_eq!(solve(&lp.lp).status, LpStatus::Infeasible);
    }

    #[test]
    fn deadline_lp_infeasible_when_window_empty() {
        let mut b = InstanceBuilder::new();
        b.job(5.0, 1.0);
        b.machine(vec![Some(1.0)]);
        let inst = b.build().unwrap();
        // Deadline before release: no interval can host the job.
        let lp = build_deadline_lp(&inst, &[3.0], false);
        assert_eq!(solve(&lp.lp).status, LpStatus::Infeasible);
    }

    #[test]
    fn probe_form_matches_filtered_builder() {
        // The uniform-shape probe LP must agree with the filtered System-(2)
        // builder on feasibility, for assorted deadline vectors and both
        // the divisible and preemptive (5b) variants.
        let inst = simple();
        for d in [
            vec![10.0, 10.0],
            vec![4.0, 4.0],
            vec![8.0, 8.0],
            vec![3.0, 9.0],
            vec![9.0, 3.0],
        ] {
            for pre in [false, true] {
                let filtered = solve(&build_deadline_lp(&inst, &d, pre).lp).status;
                let probe = solve(&build_deadline_probe_lp(&inst, &d, pre)).status;
                assert_eq!(filtered, probe, "deadlines {d:?} preemptive={pre}");
            }
        }
    }

    #[test]
    fn probe_form_shape_is_deadline_independent() {
        let inst = simple();
        let a = build_deadline_probe_lp(&inst, &[10.0, 10.0], false);
        let b = build_deadline_probe_lp(&inst, &[3.0, 7.5], false);
        assert_eq!(a.n_vars(), b.n_vars());
        assert_eq!(a.n_constraints(), b.n_constraints());
        for (ca, cb) in a.constraints().iter().zip(b.constraints()) {
            assert_eq!(ca.rel, cb.rel);
        }
    }

    #[test]
    fn probe_var_remap_carries_basis_across_job_churn() {
        // Solve a 2-job probe, then drop job 0 and append a newcomer: the
        // remapped basis must warm-start the new shape and the warm
        // verdicts must agree with cold solves.
        use dlflow_lp::solve_warm;
        let old = simple();
        let lp_old = build_deadline_probe_lp(&old, &[10.0, 10.0], false);
        let first = solve_warm(&lp_old, None);
        assert_eq!(first.solution.status, LpStatus::Optimal);
        let basis = first.basis.expect("optimal probe must yield a basis");

        // Old job 1 survives as new job 0; new job 1 is an arrival.
        let mut b = InstanceBuilder::new();
        b.job(2.0, 1.0);
        b.job(3.0, 2.0);
        b.machine(vec![Some(4.0), Some(6.0)]);
        let new = b.build().unwrap();
        let map = probe_var_remap(&old, &new, &[None, Some(0)]);
        assert_eq!(map.len(), lp_old.n_vars());

        for d in [vec![20.0, 20.0], vec![6.0, 30.0]] {
            let lp_new = build_deadline_probe_lp(&new, &d, false);
            let hint = basis.remap(&lp_new, &map);
            let out = solve_warm(&lp_new, Some(&hint));
            assert_eq!(
                out.solution.status,
                solve(&lp_new).status,
                "warm and cold verdicts must agree for deadlines {d:?}"
            );
        }
    }

    #[test]
    fn probe_var_remap_is_identity_on_unchanged_shape() {
        let inst = simple();
        let lp = build_deadline_probe_lp(&inst, &[10.0, 10.0], false);
        let map = probe_var_remap(&inst, &inst, &[Some(0), Some(1)]);
        assert_eq!(map.len(), lp.n_vars());
        for (v, mapped) in map.iter().enumerate() {
            assert_eq!(*mapped, Some(v));
        }
    }

    #[test]
    fn preemptive_probe_is_stricter() {
        // Two machines, one job of cost 2 on each, deadline 1 after release:
        // divisible can split (half on each, done at 1); preemptive cannot
        // (the job would need 2 wall-clock units in a 1-unit window).
        let mut b = InstanceBuilder::new();
        b.job(0.0, 1.0);
        b.machine(vec![Some(2.0)]);
        b.machine(vec![Some(2.0)]);
        let inst = b.build().unwrap();
        let div = build_deadline_lp(&inst, &[1.0], false);
        assert_eq!(solve(&div.lp).status, LpStatus::Optimal);
        let pre = build_deadline_lp(&inst, &[1.0], true);
        assert_eq!(solve(&pre.lp).status, LpStatus::Infeasible);
    }

    #[test]
    fn range_lp_minimizes_f_exactly() {
        // One machine, one job (r=0, w=1, c=4): optimum F* = 4.
        let mut b = InstanceBuilder::<Rat>::new();
        b.job(Rat::zero(), Rat::one());
        b.machine(vec![Some(Rat::from_i64(4))]);
        let inst = b.build().unwrap();
        // No milestones (single job): range (0, ∞), reference 1.
        let r = build_range_lp(&inst, &Rat::zero(), None, &Rat::one(), false);
        let sol = solve(&r.lp);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_eq!(sol.objective.unwrap(), Rat::from_i64(4));
    }
}
