//! Theorem 2 (§4.3) and §4.4: exact minimization of the maximum weighted
//! flow, in the divisible model and in the preemptive (non-divisible)
//! model, via the milestone binary search.
//!
//! Outline (both models share it):
//! 1. enumerate the ≤ n²−n [`crate::milestones`] of the objective;
//! 2. binary-search the sorted milestone list with a System-(2)-style
//!    feasibility probe ("∃ schedule with max weighted flow ≤ F?" —
//!    monotone in `F`), isolating the milestone range containing the
//!    optimum;
//! 3. solve one parametric LP (System (3), or (5) with the per-job bound)
//!    on that range, minimizing `F` as an ordinary LP variable — legal
//!    because within the range interval lengths are affine in `F`;
//! 4. rebuild an explicit schedule: interval packing for divisible,
//!    Lawler–Labetoulle phase decomposition for preemptive.

use crate::decompose::decompose_interval;
use crate::instance::Instance;
use crate::lp_build::{build_deadline_lp, build_range_lp};
use crate::milestones::milestones;
use crate::schedule::{Schedule, ScheduleKind, Slice};
use dlflow_lp::{solve, solve_warm, WarmBasis};
use dlflow_num::Scalar;

/// Search statistics (reported by the Theorem-2 experiment binary).
#[derive(Clone, Debug, Default)]
pub struct FlowStats {
    /// Number of distinct milestones (≤ n²−n).
    pub n_milestones: usize,
    /// Feasibility probes run during the binary search.
    pub n_probes: usize,
    /// LP probes warm-started from the previous probe's optimal basis
    /// (successive probes differ only in the flow-bound RHS, so the basis
    /// usually carries over; see `dlflow_lp::solve_warm`).
    pub n_warm_probes: usize,
    /// LP probes solved from scratch (first probe, or warm-start
    /// fallback). With [`ProbeMethod::MaxFlowUniform`] on a uniform
    /// instance no simplex runs at all, so both LP counters stay 0 even
    /// though `n_probes` counts the max-flow checks.
    pub n_cold_probes: usize,
}

/// Stateful LP feasibility prober: carries the optimal basis of the last
/// feasible probe into the next one and counts warm vs cold solves.
struct LpProber<'a, S: Scalar> {
    inst: &'a Instance<S>,
    preemptive: bool,
    warm: Option<WarmBasis>,
    n_warm: usize,
    n_cold: usize,
}

impl<'a, S: Scalar> LpProber<'a, S> {
    fn new(inst: &'a Instance<S>, preemptive: bool) -> Self {
        LpProber {
            inst,
            preemptive,
            warm: None,
            n_warm: 0,
            n_cold: 0,
        }
    }

    fn probe(&mut self, f: &S) -> bool {
        let deadlines: Vec<S> = (0..self.inst.n_jobs())
            .map(|j| self.inst.deadline(j, f))
            .collect();
        // The probe-form builder keeps every probe structurally identical,
        // so the basis of the previous probe seeds this one.
        let lp = crate::lp_build::build_deadline_probe_lp(self.inst, &deadlines, self.preemptive);
        let out = solve_warm(&lp, self.warm.as_ref());
        if out.warm_used {
            self.n_warm += 1;
        } else {
            self.n_cold += 1;
        }
        if let Some(basis) = out.basis {
            // Only optimal (feasible) probes yield a basis; keep the last
            // one across infeasible probes — it often still matches.
            self.warm = Some(basis);
        }
        out.solution.is_optimal()
    }
}

/// Result of an exact max-weighted-flow minimization.
#[derive(Clone, Debug)]
pub struct FlowOutcome<S> {
    /// The optimal maximum weighted flow `F*`.
    pub optimum: S,
    /// A schedule achieving `F*` in the requested execution model.
    pub schedule: Schedule<S>,
    /// Search statistics.
    pub stats: FlowStats,
}

/// Feasibility probe: does a schedule with max weighted flow ≤ `f` exist?
/// (`preemptive` adds constraint (5b).) §4.3.1: equivalent to deadline
/// scheduling with `d̄_j = r_j + f/w_j`.
pub fn feasible_at<S: Scalar>(inst: &Instance<S>, f: &S, preemptive: bool) -> bool {
    let deadlines: Vec<S> = (0..inst.n_jobs()).map(|j| inst.deadline(j, f)).collect();
    solve(&build_deadline_lp(inst, &deadlines, preemptive).lp).is_optimal()
}

/// Locates the milestone range `[f_lo, f_hi]` containing the optimum,
/// probing feasibility with `probe` (monotone in `F`), and returns
/// `(f_lo, f_hi, reference, probes)`; `f_hi = None` means the unbounded
/// final range.
fn locate_range<S: Scalar>(
    ms: &[S],
    mut probe: impl FnMut(&S) -> bool,
) -> (S, Option<S>, S, usize) {
    let mut probes = 0usize;
    if ms.is_empty() {
        // No milestones: the epochal order is constant on all of (0, ∞).
        return (S::zero(), None, S::one(), probes);
    }
    probes += 1;
    if probe(&ms[0]) {
        // Optimum in (0, ms[0]].
        let reference = ms[0].div(&S::from_i64(2));
        return (S::zero(), Some(ms[0].clone()), reference, probes);
    }
    probes += 1;
    if !probe(ms.last().unwrap()) {
        // Optimum beyond every milestone.
        let lo = ms.last().unwrap().clone();
        let reference = lo.add(&S::one());
        return (lo, None, reference, probes);
    }
    // Invariant: infeasible at ms[lo], feasible at ms[hi].
    let mut lo = 0usize;
    let mut hi = ms.len() - 1;
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        probes += 1;
        if probe(&ms[mid]) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    let reference = ms[lo].midpoint_like(&ms[hi]);
    (ms[lo].clone(), Some(ms[hi].clone()), reference, probes)
}

/// Small helper: `(a + b) / 2` through the `Scalar` trait.
trait MidpointLike: Scalar {
    fn midpoint_like(&self, other: &Self) -> Self {
        self.add(other).div(&Self::from_i64(2))
    }
}
impl<S: Scalar> MidpointLike for S {}

/// Shared core: locate the range, solve the parametric LP, hand back the
/// optimum, the per-interval α values and the concrete interval bounds
/// evaluated at the optimum.
struct RangeSolution<S> {
    optimum: S,
    /// `(interval, machine, job, fraction)` with positive fraction.
    fractions: Vec<(usize, usize, usize, S)>,
    /// Concrete `(inf, sup)` bounds at the optimum.
    bounds: Vec<(S, S)>,
    stats: FlowStats,
}

/// Which feasibility probe the milestone search uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ProbeMethod {
    /// System (2) as an LP — always applicable (unrelated machines).
    #[default]
    Lp,
    /// Max-flow transportation probe — only for instances that factorize
    /// as uniform machines with restricted availabilities (divisible
    /// model only); falls back to [`ProbeMethod::Lp`] otherwise.
    MaxFlowUniform,
}

fn solve_min_flow<S: Scalar>(inst: &Instance<S>, preemptive: bool) -> RangeSolution<S> {
    solve_min_flow_with(inst, preemptive, ProbeMethod::Lp)
}

fn solve_min_flow_with<S: Scalar>(
    inst: &Instance<S>,
    preemptive: bool,
    probe_method: ProbeMethod,
) -> RangeSolution<S> {
    let ms = milestones(inst);
    let factors = match probe_method {
        ProbeMethod::MaxFlowUniform if !preemptive => crate::uniform::uniform_factors(inst),
        _ => None,
    };
    let (f_lo, f_hi, reference, probes, warm_probes, cold_probes) = match &factors {
        Some(fac) => {
            // Closed-form max-flow probes: no simplex runs, so neither LP
            // counter moves.
            let (lo, hi, rf, p) =
                locate_range(&ms, |f| crate::uniform::feasible_at_uniform(inst, f, fac));
            (lo, hi, rf, p, 0, 0)
        }
        None => {
            let mut prober = LpProber::new(inst, preemptive);
            let (lo, hi, rf, p) = locate_range(&ms, |f| prober.probe(f));
            debug_assert_eq!(prober.n_warm + prober.n_cold, p);
            (lo, hi, rf, p, prober.n_warm, prober.n_cold)
        }
    };
    let built = build_range_lp(inst, &f_lo, f_hi.as_ref(), &reference, preemptive);
    let sol = solve(&built.lp);
    assert!(
        sol.is_optimal(),
        "the range LP must be feasible on the located milestone range (got {:?}) — \
         range [{f_lo}, {:?}]",
        sol.status,
        f_hi
    );
    let optimum = sol.value(built.f_var).clone();

    let bounds: Vec<(S, S)> = (0..built.intervals.n_intervals())
        .map(|t| {
            (
                built.intervals.inf(t).eval(&optimum),
                built.intervals.sup(t).eval(&optimum),
            )
        })
        .collect();
    let fractions = built
        .alpha
        .iter()
        .filter_map(|(t, i, j, v)| {
            let val = sol.value(*v);
            val.is_positive_tol().then(|| (*t, *i, *j, val.clone()))
        })
        .collect();
    RangeSolution {
        optimum,
        fractions,
        bounds,
        stats: FlowStats {
            n_milestones: ms.len(),
            n_probes: probes,
            n_warm_probes: warm_probes,
            n_cold_probes: cold_probes,
        },
    }
}

/// Theorem 2: exact optimal max weighted flow in the **divisible** model,
/// with an achieving schedule.
pub fn min_max_weighted_flow_divisible<S: Scalar>(inst: &Instance<S>) -> FlowOutcome<S> {
    let rs = solve_min_flow(inst, false);
    let mut sched = Schedule::empty(inst.n_machines(), ScheduleKind::Divisible);
    let mut cursor: Vec<Vec<S>> = rs
        .bounds
        .iter()
        .map(|(inf, _)| vec![inf.clone(); inst.n_machines()])
        .collect();
    for (t, i, j, frac) in &rs.fractions {
        let c = inst
            .cost(*i, *j)
            .finite()
            .expect("fraction implies finite cost");
        let dur = frac.mul(c);
        let start = cursor[*t][*i].clone();
        let end = start.add(&dur);
        sched.push(
            *i,
            Slice {
                job: *j,
                start,
                end: end.clone(),
            },
        );
        cursor[*t][*i] = end;
    }
    sched.normalize();
    FlowOutcome {
        optimum: rs.optimum,
        schedule: sched,
        stats: rs.stats,
    }
}

/// §4.4: exact optimal max weighted flow with **preemption but no
/// divisibility**, with an explicit schedule rebuilt by the
/// Lawler–Labetoulle decomposition.
pub fn min_max_weighted_flow_preemptive<S: Scalar>(inst: &Instance<S>) -> FlowOutcome<S> {
    let rs = solve_min_flow(inst, true);
    let mut sched = Schedule::empty(inst.n_machines(), ScheduleKind::Preemptive);
    for (t, (inf, sup)) in rs.bounds.iter().enumerate() {
        let len = sup.sub(inf);
        if !len.is_positive_tol() {
            continue;
        }
        let mut work = vec![vec![S::zero(); inst.n_jobs()]; inst.n_machines()];
        for (tt, i, j, frac) in &rs.fractions {
            if *tt == t {
                let c = inst.cost(*i, *j).finite().unwrap();
                work[*i][*j] = work[*i][*j].add(&frac.mul(c));
            }
        }
        let phases = decompose_interval(&work, &len);
        let mut clock = inf.clone();
        for phase in phases {
            let end = clock.add(&phase.duration);
            for (i, j) in phase.assignment {
                sched.push(
                    i,
                    Slice {
                        job: j,
                        start: clock.clone(),
                        end: end.clone(),
                    },
                );
            }
            clock = end;
        }
    }
    sched.normalize();
    FlowOutcome {
        optimum: rs.optimum,
        schedule: sched,
        stats: rs.stats,
    }
}

/// Convenience: exact optimal **max stretch** (divisible), i.e. max
/// weighted flow after re-weighting jobs by the reciprocal of their
/// fastest processing time.
pub fn min_max_stretch_divisible<S: Scalar>(inst: &Instance<S>) -> FlowOutcome<S> {
    min_max_weighted_flow_divisible(&inst.clone().with_stretch_weights())
}

/// Theorem 2 with a selectable feasibility probe: on uniform-with-
/// restricted-availabilities instances, [`ProbeMethod::MaxFlowUniform`]
/// replaces every LP probe of the binary search with one max-flow
/// computation (see [`crate::uniform`]); the final range LP is unchanged,
/// so the result is still the exact optimum.
pub fn min_max_weighted_flow_divisible_with<S: Scalar>(
    inst: &Instance<S>,
    probe_method: ProbeMethod,
) -> FlowOutcome<S> {
    let rs = solve_min_flow_with(inst, false, probe_method);
    let mut sched = Schedule::empty(inst.n_machines(), ScheduleKind::Divisible);
    let mut cursor: Vec<Vec<S>> = rs
        .bounds
        .iter()
        .map(|(inf, _)| vec![inf.clone(); inst.n_machines()])
        .collect();
    for (t, i, j, frac) in &rs.fractions {
        let c = inst
            .cost(*i, *j)
            .finite()
            .expect("fraction implies finite cost");
        let dur = frac.mul(c);
        let start = cursor[*t][*i].clone();
        let end = start.add(&dur);
        sched.push(
            *i,
            Slice {
                job: *j,
                start,
                end: end.clone(),
            },
        );
        cursor[*t][*i] = end;
    }
    sched.normalize();
    FlowOutcome {
        optimum: rs.optimum,
        schedule: sched,
        stats: rs.stats,
    }
}

/// Outcome of the ε-bisection strawman ([`min_max_weighted_flow_bisection`]).
#[derive(Clone, Debug)]
pub struct BisectionOutcome<S> {
    /// A feasible objective value within relative `eps` of the optimum.
    pub approx_optimum: S,
    /// Number of bisection iterations = feasibility LPs solved.
    pub iterations: usize,
    /// Final bracket `(infeasible, feasible)`.
    pub bracket: (S, S),
}

/// The approach §4.3.1 warns about: plain bisection on the objective
/// value. "A binary search on this value is not guaranteed to terminate,
/// as it can not attain any arbitrary value of a rational interval. By
/// setting a limit on the precision [...] the quality of the
/// approximation can be guaranteed." Implemented here exactly as that
/// strawman — stop when the bracket's relative width drops below
/// `rel_eps` — to serve as the ablation baseline against the exact
/// milestone method (see the `ablation_probes` experiment binary).
pub fn min_max_weighted_flow_bisection<S: Scalar>(
    inst: &Instance<S>,
    rel_eps: &S,
    preemptive: bool,
) -> BisectionOutcome<S> {
    assert!(rel_eps.is_positive_tol(), "rel_eps must be positive");
    let mut hi = inst.naive_flow_upper_bound();
    if !hi.is_positive_tol() {
        // Degenerate: everything completes instantly.
        return BisectionOutcome {
            approx_optimum: S::zero(),
            iterations: 0,
            bracket: (S::zero(), S::zero()),
        };
    }
    // The naive bound is feasible by construction; 0 may or may not be.
    let mut lo = S::zero();
    let mut iterations = 0usize;
    let two = S::from_i64(2);
    loop {
        let width = hi.sub(&lo);
        if width.le_tol(&rel_eps.mul(&hi)) {
            break;
        }
        let mid = lo.add(&hi).div(&two);
        iterations += 1;
        if feasible_at(inst, &mid, preemptive) {
            hi = mid;
        } else {
            lo = mid;
        }
        if iterations > 4096 {
            break; // safety net for pathological eps with exact arithmetic
        }
    }
    BisectionOutcome {
        approx_optimum: hi.clone(),
        iterations,
        bracket: (lo, hi),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceBuilder;
    use crate::validate::validate;
    use dlflow_num::Rat;

    fn ri(v: i64) -> Rat {
        Rat::from_i64(v)
    }

    #[test]
    fn single_job_optimum_is_processing_time() {
        let mut b = InstanceBuilder::<Rat>::new();
        b.job(ri(3), ri(2));
        b.machine(vec![Some(ri(5))]);
        let inst = b.build().unwrap();
        let out = min_max_weighted_flow_divisible(&inst);
        // F* = w · c = 2 · 5 = 10.
        assert_eq!(out.optimum, ri(10));
        validate(&inst, &out.schedule).unwrap();
        assert_eq!(out.schedule.max_weighted_flow(&inst), ri(10));
    }

    #[test]
    fn split_job_halves_flow() {
        let mut b = InstanceBuilder::<Rat>::new();
        b.job(Rat::zero(), Rat::one());
        b.machine(vec![Some(ri(4))]);
        b.machine(vec![Some(ri(4))]);
        let inst = b.build().unwrap();
        let div = min_max_weighted_flow_divisible(&inst);
        assert_eq!(div.optimum, ri(2)); // half on each machine
        validate(&inst, &div.schedule).unwrap();
        let pre = min_max_weighted_flow_preemptive(&inst);
        assert_eq!(pre.optimum, ri(4)); // cannot run on both at once
        validate(&inst, &pre.schedule).unwrap();
    }

    #[test]
    fn two_jobs_shared_machine_exact_value() {
        // One machine; J1 (r=0, w=1, c=2), J2 (r=0, w=1, c=2).
        // Optimal max flow: both finish by 4 ⇒ F* = 4 (whoever is second).
        let mut b = InstanceBuilder::<Rat>::new();
        b.job(Rat::zero(), Rat::one());
        b.job(Rat::zero(), Rat::one());
        b.machine(vec![Some(ri(2)), Some(ri(2))]);
        let inst = b.build().unwrap();
        let out = min_max_weighted_flow_divisible(&inst);
        assert_eq!(out.optimum, ri(4));
        validate(&inst, &out.schedule).unwrap();
        assert_eq!(out.schedule.max_weighted_flow(&inst), ri(4));
    }

    #[test]
    fn weights_shift_the_optimum() {
        // Same as above but J2 has weight 3: the optimum balances
        // w1(C1) = C1 and 3(C2) with C1, C2 ∈ schedules on one machine of
        // total work 4. Best: finish J2 first at t2, J1 at 4.
        // F* = min over orders: max(4·1, t2·3) with t2 ≥ 2 → order J2 first:
        // max(4, 6)=6; order J1 first: max(2... J1 done at 2 (F=2), J2 at 4
        // (F=12). Divisible can interleave: completion times C1, C2 with
        // C1 ≥ ... the LP finds the true optimum; known value:
        // schedule J2 fully during [0,2): C2=2, wf=6; J1 during [2,4): C1=4,
        // wf=4 → F*=6? Can we beat 6? C2·3 ≥ 3·(work of J2 alone = 2) = 6.
        // So F* = 6.
        let mut b = InstanceBuilder::<Rat>::new();
        b.job(Rat::zero(), Rat::one());
        b.job(Rat::zero(), ri(3));
        b.machine(vec![Some(ri(2)), Some(ri(2))]);
        let inst = b.build().unwrap();
        let out = min_max_weighted_flow_divisible(&inst);
        assert_eq!(out.optimum, ri(6));
        validate(&inst, &out.schedule).unwrap();
    }

    #[test]
    fn staggered_releases_cross_milestones() {
        // Forces a non-trivial milestone search: different releases/weights.
        let mut b = InstanceBuilder::<Rat>::new();
        b.job(Rat::zero(), Rat::one());
        b.job(ri(1), ri(2));
        b.job(ri(2), Rat::one());
        b.machine(vec![Some(ri(3)), Some(ri(2)), Some(ri(2))]);
        b.machine(vec![Some(ri(6)), Some(ri(4)), None]);
        let inst = b.build().unwrap();
        let out = min_max_weighted_flow_divisible(&inst);
        validate(&inst, &out.schedule).unwrap();
        // The schedule's realized objective equals the claimed optimum.
        assert_eq!(out.schedule.max_weighted_flow(&inst), out.optimum);
        // And the optimum is a true lower bound: probing below fails.
        let below = out.optimum.sub(&Rat::from_ratio(1, 1000));
        assert!(!feasible_at(&inst, &below, false));
        assert!(feasible_at(&inst, &out.optimum, false));
        assert!(out.stats.n_milestones <= crate::milestones::milestone_bound(3));
    }

    #[test]
    fn warm_probes_reduce_cold_solves() {
        // Enough distinct releases/weights that the binary search runs
        // several probes; all probes after the first must warm-start
        // (probe LPs share one shape thanks to build_deadline_probe_lp).
        let mut b = InstanceBuilder::<Rat>::new();
        let data = [(0i64, 1i64), (1, 2), (3, 1), (5, 3), (8, 2)];
        for (rel, w) in data {
            b.job(ri(rel), ri(w));
        }
        for i in 0..2 {
            b.machine(
                (0..data.len())
                    .map(|j| Some(ri(2 + ((i + j) % 3) as i64)))
                    .collect(),
            );
        }
        let inst = b.build().unwrap();
        let out = min_max_weighted_flow_divisible(&inst);
        validate(&inst, &out.schedule).unwrap();
        let st = &out.stats;
        assert_eq!(st.n_probes, st.n_warm_probes + st.n_cold_probes);
        assert!(st.n_probes >= 3, "expected a nontrivial search, got {st:?}");
        assert!(
            st.n_warm_probes >= st.n_probes - 2,
            "probes after the first feasible one must warm-start: {st:?}"
        );
        assert!(st.n_cold_probes < st.n_probes, "{st:?}");
    }

    #[test]
    fn preemptive_at_least_divisible() {
        let mut b = InstanceBuilder::<Rat>::new();
        b.job(Rat::zero(), Rat::one());
        b.job(ri(1), Rat::one());
        b.machine(vec![Some(ri(4)), Some(ri(3))]);
        b.machine(vec![Some(ri(2)), Some(ri(6))]);
        let inst = b.build().unwrap();
        let div = min_max_weighted_flow_divisible(&inst);
        let pre = min_max_weighted_flow_preemptive(&inst);
        assert!(div.optimum <= pre.optimum);
        validate(&inst, &div.schedule).unwrap();
        validate(&inst, &pre.schedule).unwrap();
        assert_eq!(pre.schedule.max_weighted_flow(&inst), pre.optimum);
    }

    #[test]
    fn stretch_convenience() {
        let mut b = InstanceBuilder::<Rat>::new();
        b.job(Rat::zero(), Rat::one()); // weight replaced by 1/c
        b.machine(vec![Some(ri(5))]);
        let inst = b.build().unwrap();
        let out = min_max_stretch_divisible(&inst);
        // Alone in the system: stretch 1.
        assert_eq!(out.optimum, Rat::one());
    }

    #[test]
    fn uniform_probe_method_matches_lp_probes() {
        // A uniform instance (W·s factorization) with staggered releases.
        let mut b = InstanceBuilder::<Rat>::new();
        b.job(Rat::zero(), Rat::one());
        b.job(ri(1), ri(2));
        b.job(ri(3), Rat::one());
        b.machine(vec![Some(ri(4)), Some(ri(2)), Some(ri(6))]);
        b.machine(vec![Some(ri(8)), None, Some(ri(12))]);
        let inst = b.build().unwrap();
        let lp = min_max_weighted_flow_divisible_with(&inst, ProbeMethod::Lp);
        let mf = min_max_weighted_flow_divisible_with(&inst, ProbeMethod::MaxFlowUniform);
        assert_eq!(lp.optimum, mf.optimum);
        validate(&inst, &mf.schedule).unwrap();
        assert_eq!(mf.schedule.max_weighted_flow(&inst), mf.optimum);
    }

    #[test]
    fn maxflow_probe_falls_back_on_unrelated() {
        // Genuinely unrelated costs: MaxFlowUniform must silently fall
        // back to LP probes and still return the exact optimum.
        let mut b = InstanceBuilder::<Rat>::new();
        b.job(Rat::zero(), Rat::one());
        b.job(Rat::zero(), Rat::one());
        b.machine(vec![Some(ri(2)), Some(ri(9))]);
        b.machine(vec![Some(ri(7)), Some(ri(3))]);
        let inst = b.build().unwrap();
        let lp = min_max_weighted_flow_divisible_with(&inst, ProbeMethod::Lp);
        let mf = min_max_weighted_flow_divisible_with(&inst, ProbeMethod::MaxFlowUniform);
        assert_eq!(lp.optimum, mf.optimum);
    }

    #[test]
    fn bisection_brackets_the_exact_optimum() {
        let mut b = InstanceBuilder::<Rat>::new();
        b.job(Rat::zero(), Rat::one());
        b.job(ri(1), ri(2));
        b.machine(vec![Some(ri(3)), Some(ri(2))]);
        b.machine(vec![Some(ri(6)), Some(ri(4))]);
        let inst = b.build().unwrap();
        let exact = min_max_weighted_flow_divisible(&inst);
        let approx = min_max_weighted_flow_bisection(&inst, &Rat::from_ratio(1, 1000), false);
        // The bisection answer is feasible and within eps of the optimum...
        assert!(approx.approx_optimum >= exact.optimum);
        let rel = approx
            .approx_optimum
            .sub_ref(&exact.optimum)
            .div_ref(&exact.optimum);
        assert!(rel <= Rat::from_ratio(1, 500), "rel error {rel}");
        // ...but needs far more probes than the milestone search.
        assert!(approx.iterations > exact.stats.n_probes);
    }

    #[test]
    fn f64_mode_close_to_exact() {
        let mut b = InstanceBuilder::<f64>::new();
        b.job(0.0, 1.0);
        b.job(1.0, 2.0);
        b.machine(vec![Some(3.0), Some(2.0)]);
        b.machine(vec![Some(6.0), Some(4.0)]);
        let inst = b.build().unwrap();
        let approx = min_max_weighted_flow_divisible(&inst);
        let exact = min_max_weighted_flow_divisible(&inst.map_scalar(|v| Rat::from_f64(*v)));
        assert!((approx.optimum - exact.optimum.to_f64()).abs() < 1e-6);
    }
}
