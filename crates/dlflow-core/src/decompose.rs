//! Lawler–Labetoulle / Gonzalez–Sahni matrix decomposition (§4.4).
//!
//! Given, for one time interval of length `L`, the matrix `T[i][j]` of
//! processing time job `j` receives on machine `i`, with
//!
//! * row sums ≤ `L` (machine capacity — Equation (5c)), and
//! * column sums ≤ `L` (a job is on one machine at a time — Equation (5b)),
//!
//! build a sequence of *phases*: sub-intervals during which every machine
//! processes at most one job and every job occupies at most one machine.
//! Concatenating the phases yields a valid preemptive schedule of length
//! exactly `L` for the interval.
//!
//! Method (Birkhoff–von Neumann): pad `T` to an `(m+n)×(n+m)` square
//! matrix whose every row and column sums to exactly `L`; the support of
//! such a matrix always contains a perfect matching (Hall's condition via
//! doubly-stochastic scaling), which is extracted with Hopcroft–Karp; the
//! phase duration is the smallest matched entry, so every phase zeroes at
//! least one entry and at most `(m+n)²` phases are produced.

use crate::matching::hopcroft_karp;
use dlflow_num::Scalar;

/// One phase of the rebuilt open-shop style schedule.
#[derive(Clone, Debug)]
pub struct Phase<S> {
    /// Phase duration (> 0).
    pub duration: S,
    /// `(machine, job)` pairs active during the phase (each machine and
    /// each job appears at most once).
    pub assignment: Vec<(usize, usize)>,
}

/// Decomposes the interval work matrix into phases. See module docs.
///
/// Panics if a row or column sum exceeds `len` beyond tolerance (the LP
/// guarantees it cannot on a correct solution).
pub fn decompose_interval<S: Scalar>(work: &[Vec<S>], len: &S) -> Vec<Phase<S>> {
    let m = work.len();
    if m == 0 {
        return Vec::new();
    }
    let n = work[0].len();
    debug_assert!(work.iter().all(|r| r.len() == n));

    // Row/column sums of the real block.
    let mut row_sum = vec![S::zero(); m];
    let mut col_sum = vec![S::zero(); n];
    for (i, row) in work.iter().enumerate() {
        for (j, w) in row.iter().enumerate() {
            assert!(!w.is_negative_tol(), "negative work entry");
            row_sum[i] = row_sum[i].add(w);
            col_sum[j] = col_sum[j].add(w);
        }
    }
    for (i, rs) in row_sum.iter().enumerate() {
        assert!(rs.le_tol(len), "machine {i} overloaded: {rs} > {len}");
    }
    for (j, cs) in col_sum.iter().enumerate() {
        assert!(cs.le_tol(len), "job {j} over-scheduled: {cs} > {len}");
    }

    if !len.is_positive_tol() {
        return Vec::new();
    }

    // Padded square matrix of order q = m + n:
    //   rows   0..m   = machines,     m..q = per-job slack rows
    //   cols   0..n   = jobs,         n..q = per-machine slack cols
    let q = m + n;
    let mut mat = vec![vec![S::zero(); q]; q];
    for i in 0..m {
        for j in 0..n {
            mat[i][j] = work[i][j].clone();
        }
        // Machine idle time.
        mat[i][n + i] = len.sub(&row_sum[i]);
    }
    for j in 0..n {
        // Job idle time.
        mat[m + j][j] = len.sub(&col_sum[j]);
    }
    // Bottom-right block X: row m+j needs an extra col_sum[j]; column n+i
    // needs an extra row_sum[i]. Totals agree (both equal total work), so
    // a northwest-corner transportation fill always succeeds.
    {
        let mut need_row: Vec<S> = col_sum.clone(); // indexed by j
        let mut need_col: Vec<S> = row_sum.clone(); // indexed by i
        let mut i = 0usize;
        let mut j = 0usize;
        while i < m && j < n {
            if !need_col[i].is_positive_tol() {
                i += 1;
                continue;
            }
            if !need_row[j].is_positive_tol() {
                j += 1;
                continue;
            }
            let x = if need_row[j].lt_tol(&need_col[i]) {
                need_row[j].clone()
            } else {
                need_col[i].clone()
            };
            mat[m + j][n + i] = mat[m + j][n + i].add(&x);
            need_row[j] = need_row[j].sub(&x);
            need_col[i] = need_col[i].sub(&x);
        }
    }

    // Repeatedly extract perfect matchings on the positive support.
    let mut remaining = len.clone();
    let mut phases: Vec<Phase<S>> = Vec::new();
    let max_iter = q * q + q + 4;
    for _ in 0..max_iter {
        if !remaining.is_positive_tol() {
            break;
        }
        let adj: Vec<Vec<usize>> = (0..q)
            .map(|r| (0..q).filter(|&c| mat[r][c].is_positive_tol()).collect())
            .collect();
        let (size, ml, _) = hopcroft_karp(q, q, &adj);
        assert_eq!(
            size, q,
            "padded balanced matrix must admit a perfect matching (Birkhoff); \
             this indicates numerical drift or an invalid LP solution"
        );
        // Phase duration: smallest matched entry (bounded by remaining).
        let mut delta = remaining.clone();
        for (r, &c) in ml.iter().enumerate() {
            if mat[r][c].lt_tol(&delta) {
                delta = mat[r][c].clone();
            }
        }
        debug_assert!(delta.is_positive_tol());
        let mut assignment = Vec::new();
        for (r, &c) in ml.iter().enumerate() {
            if r < m && c < n {
                assignment.push((r, c));
            }
            mat[r][c] = mat[r][c].sub(&delta);
            if mat[r][c].is_negative_tol() || mat[r][c].is_negligible() {
                mat[r][c] = S::zero();
            }
        }
        remaining = remaining.sub(&delta);
        if remaining.is_negligible() {
            remaining = S::zero();
        }
        phases.push(Phase {
            duration: delta,
            assignment,
        });
    }
    assert!(
        !remaining.is_positive_tol(),
        "decomposition did not exhaust the interval: {remaining} left of {len}"
    );
    phases
}

/// Checks the defining properties of a phase list against the original
/// work matrix (used by tests and the §4.4 experiment binary):
/// 1. total phase duration equals `len`;
/// 2. each machine/job appears at most once per phase;
/// 3. summing phase durations per `(machine, job)` reproduces `work`.
pub fn verify_phases<S: Scalar>(
    work: &[Vec<S>],
    len: &S,
    phases: &[Phase<S>],
) -> Result<(), String> {
    let m = work.len();
    let n = if m == 0 { 0 } else { work[0].len() };
    let mut total = S::zero();
    let mut acc = vec![vec![S::zero(); n]; m];
    for (p, phase) in phases.iter().enumerate() {
        if !phase.duration.is_positive_tol() {
            return Err(format!("phase {p} has non-positive duration"));
        }
        total = total.add(&phase.duration);
        let mut seen_m = vec![false; m];
        let mut seen_j = vec![false; n];
        for &(i, j) in &phase.assignment {
            if seen_m[i] {
                return Err(format!("phase {p}: machine {i} assigned twice"));
            }
            if seen_j[j] {
                return Err(format!("phase {p}: job {j} assigned twice"));
            }
            seen_m[i] = true;
            seen_j[j] = true;
            acc[i][j] = acc[i][j].add(&phase.duration);
        }
    }
    if total.gt_tol(len) {
        return Err(format!("phases overrun the interval: {total} > {len}"));
    }
    for i in 0..m {
        for j in 0..n {
            if !acc[i][j].sub(&work[i][j]).is_negligible() {
                return Err(format!(
                    "work mismatch at ({i},{j}): rebuilt {} expected {}",
                    acc[i][j], work[i][j]
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlflow_num::Rat;

    fn r(v: i64) -> Rat {
        Rat::from_i64(v)
    }

    #[test]
    fn empty_interval_yields_no_phases() {
        let work: Vec<Vec<Rat>> = vec![vec![Rat::zero(); 2]; 2];
        let phases = decompose_interval(&work, &Rat::zero());
        assert!(phases.is_empty());
    }

    #[test]
    fn diagonal_matrix_single_phase_like() {
        // Each machine has its own job: a single assignment pattern suffices.
        let work = vec![vec![r(3), Rat::zero()], vec![Rat::zero(), r(3)]];
        let phases = decompose_interval(&work, &r(3));
        verify_phases(&work, &r(3), &phases).unwrap();
    }

    #[test]
    fn swap_required() {
        // Both jobs need time on both machines: at least two phases.
        let work = vec![vec![r(2), r(2)], vec![r(2), r(2)]];
        let phases = decompose_interval(&work, &r(4));
        assert!(phases.len() >= 2);
        verify_phases(&work, &r(4), &phases).unwrap();
    }

    #[test]
    fn slack_rows_and_cols_absorb_idle_time() {
        // Unbalanced: machine 0 works 3 of 5; job 1 gets only 1 unit.
        let work = vec![vec![r(2), r(1)], vec![Rat::zero(), Rat::zero()]];
        let phases = decompose_interval(&work, &r(5));
        verify_phases(&work, &r(5), &phases).unwrap();
    }

    #[test]
    fn rectangular_more_jobs_than_machines() {
        let work = vec![vec![r(1), r(2), r(1)]];
        let phases = decompose_interval(&work, &r(4));
        verify_phases(&work, &r(4), &phases).unwrap();
        // Single machine: every phase has at most one (machine, job) pair.
        for p in &phases {
            assert!(p.assignment.len() <= 1);
        }
    }

    #[test]
    fn rectangular_more_machines_than_jobs() {
        let work = vec![vec![r(2)], vec![r(1)], vec![Rat::zero()]];
        let phases = decompose_interval(&work, &r(3));
        verify_phases(&work, &r(3), &phases).unwrap();
        // The single job is never on two machines at once.
        for p in &phases {
            let jobs: Vec<_> = p.assignment.iter().map(|&(_, j)| j).collect();
            let mut uniq = jobs.clone();
            uniq.dedup();
            assert_eq!(jobs.len(), uniq.len());
        }
    }

    #[test]
    fn fractional_entries_exact() {
        let work = vec![
            vec![Rat::from_ratio(1, 3), Rat::from_ratio(1, 2)],
            vec![Rat::from_ratio(2, 3), Rat::from_ratio(1, 6)],
        ];
        let len = Rat::from_ratio(7, 6);
        let phases = decompose_interval(&work, &len);
        verify_phases(&work, &len, &phases).unwrap();
    }

    #[test]
    #[should_panic(expected = "overloaded")]
    fn overloaded_machine_panics() {
        let work = vec![vec![r(5)]];
        let _ = decompose_interval(&work, &r(3));
    }

    #[test]
    fn f64_numerical_path() {
        let work = vec![vec![0.3, 0.5], vec![0.6, 0.1]];
        let phases = decompose_interval(&work, &1.0f64);
        verify_phases(&work, &1.0, &phases).unwrap();
    }

    #[test]
    fn phase_count_is_polynomial() {
        // 3×3 dense matrix: phases ≤ (m+n)² = 36.
        let work = vec![
            vec![r(1), r(2), r(3)],
            vec![r(3), r(1), r(2)],
            vec![r(2), r(3), r(1)],
        ];
        let phases = decompose_interval(&work, &r(6));
        assert!(phases.len() <= 36);
        verify_phases(&work, &r(6), &phases).unwrap();
    }
}
