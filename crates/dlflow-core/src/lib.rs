//! # dlflow-core — the paper's contribution
//!
//! Off-line scheduling of divisible requests on an heterogeneous
//! collection of databanks (Legrand, Su, Vivien — IPPS/HCW 2005,
//! INRIA RR-5386), implemented in full:
//!
//! * **Theorem 1** ([`makespan::min_makespan`]): divisible makespan
//!   minimization via Linear Program (1) over release-date intervals.
//! * **Lemma 1** ([`deadline`]): deadline-window feasibility via
//!   System (2), with divisible and preemptive variants.
//! * **Theorem 2** ([`maxflow::min_max_weighted_flow_divisible`]): exact
//!   polynomial minimization of the maximum weighted flow
//!   `max_j w_j (C_j − r_j)` on unrelated machines in the divisible-load
//!   model — milestone enumeration ([`milestones`]), binary search with
//!   deadline-feasibility probes, and one parametric LP (System (3)) on
//!   the isolated milestone range.
//! * **§4.4** ([`maxflow::min_max_weighted_flow_preemptive`]): the same
//!   objective under preemption *without* divisibility — System (5) plus
//!   the Lawler–Labetoulle / Gonzalez–Sahni phase decomposition
//!   ([`decompose`]) rebuilding an explicit schedule in which a job never
//!   runs on two machines simultaneously.
//!
//! Everything is generic over [`dlflow_num::Scalar`]: use `Rat` for exact
//! optimality (the form the theorems are stated in) or `f64` for fast
//! sweeps. Every produced schedule can be re-checked from first
//! principles with [`validate::validate`].
//!
//! ## Quickstart
//!
//! ```
//! use dlflow_core::instance::InstanceBuilder;
//! use dlflow_core::maxflow::min_max_weighted_flow_divisible;
//! use dlflow_core::validate::validate;
//! use dlflow_num::Rat;
//!
//! // Two databank servers, two motif-comparison requests.
//! let mut b = InstanceBuilder::<Rat>::new();
//! b.job(Rat::zero(), Rat::one());               // r=0, w=1
//! b.job(Rat::from_i64(1), Rat::from_i64(2));    // r=1, w=2
//! b.machine(vec![Some(Rat::from_i64(4)), Some(Rat::from_i64(2))]);
//! b.machine(vec![Some(Rat::from_i64(8)), None]); // second databank absent
//! let inst = b.build().unwrap();
//!
//! let out = min_max_weighted_flow_divisible(&inst);
//! validate(&inst, &out.schedule).unwrap();
//! assert_eq!(out.schedule.max_weighted_flow(&inst), out.optimum);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![allow(clippy::needless_range_loop)] // matrix/interval code indexes parallel structures in lockstep

pub mod baselines;
pub mod deadline;
pub mod decompose;
pub mod flownet;
pub mod gantt;
pub mod instance;
pub mod intervals;
pub mod lp_build;
pub mod makespan;
pub mod matching;
pub mod maxflow;
pub mod milestones;
pub mod schedule;
pub mod uniform;
pub mod validate;

pub use instance::{Cost, Instance, InstanceBuilder, InstanceError, Job};
pub use makespan::{min_makespan, MakespanOutcome};
pub use maxflow::{
    feasible_at, min_max_stretch_divisible, min_max_weighted_flow_bisection,
    min_max_weighted_flow_divisible, min_max_weighted_flow_divisible_with,
    min_max_weighted_flow_preemptive, BisectionOutcome, FlowOutcome, FlowStats, ProbeMethod,
};
pub use schedule::{Schedule, ScheduleKind, Slice};
pub use validate::{validate, validate_with_objective, ValidationError};
