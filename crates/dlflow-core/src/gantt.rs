//! ASCII Gantt-chart rendering of schedules, for examples and experiment
//! binaries (a textual stand-in for the paper's figures).

use crate::schedule::Schedule;
use dlflow_num::Scalar;

/// Glyph for job `j`: `1`–`9`, then `a`–`z`, then `#`.
fn glyph(job: usize) -> char {
    match job {
        // dlflint:allow(lossy-cast, "match arm bounds job to 0..=8")
        0..=8 => (b'1' + job as u8) as char,
        // dlflint:allow(lossy-cast, "match arm bounds job - 9 to 0..=25")
        9..=34 => (b'a' + (job - 9) as u8) as char,
        _ => '#',
    }
}

/// Renders the schedule as one row of `width` columns per machine,
/// `·` for idle time, digits/letters identifying jobs. The time axis
/// spans `[0, makespan]`.
pub fn render_gantt<S: Scalar>(sched: &Schedule<S>, width: usize) -> String {
    let width = width.max(10);
    let horizon = sched.makespan().to_f64().max(1e-12);
    let mut out = String::new();
    for (i, tl) in sched.machines.iter().enumerate() {
        let mut row = vec!['.'; width];
        for s in tl {
            // dlflint:allow(lossy-cast, "start/horizon is in [0, 1]; product is in [0, width]")
            let a = (s.start.to_f64() / horizon * width as f64).round() as usize;
            // dlflint:allow(lossy-cast, "end/horizon is in [0, 1]; product is in [0, width]")
            let b = (s.end.to_f64() / horizon * width as f64).round() as usize;
            let b = b.max(a + 1).min(width);
            for cell in row.iter_mut().take(b).skip(a.min(width - 1)) {
                *cell = glyph(s.job);
            }
        }
        out.push_str(&format!("M{:<2} |", i + 1));
        out.extend(row);
        out.push_str("|\n");
    }
    out.push_str(&format!(
        "     0{}{:.3}\n",
        " ".repeat(width.saturating_sub(6)),
        horizon
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{ScheduleKind, Slice};

    #[test]
    fn renders_rows_and_axis() {
        let mut s = Schedule::<f64>::empty(2, ScheduleKind::Divisible);
        s.push(
            0,
            Slice {
                job: 0,
                start: 0.0,
                end: 5.0,
            },
        );
        s.push(
            1,
            Slice {
                job: 1,
                start: 5.0,
                end: 10.0,
            },
        );
        let g = render_gantt(&s, 20);
        let lines: Vec<&str> = g.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("M1"));
        assert!(lines[0].contains('1'));
        assert!(lines[1].contains('2'));
        // M1 idle in the second half, M2 idle in the first half.
        assert!(lines[0].contains('.'));
        assert!(lines[1].starts_with("M2  |."));
        assert!(lines[2].contains("10.000"));
    }

    #[test]
    fn glyphs_cover_many_jobs() {
        assert_eq!(glyph(0), '1');
        assert_eq!(glyph(8), '9');
        assert_eq!(glyph(9), 'a');
        assert_eq!(glyph(34), 'z');
        assert_eq!(glyph(35), '#');
    }

    #[test]
    fn empty_schedule_is_all_idle() {
        let s = Schedule::<f64>::empty(1, ScheduleKind::Divisible);
        let g = render_gantt(&s, 12);
        assert!(g.lines().next().unwrap().contains("............"));
    }
}
