//! Offline non-divisible baselines.
//!
//! These classical list-scheduling heuristics assign each job *entirely*
//! to one machine, without preemption. They upper-bound the preemptive
//! optimum, which in turn upper-bounds the divisible optimum — the chain
//!
//! `F*_divisible ≤ F*_preemptive ≤ F_baseline`
//!
//! is asserted by integration tests and reported by the Theorem-2
//! experiment binary.

use crate::instance::Instance;
use crate::schedule::{Schedule, ScheduleKind, Slice};
use dlflow_num::Scalar;

/// Job ordering used by [`list_schedule`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ListOrder {
    /// By release date (FIFO): the paper's "classical heuristics" family.
    ReleaseDate,
    /// Shortest fastest-processing-time first (SPT), ties by release.
    ShortestFirst,
    /// Highest weight first, ties by release.
    WeightedFirst,
}

/// Greedy non-divisible list scheduling: jobs in the given order, each
/// placed whole on the machine giving the **minimum completion time**
/// (the MCT rule), respecting availability and the machine's current load.
pub fn list_schedule<S: Scalar>(inst: &Instance<S>, order: ListOrder) -> Schedule<S> {
    let mut idx: Vec<usize> = (0..inst.n_jobs()).collect();
    match order {
        ListOrder::ReleaseDate => {
            idx.sort_by(|&a, &b| inst.job(a).release.cmp_total(&inst.job(b).release));
        }
        ListOrder::ShortestFirst => {
            idx.sort_by(|&a, &b| {
                inst.fastest_cost(a)
                    .cmp_total(&inst.fastest_cost(b))
                    .then(inst.job(a).release.cmp_total(&inst.job(b).release))
            });
        }
        ListOrder::WeightedFirst => {
            idx.sort_by(|&a, &b| {
                inst.job(b)
                    .weight
                    .cmp_total(&inst.job(a).weight)
                    .then(inst.job(a).release.cmp_total(&inst.job(b).release))
            });
        }
    }

    let mut free_at: Vec<S> = vec![S::zero(); inst.n_machines()];
    let mut sched = Schedule::empty(inst.n_machines(), ScheduleKind::Preemptive);
    for j in idx {
        let rel = &inst.job(j).release;
        let mut best: Option<(usize, S, S)> = None; // (machine, start, end)
        for i in 0..inst.n_machines() {
            let Some(c) = inst.cost(i, j).finite() else {
                continue;
            };
            let start = S::max_val(free_at[i].clone(), rel.clone());
            let end = start.add(c);
            let better = match &best {
                None => true,
                Some((_, _, be)) => end.lt_tol(be),
            };
            if better {
                best = Some((i, start, end));
            }
        }
        let (i, start, end) = best.expect("validated instance: some machine is available");
        free_at[i] = end.clone();
        sched.push(i, Slice { job: j, start, end });
    }
    sched.normalize();
    sched
}

/// Max weighted flow achieved by a baseline (convenience wrapper).
pub fn baseline_max_weighted_flow<S: Scalar>(inst: &Instance<S>, order: ListOrder) -> S {
    list_schedule(inst, order).max_weighted_flow(inst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceBuilder;
    use crate::maxflow::{min_max_weighted_flow_divisible, min_max_weighted_flow_preemptive};
    use crate::validate::validate;
    use dlflow_num::Rat;

    fn ri(v: i64) -> Rat {
        Rat::from_i64(v)
    }

    fn sample() -> Instance<Rat> {
        let mut b = InstanceBuilder::<Rat>::new();
        b.job(Rat::zero(), Rat::one());
        b.job(ri(1), ri(2));
        b.job(ri(2), Rat::one());
        b.machine(vec![Some(ri(4)), Some(ri(3)), Some(ri(5))]);
        b.machine(vec![Some(ri(8)), Some(ri(6)), None]);
        b.build().unwrap()
    }

    #[test]
    fn baselines_produce_valid_schedules() {
        let inst = sample();
        for order in [
            ListOrder::ReleaseDate,
            ListOrder::ShortestFirst,
            ListOrder::WeightedFirst,
        ] {
            let s = list_schedule(&inst, order);
            validate(&inst, &s).unwrap();
            // Non-preemptive single-assignment: one slice per job.
            assert_eq!(s.n_slices(), inst.n_jobs());
        }
    }

    #[test]
    fn optimality_chain_holds() {
        let inst = sample();
        let div = min_max_weighted_flow_divisible(&inst);
        let pre = min_max_weighted_flow_preemptive(&inst);
        let base = baseline_max_weighted_flow(&inst, ListOrder::ReleaseDate);
        assert!(div.optimum <= pre.optimum, "divisible ≤ preemptive");
        assert!(
            pre.optimum <= base,
            "preemptive optimum ≤ FIFO-MCT baseline"
        );
    }

    #[test]
    fn mct_picks_fast_machine() {
        let mut b = InstanceBuilder::<Rat>::new();
        b.job(Rat::zero(), Rat::one());
        b.machine(vec![Some(ri(10))]);
        b.machine(vec![Some(ri(2))]);
        let inst = b.build().unwrap();
        let s = list_schedule(&inst, ListOrder::ReleaseDate);
        assert!(s.machines[0].is_empty());
        assert_eq!(s.machines[1].len(), 1);
        assert_eq!(s.makespan(), ri(2));
    }

    #[test]
    fn mct_respects_availability() {
        let mut b = InstanceBuilder::<Rat>::new();
        b.job(Rat::zero(), Rat::one());
        b.job(Rat::zero(), Rat::one());
        b.machine(vec![Some(ri(1)), None]);
        b.machine(vec![None, Some(ri(1))]);
        let inst = b.build().unwrap();
        let s = list_schedule(&inst, ListOrder::ReleaseDate);
        validate(&inst, &s).unwrap();
    }

    #[test]
    fn queueing_delays_later_jobs() {
        let mut b = InstanceBuilder::<Rat>::new();
        b.job(Rat::zero(), Rat::one());
        b.job(Rat::zero(), Rat::one());
        b.machine(vec![Some(ri(3)), Some(ri(3))]);
        let inst = b.build().unwrap();
        let s = list_schedule(&inst, ListOrder::ReleaseDate);
        validate(&inst, &s).unwrap();
        assert_eq!(s.makespan(), ri(6)); // back to back on the single machine
    }
}
