//! Hopcroft–Karp maximum bipartite matching.
//!
//! Used by the Gonzalez–Sahni/Birkhoff decomposition (§4.4): each phase of
//! the rebuilt preemptive schedule is a perfect matching between machines
//! and jobs on the positive entries of the (padded) work matrix.

/// Maximum matching in a bipartite graph.
///
/// `adj[u]` lists the right-side vertices adjacent to left vertex `u`.
/// Returns `(size, match_left, match_right)` where `match_left[u]` is the
/// right partner of `u` (or `usize::MAX`), and symmetrically.
pub fn hopcroft_karp(
    n_left: usize,
    n_right: usize,
    adj: &[Vec<usize>],
) -> (usize, Vec<usize>, Vec<usize>) {
    assert_eq!(adj.len(), n_left, "adjacency list length must equal n_left");
    const NIL: usize = usize::MAX;
    let mut ml = vec![NIL; n_left];
    let mut mr = vec![NIL; n_right];
    let mut dist = vec![0u32; n_left];
    let mut size = 0usize;

    loop {
        // BFS layering from free left vertices.
        let mut queue: Vec<usize> = Vec::new();
        for u in 0..n_left {
            if ml[u] == NIL {
                dist[u] = 0;
                queue.push(u);
            } else {
                dist[u] = u32::MAX;
            }
        }
        let mut found_free_right = false;
        let mut head = 0;
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            for &v in &adj[u] {
                let w = mr[v];
                if w == NIL {
                    found_free_right = true;
                } else if dist[w] == u32::MAX {
                    dist[w] = dist[u] + 1;
                    queue.push(w);
                }
            }
        }
        if !found_free_right {
            break;
        }

        // DFS augmentation along layered paths.
        fn dfs(
            u: usize,
            adj: &[Vec<usize>],
            ml: &mut [usize],
            mr: &mut [usize],
            dist: &mut [u32],
        ) -> bool {
            const NIL: usize = usize::MAX;
            for idx in 0..adj[u].len() {
                let v = adj[u][idx];
                let w = mr[v];
                if w == NIL || (dist[w] == dist[u] + 1 && dfs(w, adj, ml, mr, dist)) {
                    ml[u] = v;
                    mr[v] = u;
                    return true;
                }
            }
            dist[u] = u32::MAX;
            false
        }

        for u in 0..n_left {
            if ml[u] == NIL && dfs(u, adj, &mut ml, &mut mr, &mut dist) {
                size += 1;
            }
        }
    }
    (size, ml, mr)
}

/// Checks Hall's condition violation witness: returns `true` iff a perfect
/// matching saturating the left side exists (`size == n_left`).
pub fn has_perfect_matching(n_left: usize, n_right: usize, adj: &[Vec<usize>]) -> bool {
    hopcroft_karp(n_left, n_right, adj).0 == n_left
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_on_identity() {
        let adj = vec![vec![0], vec![1], vec![2]];
        let (size, ml, mr) = hopcroft_karp(3, 3, &adj);
        assert_eq!(size, 3);
        assert_eq!(ml, vec![0, 1, 2]);
        assert_eq!(mr, vec![0, 1, 2]);
    }

    #[test]
    fn augmenting_path_needed() {
        // L0 → {R0}, L1 → {R0, R1}: greedy could block; HK must find both.
        let adj = vec![vec![0], vec![0, 1]];
        let (size, ml, _) = hopcroft_karp(2, 2, &adj);
        assert_eq!(size, 2);
        assert_eq!(ml[0], 0);
        assert_eq!(ml[1], 1);
    }

    #[test]
    fn long_augmenting_chain() {
        // Chain forcing repeated reassignments.
        let adj = vec![vec![0], vec![0, 1], vec![1, 2], vec![2, 3]];
        let (size, _, _) = hopcroft_karp(4, 4, &adj);
        assert_eq!(size, 4);
    }

    #[test]
    fn imperfect_when_hall_violated() {
        // Three left vertices all adjacent only to two right vertices.
        let adj = vec![vec![0, 1], vec![0, 1], vec![0, 1]];
        let (size, _, _) = hopcroft_karp(3, 2, &adj);
        assert_eq!(size, 2);
        assert!(!has_perfect_matching(3, 2, &adj));
    }

    #[test]
    fn empty_graph() {
        let adj: Vec<Vec<usize>> = vec![vec![], vec![]];
        let (size, ml, _) = hopcroft_karp(2, 2, &adj);
        assert_eq!(size, 0);
        assert_eq!(ml, vec![usize::MAX, usize::MAX]);
    }

    #[test]
    fn matching_is_consistent() {
        let adj = vec![vec![1, 2], vec![0, 2], vec![0, 1], vec![2, 3]];
        let (size, ml, mr) = hopcroft_karp(4, 4, &adj);
        assert_eq!(size, 4);
        for (u, &v) in ml.iter().enumerate() {
            if v != usize::MAX {
                assert_eq!(mr[v], u);
                assert!(adj[u].contains(&v));
            }
        }
    }

    #[test]
    fn doubly_stochastic_support_has_perfect_matching() {
        // Positive support of a doubly stochastic matrix (Birkhoff): a
        // 4×4 circulant support must admit a perfect matching.
        let adj = vec![vec![0, 1], vec![1, 2], vec![2, 3], vec![3, 0]];
        assert!(has_perfect_matching(4, 4, &adj));
    }
}
