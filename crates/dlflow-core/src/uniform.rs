//! Combinatorial fast path for *uniform machines with restricted
//! availabilities* (§3).
//!
//! The paper notes that for GriPPS "the problem is essentially a uniform
//! machines with restricted availabilities scheduling problem": costs
//! factorize as `c[i][j] = W_j · s_i`. Under divisibility, System (2)
//! then degenerates into a transportation problem — job `j` must ship
//! `W_j` units of work, machine `i` offers `len(I_t)/s_i` units in
//! interval `I_t`, shipping allowed only inside the job's
//! `[r_j, d̄_j]` window and where the databank is present — which a single
//! max-flow computation decides. This replaces the LP feasibility probe
//! of the milestone binary search with a polynomial combinatorial
//! algorithm, and extracts a schedule from the flow values with no LP at
//! all.
//!
//! (The per-job bound (5b) of the preemptive variant is *not* expressible
//! this way when speeds differ, because a job's wall-clock usage mixes
//! work units at different rates; the preemptive path keeps the LP.)

use crate::flownet::FlowNetwork;
use crate::instance::Instance;
use crate::intervals::ConcreteIntervals;
use crate::schedule::{Schedule, ScheduleKind, Slice};
use dlflow_num::Scalar;

/// The factorized form of a uniform instance: `c[i][j] = work[j] · speed[i]`.
#[derive(Clone, Debug)]
pub struct UniformFactors<S> {
    /// Per-machine cycle time `s_i` (seconds per work unit); the overall
    /// scale is normalized so the first machine with any finite cost has
    /// speed 1.
    pub speed: Vec<S>,
    /// Per-job work `W_j` in those units.
    pub work: Vec<S>,
}

/// Attempts to factorize the cost matrix as `c[i][j] = W_j · s_i` on the
/// finite entries. Returns `None` when the instance is genuinely
/// unrelated (no consistent factorization exists).
pub fn uniform_factors<S: Scalar>(inst: &Instance<S>) -> Option<UniformFactors<S>> {
    let n = inst.n_jobs();
    let m = inst.n_machines();
    let mut speed: Vec<Option<S>> = vec![None; m];
    let mut work: Vec<Option<S>> = vec![None; n];

    // Propagate assignments across the machine–job availability graph.
    // Each connected component can be normalized independently.
    loop {
        let mut changed = false;
        // Seed any untouched component: first machine with a finite cost
        // to an unassigned job, or an entirely fresh machine.
        if let Some(i) =
            (0..m).find(|&i| speed[i].is_none() && (0..n).any(|j| inst.cost(i, j).is_finite()))
        {
            let fresh = (0..n).all(|j| !inst.cost(i, j).is_finite() || work[j].is_none());
            if fresh {
                speed[i] = Some(S::one());
                changed = true;
            }
        }
        for i in 0..m {
            for j in 0..n {
                let Some(c) = inst.cost(i, j).finite() else {
                    continue;
                };
                match (&speed[i], &work[j]) {
                    (Some(s), None) => {
                        if s.is_negligible() {
                            return None; // zero speed with finite cost: degenerate
                        }
                        work[j] = Some(c.div(s));
                        changed = true;
                    }
                    (None, Some(w)) => {
                        if w.is_negligible() {
                            // Zero-work job constrains nothing; cost must be 0.
                            if !c.is_negligible() {
                                return None;
                            }
                        } else {
                            speed[i] = Some(c.div(w));
                            changed = true;
                        }
                    }
                    (Some(s), Some(w)) => {
                        if !c.sub(&s.mul(w)).is_negligible() {
                            return None; // inconsistent: truly unrelated
                        }
                    }
                    (None, None) => {}
                }
            }
        }
        if !changed {
            break;
        }
    }
    // Machines with no finite entries get speed 1 (they are never used);
    // jobs must all be assigned (every job has a finite machine).
    let speed: Vec<S> = speed
        .into_iter()
        .map(|s| s.unwrap_or_else(S::one))
        .collect();
    let work: Vec<S> = work
        .into_iter()
        .map(|w| w.expect("validated instance: every job has a finite cost"))
        .collect();
    Some(UniformFactors { speed, work })
}

/// Deadline feasibility on a uniform instance via one max-flow
/// computation. Returns `None` when the instance does not factorize;
/// `Some(schedule)` / `Some(None)`-style result otherwise.
///
/// This is Lemma 1 specialised: feasible iff the transportation network
/// saturates the total work `Σ W_j`.
pub fn deadline_feasible_uniform<S: Scalar>(
    inst: &Instance<S>,
    deadlines: &[S],
) -> Option<Option<Schedule<S>>> {
    let factors = uniform_factors(inst)?;
    Some(deadline_feasible_with_factors(inst, deadlines, &factors))
}

/// As [`deadline_feasible_uniform`] with precomputed factors (the
/// milestone search reuses the factors across all probes).
pub fn deadline_feasible_with_factors<S: Scalar>(
    inst: &Instance<S>,
    deadlines: &[S],
    factors: &UniformFactors<S>,
) -> Option<Schedule<S>> {
    assert_eq!(deadlines.len(), inst.n_jobs());
    let n = inst.n_jobs();
    let m = inst.n_machines();

    // Quick reject: empty execution window.
    for j in 0..n {
        if deadlines[j].lt_tol(&inst.job(j).release) {
            return None;
        }
    }

    let mut points: Vec<S> = inst.jobs().iter().map(|j| j.release.clone()).collect();
    points.extend(deadlines.iter().cloned());
    let intervals = ConcreteIntervals::from_points(points);
    let n_int = intervals.n_intervals();

    // Node layout: 0 = source, 1..=n jobs, then n_int×m slot nodes, sink last.
    let slot = |t: usize, i: usize| 1 + n + t * m + i;
    let sink = 1 + n + n_int * m;
    let mut net = FlowNetwork::<S>::new(sink + 1);

    let mut total_work = S::zero();
    let mut job_edge = Vec::with_capacity(n);
    for j in 0..n {
        total_work = total_work.add(&factors.work[j]);
        job_edge.push(net.add_edge(0, 1 + j, factors.work[j].clone()));
    }
    let infinite = total_work.add(&S::one());
    let mut ship_edges: Vec<(usize, usize, usize, usize)> = Vec::new(); // (t, i, j, edge id)
    for t in 0..n_int {
        for i in 0..m {
            if factors.speed[i].is_negligible() {
                continue;
            }
            // Capacity: work deliverable by machine i during I_t.
            let cap = intervals.len(t).div(&factors.speed[i]);
            net.add_edge(slot(t, i), sink, cap);
            for j in 0..n {
                if !inst.cost(i, j).is_finite() {
                    continue;
                }
                if !inst.job(j).release.le_tol(intervals.inf(t)) {
                    continue;
                }
                if !deadlines[j].ge_tol(intervals.sup(t)) {
                    continue;
                }
                let e = net.add_edge(1 + j, slot(t, i), infinite.clone());
                ship_edges.push((t, i, j, e));
            }
        }
    }

    let flow = net.max_flow(0, sink);
    if !flow.sub(&total_work).is_negligible() {
        return None; // some work cannot be shipped: infeasible
    }

    // Rebuild a divisible schedule by packing shipped work per slot.
    let mut sched = Schedule::empty(m, ScheduleKind::Divisible);
    let mut cursor: Vec<Vec<S>> = (0..n_int)
        .map(|t| vec![intervals.inf(t).clone(); m])
        .collect();
    for (t, i, j, e) in ship_edges {
        let shipped = net.flow_on(e);
        if !shipped.is_positive_tol() {
            continue;
        }
        let dur = shipped.mul(&factors.speed[i]);
        let start = cursor[t][i].clone();
        let end = start.add(&dur);
        sched.push(
            i,
            Slice {
                job: j,
                start,
                end: end.clone(),
            },
        );
        cursor[t][i] = end;
    }
    sched.normalize();
    Some(sched)
}

/// Max-flow feasibility probe for "max weighted flow ≤ f": the uniform
/// counterpart of [`crate::maxflow::feasible_at`] (divisible model only).
pub fn feasible_at_uniform<S: Scalar>(
    inst: &Instance<S>,
    f: &S,
    factors: &UniformFactors<S>,
) -> bool {
    let deadlines: Vec<S> = (0..inst.n_jobs()).map(|j| inst.deadline(j, f)).collect();
    deadline_feasible_with_factors(inst, &deadlines, factors).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deadline::deadline_feasible_divisible;
    use crate::instance::InstanceBuilder;
    use crate::validate::validate;
    use dlflow_num::Rat;

    fn ri(v: i64) -> Rat {
        Rat::from_i64(v)
    }

    fn uniform_inst() -> Instance<Rat> {
        // W = [4, 2], s = [1, 2] → c = [[4,2],[8,4]] with one hole.
        let mut b = InstanceBuilder::<Rat>::new();
        b.job(Rat::zero(), Rat::one());
        b.job(ri(1), ri(2));
        b.machine(vec![Some(ri(4)), Some(ri(2))]);
        b.machine(vec![Some(ri(8)), None]);
        b.build().unwrap()
    }

    #[test]
    fn factorization_found() {
        let inst = uniform_inst();
        let f = uniform_factors(&inst).expect("uniform");
        // Normalized to machine 0: speeds [1, 2], works [4, 2].
        assert_eq!(f.speed, vec![Rat::one(), ri(2)]);
        assert_eq!(f.work, vec![ri(4), ri(2)]);
    }

    #[test]
    fn unrelated_matrix_rejected() {
        let mut b = InstanceBuilder::<Rat>::new();
        b.job(Rat::zero(), Rat::one());
        b.job(Rat::zero(), Rat::one());
        b.machine(vec![Some(ri(4)), Some(ri(2))]);
        b.machine(vec![Some(ri(8)), Some(ri(100))]); // breaks the ratio
        let inst = b.build().unwrap();
        assert!(uniform_factors(&inst).is_none());
    }

    #[test]
    fn disconnected_components_factorize() {
        // Machine 0 only runs J0; machine 1 only runs J1: always uniform.
        let mut b = InstanceBuilder::<Rat>::new();
        b.job(Rat::zero(), Rat::one());
        b.job(Rat::zero(), Rat::one());
        b.machine(vec![Some(ri(3)), None]);
        b.machine(vec![None, Some(ri(7))]);
        let inst = b.build().unwrap();
        let f = uniform_factors(&inst).expect("factorizes componentwise");
        // Consistency: c = W·s on all finite entries.
        assert_eq!(f.work[0].mul_ref(&f.speed[0]), ri(3));
        assert_eq!(f.work[1].mul_ref(&f.speed[1]), ri(7));
    }

    #[test]
    fn maxflow_feasibility_matches_lp() {
        let inst = uniform_inst();
        let factors = uniform_factors(&inst).unwrap();
        for (d1, d2) in [(4i64, 3i64), (8, 8), (2, 2), (5, 2), (12, 2)] {
            let deadlines = vec![ri(d1), ri(d2)];
            let lp = deadline_feasible_divisible(&inst, &deadlines).is_some();
            let mf = deadline_feasible_with_factors(&inst, &deadlines, &factors).is_some();
            assert_eq!(lp, mf, "disagreement at deadlines ({d1},{d2})");
        }
    }

    #[test]
    fn maxflow_schedule_is_valid() {
        let inst = uniform_inst();
        let factors = uniform_factors(&inst).unwrap();
        let deadlines = vec![ri(8), ri(8)];
        let sched = deadline_feasible_with_factors(&inst, &deadlines, &factors).expect("feasible");
        validate(&inst, &sched).unwrap();
        let c = sched.completion_times(2);
        assert!(c[0].clone().unwrap() <= ri(8));
        assert!(c[1].clone().unwrap() <= ri(8));
    }

    #[test]
    fn probe_agrees_with_lp_probe() {
        let inst = uniform_inst();
        let factors = uniform_factors(&inst).unwrap();
        for f in [1i64, 2, 4, 6, 8, 16] {
            let fr = ri(f);
            let lp = crate::maxflow::feasible_at(&inst, &fr, false);
            let mf = feasible_at_uniform(&inst, &fr, &factors);
            assert_eq!(lp, mf, "probe disagreement at F = {f}");
        }
    }

    #[test]
    fn infeasible_when_window_empty() {
        let inst = uniform_inst();
        let factors = uniform_factors(&inst).unwrap();
        // J1's deadline before its release.
        assert!(
            deadline_feasible_with_factors(&inst, &[ri(8), Rat::from_ratio(1, 2)], &factors)
                .is_none()
        );
    }
}
