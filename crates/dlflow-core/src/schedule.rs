//! Explicit schedules and their metrics.
//!
//! A schedule is a set of per-machine timelines of [`Slice`]s. Two
//! execution models share the representation:
//!
//! * **Divisible** (§3 "job divisibility"): a job may run on several
//!   machines *simultaneously* — a master hands different byte-ranges of
//!   the databank to different servers.
//! * **Preemptive** (§4.4): a job may be interrupted and resumed, possibly
//!   elsewhere, but never runs on two machines at the same instant.

use crate::instance::Instance;
use dlflow_num::Scalar;
use std::fmt;

/// A contiguous run of one job on one machine.
#[derive(Clone, Debug, PartialEq)]
pub struct Slice<S> {
    /// Job index.
    pub job: usize,
    /// Start time (inclusive).
    pub start: S,
    /// End time (exclusive).
    pub end: S,
}

impl<S: Scalar> Slice<S> {
    /// Slice duration.
    pub fn duration(&self) -> S {
        self.end.sub(&self.start)
    }
}

/// Which execution model a schedule claims to satisfy.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ScheduleKind {
    /// Divisible load: simultaneous execution of one job on many machines allowed.
    Divisible,
    /// Preemption only: a job is on at most one machine at any instant.
    Preemptive,
}

/// An explicit schedule.
#[derive(Clone, Debug)]
pub struct Schedule<S> {
    /// `machines[i]` = time-ordered slices on machine `i`.
    pub machines: Vec<Vec<Slice<S>>>,
    /// Claimed execution model (checked by [`crate::validate::validate`]).
    pub kind: ScheduleKind,
}

impl<S: Scalar> Schedule<S> {
    /// An empty schedule on `m` machines.
    pub fn empty(m: usize, kind: ScheduleKind) -> Self {
        Schedule {
            machines: vec![Vec::new(); m],
            kind,
        }
    }

    /// Appends a slice to machine `i` (dropping zero-length slices).
    pub fn push(&mut self, machine: usize, slice: Slice<S>) {
        if !slice.duration().is_negligible() {
            self.machines[machine].push(slice);
        }
    }

    /// Sorts every machine timeline by start time and merges adjacent
    /// slices of the same job.
    pub fn normalize(&mut self) {
        for tl in &mut self.machines {
            tl.sort_by(|a, b| a.start.cmp_total(&b.start));
            let mut merged: Vec<Slice<S>> = Vec::with_capacity(tl.len());
            for s in tl.drain(..) {
                match merged.last_mut() {
                    Some(last) if last.job == s.job && last.end.sub(&s.start).is_negligible() => {
                        last.end = s.end;
                    }
                    _ => merged.push(s),
                }
            }
            *tl = merged;
        }
    }

    /// Number of machines.
    pub fn n_machines(&self) -> usize {
        self.machines.len()
    }

    /// Total number of slices.
    pub fn n_slices(&self) -> usize {
        self.machines.iter().map(Vec::len).sum()
    }

    /// Per-job completion time: the latest end over all its slices.
    /// `None` for jobs with no slice (which is only legitimate for
    /// zero-work jobs, whose completion is their release date).
    pub fn completion_times(&self, n_jobs: usize) -> Vec<Option<S>> {
        let mut c: Vec<Option<S>> = vec![None; n_jobs];
        for tl in &self.machines {
            for s in tl {
                let cur = &mut c[s.job];
                *cur = Some(match cur.take() {
                    None => s.end.clone(),
                    Some(v) => S::max_val(v, s.end.clone()),
                });
            }
        }
        c
    }

    /// Makespan: the latest slice end (zero for an empty schedule).
    pub fn makespan(&self) -> S {
        let mut best = S::zero();
        for tl in &self.machines {
            for s in tl {
                best = S::max_val(best, s.end.clone());
            }
        }
        best
    }

    /// Per-job slices (across machines), sorted by start time.
    pub fn job_slices(&self, n_jobs: usize) -> Vec<Vec<(usize, Slice<S>)>> {
        let mut out: Vec<Vec<(usize, Slice<S>)>> = vec![Vec::new(); n_jobs];
        for (i, tl) in self.machines.iter().enumerate() {
            for s in tl {
                out[s.job].push((i, s.clone()));
            }
        }
        for v in &mut out {
            v.sort_by(|a, b| a.1.start.cmp_total(&b.1.start));
        }
        out
    }

    /// Fraction of each job processed: `Σ duration / c[i][j]`.
    pub fn processed_fractions(&self, inst: &Instance<S>) -> Vec<S> {
        let mut frac = vec![S::zero(); inst.n_jobs()];
        for (i, tl) in self.machines.iter().enumerate() {
            for s in tl {
                match inst.cost(i, s.job).finite() {
                    Some(c) if !c.is_negligible() => {
                        frac[s.job] = frac[s.job].add(&s.duration().div(c));
                    }
                    Some(_zero_cost) => {
                        // Zero-cost job: any positive time processes it fully.
                        frac[s.job] = S::one();
                    }
                    None => {
                        // Slice on a forbidden machine: leave fraction short;
                        // the validator reports it as an availability breach.
                    }
                }
            }
        }
        frac
    }

    /// Maximum weighted flow `max_j w_j (C_j − r_j)` of the schedule.
    /// Jobs without slices contribute zero (completed at release).
    pub fn max_weighted_flow(&self, inst: &Instance<S>) -> S {
        let c = self.completion_times(inst.n_jobs());
        let mut worst = S::zero();
        for (j, cj) in c.into_iter().enumerate() {
            if let Some(cj) = cj {
                let flow = cj.sub(&inst.job(j).release);
                worst = S::max_val(worst, inst.job(j).weight.mul(&flow));
            }
        }
        worst
    }

    /// Maximum (unweighted) flow `max_j (C_j − r_j)`.
    pub fn max_flow(&self, inst: &Instance<S>) -> S {
        let c = self.completion_times(inst.n_jobs());
        let mut worst = S::zero();
        for (j, cj) in c.into_iter().enumerate() {
            if let Some(cj) = cj {
                worst = S::max_val(worst, cj.sub(&inst.job(j).release));
            }
        }
        worst
    }

    /// Sum of flows `Σ_j (C_j − r_j)`.
    pub fn total_flow(&self, inst: &Instance<S>) -> S {
        let c = self.completion_times(inst.n_jobs());
        let mut acc = S::zero();
        for (j, cj) in c.into_iter().enumerate() {
            if let Some(cj) = cj {
                acc = acc.add(&cj.sub(&inst.job(j).release));
            }
        }
        acc
    }

    /// Number of preemptions: slice count minus job count (a job with k
    /// slices was interrupted k−1 times), counting only scheduled jobs.
    pub fn n_preemptions(&self, n_jobs: usize) -> usize {
        let per_job = self.job_slices(n_jobs);
        per_job
            .iter()
            .filter(|v| !v.is_empty())
            .map(|v| v.len() - 1)
            .sum()
    }
}

impl<S: Scalar> fmt::Display for Schedule<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, tl) in self.machines.iter().enumerate() {
            write!(f, "M{}:", i + 1)?;
            for s in tl {
                write!(f, " [{} J{} {})", s.start, s.job + 1, s.end)?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceBuilder;

    fn inst() -> Instance<f64> {
        let mut b = InstanceBuilder::new();
        b.job(0.0, 1.0); // J0
        b.job(1.0, 2.0); // J1
        b.machine(vec![Some(2.0), Some(4.0)]);
        b.machine(vec![Some(4.0), Some(2.0)]);
        b.build().unwrap()
    }

    fn sched() -> Schedule<f64> {
        let mut s = Schedule::empty(2, ScheduleKind::Divisible);
        s.push(
            0,
            Slice {
                job: 0,
                start: 0.0,
                end: 2.0,
            },
        ); // J0 fully on M0
        s.push(
            1,
            Slice {
                job: 1,
                start: 1.0,
                end: 3.0,
            },
        ); // J1 fully on M1
        s
    }

    #[test]
    fn metrics() {
        let i = inst();
        let s = sched();
        assert_eq!(s.makespan(), 3.0);
        assert_eq!(s.completion_times(2), vec![Some(2.0), Some(3.0)]);
        assert_eq!(s.processed_fractions(&i), vec![1.0, 1.0]);
        // flows: J0 = 2−0 = 2 (w=1 → 2); J1 = 3−1 = 2 (w=2 → 4).
        assert_eq!(s.max_weighted_flow(&i), 4.0);
        assert_eq!(s.max_flow(&i), 2.0);
        assert_eq!(s.total_flow(&i), 4.0);
        assert_eq!(s.n_preemptions(2), 0);
        assert_eq!(s.n_slices(), 2);
    }

    #[test]
    fn zero_length_slices_dropped() {
        let mut s = Schedule::<f64>::empty(1, ScheduleKind::Divisible);
        s.push(
            0,
            Slice {
                job: 0,
                start: 1.0,
                end: 1.0,
            },
        );
        assert_eq!(s.n_slices(), 0);
    }

    #[test]
    fn normalize_merges_adjacent() {
        let mut s = Schedule::<f64>::empty(1, ScheduleKind::Preemptive);
        s.push(
            0,
            Slice {
                job: 0,
                start: 2.0,
                end: 3.0,
            },
        );
        s.push(
            0,
            Slice {
                job: 0,
                start: 0.0,
                end: 2.0,
            },
        );
        s.push(
            0,
            Slice {
                job: 1,
                start: 3.0,
                end: 4.0,
            },
        );
        s.normalize();
        assert_eq!(s.machines[0].len(), 2);
        assert_eq!(
            s.machines[0][0],
            Slice {
                job: 0,
                start: 0.0,
                end: 3.0
            }
        );
    }

    #[test]
    fn preemption_count() {
        let mut s = Schedule::<f64>::empty(2, ScheduleKind::Preemptive);
        s.push(
            0,
            Slice {
                job: 0,
                start: 0.0,
                end: 1.0,
            },
        );
        s.push(
            1,
            Slice {
                job: 0,
                start: 2.0,
                end: 3.0,
            },
        );
        s.push(
            0,
            Slice {
                job: 1,
                start: 1.0,
                end: 2.0,
            },
        );
        assert_eq!(s.n_preemptions(2), 1);
    }

    #[test]
    fn partial_fraction_detected() {
        let i = inst();
        let mut s = Schedule::<f64>::empty(2, ScheduleKind::Divisible);
        s.push(
            0,
            Slice {
                job: 0,
                start: 0.0,
                end: 1.0,
            },
        ); // half of J0
        assert_eq!(s.processed_fractions(&i), vec![0.5, 0.0]);
    }
}
