//! Independent schedule verification.
//!
//! The validator re-checks, from first principles, every property the
//! paper's constructions are supposed to guarantee. Tests and experiment
//! binaries run it on every schedule produced, so a bug in the LP
//! builders, the packer or the decomposition cannot silently produce
//! invalid "optima".

use crate::instance::Instance;
use crate::schedule::{Schedule, ScheduleKind};
use dlflow_num::Scalar;
use std::fmt;

/// A specific violated property.
#[derive(Clone, Debug, PartialEq)]
#[allow(missing_docs)] // field names (machine/job/index) are self-describing
pub enum ValidationError {
    /// A slice has `end < start`.
    NegativeSlice { machine: usize, index: usize },
    /// Two slices on one machine overlap in time.
    MachineOverlap { machine: usize, index: usize },
    /// A slice starts before its job's release date.
    ReleaseViolated { machine: usize, job: usize },
    /// A slice runs a job on a machine lacking its databank.
    Unavailable { machine: usize, job: usize },
    /// A job's processed fraction differs from 1.
    IncompleteJob { job: usize, fraction_str: String },
    /// Preemptive model only: a job occupies two machines simultaneously.
    SimultaneousExecution { job: usize },
    /// A job index out of range.
    UnknownJob { machine: usize, job: usize },
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::NegativeSlice { machine, index } => {
                write!(f, "machine {machine}, slice {index}: negative duration")
            }
            ValidationError::MachineOverlap { machine, index } => {
                write!(
                    f,
                    "machine {machine}: slice {index} overlaps its predecessor"
                )
            }
            ValidationError::ReleaseViolated { machine, job } => {
                write!(
                    f,
                    "job {job} starts before its release date on machine {machine}"
                )
            }
            ValidationError::Unavailable { machine, job } => {
                write!(
                    f,
                    "job {job} scheduled on machine {machine} where its databank is absent"
                )
            }
            ValidationError::IncompleteJob { job, fraction_str } => {
                write!(f, "job {job} processed fraction {fraction_str} ≠ 1")
            }
            ValidationError::SimultaneousExecution { job } => {
                write!(
                    f,
                    "job {job} runs on two machines at the same time (preemptive model)"
                )
            }
            ValidationError::UnknownJob { machine, job } => {
                write!(f, "machine {machine} references unknown job {job}")
            }
        }
    }
}

impl std::error::Error for ValidationError {}

/// Validates a schedule against its instance and claimed execution model.
pub fn validate<S: Scalar>(inst: &Instance<S>, sched: &Schedule<S>) -> Result<(), ValidationError> {
    let n = inst.n_jobs();

    // Per-machine checks: well-formed, sorted, non-overlapping, released,
    // available.
    for (i, tl) in sched.machines.iter().enumerate() {
        let mut prev_end: Option<&S> = None;
        for (k, s) in tl.iter().enumerate() {
            if s.job >= n {
                return Err(ValidationError::UnknownJob {
                    machine: i,
                    job: s.job,
                });
            }
            if s.end.lt_tol(&s.start) {
                return Err(ValidationError::NegativeSlice {
                    machine: i,
                    index: k,
                });
            }
            if let Some(pe) = prev_end {
                if s.start.lt_tol(pe) {
                    return Err(ValidationError::MachineOverlap {
                        machine: i,
                        index: k,
                    });
                }
            }
            prev_end = Some(&s.end);
            if s.start.lt_tol(&inst.job(s.job).release) {
                return Err(ValidationError::ReleaseViolated {
                    machine: i,
                    job: s.job,
                });
            }
            if !inst.cost(i, s.job).is_finite() {
                return Err(ValidationError::Unavailable {
                    machine: i,
                    job: s.job,
                });
            }
        }
    }

    // Completion: fractions sum to 1 (jobs with zero-cost machines are
    // complete by definition if they appear at all; absent jobs fail).
    let fractions = sched.processed_fractions(inst);
    for (j, frac) in fractions.iter().enumerate() {
        if !frac.sub(&S::one()).is_negligible() {
            return Err(ValidationError::IncompleteJob {
                job: j,
                fraction_str: format!("{frac}"),
            });
        }
    }

    // Preemptive model: the same job never on two machines at once.
    if sched.kind == ScheduleKind::Preemptive {
        let per_job = sched.job_slices(n);
        for (j, slices) in per_job.iter().enumerate() {
            // Slices are sorted by start; overlap ⇔ some start < previous end.
            let mut prev_end: Option<&S> = None;
            for (_m, s) in slices {
                if let Some(pe) = prev_end {
                    if s.start.lt_tol(pe) {
                        return Err(ValidationError::SimultaneousExecution { job: j });
                    }
                }
                prev_end = Some(&s.end);
            }
        }
    }

    Ok(())
}

/// Validates *and* checks the schedule's realized max weighted flow
/// against a claimed optimum.
pub fn validate_with_objective<S: Scalar>(
    inst: &Instance<S>,
    sched: &Schedule<S>,
    claimed: &S,
) -> Result<(), String> {
    validate(inst, sched).map_err(|e| e.to_string())?;
    let realized = sched.max_weighted_flow(inst);
    if realized.gt_tol(claimed) {
        return Err(format!(
            "realized max weighted flow {realized} exceeds claimed {claimed}"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceBuilder;
    use crate::schedule::Slice;

    fn inst() -> Instance<f64> {
        let mut b = InstanceBuilder::new();
        b.job(1.0, 1.0);
        b.job(0.0, 1.0);
        b.machine(vec![Some(2.0), Some(2.0)]);
        b.machine(vec![None, Some(4.0)]);
        b.build().unwrap()
    }

    #[test]
    fn valid_divisible_schedule_passes() {
        let i = inst();
        let mut s = Schedule::empty(2, ScheduleKind::Divisible);
        s.push(
            0,
            Slice {
                job: 0,
                start: 1.0,
                end: 3.0,
            },
        );
        s.push(
            1,
            Slice {
                job: 1,
                start: 0.0,
                end: 4.0,
            },
        );
        validate(&i, &s).unwrap();
    }

    #[test]
    fn release_violation_caught() {
        let i = inst();
        let mut s = Schedule::empty(2, ScheduleKind::Divisible);
        s.push(
            0,
            Slice {
                job: 0,
                start: 0.5,
                end: 2.5,
            },
        ); // released at 1
        s.push(
            1,
            Slice {
                job: 1,
                start: 0.0,
                end: 4.0,
            },
        );
        assert_eq!(
            validate(&i, &s).unwrap_err(),
            ValidationError::ReleaseViolated { machine: 0, job: 0 }
        );
    }

    #[test]
    fn availability_violation_caught() {
        let i = inst();
        let mut s = Schedule::empty(2, ScheduleKind::Divisible);
        s.push(
            1,
            Slice {
                job: 0,
                start: 1.0,
                end: 2.0,
            },
        ); // J0 forbidden on M1
        assert_eq!(
            validate(&i, &s).unwrap_err(),
            ValidationError::Unavailable { machine: 1, job: 0 }
        );
    }

    #[test]
    fn machine_overlap_caught() {
        let i = inst();
        let mut s = Schedule::empty(2, ScheduleKind::Divisible);
        s.push(
            0,
            Slice {
                job: 0,
                start: 1.0,
                end: 3.0,
            },
        );
        s.push(
            0,
            Slice {
                job: 1,
                start: 2.0,
                end: 3.0,
            },
        );
        // normalize() sorts; overlap remains.
        s.normalize();
        assert!(matches!(
            validate(&i, &s),
            Err(ValidationError::MachineOverlap { .. })
        ));
    }

    #[test]
    fn incomplete_job_caught() {
        let i = inst();
        let mut s = Schedule::empty(2, ScheduleKind::Divisible);
        s.push(
            0,
            Slice {
                job: 0,
                start: 1.0,
                end: 2.0,
            },
        ); // half of J0
        s.push(
            1,
            Slice {
                job: 1,
                start: 0.0,
                end: 4.0,
            },
        );
        assert!(matches!(
            validate(&i, &s),
            Err(ValidationError::IncompleteJob { job: 0, .. })
        ));
    }

    #[test]
    fn simultaneous_execution_caught_in_preemptive_only() {
        let mut b = InstanceBuilder::new();
        b.job(0.0, 1.0);
        b.machine(vec![Some(4.0)]);
        b.machine(vec![Some(4.0)]);
        let i = b.build().unwrap();
        let mut s = Schedule::empty(2, ScheduleKind::Preemptive);
        s.push(
            0,
            Slice {
                job: 0,
                start: 0.0,
                end: 2.0,
            },
        );
        s.push(
            1,
            Slice {
                job: 0,
                start: 0.0,
                end: 2.0,
            },
        );
        assert_eq!(
            validate(&i, &s).unwrap_err(),
            ValidationError::SimultaneousExecution { job: 0 }
        );
        // The identical slices are legal under the divisible model.
        let mut s2 = s.clone();
        s2.kind = ScheduleKind::Divisible;
        validate(&i, &s2).unwrap();
    }

    #[test]
    fn objective_check() {
        let i = inst();
        let mut s = Schedule::empty(2, ScheduleKind::Divisible);
        s.push(
            0,
            Slice {
                job: 0,
                start: 1.0,
                end: 3.0,
            },
        );
        s.push(
            1,
            Slice {
                job: 1,
                start: 0.0,
                end: 4.0,
            },
        );
        // Flows: J0 = 2, J1 = 4 → max weighted flow 4.
        validate_with_objective(&i, &s, &4.0).unwrap();
        assert!(validate_with_objective(&i, &s, &3.0).is_err());
    }
}
