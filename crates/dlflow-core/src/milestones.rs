//! Milestones of the max-weighted-flow objective (§4.3.2, "Particular
//! objectives"; Labetoulle–Lawler–Lenstra–Rinnooy Kan call them *critical
//! trial values*).
//!
//! The deadline of job `j` is the affine, strictly increasing function
//! `d̄_j(F) = r_j + F/w_j`. The relative order of the epochal times
//! `{r_1..r_n, d̄_1(F)..d̄_n(F)}` changes only at values of `F` where a
//! deadline meets a release date or another deadline:
//!
//! * `d̄_j(F) = r_k`  ⇒  `F = w_j (r_k − r_j)`  (at most n(n−1)/2 positive),
//! * `d̄_j(F) = d̄_k(F)` ⇒ `F = (r_k − r_j) / (1/w_j − 1/w_k)` (same bound),
//!
//! for a total of at most `n² − n` milestones.

use crate::instance::Instance;
use dlflow_num::Scalar;

/// All strictly positive milestones, sorted ascending and deduplicated.
pub fn milestones<S: Scalar>(inst: &Instance<S>) -> Vec<S> {
    let n = inst.n_jobs();
    let mut out: Vec<S> = Vec::new();

    // Deadline j meets release k.
    for j in 0..n {
        let rj = &inst.job(j).release;
        let wj = &inst.job(j).weight;
        for k in 0..n {
            let rk = &inst.job(k).release;
            let diff = rk.sub(rj);
            if diff.is_positive_tol() {
                out.push(wj.mul(&diff));
            }
        }
    }

    // Deadline j meets deadline k (two affine functions intersect at most once).
    for j in 0..n {
        for k in (j + 1)..n {
            let rj = &inst.job(j).release;
            let rk = &inst.job(k).release;
            let sj = inst.job(j).weight.recip(); // slope of d̄_j
            let sk = inst.job(k).weight.recip();
            let denom = sj.sub(&sk);
            if denom.is_negligible() {
                continue; // parallel deadlines never cross (or are identical)
            }
            let f = rk.sub(rj).div(&denom);
            if f.is_positive_tol() {
                out.push(f);
            }
        }
    }

    // Unstable sort on the total order + equality dedup: unlike the
    // previous `sort_by` + subtraction-based `dedup_by`, this allocates
    // nothing and compares without forming `a − b` rationals per pair.
    // Equality dedup is exact: identical to the old behaviour over `Rat`
    // (tolerance 0); over `f64` a crossing computed by two formulas may
    // now survive as two ulp-apart milestones, which costs at most one
    // extra (monotone) probe and never affects correctness.
    out.sort_unstable_by(|a, b| a.cmp_total(b));
    out.dedup();
    out
}

/// The theoretical upper bound `n² − n` on the number of milestones.
pub fn milestone_bound(n_jobs: usize) -> usize {
    n_jobs * n_jobs - n_jobs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceBuilder;
    use dlflow_num::Rat;

    fn r(n: i64, d: i64) -> Rat {
        Rat::from_ratio(n, d)
    }

    #[test]
    fn single_job_has_no_milestones() {
        let mut b = InstanceBuilder::<Rat>::new();
        b.job(Rat::zero(), Rat::one());
        b.machine(vec![Some(Rat::one())]);
        let inst = b.build().unwrap();
        assert!(milestones(&inst).is_empty());
    }

    #[test]
    fn identical_jobs_have_no_milestones() {
        let mut b = InstanceBuilder::<Rat>::new();
        b.job(Rat::zero(), Rat::one());
        b.job(Rat::zero(), Rat::one());
        b.machine(vec![Some(Rat::one()), Some(Rat::one())]);
        let inst = b.build().unwrap();
        // Same release, same weight: deadlines parallel and identical; no
        // deadline ever crosses the (equal) release.
        assert!(milestones(&inst).is_empty());
    }

    #[test]
    fn two_jobs_release_crossing() {
        // r1 = 0, w1 = 1; r2 = 3, w2 = 1. d̄_1 crosses r_2 at F = 3.
        // Parallel deadlines (equal weights) never cross each other.
        let mut b = InstanceBuilder::<Rat>::new();
        b.job(Rat::zero(), Rat::one());
        b.job(Rat::from_i64(3), Rat::one());
        b.machine(vec![Some(Rat::one()), Some(Rat::one())]);
        let inst = b.build().unwrap();
        assert_eq!(milestones(&inst), vec![Rat::from_i64(3)]);
    }

    #[test]
    fn deadline_deadline_crossing() {
        // r1 = 0, w1 = 1 (slope 1); r2 = 2, w2 = 2 (slope 1/2).
        // d̄_1 = F, d̄_2 = 2 + F/2 cross at F = 4.
        // d̄_1 crosses r_2 = 2 at F = 2 (w1·(r2−r1) = 2).
        let mut b = InstanceBuilder::<Rat>::new();
        b.job(Rat::zero(), Rat::one());
        b.job(Rat::from_i64(2), Rat::from_i64(2));
        b.machine(vec![Some(Rat::one()), Some(Rat::one())]);
        let inst = b.build().unwrap();
        assert_eq!(milestones(&inst), vec![Rat::from_i64(2), Rat::from_i64(4)]);
    }

    #[test]
    fn count_within_bound_random() {
        let mut b = InstanceBuilder::<Rat>::new();
        let data = [(0i64, 1i64), (1, 2), (3, 1), (7, 3), (9, 5)];
        let n = data.len();
        for (rel, w) in data {
            b.job(Rat::from_i64(rel), Rat::from_i64(w));
        }
        b.machine((0..n).map(|_| Some(Rat::one())).collect());
        let inst = b.build().unwrap();
        let ms = milestones(&inst);
        assert!(ms.len() <= milestone_bound(n));
        // Sorted strictly increasing.
        for w in ms.windows(2) {
            assert!(w[0] < w[1]);
        }
        // All positive.
        assert!(ms.iter().all(|m| m.is_positive()));
    }

    #[test]
    fn milestone_values_are_true_crossings() {
        // Verify each reported milestone indeed makes two epochal times meet.
        let mut b = InstanceBuilder::<Rat>::new();
        b.job(r(1, 2), Rat::one());
        b.job(Rat::from_i64(2), r(1, 3));
        b.job(Rat::from_i64(5), Rat::from_i64(4));
        b.machine(vec![Some(Rat::one()), Some(Rat::one()), Some(Rat::one())]);
        let inst = b.build().unwrap();
        for f in milestones(&inst) {
            let mut events: Vec<Rat> = Vec::new();
            for j in 0..inst.n_jobs() {
                events.push(inst.job(j).release.clone());
                events.push(inst.deadline(j, &f));
            }
            let total = events.len();
            events.sort();
            events.dedup();
            assert!(events.len() < total, "milestone {f} creates no coincidence");
        }
    }
}
