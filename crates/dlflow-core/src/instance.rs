//! Problem instances: jobs, machines, and the unrelated-machine cost matrix.
//!
//! Section 3 of the paper: `n` jobs `J_1..J_n` with release dates `r_j`
//! and weights `w_j`; `m` machines; `c[i][j]` is the time for machine
//! `M_i` to process the whole of job `J_j`, possibly infinite when the
//! databank required by `J_j` is not replicated on `M_i`.

use dlflow_num::{Rat, Scalar};
use std::fmt;

/// Per-job data.
#[derive(Clone, Debug)]
pub struct Job<S> {
    /// Release date `r_j ≥ 0`.
    pub release: S,
    /// Weight `w_j > 0`. Weighted flow is `w_j · (C_j − r_j)`.
    ///
    /// Max-stretch is the special case `w_j = 1 / W_j` where `W_j` is the
    /// job size (the paper's §3 states `w_j = W_j`, a typo: with weighted
    /// flow defined as `w_j · F_j`, the stretch `F_j / W_j` needs the
    /// reciprocal).
    pub weight: S,
    /// Human-readable label (used in schedules and error messages).
    pub name: String,
}

/// Processing cost of a job on a machine.
#[derive(Clone, Debug, PartialEq)]
pub enum Cost<S> {
    /// The machine holds the databank: processing the full job takes this long.
    Finite(S),
    /// The job's databank is absent from the machine: the job cannot run there.
    Infinite,
}

impl<S: Scalar> Cost<S> {
    /// The finite value, if any.
    pub fn finite(&self) -> Option<&S> {
        match self {
            Cost::Finite(c) => Some(c),
            Cost::Infinite => None,
        }
    }

    /// `true` when the job can run on the machine.
    pub fn is_finite(&self) -> bool {
        matches!(self, Cost::Finite(_))
    }
}

/// Errors from [`Instance`] construction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InstanceError {
    /// The job list was empty.
    NoJobs,
    /// No machines were given.
    NoMachines,
    /// The cost matrix dimensions do not match `(machines × jobs)`.
    BadMatrixShape,
    /// A job had a negative release date.
    NegativeRelease(usize),
    /// A job had a non-positive weight.
    NonPositiveWeight(usize),
    /// A finite cost was negative.
    NegativeCost(usize, usize),
    /// A job cannot run anywhere (all costs infinite).
    Unplaceable(usize),
}

impl fmt::Display for InstanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstanceError::NoJobs => write!(f, "instance has no jobs"),
            InstanceError::NoMachines => write!(f, "instance has no machines"),
            InstanceError::BadMatrixShape => write!(f, "cost matrix shape mismatch"),
            InstanceError::NegativeRelease(j) => write!(f, "job {j} has a negative release date"),
            InstanceError::NonPositiveWeight(j) => write!(f, "job {j} has a non-positive weight"),
            InstanceError::NegativeCost(i, j) => write!(f, "cost[{i}][{j}] is negative"),
            InstanceError::Unplaceable(j) => {
                write!(
                    f,
                    "job {j} has no machine with a finite cost (databank nowhere replicated)"
                )
            }
        }
    }
}

impl std::error::Error for InstanceError {}

/// A scheduling instance on unrelated machines.
#[derive(Clone, Debug)]
pub struct Instance<S> {
    jobs: Vec<Job<S>>,
    /// `cost[i][j]`: machine `i`, job `j`.
    cost: Vec<Vec<Cost<S>>>,
}

impl<S: Scalar> Instance<S> {
    /// Builds and validates an instance.
    pub fn new(jobs: Vec<Job<S>>, cost: Vec<Vec<Cost<S>>>) -> Result<Self, InstanceError> {
        if jobs.is_empty() {
            return Err(InstanceError::NoJobs);
        }
        if cost.is_empty() {
            return Err(InstanceError::NoMachines);
        }
        if cost.iter().any(|row| row.len() != jobs.len()) {
            return Err(InstanceError::BadMatrixShape);
        }
        for (j, job) in jobs.iter().enumerate() {
            if job.release < S::zero() {
                return Err(InstanceError::NegativeRelease(j));
            }
            if job.weight.partial_cmp(&S::zero()) != Some(std::cmp::Ordering::Greater) {
                return Err(InstanceError::NonPositiveWeight(j));
            }
        }
        for (i, row) in cost.iter().enumerate() {
            for (j, c) in row.iter().enumerate() {
                if let Cost::Finite(v) = c {
                    if *v < S::zero() {
                        return Err(InstanceError::NegativeCost(i, j));
                    }
                }
            }
        }
        for j in 0..jobs.len() {
            if !cost.iter().any(|row| row[j].is_finite()) {
                return Err(InstanceError::Unplaceable(j));
            }
        }
        Ok(Instance { jobs, cost })
    }

    /// Decomposes the instance into its raw parts, handing the job list
    /// and cost-matrix allocations back to the caller. The eager
    /// re-solve schedulers rebuild a sub-instance at every engine event;
    /// recycling these buffers keeps that off the allocator.
    pub fn into_parts(self) -> (Vec<Job<S>>, Vec<Vec<Cost<S>>>) {
        (self.jobs, self.cost)
    }

    /// The *uniform machines with restricted availabilities* special case
    /// the GriPPS application maps onto (§3): `c[i][j] = W_j · speed_i`
    /// when `available[i][j]`, infinite otherwise.
    ///
    /// * `sizes[j]` — job size `W_j` (e.g. Mflop),
    /// * `releases[j]`, `weights[j]` — per-job release dates and weights,
    /// * `cycle_time[i]` — seconds per unit of work on machine `i`,
    /// * `available[i][j]` — whether `J_j`'s databank is on `M_i`.
    pub fn uniform_restricted(
        sizes: &[S],
        releases: &[S],
        weights: &[S],
        cycle_time: &[S],
        available: &[Vec<bool>],
    ) -> Result<Self, InstanceError> {
        let n = sizes.len();
        if releases.len() != n || weights.len() != n {
            return Err(InstanceError::BadMatrixShape);
        }
        if available.len() != cycle_time.len() || available.iter().any(|r| r.len() != n) {
            return Err(InstanceError::BadMatrixShape);
        }
        let jobs = (0..n)
            .map(|j| Job {
                release: releases[j].clone(),
                weight: weights[j].clone(),
                name: format!("J{}", j + 1),
            })
            .collect();
        let cost = available
            .iter()
            .zip(cycle_time)
            .map(|(avail, ct)| {
                (0..n)
                    .map(|j| {
                        if avail[j] {
                            Cost::Finite(sizes[j].mul(ct))
                        } else {
                            Cost::Infinite
                        }
                    })
                    .collect()
            })
            .collect();
        Instance::new(jobs, cost)
    }

    /// Replaces every weight by `1 / W_j` (computed as the reciprocal of
    /// the job's *fastest* total processing time, the natural size proxy on
    /// unrelated machines), turning max weighted flow into max stretch.
    pub fn with_stretch_weights(mut self) -> Self {
        for j in 0..self.jobs.len() {
            let best = self.fastest_cost(j);
            if best > S::zero() {
                self.jobs[j].weight = best.recip();
            }
        }
        self
    }

    /// Number of jobs `n`.
    pub fn n_jobs(&self) -> usize {
        self.jobs.len()
    }

    /// Number of machines `m`.
    pub fn n_machines(&self) -> usize {
        self.cost.len()
    }

    /// Job accessor.
    pub fn job(&self, j: usize) -> &Job<S> {
        &self.jobs[j]
    }

    /// All jobs.
    pub fn jobs(&self) -> &[Job<S>] {
        &self.jobs
    }

    /// Cost of job `j` on machine `i`.
    pub fn cost(&self, i: usize, j: usize) -> &Cost<S> {
        &self.cost[i][j]
    }

    /// Smallest finite cost of job `j` across machines (its fastest
    /// possible total processing time). Every valid instance has one.
    pub fn fastest_cost(&self, j: usize) -> S {
        let mut best: Option<S> = None;
        for row in &self.cost {
            if let Cost::Finite(c) = &row[j] {
                best = Some(match best {
                    None => c.clone(),
                    Some(b) => S::min_val(b, c.clone()),
                });
            }
        }
        // dlflint:allow(hot-path-panic, "Instance::validate rejects jobs with no finite cost before any scheduling runs")
        best.expect("validated instance has a finite cost per job")
    }

    /// Largest release date.
    pub fn max_release(&self) -> S {
        self.jobs
            .iter()
            .map(|j| j.release.clone())
            .reduce(S::max_val)
            .expect("non-empty")
    }

    /// Distinct release dates, sorted ascending.
    pub fn distinct_releases(&self) -> Vec<S> {
        let mut r: Vec<S> = self.jobs.iter().map(|j| j.release.clone()).collect();
        r.sort_by(|a, b| a.cmp_total(b));
        r.dedup();
        r
    }

    /// The deadline `d̄_j(F) = r_j + F / w_j` induced by a max-weighted-flow
    /// objective value `F` (§4.3.1).
    pub fn deadline(&self, j: usize, objective: &S) -> S {
        self.jobs[j]
            .release
            .add(&objective.div(&self.jobs[j].weight))
    }

    /// A trivially feasible upper bound on the optimal max weighted flow:
    /// process jobs one at a time, in release order, each wholly on its
    /// fastest machine, starting when both the job and the machine are free
    /// (single shared timeline — a gross but safe overestimate).
    pub fn naive_flow_upper_bound(&self) -> S {
        let mut order: Vec<usize> = (0..self.n_jobs()).collect();
        order.sort_by(|&a, &b| self.jobs[a].release.cmp_total(&self.jobs[b].release));
        let mut time = S::zero();
        let mut worst = S::zero();
        for j in order {
            let job = &self.jobs[j];
            let start = S::max_val(time.clone(), job.release.clone());
            let done = start.add(&self.fastest_cost(j));
            let wf = job.weight.mul(&done.sub(&job.release));
            worst = S::max_val(worst, wf);
            time = done;
        }
        worst
    }

    /// Maps the instance's scalar type (e.g. `f64` instance → exact `Rat`).
    /// See [`Instance::quantize_dyadic`] / [`Instance::to_exact`] for the
    /// round-tripping pair built on top of this.
    pub fn map_scalar<T: Scalar>(&self, f: impl Fn(&S) -> T) -> Instance<T> {
        Instance {
            jobs: self
                .jobs
                .iter()
                .map(|j| Job {
                    release: f(&j.release),
                    weight: f(&j.weight),
                    name: j.name.clone(),
                })
                .collect(),
            cost: self
                .cost
                .iter()
                .map(|row| {
                    row.iter()
                        .map(|c| match c {
                            Cost::Finite(v) => Cost::Finite(f(v)),
                            Cost::Infinite => Cost::Infinite,
                        })
                        .collect()
                })
                .collect(),
        }
    }
}

/// Rounds a non-negative `f64` to `bits` significand bits: the result is
/// `k · 2^e` with `k < 2^bits`, exactly representable in `f64` and as a
/// small dyadic rational. Non-positive values round to 0.
pub fn round_sig_bits(v: f64, bits: u32) -> f64 {
    assert!((1..=52).contains(&bits), "bits must be in 1..=52");
    if v <= 0.0 {
        return 0.0;
    }
    // dlflint:allow(lossy-cast, "log2 of a finite positive f64 is in [-1074, 1024]; bits <= 52")
    let e = (v.log2().floor() as i32) - (bits as i32 - 1);
    let scale = (e as f64).exp2();
    (v / scale).round() * scale
}

impl Instance<f64> {
    /// Rounds every release, weight, and finite cost to the dyadic grid
    /// `k / denom` (clamping positive values that would round to zero up
    /// to `1/denom`). Every resulting value is exactly representable in
    /// `f64` *and* converts losslessly to a small-denominator [`Rat`], so
    /// a quantized instance can be simulated in `f64` and solved exactly
    /// with Theorem 2 — on *the same* instance. This is how campaign runs
    /// obtain an exact offline yardstick for float simulations.
    pub fn quantize_dyadic(&self, denom: i64) -> Instance<f64> {
        assert!(denom > 0, "grid denominator must be positive");
        let g = denom as f64;
        let q = |v: &f64| -> f64 {
            let k = (v * g).round();
            if *v > 0.0 && k == 0.0 {
                1.0 / g
            } else {
                k / g
            }
        };
        self.map_scalar(q)
    }

    /// Converts an (already dyadic-quantized) instance to exact rationals
    /// with denominator `denom`. Panics (in debug builds) if a value is
    /// not on the grid — call [`Instance::quantize_dyadic`] first.
    pub fn to_exact(&self, denom: i64) -> Instance<Rat> {
        assert!(denom > 0, "grid denominator must be positive");
        let g = denom as f64;
        self.map_scalar(|v| {
            let k = (v * g).round();
            debug_assert!(
                (v * g - k).abs() < 1e-9,
                "value {v} is not on the 1/{denom} grid; quantize first"
            );
            // dlflint:allow(lossy-cast, "k is a rounded on-grid numerator, checked by the debug_assert above")
            Rat::from_ratio(k as i64, denom)
        })
    }

    /// Rounds every value to `bits` significand bits via
    /// [`round_sig_bits`], preserving *relative* precision across
    /// magnitudes — unlike the fixed grid of
    /// [`Instance::quantize_dyadic`], a 0.03-second job and a 600-second
    /// job both keep `bits` bits. Every result is exactly representable
    /// in `f64` and converts to a [`Rat`] with a `bits`-bit numerator via
    /// [`Instance::to_exact_dyadic`], keeping the exact Theorem-2
    /// yardstick in fast inline arithmetic.
    ///
    /// Note: rounding each cost independently destroys an exact
    /// `c[i][j] = W_j·s_i` factorization; to keep the
    /// [`crate::uniform`] fast path applicable, quantize the *factors*
    /// (sizes and cycle times) with [`round_sig_bits`] before building
    /// the instance instead.
    pub fn quantize_sig_bits(&self, bits: u32) -> Instance<f64> {
        self.map_scalar(|v| round_sig_bits(*v, bits))
    }

    /// Losslessly converts each (finite, dyadic) `f64` to an exact
    /// [`Rat`]. Pair with [`Instance::quantize_sig_bits`]: conversion is
    /// always exact, but the rationals stay small (fast) only when the
    /// values carry few significand bits.
    pub fn to_exact_dyadic(&self) -> Instance<Rat> {
        self.map_scalar(|v| Rat::from_f64(*v))
    }
}

/// Convenience builder used throughout tests and examples.
pub struct InstanceBuilder<S> {
    jobs: Vec<Job<S>>,
    rows: Vec<Vec<Cost<S>>>,
}

impl<S: Scalar> InstanceBuilder<S> {
    /// Starts an empty builder.
    pub fn new() -> Self {
        InstanceBuilder {
            jobs: Vec::new(),
            rows: Vec::new(),
        }
    }

    /// Adds a job (`release`, `weight`); returns its index.
    pub fn job(&mut self, release: S, weight: S) -> usize {
        let idx = self.jobs.len();
        self.jobs.push(Job {
            release,
            weight,
            name: format!("J{}", idx + 1),
        });
        idx
    }

    /// Adds a machine given its full cost row (`None` = infinite).
    pub fn machine(&mut self, costs: Vec<Option<S>>) -> usize {
        let row = costs
            .into_iter()
            .map(|c| c.map_or(Cost::Infinite, Cost::Finite))
            .collect();
        self.rows.push(row);
        self.rows.len() - 1
    }

    /// Finalizes into a validated [`Instance`].
    pub fn build(self) -> Result<Instance<S>, InstanceError> {
        Instance::new(self.jobs, self.rows)
    }
}

impl<S: Scalar> Default for InstanceBuilder<S> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlflow_num::Rat;

    fn two_job_instance() -> Instance<f64> {
        let mut b = InstanceBuilder::new();
        b.job(0.0, 1.0);
        b.job(2.0, 2.0);
        b.machine(vec![Some(4.0), Some(2.0)]);
        b.machine(vec![Some(8.0), None]);
        b.build().unwrap()
    }

    #[test]
    fn construction_and_accessors() {
        let inst = two_job_instance();
        assert_eq!(inst.n_jobs(), 2);
        assert_eq!(inst.n_machines(), 2);
        assert_eq!(inst.cost(0, 1), &Cost::Finite(2.0));
        assert_eq!(inst.cost(1, 1), &Cost::Infinite);
        assert_eq!(inst.fastest_cost(0), 4.0);
        assert_eq!(inst.max_release(), 2.0);
        assert_eq!(inst.distinct_releases(), vec![0.0, 2.0]);
    }

    #[test]
    fn validation_errors() {
        let e = Instance::<f64>::new(vec![], vec![]).unwrap_err();
        assert_eq!(e, InstanceError::NoJobs);

        let mut b = InstanceBuilder::new();
        b.job(-1.0, 1.0);
        b.machine(vec![Some(1.0)]);
        assert_eq!(b.build().unwrap_err(), InstanceError::NegativeRelease(0));

        let mut b = InstanceBuilder::new();
        b.job(0.0, 0.0);
        b.machine(vec![Some(1.0)]);
        assert_eq!(b.build().unwrap_err(), InstanceError::NonPositiveWeight(0));

        let mut b = InstanceBuilder::new();
        b.job(0.0, 1.0);
        b.machine(vec![None]);
        assert_eq!(b.build().unwrap_err(), InstanceError::Unplaceable(0));

        let mut b = InstanceBuilder::new();
        b.job(0.0, 1.0);
        b.machine(vec![Some(-2.0)]);
        assert_eq!(b.build().unwrap_err(), InstanceError::NegativeCost(0, 0));
    }

    #[test]
    fn uniform_restricted_expands_costs() {
        let inst = Instance::uniform_restricted(
            &[10.0, 20.0], // sizes
            &[0.0, 1.0],   // releases
            &[1.0, 1.0],   // weights
            &[0.5, 2.0],   // cycle times
            &[vec![true, true], vec![true, false]],
        )
        .unwrap();
        assert_eq!(inst.cost(0, 0), &Cost::Finite(5.0));
        assert_eq!(inst.cost(0, 1), &Cost::Finite(10.0));
        assert_eq!(inst.cost(1, 0), &Cost::Finite(20.0));
        assert_eq!(inst.cost(1, 1), &Cost::Infinite);
    }

    #[test]
    fn stretch_weights_are_reciprocal_fastest() {
        let inst = two_job_instance().with_stretch_weights();
        assert_eq!(inst.job(0).weight, 1.0 / 4.0);
        assert_eq!(inst.job(1).weight, 1.0 / 2.0);
    }

    #[test]
    fn deadline_formula() {
        let inst = two_job_instance();
        // d̄_2(F) = r_2 + F / w_2 = 2 + 6/2 = 5
        assert_eq!(inst.deadline(1, &6.0), 5.0);
    }

    #[test]
    fn naive_upper_bound_is_finite_and_positive() {
        let inst = two_job_instance();
        let ub = inst.naive_flow_upper_bound();
        // J1 fastest 4 at t=0 → C=4, wf = 4. J2 starts max(4,2)=4, C=6, wf=2·4=8.
        assert_eq!(ub, 8.0);
    }

    #[test]
    fn map_scalar_to_exact() {
        let inst = two_job_instance().map_scalar(|v| Rat::from_f64(*v));
        assert_eq!(inst.cost(0, 1).finite().unwrap(), &Rat::from_i64(2));
        assert_eq!(inst.job(1).release, Rat::from_i64(2));
    }

    #[test]
    fn quantize_dyadic_rounds_to_grid_and_clamps_zero() {
        let mut b = InstanceBuilder::new();
        b.job(0.1234, 1.0);
        b.machine(vec![Some(3.1)]);
        let inst = b.build().unwrap();
        let q = inst.quantize_dyadic(16);
        // 0.1234·16 = 1.9744 → 2/16; 3.1·16 = 49.6 → 50/16.
        assert_eq!(q.job(0).release, 2.0 / 16.0);
        assert_eq!(q.cost(0, 0).finite().unwrap(), &(50.0 / 16.0));

        // A tiny positive cost clamps to 1/denom instead of 0.
        let mut b = InstanceBuilder::new();
        b.job(0.0, 1.0);
        b.machine(vec![Some(1e-9)]);
        let inst = b.build().unwrap();
        let q = inst.quantize_dyadic(16);
        assert_eq!(q.cost(0, 0).finite().unwrap(), &(1.0 / 16.0));
    }

    #[test]
    fn round_sig_bits_keeps_relative_precision() {
        for v in [0.0312, 1.0, 3.7, 641.3, 1.9e6] {
            let q = round_sig_bits(v, 12);
            assert!((q - v).abs() / v < 1.0 / 2048.0, "{v} → {q}");
            // Exactly dyadic: converting to Rat and back is lossless.
            assert_eq!(Rat::from_f64(q).to_f64(), q);
            // 12 significand bits: q / 2^⌊log2 q⌋−11 is a small integer.
            let e = (q.log2().floor() as i32) - 11;
            let k = q / (e as f64).exp2();
            assert_eq!(k, k.round());
            assert!(k <= 4096.0);
        }
        assert_eq!(round_sig_bits(0.0, 12), 0.0);
        assert_eq!(round_sig_bits(-3.0, 12), 0.0);
        // Powers of two are fixed points.
        assert_eq!(round_sig_bits(0.25, 4), 0.25);
    }

    #[test]
    fn quantize_sig_bits_and_exact_dyadic_round_trip() {
        let mut b = InstanceBuilder::new();
        b.job(0.123456, 1.0);
        b.job(98.7654, 2.0);
        b.machine(vec![Some(4.2e-3), Some(0.9)]);
        b.machine(vec![Some(7.7e4), None]);
        let inst = b.build().unwrap().quantize_sig_bits(10);
        let exact = inst.to_exact_dyadic();
        for j in 0..2 {
            assert_eq!(exact.job(j).release.to_f64(), inst.job(j).release);
            for i in 0..2 {
                match (inst.cost(i, j), exact.cost(i, j)) {
                    (Cost::Finite(f), Cost::Finite(r)) => assert_eq!(r.to_f64(), *f),
                    (Cost::Infinite, Cost::Infinite) => {}
                    _ => panic!("availability changed under conversion"),
                }
            }
        }
    }

    #[test]
    fn to_exact_round_trips_quantized_values() {
        let mut b = InstanceBuilder::new();
        b.job(0.7, 2.0);
        b.job(1.3, 5.0);
        b.machine(vec![Some(4.2), Some(0.9)]);
        b.machine(vec![Some(7.7), None]);
        let inst = b.build().unwrap().quantize_dyadic(32);
        let exact = inst.to_exact(32);
        for j in 0..2 {
            assert_eq!(exact.job(j).release.to_f64(), inst.job(j).release);
            assert_eq!(exact.job(j).weight.to_f64(), inst.job(j).weight);
            for i in 0..2 {
                match (inst.cost(i, j), exact.cost(i, j)) {
                    (Cost::Finite(f), Cost::Finite(r)) => assert_eq!(r.to_f64(), *f),
                    (Cost::Infinite, Cost::Infinite) => {}
                    _ => panic!("availability changed under conversion"),
                }
            }
        }
    }
}
