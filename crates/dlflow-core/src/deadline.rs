//! Lemma 1 (§4.2): deadline scheduling as LP feasibility.

use crate::decompose::decompose_interval;
use crate::instance::Instance;
use crate::lp_build::{build_deadline_lp, pack_alpha_schedule};
use crate::schedule::{Schedule, ScheduleKind, Slice};
use dlflow_lp::solve;
use dlflow_num::Scalar;

/// Is there a **divisible** schedule meeting every `[r_j, d̄_j]` window?
/// Returns an achieving schedule when feasible (Lemma 1: System (2) has a
/// solution iff such a schedule exists, and packing fractions in any order
/// inside each interval realizes it).
pub fn deadline_feasible_divisible<S: Scalar>(
    inst: &Instance<S>,
    deadlines: &[S],
) -> Option<Schedule<S>> {
    let built = build_deadline_lp(inst, deadlines, false);
    let sol = solve(&built.lp);
    if !sol.is_optimal() {
        return None;
    }
    let bounds: Vec<(S, S)> = (0..built.intervals.n_intervals())
        .map(|t| {
            (
                built.intervals.inf(t).clone(),
                built.intervals.sup(t).clone(),
            )
        })
        .collect();
    Some(pack_alpha_schedule(
        inst,
        &bounds,
        &built.alpha,
        &sol.values,
    ))
}

/// Is there a **preemptive** (non-divisible) schedule meeting every window?
/// Uses System (5) restricted to a concrete objective (System (2) plus the
/// per-job-per-interval bound (5b)), then rebuilds an explicit schedule
/// with the Lawler–Labetoulle decomposition applied interval by interval.
pub fn deadline_feasible_preemptive<S: Scalar>(
    inst: &Instance<S>,
    deadlines: &[S],
) -> Option<Schedule<S>> {
    let built = build_deadline_lp(inst, deadlines, true);
    let sol = solve(&built.lp);
    if !sol.is_optimal() {
        return None;
    }

    let n_int = built.intervals.n_intervals();
    let mut sched = Schedule::empty(inst.n_machines(), ScheduleKind::Preemptive);
    for t in 0..n_int {
        // Work matrix for this interval: time job j spends on machine i.
        let mut work = vec![vec![S::zero(); inst.n_jobs()]; inst.n_machines()];
        for (tt, i, j, v) in &built.alpha {
            if *tt == t {
                let frac = sol.value(*v);
                if frac.is_positive_tol() {
                    let c = inst
                        .cost(*i, *j)
                        .finite()
                        .expect("alpha implies finite cost");
                    work[*i][*j] = work[*i][*j].add(&frac.mul(c));
                }
            }
        }
        let len = built.intervals.len(t);
        let phases = decompose_interval(&work, &len);
        // Emit phases back to back from the interval start.
        let mut clock = built.intervals.inf(t).clone();
        for phase in phases {
            let end = clock.add(&phase.duration);
            for (i, j) in phase.assignment {
                sched.push(
                    i,
                    Slice {
                        job: j,
                        start: clock.clone(),
                        end: end.clone(),
                    },
                );
            }
            clock = end;
        }
    }
    sched.normalize();
    Some(sched)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceBuilder;
    use crate::validate::validate;
    use dlflow_num::Rat;

    fn two_machine_inst() -> Instance<Rat> {
        let mut b = InstanceBuilder::<Rat>::new();
        b.job(Rat::zero(), Rat::one()); // c = 2 on each
        b.machine(vec![Some(Rat::from_i64(2))]);
        b.machine(vec![Some(Rat::from_i64(2))]);
        b.build().unwrap()
    }

    #[test]
    fn divisible_splits_across_machines() {
        let inst = two_machine_inst();
        // Divisible: half on each machine finishes at t = 1.
        let s = deadline_feasible_divisible(&inst, &[Rat::one()]).expect("feasible");
        validate(&inst, &s).unwrap();
        assert!(s.makespan() <= Rat::one());
    }

    #[test]
    fn preemptive_cannot_split_simultaneously() {
        let inst = two_machine_inst();
        // Preemptive: the job needs 2 wall-clock units; deadline 1 impossible.
        assert!(deadline_feasible_preemptive(&inst, &[Rat::one()]).is_none());
        // Deadline 2 is achievable (run on one machine).
        let s = deadline_feasible_preemptive(&inst, &[Rat::from_i64(2)]).expect("feasible");
        validate(&inst, &s).unwrap();
    }

    #[test]
    fn infeasible_when_deadline_before_release() {
        let mut b = InstanceBuilder::<Rat>::new();
        b.job(Rat::from_i64(5), Rat::one());
        b.machine(vec![Some(Rat::one())]);
        let inst = b.build().unwrap();
        assert!(deadline_feasible_divisible(&inst, &[Rat::from_i64(4)]).is_none());
    }

    #[test]
    fn tight_deadline_exactly_met() {
        let mut b = InstanceBuilder::<Rat>::new();
        b.job(Rat::zero(), Rat::one());
        b.job(Rat::zero(), Rat::one());
        b.machine(vec![Some(Rat::from_i64(2)), Some(Rat::from_i64(2))]);
        let inst = b.build().unwrap();
        // One machine, 4 units of work, deadlines at exactly 4.
        let d = vec![Rat::from_i64(4), Rat::from_i64(4)];
        let s = deadline_feasible_divisible(&inst, &d).expect("feasible");
        validate(&inst, &s).unwrap();
        assert_eq!(s.makespan(), Rat::from_i64(4));
        // At 3 it is impossible.
        let d = vec![Rat::from_i64(3), Rat::from_i64(3)];
        assert!(deadline_feasible_divisible(&inst, &d).is_none());
    }

    #[test]
    fn preemptive_schedule_migrates_between_machines() {
        // Two jobs, two machines, tight symmetric deadlines force sharing.
        let mut b = InstanceBuilder::<Rat>::new();
        b.job(Rat::zero(), Rat::one()); // c: 2 on M0, 6 on M1
        b.job(Rat::zero(), Rat::one()); // c: 6 on M0, 2 on M1
        b.machine(vec![Some(Rat::from_i64(2)), Some(Rat::from_i64(6))]);
        b.machine(vec![Some(Rat::from_i64(6)), Some(Rat::from_i64(2))]);
        let inst = b.build().unwrap();
        let d = vec![Rat::from_i64(2), Rat::from_i64(2)];
        let s = deadline_feasible_preemptive(&inst, &d).expect("feasible");
        validate(&inst, &s).unwrap();
        let c = s.completion_times(2);
        assert!(c[0].clone().unwrap() <= Rat::from_i64(2));
        assert!(c[1].clone().unwrap() <= Rat::from_i64(2));
    }
}
