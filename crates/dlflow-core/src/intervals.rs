//! Epochal times and time-interval decompositions (§4.1, §4.2, §4.3.2).
//!
//! Two flavours exist:
//!
//! * **Concrete** intervals between sorted distinct breakpoint values —
//!   used by System (1) (breakpoints = release dates) and System (2)
//!   (breakpoints = releases ∪ deadlines at a fixed objective value `F`).
//! * **Symbolic** intervals whose bounds are *affine functions of `F`*,
//!   `a + b·F` — used by Systems (3) and (5) inside one milestone range,
//!   where the paper observes the breakpoint order is constant and hence
//!   interval lengths are affine in `F`.

use dlflow_num::Scalar;

/// Sorted, deduplicated breakpoints → half-open concrete intervals
/// `[points[t], points[t+1])`.
#[derive(Clone, Debug)]
pub struct ConcreteIntervals<S> {
    points: Vec<S>,
}

impl<S: Scalar> ConcreteIntervals<S> {
    /// Builds from an arbitrary collection of epochal times.
    pub fn from_points(mut points: Vec<S>) -> Self {
        points.sort_by(|a, b| a.cmp_total(b));
        points.dedup_by(|a, b| a.sub(b).is_negligible());
        ConcreteIntervals { points }
    }

    /// Number of finite intervals (`points.len() − 1`).
    pub fn n_intervals(&self) -> usize {
        self.points.len().saturating_sub(1)
    }

    /// Lower bound of interval `t`.
    pub fn inf(&self, t: usize) -> &S {
        &self.points[t]
    }

    /// Upper bound of interval `t`.
    pub fn sup(&self, t: usize) -> &S {
        &self.points[t + 1]
    }

    /// Length of interval `t`.
    pub fn len(&self, t: usize) -> S {
        self.sup(t).sub(self.inf(t))
    }

    /// `true` when there are no finite intervals.
    pub fn is_empty(&self) -> bool {
        self.n_intervals() == 0
    }

    /// All breakpoints.
    pub fn points(&self) -> &[S] {
        &self.points
    }

    /// Last breakpoint (start of the implicit unbounded tail interval).
    pub fn last_point(&self) -> &S {
        self.points.last().expect("at least one point")
    }
}

/// An affine function of the objective value: `value(F) = a + b·F`.
#[derive(Clone, Debug, PartialEq)]
pub struct AffineF<S> {
    /// Constant term.
    pub a: S,
    /// Slope in `F` (releases: 0; deadline of job `j`: `1/w_j`).
    pub b: S,
}

impl<S: Scalar> AffineF<S> {
    /// A constant (slope-0) function.
    pub fn constant(a: S) -> Self {
        AffineF { a, b: S::zero() }
    }

    /// Evaluates at a concrete `F`.
    pub fn eval(&self, f: &S) -> S {
        self.a.add(&self.b.mul(f))
    }

    /// Pointwise difference `self − other` (still affine).
    pub fn sub(&self, other: &AffineF<S>) -> AffineF<S> {
        AffineF {
            a: self.a.sub(&other.a),
            b: self.b.sub(&other.b),
        }
    }

    /// `true` when both functions are identical (equal everywhere).
    pub fn same_function(&self, other: &AffineF<S>) -> bool {
        self.a.sub(&other.a).is_negligible() && self.b.sub(&other.b).is_negligible()
    }
}

/// Symbolic interval decomposition: breakpoints are affine in `F`, ordered
/// by their value at a reference point interior to the current milestone
/// range (where the order is provably constant).
#[derive(Clone, Debug)]
pub struct SymbolicIntervals<S> {
    points: Vec<AffineF<S>>,
    /// The reference `F` used for ordering (kept for debug/validation).
    reference: S,
}

impl<S: Scalar> SymbolicIntervals<S> {
    /// Builds from breakpoint functions, ordering them by value at
    /// `reference` and merging breakpoints equal there.
    ///
    /// Inside an open milestone range two *distinct* affine breakpoints
    /// never meet, so equality at the reference point implies they are the
    /// same epochal time throughout the range (for genuinely identical
    /// functions) or the reference was (erroneously) a milestone — the
    /// latter is a caller bug surfaced by `debug_assert`.
    pub fn from_points(mut points: Vec<AffineF<S>>, reference: S) -> Self {
        points.sort_by(|p, q| p.eval(&reference).cmp_total(&q.eval(&reference)));
        let mut merged: Vec<AffineF<S>> = Vec::with_capacity(points.len());
        for p in points {
            match merged.last() {
                Some(last)
                    if last
                        .eval(&reference)
                        .sub(&p.eval(&reference))
                        .is_negligible() =>
                {
                    // Same epochal time at the reference point. Keep the
                    // first; distinct functions meeting here would mean the
                    // reference sits on a milestone.
                    debug_assert!(
                        last.same_function(&p) || last.b.sub(&p.b).is_negligible(),
                        "distinct breakpoint functions coincide at the reference point; \
                         reference must be interior to a milestone range"
                    );
                }
                _ => merged.push(p),
            }
        }
        SymbolicIntervals {
            points: merged,
            reference,
        }
    }

    /// Number of finite intervals.
    pub fn n_intervals(&self) -> usize {
        self.points.len().saturating_sub(1)
    }

    /// Lower bound function of interval `t`.
    pub fn inf(&self, t: usize) -> &AffineF<S> {
        &self.points[t]
    }

    /// Upper bound function of interval `t`.
    pub fn sup(&self, t: usize) -> &AffineF<S> {
        &self.points[t + 1]
    }

    /// Length function of interval `t` — affine in `F`, non-negative
    /// throughout the milestone range.
    pub fn len(&self, t: usize) -> AffineF<S> {
        self.sup(t).sub(self.inf(t))
    }

    /// The reference objective value used for ordering.
    pub fn reference(&self) -> &S {
        &self.reference
    }

    /// The ordered breakpoint functions.
    pub fn points(&self) -> &[AffineF<S>] {
        &self.points
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlflow_num::Rat;

    #[test]
    fn concrete_sorts_and_dedupes() {
        let iv = ConcreteIntervals::from_points(vec![3.0, 0.0, 1.0, 1.0, 3.0]);
        assert_eq!(iv.points(), &[0.0, 1.0, 3.0]);
        assert_eq!(iv.n_intervals(), 2);
        assert_eq!(iv.len(0), 1.0);
        assert_eq!(iv.len(1), 2.0);
        assert_eq!(*iv.inf(1), 1.0);
        assert_eq!(*iv.sup(1), 3.0);
        assert_eq!(*iv.last_point(), 3.0);
    }

    #[test]
    fn concrete_single_point() {
        let iv = ConcreteIntervals::from_points(vec![5.0]);
        assert!(iv.is_empty());
        assert_eq!(*iv.last_point(), 5.0);
    }

    #[test]
    fn affine_eval_and_sub() {
        let d = AffineF { a: 2.0, b: 0.5 }; // r=2, w=2
        assert_eq!(d.eval(&4.0), 4.0);
        let r = AffineF::constant(1.0);
        let len = d.sub(&r);
        assert_eq!(len.a, 1.0);
        assert_eq!(len.b, 0.5);
        assert!(d.same_function(&AffineF { a: 2.0, b: 0.5 }));
        assert!(!d.same_function(&r));
    }

    #[test]
    fn symbolic_ordering_at_reference() {
        // Breakpoints: release 0, release 2, deadline_1 = 0 + F (w=1),
        // deadline_2 = 2 + F/2 (w=2). At F = 3: values 0, 2, 3, 3.5.
        let pts = vec![
            AffineF::constant(Rat::from_i64(0)),
            AffineF::constant(Rat::from_i64(2)),
            AffineF {
                a: Rat::from_i64(0),
                b: Rat::one(),
            },
            AffineF {
                a: Rat::from_i64(2),
                b: Rat::from_ratio(1, 2),
            },
        ];
        let iv = SymbolicIntervals::from_points(pts, Rat::from_i64(3));
        assert_eq!(iv.n_intervals(), 3);
        // Interval 2 = [deadline_1, deadline_2): length = 2 − F/2... at F=3: 0.5
        let len2 = iv.len(2);
        assert_eq!(len2.eval(&Rat::from_i64(3)), Rat::from_ratio(1, 2));
        assert_eq!(len2.a, Rat::from_i64(2));
        assert_eq!(len2.b, Rat::from_ratio(-1, 2));
    }

    #[test]
    fn symbolic_merges_identical_functions() {
        let pts = vec![
            AffineF::constant(Rat::from_i64(1)),
            AffineF::constant(Rat::from_i64(1)),
            AffineF {
                a: Rat::zero(),
                b: Rat::one(),
            },
        ];
        let iv = SymbolicIntervals::from_points(pts, Rat::from_i64(5));
        assert_eq!(iv.points().len(), 2);
        assert_eq!(iv.n_intervals(), 1);
    }
}
